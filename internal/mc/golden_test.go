package mc_test

// Byte-stability goldens: the examples' and fixtures' rendered reports
// are pinned to files under testdata/, so any change to verdict wording,
// counterexample rendering, or JSON shape shows up as a reviewable
// diff. Regenerate with
//
//	go test ./internal/mc -run TestGolden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/mc"
	"repro/internal/soc"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestGoldenReports(t *testing.T) {
	cfg := soc.DefaultConfig()
	cases := append(soc.MCExamples(), soc.MCFixtures()...)
	for _, tc := range cases {
		t.Run(tc.Name, func(t *testing.T) {
			s, _ := tc.Build(cfg)
			r := mc.Check(s.Sim, mc.Options{})

			var tree bytes.Buffer
			r.WriteTree(&tree)
			checkGolden(t, tc.Name+".tree.golden", tree.Bytes())

			// The fixtures' JSON dumps embed full-SoC counterexample
			// schedules (hundreds of env actors per cycle); the tree
			// goldens pin their human surface, and TestByteStableOutput
			// holds their JSON bytes stable. The closed examples pin
			// both renderings.
			if tc.Name == "mcserdes" || tc.Name == "mcgals" {
				var js bytes.Buffer
				if err := r.WriteJSON(&js); err != nil {
					t.Fatal(err)
				}
				checkGolden(t, tc.Name+".json.golden", js.Bytes())
			}
		})
	}
}
