package mc

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/lint"
)

// WriteTree renders the result in the indented component-tree format
// lint and ratecheck use: diagnostics first (path segments elided
// against the previous line), then the model and verdict sections, then
// the one-line summary. Output is byte-stable.
func (r *Result) WriteTree(w io.Writer) {
	var prev []string
	for _, d := range r.Diags {
		segs := strings.Split(d.Path, "/")
		if d.Path == "" {
			segs = nil
		}
		common := 0
		for common < len(segs) && common < len(prev) && segs[common] == prev[common] {
			common++
		}
		for i := common; i < len(segs); i++ {
			fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", i), segs[i])
		}
		prev = segs
		indent := strings.Repeat("  ", len(segs))
		fmt.Fprintf(w, "%s%s %s = %s\n", indent, d.Rule, d.Severity, d.Message)
		if d.Hint != "" {
			fmt.Fprintf(w, "%s  hint: %s\n", indent, d.Hint)
		}
	}
	fmt.Fprintf(w, "model: %d actor(s), %d channel(s), %d state bit(s), %d declared port(s), %d env endpoint(s)\n",
		r.Nodes, r.Edges, r.StateBits, r.DeclaredPorts, r.EnvEndpoints)
	fmt.Fprintf(w, "deadlock: %s (depth %d)\n", r.Deadlock.Verdict, r.Deadlock.Depth)
	fmt.Fprintf(w, "equivalence: %s (depth %d)\n", r.Equivalence.Verdict, r.Equivalence.Depth)
	for _, cx := range r.Counterexamples {
		// The trace projects onto the channels the violation implicates
		// (for MC-2, also everything feeding or fed by the diverging
		// actor); full per-edge occupancies live in the JSON dump.
		show := map[int]bool{}
		for ei := range r.model.Edges {
			name := r.model.Edges[ei].Name
			if name == cx.Channel {
				show[ei] = true
			}
			for _, c := range cx.Channels {
				if name == c {
					show[ei] = true
				}
			}
		}
		for u := range r.model.Nodes {
			if r.model.Nodes[u].Name != cx.Node {
				continue
			}
			for _, ei := range r.model.Nodes[u].In {
				show[ei] = true
			}
			for _, ei := range r.model.Nodes[u].Out {
				show[ei] = true
			}
		}
		switch cx.Rule {
		case "MC-1":
			fmt.Fprintf(w, "counterexample (%s): depth %d, circular wait %s via %s\n",
				cx.Property, cx.Depth, strings.Join(cx.Cycle, " -> "), strings.Join(cx.Channels, ", "))
		case "MC-2":
			fmt.Fprintf(w, "counterexample (%s): depth %d, %s starves %s\n",
				cx.Property, cx.Depth, cx.Node, cx.Channel)
		}
		for i, st := range cx.Steps {
			var fired []string
			env := 0
			for _, f := range st.Fired {
				if strings.HasPrefix(f, "env:") {
					env++
				} else {
					fired = append(fired, f)
				}
			}
			fstr := "-"
			if len(fired) > 0 {
				fstr = strings.Join(fired, ",")
			}
			if env > 0 {
				fstr += fmt.Sprintf(" (+%d env)", env)
			}
			var occ []string
			for ei, o := range st.Occ {
				if show[ei] {
					occ = append(occ, fmt.Sprintf("%s=%d", r.model.Edges[ei].Name, o))
				}
			}
			ostr := "-"
			if len(occ) > 0 {
				ostr = strings.Join(occ, " ")
			}
			fmt.Fprintf(w, "  cycle %d: fire %s; occ %s\n", i, fstr, ostr)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w, r.Summary())
}

// jsonDump is the machine-readable result, shaped like the lint and
// ratecheck dumps for tool symmetry. Struct fields only, no maps, so
// encoding/json emits deterministic bytes.
type jsonDump struct {
	Diagnostics     []lint.Diag       `json:"diagnostics"`
	Errors          int               `json:"errors"`
	Warnings        int               `json:"warnings"`
	Deadlock        PropertyResult    `json:"deadlock"`
	Equivalence     PropertyResult    `json:"equivalence"`
	Nodes           int               `json:"nodes"`
	Edges           int               `json:"edges"`
	StateBits       int               `json:"state_bits"`
	DeclaredPorts   int               `json:"declared_ports"`
	EnvEndpoints    int               `json:"env_endpoints"`
	States          int               `json:"states"`
	Steps           int               `json:"steps"`
	Counterexamples []*Counterexample `json:"counterexamples"`
	Notes           []string          `json:"notes"`
	Summary         string            `json:"summary"`
}

// WriteJSON writes the full result as canonical JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	d := jsonDump{
		Diagnostics:     r.Diags,
		Errors:          r.Errors(),
		Warnings:        r.Warnings(),
		Deadlock:        r.Deadlock,
		Equivalence:     r.Equivalence,
		Nodes:           r.Nodes,
		Edges:           r.Edges,
		StateBits:       r.StateBits,
		DeclaredPorts:   r.DeclaredPorts,
		EnvEndpoints:    r.EnvEndpoints,
		States:          r.States,
		Steps:           r.Steps,
		Counterexamples: r.Counterexamples,
		Notes:           r.Notes,
		Summary:         r.Summary(),
	}
	if d.Diagnostics == nil {
		d.Diagnostics = []lint.Diag{}
	}
	if d.Counterexamples == nil {
		d.Counterexamples = []*Counterexample{}
	}
	if d.Notes == nil {
		d.Notes = []string{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}
