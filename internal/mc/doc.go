// Package mc is the repo's bounded model checker for latency-insensitive
// channels — the bit-precise fourth leg of the verification ladder beside
// internal/lint (structural rules), internal/ratecheck (static SDF rate
// bounds) and the dynamic stall-hunter in internal/verif.
//
// The checker extracts an abstract token-flow model from the sim.Design
// side table: every bound channel and registered CDC synchronizer becomes
// an edge with integer occupancy state (visible tokens plus in-flight
// latency/sync stages), and every declared port owner becomes an
// AND-firing actor that consumes and produces its declared token rates
// per firing (ratecheck's SDF abstraction, made bit-precise). Endpoints
// the model cannot represent faithfully — anonymous testbench ports and
// ActorSwitch fabrics, whose routing is data-dependent — are replaced by
// free-running environment actors that may fire or stall arbitrarily;
// the Result counts those abstractions so callers can tell a proof about
// the whole design from a proof about its declared LI subgraph.
//
// States are packed bitvectors (internal/bitvec renders the visited-set
// keys); the search unrolls the synchronous transition relation up to a
// depth bound, enumerating every subset of enabled actors per cycle
// (firing is never compulsory — a stalled actor models arbitrary
// latency, which is exactly the latency-insensitive contract), with
// explicit-state hashing for the visited set. Two property classes are
// checked on every reachable state:
//
//   - MC-1 deadlock-freedom: no reachable state contains a cycle of
//     blocked actors each waiting on a condition only the next can
//     relieve (empty input -> that channel's sole producer, full output
//     -> its sole consumer). Such a cycle of circular necessary
//     conditions can never clear, so the report has no false positives
//     within the model; lint's DLK-1/2 static SCCs are cross-referenced
//     on the diagnostic.
//
//   - MC-2 equivalence: the sim-accurate (unbounded-buffer) and
//     signal-accurate (back-pressured) executions agree on the token
//     stream. A violation witness is a reachable state where an actor
//     has sufficient input tokens (it would fire under unbounded
//     buffering) but is permanently unable to fire under back-pressure —
//     either its output burst exceeds the channel's total storage
//     (ratecheck's RATE-3 minima seed these candidates) or it sits on a
//     deadlock cycle. From that state the unbounded execution delivers
//     tokens the back-pressured one never can.
//
// Verdicts are "proved" (the reachable state space was exhausted below
// the bound — a fixpoint), "bounded" (no violation within the depth
// bound, frontier nonempty), "violated" (counterexample attached), or
// "inconclusive" (state/step budget exhausted, or the per-state choice
// fan-out forced partial firing-subset enumeration). Counterexamples
// replay as trace.Recorder lanes so the existing VCD and analyzer
// tooling renders them; see Result.Replay.
//
// Everything is integer arithmetic over deterministic orders: no floats,
// no wall clock, no map iteration into output (cmd/detvet enforces all
// three), so tree/JSON reports are byte-identical on every host.
package mc
