package mc

import (
	"repro/internal/trace"
)

// Replay renders a counterexample into a trace recorder: one subject
// per model edge, with per-cycle occupancy, valid (tokens visible to
// the consumer), and ready (room for the producer's burst) events, plus
// a stall marker on the channels implicated by the violation at the
// final cycle. The recorder then feeds the existing tooling —
// trace.Recorder.WriteVCD for waveforms, Analyze for the backpressure
// report — so a model-checking counterexample debugs exactly like a
// failing stall-hunt.
func (r *Result) Replay(rec *trace.Recorder, cx *Counterexample) {
	if rec == nil || cx == nil || r.model == nil {
		return
	}
	m := r.model
	lane := rec.NewLane()
	bad := map[string]bool{}
	for _, c := range cx.Channels {
		bad[c] = true
	}
	if cx.Channel != "" {
		bad[cx.Channel] = true
	}
	// Reconstruct per-edge state along the trace from the recorded
	// firing schedule; Steps[i].Occ holds total occupancy, and the
	// visible/ready split replays through the model's step function.
	st := m.newState()
	for i, step := range cx.Steps {
		if i > 0 {
			fire := make([]bool, len(m.Nodes))
			fired := map[string]bool{}
			for _, name := range step.Fired {
				fired[name] = true
			}
			for u := range m.Nodes {
				fire[u] = fired[m.Nodes[u].Name]
			}
			st = m.step(st, fire)
		}
		for ei := range m.Edges {
			e := &m.Edges[ei]
			period := e.PeriodPS
			if period == 0 {
				period = 1000
			}
			t := uint64(i) * period
			lane.BeginEdge(t, 0)
			sub := rec.Subject(e.Name)
			occ := uint64(m.used(st, ei))
			valid := uint64(0)
			if m.vis(st, ei) >= e.ConsRate {
				valid = 1
			}
			ready := uint64(0)
			if m.used(st, ei)+e.ProdRate <= e.Storage() {
				ready = 1
			}
			sub.EmitOn(lane, trace.KindOcc, t, uint64(i), occ)
			sub.EmitOn(lane, trace.KindValid, t, uint64(i), valid)
			sub.EmitOn(lane, trace.KindReady, t, uint64(i), ready)
			if i == len(cx.Steps)-1 && bad[e.Name] {
				sub.EmitOn(lane, trace.KindStall, t, uint64(i), 1)
			}
		}
	}
	rec.MergeLanes([]*trace.Lane{lane})
}
