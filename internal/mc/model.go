package mc

import (
	"math/bits"
	"sort"

	"repro/internal/sim"
)

// Edge is one token-carrying channel of the abstract model: a bound LI
// channel or a registered CDC synchronizer. Occupancy state is split
// into a visible counter (tokens the consumer can pop) and Lat in-flight
// stage counters (tokens issued but still retiming through the
// channel's latency or the synchronizer's flop chain).
type Edge struct {
	Name     string
	Kind     string // channel kind, or "sync(<style>)" for a CDC FIFO
	Cap      int    // declared capacity, clamped >= 1 like the runtime
	Lat      int    // retiming stages (sync FIFOs model 2 CDC stages)
	Prod     int    // producing node index
	Cons     int    // consuming node index
	ProdRate int    // tokens pushed per producer firing (>= 1)
	ConsRate int    // tokens popped per consumer firing (>= 1)
	Sync     bool
	PeriodPS uint64 // producing clock period, for counterexample replay

	// Packed-state field layout: a visible-occupancy counter and Lat
	// stage counters. Fields never straddle a word boundary.
	visOff, visW     int
	stageOff, stageW int
}

// Storage is the total token capacity of the edge: declared slots plus
// one in-flight token burst per retiming stage.
func (e *Edge) Storage() int { return e.Cap + e.Lat*e.ProdRate }

// Node is an actor of the abstract model: a component path owning
// declared ports (AND-firing over all of them, the SDF abstraction), or
// an implicit free-running environment actor standing in for an
// endpoint the model cannot represent (anonymous port, switch fabric,
// or a synchronizer's surrounding clock domain).
type Node struct {
	Name string
	Env  bool  // implicit environment actor
	In   []int // edges consumed, model order
	Out  []int // edges produced, model order
}

// Model is the abstract token-flow system extracted from a sim.Design.
type Model struct {
	Nodes []Node
	Edges []Edge

	StateBits int // packed state width
	words     int

	DeclaredPorts int   // channel endpoints backed by declared ports
	EnvEndpoints  int   // endpoints abstracted to environment actors
	ApproxRates   int   // fractional declared rates approximated to 1
	Doomed        []int // edges whose producer burst exceeds Storage
}

// intRate collapses a declared endpoint rate to a whole token count per
// firing: undeclared means one token, and the rare fractional
// declaration (tokens averaged over several firings) is approximated to
// one token, counted in Model.ApproxRates.
func intRate(p *sim.PortDecl, approx *int) int {
	if p == nil || p.Rate.IsZero() {
		return 1
	}
	if p.Rate.Den != 1 {
		*approx++
		return 1
	}
	if p.Rate.Num < 1 {
		return 1
	}
	return int(p.Rate.Num)
}

// Build extracts the abstract model from a design side table. The
// extraction is deterministic: edges sort by name, nodes by name, and
// every adjacency list follows edge order.
func Build(d *sim.Design) *Model {
	m := &Model{}

	// Endpoints owned by switch actors (NoC routers, NIs, the SoC
	// nodes) route data-dependently; AND-firing would invent deadlocks
	// through the fabric, so those endpoints become environment actors.
	switchPaths := map[string]bool{}
	for _, a := range d.Actors() {
		if a.Class == sim.ActorSwitch {
			switchPaths[a.Path] = true
		}
	}

	type protoEdge struct {
		Edge
		prodName, consName string
		prodEnv, consEnv   bool
	}
	var protos []protoEdge

	endpoint := func(p *sim.PortDecl, envName string) (name string, env bool) {
		if p == nil || switchPaths[p.Path] {
			if p != nil {
				m.EnvEndpoints++ // switch fabric abstracted away
			} else {
				m.EnvEndpoints++ // anonymous testbench endpoint
			}
			return envName, true
		}
		m.DeclaredPorts++
		return p.Path, false
	}

	chans := append([]*sim.ChannelDecl(nil), d.Channels()...)
	sort.Slice(chans, func(i, j int) bool { return chans[i].Name < chans[j].Name })
	for _, c := range chans {
		var pe protoEdge
		pe.Name = c.Name
		pe.Kind = c.Kind
		pe.Cap = c.Capacity
		if pe.Cap < 1 {
			pe.Cap = 1
		}
		pe.Lat = c.Latency
		pe.ProdRate = intRate(c.Prod, &m.ApproxRates)
		pe.ConsRate = intRate(c.Cons, &m.ApproxRates)
		if c.Clock != nil {
			pe.PeriodPS = uint64(c.Clock.Period())
		}
		pe.prodName, pe.prodEnv = endpoint(c.Prod, "env:"+c.Name+".prod")
		pe.consName, pe.consEnv = endpoint(c.Cons, "env:"+c.Name+".cons")
		protos = append(protos, pe)
	}

	syncs := append([]*sim.SyncDecl(nil), d.Syncs()...)
	sort.Slice(syncs, func(i, j int) bool { return syncs[i].Name < syncs[j].Name })
	for _, sy := range syncs {
		var pe protoEdge
		pe.Name = sy.Name
		pe.Kind = "sync(" + sy.Style + ")"
		pe.Cap = sy.Depth
		if pe.Cap < 1 {
			pe.Cap = 1
		}
		pe.Lat = 2 // the synchronizer flop chain both styles share
		pe.ProdRate = 1
		pe.ConsRate = 1
		pe.Sync = true
		if sy.Prod != nil {
			pe.PeriodPS = uint64(sy.Prod.Period())
		}
		// The surrounding clock domains are the intended environment of
		// a CDC FIFO, not an abstraction loss: no EnvEndpoints count.
		pe.prodName, pe.prodEnv = "env:"+sy.Name+".tx", true
		pe.consName, pe.consEnv = "env:"+sy.Name+".rx", true
		protos = append(protos, pe)
	}

	// Duplicate channel names would alias state fields; the design layer
	// records such collisions for lint (CON-4), and the model keeps the
	// first edge per name so the state stays well-formed regardless.
	seen := map[string]bool{}
	kept := protos[:0]
	for _, pe := range protos {
		if seen[pe.Name] {
			continue
		}
		seen[pe.Name] = true
		kept = append(kept, pe)
	}
	protos = kept

	nodeIdx := map[string]int{}
	node := func(name string, env bool) int {
		if i, ok := nodeIdx[name]; ok {
			return i
		}
		nodeIdx[name] = len(m.Nodes)
		m.Nodes = append(m.Nodes, Node{Name: name, Env: env})
		return len(m.Nodes) - 1
	}
	// Two passes keep node numbering independent of edge interleaving:
	// first declared actors in sorted order, then env actors.
	var declared, envs []string
	for _, pe := range protos {
		if pe.prodEnv {
			envs = append(envs, pe.prodName)
		} else {
			declared = append(declared, pe.prodName)
		}
		if pe.consEnv {
			envs = append(envs, pe.consName)
		} else {
			declared = append(declared, pe.consName)
		}
	}
	sort.Strings(declared)
	sort.Strings(envs)
	for _, n := range declared {
		node(n, false)
	}
	for _, n := range envs {
		node(n, true)
	}

	for _, pe := range protos {
		e := pe.Edge
		e.Prod = node(pe.prodName, pe.prodEnv)
		e.Cons = node(pe.consName, pe.consEnv)
		ei := len(m.Edges)
		m.Edges = append(m.Edges, e)
		m.Nodes[e.Prod].Out = append(m.Nodes[e.Prod].Out, ei)
		m.Nodes[e.Cons].In = append(m.Nodes[e.Cons].In, ei)
	}

	m.layout()
	for ei := range m.Edges {
		e := &m.Edges[ei]
		if e.ProdRate > e.Storage() {
			m.Doomed = append(m.Doomed, ei)
		}
	}
	return m
}

// layout assigns packed-state field offsets. Fields are kept inside a
// single 64-bit word each (padding to the next word when one would
// straddle), so get/set are single-word shifts.
func (m *Model) layout() {
	off := 0
	place := func(w int) int {
		if off/64 != (off+w-1)/64 {
			off = (off/64 + 1) * 64
		}
		o := off
		off += w
		return o
	}
	for ei := range m.Edges {
		e := &m.Edges[ei]
		e.visW = bits.Len(uint(e.Storage()))
		e.visOff = place(e.visW)
		if e.Lat > 0 {
			e.stageW = bits.Len(uint(e.ProdRate))
			for i := 0; i < e.Lat; i++ {
				o := place(e.stageW)
				if i == 0 {
					e.stageOff = o
				}
			}
		}
	}
	m.StateBits = off
	if m.StateBits == 0 {
		m.StateBits = 1 // a degenerate empty model still needs a key
	}
	m.words = (m.StateBits + 63) / 64
}

// state is one packed configuration of every edge's occupancy fields.
type state []uint64

func (m *Model) newState() state { return make(state, m.words) }

func get(s state, off, w int) int {
	return int((s[off/64] >> (uint(off) % 64)) & (1<<uint(w) - 1))
}

func set(s state, off, w, v int) {
	mask := uint64(1<<uint(w)-1) << (uint(off) % 64)
	s[off/64] = s[off/64]&^mask | uint64(v)<<(uint(off)%64)&mask
}

// vis is the consumer-visible occupancy of edge ei.
func (m *Model) vis(s state, ei int) int {
	e := &m.Edges[ei]
	return get(s, e.visOff, e.visW)
}

// used is the total token count held by edge ei: visible plus in-flight.
func (m *Model) used(s state, ei int) int {
	e := &m.Edges[ei]
	u := get(s, e.visOff, e.visW)
	for i := 0; i < e.Lat; i++ {
		u += m.stageGet(s, e, i)
	}
	return u
}

// stageAt returns the offset of stage i of edge ei. Stages are placed
// consecutively by layout (modulo word padding), so recompute the same
// placement walk.
func (m *Model) stageGet(s state, e *Edge, i int) int {
	return get(s, m.stageOffOf(e, i), e.stageW)
}

func (m *Model) stageOffOf(e *Edge, i int) int {
	// layout placed stage fields back to back starting at stageOff; a
	// field never straddles a word, so the only discontinuities are word
	// boundaries. Recreate the placement walk from stageOff.
	off := e.stageOff
	for k := 0; k < i; k++ {
		off += e.stageW
		if off/64 != (off+e.stageW-1)/64 {
			off = (off/64 + 1) * 64
		}
	}
	return off
}

// enabled reports whether node u can fire in the back-pressured
// (signal-accurate) semantics: every input edge has its pop visible and
// every output edge has room for its full burst.
func (m *Model) enabled(s state, u int) bool {
	n := &m.Nodes[u]
	for _, ei := range n.In {
		if m.vis(s, ei) < m.Edges[ei].ConsRate {
			return false
		}
	}
	for _, ei := range n.Out {
		e := &m.Edges[ei]
		if m.used(s, ei)+e.ProdRate > e.Storage() {
			return false
		}
	}
	return true
}

// specEnabled reports whether node u would fire under sim-accurate
// (unbounded-buffer) semantics: inputs suffice, back-pressure ignored.
// Total (not merely visible) occupancy counts, since in-flight tokens
// arrive without any other actor firing.
func (m *Model) specEnabled(s state, u int) bool {
	for _, ei := range m.Nodes[u].In {
		if m.used(s, ei) < m.Edges[ei].ConsRate {
			return false
		}
	}
	return true
}

// step computes the successor state when exactly the nodes with
// fire[u]==true fire (all must be enabled against s). Semantics are
// synchronous with pre-state gating: pops take cycle-start visible
// tokens, every latency stage advances one slot, and pushes enter the
// tail stage (or the visible counter on zero-latency edges).
func (m *Model) step(s state, fire []bool) state {
	ns := m.newState()
	copy(ns, s)
	for ei := range m.Edges {
		e := &m.Edges[ei]
		pop, push := 0, 0
		if fire[e.Cons] {
			pop = e.ConsRate
		}
		if fire[e.Prod] {
			push = e.ProdRate
		}
		if pop == 0 && push == 0 && e.Lat == 0 {
			continue
		}
		v := get(s, e.visOff, e.visW) - pop
		if e.Lat > 0 {
			v += m.stageGet(s, e, 0)
			for i := 0; i < e.Lat-1; i++ {
				set(ns, m.stageOffOf(e, i), e.stageW, m.stageGet(s, e, i+1))
			}
			set(ns, m.stageOffOf(e, e.Lat-1), e.stageW, push)
		} else {
			v += push
		}
		set(ns, e.visOff, e.visW, v)
	}
	return ns
}
