package mc_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/mc"
	"repro/internal/soc"
	"repro/internal/trace"
)

func buildNamed(t *testing.T, cases []soc.TestCase, name string) *soc.SoC {
	t.Helper()
	for _, tc := range cases {
		if tc.Name == name {
			s, _ := tc.Build(soc.DefaultConfig())
			return s
		}
	}
	t.Fatalf("no case named %q", name)
	return nil
}

// The serializer chain example must be proved outright: every endpoint
// is declared, so the reachable state space is closed and small.
func TestProvesSerdes(t *testing.T) {
	s := buildNamed(t, soc.MCExamples(), "mcserdes")
	r := mc.Check(s.Sim, mc.Options{})
	if !r.Proved() {
		t.Fatalf("serdes not proved: deadlock=%s equivalence=%s notes=%v",
			r.Deadlock.Verdict, r.Equivalence.Verdict, r.Notes)
	}
	if len(r.Diags) != 0 {
		t.Fatalf("unexpected diagnostics: %+v", r.Diags)
	}
	if r.EnvEndpoints != 0 {
		t.Fatalf("serdes model should be closed, got %d env endpoints", r.EnvEndpoints)
	}
}

// The GALS crossing example: one pausible bisync FIFO between drifting
// clocks, proved deadlock-free and equivalent within the bound.
func TestProvesGals(t *testing.T) {
	s := buildNamed(t, soc.MCExamples(), "mcgals")
	r := mc.Check(s.Sim, mc.Options{})
	if !r.Proved() {
		t.Fatalf("gals crossing not proved: deadlock=%s equivalence=%s notes=%v",
			r.Deadlock.Verdict, r.Equivalence.Verdict, r.Notes)
	}
	if len(r.Diags) != 0 {
		t.Fatalf("unexpected diagnostics: %+v", r.Diags)
	}
}

// The seeded token ring must be caught as a reachable deadlock (MC-1),
// cross-referenced against lint's static DLK SCC.
func TestFindsSeededDeadlock(t *testing.T) {
	s := buildNamed(t, soc.MCFixtures(), "mcdeadlock")
	r := mc.Check(s.Sim, mc.Options{})
	if r.Deadlock.Verdict != mc.VerdictViolated {
		t.Fatalf("deadlock verdict = %s, want violated", r.Deadlock.Verdict)
	}
	var d string
	for _, diag := range r.Diags {
		if diag.Rule == "MC-1" {
			d = diag.Message
		}
	}
	if d == "" {
		t.Fatalf("no MC-1 diagnostic: %+v", r.Diags)
	}
	if !strings.Contains(d, "fixture/a") || !strings.Contains(d, "fixture/b") {
		t.Fatalf("MC-1 message does not name the ring actors: %s", d)
	}
	if !strings.Contains(d, "DLK-2") {
		t.Fatalf("MC-1 message does not cross-reference lint's static SCC: %s", d)
	}
	if r.Err() == nil {
		t.Fatal("violated result must carry an error")
	}
}

// The undersized-buffer fixture must be caught as an equivalence
// violation (MC-2) with a witness at the accumulator-fill depth, and
// the hint must cite ratecheck's RATE-3 minimum as the repair.
func TestFindsBufferEquivalenceViolation(t *testing.T) {
	s := buildNamed(t, soc.MCFixtures(), "mcbufeqv")
	r := mc.Check(s.Sim, mc.Options{})
	if r.Equivalence.Verdict != mc.VerdictViolated {
		t.Fatalf("equivalence verdict = %s, want violated", r.Equivalence.Verdict)
	}
	var hint, msg string
	for _, diag := range r.Diags {
		if diag.Rule == "MC-2" {
			hint, msg = diag.Hint, diag.Message
		}
	}
	if msg == "" {
		t.Fatalf("no MC-2 diagnostic: %+v", r.Diags)
	}
	if !strings.Contains(msg, "fixture/qburst") {
		t.Fatalf("MC-2 message does not name the undersized channel: %s", msg)
	}
	if !strings.Contains(hint, "RATE-3") {
		t.Fatalf("MC-2 hint does not cite the ratecheck minimum: %s", hint)
	}
	var eq *mc.Counterexample
	for _, cx := range r.Counterexamples {
		if cx.Property == "equivalence" {
			eq = cx
		}
	}
	if eq == nil {
		t.Fatal("no equivalence counterexample")
	}
	if eq.Depth < 4 {
		t.Fatalf("equivalence witness at depth %d, want >= 4 (the accumulator must fill first)", eq.Depth)
	}
	if len(eq.Steps) != eq.Depth+1 {
		t.Fatalf("counterexample has %d steps for depth %d", len(eq.Steps), eq.Depth)
	}
}

// A counterexample must replay through the trace recorder and render as
// a VCD via the existing tooling.
func TestCounterexampleReplaysAsVCD(t *testing.T) {
	s := buildNamed(t, soc.MCFixtures(), "mcdeadlock")
	r := mc.Check(s.Sim, mc.Options{})
	if len(r.Counterexamples) == 0 {
		t.Fatal("no counterexample to replay")
	}
	rec := trace.NewRecorder()
	r.Replay(rec, r.Counterexamples[0])
	var vcd bytes.Buffer
	if _, _, err := rec.WriteVCD(&vcd); err != nil {
		t.Fatalf("WriteVCD: %v", err)
	}
	out := vcd.String()
	for _, want := range []string{"$var", "ab", "ba", "valid", "ready", "occ"} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
}

// Tree and JSON renderings must be byte-identical across runs: the
// search, the diagnostics, and the renderers are all deterministic.
func TestByteStableOutput(t *testing.T) {
	for _, name := range []string{"mcserdes", "mcdeadlock", "mcbufeqv"} {
		cases := append(soc.MCExamples(), soc.MCFixtures()...)
		render := func() (string, string) {
			s := buildNamed(t, cases, name)
			r := mc.Check(s.Sim, mc.Options{})
			var tree, js bytes.Buffer
			r.WriteTree(&tree)
			if err := r.WriteJSON(&js); err != nil {
				t.Fatalf("WriteJSON: %v", err)
			}
			return tree.String(), js.String()
		}
		t1, j1 := render()
		t2, j2 := render()
		if t1 != t2 {
			t.Fatalf("%s: tree output not byte-stable", name)
		}
		if j1 != j2 {
			t.Fatalf("%s: JSON output not byte-stable", name)
		}
	}
}

// A design with nothing declared has nothing to prove, and must say so
// rather than claim a meaningful verdict over an empty model.
func TestOptionsBudgetDegradesVerdict(t *testing.T) {
	s := buildNamed(t, soc.MCExamples(), "mcserdes")
	r := mc.Check(s.Sim, mc.Options{MaxStates: 4})
	if r.Deadlock.Verdict == mc.VerdictProved || r.Equivalence.Verdict == mc.VerdictProved {
		t.Fatalf("budget-starved search must not claim a proof: deadlock=%s equivalence=%s",
			r.Deadlock.Verdict, r.Equivalence.Verdict)
	}
}
