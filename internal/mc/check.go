package mc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/lint"
	"repro/internal/ratecheck"
	"repro/internal/sim"
)

// Options bounds the search. The zero value selects the defaults below;
// every bound is a budget, not a promise — exceeding one degrades the
// verdict to "inconclusive" rather than silently truncating coverage.
type Options struct {
	// Depth is the unroll bound in cycles (default 64).
	Depth int
	// MaxStates caps the visited set (default 32768).
	MaxStates int
	// MaxSteps caps successor computations (default 262144), the actual
	// work bound on models whose choice fan-out dwarfs the state count.
	MaxSteps int
	// MaxChoice is the largest enabled-actor count for which every
	// firing subset is enumerated (default 12, i.e. 4096 successors).
	// Above it the search falls back to a partial stall adversary —
	// still able to find violations, never able to prove their absence.
	MaxChoice int
	// Progress, when set, is called once per completed unroll depth.
	Progress func(depth, states int)
}

func (o Options) withDefaults() Options {
	if o.Depth <= 0 {
		o.Depth = 64
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 1 << 15
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 1 << 18
	}
	if o.MaxChoice <= 0 {
		o.MaxChoice = 12
	}
	return o
}

// Verdict values for one property.
const (
	VerdictProved       = "proved"       // reachable states exhausted below the bound
	VerdictBounded      = "bounded"      // no violation within the depth bound
	VerdictViolated     = "violated"     // counterexample attached
	VerdictInconclusive = "inconclusive" // budget or choice fan-out exceeded
)

// PropertyResult is the outcome for one property class.
type PropertyResult struct {
	Verdict string `json:"verdict"`
	// Depth is the counterexample depth when violated, else the deepest
	// unroll depth the exhaustive search completed.
	Depth int `json:"depth"`
}

// Step is one cycle of a counterexample trace: which actors fired, and
// the total per-edge occupancy after the cycle (model edge order).
type Step struct {
	Fired []string `json:"fired"`
	Occ   []int    `json:"occ"`
}

// Counterexample is a replayable violation witness: the firing schedule
// from the initial (all-empty) state to the violating state.
type Counterexample struct {
	Property string   `json:"property"` // "deadlock" or "equivalence"
	Rule     string   `json:"rule"`     // MC-1 or MC-2
	Depth    int      `json:"depth"`
	Node     string   `json:"node,omitempty"`     // MC-2: the diverging actor
	Channel  string   `json:"channel,omitempty"`  // MC-2: the starving channel
	Cycle    []string `json:"cycle,omitempty"`    // MC-1: the wait-for cycle
	Channels []string `json:"channels,omitempty"` // MC-1: channels on the cycle
	Steps    []Step   `json:"steps"`              // depth+1 entries, initial state first
	State    string   `json:"state"`              // packed violating state (bitvec)
}

// Result is one model-checking run's report. Its diagnostic surface
// mirrors lint and ratecheck so the socsim/serve renderers compose.
type Result struct {
	Diags []lint.Diag

	Deadlock    PropertyResult
	Equivalence PropertyResult

	Counterexamples []*Counterexample
	Notes           []string

	// Model shape, for the report and for callers deciding how much the
	// proof covers (see verif.ModelCheckThenRun).
	Nodes         int
	Edges         int
	StateBits     int
	DeclaredPorts int
	EnvEndpoints  int
	ApproxRates   int

	States int // reachable states explored
	Steps  int // successor computations spent

	model *Model
}

// Errors returns the number of error-severity diagnostics.
func (r *Result) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == lint.SevError {
			n++
		}
	}
	return n
}

// Warnings returns the number of warning-severity diagnostics.
func (r *Result) Warnings() int { return len(r.Diags) - r.Errors() }

// Summary renders the one-line outcome.
func (r *Result) Summary() string {
	return fmt.Sprintf("mc: %d error(s), %d warning(s), deadlock=%s, equivalence=%s, %d state(s), depth %d",
		r.Errors(), r.Warnings(), r.Deadlock.Verdict, r.Equivalence.Verdict, r.States, r.maxPropDepth())
}

func (r *Result) maxPropDepth() int {
	d := r.Deadlock.Depth
	if r.Equivalence.Depth > d {
		d = r.Equivalence.Depth
	}
	return d
}

// Err returns a non-nil error when any property is violated.
func (r *Result) Err() error {
	if r.Errors() > 0 {
		return fmt.Errorf("%s", r.Summary())
	}
	return nil
}

// Proved reports whether both properties were proved by exhausting the
// reachable state space — the precondition for treating the design as
// verified within the model.
func (r *Result) Proved() bool {
	return r.Deadlock.Verdict == VerdictProved && r.Equivalence.Verdict == VerdictProved
}

// Check model-checks the simulator's declared design. It never runs the
// simulation; the model is extracted from the sim.Design side table.
func Check(s *sim.Simulator, opt Options) *Result {
	opt = opt.withDefaults()
	m := Build(s.Design())
	r := &Result{
		Nodes: len(m.Nodes), Edges: len(m.Edges), StateBits: m.StateBits,
		DeclaredPorts: m.DeclaredPorts, EnvEndpoints: m.EnvEndpoints,
		ApproxRates: m.ApproxRates,
		model:       m,
	}
	if m.EnvEndpoints > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("%d endpoint(s) abstracted to free-running environment actors (anonymous ports or switch fabrics); the verdicts cover the declared LI subgraph only", m.EnvEndpoints))
	}
	if m.ApproxRates > 0 {
		r.Notes = append(r.Notes, fmt.Sprintf("%d fractional rate declaration(s) approximated to 1 token/firing", m.ApproxRates))
	}
	if len(m.Edges) == 0 {
		r.Deadlock = PropertyResult{Verdict: VerdictProved}
		r.Equivalence = PropertyResult{Verdict: VerdictProved}
		r.Notes = append(r.Notes, "no channels or synchronizers declared; nothing to check")
		return r
	}

	sr := &search{m: m, opt: opt}
	sr.directed()
	if sr.foundDL == nil || sr.foundEQ == nil {
		sr.run()
	}
	sr.verdicts(r)
	r.diagnose(s)
	return r
}

// dlHit and eqHit are raw property violations on one state, before a
// counterexample trace is attached.
type dlHit struct {
	cycle []int
	chans []string
}

type eqHit struct {
	node, edge int
}

// violations evaluates both properties on one state. The equivalence
// witness is an actor with sufficient input tokens (the sim-accurate
// run fires it) that is permanently unable to fire back-pressured:
// either its burst structurally exceeds an output's storage, or it sits
// on a deadlock cycle blocked by a full output.
func (m *Model) violations(s state, needDL, needEQ bool) (*dlHit, *eqHit) {
	var dl *dlHit
	var eq *eqHit
	if needDL || needEQ {
		if cyc, chans := m.deadlockCycle(s); cyc != nil {
			dl = &dlHit{cycle: cyc, chans: chans}
			if needEQ {
			cycleScan:
				for _, u := range cyc {
					if !m.specEnabled(s, u) {
						continue
					}
					for _, ei := range m.Nodes[u].Out {
						e := &m.Edges[ei]
						if m.used(s, ei)+e.ProdRate > e.Storage() {
							eq = &eqHit{node: u, edge: ei}
							break cycleScan
						}
					}
				}
			}
		}
	}
	if needEQ && eq == nil {
		for _, ei := range m.Doomed {
			if u := m.Edges[ei].Prod; m.specEnabled(s, u) {
				eq = &eqHit{node: u, edge: ei}
				break
			}
		}
	}
	if !needDL {
		dl = nil
	}
	return dl, eq
}

type entry struct {
	st     state
	parent int32
	fired  []bool // firing choice that produced this state (nil for root)
	depth  int32
}

type search struct {
	m   *Model
	opt Options

	entries []entry
	seen    map[string]int32

	truncated bool // partial firing-subset enumeration happened
	budget    bool // MaxStates or MaxSteps exhausted
	clipped   bool // a state at the depth bound was left unexpanded
	steps     int
	maxDepth  int
	dirStates int // directed-trajectory states visited

	foundDL *Counterexample
	foundEQ *Counterexample
}

func (s *search) key(st state) string {
	return string(bitvec.FromWords(st, s.m.StateBits).Bytes())
}

// directed runs the deterministic maximal-firing trajectory up to the
// depth bound, checking both properties along the way. On models too
// large to exhaust it is the cheap lane that still reaches deep
// fill-type witnesses (every producer pushing as fast as back-pressure
// allows); on small models it merely duplicates a BFS prefix.
func (s *search) directed() {
	m := s.m
	type frame struct {
		st    state
		fired []bool
	}
	traj := []frame{{st: m.newState()}}
	mkcx := func(hitDepth int) *Counterexample {
		cx := &Counterexample{
			Depth: hitDepth,
			State: bitvec.FromWords(traj[hitDepth].st, m.StateBits).String(),
		}
		for i := 0; i <= hitDepth; i++ {
			st := Step{Fired: []string{}, Occ: make([]int, len(m.Edges))}
			if traj[i].fired != nil {
				for u, f := range traj[i].fired {
					if f {
						st.Fired = append(st.Fired, m.Nodes[u].Name)
					}
				}
			}
			for ei := range m.Edges {
				st.Occ[ei] = m.used(traj[i].st, ei)
			}
			cx.Steps = append(cx.Steps, st)
		}
		return cx
	}
	for d := 0; ; d++ {
		s.dirStates = d + 1
		cur := traj[d].st
		dl, eq := m.violations(cur, s.foundDL == nil, s.foundEQ == nil)
		if dl != nil {
			s.foundDL = mkcx(d)
			s.foundDL.Property = "deadlock"
			s.foundDL.Rule = "MC-1"
			for _, u := range dl.cycle {
				s.foundDL.Cycle = append(s.foundDL.Cycle, m.Nodes[u].Name)
			}
			s.foundDL.Channels = dl.chans
		}
		if eq != nil {
			s.foundEQ = mkcx(d)
			s.foundEQ.Property = "equivalence"
			s.foundEQ.Rule = "MC-2"
			s.foundEQ.Node = m.Nodes[eq.node].Name
			s.foundEQ.Channel = m.Edges[eq.edge].Name
		}
		if d >= s.opt.Depth || (s.foundDL != nil && s.foundEQ != nil) {
			return
		}
		fire := make([]bool, len(m.Nodes))
		for u := range m.Nodes {
			if m.enabled(cur, u) {
				fire[u] = true
			}
		}
		ns := m.step(cur, fire)
		if s.key(ns) == s.key(cur) {
			return // quiescent: nothing enabled, pipelines drained
		}
		traj = append(traj, frame{st: ns, fired: fire})
	}
}

// run is the exhaustive lane: breadth-first search over every firing
// subset with explicit-state hashing. BFS order makes the first
// counterexample per property a shallowest one.
func (s *search) run() {
	s.seen = make(map[string]int32, 1024)
	s.add(s.m.newState(), -1, nil, 0)

	reported := 0 // next depth to report via Progress
	for qi := 0; qi < len(s.entries); qi++ {
		e := &s.entries[qi]
		d := int(e.depth)
		if d > s.maxDepth {
			s.maxDepth = d
		}
		if s.opt.Progress != nil && d >= reported {
			s.opt.Progress(d, len(s.entries))
			reported = d + 1
		}
		s.checkState(int32(qi), e)
		if s.foundDL != nil && s.foundEQ != nil {
			return
		}
		if d >= s.opt.Depth {
			s.clipped = true
			continue
		}
		if !s.expand(int32(qi), e) {
			return
		}
	}
}

func (s *search) add(st state, parent int32, fired []bool, depth int32) {
	k := s.key(st)
	if _, ok := s.seen[k]; ok {
		return
	}
	s.seen[k] = int32(len(s.entries))
	s.entries = append(s.entries, entry{st: st, parent: parent, fired: fired, depth: depth})
}

// expand enqueues the successors of one state; false stops the search.
func (s *search) expand(qi int32, e *entry) bool {
	m := s.m
	var en []int
	for u := range m.Nodes {
		if m.enabled(e.st, u) {
			en = append(en, u)
		}
	}
	try := func(fire []bool) bool {
		if len(s.entries) >= s.opt.MaxStates || s.steps >= s.opt.MaxSteps {
			s.budget = true
			return false
		}
		s.steps++
		s.add(m.step(e.st, fire), qi, fire, e.depth+1)
		return true
	}
	if len(en) <= s.opt.MaxChoice {
		for mask := 0; mask < 1<<len(en); mask++ {
			fire := make([]bool, len(m.Nodes))
			for i, u := range en {
				if mask&(1<<i) != 0 {
					fire[u] = true
				}
			}
			if !try(fire) {
				return false
			}
		}
		return true
	}
	// Partial stall adversary: the maximal firing, each single stall,
	// and the global stall. Finds bugs; cannot prove their absence.
	s.truncated = true
	all := make([]bool, len(m.Nodes))
	for _, u := range en {
		all[u] = true
	}
	if !try(all) {
		return false
	}
	for _, u := range en {
		one := make([]bool, len(m.Nodes))
		copy(one, all)
		one[u] = false
		if !try(one) {
			return false
		}
	}
	return try(make([]bool, len(m.Nodes)))
}

// checkState evaluates both properties on a reached state and records
// the first (hence shallowest, by BFS order) counterexample of each.
func (s *search) checkState(qi int32, e *entry) {
	m := s.m
	dl, eq := m.violations(e.st, s.foundDL == nil, s.foundEQ == nil)
	if dl != nil {
		cx := s.counterexample(qi, e)
		cx.Property = "deadlock"
		cx.Rule = "MC-1"
		for _, u := range dl.cycle {
			cx.Cycle = append(cx.Cycle, m.Nodes[u].Name)
		}
		cx.Channels = dl.chans
		s.foundDL = cx
	}
	if eq != nil {
		cx := s.counterexample(qi, e)
		cx.Property = "equivalence"
		cx.Rule = "MC-2"
		cx.Node = m.Nodes[eq.node].Name
		cx.Channel = m.Edges[eq.edge].Name
		s.foundEQ = cx
	}
}

// counterexample reconstructs the firing schedule from the root to the
// given entry.
func (s *search) counterexample(qi int32, e *entry) *Counterexample {
	m := s.m
	var chain []int32
	for i := qi; i >= 0; i = s.entries[i].parent {
		chain = append(chain, i)
	}
	cx := &Counterexample{
		Depth: int(e.depth),
		State: bitvec.FromWords(e.st, m.StateBits).String(),
	}
	for i := len(chain) - 1; i >= 0; i-- {
		en := &s.entries[chain[i]]
		st := Step{Fired: []string{}, Occ: make([]int, len(m.Edges))}
		if en.fired != nil {
			for u, f := range en.fired {
				if f {
					st.Fired = append(st.Fired, m.Nodes[u].Name)
				}
			}
		}
		for ei := range m.Edges {
			st.Occ[ei] = m.used(en.st, ei)
		}
		cx.Steps = append(cx.Steps, st)
	}
	return cx
}

// deadlockCycle looks for a cycle of blocked actors whose unsatisfied
// necessary conditions point at each other: an empty-ish input waits on
// the edge's sole producer, an over-full output on its sole consumer.
// Conditions that in-flight tokens will relieve on their own generate
// no wait edge, so a reported cycle can never clear — a true deadlock
// within the model.
func (m *Model) deadlockCycle(s state) (cycle []int, chans []string) {
	n := len(m.Nodes)
	blocked := make([]bool, n)
	for u := 0; u < n; u++ {
		blocked[u] = !m.enabled(s, u)
	}
	adj := make([][]int, n) // wait-for targets
	via := make([][]int, n) // edge behind each wait
	for u := 0; u < n; u++ {
		if !blocked[u] {
			continue
		}
		for _, ei := range m.Nodes[u].In {
			e := &m.Edges[ei]
			if m.used(s, ei) < e.ConsRate && blocked[e.Prod] {
				adj[u] = append(adj[u], e.Prod)
				via[u] = append(via[u], ei)
			}
		}
		for _, ei := range m.Nodes[u].Out {
			e := &m.Edges[ei]
			if m.used(s, ei)+e.ProdRate > e.Storage() && blocked[e.Cons] {
				adj[u] = append(adj[u], e.Cons)
				via[u] = append(via[u], ei)
			}
		}
	}
	// Iterative DFS over the wait-for graph; a gray-node hit is a cycle.
	color := make([]int8, n) // 0 white, 1 gray, 2 black
	var stack []int
	var stackEdge []int // index into adj[stack[i]] taken from each frame
	for start := 0; start < n; start++ {
		if color[start] != 0 || !blocked[start] {
			continue
		}
		stack = append(stack[:0], start)
		stackEdge = append(stackEdge[:0], 0)
		color[start] = 1
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			i := stackEdge[len(stack)-1]
			if i >= len(adj[u]) {
				color[u] = 2
				stack = stack[:len(stack)-1]
				stackEdge = stackEdge[:len(stackEdge)-1]
				continue
			}
			stackEdge[len(stackEdge)-1]++
			v := adj[u][i]
			if color[v] == 1 {
				// Unwind the stack back to v: that slice is the cycle.
				at := len(stack) - 1
				for stack[at] != v {
					at--
				}
				cycle = append([]int(nil), stack[at:]...)
				chanSet := map[string]bool{}
				for j, cu := range cycle {
					next := cycle[(j+1)%len(cycle)]
					for k, t := range adj[cu] {
						if t == next {
							chanSet[m.Edges[via[cu][k]].Name] = true
						}
					}
				}
				for name := range chanSet { //detvet:ok sorted below
					chans = append(chans, name)
				}
				sort.Strings(chans)
				return cycle, chans
			}
			if color[v] == 0 {
				color[v] = 1
				stack = append(stack, v)
				stackEdge = append(stackEdge, 0)
			}
		}
	}
	return nil, nil
}

// verdicts folds the search outcome into per-property verdicts.
func (s *search) verdicts(r *Result) {
	r.States = len(s.entries) + s.dirStates
	r.Steps = s.steps
	fixpoint := len(s.entries) > 0 && !s.budget && !s.truncated && !s.clipped
	boundOK := len(s.entries) > 0 && !s.budget && !s.truncated
	settle := func(found *Counterexample) PropertyResult {
		switch {
		case found != nil:
			return PropertyResult{Verdict: VerdictViolated, Depth: found.Depth}
		case fixpoint:
			return PropertyResult{Verdict: VerdictProved, Depth: s.maxDepth}
		case boundOK:
			return PropertyResult{Verdict: VerdictBounded, Depth: s.maxDepth}
		default:
			return PropertyResult{Verdict: VerdictInconclusive, Depth: s.maxDepth}
		}
	}
	r.Deadlock = settle(s.foundDL)
	r.Equivalence = settle(s.foundEQ)
	if s.foundDL != nil {
		r.Counterexamples = append(r.Counterexamples, s.foundDL)
	}
	if s.foundEQ != nil {
		r.Counterexamples = append(r.Counterexamples, s.foundEQ)
	}
	if s.truncated {
		r.Notes = append(r.Notes, fmt.Sprintf("choice fan-out exceeded MaxChoice=%d: partial stall adversary used; absence of violations is not proved", s.opt.MaxChoice))
	}
	if s.budget {
		r.Notes = append(r.Notes, fmt.Sprintf("search budget exhausted (%d state(s), %d step(s)); coverage is partial", len(s.entries), s.steps))
	}
}

// diagnose renders counterexamples as lint-style diagnostics,
// cross-referencing lint's static deadlock SCCs and ratecheck's RATE-3
// buffer minima as invariant candidates.
func (r *Result) diagnose(s *sim.Simulator) {
	if len(r.Counterexamples) == 0 {
		return
	}
	lr := lint.Check(s)
	rr := ratecheck.Check(s)
	for _, cx := range r.Counterexamples {
		switch cx.Rule {
		case "MC-1":
			msg := fmt.Sprintf("reachable deadlock at depth %d: circular wait %s", cx.Depth, strings.Join(cx.Cycle, " -> "))
			if static := staticDLK(lr, cx.Channels); static != "" {
				msg += " (statically flagged: " + static + ")"
			}
			r.Diags = append(r.Diags, lint.Diag{
				Rule:     "MC-1",
				Severity: lint.SevError,
				Path:     cx.Cycle[0],
				Message:  msg,
				Hint:     "every actor on the cycle waits on a condition only the next can relieve; add initial tokens, deepen a buffer on the cycle, or break the loop",
				Channels: cx.Channels,
			})
		case "MC-2":
			var e *Edge
			for i := range r.model.Edges {
				if r.model.Edges[i].Name == cx.Channel {
					e = &r.model.Edges[i]
				}
			}
			msg := fmt.Sprintf("equivalence violation at depth %d: %q has sufficient input tokens (the sim-accurate run fires it) but can never push %d token(s) through %q (storage %d)", cx.Depth, cx.Node, e.ProdRate, cx.Channel, e.Storage())
			hint := fmt.Sprintf("deepen %q to hold the %d-token burst", cx.Channel, e.ProdRate)
			if min := rr.ChannelMinDepth(cx.Channel); min > 0 {
				hint += fmt.Sprintf(" (ratecheck RATE-3 minimum depth: %d)", min)
			}
			r.Diags = append(r.Diags, lint.Diag{
				Rule:     "MC-2",
				Severity: lint.SevError,
				Path:     cx.Node,
				Message:  msg,
				Hint:     hint,
				Channels: []string{cx.Channel},
			})
		}
	}
	sort.SliceStable(r.Diags, func(i, j int) bool { return r.Diags[i].Rule < r.Diags[j].Rule })
}

// staticDLK names the lint deadlock rules whose SCC shares a channel
// with the model-checked cycle.
func staticDLK(lr *lint.Result, chans []string) string {
	inCycle := map[string]bool{}
	for _, c := range chans {
		inCycle[c] = true
	}
	var rules []string
	seenRule := map[string]bool{}
	for _, d := range lr.Diags {
		if (d.Rule != "DLK-1" && d.Rule != "DLK-2") || seenRule[d.Rule] {
			continue
		}
		for _, c := range d.Channels {
			if inCycle[c] {
				rules = append(rules, d.Rule)
				seenRule[d.Rule] = true
				break
			}
		}
	}
	sort.Strings(rules)
	return strings.Join(rules, ", ")
}
