package serve

import (
	"errors"
	"fmt"
)

// The programmatic submission surface. The HTTP handlers are thin
// wrappers over it; the fleet layer's worker mode (internal/fleet)
// drives it directly, bridging gateway wire frames onto the same
// admission queue, cache, and event plumbing the HTTP path uses — one
// code path, two front ends.

// ErrDraining rejects submissions to a server that has begun its drain.
// The HTTP surface renders it as 503.
var ErrDraining = errors.New("serve: draining: not admitting jobs")

// QueueFullError rejects a submission the bounded admission queue could
// not absorb, with the server's own backoff estimate. The HTTP surface
// renders it as 429 + Retry-After; a fleet worker relays it to the
// gateway as a shed frame so the gateway can route around the hot spot.
type QueueFullError struct {
	Depth      int // configured queue capacity
	RetryAfter int // suggested client backoff, seconds
}

func (e *QueueFullError) Error() string {
	return fmt.Sprintf("serve: queue full (%d deep): retry after %ds", e.Depth, e.RetryAfter)
}

// Submission is a handle on one admitted (or cache-satisfied) job.
type Submission struct {
	ID     string
	Hash   uint64
	Cached bool // satisfied from the result cache at submission time
	t      *task
}

// Done returns a channel closed when the job reaches a terminal state.
func (sub *Submission) Done() <-chan struct{} { return sub.t.done }

// Snapshot returns the job's current status ("queued", "running",
// "done", "failed", "canceled"), its result body when done, its error
// message when failed or canceled, and whether the body came from the
// cache. The body is the canonical result — callers must not mutate it.
func (sub *Submission) Snapshot() (status string, body []byte, errMsg string, cached bool) {
	return sub.t.snapshot()
}

// Watch subscribes to the job's event log: the replay of everything
// published so far plus, while the log is open, a live channel closed
// on the terminal event. cancel detaches the watcher.
func (sub *Submission) Watch() (replay []Event, live <-chan Event, cancel func()) {
	return sub.t.hub.Subscribe()
}

// Submit normalizes and admits a spec exactly as POST /jobs does:
// content-hash first, cache lookup, then bounded admission. It returns
// ErrDraining after BeginDrain, a *QueueFullError when the queue sheds,
// or a normalization error for an invalid spec. A returned Submission
// is live: the job is cached, queued, or already running.
func (s *Server) Submit(spec Spec) (*Submission, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	hash := spec.Hash()
	s.submitted.Add(1)

	if body, ok := s.cache.Get(hash); ok {
		t := s.newTask(spec, hash, "done")
		t.mu.Lock()
		t.body, t.cached = body, true
		t.mu.Unlock()
		t.hub.Publish(Event{Event: "done", Cached: true})
		close(t.done)
		return &Submission{ID: t.id, Hash: hash, Cached: true, t: t}, nil
	}

	// Admission: the queue send happens under s.mu so it can never race
	// BeginDrain's close; a full queue sheds the request instead of
	// blocking the caller.
	t := s.newTask(spec, hash, "queued")
	s.mu.Lock()
	draining := s.draining
	admitted := false
	if !draining {
		select {
		case s.queue <- t:
			admitted = true
		default:
		}
	}
	s.mu.Unlock()
	if draining {
		s.dropTask(t)
		return nil, ErrDraining
	}
	if !admitted {
		// Load shed: drop the record too — a shed job has no id to poll.
		s.dropTask(t)
		s.shed.Add(1)
		retry := 1 + 2*int(s.depth.Load()+s.inFlight.Load())
		if retry > 60 {
			retry = 60
		}
		return nil, &QueueFullError{Depth: s.cfg.QueueDepth, RetryAfter: retry}
	}
	s.depth.Add(1)
	t.hub.Publish(Event{Event: "queued", Label: spec.Kind})
	return &Submission{ID: t.id, Hash: hash, t: t}, nil
}

// Load reports the server's instantaneous admission load — queue depth,
// jobs executing, configured queue capacity, and pool width. Fleet
// workers put these numbers in their heartbeats so the gateway can
// route around saturation instead of discovering it via sheds.
func (s *Server) Load() (depth, inFlight, capacity, workers int) {
	return int(s.depth.Load()), int(s.inFlight.Load()), s.cfg.QueueDepth, s.cfg.Workers
}
