package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/stats"
)

// Synthetic job kinds with test-controlled timing. Each job selects its
// release gate by spec.Seed, so concurrent tests stay independent.
var (
	gateMu sync.Mutex
	gates  = map[int64]chan struct{}{}
	// seedCounter hands out fresh gate seeds so repeated runs (-count>1)
	// never see a gate an earlier iteration already closed.
	seedCounter atomic.Int64
)

func nextSeed() int64 { return seedCounter.Add(1) }

func gate(seed int64) chan struct{} {
	gateMu.Lock()
	defer gateMu.Unlock()
	ch, ok := gates[seed]
	if !ok {
		ch = make(chan struct{})
		gates[seed] = ch
	}
	return ch
}

func TestMain(m *testing.M) {
	// "block" parks until its gate opens; "progressive" additionally
	// emits spec.Messages progress events after release; "fail" errors.
	testKinds["block"] = func(c *exp.Ctx, spec Spec, p Progress) ([]byte, error) {
		select {
		case <-gate(spec.Seed):
		case <-c.Context().Done():
			return nil, c.Context().Err()
		}
		return []byte(fmt.Sprintf("{\"blocked\":%d}\n", spec.Seed)), nil
	}
	testKinds["progressive"] = func(c *exp.Ctx, spec Spec, p Progress) ([]byte, error) {
		<-gate(spec.Seed)
		for i := 1; i <= spec.Messages; i++ {
			p(i, spec.Messages, fmt.Sprintf("step[%d]", i))
		}
		return []byte("{\"ok\":true}\n"), nil
	}
	testKinds["fail"] = func(c *exp.Ctx, spec Spec, p Progress) ([]byte, error) {
		return nil, errors.New("synthetic failure")
	}
	os.Exit(m.Run())
}

// testServer couples a Server to an httptest front end with cleanup.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		ts.Close()
	})
	return srv, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func jobID(t *testing.T, data []byte) string {
	t.Helper()
	var r struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("bad submit response %s: %v", data, err)
	}
	return r.ID
}

func waitStatus(t *testing.T, base, id, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, data := get(t, base+"/jobs/"+id)
		var r struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(data, &r); err == nil && r.Status == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached status %q", id, want)
}

// TestCacheHitByteIdentity is the tentpole contract: submitting the
// same spec twice returns byte-identical bodies, the second served from
// the cache with serve/cache hits = 1.
func TestCacheHitByteIdentity(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	spec := `{"kind":"lint","test":"badcdc"}`

	r1, body1 := post(t, ts.URL+"/jobs?wait=1", spec)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %s %s", r1.Status, body1)
	}
	if hc := r1.Header.Get("X-Cache"); hc != "miss" {
		t.Fatalf("first submit X-Cache = %q, want miss", hc)
	}
	r2, body2 := post(t, ts.URL+"/jobs?wait=1", spec)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("second submit: %s %s", r2.Status, body2)
	}
	if hc := r2.Header.Get("X-Cache"); hc != "hit" {
		t.Fatalf("second submit X-Cache = %q, want hit", hc)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached result not byte-identical:\n%s\nvs\n%s", body1, body2)
	}
	// The result is real: badcdc must carry a CDC-1 error diagnostic.
	if !bytes.Contains(body1, []byte("CDC-1")) {
		t.Fatalf("lint result missing CDC-1 diagnostic: %s", body1)
	}

	_, mdata := get(t, ts.URL+"/metrics")
	ms, err := stats.ParseJSON(mdata)
	if err != nil {
		t.Fatalf("bad /metrics payload: %v", err)
	}
	if hits := stats.Total(ms, "serve/cache", "hits"); hits != 1 {
		t.Fatalf("serve/cache hits = %v, want 1", hits)
	}
	if sub := stats.Total(ms, "serve/jobs", "submitted"); sub != 2 {
		t.Fatalf("serve/jobs submitted = %v, want 2", sub)
	}
}

// TestLoadShed429: with a one-deep queue and a single busy worker, the
// next submission is shed with 429 and a Retry-After estimate.
func TestLoadShed429(t *testing.T) {
	srv, ts := testServer(t, Config{Workers: 1, QueueDepth: 1})
	s1, s2, s3 := nextSeed(), nextSeed(), nextSeed()
	defer close(gate(s1))
	defer close(gate(s2))

	// Occupy the worker, then fill the queue.
	rA, dataA := post(t, ts.URL+"/jobs", fmt.Sprintf(`{"kind":"block","seed":%d}`, s1))
	if rA.StatusCode != http.StatusAccepted {
		t.Fatalf("submit A: %s %s", rA.Status, dataA)
	}
	waitStatus(t, ts.URL, jobID(t, dataA), "running")
	rB, dataB := post(t, ts.URL+"/jobs", fmt.Sprintf(`{"kind":"block","seed":%d}`, s2))
	if rB.StatusCode != http.StatusAccepted {
		t.Fatalf("submit B: %s %s", rB.Status, dataB)
	}

	rC, dataC := post(t, ts.URL+"/jobs", fmt.Sprintf(`{"kind":"block","seed":%d}`, s3))
	if rC.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit C: %s %s, want 429", rC.Status, dataC)
	}
	if ra := rC.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := srv.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
	// A shed submission leaves no pollable record.
	var list struct {
		Jobs []statusResponse `json:"jobs"`
	}
	_, ldata := get(t, ts.URL+"/jobs")
	if err := json.Unmarshal(ldata, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 {
		t.Fatalf("job list has %d entries, want 2: %s", len(list.Jobs), ldata)
	}
}

// TestStreamedProgressOrdering: a watcher sees the full event log —
// queued, start, every progress event in emission order, done — with
// contiguous job-local sequence numbers.
func TestStreamedProgressOrdering(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	seed := nextSeed()
	rS, dataS := post(t, ts.URL+"/jobs", fmt.Sprintf(`{"kind":"progressive","seed":%d,"messages":3}`, seed))
	if rS.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s %s", rS.Status, dataS)
	}
	id := jobID(t, dataS)

	resp, err := http.Get(ts.URL + "/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	// The watcher is attached; let the job produce.
	close(gate(seed))

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	want := []string{"queued", "start", "progress", "progress", "progress", "done"}
	if len(events) != len(want) {
		t.Fatalf("got %d events %+v, want %d", len(events), events, len(want))
	}
	for i, e := range events {
		if e.Event != want[i] {
			t.Fatalf("event[%d] = %q, want %q (%+v)", i, e.Event, want[i], events)
		}
		if e.Seq != i {
			t.Fatalf("event[%d] has seq %d: ordering broken", i, e.Seq)
		}
	}
	for i := 0; i < 3; i++ {
		e := events[2+i]
		if e.Done != i+1 || e.Total != 3 || e.Label != fmt.Sprintf("step[%d]", i+1) {
			t.Fatalf("progress[%d] = %+v", i, e)
		}
	}

	// A late watcher replays the identical, already-closed log.
	_, rdata := get(t, ts.URL+"/jobs/"+id+"/stream")
	lines := bytes.Split(bytes.TrimSpace(rdata), []byte("\n"))
	if len(lines) != len(want) {
		t.Fatalf("replay has %d lines, want %d: %s", len(lines), len(want), rdata)
	}
}

// TestGracefulDrainNoGoroutineLeak: drain with in-flight and queued work
// cancels what cannot finish and returns the process to its pre-server
// goroutine count.
func TestGracefulDrainNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := New(Config{Workers: 1, QueueDepth: 4, Logf: t.Logf})
	ts := httptest.NewServer(srv.Handler())
	s1, s2, s3 := nextSeed(), nextSeed(), nextSeed()
	_, dataA := post(t, ts.URL+"/jobs", fmt.Sprintf(`{"kind":"block","seed":%d}`, s1))
	idA := jobID(t, dataA)
	waitStatus(t, ts.URL, idA, "running")
	_, dataB := post(t, ts.URL+"/jobs", fmt.Sprintf(`{"kind":"block","seed":%d}`, s2))
	idB := jobID(t, dataB)

	// Drain with a budget too short for the parked jobs: both must be
	// canceled, the queued one without ever running.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded (cancel path)", err)
	}
	cancel()
	for _, id := range []string{idA, idB} {
		_, data := get(t, ts.URL+"/jobs/"+id)
		var r struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(data, &r); err != nil || r.Status != "canceled" {
			t.Fatalf("job %s status = %s after drain", id, data)
		}
	}
	// New submissions are refused while (and after) draining.
	rNew, _ := post(t, ts.URL+"/jobs", fmt.Sprintf(`{"kind":"block","seed":%d}`, s3))
	if rNew.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %s, want 503", rNew.Status)
	}
	rH, _ := get(t, ts.URL+"/healthz")
	if rH.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %s, want 503", rH.Status)
	}

	// Release the abandoned body and tear down the HTTP front end; the
	// goroutine count must settle back to where it started.
	close(gate(s1))
	close(gate(s2))
	ts.CloseClientConnections()
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked after drain: %d -> %d\n%s",
		before, runtime.NumGoroutine(), buf[:n])
}

// TestCleanDrainFinishesBacklog: with time available, drain lets queued
// jobs run to completion rather than canceling them.
func TestCleanDrainFinishesBacklog(t *testing.T) {
	srv := New(Config{Workers: 1, QueueDepth: 4, Logf: t.Logf})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	s1, s2 := nextSeed(), nextSeed()
	_, dataA := post(t, ts.URL+"/jobs", fmt.Sprintf(`{"kind":"block","seed":%d}`, s1))
	idA := jobID(t, dataA)
	waitStatus(t, ts.URL, idA, "running")
	_, dataB := post(t, ts.URL+"/jobs", fmt.Sprintf(`{"kind":"block","seed":%d}`, s2))
	idB := jobID(t, dataB)

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	close(gate(s1))
	close(gate(s2))
	if err := <-done; err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
	for _, id := range []string{idA, idB} {
		_, data := get(t, ts.URL+"/jobs/"+id+"/result")
		if !bytes.Contains(data, []byte("blocked")) {
			t.Fatalf("job %s result after clean drain: %s", id, data)
		}
	}
}

// TestFailedJobSurfaces: an adapter error becomes status "failed" and a
// 500 on the result endpoint, not a daemon crash.
func TestFailedJobSurfaces(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	r, data := post(t, ts.URL+"/jobs", fmt.Sprintf(`{"kind":"fail","seed":%d}`, nextSeed()))
	if r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s %s", r.Status, data)
	}
	id := jobID(t, data)
	waitStatus(t, ts.URL, id, "failed")
	rr, rdata := get(t, ts.URL+"/jobs/"+id+"/result")
	if rr.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed job result: %s %s", rr.Status, rdata)
	}
	if !bytes.Contains(rdata, []byte("synthetic failure")) {
		t.Fatalf("error detail lost: %s", rdata)
	}
}

// TestUnknownJob404 and bad specs.
func TestBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	if r, _ := get(t, ts.URL+"/jobs/job-999"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %s", r.Status)
	}
	if r, _ := get(t, ts.URL+"/jobs/job-999/stream"); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown stream: %s", r.Status)
	}
	if r, _ := post(t, ts.URL+"/jobs", `{"kind":"warp-core"}`); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad kind: %s", r.Status)
	}
}
