package serve

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/stats"
)

// TestSpecHashesUnchangedByVerifyKind pins the content addresses of the
// pre-verify job kinds. The verify kind's Depth field is appended to the
// canonical encoding only when set, so introducing it must not move a
// single existing hash — any drift here silently invalidates every
// worker's result cache across a mixed-version fleet.
func TestSpecHashesUnchangedByVerifyKind(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{Spec{Kind: KindSim}, "5683b2fddb75ba97"},
		{Spec{Kind: KindSim, GALS: true}, "0a9311049c386360"},
		{Spec{Kind: KindSim, Test: "conv1d", Mode: "rtl"}, "d25297958e466726"},
		{Spec{Kind: KindLint}, "35577e24f660364e"},
		{Spec{Kind: KindRateck}, "4cb7522ac574a479"},
		{Spec{Kind: KindRateck, Test: "badrate"}, "e526b528b7ac1369"},
		{Spec{Kind: KindStallHunt}, "be43ecedcbb38544"},
		{Spec{Kind: KindQoR}, "1ecf1d832032112d"},
		{Spec{Kind: KindFig6}, "cbccb031ab5bfe16"},
	}
	for _, tc := range cases {
		s := tc.spec
		if err := s.Normalize(); err != nil {
			t.Fatalf("%+v: %v", tc.spec, err)
		}
		if got := HashString(s.Hash()); got != tc.want {
			t.Errorf("%s spec hash drifted: got %s, want %s (canonical %s)",
				tc.spec.Kind, got, tc.want, s.Canonical())
		}
	}
}

// TestVerifySpecNormalization: the verify kind defaults and zeroes like
// lint/rateck plus the depth bound; foreign fields never fork the
// content address, Depth is foreign to every other kind, and both the
// mc examples and the seeded fixtures are admitted by name.
func TestVerifySpecNormalization(t *testing.T) {
	sparse := Spec{Kind: KindVerify}
	if err := sparse.Normalize(); err != nil {
		t.Fatal(err)
	}
	if sparse.Test != "mcserdes" || sparse.Depth != 64 {
		t.Fatalf("verify defaults: test=%q depth=%d, want mcserdes/64", sparse.Test, sparse.Depth)
	}
	noisy := Spec{Kind: KindVerify, Test: "mcserdes", Mode: "tlm", Depth: 64,
		MaxCycles: 999, Stall: 0.5, Seed: 7, Messages: 3, Seeds: 4, Parallel: 2, Partitions: 3}
	if err := noisy.Normalize(); err != nil {
		t.Fatal(err)
	}
	if sparse.Hash() != noisy.Hash() {
		t.Fatalf("foreign fields forked the hash:\n%s\nvs\n%s", sparse.Canonical(), noisy.Canonical())
	}
	deeper := Spec{Kind: KindVerify, Depth: 32}
	if err := deeper.Normalize(); err != nil {
		t.Fatal(err)
	}
	if deeper.Hash() == sparse.Hash() {
		t.Fatal("the unrolling bound is result-relevant and must fork the content address")
	}
	simWithDepth := Spec{Kind: KindSim, Depth: 64}
	if err := simWithDepth.Normalize(); err != nil {
		t.Fatal(err)
	}
	if simWithDepth.Depth != 0 {
		t.Fatalf("Depth is foreign to sim, got %d after Normalize", simWithDepth.Depth)
	}
	for _, name := range []string{"mcserdes", "mcgals", "mcdeadlock", "mcbufeqv"} {
		s := Spec{Kind: KindVerify, Test: name}
		if err := s.Normalize(); err != nil {
			t.Fatalf("design %s rejected: %v", name, err)
		}
	}
	bad := Spec{Kind: KindVerify, Test: "nope"}
	if err := bad.Normalize(); err == nil {
		t.Fatal("unknown design accepted")
	}
}

// TestVerifyJobCachedByteIdentity: the verify kind is a first-class
// cacheable job — same spec twice yields byte-identical bodies with the
// second served from the content-addressed cache, and the body carries
// the fixture's seeded violations.
func TestVerifyJobCachedByteIdentity(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	spec := `{"kind":"verify","test":"mcbufeqv"}`

	r1, body1 := post(t, ts.URL+"/jobs?wait=1", spec)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %s %s", r1.Status, body1)
	}
	if hc := r1.Header.Get("X-Cache"); hc != "miss" {
		t.Fatalf("first submit X-Cache = %q, want miss", hc)
	}
	r2, body2 := post(t, ts.URL+"/jobs?wait=1", spec)
	if hc := r2.Header.Get("X-Cache"); hc != "hit" {
		t.Fatalf("second submit X-Cache = %q, want hit", hc)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached verify result not byte-identical:\n%s\nvs\n%s", body1, body2)
	}
	for _, want := range []string{`"kind": "verify"`, `"deadlock": "violated"`,
		`"equivalence": "violated"`, "MC-1", "MC-2", `"errors": 2`} {
		if !bytes.Contains(body1, []byte(want)) {
			t.Fatalf("verify body missing %q: %s", want, body1)
		}
	}

	_, mdata := get(t, ts.URL+"/metrics")
	ms, err := stats.ParseJSON(mdata)
	if err != nil {
		t.Fatalf("bad /metrics payload: %v", err)
	}
	if hits := stats.Total(ms, "serve/cache", "hits"); hits != 1 {
		t.Fatalf("serve/cache hits = %v, want 1", hits)
	}
}
