package serve

import (
	"bytes"
	"testing"
)

// TestCanonicalSparseEqualsExplicit: a sparsely spelled spec and its
// fully defaulted form are the same content address.
func TestCanonicalSparseEqualsExplicit(t *testing.T) {
	sparse, err := ParseSpec([]byte(`{"kind":"sim"}`))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := ParseSpec([]byte(`{"kind":"sim","test":"memcpy","mode":"tlm","max_cycles":10000000}`))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sparse.Canonical(), explicit.Canonical()) {
		t.Fatalf("canonical forms differ:\n%s\n%s", sparse.Canonical(), explicit.Canonical())
	}
	if sparse.Hash() != explicit.Hash() {
		t.Fatal("hashes differ for identical work")
	}
}

// TestParallelExcludedFromHash: shard width never changes results, so it
// must not fork the content address.
func TestParallelExcludedFromHash(t *testing.T) {
	a, err := ParseSpec([]byte(`{"kind":"stallhunt","seeds":4}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec([]byte(`{"kind":"stallhunt","seeds":4,"parallel":8}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("parallel leaked into the content hash")
	}
}

// TestForeignFieldsZeroed: fields a kind does not read must not fork its
// hash (a lint spec carrying a stray seed is the same lint).
func TestForeignFieldsZeroed(t *testing.T) {
	a, err := ParseSpec([]byte(`{"kind":"lint","test":"badcdc"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec([]byte(`{"kind":"lint","test":"badcdc","seed":42,"messages":9}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("kind-foreign fields leaked into the content hash")
	}
}

// TestPartitionsHashCompat pins the codec's back-compat contract around
// the partitions knob: specs that do not engage the partition engine
// keep the content address they had before the field existed (golden
// hashes recorded from the pre-partition codec), every engaged shard
// width maps to one address (results are bit-identical by the engine's
// core invariant), and engaged vs sequential are distinct work (the
// epoch-quantized stop changes the reported cycle counts).
func TestPartitionsHashCompat(t *testing.T) {
	golden := map[string]string{
		`{"kind":"sim"}`:                "5683b2fddb75ba97",
		`{"kind":"sim","gals":true}`:    "0a9311049c386360",
		`{"kind":"sim","partitions":0}`: "5683b2fddb75ba97",
	}
	for raw, want := range golden {
		s, err := ParseSpec([]byte(raw))
		if err != nil {
			t.Fatal(err)
		}
		if got := HashString(s.Hash()); got != want {
			t.Errorf("%s hashed to %s, want pre-partition golden %s", raw, got, want)
		}
	}

	p2, err := ParseSpec([]byte(`{"kind":"sim","gals":true,"partitions":2}`))
	if err != nil {
		t.Fatal(err)
	}
	p8, err := ParseSpec([]byte(`{"kind":"sim","gals":true,"partitions":8}`))
	if err != nil {
		t.Fatal(err)
	}
	seq, err := ParseSpec([]byte(`{"kind":"sim","gals":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if p2.Hash() != p8.Hash() {
		t.Error("shard width forked the content address")
	}
	if p2.Hash() == seq.Hash() {
		t.Error("engaged partition engine must be distinct work from the sequential kernel")
	}
	if p8.Partitions != 8 {
		t.Errorf("normalize clobbered the execution width: %d", p8.Partitions)
	}

	// Kind-foreign: a lint spec carrying partitions is the same lint.
	la, err := ParseSpec([]byte(`{"kind":"lint","test":"badcdc"}`))
	if err != nil {
		t.Fatal(err)
	}
	lb, err := ParseSpec([]byte(`{"kind":"lint","test":"badcdc","partitions":4}`))
	if err != nil {
		t.Fatal(err)
	}
	if la.Hash() != lb.Hash() {
		t.Error("partitions leaked into a lint content hash")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []string{
		`{"kind":"nope"}`,
		`{"kind":"sim","test":"nope"}`,
		`{"kind":"sim","mode":"vhdl"}`,
		`{"kind":"sim","stall":1.5}`,
		`{"kind":"sim","typo_field":1}`,  // unknown fields fail loudly
		`{"kind":"sim","test":"badcdc"}`, // fixtures are lint-only
		`not json`,
	}
	for _, spec := range bad {
		if _, err := ParseSpec([]byte(spec)); err == nil {
			t.Errorf("spec %s accepted, want error", spec)
		}
	}
	good := []string{
		`{"kind":"lint","test":"badloop"}`,
		`{"kind":"sim","test":"vecadd","mode":"rtl","gals":true}`,
		`{"kind":"stallhunt","stall":0.25,"messages":100,"seeds":4,"seed":7}`,
		`{"kind":"qor"}`,
		`{"kind":"fig6","max_cycles":100000}`,
	}
	for _, spec := range good {
		if _, err := ParseSpec([]byte(spec)); err != nil {
			t.Errorf("spec %s rejected: %v", spec, err)
		}
	}
}

// TestDistinctWorkDistinctHash: result-relevant fields must fork the
// address.
func TestDistinctWorkDistinctHash(t *testing.T) {
	specs := []string{
		`{"kind":"sim","test":"memcpy"}`,
		`{"kind":"sim","test":"vecadd"}`,
		`{"kind":"sim","test":"memcpy","gals":true}`,
		`{"kind":"sim","test":"memcpy","mode":"rtl"}`,
		`{"kind":"sim","test":"memcpy","stall":0.2,"seed":3}`,
		`{"kind":"sim","test":"memcpy","stall":0.2,"seed":4}`,
		`{"kind":"lint","test":"memcpy"}`,
	}
	seen := map[uint64]string{}
	for _, raw := range specs {
		s, err := ParseSpec([]byte(raw))
		if err != nil {
			t.Fatalf("%s: %v", raw, err)
		}
		if prev, dup := seen[s.Hash()]; dup {
			t.Fatalf("hash collision between %s and %s", prev, raw)
		}
		seen[s.Hash()] = raw
	}
}
