package serve

import (
	"bytes"
	"testing"
)

// TestCanonicalSparseEqualsExplicit: a sparsely spelled spec and its
// fully defaulted form are the same content address.
func TestCanonicalSparseEqualsExplicit(t *testing.T) {
	sparse, err := ParseSpec([]byte(`{"kind":"sim"}`))
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := ParseSpec([]byte(`{"kind":"sim","test":"memcpy","mode":"tlm","max_cycles":10000000}`))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sparse.Canonical(), explicit.Canonical()) {
		t.Fatalf("canonical forms differ:\n%s\n%s", sparse.Canonical(), explicit.Canonical())
	}
	if sparse.Hash() != explicit.Hash() {
		t.Fatal("hashes differ for identical work")
	}
}

// TestParallelExcludedFromHash: shard width never changes results, so it
// must not fork the content address.
func TestParallelExcludedFromHash(t *testing.T) {
	a, err := ParseSpec([]byte(`{"kind":"stallhunt","seeds":4}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec([]byte(`{"kind":"stallhunt","seeds":4,"parallel":8}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("parallel leaked into the content hash")
	}
}

// TestForeignFieldsZeroed: fields a kind does not read must not fork its
// hash (a lint spec carrying a stray seed is the same lint).
func TestForeignFieldsZeroed(t *testing.T) {
	a, err := ParseSpec([]byte(`{"kind":"lint","test":"badcdc"}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseSpec([]byte(`{"kind":"lint","test":"badcdc","seed":42,"messages":9}`))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash() != b.Hash() {
		t.Fatal("kind-foreign fields leaked into the content hash")
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []string{
		`{"kind":"nope"}`,
		`{"kind":"sim","test":"nope"}`,
		`{"kind":"sim","mode":"vhdl"}`,
		`{"kind":"sim","stall":1.5}`,
		`{"kind":"sim","typo_field":1}`,  // unknown fields fail loudly
		`{"kind":"sim","test":"badcdc"}`, // fixtures are lint-only
		`not json`,
	}
	for _, spec := range bad {
		if _, err := ParseSpec([]byte(spec)); err == nil {
			t.Errorf("spec %s accepted, want error", spec)
		}
	}
	good := []string{
		`{"kind":"lint","test":"badloop"}`,
		`{"kind":"sim","test":"vecadd","mode":"rtl","gals":true}`,
		`{"kind":"stallhunt","stall":0.25,"messages":100,"seeds":4,"seed":7}`,
		`{"kind":"qor"}`,
		`{"kind":"fig6","max_cycles":100000}`,
	}
	for _, spec := range good {
		if _, err := ParseSpec([]byte(spec)); err != nil {
			t.Errorf("spec %s rejected: %v", spec, err)
		}
	}
}

// TestDistinctWorkDistinctHash: result-relevant fields must fork the
// address.
func TestDistinctWorkDistinctHash(t *testing.T) {
	specs := []string{
		`{"kind":"sim","test":"memcpy"}`,
		`{"kind":"sim","test":"vecadd"}`,
		`{"kind":"sim","test":"memcpy","gals":true}`,
		`{"kind":"sim","test":"memcpy","mode":"rtl"}`,
		`{"kind":"sim","test":"memcpy","stall":0.2,"seed":3}`,
		`{"kind":"sim","test":"memcpy","stall":0.2,"seed":4}`,
		`{"kind":"lint","test":"memcpy"}`,
	}
	seen := map[uint64]string{}
	for _, raw := range specs {
		s, err := ParseSpec([]byte(raw))
		if err != nil {
			t.Fatalf("%s: %v", raw, err)
		}
		if prev, dup := seen[s.Hash()]; dup {
			t.Fatalf("hash collision between %s and %s", prev, raw)
		}
		seen[s.Hash()] = raw
	}
}
