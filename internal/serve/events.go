package serve

import "sync"

// Event is one entry in a job's ordered progress log, rendered to
// watchers as one NDJSON line. Seq is the job-local sequence number;
// watchers always observe contiguous, increasing Seq whether they replay
// history or tail live.
type Event struct {
	Seq    int    `json:"seq"`
	Event  string `json:"event"` // queued | start | progress | done | failed | canceled
	Done   int    `json:"done,omitempty"`
	Total  int    `json:"total,omitempty"`
	Label  string `json:"label,omitempty"`
	Error  string `json:"error,omitempty"`
	Cached bool   `json:"cached,omitempty"`
}

// Terminal reports whether the event ends the job's log.
func (e Event) Terminal() bool {
	return e.Event == "done" || e.Event == "failed" || e.Event == "canceled"
}

// EventLog is a job's progress log plus its live subscribers. The full
// history is kept (job logs are small — one line per campaign job, plus
// bookends), so a watcher attaching at any point gets every event
// exactly once, in order. It is exported for the fleet layer
// (internal/fleet), whose gateway keeps one log per proxied job and
// republishes worker progress into it; inside this package every task
// owns one.
type EventLog struct {
	mu     sync.Mutex
	past   []Event
	subs   map[int]chan Event
	nextID int
	closed bool
}

// NewEventLog returns an empty, open log.
func NewEventLog() *EventLog {
	return &EventLog{subs: make(map[int]chan Event)}
}

// Publish appends the event (assigning its Seq) and fans it out. A
// subscriber that cannot keep up — its buffer full — is dropped rather
// than allowed to block job execution; its channel closes and the
// HTTP handler reports the truncation. Events published after the
// terminal one are dropped, which is what makes replays after a fleet
// failover harmless: the first terminal event wins.
func (h *EventLog) Publish(e Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	e.Seq = len(h.past)
	h.past = append(h.past, e)
	for id, ch := range h.subs {
		select {
		case ch <- e:
		default:
			close(ch)
			delete(h.subs, id)
		}
	}
	if e.Terminal() {
		h.closed = true
		for id, ch := range h.subs {
			close(ch)
			delete(h.subs, id)
		}
	}
}

// Subscribe returns the replay of everything published so far and, when
// the log is still open, a channel tailing future events (closed on the
// terminal event). cancel detaches the subscriber; it is safe to call
// after the channel closed.
func (h *EventLog) Subscribe() (replay []Event, live <-chan Event, cancel func()) {
	h.mu.Lock()
	defer h.mu.Unlock()
	replay = append([]Event(nil), h.past...)
	if h.closed {
		return replay, nil, func() {}
	}
	id := h.nextID
	h.nextID++
	ch := make(chan Event, 256)
	h.subs[id] = ch
	return replay, ch, func() {
		h.mu.Lock()
		defer h.mu.Unlock()
		if _, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(ch)
		}
	}
}
