package serve

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"repro/internal/soc"
)

// Job kinds the service executes. Each maps to one of the repo's batch
// workloads; see jobs.go for the adapters.
const (
	KindSim       = "sim"       // one SoC-level test (internal/soc)
	KindLint      = "lint"      // static design-rule check of one design (internal/lint)
	KindRateck    = "rateck"    // static communication-rate analysis of one design (internal/ratecheck)
	KindStallHunt = "stallhunt" // §2.3 multi-seed stall-injection campaign (internal/verif)
	KindQoR       = "qor"       // HLS/synthesis QoR table (internal/core)
	KindFig6      = "fig6"      // TLM-vs-RTL cycle comparison (internal/soc)
	KindVerify    = "verify"    // bounded model check of one design's LI channel graph (internal/mc)
)

// Spec is the wire form of a job request. One flat struct covers every
// kind; Normalize fills kind-appropriate defaults and zeroes fields the
// kind does not read, so specs that request the same work canonicalize
// to the same bytes.
type Spec struct {
	Kind string `json:"kind"`

	// sim + lint + fig6
	Test      string `json:"test,omitempty"`       // SoC test name; lint also accepts fixtures
	Mode      string `json:"mode,omitempty"`       // tlm | signal | rtl
	GALS      bool   `json:"gals,omitempty"`       // per-partition clock generators
	MaxCycles uint64 `json:"max_cycles,omitempty"` // controller-cycle budget

	// sim + stallhunt
	Stall float64 `json:"stall,omitempty"` // stall-injection probability
	Seed  int64   `json:"seed,omitempty"`  // stall / campaign seed

	// stallhunt
	Messages int `json:"messages,omitempty"` // messages per producer
	Seeds    int `json:"seeds,omitempty"`    // campaign width (stall seeds)

	// Parallel shards campaign kinds over the in-job worker pool. It is
	// deliberately absent from the canonical encoding: parallelism never
	// changes results (internal/exp's seed-derivation invariant), so two
	// submissions differing only here are the same content address.
	Parallel int `json:"parallel,omitempty"`

	// Partitions runs sim jobs on the partition-parallel engine with this
	// many shards (internal/psim). Zero keeps the sequential kernel and —
	// so pre-partition clients keep their content addresses — is absent
	// from the canonical encoding. Any count >= 1 produces bit-identical
	// results (the engine's core invariant), so the canonical form keeps
	// only the fact that the epoch-quantized engine ran, not the width:
	// partitions=2 and partitions=8 are the same content address.
	Partitions int `json:"partitions,omitempty"`

	// Depth is the verify kind's unrolling bound. Like Partitions it is
	// appended to the canonical encoding only when set, so every spec
	// hash minted before the verify kind existed is unchanged.
	Depth int `json:"depth,omitempty"`
}

// simModes are the accepted channel models, matching socsim -mode.
var simModes = map[string]bool{"tlm": true, "signal": true, "rtl": true}

// knownTest reports whether name is a shipped SoC test; withFixtures
// additionally admits the static-analysis designs: the deliberately
// broken lint/rate/mc fixtures and the minimal mc examples.
func knownTest(name string, withFixtures bool) bool {
	cases := append(soc.Tests(), soc.ExtraTests()...)
	if withFixtures {
		cases = append(cases, soc.LintFixtures()...)
		cases = append(cases, soc.RateFixtures()...)
		cases = append(cases, soc.MCExamples()...)
		cases = append(cases, soc.MCFixtures()...)
	}
	for _, tc := range cases {
		if tc.Name == name {
			return true
		}
	}
	return false
}

// Normalize validates the spec and rewrites it into canonical form:
// defaults filled, fields foreign to the kind zeroed. It must be called
// before Canonical or Hash; the server normalizes every spec at
// admission so equal work hashes equally however sparsely the client
// spelled it.
func (s *Spec) Normalize() error {
	switch s.Kind {
	case KindSim:
		if s.Test == "" {
			s.Test = "memcpy"
		}
		if !knownTest(s.Test, false) {
			return fmt.Errorf("serve: unknown sim test %q", s.Test)
		}
		if s.Mode == "" {
			s.Mode = "tlm"
		}
		if !simModes[s.Mode] {
			return fmt.Errorf("serve: unknown mode %q", s.Mode)
		}
		if s.MaxCycles == 0 {
			s.MaxCycles = 10_000_000
		}
		if s.Stall < 0 || s.Stall >= 1 {
			return fmt.Errorf("serve: stall probability %v out of [0,1)", s.Stall)
		}
		if s.Stall > 0 && s.Seed == 0 {
			s.Seed = 1
		}
		if s.Stall == 0 {
			s.Seed = 0 // unread without injection; don't fork the hash
		}
		if s.Partitions < 0 {
			s.Partitions = 0
		}
		s.Messages, s.Seeds = 0, 0
	case KindLint:
		if s.Test == "" {
			s.Test = "memcpy"
		}
		if !knownTest(s.Test, true) {
			return fmt.Errorf("serve: unknown lint design %q", s.Test)
		}
		if s.Mode == "" {
			s.Mode = "tlm"
		}
		if !simModes[s.Mode] {
			return fmt.Errorf("serve: unknown mode %q", s.Mode)
		}
		s.MaxCycles, s.Stall, s.Seed, s.Messages, s.Seeds = 0, 0, 0, 0, 0
	case KindRateck:
		// Same surface as lint: one design, one clocking style. The mode
		// is accepted for config symmetry even though rate declarations
		// are mode-independent.
		if s.Test == "" {
			s.Test = "memcpy"
		}
		if !knownTest(s.Test, true) {
			return fmt.Errorf("serve: unknown rateck design %q", s.Test)
		}
		if s.Mode == "" {
			s.Mode = "tlm"
		}
		if !simModes[s.Mode] {
			return fmt.Errorf("serve: unknown mode %q", s.Mode)
		}
		s.MaxCycles, s.Stall, s.Seed, s.Messages, s.Seeds = 0, 0, 0, 0, 0
	case KindVerify:
		// Same one-design surface as lint/rateck, plus the unrolling
		// bound. The mode is accepted for config symmetry even though the
		// abstract channel model is mode-independent.
		if s.Test == "" {
			s.Test = "mcserdes"
		}
		if !knownTest(s.Test, true) {
			return fmt.Errorf("serve: unknown verify design %q", s.Test)
		}
		if s.Mode == "" {
			s.Mode = "tlm"
		}
		if !simModes[s.Mode] {
			return fmt.Errorf("serve: unknown mode %q", s.Mode)
		}
		if s.Depth <= 0 {
			s.Depth = 64
		}
		s.MaxCycles, s.Stall, s.Seed, s.Messages, s.Seeds = 0, 0, 0, 0, 0
	case KindStallHunt:
		if s.Stall == 0 {
			s.Stall = 0.3
		}
		if s.Stall < 0 || s.Stall >= 1 {
			return fmt.Errorf("serve: stall probability %v out of [0,1)", s.Stall)
		}
		if s.Messages == 0 {
			s.Messages = 200
		}
		if s.Seeds == 0 {
			s.Seeds = 8
		}
		if s.Messages < 1 || s.Seeds < 1 {
			return fmt.Errorf("serve: stallhunt needs messages >= 1 and seeds >= 1")
		}
		if s.Seed == 0 {
			s.Seed = 1
		}
		s.Test, s.Mode, s.GALS, s.MaxCycles = "", "", false, 0
	case KindQoR:
		s.Test, s.Mode, s.GALS = "", "", false
		s.MaxCycles, s.Stall, s.Seed, s.Messages, s.Seeds = 0, 0, 0, 0, 0
	case KindFig6:
		if s.MaxCycles == 0 {
			s.MaxCycles = 10_000_000
		}
		s.Test, s.Mode, s.GALS = "", "", false
		s.Stall, s.Seed, s.Messages, s.Seeds = 0, 0, 0, 0
	default:
		// Synthetic kinds registered by the package tests pass through
		// with the spec as given; production builds register none.
		if _, ok := testKinds[s.Kind]; ok {
			if s.Parallel < 0 {
				s.Parallel = 0
			}
			return nil
		}
		return fmt.Errorf("serve: unknown job kind %q", s.Kind)
	}
	if s.Kind != KindSim {
		s.Partitions = 0 // only the sim runner reads it; don't fork hashes
	}
	if s.Kind != KindVerify {
		s.Depth = 0 // only the verify runner reads it; don't fork hashes
	}
	if s.Parallel < 0 {
		s.Parallel = 0
	}
	return nil
}

// Canonical renders the normalized spec as its canonical byte string:
// every result-relevant field, always present, in fixed order. This is
// the service's content address; two specs requesting the same work
// produce the same bytes regardless of client-side field spelling,
// omission, or shard width.
func (s *Spec) Canonical() []byte {
	var b strings.Builder
	b.WriteString(`{"kind":`)
	b.Write(quoteJSON(s.Kind))
	b.WriteString(`,"test":`)
	b.Write(quoteJSON(s.Test))
	b.WriteString(`,"mode":`)
	b.Write(quoteJSON(s.Mode))
	b.WriteString(`,"gals":`)
	b.WriteString(strconv.FormatBool(s.GALS))
	b.WriteString(`,"max_cycles":`)
	b.WriteString(strconv.FormatUint(s.MaxCycles, 10))
	b.WriteString(`,"stall":`)
	b.WriteString(strconv.FormatFloat(s.Stall, 'g', -1, 64))
	b.WriteString(`,"seed":`)
	b.WriteString(strconv.FormatInt(s.Seed, 10))
	b.WriteString(`,"messages":`)
	b.WriteString(strconv.Itoa(s.Messages))
	b.WriteString(`,"seeds":`)
	b.WriteString(strconv.Itoa(s.Seeds))
	// Appended only when the partition engine is engaged, so every spec
	// hash minted before the field existed is unchanged; and always as 1,
	// because every shard count yields bit-identical results (the shard
	// width is load-balancing, not content — like Parallel above).
	if s.Partitions > 0 {
		b.WriteString(`,"partitions":1`)
	}
	// Same append-only discipline for the verify bound: present only when
	// the verify kind set it, so pre-verify spec hashes never move. The
	// bound is content (a depth-64 proof and a depth-8 proof are different
	// results), so unlike partitions the value itself is encoded.
	if s.Depth > 0 {
		b.WriteString(`,"depth":`)
		b.WriteString(strconv.Itoa(s.Depth))
	}
	b.WriteString("}")
	return []byte(b.String())
}

// Hash is the FNV-1a content hash of the canonical spec bytes — the
// result cache key and the seed root for the job's exp campaign.
func (s *Spec) Hash() uint64 {
	h := fnv.New64a()
	h.Write(s.Canonical())
	return h.Sum64()
}

// HashString renders a content hash in the fixed-width hex form used in
// API responses and logs.
func HashString(h uint64) string { return fmt.Sprintf("%016x", h) }

// quoteJSON renders s as a JSON string literal (deterministic escaping).
func quoteJSON(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return []byte(`""`)
	}
	return b
}

// ParseSpec decodes and normalizes a client-submitted spec. Unknown
// fields are rejected so a typoed knob fails loudly instead of silently
// hashing to different work.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("serve: bad spec: %w", err)
	}
	if err := s.Normalize(); err != nil {
		return Spec{}, err
	}
	return s, nil
}
