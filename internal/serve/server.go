package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exp"
	"repro/internal/stats"
)

// Config sizes the daemon. Zero values take the defaults noted on each
// field.
type Config struct {
	Workers    int                              // worker pool width (default 2)
	QueueDepth int                              // bounded admission queue (default 16)
	CacheSize  int                              // LRU result-cache entries (default 128)
	JobTimeout time.Duration                    // per-job wall bound (default 10m; <0 = none)
	Logf       func(format string, args ...any) // optional logger
}

// Server is the job service: admission queue, worker pool, result
// cache, progress hubs, and the HTTP surface over them. Create with New,
// mount Handler on an http.Server, and retire with Shutdown.
type Server struct {
	cfg   Config
	reg   *stats.Registry
	cache *Cache
	mux   *http.ServeMux

	// jobCtx is the campaign context handed to every exp run; canceling
	// it (the drain deadline path) fences in-flight jobs and completes
	// queued ones as canceled without running them.
	jobCtx     context.Context
	cancelJobs context.CancelFunc

	mu       sync.Mutex
	queue    chan *task
	draining bool
	jobs     map[string]*task
	order    []string // job ids in submission order
	seq      int

	wg sync.WaitGroup // worker goroutines

	// Counters read lock-free by stats sources and handlers.
	submitted, completed, failed, canceled atomic.Int64
	shed, depth, inFlight                  atomic.Int64
}

// task is one admitted (or cache-satisfied) job.
type task struct {
	id   string
	spec Spec
	hash uint64
	hub  *EventLog
	done chan struct{}

	mu     sync.Mutex
	status string // queued | running | done | failed | canceled
	body   []byte
	errMsg string
	cached bool
}

func (t *task) snapshot() (status string, body []byte, errMsg string, cached bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status, t.body, t.errMsg, t.cached
}

// New builds a server and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Workers < 1 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth < 1 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 128
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = 10 * time.Minute
	}
	if cfg.JobTimeout < 0 {
		cfg.JobTimeout = 0
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        stats.New(),
		cache:      NewCache(cfg.CacheSize),
		mux:        http.NewServeMux(),
		jobCtx:     ctx,
		cancelJobs: cancel,
		queue:      make(chan *task, cfg.QueueDepth),
		jobs:       make(map[string]*task),
	}
	s.registerStats()
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics returns the server's registry so hosts (cmd/socd) can render
// or extend the serve/* namespace.
func (s *Server) Metrics() *stats.Registry { return s.reg }

// registerStats publishes the daemon's own counters into the same
// path/name namespace socsim -stats uses, so /metrics renders queue,
// cache, and job health as one tree.
func (s *Server) registerStats() {
	s.reg.Source("serve/queue", func(emit stats.Emit) {
		emit("capacity", float64(s.cfg.QueueDepth))
		emit("depth", float64(s.depth.Load()))
		emit("in_flight", float64(s.inFlight.Load()))
		emit("shed_total", float64(s.shed.Load()))
		emit("workers", float64(s.cfg.Workers))
	})
	s.reg.Source("serve/cache", func(emit stats.Emit) {
		size, capacity, hits, misses, evictions, bytes := s.cache.Stats()
		emit("bytes", float64(bytes))
		emit("capacity", float64(capacity))
		emit("evictions", float64(evictions))
		emit("hits", float64(hits))
		emit("misses", float64(misses))
		emit("size", float64(size))
	})
	s.reg.Source("serve/jobs", func(emit stats.Emit) {
		emit("canceled", float64(s.canceled.Load()))
		emit("completed", float64(s.completed.Load()))
		emit("failed", float64(s.failed.Load()))
		emit("submitted", float64(s.submitted.Load()))
	})
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// newTask registers a task record under the next id. Callers hold no
// locks; registration is internally synchronized.
func (s *Server) newTask(spec Spec, hash uint64, status string) *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	t := &task{
		id:     fmt.Sprintf("job-%d", s.seq),
		spec:   spec,
		hash:   hash,
		hub:    NewEventLog(),
		done:   make(chan struct{}),
		status: status,
	}
	s.jobs[t.id] = t
	s.order = append(s.order, t.id)
	return t
}

// worker drains the admission queue until it closes (drain) and the
// backlog is gone.
func (s *Server) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		s.depth.Add(-1)
		s.runTask(t)
	}
}

// runTask executes one admitted job through the exp runner, inheriting
// its panic isolation, per-job timeout, derived seeding, and context
// cancellation, then records the outcome and feeds the cache.
func (s *Server) runTask(t *task) {
	if s.jobCtx.Err() != nil {
		s.canceled.Add(1)
		s.finish(t, "canceled", nil, "canceled during drain")
		return
	}
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	t.mu.Lock()
	t.status = "running"
	t.mu.Unlock()
	t.hub.Publish(Event{Event: "start", Label: t.spec.Kind})

	sum := exp.Run([]exp.Job{{
		Name: "job",
		Run: func(c *exp.Ctx) (any, error) {
			return Execute(c, t.spec, func(done, total int, label string) {
				t.hub.Publish(Event{Event: "progress", Done: done, Total: total, Label: label})
			})
		},
	}},
		exp.Named("serve"),
		exp.Seed(int64(t.hash)),
		exp.WithContext(s.jobCtx),
		exp.Timeout(s.cfg.JobTimeout),
	)
	r := sum.Results[0]
	switch {
	case r.Canceled:
		s.canceled.Add(1)
		s.finish(t, "canceled", nil, r.Err.Error())
	case r.Failed():
		s.failed.Add(1)
		s.finish(t, "failed", nil, r.Err.Error())
	default:
		body := r.Value.([]byte)
		// Two concurrent submissions of the same spec both compute here;
		// the bodies are byte-identical by construction and Put keeps the
		// first, so the race is harmless.
		s.cache.Put(t.hash, body)
		s.completed.Add(1)
		s.finish(t, "done", body, "")
	}
}

func (s *Server) finish(t *task, status string, body []byte, errMsg string) {
	t.mu.Lock()
	t.status, t.body, t.errMsg = status, body, errMsg
	t.mu.Unlock()
	ev := Event{Event: status}
	if errMsg != "" {
		ev.Error = errMsg
	}
	t.hub.Publish(ev)
	close(t.done)
	s.cfg.Logf("serve: %s %s %s [%s]", t.id, t.spec.Kind, status, HashString(t.hash))
}

// BeginDrain stops admission: subsequent submissions get 503, and the
// queue channel closes so workers exit once the backlog is processed.
// Idempotent.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return
	}
	s.draining = true
	// Admission sends happen under s.mu, so closing under the same lock
	// can never race a send on the closed channel.
	close(s.queue)
}

// Shutdown is the graceful-drain path: stop admitting, let queued and
// in-flight jobs finish until ctx expires, then cancel the rest through
// the campaign context, wait for the workers, and flush a final stats
// snapshot to the log. The goroutine count returns to its pre-New level.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelJobs()
		<-done
	}
	s.cancelJobs() // release the context in the clean-drain path too
	var buf bytes.Buffer
	if werr := s.reg.WriteJSON(&buf); werr == nil {
		s.cfg.Logf("serve: final stats\n%s", buf.String())
	}
	return err
}

// ---- HTTP handlers ----

// submitResponse is the POST /jobs reply.
type submitResponse struct {
	ID     string `json:"id"`
	Hash   string `json:"hash"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
}

// statusResponse is the GET /jobs[/{id}] reply row.
type statusResponse struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Hash   string `json:"hash"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	Error  string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading spec: %v", err)
		return
	}
	spec, err := ParseSpec(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	wait := r.URL.Query().Get("wait") == "1"

	sub, err := s.Submit(spec)
	if err != nil {
		var qf *QueueFullError
		switch {
		case errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "30")
			writeErr(w, http.StatusServiceUnavailable, "draining: not admitting jobs")
		case errors.As(err, &qf):
			w.Header().Set("Retry-After", strconv.Itoa(qf.RetryAfter))
			writeErr(w, http.StatusTooManyRequests, "queue full (%d deep): retry after %ds",
				qf.Depth, qf.RetryAfter)
		default:
			writeErr(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	t := sub.t
	if sub.Cached {
		if wait {
			s.writeResult(w, t)
			return
		}
		writeJSON(w, http.StatusOK, submitResponse{
			ID: t.id, Hash: HashString(sub.Hash), Status: "done", Cached: true,
		})
		return
	}
	if wait {
		select {
		case <-t.done:
			s.writeResult(w, t)
		case <-r.Context().Done():
			// Client gave up; the job keeps running and stays pollable.
			writeErr(w, http.StatusRequestTimeout, "client canceled while waiting for %s", t.id)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: t.id, Hash: HashString(sub.Hash), Status: "queued", Cached: false,
	})
}

// dropTask removes a never-admitted task's record: a shed or refused
// submission has no id worth polling.
func (s *Server) dropTask(t *task) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, t.id)
	if n := len(s.order); n > 0 && s.order[n-1] == t.id {
		s.order = s.order[:n-1]
	}
}

func (s *Server) lookup(id string) (*task, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.jobs[id]
	return t, ok
}

func (s *Server) statusOf(t *task) statusResponse {
	status, _, errMsg, cached := t.snapshot()
	return statusResponse{
		ID: t.id, Kind: t.spec.Kind, Hash: HashString(t.hash),
		Status: status, Cached: cached, Error: errMsg,
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	s.mu.Unlock()
	out := make([]statusResponse, 0, len(ids))
	for _, id := range ids {
		if t, ok := s.lookup(id); ok {
			out = append(out, s.statusOf(t))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, s.statusOf(t))
}

// writeResult serves a finished task's body verbatim — the bytes the
// cache stores are the bytes on the wire, which is what makes the
// byte-identity contract end-to-end observable.
func (s *Server) writeResult(w http.ResponseWriter, t *task) {
	status, body, errMsg, cached := t.snapshot()
	switch status {
	case "done":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Job-Id", t.id)
		if cached {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		w.Write(body)
	case "failed":
		writeErr(w, http.StatusInternalServerError, "%s", errMsg)
	case "canceled":
		writeErr(w, http.StatusConflict, "%s", errMsg)
	default:
		writeJSON(w, http.StatusAccepted, s.statusOf(t))
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	s.writeResult(w, t)
}

// handleStream tails a job's event log as chunked NDJSON: full replay
// first, then live events until the terminal one. Every line is one
// Event with a contiguous job-local seq, so watcher-side ordering checks
// are trivial.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	t, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	replay, live, cancel := t.hub.Subscribe()
	defer cancel()
	for _, e := range replay {
		enc.Encode(e)
	}
	if canFlush {
		flusher.Flush()
	}
	if live == nil {
		return
	}
	for {
		select {
		case e, ok := <-live:
			if !ok {
				return
			}
			enc.Encode(e)
			if canFlush {
				flusher.Flush()
			}
			if e.Terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.reg.WriteJSON(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	if draining {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"workers":   s.cfg.Workers,
		"queue":     s.depth.Load(),
		"in_flight": s.inFlight.Load(),
	})
}
