// Package serve is the flow's simulation-as-a-service layer: a
// stdlib-only HTTP/JSON job daemon that puts the repo's push-button
// batch jobs — SoC simulation, stall-hunt campaigns, static lint, HLS
// flow QoR, and the Figure 6 comparison — behind a long-lived network
// endpoint. The paper's productivity argument is that every flow step is
// a batch job any team member can fire; the service generalizes that
// from "anyone with a checkout" to "anyone with a socket", which is how
// the follow-on formal-verification and library-characterization
// campaigns are actually consumed: many users, shared infrastructure.
//
// The design has four load-bearing pieces:
//
//   - A canonical job-spec codec (Spec.Canonical). Every spec normalizes
//     to one byte string with fixed key order; its FNV-1a hash is the
//     job's content address. Fields that cannot change results — the
//     campaign shard width, for one — are excluded from the encoding, so
//     "same work" and "same bytes" coincide.
//
//   - A bounded LRU result cache keyed by that hash. Jobs are
//     deterministic by construction (seeded streams, canonical JSON
//     renderers, no wall-clock values in result bodies), so a cache hit
//     returns byte-identical output to the original run.
//
//   - A bounded admission queue over a worker pool that executes each
//     job through internal/exp — inheriting its panic isolation, per-job
//     timeout, derived seeding, and context cancellation. A full queue
//     sheds load explicitly: 429 with a Retry-After estimate instead of
//     unbounded latency.
//
//   - Streaming progress: each job carries an ordered event log
//     (queued → start → progress* → done) replayed and tailed over
//     chunked NDJSON, wired to exp.OnProgress for campaign jobs.
//
// Graceful drain (Server.Shutdown) stops admission, lets in-flight jobs
// finish inside a deadline, cancels what remains through the campaign
// context, and leaves no goroutines behind. /metrics and /healthz render
// the server's stats.Registry — queue, cache, and job counters in the
// same path/name namespace socsim -stats uses.
//
// cmd/socd hosts the server; cmd/socctl is the submit/watch/result
// client.
package serve
