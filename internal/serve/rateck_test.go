package serve

import (
	"bytes"
	"net/http"
	"testing"

	"repro/internal/stats"
)

// TestRateckJobCachedByteIdentity: the rateck kind is a first-class
// cacheable job — same spec twice yields byte-identical bodies with the
// second served from the content-addressed cache, and the body carries
// the fixture's expected diagnostic.
func TestRateckJobCachedByteIdentity(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1})
	spec := `{"kind":"rateck","test":"badrate"}`

	r1, body1 := post(t, ts.URL+"/jobs?wait=1", spec)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("first submit: %s %s", r1.Status, body1)
	}
	if hc := r1.Header.Get("X-Cache"); hc != "miss" {
		t.Fatalf("first submit X-Cache = %q, want miss", hc)
	}
	r2, body2 := post(t, ts.URL+"/jobs?wait=1", spec)
	if hc := r2.Header.Get("X-Cache"); hc != "hit" {
		t.Fatalf("second submit X-Cache = %q, want hit", hc)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached rateck result not byte-identical:\n%s\nvs\n%s", body1, body2)
	}
	for _, want := range []string{`"kind": "rateck"`, "RATE-1", "RATE-2", `"errors": 1`} {
		if !bytes.Contains(body1, []byte(want)) {
			t.Fatalf("rateck body missing %q: %s", want, body1)
		}
	}

	_, mdata := get(t, ts.URL+"/metrics")
	ms, err := stats.ParseJSON(mdata)
	if err != nil {
		t.Fatalf("bad /metrics payload: %v", err)
	}
	if hits := stats.Total(ms, "serve/cache", "hits"); hits != 1 {
		t.Fatalf("serve/cache hits = %v, want 1", hits)
	}
}

// TestRateckSpecNormalization: the rateck kind defaults and zeroes like
// lint — foreign fields never fork the content address, and fixtures
// are admitted by name.
func TestRateckSpecNormalization(t *testing.T) {
	sparse := Spec{Kind: KindRateck}
	if err := sparse.Normalize(); err != nil {
		t.Fatal(err)
	}
	noisy := Spec{Kind: KindRateck, Test: "memcpy", Mode: "tlm",
		MaxCycles: 999, Stall: 0.5, Seed: 7, Messages: 3, Seeds: 4, Parallel: 2}
	if err := noisy.Normalize(); err != nil {
		t.Fatal(err)
	}
	if sparse.Hash() != noisy.Hash() {
		t.Fatalf("foreign fields forked the hash:\n%s\nvs\n%s", sparse.Canonical(), noisy.Canonical())
	}
	lint := Spec{Kind: KindLint, Test: "memcpy"}
	if err := lint.Normalize(); err != nil {
		t.Fatal(err)
	}
	if lint.Hash() == sparse.Hash() {
		t.Fatal("rateck and lint of the same design share a content address")
	}
	for _, name := range []string{"badrate", "badbuf"} {
		s := Spec{Kind: KindRateck, Test: name}
		if err := s.Normalize(); err != nil {
			t.Fatalf("fixture %s rejected: %v", name, err)
		}
	}
	bad := Spec{Kind: KindRateck, Test: "nope"}
	if err := bad.Normalize(); err == nil {
		t.Fatal("unknown design accepted")
	}
}
