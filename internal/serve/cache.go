package serve

import "sync"

// Cache is the bounded LRU result cache, keyed by a spec's content hash.
// Jobs are deterministic, so the cached body is the job's one true
// result; serving it is byte-identical to recomputing. Entries are
// immutable after insertion — Get hands out the stored slice and callers
// must not mutate it.
type Cache struct {
	mu  sync.Mutex
	cap int
	m   map[uint64]*cacheEntry
	// Intrusive LRU list, most recent at head. A hand-rolled list keeps
	// the entry map the only allocation per insert.
	head, tail *cacheEntry

	hits, misses, evictions uint64
	bytes                   uint64
}

type cacheEntry struct {
	key        uint64
	body       []byte
	prev, next *cacheEntry
}

// NewCache returns a cache bounded to capacity entries; capacity < 1 is
// clamped to 1 (a cache the daemon can't disable keeps the cache-hit
// invariant testable even in tiny configurations).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{cap: capacity, m: make(map[uint64]*cacheEntry, capacity)}
}

// Get returns the cached body for key, bumping it to most-recently-used.
func (c *Cache) Get(key uint64) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.moveToFront(e)
	return e.body, true
}

// Put stores body under key, evicting the least-recently-used entry when
// full. Re-putting an existing key refreshes recency but keeps the first
// body: results are content-addressed, so a second computation of the
// same key is byte-identical by construction and there is nothing to
// replace.
func (c *Cache) Put(key uint64, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.m[key]; ok {
		c.moveToFront(e)
		return
	}
	if len(c.m) >= c.cap {
		lru := c.tail
		c.unlink(lru)
		delete(c.m, lru.key)
		c.bytes -= uint64(len(lru.body))
		c.evictions++
	}
	e := &cacheEntry{key: key, body: body}
	c.m[key] = e
	c.pushFront(e)
	c.bytes += uint64(len(body))
}

// Stats returns the counters the server publishes under serve/cache.
func (c *Cache) Stats() (size, capacity int, hits, misses, evictions, bytes uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m), c.cap, c.hits, c.misses, c.evictions, c.bytes
}

func (c *Cache) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *Cache) unlink(e *cacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (c *Cache) moveToFront(e *cacheEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	c.pushFront(e)
}
