package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/connections"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/lint"
	"repro/internal/mc"
	"repro/internal/ratecheck"
	"repro/internal/soc"
	"repro/internal/stats"
	"repro/internal/verif"
)

// writeDeterministicMetrics dumps a campaign summary's wall-free metric
// view in the canonical stats JSON format.
func writeDeterministicMetrics(w io.Writer, s *exp.Summary) error {
	return stats.WriteMetricsJSON(w, s.DeterministicMetrics())
}

// Progress is the sink adapters report campaign progress into; the
// server fans it out to NDJSON watchers. Campaign kinds call it once per
// finished inner job; single-run kinds never call it.
type Progress func(done, total int, label string)

// testKinds maps synthetic job kinds, registered only by the package
// tests, to their executors. It lets the queue/drain/streaming tests
// control job timing precisely without simulating hardware; production
// code never populates it. Registration must happen before any server
// handles traffic (the map itself is unsynchronized by design).
var testKinds = map[string]func(c *exp.Ctx, spec Spec, progress Progress) ([]byte, error){}

// RegisterTestKind installs a synthetic job kind. It exists solely for
// tests outside this package (internal/fleet's gateway/failover tests
// need wire-visible jobs with test-controlled timing); production code
// must never call it. Like testKinds itself, registration must happen
// before any server handles traffic.
func RegisterTestKind(kind string, fn func(c *exp.Ctx, spec Spec, progress Progress) ([]byte, error)) {
	testKinds[kind] = fn
}

// Execute runs a normalized spec to completion and returns its result
// body — canonical JSON whose bytes depend only on the spec, never on
// wall-clock time, worker count, or host scheduling. That invariant is
// what lets the content-addressed cache serve stored bytes as the job's
// one true result. It runs inside an exp job body, so panics, timeouts,
// and drain cancellation are the runner's problem; c.Context() threads
// cancellation into nested campaigns.
func Execute(c *exp.Ctx, spec Spec, progress Progress) ([]byte, error) {
	switch spec.Kind {
	case KindSim:
		return runSim(spec)
	case KindLint:
		return runLint(spec)
	case KindRateck:
		return runRateck(spec)
	case KindVerify:
		return runVerify(spec, progress)
	case KindStallHunt:
		return runStallHunt(c, spec, progress)
	case KindQoR:
		return runQoR(spec)
	case KindFig6:
		return runFig6(c, spec, progress)
	}
	if fn, ok := testKinds[spec.Kind]; ok {
		return fn(c, spec, progress)
	}
	return nil, fmt.Errorf("serve: unknown job kind %q", spec.Kind)
}

// marshalBody renders a result struct as the service's canonical body
// bytes. encoding/json emits struct fields in declaration order, and no
// result struct contains a map, so the bytes are deterministic given
// deterministic values.
func marshalBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func simConfig(spec Spec) soc.Config {
	cfg := soc.DefaultConfig()
	switch spec.Mode {
	case "signal":
		cfg.Mode = connections.ModeSignalAccurate
	case "rtl":
		cfg.Mode = connections.ModeRTLCosim
	default:
		cfg.Mode = connections.ModeSimAccurate
	}
	cfg.GALS = spec.GALS
	cfg.StallP = spec.Stall
	cfg.StallSeed = spec.Seed
	cfg.Partitions = spec.Partitions
	return cfg
}

func findTest(name string, withFixtures bool) (soc.TestCase, error) {
	cases := append(soc.Tests(), soc.ExtraTests()...)
	if withFixtures {
		cases = append(cases, soc.LintFixtures()...)
		cases = append(cases, soc.RateFixtures()...)
		cases = append(cases, soc.MCExamples()...)
		cases = append(cases, soc.MCFixtures()...)
	}
	for _, tc := range cases {
		if tc.Name == name {
			return tc, nil
		}
	}
	return soc.TestCase{}, fmt.Errorf("serve: unknown test %q", name)
}

// simResult is the KindSim body. No wall time: elapsed cycles and
// retired instructions are simulated quantities, identical on every run
// of the same spec.
type simResult struct {
	Kind    string `json:"kind"`
	Test    string `json:"test"`
	Mode    string `json:"mode"`
	GALS    bool   `json:"gals"`
	Status  string `json:"status"` // PASS | FAIL
	Detail  string `json:"detail,omitempty"`
	Cycles  uint64 `json:"cycles"`
	Instret uint64 `json:"instret"`
	Pauses  uint64 `json:"pauses"` // pausible-FIFO clock pauses (GALS mode)
}

func runSim(spec Spec) ([]byte, error) {
	tc, err := findTest(spec.Test, false)
	if err != nil {
		return nil, err
	}
	s, verify := tc.Build(simConfig(spec))
	cycles, err := s.Run(spec.MaxCycles)
	if err != nil {
		return nil, fmt.Errorf("serve: sim %s: %w", spec.Test, err)
	}
	res := simResult{
		Kind: KindSim, Test: spec.Test, Mode: spec.Mode, GALS: spec.GALS,
		Status: "PASS", Cycles: cycles, Instret: s.RV.CPU.Instret,
	}
	if spec.GALS {
		res.Pauses = s.Pauses()
	}
	if verr := verify(s); verr != nil {
		res.Status, res.Detail = "FAIL", verr.Error()
	}
	return marshalBody(res)
}

// lintResult is the KindLint body; the diagnostics blob is
// lint.WriteDiagsJSON's output verbatim (struct-ordered, no maps).
type lintResult struct {
	Kind        string          `json:"kind"`
	Design      string          `json:"design"`
	Mode        string          `json:"mode"`
	GALS        bool            `json:"gals"`
	Summary     string          `json:"summary"`
	Errors      int             `json:"errors"`
	Warnings    int             `json:"warnings"`
	Diagnostics json.RawMessage `json:"diagnostics"`
}

func runLint(spec Spec) ([]byte, error) {
	tc, err := findTest(spec.Test, true)
	if err != nil {
		return nil, err
	}
	s, _ := tc.Build(simConfig(spec))
	r := lint.Check(s.Sim)
	var diags bytes.Buffer
	if err := r.WriteJSON(&diags); err != nil {
		return nil, err
	}
	return marshalBody(lintResult{
		Kind: KindLint, Design: spec.Test, Mode: spec.Mode, GALS: spec.GALS,
		Summary: r.Summary(), Errors: r.Errors(), Warnings: r.Warnings(),
		Diagnostics: json.RawMessage(bytes.TrimRight(diags.Bytes(), "\n")),
	})
}

// rateckResult is the KindRateck body; the report blob is
// ratecheck's WriteJSON output verbatim (struct-ordered, exact
// rationals, no maps), so the body is byte-stable like every other
// cacheable result.
type rateckResult struct {
	Kind     string          `json:"kind"`
	Design   string          `json:"design"`
	Mode     string          `json:"mode"`
	GALS     bool            `json:"gals"`
	Summary  string          `json:"summary"`
	Errors   int             `json:"errors"`
	Warnings int             `json:"warnings"`
	Report   json.RawMessage `json:"report"`
}

func runRateck(spec Spec) ([]byte, error) {
	tc, err := findTest(spec.Test, true)
	if err != nil {
		return nil, err
	}
	s, _ := tc.Build(simConfig(spec))
	r := ratecheck.Check(s.Sim)
	var report bytes.Buffer
	if err := r.WriteJSON(&report); err != nil {
		return nil, err
	}
	return marshalBody(rateckResult{
		Kind: KindRateck, Design: spec.Test, Mode: spec.Mode, GALS: spec.GALS,
		Summary: r.Summary(), Errors: r.Errors(), Warnings: r.Warnings(),
		Report: json.RawMessage(bytes.TrimRight(report.Bytes(), "\n")),
	})
}

// verifyResult is the KindVerify body; the report blob is mc's
// WriteJSON output verbatim (struct-ordered, counterexamples included),
// so the body is byte-stable like every other cacheable result.
type verifyResult struct {
	Kind        string          `json:"kind"`
	Design      string          `json:"design"`
	Mode        string          `json:"mode"`
	GALS        bool            `json:"gals"`
	Depth       int             `json:"depth"`
	Deadlock    string          `json:"deadlock"`
	Equivalence string          `json:"equivalence"`
	Summary     string          `json:"summary"`
	Errors      int             `json:"errors"`
	Warnings    int             `json:"warnings"`
	Report      json.RawMessage `json:"report"`
}

// runVerify bounded-model-checks one design's latency-insensitive
// channel graph. The search reports each completed unroll depth through
// the progress sink, so NDJSON watchers see the frontier advance.
func runVerify(spec Spec, progress Progress) ([]byte, error) {
	tc, err := findTest(spec.Test, true)
	if err != nil {
		return nil, err
	}
	s, _ := tc.Build(simConfig(spec))
	r := mc.Check(s.Sim, mc.Options{
		Depth: spec.Depth,
		Progress: func(depth, states int) {
			if progress != nil {
				progress(depth, spec.Depth, fmt.Sprintf("depth %d (%d states)", depth, states))
			}
		},
	})
	var report bytes.Buffer
	if err := r.WriteJSON(&report); err != nil {
		return nil, err
	}
	return marshalBody(verifyResult{
		Kind: KindVerify, Design: spec.Test, Mode: spec.Mode, GALS: spec.GALS,
		Depth:       spec.Depth,
		Deadlock:    string(r.Deadlock.Verdict),
		Equivalence: string(r.Equivalence.Verdict),
		Summary:     r.Summary(), Errors: r.Errors(), Warnings: r.Warnings(),
		Report: json.RawMessage(bytes.TrimRight(report.Bytes(), "\n")),
	})
}

// stallHuntResult is the KindStallHunt body: the campaign aggregate plus
// the summary's deterministic metrics dump (wall samples stripped).
type stallHuntResult struct {
	Kind            string          `json:"kind"`
	Stall           float64         `json:"stall"`
	Messages        int             `json:"messages"`
	Seeds           int             `json:"seeds"`
	Seed            int64           `json:"seed"`
	BugSeeds        int             `json:"bug_seeds"`
	CornerSeeds     int             `json:"corner_seeds"`
	MaxTimingStates int             `json:"max_timing_states"`
	TotalDelivered  int             `json:"total_delivered"`
	FirstBugIndex   int             `json:"first_bug_index"`
	FirstBugSeed    int64           `json:"first_bug_seed"`
	Diagnosis       []string        `json:"diagnosis"`
	Metrics         json.RawMessage `json:"metrics"`
}

func runStallHunt(c *exp.Ctx, spec Spec, progress Progress) ([]byte, error) {
	agg, sum := verif.RunStallHuntCampaign(
		spec.Stall, spec.Messages, spec.Seeds, spec.Seed, spec.Parallel,
		exp.WithContext(c.Context()),
		exp.OnProgress(func(done, total int, r exp.Result) {
			if progress != nil {
				progress(done, total, r.Name)
			}
		}))
	if err := sum.Err(); err != nil {
		return nil, err
	}
	res := stallHuntResult{
		Kind: KindStallHunt, Stall: spec.Stall, Messages: spec.Messages,
		Seeds: spec.Seeds, Seed: spec.Seed,
		BugSeeds: agg.BugSeeds, CornerSeeds: agg.CornerSeeds,
		MaxTimingStates: agg.MaxTimingStates, TotalDelivered: agg.TotalDelivered,
		FirstBugIndex: agg.FirstBugIndex, FirstBugSeed: agg.FirstBugSeed,
		Diagnosis: agg.Diagnosis,
	}
	if res.Diagnosis == nil {
		res.Diagnosis = []string{}
	}
	var ms bytes.Buffer
	if err := writeDeterministicMetrics(&ms, sum); err != nil {
		return nil, err
	}
	res.Metrics = json.RawMessage(bytes.TrimRight(ms.Bytes(), "\n"))
	return marshalBody(res)
}

// qorRow mirrors core.QoRRow with wire-stable field names.
type qorRow struct {
	Design    string  `json:"design"`
	HLSGates  int     `json:"hls_gates"`
	HandGates int     `json:"hand_gates"`
	DeltaPct  float64 `json:"delta_pct"`
	Tuned     bool    `json:"tuned"`
}

type qorResult struct {
	Kind string   `json:"kind"`
	Rows []qorRow `json:"rows"`
}

func runQoR(Spec) ([]byte, error) {
	rows, err := core.QoRTable(core.DefaultFlow())
	if err != nil {
		return nil, err
	}
	res := qorResult{Kind: KindQoR, Rows: make([]qorRow, len(rows))}
	for i, r := range rows {
		res.Rows[i] = qorRow{
			Design: r.Design, HLSGates: r.HLSGates, HandGates: r.HandGates,
			DeltaPct: r.DeltaPct, Tuned: r.Tuned,
		}
	}
	return marshalBody(res)
}

// fig6Row carries only the simulated quantities of a Figure 6 row; the
// wall-clock columns (and the speedup derived from them) vary run to run
// and are deliberately absent from the cacheable body.
type fig6Row struct {
	Test        string  `json:"test"`
	TLMCycles   uint64  `json:"tlm_cycles"`
	RTLCycles   uint64  `json:"rtl_cycles"`
	CycleErrPct float64 `json:"cycle_err_pct"`
}

type fig6Result struct {
	Kind string    `json:"kind"`
	Rows []fig6Row `json:"rows"`
}

func runFig6(c *exp.Ctx, spec Spec, progress Progress) ([]byte, error) {
	rows, sum := soc.RunFig6Campaign(spec.MaxCycles, spec.Parallel,
		exp.WithContext(c.Context()),
		exp.OnProgress(func(done, total int, r exp.Result) {
			if progress != nil {
				progress(done, total, r.Name)
			}
		}))
	if err := sum.Err(); err != nil {
		return nil, err
	}
	res := fig6Result{Kind: KindFig6, Rows: make([]fig6Row, len(rows))}
	for i, r := range rows {
		res.Rows[i] = fig6Row{
			Test: r.Test, TLMCycles: r.TLMCycles, RTLCycles: r.RTLCycles,
			CycleErrPct: r.CycleErrPct,
		}
	}
	return marshalBody(res)
}
