package serve

import (
	"fmt"
	"sync"
	"testing"
)

func TestCacheHitMissEvict(t *testing.T) {
	c := NewCache(2)
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(1, []byte("one"))
	c.Put(2, []byte("two"))
	if b, ok := c.Get(1); !ok || string(b) != "one" {
		t.Fatalf("Get(1) = %q, %v", b, ok)
	}
	// 2 is now LRU; inserting 3 must evict it, not 1.
	c.Put(3, []byte("three"))
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("recently used entry evicted")
	}
	size, capacity, hits, misses, evictions, bytes := c.Stats()
	if size != 2 || capacity != 2 || evictions != 1 {
		t.Fatalf("size=%d cap=%d evictions=%d", size, capacity, evictions)
	}
	if hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if bytes != uint64(len("one")+len("three")) {
		t.Fatalf("bytes=%d", bytes)
	}
}

// TestCachePutKeepsFirstBody: re-putting a key is a no-op on content —
// content-addressed entries are immutable.
func TestCachePutKeepsFirstBody(t *testing.T) {
	c := NewCache(4)
	c.Put(7, []byte("first"))
	c.Put(7, []byte("second"))
	if b, _ := c.Get(7); string(b) != "first" {
		t.Fatalf("re-put replaced body: %q", b)
	}
	if size, _, _, _, _, _ := c.Stats(); size != 1 {
		t.Fatalf("size=%d after duplicate put", size)
	}
}

// TestCacheConcurrentAccess shakes the lock under the race detector.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(8)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := uint64(i % 16)
				c.Put(k, []byte(fmt.Sprintf("v%d", k)))
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if size, capacity, _, _, _, _ := c.Stats(); size > capacity {
		t.Fatalf("size %d exceeds capacity %d", size, capacity)
	}
}
