package matchlib

import "fmt"

// FIFO is the configurable first-in first-out queue class. It is an
// untimed object used inside module models and HLS designs; the clocked
// channel equivalent is connections.Buffer.
type FIFO[T any] struct {
	buf  []T
	head int
	n    int
}

// NewFIFO returns an empty FIFO with the given capacity.
func NewFIFO[T any](capacity int) *FIFO[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("matchlib: FIFO capacity %d < 1", capacity))
	}
	return &FIFO[T]{buf: make([]T, capacity)}
}

// Len returns the number of stored elements.
func (f *FIFO[T]) Len() int { return f.n }

// Cap returns the capacity.
func (f *FIFO[T]) Cap() int { return len(f.buf) }

// Empty reports whether the FIFO holds no elements.
func (f *FIFO[T]) Empty() bool { return f.n == 0 }

// Full reports whether the FIFO is at capacity.
func (f *FIFO[T]) Full() bool { return f.n == len(f.buf) }

// Push appends v. It panics when full; guard with Full for non-blocking use.
func (f *FIFO[T]) Push(v T) {
	if f.Full() {
		panic("matchlib: Push to full FIFO")
	}
	f.buf[(f.head+f.n)%len(f.buf)] = v
	f.n++
}

// Pop removes and returns the oldest element. It panics when empty.
func (f *FIFO[T]) Pop() T {
	if f.Empty() {
		panic("matchlib: Pop from empty FIFO")
	}
	v := f.buf[f.head]
	var zero T
	f.buf[f.head] = zero
	f.head = (f.head + 1) % len(f.buf)
	f.n--
	return v
}

// Peek returns the oldest element without removing it. It panics when empty.
func (f *FIFO[T]) Peek() T {
	if f.Empty() {
		panic("matchlib: Peek on empty FIFO")
	}
	return f.buf[f.head]
}

// At returns the i-th oldest element (0 = head). It panics out of range.
func (f *FIFO[T]) At(i int) T {
	if i < 0 || i >= f.n {
		panic(fmt.Sprintf("matchlib: FIFO index %d out of range [0,%d)", i, f.n))
	}
	return f.buf[(f.head+i)%len(f.buf)]
}

// Reset discards all contents.
func (f *FIFO[T]) Reset() {
	var zero T
	for i := range f.buf {
		f.buf[i] = zero
	}
	f.head, f.n = 0, 0
}
