package matchlib

import (
	"fmt"

	"repro/internal/connections"
	"repro/internal/sim"
	"repro/internal/stats"
)

// CacheReq is a word access presented to the cache.
type CacheReq struct {
	Write bool
	Addr  int // word address
	Data  uint64
}

// CacheResp answers a read (writes are acknowledged without data).
type CacheResp struct {
	Addr int
	Data uint64
	Hit  bool
}

// MemReq is a line transfer on the cache's memory side.
type MemReq struct {
	Write    bool
	LineAddr int // line-aligned word address
	Data     []uint64
}

// MemResp returns a fetched line.
type MemResp struct {
	LineAddr int
	Data     []uint64
}

// CacheStats counts cache events for tests and power analysis.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// Cache is the configurable cache module from Table 2: linesize (words),
// capacity (total words) and associativity are parameters. It is
// write-back, write-allocate, with per-set LRU replacement. One request
// port and one response port face the core; a line-wide request/response
// port pair faces backing memory.
type Cache struct {
	Req  *connections.In[CacheReq]
	Rsp  *connections.Out[CacheResp]
	MemQ *connections.Out[MemReq]
	MemP *connections.In[MemResp]

	lineWords int
	sets      int
	ways      int
	lines     [][]cacheLine // [set][way]
	stats     CacheStats
}

type cacheLine struct {
	valid bool
	dirty bool
	tag   int
	data  []uint64
	lru   uint64 // last-touch stamp; smallest is victim
}

// NewCache builds a cache with capacityWords total storage, lineWords per
// line, and the given associativity. capacityWords must be divisible by
// lineWords*ways.
func NewCache(clk *sim.Clock, name string, capacityWords, lineWords, ways int) *Cache {
	if lineWords < 1 || ways < 1 || capacityWords < lineWords*ways {
		panic(fmt.Sprintf("matchlib: bad cache geometry cap=%d line=%d ways=%d", capacityWords, lineWords, ways))
	}
	nLines := capacityWords / lineWords
	if nLines%ways != 0 {
		panic(fmt.Sprintf("matchlib: %d lines not divisible by %d ways", nLines, ways))
	}
	c := &Cache{
		Req:       connections.NewIn[CacheReq](),
		Rsp:       connections.NewOut[CacheResp](),
		MemQ:      connections.NewOut[MemReq](),
		MemP:      connections.NewIn[MemResp](),
		lineWords: lineWords,
		sets:      nLines / ways,
		ways:      ways,
	}
	c.lines = make([][]cacheLine, c.sets)
	for s := range c.lines {
		c.lines[s] = make([]cacheLine, ways)
	}
	clk.Sim().Component(name).Source(func(emit stats.Emit) {
		emit("hits", float64(c.stats.Hits))
		emit("misses", float64(c.stats.Misses))
		emit("evictions", float64(c.stats.Evictions))
		emit("writebacks", float64(c.stats.Writebacks))
	})
	var stamp uint64
	clk.Spawn(name+".cache", func(th *sim.Thread) {
		for {
			req := c.Req.Pop(th)
			set := (req.Addr / c.lineWords) % c.sets
			tag := (req.Addr / c.lineWords) / c.sets
			off := req.Addr % c.lineWords

			way := -1
			for w := range c.lines[set] {
				if c.lines[set][w].valid && c.lines[set][w].tag == tag {
					way = w
					break
				}
			}
			hit := way >= 0
			if hit {
				c.stats.Hits++
			} else {
				c.stats.Misses++
				way = c.victim(set)
				v := &c.lines[set][way]
				if v.valid && v.dirty {
					c.stats.Writebacks++
					c.MemQ.Push(th, MemReq{Write: true, LineAddr: c.lineAddr(set, v.tag), Data: append([]uint64(nil), v.data...)})
				}
				if v.valid {
					c.stats.Evictions++
				}
				la := c.lineAddr(set, tag)
				c.MemQ.Push(th, MemReq{LineAddr: la})
				rsp := c.MemP.Pop(th)
				if rsp.LineAddr != la {
					panic(fmt.Sprintf("matchlib: cache fill for line %d got line %d", la, rsp.LineAddr))
				}
				*v = cacheLine{valid: true, tag: tag, data: append([]uint64(nil), rsp.Data...)}
			}
			ln := &c.lines[set][way]
			stamp++
			ln.lru = stamp
			if req.Write {
				ln.data[off] = req.Data
				ln.dirty = true
				c.Rsp.Push(th, CacheResp{Addr: req.Addr, Hit: hit})
			} else {
				c.Rsp.Push(th, CacheResp{Addr: req.Addr, Data: ln.data[off], Hit: hit})
			}
			th.Wait()
		}
	})
	return c
}

// Stats returns the event counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Geometry returns (sets, ways, lineWords).
func (c *Cache) Geometry() (sets, ways, lineWords int) { return c.sets, c.ways, c.lineWords }

func (c *Cache) lineAddr(set, tag int) int {
	return (tag*c.sets + set) * c.lineWords
}

func (c *Cache) victim(set int) int {
	best, bestLRU := 0, ^uint64(0)
	for w := range c.lines[set] {
		if !c.lines[set][w].valid {
			return w
		}
		if c.lines[set][w].lru < bestLRU {
			best, bestLRU = w, c.lines[set][w].lru
		}
	}
	return best
}

// SimpleMemory is a line-oriented backing store with a fixed access
// latency, used behind the Cache and as the SoC's off-chip model.
type SimpleMemory struct {
	Req *connections.In[MemReq]
	Rsp *connections.Out[MemResp]

	Data []uint64
}

// NewSimpleMemory builds a memory of sizeWords with the given latency in
// cycles per access.
func NewSimpleMemory(clk *sim.Clock, name string, sizeWords, lineWords, latency int) *SimpleMemory {
	m := &SimpleMemory{
		Req:  connections.NewIn[MemReq](),
		Rsp:  connections.NewOut[MemResp](),
		Data: make([]uint64, sizeWords),
	}
	clk.Spawn(name+".mem", func(th *sim.Thread) {
		for {
			req := m.Req.Pop(th)
			if req.LineAddr < 0 || req.LineAddr+lineWords > sizeWords {
				panic(fmt.Sprintf("matchlib: memory line %d out of range", req.LineAddr))
			}
			th.WaitN(latency)
			if req.Write {
				copy(m.Data[req.LineAddr:], req.Data)
			} else {
				line := append([]uint64(nil), m.Data[req.LineAddr:req.LineAddr+lineWords]...)
				m.Rsp.Push(th, MemResp{LineAddr: req.LineAddr, Data: line})
			}
			th.Wait()
		}
	})
	return m
}
