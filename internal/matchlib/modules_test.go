package matchlib

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/connections"
	"repro/internal/sim"
)

// buildXbarTB wires an n×n arbitrated crossbar with saturated random
// sources and always-popping sinks, returning the received values per
// output and elapsed cycles once each source sent msgsPerPort messages.
func buildXbarTB(t *testing.T, n, msgsPerPort int, mode connections.Mode, seed int64) ([][]int, uint64) {
	t.Helper()
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	x := NewArbitratedCrossbar[int](clk, "x", n, 2)

	for i := 0; i < n; i++ {
		srcOut := connections.NewOut[XbarMsg[int]]()
		connections.Buffer(clk, "in", 2, srcOut, x.In[i], connections.WithMode(mode))
		i := i
		r := rand.New(rand.NewSource(seed + int64(i)))
		clk.Spawn("src", func(th *sim.Thread) {
			for k := 0; k < msgsPerPort; k++ {
				srcOut.Push(th, XbarMsg[int]{Dst: r.Intn(n), Data: i*1_000_000 + k})
				th.Wait()
			}
		})
	}
	got := make([][]int, n)
	done := 0
	var doneCycle uint64
	for j := 0; j < n; j++ {
		sinkIn := connections.NewIn[int]()
		connections.Buffer(clk, "out", 2, x.Out[j], sinkIn, connections.WithMode(mode))
		j := j
		clk.Spawn("sink", func(th *sim.Thread) {
			for {
				if v, ok := sinkIn.PopNB(th); ok {
					got[j] = append(got[j], v)
					done++
					if done == n*msgsPerPort {
						doneCycle = th.Cycle()
						th.Sim().Stop()
					}
				}
				th.Wait()
			}
		})
	}
	s.Run(sim.Infinity - 1)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if done != n*msgsPerPort {
		t.Fatalf("delivered %d/%d messages", done, n*msgsPerPort)
	}
	return got, doneCycle
}

func TestArbitratedCrossbarDeliversAll(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		got, _ := buildXbarTB(t, n, 40, connections.ModeSimAccurate, 7)
		// Per-source in-order delivery: for each output, the sequence of
		// messages from any single source must be increasing.
		last := map[int]int{}
		for j := range got {
			for k, v := range got[j] {
				src := v / 1_000_000
				if prev, ok := last[src*100+j]; ok && v <= prev {
					t.Fatalf("n=%d out %d pos %d: %d after %d from src %d", n, j, k, v, prev, src)
				}
				last[src*100+j] = v
			}
		}
	}
}

func TestSignalAccurateCrossbarSlower(t *testing.T) {
	// The Figure 3 effect: signal-accurate simulation of the same model
	// takes far more cycles per transaction, growing with port count.
	_, simAcc := buildXbarTB(t, 8, 30, connections.ModeSimAccurate, 9)
	_, sigAcc := buildXbarTB(t, 8, 30, connections.ModeSignalAccurate, 9)
	if sigAcc < simAcc*4 {
		t.Fatalf("signal-accurate %d cycles vs sim-accurate %d — expected >=4x", sigAcc, simAcc)
	}
}

func TestStructuralCrossbarMatchesSimAccurateThroughput(t *testing.T) {
	// Saturated uniform-random traffic: cycles/transaction of the TLM
	// model under sim-accurate channels must track the RTL model within
	// a few percent (the paper's headline modelling claim).
	const n, msgs = 8, 300
	_, tlmCycles := buildXbarTB(t, n, msgs, connections.ModeSimAccurate, 11)

	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	r := rand.New(rand.NewSource(11))
	sent := make([]int, n)
	var rtl *StructuralCrossbar[int]
	rtl = NewStructuralCrossbar(clk, "rtl", n, 2,
		func(i int) (XbarMsg[int], bool) {
			if sent[i] >= msgs {
				return XbarMsg[int]{}, false
			}
			sent[i]++
			return XbarMsg[int]{Dst: r.Intn(n), Data: 0}, true
		},
		func(j int, v int) bool { return true })
	for rtl.TotalAccepted() < n*msgs {
		s.RunCycles(clk, 1)
	}
	rtlCycles := clk.Cycle()

	ratio := float64(tlmCycles) / float64(rtlCycles)
	if ratio < 0.80 || ratio > 1.35 {
		t.Fatalf("TLM %d cycles vs RTL %d cycles (ratio %.2f) — sim-accurate model should match RTL throughput", tlmCycles, rtlCycles, ratio)
	}
}

func TestStructuralCrossbarBackpressure(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	accept := false
	x := NewStructuralCrossbar(clk, "x", 2, 2,
		func(i int) (XbarMsg[int], bool) { return XbarMsg[int]{Dst: 0, Data: i}, true },
		func(j int, v int) bool { return accept })
	s.RunCycles(clk, 20)
	if x.TotalAccepted() != 0 {
		t.Fatal("accepted despite sink back-pressure")
	}
	accept = true
	s.RunCycles(clk, 20)
	if x.TotalAccepted() == 0 {
		t.Fatal("nothing accepted after releasing back-pressure")
	}
}

// TestFig3Shape checks the paper's Figure 3 relationships across port
// counts: the sim-accurate model tracks the RTL model closely at every
// size, while the signal-accurate model's cost grows with port count.
func TestFig3Shape(t *testing.T) {
	rows := RunFig3([]int{2, 4, 8, 16}, 150, 5)
	for i, r := range rows {
		ratio := r.SimAcc / r.RTL
		if ratio < 0.80 || ratio > 1.20 {
			t.Errorf("ports=%d: sim-accurate/RTL ratio %.2f outside ±20%%", r.Ports, ratio)
		}
		if r.SigAcc < 2*r.RTL {
			t.Errorf("ports=%d: signal-accurate %.2f not clearly above RTL %.2f", r.Ports, r.SigAcc, r.RTL)
		}
		if i > 0 && r.SigAcc <= rows[i-1].SigAcc {
			t.Errorf("signal-accurate error not growing: %.2f at %d ports after %.2f at %d",
				r.SigAcc, r.Ports, rows[i-1].SigAcc, rows[i-1].Ports)
		}
		if i > 0 {
			// The RTL series stays nearly flat: well below linear growth.
			if r.RTL > rows[0].RTL*2 {
				t.Errorf("RTL series not flat: %.2f at %d ports vs %.2f at %d", r.RTL, r.Ports, rows[0].RTL, rows[0].Ports)
			}
		}
	}
}

// --- Scratchpads ---

func TestScratchpadConflictFreeParallelism(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	const lanes = 4
	sp := NewScratchpad[uint64](clk, "sp", lanes, 64)
	reqOut := make([]*connections.Out[SPReq[uint64]], lanes)
	rspIn := make([]*connections.In[SPResp[uint64]], lanes)
	for i := 0; i < lanes; i++ {
		reqOut[i] = connections.NewOut[SPReq[uint64]]()
		rspIn[i] = connections.NewIn[SPResp[uint64]]()
		connections.Buffer(clk, "req", 2, reqOut[i], sp.Req[i])
		connections.Buffer(clk, "rsp", 2, sp.Rsp[i], rspIn[i])
	}
	gotData := make([]uint64, lanes)
	doneN := 0
	for i := 0; i < lanes; i++ {
		i := i
		clk.Spawn("lane", func(th *sim.Thread) {
			// Each lane touches its own bank: addr ≡ lane (mod lanes).
			addr := i + lanes*i
			reqOut[i].Push(th, SPReq[uint64]{Write: true, Addr: addr, Data: uint64(100 + i)})
			th.Wait()
			reqOut[i].Push(th, SPReq[uint64]{Addr: addr})
			rsp := rspIn[i].Pop(th)
			gotData[i] = rsp.Data
			doneN++
			if doneN == lanes {
				th.Sim().Stop()
			}
			th.Wait()
		})
	}
	s.Run(sim.Infinity - 1)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range gotData {
		if gotData[i] != uint64(100+i) {
			t.Fatalf("lane %d read %d, want %d", i, gotData[i], 100+i)
		}
	}
	if sp.Conflicts != 0 {
		t.Fatalf("conflicts = %d on conflict-free pattern", sp.Conflicts)
	}
}

func TestArbitratedScratchpadConflictSerialization(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	const lanes = 4
	sp := NewArbitratedScratchpad[uint64](clk, "asp", lanes, lanes, 64, 2)
	reqOut := make([]*connections.Out[SPReq[uint64]], lanes)
	rspIn := make([]*connections.In[SPResp[uint64]], lanes)
	for i := 0; i < lanes; i++ {
		reqOut[i] = connections.NewOut[SPReq[uint64]]()
		rspIn[i] = connections.NewIn[SPResp[uint64]]()
		connections.Buffer(clk, "req", 2, reqOut[i], sp.Req[i])
		connections.Buffer(clk, "rsp", 2, sp.Rsp[i], rspIn[i])
	}
	// Preload bank 0 addresses 0,4,8,12 with known values.
	for k := 0; k < lanes; k++ {
		sp.Mem.Write(k*lanes, uint64(500+k))
	}
	got := make([]uint64, lanes)
	doneN := 0
	for i := 0; i < lanes; i++ {
		i := i
		clk.Spawn("lane", func(th *sim.Thread) {
			// All lanes hit bank 0 simultaneously.
			reqOut[i].Push(th, SPReq[uint64]{Addr: i * lanes})
			rsp := rspIn[i].Pop(th)
			got[i] = rsp.Data
			doneN++
			if doneN == lanes {
				th.Sim().Stop()
			}
			th.Wait()
		})
	}
	s.Run(sim.Infinity - 1)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != uint64(500+i) {
			t.Fatalf("lane %d got %d, want %d", i, got[i], 500+i)
		}
	}
	if sp.Conflicts == 0 {
		t.Fatal("expected bank conflicts on all-lanes-to-bank-0 pattern")
	}
}

// Property: the arbitrated scratchpad serves random traffic with
// per-lane in-order responses that match a flat memory model.
func TestArbitratedScratchpadRandomProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for iter := 0; iter < 5; iter++ {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		lanes := 2 + r.Intn(3)
		banks := []int{1, 2, 4}[r.Intn(3)]
		size := 32 * banks
		sp := NewArbitratedScratchpad[uint64](clk, "asp", lanes, banks, size, 2)
		model := make([]uint64, size)

		type expRead struct {
			addr int
			want uint64
		}
		// Build a random program per lane; model semantics sequentially
		// per-lane. Writes from different lanes to the same address are
		// avoided to keep the model deterministic.
		progs := make([][]SPReq[uint64], lanes)
		expect := make([][]expRead, lanes)
		for l := 0; l < lanes; l++ {
			for k := 0; k < 40; k++ {
				addr := (r.Intn(size/lanes))*lanes + l // lane-private region
				if r.Intn(2) == 0 {
					v := r.Uint64()
					progs[l] = append(progs[l], SPReq[uint64]{Write: true, Addr: addr, Data: v})
					model[addr] = v
				} else {
					progs[l] = append(progs[l], SPReq[uint64]{Addr: addr})
					expect[l] = append(expect[l], expRead{addr, model[addr]})
				}
			}
		}
		done := 0
		for l := 0; l < lanes; l++ {
			l := l
			reqOut := connections.NewOut[SPReq[uint64]]()
			rspIn := connections.NewIn[SPResp[uint64]]()
			connections.Buffer(clk, "req", 2, reqOut, sp.Req[l])
			connections.Buffer(clk, "rsp", 2, sp.Rsp[l], rspIn)
			clk.Spawn("lane", func(th *sim.Thread) {
				ri := 0
				for _, req := range progs[l] {
					reqOut.Push(th, req)
					if !req.Write {
						rsp := rspIn.Pop(th)
						e := expect[l][ri]
						if rsp.Addr != e.addr || rsp.Data != e.want {
							t.Errorf("lane %d read %d: got (%d,%d) want (%d,%d)", l, ri, rsp.Addr, rsp.Data, e.addr, e.want)
						}
						ri++
					}
					th.Wait()
				}
				done++
				if done == lanes {
					th.Sim().Stop()
				}
				th.Wait()
			})
		}
		s.Run(sim.Infinity - 1)
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		if done != lanes {
			t.Fatalf("only %d/%d lanes completed", done, lanes)
		}
	}
}

// --- Serializer / Deserializer ---

type serMsg struct{ v uint64 }

func (m serMsg) PackBits() bitvec.Vec { return bitvec.FromUint64(m.v, 40) }

func TestSerializerDeserializerRoundTrip(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	ser := NewSerializer[serMsg](clk, "ser", 16)
	des := NewDeserializer(clk, "des", 40, func(b bitvec.Vec) serMsg { return serMsg{v: b.Uint64()} })

	srcOut := connections.NewOut[serMsg]()
	connections.Buffer(clk, "src", 2, srcOut, ser.In)
	connections.Buffer(clk, "link", 2, ser.Out, des.In)
	sinkIn := connections.NewIn[serMsg]()
	connections.Buffer(clk, "sink", 2, des.Out, sinkIn)

	const n = 25
	clk.Spawn("src", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			srcOut.Push(th, serMsg{v: uint64(i) * 0x123456})
			th.Wait()
		}
	})
	var got []serMsg
	clk.Spawn("sink", func(th *sim.Thread) {
		for len(got) < n {
			got = append(got, sinkIn.Pop(th))
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	for i, m := range got {
		if want := uint64(i) * 0x123456 & ((1 << 40) - 1); m.v != want {
			t.Fatalf("msg %d = %#x, want %#x", i, m.v, want)
		}
	}
}
