package matchlib

import "fmt"

// ReorderBuffer is the queue with in-order reads and out-of-order writes:
// producers allocate slots in program order, fill them in any order, and
// the consumer drains completed entries strictly in allocation order.
type ReorderBuffer[T any] struct {
	entries []robEntry[T]
	head    int // oldest allocated slot
	tail    int // next slot to allocate
	n       int // allocated entries
}

type robEntry[T any] struct {
	v     T
	valid bool
}

// Tag identifies an allocated reorder-buffer slot.
type Tag int

// NewReorderBuffer returns an empty buffer with the given capacity.
func NewReorderBuffer[T any](capacity int) *ReorderBuffer[T] {
	if capacity < 1 {
		panic(fmt.Sprintf("matchlib: reorder buffer capacity %d < 1", capacity))
	}
	return &ReorderBuffer[T]{entries: make([]robEntry[T], capacity)}
}

// CanAllocate reports whether a slot is available.
func (r *ReorderBuffer[T]) CanAllocate() bool { return r.n < len(r.entries) }

// Allocate reserves the next in-order slot and returns its tag. It panics
// when full; guard with CanAllocate.
func (r *ReorderBuffer[T]) Allocate() Tag {
	if !r.CanAllocate() {
		panic("matchlib: Allocate on full reorder buffer")
	}
	t := Tag(r.tail)
	r.entries[r.tail] = robEntry[T]{}
	r.tail = (r.tail + 1) % len(r.entries)
	r.n++
	return t
}

// Write fills the slot identified by tag, in any order. Writing a slot
// twice or an unallocated slot panics.
func (r *ReorderBuffer[T]) Write(tag Tag, v T) {
	i := int(tag)
	if i < 0 || i >= len(r.entries) || !r.allocated(i) {
		panic(fmt.Sprintf("matchlib: Write to unallocated reorder tag %d", tag))
	}
	if r.entries[i].valid {
		panic(fmt.Sprintf("matchlib: double Write to reorder tag %d", tag))
	}
	r.entries[i] = robEntry[T]{v: v, valid: true}
}

// CanPop reports whether the oldest allocated slot has been filled.
func (r *ReorderBuffer[T]) CanPop() bool {
	return r.n > 0 && r.entries[r.head].valid
}

// Pop removes and returns the oldest entry. It panics unless CanPop.
func (r *ReorderBuffer[T]) Pop() T {
	if !r.CanPop() {
		panic("matchlib: Pop on reorder buffer head not ready")
	}
	v := r.entries[r.head].v
	r.entries[r.head] = robEntry[T]{}
	r.head = (r.head + 1) % len(r.entries)
	r.n--
	return v
}

// Len returns the number of allocated entries.
func (r *ReorderBuffer[T]) Len() int { return r.n }

// allocated reports whether slot i lies in [head, tail).
func (r *ReorderBuffer[T]) allocated(i int) bool {
	if r.n == 0 {
		return false
	}
	if r.head < r.tail {
		return i >= r.head && i < r.tail
	}
	return i >= r.head || i < r.tail
}
