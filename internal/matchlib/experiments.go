package matchlib

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/connections"
	"repro/internal/exp"
	"repro/internal/sim"
)

// Fig3Row is one x-position of the paper's Figure 3: cycles per
// transaction through an arbitrated crossbar with the given port count,
// measured on the structural RTL model, the sim-accurate Connections
// model, and the signal-accurate Connections model. Cycles/transaction
// is elapsed cycles divided by transactions delivered per port under
// saturated uniform-random traffic.
type Fig3Row struct {
	Ports  int
	RTL    float64
	SimAcc float64
	SigAcc float64
}

// xbarTLMCyclesPerTxn drives the thread-based ArbitratedCrossbar through
// channels of the given mode until every source has delivered msgs
// messages, and returns elapsed cycles divided by msgs.
func xbarTLMCyclesPerTxn(n, msgs int, mode connections.Mode, seed int64) float64 {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	x := NewArbitratedCrossbar[int](clk, "x", n, 2)
	for i := 0; i < n; i++ {
		srcOut := connections.NewOut[XbarMsg[int]]()
		connections.Buffer(clk, "in", 2, srcOut, x.In[i], connections.WithMode(mode))
		r := rand.New(rand.NewSource(seed + int64(i)))
		clk.Spawn("src", func(th *sim.Thread) {
			for k := 0; k < msgs; k++ {
				srcOut.Push(th, XbarMsg[int]{Dst: r.Intn(n)})
				th.Wait()
			}
		})
	}
	total := 0
	for j := 0; j < n; j++ {
		sinkIn := connections.NewIn[int]()
		connections.Buffer(clk, "out", 2, x.Out[j], sinkIn, connections.WithMode(mode))
		clk.Spawn("sink", func(th *sim.Thread) {
			for {
				if _, ok := sinkIn.PopNB(th); ok {
					total++
					if total == n*msgs {
						th.Sim().Stop()
					}
				}
				th.Wait()
			}
		})
	}
	s.Run(sim.Infinity - 1)
	return float64(clk.Cycle()) / float64(msgs)
}

// xbarRTLCyclesPerTxn drives the structural RTL crossbar with saturated
// sources and always-ready sinks.
func xbarRTLCyclesPerTxn(n, msgs int, seed int64) float64 {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	r := rand.New(rand.NewSource(seed))
	sent := make([]int, n)
	x := NewStructuralCrossbar(clk, "rtl", n, 2,
		func(i int) (XbarMsg[int], bool) {
			if sent[i] >= msgs {
				return XbarMsg[int]{}, false
			}
			sent[i]++
			return XbarMsg[int]{Dst: r.Intn(n)}, true
		},
		func(j int, v int) bool { return true })
	for x.TotalAccepted() < uint64(n*msgs) {
		s.RunCycles(clk, 16)
	}
	return float64(clk.Cycle()) / float64(msgs)
}

// RunFig3 measures all three series for the given port counts. It is
// the sequential form of RunFig3Campaign and returns identical rows.
func RunFig3(ports []int, msgsPerPort int, seed int64) []Fig3Row {
	rows, _ := RunFig3Campaign(ports, msgsPerPort, seed, 1)
	return rows
}

// RunFig3Campaign measures the figure's series with one campaign job per
// x-position (port count), sharded over the runner's worker pool. All
// three series of a row share that row's derived seed so the comparison
// between models stays seed-matched. Rows come back in port order and
// are bit-identical for any parallelism level.
func RunFig3Campaign(ports []int, msgsPerPort int, seed int64, parallel int) ([]Fig3Row, *exp.Summary) {
	jobs := make([]exp.Job, len(ports))
	for i, n := range ports {
		n := n
		jobs[i] = exp.Job{
			Name: fmt.Sprintf("ports[%d]", n),
			Run: func(c *exp.Ctx) (any, error) {
				return Fig3Row{
					Ports:  n,
					RTL:    xbarRTLCyclesPerTxn(n, msgsPerPort, c.Seed),
					SimAcc: xbarTLMCyclesPerTxn(n, msgsPerPort, connections.ModeSimAccurate, c.Seed),
					SigAcc: xbarTLMCyclesPerTxn(n, msgsPerPort, connections.ModeSignalAccurate, c.Seed),
				}, nil
			},
		}
	}
	s := exp.Run(jobs, exp.Named("fig3"), exp.Seed(seed), exp.Parallel(parallel))
	rows := make([]Fig3Row, 0, len(ports))
	for _, r := range s.Results {
		if row, ok := r.Value.(Fig3Row); ok {
			rows = append(rows, row)
		}
	}
	return rows, s
}

// PrintFig3 renders the series as the paper's figure data.
func PrintFig3(w io.Writer, rows []Fig3Row) {
	fmt.Fprintln(w, "Figure 3: cycles per transaction, arbitrated crossbar (saturated random traffic)")
	fmt.Fprintf(w, "%-6s %10s %14s %16s\n", "ports", "RTL", "sim-accurate", "signal-accurate")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %10.2f %14.2f %16.2f\n", r.Ports, r.RTL, r.SimAcc, r.SigAcc)
	}
}
