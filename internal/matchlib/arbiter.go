package matchlib

import "fmt"

// Arbiter is the 1-out-of-N round-robin selector class: it stores a
// rotating priority and its Pick method selects among requesters and
// updates the state, exactly as the MatchLib arbiter object does.
type Arbiter struct {
	n    int
	next int // index with highest priority on the next Pick
}

// NewArbiter returns a round-robin arbiter over n requesters.
func NewArbiter(n int) *Arbiter {
	if n < 1 {
		panic(fmt.Sprintf("matchlib: arbiter width %d < 1", n))
	}
	if n > 64 {
		panic(fmt.Sprintf("matchlib: arbiter width %d > 64", n))
	}
	return &Arbiter{n: n}
}

// N returns the number of requesters.
func (a *Arbiter) N() int { return a.n }

// Pick selects one requester from the request mask (bit i set means
// requester i is asserting) and advances the rotating priority past the
// grant. It returns -1 when no bit is set.
func (a *Arbiter) Pick(req uint64) int {
	req &= a.mask()
	if req == 0 {
		return -1
	}
	for off := 0; off < a.n; off++ {
		i := (a.next + off) % a.n
		if req&(1<<uint(i)) != 0 {
			a.next = (i + 1) % a.n
			return i
		}
	}
	return -1
}

// PickOneHot is Pick returning a one-hot grant mask (0 when no request).
func (a *Arbiter) PickOneHot(req uint64) uint64 {
	i := a.Pick(req)
	if i < 0 {
		return 0
	}
	return 1 << uint(i)
}

// Reset restores the initial rotating priority.
func (a *Arbiter) Reset() { a.next = 0 }

func (a *Arbiter) mask() uint64 {
	if a.n == 64 {
		return ^uint64(0)
	}
	return (1 << uint(a.n)) - 1
}

// OneHotEncode returns a one-hot mask with bit idx set among n lines.
func OneHotEncode(idx, n int) uint64 {
	if idx < 0 || idx >= n || n > 64 {
		panic(fmt.Sprintf("matchlib: one-hot encode idx=%d n=%d", idx, n))
	}
	return 1 << uint(idx)
}

// OneHotDecode returns the index of the single set bit in mask, or ok=false
// when the mask is not one-hot.
func OneHotDecode(mask uint64) (idx int, ok bool) {
	if mask == 0 || mask&(mask-1) != 0 {
		return 0, false
	}
	for mask != 1 {
		mask >>= 1
		idx++
	}
	return idx, true
}

// PriorityEncode returns the index of the lowest set bit, or -1 when zero —
// the fixed-priority selector used by the src-loop crossbar structure.
func PriorityEncode(mask uint64) int {
	if mask == 0 {
		return -1
	}
	i := 0
	for mask&1 == 0 {
		mask >>= 1
		i++
	}
	return i
}
