package matchlib

import (
	"repro/internal/bitvec"
	"repro/internal/connections"
	"repro/internal/sim"
)

// Serializer converts N-bit messages to M cycles of (N/M)-bit flits
// (paper Table 2). It is the router-interface building block of the PE:
// one flit leaves per cycle.
type Serializer[T connections.Packable] struct {
	In  *connections.In[T]
	Out *connections.Out[connections.Flit]
}

// NewSerializer builds a serializer emitting flits of flitWidth bits.
func NewSerializer[T connections.Packable](clk *sim.Clock, name string, flitWidth int) *Serializer[T] {
	s := &Serializer[T]{
		In:  connections.NewIn[T](),
		Out: connections.NewOut[connections.Flit](),
	}
	clk.Spawn(name+".ser", func(th *sim.Thread) {
		for {
			v := s.In.Pop(th)
			for _, f := range connections.SplitFlits(v.PackBits(), flitWidth) {
				s.Out.Push(th, f)
				th.Wait()
			}
		}
	})
	return s
}

// DeclareRates registers the serializer with the static rate analysis as
// an SDF actor firing once per flits cycles: each firing pops one message
// and pushes flits flits (the caller knows the message width, so it
// supplies the flit count the constructor never sees). The ports become
// owned under name, so callers must bind both — which they already do,
// or the serializer would deadlock.
func (s *Serializer[T]) DeclareRates(clk *sim.Clock, name string, flits int64) *Serializer[T] {
	if flits < 1 {
		panic("matchlib: serializer flit count must be positive")
	}
	clk.Sim().Design().DeclareActor(name, sim.ActorSDF, clk, sim.NewRat(1, flits))
	s.In.Owned(clk, name, "in").Rated(1, 1)
	s.Out.Owned(clk, name, "out").Rated(flits, 1)
	return s
}

// Deserializer reassembles flit streams into messages of msgWidth bits,
// recovered by unpack.
type Deserializer[T any] struct {
	In  *connections.In[connections.Flit]
	Out *connections.Out[T]
}

// NewDeserializer builds a deserializer for messages of msgWidth bits.
func NewDeserializer[T any](clk *sim.Clock, name string, msgWidth int, unpack func(bitvec.Vec) T) *Deserializer[T] {
	d := &Deserializer[T]{
		In:  connections.NewIn[connections.Flit](),
		Out: connections.NewOut[T](),
	}
	clk.Spawn(name+".des", func(th *sim.Thread) {
		var acc []connections.Flit
		for {
			f := d.In.Pop(th)
			acc = append(acc, f)
			if f.Last {
				d.Out.Push(th, unpack(connections.JoinFlits(acc, msgWidth)))
				acc = acc[:0]
			}
			th.Wait()
		}
	})
	return d
}

// DeclareRates is the deserializer mirror of Serializer.DeclareRates:
// one firing per flits cycles, popping flits flits and pushing one
// reassembled message.
func (d *Deserializer[T]) DeclareRates(clk *sim.Clock, name string, flits int64) *Deserializer[T] {
	if flits < 1 {
		panic("matchlib: deserializer flit count must be positive")
	}
	clk.Sim().Design().DeclareActor(name, sim.ActorSDF, clk, sim.NewRat(1, flits))
	d.In.Owned(clk, name, "in").Rated(flits, 1)
	d.Out.Owned(clk, name, "out").Rated(1, 1)
	return d
}
