package matchlib

import (
	"fmt"

	"repro/internal/connections"
	"repro/internal/sim"
)

// SPReq is a scratchpad request issued on a lane port.
type SPReq[T any] struct {
	Write bool
	Addr  int
	Data  T // payload for writes
}

// SPResp is a scratchpad read response delivered on the same lane the
// request arrived on. Writes do not generate responses.
type SPResp[T any] struct {
	Addr int
	Data T
}

// Scratchpad is the banked memory array with crossbar (paper Table 2):
// N request lanes front N word-interleaved banks. Lanes that hit distinct
// banks are served in the same cycle; on a bank conflict the lowest lane
// wins and the others retry next cycle (fixed priority, no queuing).
// ArbitratedScratchpad adds queues and round-robin arbitration.
type Scratchpad[T any] struct {
	Req []*connections.In[SPReq[T]]
	Rsp []*connections.Out[SPResp[T]]

	Mem       *MemArray[T]
	Conflicts uint64 // cycles × lanes deferred by bank conflicts
}

// NewScratchpad builds a scratchpad with lanes ports and lanes banks over
// size words.
func NewScratchpad[T any](clk *sim.Clock, name string, lanes, size int) *Scratchpad[T] {
	sp := &Scratchpad[T]{
		Req: make([]*connections.In[SPReq[T]], lanes),
		Rsp: make([]*connections.Out[SPResp[T]], lanes),
		Mem: NewMemArray[T](size, lanes),
	}
	for i := range sp.Req {
		sp.Req[i] = connections.NewIn[SPReq[T]]()
		sp.Rsp[i] = connections.NewOut[SPResp[T]]()
	}
	pending := make([]*SPReq[T], lanes)
	clk.Spawn(name+".scratchpad", func(th *sim.Thread) {
		for {
			// Latch one request per lane.
			for i := 0; i < lanes; i++ {
				if pending[i] != nil {
					continue
				}
				if r, ok := sp.Req[i].PopNB(th); ok {
					r := r
					sp.Mem.check(r.Addr)
					pending[i] = &r
				}
			}
			// Serve conflict-free lanes, lowest lane first.
			bankBusy := make(map[int]bool, lanes)
			for i := 0; i < lanes; i++ {
				r := pending[i]
				if r == nil {
					continue
				}
				b := sp.Mem.BankOf(r.Addr)
				if bankBusy[b] {
					sp.Conflicts++
					continue
				}
				if r.Write {
					bankBusy[b] = true
					sp.Mem.Write(r.Addr, r.Data)
					pending[i] = nil
				} else {
					if sp.Rsp[i].PushNB(th, SPResp[T]{Addr: r.Addr, Data: sp.Mem.Read(r.Addr)}) {
						bankBusy[b] = true
						pending[i] = nil
					}
				}
			}
			th.Wait()
		}
	})
	return sp
}

// ArbitratedScratchpad is the banked memory with arbitration and queuing
// (paper Table 2): per-lane request queues feed per-bank round-robin
// arbiters, so conflicting lanes share bank bandwidth fairly while each
// lane observes its own responses in request order.
type ArbitratedScratchpad[T any] struct {
	Req []*connections.In[SPReq[T]]
	Rsp []*connections.Out[SPResp[T]]

	Mem       *MemArray[T]
	Conflicts uint64
}

type spTagged[T any] struct {
	req  SPReq[T]
	lane int
}

// NewArbitratedScratchpad builds the arbitrated variant with per-lane
// queues of depth qdepth and banks independent of the lane count.
func NewArbitratedScratchpad[T any](clk *sim.Clock, name string, lanes, banks, size, qdepth int) *ArbitratedScratchpad[T] {
	if banks < 1 {
		panic(fmt.Sprintf("matchlib: banks %d < 1", banks))
	}
	sp := &ArbitratedScratchpad[T]{
		Req: make([]*connections.In[SPReq[T]], lanes),
		Rsp: make([]*connections.Out[SPResp[T]], lanes),
		Mem: NewMemArray[T](size, banks),
	}
	for i := range sp.Req {
		sp.Req[i] = connections.NewIn[SPReq[T]]()
		sp.Rsp[i] = connections.NewOut[SPResp[T]]()
	}
	laneQ := make([]*FIFO[spTagged[T]], lanes)
	for i := range laneQ {
		laneQ[i] = NewFIFO[spTagged[T]](qdepth)
	}
	arbs := make([]*Arbiter, banks)
	for b := range arbs {
		arbs[b] = NewArbiter(lanes)
	}
	clk.Spawn(name+".arbscratchpad", func(th *sim.Thread) {
		for {
			for i := 0; i < lanes; i++ {
				if laneQ[i].Full() {
					continue
				}
				if r, ok := sp.Req[i].PopNB(th); ok {
					sp.Mem.check(r.Addr)
					laneQ[i].Push(spTagged[T]{req: r, lane: i})
				}
			}
			// Per-bank request masks from lane-queue heads.
			reqMask := make([]uint64, banks)
			for i := 0; i < lanes; i++ {
				if !laneQ[i].Empty() {
					b := sp.Mem.BankOf(laneQ[i].Peek().req.Addr)
					reqMask[b] |= 1 << uint(i)
				}
			}
			for b := 0; b < banks; b++ {
				m := reqMask[b]
				if m == 0 {
					continue
				}
				if m&(m-1) != 0 {
					sp.Conflicts++
				}
				i := arbs[b].Pick(m)
				if i < 0 {
					continue
				}
				tr := laneQ[i].Peek()
				if tr.req.Write {
					sp.Mem.Write(tr.req.Addr, tr.req.Data)
					laneQ[i].Pop()
				} else if sp.Rsp[i].PushNB(th, SPResp[T]{Addr: tr.req.Addr, Data: sp.Mem.Read(tr.req.Addr)}) {
					laneQ[i].Pop()
				}
			}
			th.Wait()
		}
	})
	return sp
}
