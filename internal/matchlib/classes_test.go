package matchlib

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// --- FIFO ---

func TestFIFOBasics(t *testing.T) {
	f := NewFIFO[int](3)
	if !f.Empty() || f.Full() || f.Cap() != 3 {
		t.Fatal("fresh FIFO state wrong")
	}
	f.Push(1)
	f.Push(2)
	f.Push(3)
	if !f.Full() {
		t.Fatal("not full after 3 pushes")
	}
	if f.Peek() != 1 || f.At(2) != 3 {
		t.Fatal("Peek/At wrong")
	}
	if f.Pop() != 1 || f.Pop() != 2 || f.Pop() != 3 {
		t.Fatal("pop order wrong")
	}
	if !f.Empty() {
		t.Fatal("not empty after draining")
	}
}

func TestFIFOWrapAround(t *testing.T) {
	f := NewFIFO[int](2)
	for i := 0; i < 100; i++ {
		f.Push(i)
		if got := f.Pop(); got != i {
			t.Fatalf("wrap: got %d want %d", got, i)
		}
	}
}

func TestFIFOPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"pop-empty":  func() { NewFIFO[int](1).Pop() },
		"peek-empty": func() { NewFIFO[int](1).Peek() },
		"push-full":  func() { f := NewFIFO[int](1); f.Push(0); f.Push(1) },
		"bad-cap":    func() { NewFIFO[int](0) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			fn()
		})
	}
}

// Property: FIFO behaves like a slice queue under random op sequences.
func TestFIFOModelProperty(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for iter := 0; iter < 200; iter++ {
		cap := 1 + r.Intn(8)
		f := NewFIFO[int](cap)
		var model []int
		for op := 0; op < 500; op++ {
			if r.Intn(2) == 0 && !f.Full() {
				v := r.Int()
				f.Push(v)
				model = append(model, v)
			} else if !f.Empty() {
				if got, want := f.Pop(), model[0]; got != want {
					t.Fatalf("pop mismatch: %d vs %d", got, want)
				}
				model = model[1:]
			}
			if f.Len() != len(model) {
				t.Fatalf("len mismatch: %d vs %d", f.Len(), len(model))
			}
		}
	}
}

// --- Arbiter ---

func TestArbiterRoundRobinFairness(t *testing.T) {
	a := NewArbiter(4)
	all := uint64(0b1111)
	counts := make([]int, 4)
	var prev int = -1
	for i := 0; i < 400; i++ {
		g := a.Pick(all)
		if g < 0 || g > 3 {
			t.Fatalf("grant %d out of range", g)
		}
		if prev >= 0 && g != (prev+1)%4 {
			t.Fatalf("not round-robin: %d after %d", g, prev)
		}
		prev = g
		counts[g]++
	}
	for i, c := range counts {
		if c != 100 {
			t.Fatalf("requester %d granted %d/400 — unfair", i, c)
		}
	}
}

func TestArbiterSkipsIdle(t *testing.T) {
	a := NewArbiter(4)
	if g := a.Pick(0b1000); g != 3 {
		t.Fatalf("grant %d, want 3", g)
	}
	if g := a.Pick(0); g != -1 {
		t.Fatalf("grant %d on empty mask, want -1", g)
	}
	if m := a.PickOneHot(0b0101); m == 0 || m&(m-1) != 0 {
		t.Fatalf("PickOneHot returned non-one-hot %b", m)
	}
}

// Property: every grant is a requester, and any continuously-requesting
// input is granted within N picks (no starvation).
func TestArbiterNoStarvationProperty(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for iter := 0; iter < 100; iter++ {
		n := 1 + r.Intn(16)
		a := NewArbiter(n)
		persistent := r.Intn(n)
		sinceGrant := 0
		for step := 0; step < 500; step++ {
			req := r.Uint64() | 1<<uint(persistent)
			g := a.Pick(req)
			if g < 0 || req&(1<<uint(g)) == 0 {
				t.Fatalf("granted non-requester %d (mask %b)", g, req)
			}
			if g == persistent {
				sinceGrant = 0
			} else {
				sinceGrant++
				if sinceGrant > n {
					t.Fatalf("requester %d starved for %d picks (n=%d)", persistent, sinceGrant, n)
				}
			}
		}
	}
}

func TestOneHotEncodeDecode(t *testing.T) {
	for i := 0; i < 64; i++ {
		m := OneHotEncode(i, 64)
		idx, ok := OneHotDecode(m)
		if !ok || idx != i {
			t.Fatalf("decode(encode(%d)) = %d,%v", i, idx, ok)
		}
	}
	if _, ok := OneHotDecode(0); ok {
		t.Fatal("decode(0) ok")
	}
	if _, ok := OneHotDecode(0b11); ok {
		t.Fatal("decode(0b11) ok")
	}
}

func TestPriorityEncode(t *testing.T) {
	if PriorityEncode(0) != -1 {
		t.Fatal("PriorityEncode(0)")
	}
	if PriorityEncode(0b101000) != 3 {
		t.Fatalf("PriorityEncode(0b101000) = %d", PriorityEncode(0b101000))
	}
}

// --- MemArray ---

func TestMemArrayReadWrite(t *testing.T) {
	m := NewMemArray[uint64](64, 4)
	m.Write(17, 0xdead)
	if m.Read(17) != 0xdead {
		t.Fatal("read-after-write failed")
	}
	if m.BankOf(17) != 1 {
		t.Fatalf("BankOf(17) = %d, want 1", m.BankOf(17))
	}
	r, w := m.Accesses()
	if r != 1 || w != 1 {
		t.Fatalf("accesses = %d,%d", r, w)
	}
}

func TestMemArrayBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-dividing banks")
		}
	}()
	NewMemArray[int](10, 3)
}

// --- Vector ---

func TestVectorOps(t *testing.T) {
	a := Vector[int32]{1, 2, 3, 4}
	b := Vector[int32]{10, 20, 30, 40}
	if got := a.Add(b); got[3] != 44 {
		t.Fatalf("Add = %v", got)
	}
	if got := b.Sub(a); got[0] != 9 {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Mul(b); got[2] != 90 {
		t.Fatalf("Mul = %v", got)
	}
	if got := a.Mac(b, Vector[int32]{1, 1, 1, 1}); got[1] != 41 {
		t.Fatalf("Mac = %v", got)
	}
	if got := a.Dot(b); got != 10+40+90+160 {
		t.Fatalf("Dot = %d", got)
	}
	if got := a.Reduce(); got != 10 {
		t.Fatalf("Reduce = %d", got)
	}
	if got := a.Scale(3); got[3] != 12 {
		t.Fatalf("Scale = %v", got)
	}
	if got := (Vector[int32]{3, 9, 1, 7}).Max(); got != 9 {
		t.Fatalf("Max = %d", got)
	}
	if got := (Vector[int32]{3, 9, 1, 7}).ArgMin(); got != 2 {
		t.Fatalf("ArgMin = %d", got)
	}
}

func TestVectorDotMatchesMacReduce(t *testing.T) {
	if err := quick.Check(func(xs, ys []int32) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		a, b := Vector[int32](xs[:n]), Vector[int32](ys[:n])
		return a.Dot(b) == a.Mul(b).Reduce()
	}, nil); err != nil {
		t.Error(err)
	}
}

// --- Crossbar functions ---

func TestCrossbarDstLoop(t *testing.T) {
	in := []string{"a", "b", "c", "d"}
	out := CrossbarDstLoop(in, []int{3, 2, 1, 0})
	want := []string{"d", "c", "b", "a"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v", out)
		}
	}
}

func TestCrossbarSrcLoopPriority(t *testing.T) {
	// Two inputs targeting output 0: the later source must win (the
	// priority-chain semantics the paper's HLS discussion hinges on).
	out := CrossbarSrcLoop([]int{7, 8}, []int{0, 0}, 2)
	if out[0] != 8 {
		t.Fatalf("out[0] = %d, want 8 (later source wins)", out[0])
	}
	if out[1] != 0 {
		t.Fatalf("out[1] = %d, want zero value", out[1])
	}
}

// Property: on a permutation, src-loop and dst-loop produce the same
// routing (they only differ under conflicts).
func TestCrossbarLoopsAgreeOnPermutations(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for iter := 0; iter < 200; iter++ {
		n := 1 + r.Intn(32)
		perm := r.Perm(n) // dst[src]
		in := make([]int, n)
		for i := range in {
			in[i] = r.Int()
		}
		bySrc := CrossbarSrcLoop(in, perm, n)
		inv := make([]int, n) // src[dst]
		for s, d := range perm {
			inv[d] = s
		}
		byDst := CrossbarDstLoop(in, inv)
		for i := range bySrc {
			if bySrc[i] != byDst[i] {
				t.Fatalf("n=%d output %d differs", n, i)
			}
		}
		viaPermute := Permute(in, inv)
		for i := range viaPermute {
			if viaPermute[i] != byDst[i] {
				t.Fatalf("Permute disagrees at %d", i)
			}
		}
	}
}

func TestPermuteRejectsNonPermutation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Permute([]int{1, 2}, []int{0, 0})
}

// --- ReorderBuffer ---

func TestReorderBufferInOrderDrain(t *testing.T) {
	r := NewReorderBuffer[string](4)
	t0 := r.Allocate()
	t1 := r.Allocate()
	t2 := r.Allocate()
	if r.CanPop() {
		t.Fatal("CanPop before any write")
	}
	r.Write(t2, "c") // out of order
	r.Write(t0, "a")
	if !r.CanPop() {
		t.Fatal("head written but CanPop false")
	}
	if got := r.Pop(); got != "a" {
		t.Fatalf("Pop = %q", got)
	}
	if r.CanPop() {
		t.Fatal("t1 unwritten but CanPop true")
	}
	r.Write(t1, "b")
	if r.Pop() != "b" || r.Pop() != "c" {
		t.Fatal("drain order wrong")
	}
}

func TestReorderBufferDoubleWritePanics(t *testing.T) {
	r := NewReorderBuffer[int](2)
	tag := r.Allocate()
	r.Write(tag, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	r.Write(tag, 2)
}

// Property: random allocate/write/pop sequences drain in allocation order.
func TestReorderBufferProperty(t *testing.T) {
	r := rand.New(rand.NewSource(24))
	for iter := 0; iter < 100; iter++ {
		capN := 1 + r.Intn(8)
		rob := NewReorderBuffer[int](capN)
		next := 0      // next value to allocate
		expect := 0    // next value the consumer must see
		var open []Tag // allocated, unwritten tags with their values
		var vals []int
		for step := 0; step < 300; step++ {
			switch r.Intn(3) {
			case 0:
				if rob.CanAllocate() {
					open = append(open, rob.Allocate())
					vals = append(vals, next)
					next++
				}
			case 1:
				if len(open) > 0 {
					i := r.Intn(len(open))
					rob.Write(open[i], vals[i])
					open = append(open[:i], open[i+1:]...)
					vals = append(vals[:i], vals[i+1:]...)
				}
			case 2:
				if rob.CanPop() {
					if got := rob.Pop(); got != expect {
						t.Fatalf("popped %d, want %d", got, expect)
					}
					expect++
				}
			}
		}
	}
}
