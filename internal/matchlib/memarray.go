package matchlib

import "fmt"

// MemArray is the abstract memory class: an array of data as internal
// state with read and write methods, plus banked-addressing helpers used
// by the scratchpad modules. Address 0 is the first word; the array maps
// to SRAM macros during physical design.
type MemArray[T any] struct {
	data  []T
	banks int

	reads, writes uint64 // access counters for power analysis
}

// NewMemArray returns a zeroed memory of size words organized as banks
// interleaved word-wise (bank = addr mod banks).
func NewMemArray[T any](size, banks int) *MemArray[T] {
	if size < 1 {
		panic(fmt.Sprintf("matchlib: memory size %d < 1", size))
	}
	if banks < 1 || size%banks != 0 {
		panic(fmt.Sprintf("matchlib: %d banks do not divide size %d", banks, size))
	}
	return &MemArray[T]{data: make([]T, size), banks: banks}
}

// Size returns the number of words.
func (m *MemArray[T]) Size() int { return len(m.data) }

// Banks returns the bank count.
func (m *MemArray[T]) Banks() int { return m.banks }

// BankOf returns the bank that holds addr (word interleaving).
func (m *MemArray[T]) BankOf(addr int) int { return addr % m.banks }

// Read returns the word at addr.
func (m *MemArray[T]) Read(addr int) T {
	m.check(addr)
	m.reads++
	return m.data[addr]
}

// Write stores v at addr.
func (m *MemArray[T]) Write(addr int, v T) {
	m.check(addr)
	m.writes++
	m.data[addr] = v
}

// Accesses returns the cumulative read and write counts, the switching
// activity inputs to the power model.
func (m *MemArray[T]) Accesses() (reads, writes uint64) { return m.reads, m.writes }

func (m *MemArray[T]) check(addr int) {
	if addr < 0 || addr >= len(m.data) {
		panic(fmt.Sprintf("matchlib: memory address %d out of range [0,%d)", addr, len(m.data)))
	}
}
