package matchlib

import (
	"fmt"

	"repro/internal/sim"
)

// StructuralCrossbar is a register-transfer-level model of the arbitrated
// crossbar: explicit input queues, per-output round-robin arbitration, and
// fully parallel valid/ready handshakes resolved within each cycle. It
// stands in for the HLS-generated RTL the paper cosimulates and provides
// the "RTL" cycle ground truth of Figure 3 — handshakes on all ports
// complete concurrently, unlike the serialized signal-accurate model.
//
// Sources and sinks attach as callbacks: stim is sampled once per input
// per cycle when the input queue has room (returning ok=false models an
// idle producer), and sink is offered one granted message per output per
// cycle (returning false models back-pressure).
type StructuralCrossbar[T any] struct {
	n    int
	inq  []*FIFO[XbarMsg[T]]
	arbs []*Arbiter
	stim func(i int) (XbarMsg[T], bool)
	sink func(j int, v T) bool

	Accepted []uint64
	Offered  uint64
}

// NewStructuralCrossbar builds the RTL crossbar model on clk.
func NewStructuralCrossbar[T any](clk *sim.Clock, name string, n, qdepth int,
	stim func(i int) (XbarMsg[T], bool), sink func(j int, v T) bool) *StructuralCrossbar[T] {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("matchlib: crossbar ports %d out of range [1,64]", n))
	}
	x := &StructuralCrossbar[T]{
		n:        n,
		inq:      make([]*FIFO[XbarMsg[T]], n),
		arbs:     make([]*Arbiter, n),
		stim:     stim,
		sink:     sink,
		Accepted: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		x.inq[i] = NewFIFO[XbarMsg[T]](qdepth)
		x.arbs[i] = NewArbiter(n)
	}
	clk.AtCommit(x.cycle)
	return x
}

// cycle performs one clock edge: arbitration and output transfers happen
// on the state registered at the previous edge, then new input transfers
// land — standard RTL register semantics.
func (x *StructuralCrossbar[T]) cycle() {
	// Per-output request masks from input queue heads.
	var reqs [64]uint64
	for i := 0; i < x.n; i++ {
		if !x.inq[i].Empty() {
			reqs[x.inq[i].Peek().Dst] |= 1 << uint(i)
		}
	}
	// All output handshakes resolve in parallel within the cycle.
	for j := 0; j < x.n; j++ {
		if reqs[j] == 0 {
			continue
		}
		i := x.arbs[j].Pick(reqs[j])
		if i < 0 {
			continue
		}
		x.Offered++
		if x.sink(j, x.inq[i].Peek().Data) {
			x.inq[i].Pop()
			x.Accepted[j]++
		}
	}
	// Input-side handshakes, also parallel.
	for i := 0; i < x.n; i++ {
		if x.inq[i].Full() {
			continue
		}
		if m, ok := x.stim(i); ok {
			if m.Dst < 0 || m.Dst >= x.n {
				panic(fmt.Sprintf("matchlib: crossbar destination %d out of range", m.Dst))
			}
			x.inq[i].Push(m)
		}
	}
}

// TotalAccepted returns transfers delivered across all outputs.
func (x *StructuralCrossbar[T]) TotalAccepted() uint64 {
	var t uint64
	for _, a := range x.Accepted {
		t += a
	}
	return t
}
