// Package matchlib is the Go rendering of MatchLib, the paper's
// object-oriented library of commonly used hardware components (Table 2).
//
// Following the paper's taxonomy, components come in three flavours:
//
//   - Functions — untimed, stateless helpers describing datapath
//     behaviour: Crossbar, one-hot Encode/Decode, priority encoders (and
//     floating-point arithmetic in the float subpackage).
//   - Classes — untimed objects with state and methods: FIFO, Arbiter,
//     MemArray, Vector, ReorderBuffer. These are instantiated inside
//     module models and inside the HLS designs under internal/hls.
//   - Modules — clocked processes with latency-insensitive ports built on
//     internal/connections: ArbitratedCrossbar, ArbitratedScratchpad,
//     Scratchpad, Serializer/Deserializer, Cache, SimpleMemory. The NoC
//     routers (SFRouter, WHVCRouter) live in internal/noc and the AXI
//     components in internal/axi.
//
// A structural register-transfer-level model of the arbitrated crossbar
// (StructuralCrossbar) provides the cycle ground truth for reproducing the
// paper's Figure 3.
package matchlib
