package matchlib

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/connections"
	"repro/internal/sim"
)

// XbarMsg is a crossbar payload tagged with its destination output port.
type XbarMsg[T any] struct {
	Dst  int
	Data T
}

// PackBits renders the message for RTL-cosim channels: 32 data bits (when
// the payload is packable or integral) plus an 8-bit destination.
func (m XbarMsg[T]) PackBits() bitvec.Vec {
	var data bitvec.Vec
	switch v := any(m.Data).(type) {
	case connections.Packable:
		data = v.PackBits()
	case int:
		data = bitvec.FromUint64(uint64(v), 32)
	case uint64:
		data = bitvec.FromUint64(v, 64)
	default:
		data = bitvec.New(32)
	}
	return data.Concat(bitvec.FromUint64(uint64(m.Dst), 8))
}

// ArbitratedCrossbar is the crossbar with conflict arbitration and input
// queuing (paper Table 2). N input ports accept destination-tagged
// messages; each output port grants one queued head per cycle by
// round-robin arbitration.
//
// The model is written exactly once and runs under every Connections mode.
// Its single process loop performs one non-blocking port operation per
// input and per granted output each cycle, so under ModeSignalAccurate it
// exhibits the serialization the paper measures in Figure 3, while under
// ModeSimAccurate it matches the structural RTL model's throughput.
type ArbitratedCrossbar[T any] struct {
	In  []*connections.In[XbarMsg[T]]
	Out []*connections.Out[T]

	inq  []*FIFO[XbarMsg[T]]
	arbs []*Arbiter

	// Accepted counts transfers granted to each output.
	Accepted []uint64
}

// NewArbitratedCrossbar builds an n-input, n-output arbitrated crossbar on
// clk with per-input queues of depth qdepth. The ports are unbound; bind
// them with connections channels of any kind and mode.
func NewArbitratedCrossbar[T any](clk *sim.Clock, name string, n, qdepth int) *ArbitratedCrossbar[T] {
	if n < 1 || n > 64 {
		panic(fmt.Sprintf("matchlib: crossbar ports %d out of range [1,64]", n))
	}
	x := &ArbitratedCrossbar[T]{
		In:       make([]*connections.In[XbarMsg[T]], n),
		Out:      make([]*connections.Out[T], n),
		inq:      make([]*FIFO[XbarMsg[T]], n),
		arbs:     make([]*Arbiter, n),
		Accepted: make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		x.In[i] = connections.NewIn[XbarMsg[T]]()
		x.Out[i] = connections.NewOut[T]()
		x.inq[i] = NewFIFO[XbarMsg[T]](qdepth)
		x.arbs[i] = NewArbiter(n)
	}
	clk.Spawn(name+".xbar", func(th *sim.Thread) { x.run(th, n) })
	return x
}

func (x *ArbitratedCrossbar[T]) run(th *sim.Thread, n int) {
	for {
		// Accept one message per input port into its queue.
		for i := 0; i < n; i++ {
			if x.inq[i].Full() {
				continue
			}
			if m, ok := x.In[i].PopNB(th); ok {
				if m.Dst < 0 || m.Dst >= n {
					panic(fmt.Sprintf("matchlib: crossbar destination %d out of range", m.Dst))
				}
				x.inq[i].Push(m)
			}
		}
		// Build per-output request masks from queue heads.
		var reqs [64]uint64
		for i := 0; i < n; i++ {
			if !x.inq[i].Empty() {
				reqs[x.inq[i].Peek().Dst] |= 1 << uint(i)
			}
		}
		// Arbitrate and push one grant per output.
		for j := 0; j < n; j++ {
			if reqs[j] == 0 {
				continue
			}
			// Hold arbitration state stable if the output is blocked.
			if x.Out[j].Full() {
				continue
			}
			i := x.arbs[j].Pick(reqs[j])
			if i < 0 {
				continue
			}
			if x.Out[j].PushNB(th, x.inq[i].Peek().Data) {
				x.inq[i].Pop()
				x.Accepted[j]++
			}
		}
		th.Wait()
	}
}

// TotalAccepted returns transfers delivered across all outputs.
func (x *ArbitratedCrossbar[T]) TotalAccepted() uint64 {
	var t uint64
	for _, a := range x.Accepted {
		t += a
	}
	return t
}
