package float

import (
	"math"
	"math/rand"
	"testing"
)

// f32 computes the reference result using Go's native float32 arithmetic,
// which is correctly rounded IEEE-754 binary32.
func f32op(op string, a, b uint64) uint64 {
	x := math.Float32frombits(uint32(a))
	y := math.Float32frombits(uint32(b))
	var z float32
	switch op {
	case "mul":
		z = x * y
	case "add":
		z = x + y
	case "sub":
		z = x - y
	}
	return uint64(math.Float32bits(z))
}

func check32(t *testing.T, op string, a, b uint64) {
	t.Helper()
	var got uint64
	switch op {
	case "mul":
		got = Binary32.Mul(a, b)
	case "add":
		got = Binary32.Add(a, b)
	case "sub":
		got = Binary32.Sub(a, b)
	}
	want := f32op(op, a, b)
	if Binary32.IsNaN(want) {
		if !Binary32.IsNaN(got) {
			t.Fatalf("%s(%#08x, %#08x) = %#08x, want NaN", op, a, b, got)
		}
		return
	}
	if got != want {
		t.Fatalf("%s(%#08x, %#08x) = %#08x, want %#08x (%g op %g)",
			op, a, b, got, want,
			float64(math.Float32frombits(uint32(a))), float64(math.Float32frombits(uint32(b))))
	}
}

// interesting32 are directed operand patterns: zeros, subnormals, normals
// around boundaries, max finite, infinities, NaNs.
var interesting32 = []uint64{
	0x00000000, 0x80000000, // ±0
	0x00000001, 0x80000001, // smallest subnormals
	0x007fffff, 0x807fffff, // largest subnormals
	0x00800000, 0x80800000, // smallest normals
	0x00800001, 0x34000000,
	0x3f800000, 0xbf800000, // ±1
	0x3f800001, 0x3effffff,
	0x7f7fffff, 0xff7fffff, // ±max finite
	0x7f800000, 0xff800000, // ±inf
	0x7fc00000, 0x7f800001, // NaNs
	0x40490fdb, 0x3eaaaaab,
}

func TestBinary32DirectedVectors(t *testing.T) {
	for _, a := range interesting32 {
		for _, b := range interesting32 {
			check32(t, "mul", a, b)
			check32(t, "add", a, b)
			check32(t, "sub", a, b)
		}
	}
}

func TestBinary32RandomAgainstNative(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	for i := 0; i < 300_000; i++ {
		a := uint64(r.Uint32())
		b := uint64(r.Uint32())
		check32(t, "mul", a, b)
		check32(t, "add", a, b)
	}
}

func TestBinary32RandomNearOperands(t *testing.T) {
	// Operands with close exponents stress cancellation and rounding.
	r := rand.New(rand.NewSource(52))
	for i := 0; i < 200_000; i++ {
		exp := uint64(1 + r.Intn(250))
		a := r.Uint64()&0x807fffff | exp<<23
		b := r.Uint64()&0x807fffff | (exp+uint64(r.Intn(3)))<<23
		check32(t, "add", a, b)
		check32(t, "sub", a, b)
	}
}

func TestBinary32Subnormals(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	for i := 0; i < 100_000; i++ {
		a := r.Uint64() & 0x807fffff // subnormal or zero
		b := r.Uint64() & 0x80ffffff // subnormal or tiny normal
		check32(t, "add", a, b)
		check32(t, "mul", a, b|0x3f000000) // tiny times moderate
	}
}

func TestBinary16RoundTripAllValues(t *testing.T) {
	for bits := uint64(0); bits < 1<<16; bits++ {
		x := Binary16.ToFloat64(bits)
		back := Binary16.FromFloat64(x)
		if Binary16.IsNaN(bits) {
			if !Binary16.IsNaN(back) {
				t.Fatalf("NaN %#04x did not round trip", bits)
			}
			continue
		}
		if back != bits {
			t.Fatalf("%#04x (%g) round tripped to %#04x", bits, x, back)
		}
	}
}

// Binary16 ops are verified against exact float64 computation followed by
// a single rounding: for half precision, products and sums are exactly
// representable in float64, so this reference is correctly rounded.
func TestBinary16AgainstFloat64Reference(t *testing.T) {
	r := rand.New(rand.NewSource(54))
	for i := 0; i < 400_000; i++ {
		a := r.Uint64() & 0xffff
		b := r.Uint64() & 0xffff
		fa, fb := Binary16.ToFloat64(a), Binary16.ToFloat64(b)

		for _, c := range []struct {
			name string
			got  uint64
			ref  float64
		}{
			{"mul", Binary16.Mul(a, b), fa * fb},
			{"add", Binary16.Add(a, b), fa + fb},
		} {
			want := Binary16.FromFloat64(c.ref)
			if Binary16.IsNaN(want) || Binary16.IsNaN(c.got) {
				if Binary16.IsNaN(want) != Binary16.IsNaN(c.got) {
					t.Fatalf("%s(%#04x,%#04x) NaN mismatch: got %#04x want %#04x", c.name, a, b, c.got, want)
				}
				continue
			}
			if c.got != want {
				t.Fatalf("%s(%#04x,%#04x) = %#04x, want %#04x (%g op %g = %g)",
					c.name, a, b, c.got, want, fa, fb, c.ref)
			}
		}
	}
}

func TestMulAddUnfusedSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for i := 0; i < 50_000; i++ {
		a, b, c := uint64(r.Uint32()), uint64(r.Uint32()), uint64(r.Uint32())
		got := Binary32.MulAdd(a, b, c)
		want := Binary32.Add(Binary32.Mul(a, b), c)
		if got != want {
			t.Fatalf("MulAdd(%#x,%#x,%#x) = %#x, want unfused %#x", a, b, c, got, want)
		}
	}
}

func TestSpecialValues(t *testing.T) {
	f := Binary32
	inf, ninf := f.Inf(0), f.Inf(1)
	one := uint64(0x3f800000)
	zero, nzero := uint64(0), uint64(0x80000000)

	if !f.IsNaN(f.Mul(inf, zero)) {
		t.Error("inf*0 not NaN")
	}
	if !f.IsNaN(f.Add(inf, ninf)) {
		t.Error("inf + -inf not NaN")
	}
	if got := f.Add(inf, one); got != inf {
		t.Errorf("inf+1 = %#x", got)
	}
	if got := f.Mul(ninf, one); got != ninf {
		t.Errorf("-inf*1 = %#x", got)
	}
	if got := f.Add(zero, nzero); got != zero {
		t.Errorf("+0 + -0 = %#x, want +0", got)
	}
	if got := f.Add(nzero, nzero); got != nzero {
		t.Errorf("-0 + -0 = %#x, want -0", got)
	}
	if got := f.Mul(one, nzero); got != nzero {
		t.Errorf("1 * -0 = %#x, want -0", got)
	}
	if !f.IsInf(f.Mul(0x7f7fffff, 0x7f7fffff)) {
		t.Error("max*max did not overflow to inf")
	}
	if !f.IsNaN(f.QuietNaN()) || f.IsInf(f.QuietNaN()) {
		t.Error("QuietNaN classification")
	}
}

func TestWidth(t *testing.T) {
	if Binary16.Width() != 16 || Binary32.Width() != 32 {
		t.Fatal("widths wrong")
	}
}

func BenchmarkMul32(b *testing.B) {
	r := rand.New(rand.NewSource(56))
	x, y := uint64(r.Uint32()), uint64(r.Uint32())
	for i := 0; i < b.N; i++ {
		x = Binary32.Mul(x, y)&0x7fffff | 0x3f000000
	}
}

func BenchmarkAdd16(b *testing.B) {
	r := rand.New(rand.NewSource(57))
	x, y := r.Uint64()&0xffff, r.Uint64()&0xffff
	for i := 0; i < b.N; i++ {
		x = Binary16.Add(x, y) & 0x7fff
	}
}
