// Package float provides the MatchLib floating-point arithmetic functions
// (mul, add, mul-add) as bit-level soft-float implementations of IEEE-754
// binary16 and binary32. These are the datapath functions the PE vector
// unit and the HLS QoR experiments use; implementing them from integer
// operations mirrors how the hardware library describes them to HLS.
//
// Rounding is round-to-nearest-even. Subnormals, infinities and NaNs are
// handled; all NaN results are quieted to the canonical quiet NaN of the
// format. MulAdd is the unfused multiply-then-add datapath (two rounding
// steps), matching the MatchLib component it reproduces.
package float

import (
	"fmt"
	"math"
)

// Format describes a binary interchange format.
type Format struct {
	ExpBits  int
	FracBits int
}

// Binary16 is IEEE-754 half precision.
var Binary16 = Format{ExpBits: 5, FracBits: 10}

// Binary32 is IEEE-754 single precision.
var Binary32 = Format{ExpBits: 8, FracBits: 23}

// Width returns the total storage width in bits.
func (f Format) Width() int { return 1 + f.ExpBits + f.FracBits }

func (f Format) bias() int        { return (1 << (f.ExpBits - 1)) - 1 }
func (f Format) expMax() uint64   { return 1<<uint(f.ExpBits) - 1 }
func (f Format) fracMask() uint64 { return 1<<uint(f.FracBits) - 1 }

// QuietNaN returns the canonical quiet NaN bit pattern.
func (f Format) QuietNaN() uint64 {
	return f.expMax()<<uint(f.FracBits) | 1<<uint(f.FracBits-1)
}

// Inf returns the infinity bit pattern with the given sign (0 or 1).
func (f Format) Inf(sign uint64) uint64 {
	return sign<<uint(f.ExpBits+f.FracBits) | f.expMax()<<uint(f.FracBits)
}

// IsNaN reports whether bits encodes a NaN.
func (f Format) IsNaN(bits uint64) bool {
	_, e, m := f.unpack(bits)
	return e == f.expMax() && m != 0
}

// IsInf reports whether bits encodes an infinity.
func (f Format) IsInf(bits uint64) bool {
	_, e, m := f.unpack(bits)
	return e == f.expMax() && m == 0
}

func (f Format) unpack(bits uint64) (sign, exp, frac uint64) {
	sign = bits >> uint(f.ExpBits+f.FracBits) & 1
	exp = bits >> uint(f.FracBits) & f.expMax()
	frac = bits & f.fracMask()
	return
}

// norm returns the normalized significand (with hidden bit at position
// FracBits) and unbiased exponent, for finite nonzero inputs.
func (f Format) norm(exp, frac uint64) (sig uint64, e int) {
	if exp == 0 {
		// Subnormal: normalize by shifting the fraction up.
		e = 1 - f.bias()
		sig = frac
		for sig>>uint(f.FracBits) == 0 {
			sig <<= 1
			e--
		}
		return sig, e
	}
	return frac | 1<<uint(f.FracBits), int(exp) - f.bias()
}

// roundPack assembles a finite result from sign, unbiased exponent e, and
// a significand sig whose leading 1 is at bit position msb (sig != 0);
// the encoded value is (-1)^sign · 2^e · sig/2^msb. Rounding is to
// nearest, ties to even; overflow returns infinity and deep underflow
// returns signed zero.
func (f Format) roundPack(sign uint64, e int, sig uint64, msb int) uint64 {
	// Normalize so the hidden bit sits at position FracBits+2, keeping
	// guard and round bits below it; collect sticky from shifted-out
	// bits. Shifting sig against msb leaves the encoded value unchanged,
	// so e is untouched here.
	target := f.FracBits + 2
	sticky := uint64(0)
	for msb > target {
		sticky |= sig & 1
		sig >>= 1
		msb--
	}
	for msb < target {
		sig <<= 1
		msb++
	}
	// sig now has FracBits+3 significant bits: mantissa | guard | round.
	// Fold guard+round+sticky into RNE.
	biased := e + f.bias()
	if biased >= int(f.expMax()) {
		return f.Inf(sign)
	}
	if biased < 1 {
		// Subnormal: shift right further, keeping sticky.
		shift := 1 - biased
		if shift > 63 {
			sig, sticky = 0, sticky|sig
		} else {
			sticky |= sig & (1<<uint(shift) - 1)
			sig >>= uint(shift)
		}
		biased = 0
	}
	mant := sig >> 2
	guard := sig >> 1 & 1
	round := sig & 1
	if guard == 1 && (round == 1 || sticky != 0 || mant&1 == 1) {
		mant++
		if mant>>uint(f.FracBits+1) != 0 {
			mant >>= 1
			biased++
			if biased >= int(f.expMax()) {
				return f.Inf(sign)
			}
		}
	}
	if biased == 0 {
		// Result stayed subnormal (or rounded up into the smallest
		// normal, in which case the hidden bit is already in mant).
		if mant>>uint(f.FracBits) != 0 {
			biased = 1
			mant &= f.fracMask()
		}
		return sign<<uint(f.ExpBits+f.FracBits) | uint64(biased)<<uint(f.FracBits) | mant
	}
	if mant>>uint(f.FracBits) == 0 {
		panic(fmt.Sprintf("float: lost hidden bit (exp=%d mant=%#x)", biased, mant))
	}
	return sign<<uint(f.ExpBits+f.FracBits) | uint64(biased)<<uint(f.FracBits) | mant&f.fracMask()
}

func msb64(x uint64) int {
	n := -1
	for x != 0 {
		x >>= 1
		n++
	}
	return n
}

// Mul returns a*b in the format, rounding to nearest even.
func (f Format) Mul(a, b uint64) uint64 {
	sa, ea, ma := f.unpack(a)
	sb, eb, mb := f.unpack(b)
	sign := sa ^ sb
	switch {
	case ea == f.expMax() && ma != 0, eb == f.expMax() && mb != 0:
		return f.QuietNaN()
	case ea == f.expMax():
		if eb == 0 && mb == 0 {
			return f.QuietNaN() // inf * 0
		}
		return f.Inf(sign)
	case eb == f.expMax():
		if ea == 0 && ma == 0 {
			return f.QuietNaN()
		}
		return f.Inf(sign)
	case (ea == 0 && ma == 0) || (eb == 0 && mb == 0):
		return sign << uint(f.ExpBits+f.FracBits) // signed zero
	}
	siga, expa := f.norm(ea, ma)
	sigb, expb := f.norm(eb, mb)
	prod := siga * sigb // ≤ (2^(F+1))² fits in uint64 for F ≤ 23
	e := expa + expb
	// prod's leading 1 is at 2F or 2F+1; exponent reference point: a
	// product of two 1.x significands is valued prod / 2^(2F).
	msb := msb64(prod)
	e += msb - 2*f.FracBits
	return f.roundPack(sign, e, prod, msb)
}

// Add returns a+b in the format, rounding to nearest even.
func (f Format) Add(a, b uint64) uint64 {
	sa, ea, ma := f.unpack(a)
	sb, eb, mb := f.unpack(b)
	switch {
	case ea == f.expMax() && ma != 0, eb == f.expMax() && mb != 0:
		return f.QuietNaN()
	case ea == f.expMax() && eb == f.expMax():
		if sa != sb {
			return f.QuietNaN() // inf - inf
		}
		return f.Inf(sa)
	case ea == f.expMax():
		return f.Inf(sa)
	case eb == f.expMax():
		return f.Inf(sb)
	}
	azero := ea == 0 && ma == 0
	bzero := eb == 0 && mb == 0
	if azero && bzero {
		// +0 + -0 = +0; -0 + -0 = -0.
		return (sa & sb) << uint(f.ExpBits+f.FracBits)
	}
	if azero {
		return b
	}
	if bzero {
		return a
	}
	siga, expa := f.norm(ea, ma)
	sigb, expb := f.norm(eb, mb)
	// Give both operands 3 extra low bits (guard/round/sticky workspace).
	const g = 3
	siga <<= g
	sigb <<= g
	// Align to the larger exponent, folding shifted-out bits into sticky.
	if expa < expb {
		siga, sigb = sigb, siga
		expa, expb = expb, expa
		sa, sb = sb, sa
	}
	shift := expa - expb
	if shift > 0 {
		if shift >= 63 {
			if sigb != 0 {
				sigb = 1 // pure sticky
			}
		} else {
			sticky := uint64(0)
			if sigb&(1<<uint(shift)-1) != 0 {
				sticky = 1
			}
			sigb = sigb>>uint(shift) | sticky
		}
	}
	var sig uint64
	sign := sa
	if sa == sb {
		sig = siga + sigb
	} else {
		if siga >= sigb {
			sig = siga - sigb
		} else {
			sig = sigb - siga
			sign = sb
		}
		if sig == 0 {
			return 0 // exact cancellation → +0 (RNE)
		}
	}
	msb := msb64(sig)
	e := expa + (msb - (f.FracBits + g))
	return f.roundPack(sign, e, sig, msb)
}

// Sub returns a-b.
func (f Format) Sub(a, b uint64) uint64 {
	return f.Add(a, b^1<<uint(f.ExpBits+f.FracBits))
}

// MulAdd returns (a*b)+c with two rounding steps — the unfused MatchLib
// mul-add datapath.
func (f Format) MulAdd(a, b, c uint64) uint64 {
	return f.Add(f.Mul(a, b), c)
}

// ToFloat64 decodes a bit pattern to float64 (exact for formats up to
// binary32).
func (f Format) ToFloat64(bits uint64) float64 {
	sign, exp, frac := f.unpack(bits)
	s := 1.0
	if sign == 1 {
		s = -1.0
	}
	switch {
	case exp == f.expMax() && frac != 0:
		return math.NaN()
	case exp == f.expMax():
		return math.Inf(int(1 - 2*int(sign)))
	case exp == 0 && frac == 0:
		return s * 0.0
	case exp == 0:
		return s * math.Ldexp(float64(frac), 1-f.bias()-f.FracBits)
	}
	return s * math.Ldexp(float64(frac|1<<uint(f.FracBits)), int(exp)-f.bias()-f.FracBits)
}

// FromFloat64 encodes x with round-to-nearest-even.
func (f Format) FromFloat64(x float64) uint64 {
	b64 := math.Float64bits(x)
	sign := b64 >> 63
	exp := int(b64 >> 52 & 0x7ff)
	frac := b64 & (1<<52 - 1)
	switch {
	case exp == 0x7ff && frac != 0:
		return f.QuietNaN()
	case exp == 0x7ff:
		return f.Inf(sign)
	case exp == 0 && frac == 0:
		return sign << uint(f.ExpBits+f.FracBits)
	}
	sig := frac | 1<<52
	e := exp - 1023
	if exp == 0 { // subnormal float64
		sig = frac
		e = -1022
		for sig>>52 == 0 {
			sig <<= 1
			e--
		}
	}
	return f.roundPack(sign, e, sig, 52)
}
