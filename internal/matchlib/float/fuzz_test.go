package float

import (
	"math"
	"testing"
)

// FuzzBinary32VsNative cross-checks the soft-float against Go's hardware
// IEEE arithmetic on fuzzer-chosen bit patterns.
func FuzzBinary32VsNative(f *testing.F) {
	f.Add(uint32(0x3f800000), uint32(0x40000000))
	f.Add(uint32(0x00000001), uint32(0x807fffff)) // subnormals
	f.Add(uint32(0x7f800000), uint32(0xff800000)) // infinities
	f.Add(uint32(0x7fc00000), uint32(0x00000000)) // NaN, zero
	f.Add(uint32(0x7f7fffff), uint32(0x7f7fffff)) // max finite
	f.Fuzz(func(t *testing.T, a, b uint32) {
		check := func(got uint64, ref float32) {
			want := uint64(math.Float32bits(ref))
			if Binary32.IsNaN(want) {
				if !Binary32.IsNaN(got) {
					t.Fatalf("a=%#x b=%#x: got %#x, want NaN", a, b, got)
				}
				return
			}
			if got != want {
				t.Fatalf("a=%#x b=%#x: got %#x, want %#x", a, b, got, want)
			}
		}
		fa, fb := math.Float32frombits(a), math.Float32frombits(b)
		check(Binary32.Mul(uint64(a), uint64(b)), fa*fb)
		check(Binary32.Add(uint64(a), uint64(b)), fa+fb)
		check(Binary32.Sub(uint64(a), uint64(b)), fa-fb)
	})
}

// FuzzBinary16TotalFunction checks that every half-precision op is total:
// any 16-bit patterns produce a valid 16-bit result (no panic, no bits
// above the format width).
func FuzzBinary16TotalFunction(f *testing.F) {
	f.Add(uint16(0x3c00), uint16(0xfbff))
	f.Add(uint16(0x0001), uint16(0x83ff))
	f.Fuzz(func(t *testing.T, a, b uint16) {
		for _, r := range []uint64{
			Binary16.Mul(uint64(a), uint64(b)),
			Binary16.Add(uint64(a), uint64(b)),
			Binary16.MulAdd(uint64(a), uint64(b), uint64(a)),
		} {
			if r>>16 != 0 {
				t.Fatalf("result %#x exceeds 16 bits", r)
			}
		}
	})
}
