package matchlib

import "fmt"

// CrossbarDstLoop routes in[src[dst]] to out[dst] for every output — the
// dst-loop coding from the paper's §2.4 case study, which HLS maps to one
// simple select mux per output. src[dst] is the input index each output
// reads from. The returned slice has len(src) elements.
func CrossbarDstLoop[T any](in []T, src []int) []T {
	out := make([]T, len(src))
	for dst := 0; dst < len(src); dst++ {
		s := src[dst]
		if s < 0 || s >= len(in) {
			panic(fmt.Sprintf("matchlib: crossbar source %d out of range [0,%d)", s, len(in)))
		}
		out[dst] = in[s]
	}
	return out
}

// CrossbarSrcLoop routes in[src] to out[dst[src]] for every input — the
// src-loop coding from the paper, which HLS maps to priority-mux chains
// (later sources override earlier ones on destination conflicts). Outputs
// with no source keep the zero value. The returned slice has n elements.
func CrossbarSrcLoop[T any](in []T, dst []int, n int) []T {
	if len(dst) != len(in) {
		panic(fmt.Sprintf("matchlib: crossbar dst length %d != inputs %d", len(dst), len(in)))
	}
	out := make([]T, n)
	for src := 0; src < len(in); src++ {
		d := dst[src]
		if d < 0 || d >= n {
			panic(fmt.Sprintf("matchlib: crossbar destination %d out of range [0,%d)", d, n))
		}
		out[d] = in[src]
	}
	return out
}

// Permute applies CrossbarDstLoop with a full permutation and checks that
// src is in fact a permutation.
func Permute[T any](in []T, src []int) []T {
	if len(src) != len(in) {
		panic("matchlib: permutation length mismatch")
	}
	seen := make([]bool, len(in))
	for _, s := range src {
		if s < 0 || s >= len(in) || seen[s] {
			panic("matchlib: src is not a permutation")
		}
		seen[s] = true
	}
	return CrossbarDstLoop(in, src)
}
