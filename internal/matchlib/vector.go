package matchlib

import "fmt"

// Number constrains the element types the Vector helpers operate on.
type Number interface {
	~int8 | ~int16 | ~int32 | ~int64 | ~uint8 | ~uint16 | ~uint32 | ~uint64 |
		~float32 | ~float64
}

// Vector is the helper container with elementwise vector operations used
// to describe PE datapaths. All binary operations require equal lengths.
type Vector[T Number] []T

// NewVector returns a zero vector of length n.
func NewVector[T Number](n int) Vector[T] { return make(Vector[T], n) }

func (v Vector[T]) checkSame(w Vector[T], op string) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("matchlib: vector %s length mismatch %d vs %d", op, len(v), len(w)))
	}
}

// Add returns v + w elementwise.
func (v Vector[T]) Add(w Vector[T]) Vector[T] {
	v.checkSame(w, "Add")
	out := make(Vector[T], len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w elementwise.
func (v Vector[T]) Sub(w Vector[T]) Vector[T] {
	v.checkSame(w, "Sub")
	out := make(Vector[T], len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// Mul returns v * w elementwise.
func (v Vector[T]) Mul(w Vector[T]) Vector[T] {
	v.checkSame(w, "Mul")
	out := make(Vector[T], len(v))
	for i := range v {
		out[i] = v[i] * w[i]
	}
	return out
}

// Mac returns acc + v*w elementwise (multiply-accumulate).
func (v Vector[T]) Mac(w, acc Vector[T]) Vector[T] {
	v.checkSame(w, "Mac")
	v.checkSame(acc, "Mac")
	out := make(Vector[T], len(v))
	for i := range v {
		out[i] = acc[i] + v[i]*w[i]
	}
	return out
}

// Scale returns v * k.
func (v Vector[T]) Scale(k T) Vector[T] {
	out := make(Vector[T], len(v))
	for i := range v {
		out[i] = v[i] * k
	}
	return out
}

// Reduce returns the sum of all elements (tree reduction in hardware).
func (v Vector[T]) Reduce() T {
	var acc T
	for _, x := range v {
		acc += x
	}
	return acc
}

// Dot returns the dot product of v and w.
func (v Vector[T]) Dot(w Vector[T]) T {
	v.checkSame(w, "Dot")
	var acc T
	for i := range v {
		acc += v[i] * w[i]
	}
	return acc
}

// Max returns the maximum element. It panics on an empty vector.
func (v Vector[T]) Max() T {
	if len(v) == 0 {
		panic("matchlib: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest element (first on ties). It
// panics on an empty vector. K-means assignment uses this.
func (v Vector[T]) ArgMin() int {
	if len(v) == 0 {
		panic("matchlib: ArgMin of empty vector")
	}
	best := 0
	for i := 1; i < len(v); i++ {
		if v[i] < v[best] {
			best = i
		}
	}
	return best
}
