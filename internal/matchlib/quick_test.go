package matchlib

import (
	"testing"
	"testing/quick"
)

// quick.Check-driven invariants over the untimed component classes.

func TestQuickArbiterGrantsSubset(t *testing.T) {
	a := NewArbiter(64)
	if err := quick.Check(func(req uint64) bool {
		g := a.Pick(req)
		if req == 0 {
			return g == -1
		}
		return g >= 0 && g < 64 && req&(1<<uint(g)) != 0
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickOneHotInverse(t *testing.T) {
	if err := quick.Check(func(raw uint8) bool {
		idx := int(raw % 64)
		m := OneHotEncode(idx, 64)
		back, ok := OneHotDecode(m)
		return ok && back == idx
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickFIFOOrdering(t *testing.T) {
	if err := quick.Check(func(vals []int) bool {
		if len(vals) == 0 {
			return true
		}
		f := NewFIFO[int](len(vals))
		for _, v := range vals {
			f.Push(v)
		}
		for _, v := range vals {
			if f.Pop() != v {
				return false
			}
		}
		return f.Empty()
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickReorderBufferFIFOWhenInOrder(t *testing.T) {
	// Writing tags in allocation order degenerates to a FIFO.
	if err := quick.Check(func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		r := NewReorderBuffer[uint32](len(vals))
		tags := make([]Tag, len(vals))
		for i := range vals {
			tags[i] = r.Allocate()
		}
		for i, v := range vals {
			r.Write(tags[i], v)
		}
		for _, v := range vals {
			if !r.CanPop() || r.Pop() != v {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickCrossbarIsPermutationAction(t *testing.T) {
	// Routing by the identity yields the input; routing twice by a
	// permutation and its inverse is the identity.
	if err := quick.Check(func(data []uint16, rot uint8) bool {
		n := len(data)
		if n == 0 {
			return true
		}
		k := int(rot) % n
		perm := make([]int, n) // src[dst] = (dst+k) mod n: a rotation
		inv := make([]int, n)
		for d := 0; d < n; d++ {
			perm[d] = (d + k) % n
			inv[(d+k)%n] = d
		}
		rotated := CrossbarDstLoop(data, perm)
		back := CrossbarDstLoop(rotated, inv)
		for i := range data {
			if back[i] != data[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickVectorAlgebra(t *testing.T) {
	if err := quick.Check(func(xs, ys []int32) bool {
		n := min2(len(xs), len(ys))
		a, b := Vector[int32](xs[:n]), Vector[int32](ys[:n])
		// Commutativity and Mac identity: mac(a,b,0) == mul(a,b).
		ab, ba := a.Add(b), b.Add(a)
		mac := a.Mac(b, NewVector[int32](n))
		mul := a.Mul(b)
		for i := 0; i < n; i++ {
			if ab[i] != ba[i] || mac[i] != mul[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}
