package matchlib

import (
	"math/rand"
	"testing"

	"repro/internal/connections"
	"repro/internal/sim"
)

// cacheTB wires a cache to a SimpleMemory and returns a function that
// executes a request program, checking read data against a flat model.
func cacheTB(t *testing.T, capWords, lineWords, ways, memLatency int, program []CacheReq) (*Cache, CacheStats) {
	t.Helper()
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	const memWords = 1024
	c := NewCache(clk, "c", capWords, lineWords, ways)
	m := NewSimpleMemory(clk, "m", memWords, lineWords, memLatency)
	connections.Buffer(clk, "memq", 2, c.MemQ, m.Req)
	connections.Buffer(clk, "memp", 2, m.Rsp, c.MemP)

	reqOut := connections.NewOut[CacheReq]()
	rspIn := connections.NewIn[CacheResp]()
	connections.Buffer(clk, "req", 2, reqOut, c.Req)
	connections.Buffer(clk, "rsp", 2, c.Rsp, rspIn)

	model := make([]uint64, memWords)
	clk.Spawn("driver", func(th *sim.Thread) {
		for k, req := range program {
			reqOut.Push(th, req)
			rsp := rspIn.Pop(th)
			if req.Write {
				model[req.Addr] = req.Data
			} else if rsp.Data != model[req.Addr] {
				t.Errorf("req %d: read addr %d = %d, want %d", k, req.Addr, rsp.Data, model[req.Addr])
			}
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return c, c.Stats()
}

func TestCacheReadAfterWrite(t *testing.T) {
	prog := []CacheReq{
		{Write: true, Addr: 5, Data: 55},
		{Addr: 5},
		{Write: true, Addr: 5, Data: 66},
		{Addr: 5},
	}
	_, st := cacheTB(t, 64, 4, 2, 3, prog)
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("hits=%d misses=%d, want 3/1", st.Hits, st.Misses)
	}
}

func TestCacheEvictionAndWriteback(t *testing.T) {
	// Direct-mapped, 2 lines of 4 words => addresses 0 and 8 collide in
	// set 0 (line addr 0 -> set 0, line addr 8/4=2 -> set 0 with 2 sets).
	prog := []CacheReq{
		{Write: true, Addr: 0, Data: 1}, // miss, fill, dirty
		{Write: true, Addr: 8, Data: 2}, // miss, evict dirty line 0 (writeback)
		{Addr: 0},                       // miss again, must read back 1
		{Addr: 8},                       // miss (evicted by previous), reads 2
	}
	_, st := cacheTB(t, 8, 4, 1, 2, prog)
	if st.Writebacks == 0 {
		t.Fatalf("no writebacks recorded: %+v", st)
	}
	if st.Misses != 4 {
		t.Fatalf("misses = %d, want 4", st.Misses)
	}
}

func TestCacheLRUKeepsHotLine(t *testing.T) {
	// 2-way set with 2 sets, line 4 words: lines 0, 16, 32 map to set 0.
	prog := []CacheReq{
		{Addr: 0},  // fill way A
		{Addr: 16}, // fill way B
		{Addr: 0},  // touch A (B becomes LRU)
		{Addr: 32}, // evict B
		{Addr: 0},  // must still hit
	}
	_, st := cacheTB(t, 16, 4, 2, 2, prog)
	if st.Hits != 2 {
		t.Fatalf("hits = %d, want 2 (touch + post-eviction hit)", st.Hits)
	}
}

// Property: random request streams against a flat-memory model, across
// cache geometries. The in-test model check fails the test on mismatch.
func TestCacheRandomProperty(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	geoms := []struct{ capW, lineW, ways int }{
		{32, 4, 1}, {64, 4, 2}, {64, 8, 2}, {128, 4, 4}, {64, 16, 1},
	}
	for _, g := range geoms {
		var prog []CacheReq
		for k := 0; k < 400; k++ {
			addr := r.Intn(256)
			if r.Intn(2) == 0 {
				prog = append(prog, CacheReq{Write: true, Addr: addr, Data: r.Uint64()})
			} else {
				prog = append(prog, CacheReq{Addr: addr})
			}
		}
		_, st := cacheTB(t, g.capW, g.lineW, g.ways, 1+r.Intn(4), prog)
		if st.Hits+st.Misses != 400 {
			t.Fatalf("geometry %+v: %d+%d accesses, want 400", g, st.Hits, st.Misses)
		}
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad geometry")
		}
	}()
	NewCache(clk, "bad", 4, 8, 1) // capacity < one line
}

func TestSimpleMemoryLatency(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	m := NewSimpleMemory(clk, "m", 64, 4, 10)
	reqOut := connections.NewOut[MemReq]()
	rspIn := connections.NewIn[MemResp]()
	connections.Buffer(clk, "q", 2, reqOut, m.Req)
	connections.Buffer(clk, "p", 2, m.Rsp, rspIn)
	var elapsed uint64
	clk.Spawn("drv", func(th *sim.Thread) {
		start := th.Cycle()
		reqOut.Push(th, MemReq{LineAddr: 0})
		rspIn.Pop(th)
		elapsed = th.Cycle() - start
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	if elapsed < 10 {
		t.Fatalf("memory answered in %d cycles, want >= 10", elapsed)
	}
}
