package exp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/stats"
)

// simJobs builds n jobs that each derive a value purely from their seed.
func simJobs(n int) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		jobs[i] = Job{
			Name: fmt.Sprintf("job[%d]", i),
			Run: func(c *Ctx) (any, error) {
				r := rand.New(rand.NewSource(c.Seed))
				sum := 0
				for k := 0; k < 1000; k++ {
					sum += r.Intn(1000)
				}
				return sum, nil
			},
		}
	}
	return jobs
}

func values(s *Summary) []any {
	out := make([]any, len(s.Results))
	for i, r := range s.Results {
		out[i] = r.Value
	}
	return out
}

func TestDeriveSeedMatchesWithStallScheme(t *testing.T) {
	h := fnv.New64a()
	h.Write([]byte("soc/pe[3]/inject"))
	want := int64(12345) ^ int64(h.Sum64())
	if got := DeriveSeed(12345, "soc/pe[3]/inject"); got != want {
		t.Fatalf("DeriveSeed = %d, want %d (FNV-1a of name XOR campaign seed)", got, want)
	}
	if DeriveSeed(1, "a") == DeriveSeed(1, "b") {
		t.Fatal("distinct names derived the same seed")
	}
	if DeriveSeed(1, "a") == DeriveSeed(2, "a") {
		t.Fatal("distinct campaign seeds derived the same job seed")
	}
}

// The core determinism contract: results are bit-identical across
// parallelism levels and repeated runs, in submission order.
func TestParallelismInvariance(t *testing.T) {
	jobs := simJobs(16)
	seq := Run(jobs, Seed(7), Parallel(1))
	for _, par := range []int{2, 8, 16, 64} {
		p := Run(jobs, Seed(7), Parallel(par))
		for i := range seq.Results {
			if p.Results[i].Value != seq.Results[i].Value {
				t.Fatalf("parallel=%d job %d = %v, sequential = %v", par, i, p.Results[i].Value, seq.Results[i].Value)
			}
			if p.Results[i].Seed != seq.Results[i].Seed {
				t.Fatalf("parallel=%d job %d seed %d != sequential %d", par, i, p.Results[i].Seed, seq.Results[i].Seed)
			}
			if p.Results[i].Name != jobs[i].Name {
				t.Fatalf("result %d out of submission order: %q", i, p.Results[i].Name)
			}
		}
	}
	again := Run(jobs, Seed(7), Parallel(8))
	for i := range seq.Results {
		if again.Results[i].Value != seq.Results[i].Value {
			t.Fatalf("repeated run diverged at job %d", i)
		}
	}
	// A different campaign seed must change the derived streams.
	other := Run(jobs, Seed(8), Parallel(8))
	same := 0
	for i := range seq.Results {
		if other.Results[i].Value == seq.Results[i].Value {
			same++
		}
	}
	if same == len(seq.Results) {
		t.Fatal("campaign seed had no effect on any job")
	}
}

// One panicking job must degrade to a reported failure without taking
// down the campaign or its neighbours.
func TestPanicIsolation(t *testing.T) {
	jobs := simJobs(6)
	jobs[3] = Job{Name: "job[3]", Run: func(c *Ctx) (any, error) {
		panic("diverging simulation")
	}}
	s := Run(jobs, Seed(1), Parallel(4))
	if s.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", s.Failed)
	}
	r := s.Results[3]
	if !r.Panicked || r.Err == nil || !strings.Contains(r.Err.Error(), "diverging simulation") {
		t.Fatalf("panicking job result = %+v", r)
	}
	for i, r := range s.Results {
		if i != 3 && r.Failed() {
			t.Fatalf("healthy job %d failed: %v", i, r.Err)
		}
	}
	if err := s.Err(); err == nil || !strings.Contains(err.Error(), "job[3]") {
		t.Fatalf("Summary.Err = %v, want job[3] panic", err)
	}
	if f := s.Failures(); len(f) != 1 || f[0].Name != "job[3]" {
		t.Fatalf("Failures = %v", f)
	}
}

func TestJobErrorReported(t *testing.T) {
	boom := errors.New("boom")
	s := Run([]Job{
		{Name: "ok", Run: func(c *Ctx) (any, error) { return 1, nil }},
		{Name: "bad", Run: func(c *Ctx) (any, error) { return nil, boom }},
	}, Parallel(2))
	if s.Failed != 1 || !errors.Is(s.Results[1].Err, boom) {
		t.Fatalf("summary %+v", s)
	}
	if s.Results[1].Panicked {
		t.Fatal("plain error marked as panic")
	}
}

func TestTimeoutFencesStuckJob(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := Run([]Job{
		{Name: "stuck", Run: func(c *Ctx) (any, error) { <-release; return nil, nil }},
		{Name: "quick", Run: func(c *Ctx) (any, error) { return 42, nil }},
	}, Parallel(2), Timeout(50*time.Millisecond))
	r := s.Results[0]
	if !r.TimedOut || r.Err == nil {
		t.Fatalf("stuck job result = %+v, want timeout", r)
	}
	if s.Results[1].Value != 42 || s.Results[1].Failed() {
		t.Fatalf("quick job result = %+v", s.Results[1])
	}
}

func TestDuplicateJobNamesPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate job names accepted")
		}
	}()
	Run([]Job{
		{Name: "x", Run: func(c *Ctx) (any, error) { return nil, nil }},
		{Name: "x", Run: func(c *Ctx) (any, error) { return nil, nil }},
	})
}

func TestProgressCallback(t *testing.T) {
	var dones []int
	total := 0
	s := Run(simJobs(5), Parallel(3), OnProgress(func(done, n int, r Result) {
		dones = append(dones, done)
		total = n
	}))
	if len(dones) != 5 || total != 5 {
		t.Fatalf("progress calls %v, total %d", dones, total)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("done sequence %v not monotone", dones)
		}
	}
	if s.Wall <= 0 {
		t.Fatal("campaign wall time not measured")
	}
}

// Summary metrics land in the stats registry format, with per-job
// snapshots re-rooted under the campaign path, and natural ordering.
func TestSummaryMetricsFormat(t *testing.T) {
	jobs := []Job{
		{Name: "sweep/pt[0]", Run: func(c *Ctx) (any, error) {
			reg := stats.New()
			reg.Counter("soc/pe[0]", "kernels").Add(3)
			return 1, c.Publish(reg)
		}},
		{Name: "sweep/pt[1]", Run: func(c *Ctx) (any, error) { return nil, errors.New("nope") }},
	}
	s := Run(jobs, Named("fig3"), Parallel(2), Seed(5))
	ms := s.Metrics()

	get := func(path, name string) (float64, bool) {
		for _, m := range ms {
			if m.Path == path && m.Name == name {
				return m.Value, true
			}
		}
		return 0, false
	}
	if v, ok := get("fig3", "jobs"); !ok || v != 2 {
		t.Fatalf("fig3/jobs = %v, %v", v, ok)
	}
	if v, ok := get("fig3", "failed"); !ok || v != 1 {
		t.Fatalf("fig3/failed = %v, %v", v, ok)
	}
	if v, ok := get("fig3/sweep/pt[0]", "ok"); !ok || v != 1 {
		t.Fatalf("pt[0] ok = %v, %v", v, ok)
	}
	if v, ok := get("fig3/sweep/pt[1]", "ok"); !ok || v != 0 {
		t.Fatalf("pt[1] ok = %v, %v", v, ok)
	}
	if v, ok := get("fig3/sweep/pt[0]/soc/pe[0]", "kernels"); !ok || v != 3 {
		t.Fatalf("published snapshot not re-rooted: %v, %v", v, ok)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := stats.ParseJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(ms) {
		t.Fatalf("JSON round trip lost metrics: %d vs %d", len(parsed), len(ms))
	}
}

func TestValueAndResultLookup(t *testing.T) {
	s := Run(simJobs(3), Seed(3))
	if v := s.Value("job[1]"); v != s.Results[1].Value {
		t.Fatalf("Value lookup = %v", v)
	}
	if v := s.Value("absent"); v != nil {
		t.Fatalf("absent job Value = %v, want nil", v)
	}
	if _, ok := s.Result("job[2]"); !ok {
		t.Fatal("Result lookup failed")
	}
}

// TestContextCancelBeforeStart: a campaign handed an already-canceled
// context reports every job Canceled without running any body.
func TestContextCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	jobs := []Job{{Name: "j", Run: func(c *Ctx) (any, error) { ran = true; return 1, nil }}}
	s := Run(jobs, WithContext(ctx))
	if ran {
		t.Fatal("canceled campaign still ran a job body")
	}
	r := s.Results[0]
	if !r.Canceled || !r.Failed() || s.Canceled != 1 || s.Failed != 1 {
		t.Fatalf("canceled job not reported: %+v, summary %+v", r, s)
	}
}

// TestContextCancelFencesRunningJob: cancellation mid-flight abandons the
// stuck body (like a timeout) and reports the job Canceled.
func TestContextCancelFencesRunningJob(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	jobs := []Job{{Name: "stuck", Run: func(c *Ctx) (any, error) {
		close(started)
		<-release
		return nil, nil
	}}}
	go func() {
		<-started
		cancel()
	}()
	s := Run(jobs, WithContext(ctx))
	r := s.Results[0]
	if !r.Canceled || r.TimedOut {
		t.Fatalf("want canceled (not timed out), got %+v", r)
	}
	if !errors.Is(r.Err, context.Canceled) {
		t.Fatalf("cancel cause not wrapped: %v", r.Err)
	}
}

// TestContextObservableFromJob: Ctx.Context exposes the campaign context
// (and defaults to Background without one).
func TestContextObservableFromJob(t *testing.T) {
	ctx := context.WithValue(context.Background(), ctxKey{}, "v")
	var got, def any
	Run([]Job{{Name: "j", Run: func(c *Ctx) (any, error) {
		got = c.Context().Value(ctxKey{})
		return nil, nil
	}}}, WithContext(ctx))
	Run([]Job{{Name: "j", Run: func(c *Ctx) (any, error) {
		def = c.Context()
		return nil, nil
	}}})
	if got != "v" {
		t.Fatalf("campaign context not exposed: %v", got)
	}
	if def != context.Background() {
		t.Fatalf("default context not Background: %v", def)
	}
}

type ctxKey struct{}

// TestUncanceledContextPreservesDeterminism: attaching a live context
// must not perturb results relative to a context-free run.
func TestUncanceledContextPreservesDeterminism(t *testing.T) {
	jobs := simJobs(16)
	base := Run(jobs, Seed(9), Parallel(1))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	withCtx := Run(jobs, Seed(9), Parallel(4), WithContext(ctx))
	for i := range base.Results {
		if base.Results[i].Value != withCtx.Results[i].Value {
			t.Fatalf("result %d drifted under WithContext: %v vs %v",
				i, base.Results[i].Value, withCtx.Results[i].Value)
		}
	}
}

// TestSummaryWriteJSONGoldenBytes pins the summary dump encoding: key
// ordering and float formatting must be byte-stable because the job
// service embeds these dumps in content-addressed cached results.
func TestSummaryWriteJSONGoldenBytes(t *testing.T) {
	s := &Summary{
		Name:     "g",
		Parallel: 2,
		Seed:     5,
		Failed:   1,
		Results: []Result{
			{Name: "a", Index: 0, Value: 1},
			{Name: "b", Index: 1, Err: errors.New("nope")},
		},
	}
	const golden = "{\n \"metrics\": [\n" +
		"  {\"path\":\"g\",\"name\":\"canceled\",\"value\":0},\n" +
		"  {\"path\":\"g\",\"name\":\"failed\",\"value\":1},\n" +
		"  {\"path\":\"g\",\"name\":\"jobs\",\"value\":2},\n" +
		"  {\"path\":\"g\",\"name\":\"parallel\",\"value\":2},\n" +
		"  {\"path\":\"g\",\"name\":\"wall_seconds\",\"value\":0},\n" +
		"  {\"path\":\"g/a\",\"name\":\"canceled\",\"value\":0},\n" +
		"  {\"path\":\"g/a\",\"name\":\"ok\",\"value\":1},\n" +
		"  {\"path\":\"g/a\",\"name\":\"panicked\",\"value\":0},\n" +
		"  {\"path\":\"g/a\",\"name\":\"timed_out\",\"value\":0},\n" +
		"  {\"path\":\"g/a\",\"name\":\"wall_seconds\",\"value\":0},\n" +
		"  {\"path\":\"g/b\",\"name\":\"canceled\",\"value\":0},\n" +
		"  {\"path\":\"g/b\",\"name\":\"ok\",\"value\":0},\n" +
		"  {\"path\":\"g/b\",\"name\":\"panicked\",\"value\":0},\n" +
		"  {\"path\":\"g/b\",\"name\":\"timed_out\",\"value\":0},\n" +
		"  {\"path\":\"g/b\",\"name\":\"wall_seconds\",\"value\":0}\n" +
		" ]\n}\n"
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != golden {
		t.Fatalf("summary dump drifted:\ngot:\n%s\nwant:\n%s", buf.String(), golden)
	}
}

// TestDeterministicMetricsDropWall: the deterministic view carries no
// wall-clock samples at any depth and no shard-width configuration, so
// the rendered dump is identical at every Parallel value.
func TestDeterministicMetricsDropWall(t *testing.T) {
	jobs := []Job{{Name: "j", Run: func(c *Ctx) (any, error) {
		reg := stats.New()
		reg.Gauge("x", "wall_seconds").Set(3.3) // published leaf must drop too
		reg.Counter("x", "flits").Add(2)
		return 1, c.Publish(reg)
	}}}
	for _, m := range Run(jobs, Named("d")).DeterministicMetrics() {
		if m.Name == "wall_seconds" || m.Name == "parallel" {
			t.Fatalf("%s leaked at %q", m.Name, m.Path)
		}
	}
	var dumps [2]bytes.Buffer
	for i, par := range []int{1, 4} {
		s := Run(jobs, Named("d"), Parallel(par))
		if err := stats.WriteMetricsJSON(&dumps[i], s.DeterministicMetrics()); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(dumps[0].Bytes(), dumps[1].Bytes()) {
		t.Fatalf("deterministic dump varies with Parallel:\n%s\nvs\n%s",
			dumps[0].Bytes(), dumps[1].Bytes())
	}
	s := Run(jobs, Named("d"))
	if stats.Total(s.DeterministicMetrics(), "d/j/x", "flits") != 2 {
		t.Fatal("non-wall metrics lost")
	}
}
