// Package exp is the experiment-campaign runner behind the paper's
// evaluation sweeps. The paper's figures are piles of independent
// simulations — Figure 3 port sweeps, the six Figure 6 SoC tests, NoC
// load-latency points, GALS margin sweeps, multi-seed stall-hunt
// campaigns — and every one builds its own sim.Simulator, so they are
// embarrassingly parallel. The runner executes a set of named jobs on a
// bounded worker pool with three guarantees:
//
//   - Determinism: each job's seed is derived from the job name and the
//     campaign seed alone (FNV-1a of the name XORed with the campaign
//     seed, the same scheme connections.WithStall uses per channel), so
//     results are bit-identical regardless of worker count, scheduling
//     order, or repeated runs.
//   - Isolation: a panicking job degrades to a reported failure instead
//     of crashing the whole regeneration run, and an optional per-job
//     timeout fences off diverging simulations.
//   - Accounting: the campaign summary (jobs done, failures, wall time,
//     per-job stats snapshots) is published in the internal/stats
//     registry format, so campaign telemetry lands in the same tree and
//     JSON dumps as every simulated component.
//
// Results are returned in job-submission order; printing code that
// iterates a Summary therefore produces byte-identical output for any
// parallelism level.
package exp
