package exp_test

// Cross-package determinism tests: every experiment driver rewired onto
// the campaign runner must produce bit-identical results for parallel 1
// vs parallel 8 and across repeated runs with the same campaign seed —
// the acceptance contract behind `benchfig -parallel N`.

import (
	"reflect"
	"testing"

	"repro/internal/matchlib"
	"repro/internal/noc"
	"repro/internal/verif"
)

func TestCampaignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweeps in -short mode")
	}
	ports := []int{2, 4, 8}
	loads := []float64{0.05, 0.20, 0.40}

	cases := []struct {
		name string
		run  func(parallel int) any
	}{
		{"fig3", func(p int) any {
			rows, _ := matchlib.RunFig3Campaign(ports, 120, 7, p)
			return rows
		}},
		{"noc", func(p int) any {
			pts, _ := noc.LoadLatencyCampaign(4, 4, loads, 1500, 2, 7, p)
			return pts
		}},
		{"stallhunt", func(p int) any {
			agg, _ := verif.RunStallHuntCampaign(0.30, 80, 6, 7, p)
			return agg
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			seq := tc.run(1)
			par := tc.run(8)
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("parallel=8 diverged from sequential:\nseq %+v\npar %+v", seq, par)
			}
			again := tc.run(8)
			if !reflect.DeepEqual(par, again) {
				t.Fatalf("repeated parallel run diverged:\nfirst %+v\nagain %+v", par, again)
			}
		})
	}
}

// Sequential wrappers must return exactly what their campaigns return.
func TestSequentialWrappersMatchCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweeps in -short mode")
	}
	ports := []int{2, 4}
	rows := matchlib.RunFig3(ports, 80, 11)
	crows, _ := matchlib.RunFig3Campaign(ports, 80, 11, 4)
	if !reflect.DeepEqual(rows, crows) {
		t.Fatalf("RunFig3 != RunFig3Campaign:\n%+v\n%+v", rows, crows)
	}

	loads := []float64{0.05, 0.30}
	pts := noc.LoadLatencySweep(4, 4, loads, 1000, 2, 11)
	cpts, _ := noc.LoadLatencyCampaign(4, 4, loads, 1000, 2, 11, 4)
	if !reflect.DeepEqual(pts, cpts) {
		t.Fatalf("LoadLatencySweep != LoadLatencyCampaign:\n%+v\n%+v", pts, cpts)
	}
}

// benchmarkFig3NoC is the paper-evaluation inner loop: the Figure 3
// crossbar sweep plus the NoC load-latency sweep, as one campaign-sized
// unit of work per iteration.
func benchmarkFig3NoC(b *testing.B, parallel int) {
	ports := []int{2, 4, 8}
	loads := []float64{0.05, 0.20, 0.40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		matchlib.RunFig3Campaign(ports, 120, 7, parallel)
		noc.LoadLatencyCampaign(4, 4, loads, 1500, 2, 7, parallel)
	}
}

func BenchmarkCampaignParallel1(b *testing.B) { benchmarkFig3NoC(b, 1) }
func BenchmarkCampaignParallel4(b *testing.B) { benchmarkFig3NoC(b, 4) }
