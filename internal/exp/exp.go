package exp

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/stats"
)

// Job is one named experiment: it builds and runs its own simulation and
// returns an arbitrary result value. Run receives a Ctx carrying the
// job's derived seed; a job that wants reproducible randomness must take
// all of it from that seed.
type Job struct {
	Name string
	Run  func(c *Ctx) (any, error)
}

// Ctx is the per-job context handed to a running job.
type Ctx struct {
	// Name is the job's campaign-unique name.
	Name string
	// Seed is the job's derived seed: DeriveSeed(campaignSeed, Name).
	// It depends only on the campaign seed and job name, never on
	// worker count or scheduling order.
	Seed int64
	// Partitions is the campaign's simulator shard-count hint (see the
	// Partitions option). Jobs that build partitionable simulations
	// thread it into their engine config; jobs may ignore it.
	Partitions int

	ctx       context.Context
	statsJSON []byte
}

// Context returns the campaign context installed with WithContext, or
// context.Background when the campaign runs without one. Long jobs poll
// it to stop early on cancellation; jobs that never look still get fenced
// by the runner (the abandoned-body semantics of Timeout).
func (c *Ctx) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Publish snapshots reg in the stats JSON dump format and attaches it to
// the job's Result. Call it at most once, after the job's simulation has
// finished.
func (c *Ctx) Publish(reg *stats.Registry) error {
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		return err
	}
	c.statsJSON = buf.Bytes()
	return nil
}

// Result is the outcome of one job.
type Result struct {
	Name     string
	Index    int // submission index
	Seed     int64
	Value    any   // Run's return value; nil on failure
	Err      error // job error, panic, timeout, or cancellation
	Panicked bool
	TimedOut bool
	Canceled bool // campaign context canceled before or during the job
	Wall     time.Duration
	Stats    []byte // stats JSON dump published via Ctx.Publish, if any
}

// Failed reports whether the job ended in error, panic, or timeout.
func (r Result) Failed() bool { return r.Err != nil }

// Summary is the outcome of a whole campaign.
type Summary struct {
	Name     string // campaign name; roots the summary's metric paths
	Results  []Result
	Wall     time.Duration
	Parallel int
	Seed     int64
	Failed   int
	Canceled int // jobs ended by campaign-context cancellation (subset of Failed)
}

// config collects the campaign options.
type config struct {
	name       string
	parallel   int
	partitions int
	seed       int64
	timeout    time.Duration
	ctx        context.Context
	progress   func(done, total int, r Result)
}

// Option configures a campaign run.
type Option func(*config)

// Named sets the campaign name, the root path of the summary's metrics
// ("campaign" when unset).
func Named(name string) Option { return func(c *config) { c.name = name } }

// Parallel bounds the worker pool. Values below 1 are clamped to 1;
// parallelism never changes results, only wall time.
func Parallel(n int) Option { return func(c *config) { c.parallel = n } }

// Seed sets the campaign seed that every per-job seed is derived from.
func Seed(s int64) Option { return func(c *config) { c.seed = s } }

// Partitions sets the shard-count hint handed to every job via
// Ctx.Partitions: jobs that run partitionable simulations (internal/psim)
// execute on that many parallel shards. Like Parallel it trades wall time
// only — any count >= 1 is bit-identical to 1 — but unlike Parallel it is
// visible to job bodies, because engaging the partition engine at all
// (0 vs >= 1) changes how a simulation's stop condition is quantized.
// Negative values are treated as zero.
func Partitions(n int) Option { return func(c *config) { c.partitions = n } }

// Timeout bounds each job's wall time. A job exceeding it is reported
// as a timed-out failure; its goroutine is abandoned (it keeps whatever
// CPU it is burning, but the campaign completes without it). Zero means
// no limit.
func Timeout(d time.Duration) Option { return func(c *config) { c.timeout = d } }

// WithContext attaches a context to the campaign. When it is canceled,
// jobs that have not started yet complete immediately as Canceled
// failures without running, and jobs already in flight are abandoned
// (same fencing as Timeout) and reported Canceled. A campaign run with
// an uncanceled context is bit-identical to one run without a context —
// cancellation only ever shortens a run, never reorders or reseeds it.
// The service layer's graceful drain is the intended caller.
func WithContext(ctx context.Context) Option { return func(c *config) { c.ctx = ctx } }

// OnProgress registers a callback invoked after each job completes, with
// the number of finished jobs, the campaign size, and the job's result.
// It is called from worker goroutines under a lock; keep it short and do
// not write to the campaign's ordered output from it.
func OnProgress(fn func(done, total int, r Result)) Option {
	return func(c *config) { c.progress = fn }
}

// DeriveSeed returns the deterministic per-job seed for a job name under
// a campaign seed: the FNV-1a hash of the name XORed with the campaign
// seed. This matches the per-channel scheme of connections.WithStall, so
// a job named after a channel observes the same stream the channel's
// stall injector would.
func DeriveSeed(campaignSeed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return campaignSeed ^ int64(h.Sum64())
}

// Run executes the jobs on a bounded worker pool and returns the
// campaign summary with results in submission order. Job names must be
// campaign-unique (they key seed derivation and metric paths); duplicate
// names panic.
func Run(jobs []Job, opts ...Option) *Summary {
	cfg := config{name: "campaign", parallel: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.parallel < 1 {
		cfg.parallel = 1
	}
	names := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if names[j.Name] {
			panic(fmt.Sprintf("exp: duplicate job name %q in campaign %q", j.Name, cfg.name))
		}
		names[j.Name] = true
	}

	s := &Summary{
		Name:     cfg.name,
		Results:  make([]Result, len(jobs)),
		Parallel: cfg.parallel,
		Seed:     cfg.seed,
	}
	start := time.Now()
	workers := cfg.parallel
	if workers > len(jobs) {
		workers = len(jobs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r := runOne(jobs[i], i, cfg)
				s.Results[i] = r
				mu.Lock()
				done++
				if r.Failed() {
					s.Failed++
				}
				if r.Canceled {
					s.Canceled++
				}
				if cfg.progress != nil {
					cfg.progress(done, len(jobs), r)
				}
				mu.Unlock()
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	s.Wall = time.Since(start)
	return s
}

// outcome carries a finished job body's results across the completion
// channel, so a timed-out (abandoned) body never races the runner.
type outcome struct {
	value    any
	err      error
	panicked bool
	stats    []byte
}

// runOne executes one job with panic capture, the optional timeout, and
// the optional campaign context.
func runOne(j Job, i int, cfg config) Result {
	r := Result{Name: j.Name, Index: i, Seed: DeriveSeed(cfg.seed, j.Name)}
	if cfg.ctx != nil && cfg.ctx.Err() != nil {
		// The campaign was canceled before this job started: report it
		// without spending a goroutine on a body nobody will collect.
		r.Canceled = true
		r.Err = fmt.Errorf("job %q canceled before start: %w", j.Name, cfg.ctx.Err())
		return r
	}
	ctx := &Ctx{Name: j.Name, Seed: r.Seed, ctx: cfg.ctx}
	if cfg.partitions > 0 {
		ctx.Partitions = cfg.partitions
	}
	ch := make(chan outcome, 1) // buffered: an abandoned body must not block forever
	start := time.Now()
	go func() {
		var o outcome
		defer func() {
			if p := recover(); p != nil {
				o.err = fmt.Errorf("job %q panicked: %v\n%s", j.Name, p, debug.Stack())
				o.panicked = true
				o.value = nil
			}
			o.stats = ctx.statsJSON
			ch <- o
		}()
		o.value, o.err = j.Run(ctx)
	}()

	// nil channels block forever, so absent options simply never fire.
	var timeout <-chan time.Time
	if cfg.timeout > 0 {
		t := time.NewTimer(cfg.timeout)
		defer t.Stop()
		timeout = t.C
	}
	var canceled <-chan struct{}
	if cfg.ctx != nil {
		canceled = cfg.ctx.Done()
	}
	select {
	case o := <-ch:
		r.Value, r.Err, r.Panicked, r.Stats = o.value, o.err, o.panicked, o.stats
	case <-timeout:
		r.TimedOut = true
		r.Err = fmt.Errorf("job %q timed out after %v", j.Name, cfg.timeout)
	case <-canceled:
		r.Canceled = true
		r.Err = fmt.Errorf("job %q canceled: %w", j.Name, cfg.ctx.Err())
	}
	r.Wall = time.Since(start)
	return r
}

// Err returns the first failed job's error in submission order, or nil
// when every job succeeded. Campaign drivers that want fail-fast
// semantics at the end of a run use it as their single error return.
func (s *Summary) Err() error {
	for _, r := range s.Results {
		if r.Failed() {
			return r.Err
		}
	}
	return nil
}

// Failures returns the failed results in submission order.
func (s *Summary) Failures() []Result {
	var out []Result
	for _, r := range s.Results {
		if r.Failed() {
			out = append(out, r)
		}
	}
	return out
}

// Result returns the named job's result.
func (s *Summary) Result(name string) (Result, bool) {
	for _, r := range s.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// Value returns the named job's result value, or nil if the job failed
// or does not exist.
func (s *Summary) Value(name string) any {
	r, ok := s.Result(name)
	if !ok {
		return nil
	}
	return r.Value
}

// Metrics renders the campaign summary in the stats registry format:
// campaign-level counters under the campaign name, per-job status under
// "<campaign>/<job name>", and any stats snapshot a job published under
// "<campaign>/<job name>/<original path>". The list is sorted in the
// registry's natural path order.
func (s *Summary) Metrics() []stats.Metric {
	root := s.Name
	if root == "" {
		root = "campaign"
	}
	ms := []stats.Metric{
		{Path: root, Name: "canceled", Value: float64(s.Canceled)},
		{Path: root, Name: "failed", Value: float64(s.Failed)},
		{Path: root, Name: "jobs", Value: float64(len(s.Results))},
		{Path: root, Name: "parallel", Value: float64(s.Parallel)},
		{Path: root, Name: "wall_seconds", Value: s.Wall.Seconds()},
	}
	for _, r := range s.Results {
		p := root + "/" + r.Name
		ok, panicked, timedOut, canceled := 1.0, 0.0, 0.0, 0.0
		if r.Failed() {
			ok = 0
		}
		if r.Panicked {
			panicked = 1
		}
		if r.TimedOut {
			timedOut = 1
		}
		if r.Canceled {
			canceled = 1
		}
		ms = append(ms,
			stats.Metric{Path: p, Name: "canceled", Value: canceled},
			stats.Metric{Path: p, Name: "ok", Value: ok},
			stats.Metric{Path: p, Name: "panicked", Value: panicked},
			stats.Metric{Path: p, Name: "timed_out", Value: timedOut},
			stats.Metric{Path: p, Name: "wall_seconds", Value: r.Wall.Seconds()},
		)
		if len(r.Stats) > 0 {
			sub, err := stats.ParseJSON(r.Stats)
			if err != nil {
				continue // a malformed snapshot degrades to absence, not failure
			}
			for _, m := range sub {
				mp := p
				if m.Path != "" {
					mp = p + "/" + m.Path
				}
				ms = append(ms, stats.Metric{Path: mp, Name: m.Name, Value: m.Value})
			}
		}
	}
	stats.SortMetrics(ms)
	return ms
}

// WriteJSON writes the summary metrics as a stats JSON dump, the same
// machine-readable format socsim -statsjson and benchfig -json emit.
func (s *Summary) WriteJSON(w io.Writer) error {
	return stats.WriteMetricsJSON(w, s.Metrics())
}

// DeterministicMetrics returns Metrics with every host-dependent sample
// removed: wall-clock values (metric name "wall_seconds", at any depth)
// and the campaign's "parallel" shard width, which is configuration,
// not result — the seed-derivation invariant guarantees the remaining
// metrics are identical at every width. What remains depends only on
// the campaign seed and job set, so two runs of the same campaign
// render byte-identical dumps — the form the service layer embeds in
// content-addressed result bodies.
func (s *Summary) DeterministicMetrics() []stats.Metric {
	var out []stats.Metric
	for _, m := range s.Metrics() {
		if m.Name == "wall_seconds" || m.Name == "parallel" {
			continue
		}
		out = append(out, m)
	}
	return out
}
