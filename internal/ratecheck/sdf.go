package ratecheck

import (
	"fmt"

	"repro/internal/lint"
	"repro/internal/sim"
)

// The SDF balance solver. An edge joins two declared SDF actors through
// one bound channel; each firing of the producer pushes p tokens and
// each firing of the consumer pops c tokens. A steady-state (periodic)
// schedule exists only if there is a repetition vector q with
// q[prod]*p == q[cons]*c on every edge. Tree edges of the channel graph
// always admit one (the solver just propagates ratios); an inconsistent
// assignment can only surface where an edge closes a cycle, and that
// closing channel — in declaration order — anchors the RATE-1 error.

// edge is one SDF channel between two declared SDF actors.
type edge struct {
	ch         *sim.ChannelDecl
	prod, cons int     // indices into the design's actor list
	p, c       sim.Rat // tokens per firing at each end
}

// collectEdges gathers channels whose declared endpoints both belong to
// SDF actors. Switch actors and undeclared components break the SDF
// region on purpose: their token movement is data-dependent, so no
// balance equation may cross them.
func collectEdges(d *sim.Design, actorAt map[string]int) []edge {
	actors := d.Actors()
	var edges []edge
	for _, c := range d.Channels() {
		if c.Prod == nil || c.Cons == nil {
			continue
		}
		pi, ok := actorAt[c.Prod.Path]
		if !ok || actors[pi].Class != sim.ActorSDF {
			continue
		}
		ci, ok := actorAt[c.Cons.Path]
		if !ok || actors[ci].Class != sim.ActorSDF {
			continue
		}
		edges = append(edges, edge{
			ch: c, prod: pi, cons: ci,
			p: portRate(c.Prod), c: portRate(c.Cons),
		})
	}
	return edges
}

// checkBalance solves the balance equations over the SDF edges and adds
// a RATE-1 error for every edge whose constraint contradicts the
// repetition ratios already forced by earlier edges.
func checkBalance(r *Result, actors []*sim.ActorDecl, edges []edge) {
	q := make([]sim.Rat, len(actors)) // zero = unassigned
	done := make([]bool, len(edges))  // each edge propagates or checks once
	// Adjacency in edge order keeps the propagation deterministic.
	adj := make([][]int, len(actors))
	for i, e := range edges {
		adj[e.prod] = append(adj[e.prod], i)
		adj[e.cons] = append(adj[e.cons], i)
	}
	for start := range actors {
		if !q[start].IsZero() || len(adj[start]) == 0 {
			continue
		}
		q[start] = one
		queue := []int{start}
		for len(queue) > 0 {
			a := queue[0]
			queue = queue[1:]
			for _, ei := range adj[a] {
				if done[ei] {
					continue
				}
				e := edges[ei]
				// At least one end is assigned (actor a came off the
				// queue). A tree edge forces the other end's ratio; an
				// edge whose ends are both assigned closes a cycle and
				// must satisfy q[prod]*p == q[cons]*c.
				switch {
				case q[e.cons].IsZero():
					q[e.cons] = ratDiv(ratMul(q[e.prod], e.p), e.c)
					queue = append(queue, e.cons)
				case q[e.prod].IsZero():
					q[e.prod] = ratDiv(ratMul(q[e.cons], e.c), e.p)
					queue = append(queue, e.prod)
				case ratCmp(ratMul(q[e.prod], e.p), ratMul(q[e.cons], e.c)) != 0:
					r.add(lint.Diag{
						Rule: "RATE-1", Severity: lint.SevError, Path: e.ch.Name,
						Message: fmt.Sprintf(
							"balance equations are inconsistent: %s fires %s times per iteration pushing %s tokens, but %s fires %s times popping %s — the cycle cannot reach a steady state",
							actors[e.prod].Path, q[e.prod], e.p,
							actors[e.cons].Path, q[e.cons], e.c),
						Hint: "fix the declared rates so production equals consumption around the cycle, or reclassify a data-dependent component as ActorSwitch",
					})
				}
				done[ei] = true
			}
		}
	}
}

// checkSupplyDemand adds RATE-2 warnings on edges whose declared
// services make the steady-state supply and demand unequal. Imbalance on
// a latency-insensitive channel never loses data — backpressure
// throttles the faster side — but it wastes the faster component and
// tells the designer where the pipeline will saturate.
func checkSupplyDemand(r *Result, actors []*sim.ActorDecl, edges []edge) {
	for _, e := range edges {
		sp, sc := actors[e.prod].Service, actors[e.cons].Service
		if sp.IsZero() || sc.IsZero() {
			continue
		}
		supply := ratMul(sp, e.p)  // tokens per cycle offered
		demand := ratMul(sc, e.c)  // tokens per cycle drained
		switch ratCmp(supply, demand) {
		case 1:
			r.add(lint.Diag{
				Rule: "RATE-2", Severity: lint.SevWarning, Path: e.ch.Name,
				Message: fmt.Sprintf("flooded: %s supplies %s tokens/cycle but %s drains only %s — the channel runs full and backpressure throttles the producer",
					actors[e.prod].Path, supply, actors[e.cons].Path, demand),
				Hint: "speed up the consumer, slow the producer, or accept the producer stall and document it",
			})
		case -1:
			r.add(lint.Diag{
				Rule: "RATE-2", Severity: lint.SevWarning, Path: e.ch.Name,
				Message: fmt.Sprintf("starved: %s demands %s tokens/cycle but %s supplies only %s — the channel runs empty and the consumer idles",
					actors[e.cons].Path, demand, actors[e.prod].Path, supply),
				Hint: "speed up the producer or lower the consumer's service rate",
			})
		}
	}
}
