package ratecheck

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/lint"
	"repro/internal/sim"
)

// WriteTree renders the result in the indented component-tree format the
// lint pass uses: diagnostics first (path segments elided against the
// previous line), then the bounds sections, then the one-line summary.
// The output is byte-stable: every number is an exact rational.
func (r *Result) WriteTree(w io.Writer) {
	var prev []string
	for _, d := range r.Diags {
		segs := strings.Split(d.Path, "/")
		if d.Path == "" {
			segs = nil
		}
		common := 0
		for common < len(segs) && common < len(prev) && segs[common] == prev[common] {
			common++
		}
		for i := common; i < len(segs); i++ {
			fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", i), segs[i])
		}
		prev = segs
		indent := strings.Repeat("  ", len(segs))
		fmt.Fprintf(w, "%s%s %s = %s\n", indent, d.Rule, d.Severity, d.Message)
		if d.Hint != "" {
			fmt.Fprintf(w, "%s  hint: %s\n", indent, d.Hint)
		}
	}
	if len(r.Channels) > 0 {
		fmt.Fprintln(w, "channels:")
		for _, c := range r.Channels {
			fmt.Fprintf(w, "  %s: cap %d (min %d), <= %s tok/cycle on %s\n",
				c.Name, c.Capacity, c.MinDepth, c.Bound, c.Clock)
		}
	}
	if len(r.Domains) > 0 {
		fmt.Fprintln(w, "domains:")
		for _, d := range r.Domains {
			fmt.Fprintf(w, "  %s (%d ps): %d channels, <= %s tok/cycle (<= %s tok/ns)\n",
				d.Clock, d.PeriodPS, d.Channels, d.Bound, d.BoundNS)
		}
	}
	if len(r.Crossings) > 0 {
		fmt.Fprintln(w, "crossings:")
		for _, c := range r.Crossings {
			fmt.Fprintf(w, "  %s: %s %s -> %s, depth %d (min %d), <= %s tok/ns\n",
				c.Name, c.Style, c.Prod, c.Cons, c.Depth, c.MinDepth, c.BoundNS)
		}
	}
	if len(r.Splits) > 0 {
		fmt.Fprintln(w, "splits (advisory):")
		for _, s := range r.Splits {
			fmt.Fprintf(w, "  %s.%s: %s of output traffic\n", s.Path, s.Port, s.Ratio)
		}
	}
	if r.EndToEnd != nil {
		fmt.Fprintf(w, "end-to-end: <= %s tok/ns through %d crossings\n", *r.EndToEnd, len(r.Crossings))
	}
	fmt.Fprintln(w, r.Summary())
}

// jsonDump is the machine-readable result, shaped like the lint dump
// ({"diagnostics":[...],...}) for tool symmetry. Struct fields only, no
// maps, so encoding/json emits deterministic bytes.
type jsonDump struct {
	Diagnostics []lint.Diag       `json:"diagnostics"`
	Errors      int               `json:"errors"`
	Warnings    int               `json:"warnings"`
	Channels    []ChannelReport   `json:"channels"`
	Domains     []DomainReport    `json:"domains"`
	Crossings   []CrossingReport  `json:"crossings"`
	Splits      []SplitReport     `json:"splits,omitempty"`
	EndToEnd    *sim.Rat          `json:"end_to_end,omitempty"`
	Summary     string            `json:"summary"`
}

// WriteJSON writes the full result as canonical JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	d := jsonDump{
		Diagnostics: r.Diags,
		Errors:      r.Errors(),
		Warnings:    r.Warnings(),
		Channels:    r.Channels,
		Domains:     r.Domains,
		Crossings:   r.Crossings,
		Splits:      r.Splits,
		EndToEnd:    r.EndToEnd,
		Summary:     r.Summary(),
	}
	if d.Diagnostics == nil {
		d.Diagnostics = []lint.Diag{}
	}
	if d.Channels == nil {
		d.Channels = []ChannelReport{}
	}
	if d.Domains == nil {
		d.Domains = []DomainReport{}
	}
	if d.Crossings == nil {
		d.Crossings = []CrossingReport{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}
