package ratecheck_test

// Byte-stability goldens: the fixtures' rendered reports are pinned to
// files under testdata/, so any change to diagnostic wording, ordering,
// or JSON shape shows up as a reviewable diff. Regenerate with
//
//	go test ./internal/ratecheck -run TestGolden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ratecheck"
	"repro/internal/soc"
)

var update = flag.Bool("update", false, "rewrite golden files")

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

func TestGoldenFixtures(t *testing.T) {
	cfg := soc.DefaultConfig()
	for _, tc := range soc.RateFixtures() {
		t.Run(tc.Name, func(t *testing.T) {
			s, _ := tc.Build(cfg)
			r := ratecheck.Check(s.Sim)

			var tree bytes.Buffer
			r.WriteTree(&tree)
			checkGolden(t, tc.Name+".tree.golden", tree.Bytes())

			var js bytes.Buffer
			if err := r.WriteJSON(&js); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.Name+".json.golden", js.Bytes())
		})
	}
}
