// Package ratecheck is the static communication-rate analysis: the SDF
// (synchronous dataflow) sibling of the structural lint pass. Where
// internal/lint checks the shape of the elaborated channel/clock graph,
// ratecheck checks its arithmetic: declared token production and
// consumption rates are propagated through the graph, balance equations
// are solved per clock domain with exact rational arithmetic, and the
// pass reports rate mismatches, minimal buffer sizes versus declared
// capacities, and steady-state throughput upper bounds — all before a
// single cycle is simulated.
//
// Rules:
//
//	RATE-1  SDF balance equations are inconsistent around a channel cycle (error)
//	RATE-2  declared services make a channel starved or flooded (warning)
//	RATE-3  channel or crossing buffer below the minimal depth (warning)
//	RATE-4  buffer capacity far above the minimal depth (warning; fires
//	        only on explicitly rated endpoints, never on defaults)
//
// Every input is opt-in, mirroring lint: actors are declared with
// sim.Design.DeclareActor, endpoint rates with the Rated chain on
// connections ports, and undeclared structure is treated as
// unconstrained — so shipped designs that never declare rates produce
// no diagnostics, only the sound default bounds (one token per cycle
// per channel: the LI channel commits at most one message per clock
// edge, whatever the payload).
//
// Soundness contract: every reported bound is an upper bound on what
// the dynamic simulation can do. The verif cross-check
// (verif.CrossCheckRates) runs the stall-hunter and asserts observed
// transfers and occupancy never exceed the static numbers; a violation
// is either a real design bug (the hardware port limit itself was
// beaten, meaning channel accounting is broken) or an analysis bug (a
// declared-rate bound was tighter than reality). Advisory inputs that
// cannot be guaranteed — a router's per-port split ratio under unknown
// traffic — are reported but never used to tighten a bound.
package ratecheck

import (
	"fmt"

	"repro/internal/lint"
	"repro/internal/sim"
	"repro/internal/stats"
)

// ChannelReport is the per-channel slice of the analysis. Only notable
// channels are listed — those with explicit rates, a non-default bound,
// or a buffer-size finding; every unlisted channel has the default
// hardware bound (one token per cycle) and minimal depth 1.
type ChannelReport struct {
	Name     string  `json:"name"`
	Clock    string  `json:"clock"`
	Capacity int     `json:"capacity"`  // declared depth (runtime clamps to >= 1)
	MinDepth int     `json:"min_depth"` // p + c - gcd(p, c) for rated endpoints
	Bound    sim.Rat `json:"bound"`     // tokens per cycle, upper bound
}

// DomainReport is the steady-state throughput summary of one clock
// domain: the tightest per-channel bound among its channels, in tokens
// per cycle and tokens per nanosecond.
type DomainReport struct {
	Clock    string  `json:"clock"`
	PeriodPS uint64  `json:"period_ps"`
	Channels int     `json:"channels"`
	Bound    sim.Rat `json:"bound"`        // tokens per cycle
	BoundNS  sim.Rat `json:"bound_per_ns"` // tokens per nanosecond
}

// CrossingReport bounds one CDC synchronizer: a dual-clock FIFO moves at
// most one token per cycle of its slower side, whatever its style.
type CrossingReport struct {
	Name     string  `json:"name"`
	Style    string  `json:"style"`
	Prod     string  `json:"prod_clock"`
	Cons     string  `json:"cons_clock"`
	Depth    int     `json:"depth"`
	MinDepth int     `json:"min_depth"`
	BoundNS  sim.Rat `json:"bound_per_ns"` // tokens per nanosecond
}

// SplitReport echoes one advisory split-ratio declaration. Splits are
// reported for the designer's eyes only; see the package comment.
type SplitReport struct {
	Path  string  `json:"path"`
	Port  string  `json:"port"`
	Ratio sim.Rat `json:"ratio"`
}

// Result is the outcome of one rate-analysis pass.
type Result struct {
	Diags []lint.Diag

	Channels  []ChannelReport
	Domains   []DomainReport
	Crossings []CrossingReport
	Splits    []SplitReport

	// EndToEnd is the steady-state bound through the CDC crossing chain:
	// the tightest crossing bound, in tokens per nanosecond. Nil when the
	// design has no crossings.
	EndToEnd *sim.Rat

	// What the elaborated design graph contained.
	TotalChannels int
	ActorsSDF     int
	ActorsSwitch  int
	RatedPorts    int
}

func (r *Result) add(d lint.Diag) { r.Diags = append(r.Diags, d) }

// Errors counts error-severity diagnostics.
func (r *Result) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == lint.SevError {
			n++
		}
	}
	return n
}

// Warnings counts warning-severity diagnostics.
func (r *Result) Warnings() int { return len(r.Diags) - r.Errors() }

// Summary renders the one-line pass/fail overview.
func (r *Result) Summary() string {
	return fmt.Sprintf("rateck: %d channels (%d reported), %d sdf + %d switch actors, %d rated ports, %d crossings: %d errors, %d warnings",
		r.TotalChannels, len(r.Channels), r.ActorsSDF, r.ActorsSwitch, r.RatedPorts, len(r.Crossings), r.Errors(), r.Warnings())
}

// Err returns nil when the result has no error-severity diagnostics, and
// otherwise an error naming the first one — the fail-fast hook for
// rate-gated runs.
func (r *Result) Err() error {
	for _, d := range r.Diags {
		if d.Severity == lint.SevError {
			more := ""
			if n := r.Errors(); n > 1 {
				more = fmt.Sprintf(" (and %d more)", n-1)
			}
			return fmt.Errorf("rateck: %s %s: %s%s", d.Rule, d.Path, d.Message, more)
		}
	}
	return nil
}

// ChannelBound returns the static tokens-per-cycle bound for the named
// channel: the reported bound when the channel is listed, else the
// hardware port limit of one token per cycle. verif.CrossCheckRates uses
// it to compare dynamic measurements against the analysis.
func (r *Result) ChannelBound(name string) sim.Rat {
	for _, c := range r.Channels {
		if c.Name == name {
			return c.Bound
		}
	}
	return one
}

// ChannelMinDepth returns the minimal buffer depth recommended for the
// named channel (1 when the channel is not listed).
func (r *Result) ChannelMinDepth(name string) int {
	for _, c := range r.Channels {
		if c.Name == name {
			return c.MinDepth
		}
	}
	return 1
}

// Check elaborates the simulator's design side table and runs the rate
// analysis. Like lint.Check it never starts the simulation; a design
// that is built and checked but not run pays only the construction-time
// appends.
func Check(s *sim.Simulator) *Result {
	d := s.Design()
	r := &Result{TotalChannels: len(d.Channels())}

	actors := d.Actors()
	actorAt := make(map[string]int, len(actors))
	for i, a := range actors {
		actorAt[a.Path] = i
		if a.Class == sim.ActorSDF {
			r.ActorsSDF++
		} else {
			r.ActorsSwitch++
		}
	}
	for _, p := range d.Ports() {
		if !p.Rate.IsZero() {
			r.RatedPorts++
		}
	}

	edges := collectEdges(d, actorAt)
	checkBalance(r, actors, edges)
	checkSupplyDemand(r, actors, edges)
	chanFindings := checkBuffers(r, d)
	reportChannels(r, d, actors, actorAt, chanFindings)
	reportDomains(r, s)
	reportCrossings(r, d)
	reportSplits(r, d)
	sortDiags(r.Diags)
	return r
}

// checkBuffers runs RATE-3 and RATE-4 over every channel with two
// declared endpoints and over every synchronizer, returning the set of
// channels with a buffer-size finding (they must be listed in the
// report even if otherwise unremarkable).
func checkBuffers(r *Result, d *sim.Design) map[string]bool {
	flagged := map[string]bool{}
	for _, c := range d.Channels() {
		if c.Prod == nil || c.Cons == nil {
			continue
		}
		p, cc := portRate(c.Prod), portRate(c.Cons)
		if p.Den != 1 || cc.Den != 1 {
			// Fractional tokens per firing have no p+c-gcd depth bound.
			continue
		}
		min := minDepth(p.Num, cc.Num)
		cap := c.Capacity
		if cap < 1 {
			cap = 1 // the runtime clamps; CON-3 already flags the decl
		}
		explicit := !c.Prod.Rate.IsZero() && !c.Cons.Rate.IsZero()
		if cap < min {
			flagged[c.Name] = true
			r.add(lint.Diag{
				Rule: "RATE-3", Severity: lint.SevWarning, Path: c.Name,
				Message: fmt.Sprintf("capacity %d is below the minimal depth %d for rates %s -> %s (one firing bursts more than the buffer holds)",
					cap, min, p, cc),
				Hint: fmt.Sprintf("resize the FIFO to at least %d, or lower the producer burst", min),
			})
		} else if explicit && min >= 1 && cap > 8*min {
			flagged[c.Name] = true
			r.add(lint.Diag{
				Rule: "RATE-4", Severity: lint.SevWarning, Path: c.Name,
				Message: fmt.Sprintf("capacity %d is more than 8x the minimal depth %d for rates %s -> %s",
					cap, min, p, cc),
				Hint: "an over-provisioned FIFO costs area without throughput; shrink it or declare why the slack is needed",
			})
		}
	}
	for _, sy := range d.Syncs() {
		if sy.Depth < 2 {
			r.add(lint.Diag{
				Rule: "RATE-3", Severity: lint.SevWarning, Path: sy.Name,
				Message: fmt.Sprintf("%s crossing depth %d cannot cover the pointer round trip; throughput degrades to one token per round trip", sy.Style, sy.Depth),
				Hint:    "use depth >= 2 so one side can keep filling while the other drains",
			})
		}
	}
	return flagged
}

// minDepth is the classic SDF buffer bound for integral rates: a channel
// between actors producing p and consuming c tokens per firing needs at
// least p + c - gcd(p, c) slots to admit a periodic schedule.
func minDepth(p, c int64) int {
	return int(p + c - igcd(p, c))
}

// portRate returns the endpoint's declared rate, defaulting to one token
// per firing.
func portRate(p *sim.PortDecl) sim.Rat {
	if p == nil || p.Rate.IsZero() {
		return one
	}
	return p.Rate
}

// reportChannels computes every channel's throughput bound and lists the
// notable ones: explicit rates, a non-default bound, or a buffer-size
// finding.
func reportChannels(r *Result, d *sim.Design, actors []*sim.ActorDecl, actorAt map[string]int, flagged map[string]bool) {
	for _, c := range d.Channels() {
		bound := one
		explicit := false
		for _, end := range []*sim.PortDecl{c.Prod, c.Cons} {
			if end == nil {
				continue
			}
			if !end.Rate.IsZero() {
				explicit = true
			}
			if i, ok := actorAt[end.Path]; ok {
				a := actors[i]
				if a.Class == sim.ActorSDF && !a.Service.IsZero() {
					bound = ratMin(bound, ratMul(a.Service, portRate(end)))
				}
			}
		}
		if !explicit && !flagged[c.Name] && ratCmp(bound, one) == 0 {
			continue
		}
		p, cc := portRate(c.Prod), portRate(c.Cons)
		min := 1
		if c.Prod != nil && c.Cons != nil && p.Den == 1 && cc.Den == 1 {
			min = minDepth(p.Num, cc.Num)
		}
		cap := c.Capacity
		if cap < 1 {
			cap = 1
		}
		r.Channels = append(r.Channels, ChannelReport{
			Name: c.Name, Clock: c.Clock.Name(), Capacity: cap,
			MinDepth: min, Bound: bound,
		})
	}
}

// reportDomains summarizes each clock domain that owns channels: the
// tightest channel bound, in tokens per cycle and per nanosecond.
func reportDomains(r *Result, s *sim.Simulator) {
	d := s.Design()
	for _, clk := range s.Clocks() {
		n := 0
		bound := one
		for _, c := range d.Channels() {
			if c.Clock != clk {
				continue
			}
			n++
			bound = ratMin(bound, r.ChannelBound(c.Name))
		}
		if n == 0 {
			continue
		}
		period := uint64(clk.Period())
		r.Domains = append(r.Domains, DomainReport{
			Clock: clk.Name(), PeriodPS: period, Channels: n,
			Bound:   bound,
			BoundNS: perNS(bound, period),
		})
	}
}

// reportCrossings bounds each synchronizer at one token per slow-side
// cycle and derives the end-to-end bound as the tightest crossing.
func reportCrossings(r *Result, d *sim.Design) {
	for _, sy := range d.Syncs() {
		slow := uint64(sy.Prod.Period())
		if p := uint64(sy.Cons.Period()); p > slow {
			slow = p
		}
		rep := CrossingReport{
			Name: sy.Name, Style: sy.Style,
			Prod: sy.Prod.Name(), Cons: sy.Cons.Name(),
			Depth: sy.Depth, MinDepth: 2,
			BoundNS: perNS(one, slow),
		}
		r.Crossings = append(r.Crossings, rep)
		if r.EndToEnd == nil || ratCmp(rep.BoundNS, *r.EndToEnd) < 0 {
			b := rep.BoundNS
			r.EndToEnd = &b
		}
	}
}

// reportSplits echoes the advisory split declarations.
func reportSplits(r *Result, d *sim.Design) {
	for _, sp := range d.Splits() {
		r.Splits = append(r.Splits, SplitReport{Path: sp.Path, Port: sp.Port, Ratio: sp.Ratio})
	}
}

// perNS converts a tokens-per-cycle bound on a clock of the given period
// (in picoseconds) to tokens per nanosecond.
func perNS(bound sim.Rat, periodPS uint64) sim.Rat {
	return ratMul(bound, ratNew(1000, int64(periodPS)))
}

// sortDiags orders diagnostics exactly like lint: severity-first, then
// path in the registry's natural order, then rule, then message — fully
// deterministic for golden tests.
func sortDiags(ds []lint.Diag) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && diagLess(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func diagLess(a, b lint.Diag) bool {
	if a.Severity != b.Severity {
		return a.Severity > b.Severity
	}
	if a.Path != b.Path {
		return stats.PathLess(a.Path, b.Path)
	}
	if a.Rule != b.Rule {
		return a.Rule < b.Rule
	}
	return a.Message < b.Message
}
