package ratecheck

import "repro/internal/sim"

// Exact rational arithmetic over sim.Rat. Everything in this package is
// integer math — rates must stay rational so diagnostics and bounds are
// byte-stable across hosts (cmd/detvet forbids floating point here).
// All helpers assume normalized positive operands (sim.NewRat output);
// the zero "undeclared" Rat must be filtered by callers before any
// arithmetic.

// one is the unit rate: one token per cycle, one firing per cycle.
var one = sim.Rat{Num: 1, Den: 1}

func igcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// ratNew normalizes num/den to lowest terms; unlike sim.NewRat it skips
// the positivity guard, for internal use on already-validated values.
func ratNew(num, den int64) sim.Rat {
	g := igcd(num, den)
	return sim.Rat{Num: num / g, Den: den / g}
}

// ratMul multiplies with cross-cancellation first, so intermediate
// products stay small and never overflow for realistic rates.
func ratMul(a, b sim.Rat) sim.Rat {
	g1 := igcd(a.Num, b.Den)
	g2 := igcd(b.Num, a.Den)
	return sim.Rat{Num: (a.Num / g1) * (b.Num / g2), Den: (a.Den / g2) * (b.Den / g1)}
}

// ratDiv divides a by b.
func ratDiv(a, b sim.Rat) sim.Rat {
	return ratMul(a, sim.Rat{Num: b.Den, Den: b.Num})
}

// ratCmp returns -1, 0, or +1 as a is less than, equal to, or greater
// than b.
func ratCmp(a, b sim.Rat) int {
	l := a.Num * b.Den
	r := b.Num * a.Den
	switch {
	case l < r:
		return -1
	case l > r:
		return 1
	}
	return 0
}

// ratMin returns the smaller of a and b.
func ratMin(a, b sim.Rat) sim.Rat {
	if ratCmp(b, a) < 0 {
		return b
	}
	return a
}
