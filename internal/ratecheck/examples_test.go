package ratecheck_test

// Shipped-design cleanliness, mirroring lint's examples_test: every
// design the repo ships must pass the rate analysis with zero
// diagnostics under both clocking styles — the opt-in contract means a
// design only collects findings where someone declared rates, and the
// shipped declarations (router/NI/node switch actors, serdes rates) are
// all consistent. The deliberately mis-rated fixtures are pinned to
// their exact expected findings.

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/connections"
	"repro/internal/lint"
	"repro/internal/matchlib"
	"repro/internal/noc"
	"repro/internal/ratecheck"
	"repro/internal/sim"
	"repro/internal/soc"
)

func TestShippedSoCDesignsRateClean(t *testing.T) {
	for _, galsOn := range []bool{false, true} {
		for _, tc := range append(soc.Tests(), soc.ExtraTests()...) {
			cfg := soc.DefaultConfig()
			cfg.GALS = galsOn
			s, _ := tc.Build(cfg)
			r := ratecheck.Check(s.Sim)
			if r.Errors() != 0 || r.Warnings() != 0 {
				var b strings.Builder
				r.WriteTree(&b)
				t.Errorf("%s (gals=%v):\n%s", tc.Name, galsOn, b.String())
			}
			if r.ActorsSwitch == 0 {
				t.Errorf("%s: no switch actors declared — the NoC should register its routers and NIs", tc.Name)
			}
			if galsOn && (len(r.Crossings) == 0 || r.EndToEnd == nil) {
				t.Errorf("%s: GALS build reported no crossing bounds", tc.Name)
			}
		}
	}
}

func TestNocTopologiesRateClean(t *testing.T) {
	t.Run("mesh", func(t *testing.T) {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		m := noc.BuildMesh(clk, "m", 3, 3, 2, 4)
		// The center router of an XY-routed 3x3 mesh under uniform load
		// carries the documented advisory split.
		m.Routers[4].DeclareSplit(noc.PortLocal, 1, 9)
		r := ratecheck.Check(s)
		if len(r.Diags) != 0 {
			var b strings.Builder
			r.WriteTree(&b)
			t.Fatalf("mesh:\n%s", b.String())
		}
		if r.ActorsSwitch != 18 { // 9 routers + 9 NIs
			t.Fatalf("mesh switch actors = %d, want 18", r.ActorsSwitch)
		}
		if len(r.Splits) != 1 {
			t.Fatalf("splits = %+v", r.Splits)
		}
	})
	t.Run("ring", func(t *testing.T) {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		noc.BuildRing(clk, "r", 4, 4)
		if r := ratecheck.Check(s); len(r.Diags) != 0 {
			var b strings.Builder
			r.WriteTree(&b)
			t.Fatalf("ring:\n%s", b.String())
		}
	})
}

type rateMsg struct{ v uint64 }

func (m rateMsg) PackBits() bitvec.Vec { return bitvec.FromUint64(m.v, 40) }

// TestSerdesChainRateClean declares the matchlib serializer/deserializer
// pair as SDF actors (40-bit messages over 16-bit flits = 3 flits) and
// checks the balance equations accept the chain, with the link bound
// tightened by the 1-firing-per-3-cycles service.
func TestSerdesChainRateClean(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	ser := matchlib.NewSerializer[rateMsg](clk, "ser", 16).DeclareRates(clk, "ser", 3)
	des := matchlib.NewDeserializer(clk, "des", 40, func(b bitvec.Vec) rateMsg {
		return rateMsg{v: b.Uint64()}
	}).DeclareRates(clk, "des", 3)

	srcOut := connections.NewOut[rateMsg]()
	connections.Buffer(clk, "src", 2, srcOut, ser.In)
	connections.Buffer(clk, "link", 3, ser.Out, des.In)
	sinkIn := connections.NewIn[rateMsg]()
	connections.Buffer(clk, "sink", 2, des.Out, sinkIn)

	r := ratecheck.Check(s)
	if len(r.Diags) != 0 {
		var b strings.Builder
		r.WriteTree(&b)
		t.Fatalf("serdes chain:\n%s", b.String())
	}
	if r.ActorsSDF != 2 || r.RatedPorts != 4 {
		t.Fatalf("actors = %d, rated ports = %d", r.ActorsSDF, r.RatedPorts)
	}
	// Each firing moves 3 flits in 3 cycles: the link bound is 1.
	if b := r.ChannelBound("link"); b.Num != 1 || b.Den != 1 {
		t.Fatalf("link bound = %s", b)
	}
	// A 3-flit burst against 3-flit drain needs 3 + 3 - 3 = 3 slots.
	if d := r.ChannelMinDepth("link"); d != 3 {
		t.Fatalf("link min depth = %d, want 3", d)
	}
	// The message-side channels move 1 token per 3 cycles.
	if b := r.ChannelBound("src"); b.Num != 1 || b.Den != 3 {
		t.Fatalf("src bound = %s, want 1/3", b)
	}
}

// TestSerdesChainUnderBuffered shrinks the flit link below the burst
// size and expects the RATE-3 recommendation.
func TestSerdesChainUnderBuffered(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	ser := matchlib.NewSerializer[rateMsg](clk, "ser", 16).DeclareRates(clk, "ser", 3)
	des := matchlib.NewDeserializer(clk, "des", 40, func(b bitvec.Vec) rateMsg {
		return rateMsg{v: b.Uint64()}
	}).DeclareRates(clk, "des", 3)
	srcOut := connections.NewOut[rateMsg]()
	connections.Buffer(clk, "src", 2, srcOut, ser.In)
	connections.Buffer(clk, "link", 1, ser.Out, des.In)
	sinkIn := connections.NewIn[rateMsg]()
	connections.Buffer(clk, "sink", 2, des.Out, sinkIn)

	r := ratecheck.Check(s)
	dg := one(t, r, "RATE-3")
	if dg.Path != "link" || !strings.Contains(dg.Hint, "at least 3") {
		t.Fatalf("RATE-3 = %+v", dg)
	}
}

func TestRateFixtures(t *testing.T) {
	cfg := soc.DefaultConfig()
	fixtures := soc.RateFixtures()
	if len(fixtures) != 2 {
		t.Fatalf("RateFixtures = %d cases, want 2", len(fixtures))
	}
	byName := map[string]soc.TestCase{}
	for _, tc := range fixtures {
		byName[tc.Name] = tc
	}

	t.Run("badrate", func(t *testing.T) {
		s, run := byName["badrate"].Build(cfg)
		if err := run(s); err == nil {
			t.Fatal("fixture claims to be runnable")
		}
		r := ratecheck.Check(s.Sim)
		if r.Errors() != 1 || r.Warnings() != 1 {
			t.Fatalf("badrate: %d errors, %d warnings: %+v", r.Errors(), r.Warnings(), r.Diags)
		}
		if d := one(t, r, "RATE-1"); d.Path != "fixture/ba" {
			t.Fatalf("RATE-1 = %+v", d)
		}
		if d := one(t, r, "RATE-2"); d.Path != "fixture/fs" || !strings.Contains(d.Message, "flooded") {
			t.Fatalf("RATE-2 = %+v", d)
		}
	})
	t.Run("badbuf", func(t *testing.T) {
		s, _ := byName["badbuf"].Build(cfg)
		r := ratecheck.Check(s.Sim)
		if r.Errors() != 0 || r.Warnings() != 2 {
			t.Fatalf("badbuf: %d errors, %d warnings: %+v", r.Errors(), r.Warnings(), r.Diags)
		}
		if d := one(t, r, "RATE-3"); d.Path != "fixture/narrow" {
			t.Fatalf("RATE-3 = %+v", d)
		}
		if d := one(t, r, "RATE-4"); d.Path != "fixture/wide" {
			t.Fatalf("RATE-4 = %+v", d)
		}
	})

	// The fixtures must still be structurally clean — their hazards are
	// rate hazards, not lint hazards, so each pass finds only its own.
	for _, tc := range fixtures {
		s, _ := tc.Build(cfg)
		if lr := lint.Check(s.Sim); lr.Errors() != 0 {
			var b strings.Builder
			lr.WriteTree(&b)
			t.Errorf("%s fails lint:\n%s", tc.Name, b.String())
		}
	}
}
