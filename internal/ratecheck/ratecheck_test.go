package ratecheck_test

import (
	"strings"
	"testing"

	"repro/internal/connections"
	"repro/internal/gals"
	"repro/internal/hls"
	"repro/internal/lint"
	"repro/internal/ratecheck"
	"repro/internal/sim"
)

// one returns the single diagnostic with the given rule, failing the
// test when the count differs — the same helper lint's tests use.
func one(t *testing.T, r *ratecheck.Result, rule string) lint.Diag {
	t.Helper()
	var got []lint.Diag
	for _, d := range r.Diags {
		if d.Rule == rule {
			got = append(got, d)
		}
	}
	if len(got) != 1 {
		t.Fatalf("want exactly one %s diagnostic, got %d (all: %+v)", rule, len(got), r.Diags)
	}
	return got[0]
}

// pipe wires prod.out -> cons.in through a Buffer of the given depth and
// returns both ports for rating.
func pipe(clk *sim.Clock, name, prod, cons string, depth int) (*connections.Out[int], *connections.In[int]) {
	out := connections.NewOut[int]().Owned(clk, prod, "out")
	in := connections.NewIn[int]().Owned(clk, cons, "in")
	connections.Buffer(clk, name, depth, out, in)
	return out, in
}

func TestCleanWithoutDeclarations(t *testing.T) {
	// The opt-in contract: a design that declares nothing gets no
	// diagnostics and only default bounds.
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	pipe(clk, "ab", "a", "b", 2)

	r := ratecheck.Check(s)
	if len(r.Diags) != 0 {
		t.Fatalf("undeclared design diagnosed: %+v", r.Diags)
	}
	if r.TotalChannels != 1 || len(r.Channels) != 0 {
		t.Fatalf("channels: total %d, reported %d", r.TotalChannels, len(r.Channels))
	}
	if b := r.ChannelBound("ab"); b.Num != 1 || b.Den != 1 {
		t.Fatalf("default bound = %s, want 1", b)
	}
	if d := r.ChannelMinDepth("ab"); d != 1 {
		t.Fatalf("default min depth = %d, want 1", d)
	}
}

func TestRate1InconsistentCycle(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	d := s.Design()
	d.DeclareActor("a", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("b", sim.ActorSDF, clk, sim.Rat{})
	aOut := connections.NewOut[int]().Owned(clk, "a", "out").Rated(2, 1)
	bIn := connections.NewIn[int]().Owned(clk, "b", "in").Rated(1, 1)
	connections.Buffer(clk, "ab", 2, aOut, bIn)
	bOut := connections.NewOut[int]().Owned(clk, "b", "out").Rated(1, 1)
	aIn := connections.NewIn[int]().Owned(clk, "a", "in").Rated(1, 1)
	connections.Buffer(clk, "ba", 2, bOut, aIn)

	r := ratecheck.Check(s)
	dg := one(t, r, "RATE-1")
	if dg.Severity != lint.SevError || dg.Path != "ba" {
		t.Fatalf("RATE-1 = %+v", dg)
	}
	for _, want := range []string{"a", "b", "2"} {
		if !strings.Contains(dg.Message, want) {
			t.Errorf("RATE-1 message %q missing %q", dg.Message, want)
		}
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "RATE-1") {
		t.Fatalf("Err() = %v, want RATE-1", err)
	}
}

func TestRate1BalancedCycleClean(t *testing.T) {
	// Same loop, but the return channel declares the matching 1:2 rate:
	// b fires twice per a firing, popping one token each and returning
	// one every other firing. q = (1, 2) balances both channels.
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	d := s.Design()
	d.DeclareActor("a", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("b", sim.ActorSDF, clk, sim.Rat{})
	aOut := connections.NewOut[int]().Owned(clk, "a", "out").Rated(2, 1)
	bIn := connections.NewIn[int]().Owned(clk, "b", "in").Rated(1, 1)
	connections.Buffer(clk, "ab", 2, aOut, bIn)
	bOut := connections.NewOut[int]().Owned(clk, "b", "out").Rated(1, 2)
	aIn := connections.NewIn[int]().Owned(clk, "a", "in").Rated(1, 1)
	connections.Buffer(clk, "ba", 2, bOut, aIn)

	if r := ratecheck.Check(s); len(r.Diags) != 0 {
		t.Fatalf("balanced cycle diagnosed: %+v", r.Diags)
	}
}

func TestRate1SwitchActorBreaksRegion(t *testing.T) {
	// The same inconsistent loop, but b is a switch actor: no balance
	// equation may cross it, so the conflict vanishes by design.
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	d := s.Design()
	d.DeclareActor("a", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("b", sim.ActorSwitch, clk, sim.Rat{})
	aOut := connections.NewOut[int]().Owned(clk, "a", "out").Rated(2, 1)
	bIn := connections.NewIn[int]().Owned(clk, "b", "in").Rated(1, 1)
	connections.Buffer(clk, "ab", 2, aOut, bIn)
	bOut := connections.NewOut[int]().Owned(clk, "b", "out").Rated(1, 1)
	aIn := connections.NewIn[int]().Owned(clk, "a", "in").Rated(1, 1)
	connections.Buffer(clk, "ba", 2, bOut, aIn)

	r := ratecheck.Check(s)
	if len(r.Diags) != 0 {
		t.Fatalf("switch-broken region diagnosed: %+v", r.Diags)
	}
	if r.ActorsSDF != 1 || r.ActorsSwitch != 1 {
		t.Fatalf("actors = %d sdf + %d switch", r.ActorsSDF, r.ActorsSwitch)
	}
}

func TestRate2FloodedAndStarved(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	d := s.Design()
	// fast (1 firing/cycle) -> slow (1 firing / 2 cycles): flooded.
	d.DeclareActor("fast", sim.ActorSDF, clk, sim.NewRat(1, 1))
	d.DeclareActor("slow", sim.ActorSDF, clk, sim.NewRat(1, 2))
	fOut := connections.NewOut[int]().Owned(clk, "fast", "out").Rated(1, 1)
	sIn := connections.NewIn[int]().Owned(clk, "slow", "in").Rated(1, 1)
	connections.Buffer(clk, "fs", 2, fOut, sIn)
	// slow -> eager (1 firing/cycle): starved.
	sOut := connections.NewOut[int]().Owned(clk, "slow", "out").Rated(1, 1)
	d.DeclareActor("eager", sim.ActorSDF, clk, sim.NewRat(1, 1))
	eIn := connections.NewIn[int]().Owned(clk, "eager", "in").Rated(1, 1)
	connections.Buffer(clk, "se", 2, sOut, eIn)

	r := ratecheck.Check(s)
	if r.Errors() != 0 || r.Warnings() != 2 {
		t.Fatalf("want 2 warnings, got %d errors %d warnings: %+v", r.Errors(), r.Warnings(), r.Diags)
	}
	var flooded, starved lint.Diag
	for _, dg := range r.Diags {
		if strings.Contains(dg.Message, "flooded") {
			flooded = dg
		}
		if strings.Contains(dg.Message, "starved") {
			starved = dg
		}
	}
	if flooded.Path != "fs" || starved.Path != "se" {
		t.Fatalf("flooded at %q, starved at %q", flooded.Path, starved.Path)
	}
	// The flooded channel's bound is throttled by the slow consumer.
	if b := r.ChannelBound("fs"); b.Num != 1 || b.Den != 2 {
		t.Fatalf("fs bound = %s, want 1/2", b)
	}
}

func TestRate3UnderProvisionedBuffer(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, _ := pipe(clk, "narrow", "burst", "sink", 2)
	out.Rated(8, 1)

	r := ratecheck.Check(s)
	dg := one(t, r, "RATE-3")
	if dg.Severity != lint.SevWarning || dg.Path != "narrow" {
		t.Fatalf("RATE-3 = %+v", dg)
	}
	if !strings.Contains(dg.Hint, "at least 8") {
		t.Fatalf("RATE-3 hint %q should recommend the minimal depth", dg.Hint)
	}
	if d := r.ChannelMinDepth("narrow"); d != 8 {
		t.Fatalf("min depth = %d, want 8 (8 + 1 - gcd)", d)
	}
}

func TestRate3CrossingDepthOne(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 1000, 0)
	b := s.AddClock("b", 1300, 0)
	gals.NewBruteForceSyncFIFO[int](s, "x", a, b, 1)

	dg := one(t, ratecheck.Check(s), "RATE-3")
	if dg.Path != "x" || !strings.Contains(dg.Message, "round trip") {
		t.Fatalf("crossing RATE-3 = %+v", dg)
	}
}

func TestRate4OverProvisionedBuffer(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := pipe(clk, "wide", "src", "dst", 64)
	out.Rated(1, 1)
	in.Rated(1, 1)

	dg := one(t, ratecheck.Check(s), "RATE-4")
	if dg.Severity != lint.SevWarning || dg.Path != "wide" {
		t.Fatalf("RATE-4 = %+v", dg)
	}
}

func TestRate4SilentOnDefaults(t *testing.T) {
	// A deep buffer with undeclared rates is not a finding: the default
	// rate is an assumption, not a declaration worth warning about.
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	pipe(clk, "deep", "src", "dst", 64)

	if r := ratecheck.Check(s); len(r.Diags) != 0 {
		t.Fatalf("undeclared deep buffer diagnosed: %+v", r.Diags)
	}
}

func TestDomainAndCrossingBounds(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 1000, 0) // 1 ns
	b := s.AddClock("b", 2000, 0) // 2 ns
	d := s.Design()
	// A half-rate SDF producer in domain a tightens a's bound to 1/2.
	d.DeclareActor("p", sim.ActorSDF, a, sim.NewRat(1, 2))
	pOut := connections.NewOut[int]().Owned(a, "p", "out").Rated(1, 1)
	cIn := connections.NewIn[int]().Owned(a, "c", "in")
	connections.Buffer(a, "pc", 2, pOut, cIn)
	gals.NewPausibleBisyncFIFO[int](s, "x", a, b, 4, 40)
	pipe(b, "bb", "u", "v", 2)

	r := ratecheck.Check(s)
	if len(r.Domains) != 2 {
		t.Fatalf("domains = %+v", r.Domains)
	}
	da, db := r.Domains[0], r.Domains[1]
	if da.Clock != "a" || da.Bound.Num != 1 || da.Bound.Den != 2 {
		t.Fatalf("domain a = %+v", da)
	}
	// 1/2 token per 1000 ps cycle = 1/2 token per ns.
	if da.BoundNS.Num != 1 || da.BoundNS.Den != 2 {
		t.Fatalf("domain a per-ns = %s", da.BoundNS)
	}
	if db.Clock != "b" || db.Bound.Num != 1 || db.Bound.Den != 1 {
		t.Fatalf("domain b = %+v", db)
	}
	// Domain b: 1 token per 2000 ps cycle = 1/2 token per ns.
	if db.BoundNS.Num != 1 || db.BoundNS.Den != 2 {
		t.Fatalf("domain b per-ns = %s", db.BoundNS)
	}

	if len(r.Crossings) != 1 {
		t.Fatalf("crossings = %+v", r.Crossings)
	}
	x := r.Crossings[0]
	// One token per slow-side (2000 ps) cycle = 1/2 token per ns.
	if x.Name != "x" || x.Style != "pausible" || x.BoundNS.Num != 1 || x.BoundNS.Den != 2 {
		t.Fatalf("crossing = %+v", x)
	}
	if r.EndToEnd == nil || r.EndToEnd.Num != 1 || r.EndToEnd.Den != 2 {
		t.Fatalf("end-to-end = %v", r.EndToEnd)
	}
}

func TestSplitsAdvisoryOnly(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	d := s.Design()
	d.DeclareActor("r", sim.ActorSwitch, clk, sim.Rat{})
	d.DeclareSplit("r", "out[0]", sim.NewRat(1, 4))
	out := connections.NewOut[int]().Owned(clk, "r", "out[0]")
	in := connections.NewIn[int]().Owned(clk, "c", "in")
	connections.Buffer(clk, "rc", 2, out, in)

	r := ratecheck.Check(s)
	if len(r.Splits) != 1 || r.Splits[0].Ratio.Num != 1 || r.Splits[0].Ratio.Den != 4 {
		t.Fatalf("splits = %+v", r.Splits)
	}
	// Advisory: the channel keeps the hardware bound of 1, not 1/4.
	if b := r.ChannelBound("rc"); b.Num != 1 || b.Den != 1 {
		t.Fatalf("split tightened the bound to %s", b)
	}
}

func TestWriteTreeGolden(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, _ := pipe(clk, "soc/narrow", "soc/burst", "soc/sink", 2)
	out.Rated(4, 1)

	var b strings.Builder
	ratecheck.Check(s).WriteTree(&b)
	want := `soc
  narrow
    RATE-3 warning = capacity 2 is below the minimal depth 4 for rates 4 -> 1 (one firing bursts more than the buffer holds)
      hint: resize the FIFO to at least 4, or lower the producer burst
channels:
  soc/narrow: cap 2 (min 4), <= 1 tok/cycle on clk
domains:
  clk (1000 ps): 1 channels, <= 1 tok/cycle (<= 1 tok/ns)
rateck: 1 channels (1 reported), 0 sdf + 0 switch actors, 1 rated ports, 0 crossings: 0 errors, 1 warnings
`
	if b.String() != want {
		t.Fatalf("tree output:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteJSONStable(t *testing.T) {
	build := func() *ratecheck.Result {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		out, in := pipe(clk, "wide", "src", "dst", 64)
		out.Rated(1, 1)
		in.Rated(1, 1)
		return ratecheck.Check(s)
	}
	var b1, b2 strings.Builder
	if err := build().WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatal("JSON output is not byte-stable across identical builds")
	}
	for _, want := range []string{`"rule": "RATE-4"`, `"warnings": 1`, `"summary"`, `"num"`, `"den"`} {
		if !strings.Contains(b1.String(), want) {
			t.Errorf("JSON dump missing %s:\n%s", want, b1.String())
		}
	}
}

func TestCheckHLSRates(t *testing.T) {
	d := hls.MACDesign(16)
	d.DeclareRate("a", 1, 1).DeclareRate("nope", 1, 1).DeclareRate("a", 2, 1)
	d.DeclareRate("b", 0, 1)

	r := ratecheck.CheckHLS(d)
	if r.Errors() != 3 {
		t.Fatalf("errors = %d, want 3 (unknown, duplicate, non-positive): %+v", r.Errors(), r.Diags)
	}
	if r.RatedPorts != 1 || len(r.Channels) != 1 {
		t.Fatalf("rated = %d, channels = %+v", r.RatedPorts, r.Channels)
	}
	if c := r.Channels[0]; c.Name != d.Name+".a" || c.Bound.Num != 1 {
		t.Fatalf("channel = %+v", c)
	}
}

func TestCheckHLSClean(t *testing.T) {
	d := hls.MACDesign(16)
	d.DeclareRate("a", 1, 1).DeclareRate("b", 1, 1)
	if r := ratecheck.CheckHLS(d); len(r.Diags) != 0 {
		t.Fatalf("clean annotations diagnosed: %+v", r.Diags)
	}
}
