package ratecheck

import (
	"fmt"

	"repro/internal/hls"
	"repro/internal/lint"
	"repro/internal/sim"
)

// CheckHLS validates a captured dataflow design's rate annotations — the
// front-end sibling of Check, gating the HLS flow the way lint.CheckHLS
// gates structure:
//
//	RATE-5  annotation names an unknown port, is non-positive, or
//	        duplicates an earlier annotation for the same port (error)
//
// Valid annotations become port-level throughput bounds: the pipelined
// schedules this flow produces initiate one firing per cycle (II = 1),
// so each annotated port is reported with its declared rate as the
// steady-state tokens-per-cycle bound.
func CheckHLS(d *hls.Design) *Result {
	r := &Result{}
	known := map[string]bool{}
	for _, ports := range [][]*hls.Op{d.Inputs, d.Outputs} {
		for _, p := range ports {
			known[p.Name] = true
		}
	}
	seen := map[string]bool{}
	for _, a := range d.Rates {
		switch {
		case !known[a.Port]:
			r.add(lint.Diag{
				Rule: "RATE-5", Severity: lint.SevError, Path: d.Name,
				Message: fmt.Sprintf("rate annotation names port %q, which the design does not declare", a.Port),
			})
			continue
		case a.Num <= 0 || a.Den <= 0:
			r.add(lint.Diag{
				Rule: "RATE-5", Severity: lint.SevError, Path: d.Name,
				Message: fmt.Sprintf("rate annotation for port %q is %d/%d; rates must be positive rationals", a.Port, a.Num, a.Den),
			})
			continue
		case seen[a.Port]:
			r.add(lint.Diag{
				Rule: "RATE-5", Severity: lint.SevError, Path: d.Name,
				Message: fmt.Sprintf("port %q carries two rate annotations", a.Port),
			})
			continue
		}
		seen[a.Port] = true
		r.RatedPorts++
		r.Channels = append(r.Channels, ChannelReport{
			Name:     d.Name + "." + a.Port,
			Capacity: 1, MinDepth: 1,
			Bound: sim.NewRat(a.Num, a.Den),
		})
	}
	sortDiags(r.Diags)
	return r
}
