package rtl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// CellKind enumerates the standard cells of the technology library.
type CellKind int

// Standard cells.
const (
	INV CellKind = iota
	BUF
	NAND2
	NOR2
	AND2
	OR2
	XOR2
	XNOR2
	MUX2 // inputs: sel, a (sel=1), b (sel=0)
	DFF  // input: D; output: Q
	TIE0
	TIE1
	numCellKinds
)

var cellNames = [...]string{
	INV: "INV", BUF: "BUF", NAND2: "NAND2", NOR2: "NOR2", AND2: "AND2",
	OR2: "OR2", XOR2: "XOR2", XNOR2: "XNOR2", MUX2: "MUX2", DFF: "DFF",
	TIE0: "TIE0", TIE1: "TIE1",
}

func (k CellKind) String() string { return cellNames[k] }

// NumInputs returns the input count of a cell kind.
func (k CellKind) NumInputs() int {
	switch k {
	case INV, BUF, DFF:
		return 1
	case MUX2:
		return 3
	case TIE0, TIE1:
		return 0
	default:
		return 2
	}
}

// Net identifies a single-bit signal.
type Net int

// Cell is one standard-cell instance.
type Cell struct {
	Kind CellKind
	Out  Net
	In   []Net
}

// PortBit names one bit of a module port.
type PortBit struct {
	Name string // port name
	Bit  int    // bit index within the port
	Net  Net
}

// Netlist is a mapped gate-level module.
type Netlist struct {
	Name    string
	NumNets int
	Inputs  []PortBit
	Outputs []PortBit
	Cells   []Cell // combinational cells (every kind but DFF)
	DFFs    []Cell
}

// NewNet allocates a fresh net.
func (n *Netlist) NewNet() Net {
	id := Net(n.NumNets)
	n.NumNets++
	return id
}

// AddCell appends a combinational cell (or a DFF to the register bank)
// and returns its output net.
func (n *Netlist) AddCell(kind CellKind, in ...Net) Net {
	if len(in) != kind.NumInputs() {
		panic(fmt.Sprintf("rtl: %v expects %d inputs, got %d", kind, kind.NumInputs(), len(in)))
	}
	out := n.NewNet()
	c := Cell{Kind: kind, Out: out, In: in}
	if kind == DFF {
		n.DFFs = append(n.DFFs, c)
	} else {
		n.Cells = append(n.Cells, c)
	}
	return out
}

// CellCount returns combinational cell and flop counts.
func (n *Netlist) CellCount() (comb, flops int) { return len(n.Cells), len(n.DFFs) }

// Levelize returns the combinational cells in topological order: a cell
// appears after every cell driving one of its inputs. DFF outputs, tie
// cells and input ports are sources. It panics on a combinational loop.
func (n *Netlist) Levelize() []Cell {
	driver := make(map[Net]int, len(n.Cells)) // net -> cell index
	for i, c := range n.Cells {
		driver[c.Out] = i
	}
	order := make([]Cell, 0, len(n.Cells))
	state := make([]int8, len(n.Cells)) // 0 unvisited, 1 visiting, 2 done
	var visit func(i int)
	visit = func(i int) {
		switch state[i] {
		case 1:
			panic(fmt.Sprintf("rtl: combinational loop through cell %d in %s", i, n.Name))
		case 2:
			return
		}
		state[i] = 1
		for _, in := range n.Cells[i].In {
			if j, ok := driver[in]; ok {
				visit(j)
			}
		}
		state[i] = 2
		order = append(order, n.Cells[i])
	}
	for i := range n.Cells {
		visit(i)
	}
	return order
}

// Simulator evaluates a netlist cycle by cycle.
type Simulator struct {
	n       *Netlist
	order   []Cell
	vals    []bool
	inNets  map[string][]Net // port name -> bit nets
	outNets map[string][]Net

	// Toggles counts output-net transitions per cycle, the switching
	// activity consumed by the power model.
	Toggles uint64
	Cycles  uint64

	vcd     *trace.VCD
	vcdSigs map[string]*trace.Signal
}

// NewSimulator levelizes and prepares the netlist.
func NewSimulator(n *Netlist) *Simulator {
	s := &Simulator{
		n:       n,
		order:   n.Levelize(),
		vals:    make([]bool, n.NumNets),
		inNets:  map[string][]Net{},
		outNets: map[string][]Net{},
	}
	collect := func(ports []PortBit, into map[string][]Net) {
		for _, p := range ports {
			bits := into[p.Name]
			for len(bits) <= p.Bit {
				bits = append(bits, -1)
			}
			bits[p.Bit] = p.Net
			into[p.Name] = bits
		}
	}
	collect(n.Inputs, s.inNets)
	collect(n.Outputs, s.outNets)
	return s
}

func (s *Simulator) eval(c Cell) bool {
	v := s.vals
	switch c.Kind {
	case INV:
		return !v[c.In[0]]
	case BUF:
		return v[c.In[0]]
	case NAND2:
		return !(v[c.In[0]] && v[c.In[1]])
	case NOR2:
		return !(v[c.In[0]] || v[c.In[1]])
	case AND2:
		return v[c.In[0]] && v[c.In[1]]
	case OR2:
		return v[c.In[0]] || v[c.In[1]]
	case XOR2:
		return v[c.In[0]] != v[c.In[1]]
	case XNOR2:
		return v[c.In[0]] == v[c.In[1]]
	case MUX2:
		if v[c.In[0]] {
			return v[c.In[1]]
		}
		return v[c.In[2]]
	case TIE0:
		return false
	case TIE1:
		return true
	default:
		panic(fmt.Sprintf("rtl: cannot evaluate %v", c.Kind))
	}
}

// AttachVCD declares the netlist's ports on v and samples them after
// every Step, using the cycle count as the timestamp. Call before the
// first Step.
func (s *Simulator) AttachVCD(v *trace.VCD) {
	s.vcd = v
	s.vcdSigs = map[string]*trace.Signal{}
	for name, bits := range s.inNets {
		s.vcdSigs[name] = v.Declare(name, len(bits))
	}
	for name, bits := range s.outNets {
		s.vcdSigs["out."+name] = v.Declare(name+"_o", len(bits))
	}
}

// Step applies the input words, settles combinational logic, captures the
// outputs, and clocks the flops — one cycle.
func (s *Simulator) Step(inputs map[string]uint64) map[string]uint64 {
	for name, bits := range s.inNets {
		w := inputs[name]
		for i, net := range bits {
			s.vals[net] = w>>uint(i)&1 == 1
		}
	}
	for _, c := range s.order {
		nv := s.eval(c)
		if nv != s.vals[c.Out] {
			s.Toggles++
		}
		s.vals[c.Out] = nv
	}
	out := make(map[string]uint64, len(s.outNets))
	for name, bits := range s.outNets {
		var w uint64
		for i, net := range bits {
			if s.vals[net] {
				w |= 1 << uint(i)
			}
		}
		out[name] = w
	}
	// Rising edge: flops capture D.
	next := make([]bool, len(s.n.DFFs))
	for i, d := range s.n.DFFs {
		next[i] = s.vals[d.In[0]]
	}
	for i, d := range s.n.DFFs {
		if s.vals[d.Out] != next[i] {
			s.Toggles++
		}
		s.vals[d.Out] = next[i]
	}
	if s.vcd != nil {
		for name := range s.inNets {
			s.vcdSigs[name].Set(inputs[name])
		}
		for name := range s.outNets {
			s.vcdSigs["out."+name].Set(out[name])
		}
		s.vcd.Sample(s.Cycles)
	}
	s.Cycles++
	return out
}

// Verilog renders the netlist as structural Verilog-2001.
func (n *Netlist) Verilog() string {
	var sb strings.Builder
	portNames := map[string]bool{}
	var ports []string
	widths := map[string]int{}
	dir := map[string]string{}
	for _, p := range n.Inputs {
		if !portNames[p.Name] {
			portNames[p.Name] = true
			ports = append(ports, p.Name)
			dir[p.Name] = "input"
		}
		if p.Bit+1 > widths[p.Name] {
			widths[p.Name] = p.Bit + 1
		}
	}
	for _, p := range n.Outputs {
		if !portNames[p.Name] {
			portNames[p.Name] = true
			ports = append(ports, p.Name)
			dir[p.Name] = "output"
		}
		if p.Bit+1 > widths[p.Name] {
			widths[p.Name] = p.Bit + 1
		}
	}
	sort.Strings(ports)
	fmt.Fprintf(&sb, "module %s(clk, %s);\n", n.Name, strings.Join(ports, ", "))
	sb.WriteString("  input clk;\n")
	for _, p := range ports {
		if widths[p] > 1 {
			fmt.Fprintf(&sb, "  %s [%d:0] %s;\n", dir[p], widths[p]-1, p)
		} else {
			fmt.Fprintf(&sb, "  %s %s;\n", dir[p], p)
		}
	}
	fmt.Fprintf(&sb, "  wire [%d:0] n;\n", n.NumNets-1)
	for _, p := range n.Inputs {
		fmt.Fprintf(&sb, "  assign n[%d] = %s[%d];\n", p.Net, p.Name, p.Bit)
	}
	for i, c := range n.Cells {
		switch c.Kind {
		case TIE0:
			fmt.Fprintf(&sb, "  assign n[%d] = 1'b0;\n", c.Out)
		case TIE1:
			fmt.Fprintf(&sb, "  assign n[%d] = 1'b1;\n", c.Out)
		case INV:
			fmt.Fprintf(&sb, "  not g%d(n[%d], n[%d]);\n", i, c.Out, c.In[0])
		case BUF:
			fmt.Fprintf(&sb, "  buf g%d(n[%d], n[%d]);\n", i, c.Out, c.In[0])
		case NAND2:
			fmt.Fprintf(&sb, "  nand g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case NOR2:
			fmt.Fprintf(&sb, "  nor g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case AND2:
			fmt.Fprintf(&sb, "  and g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case OR2:
			fmt.Fprintf(&sb, "  or g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case XOR2:
			fmt.Fprintf(&sb, "  xor g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case XNOR2:
			fmt.Fprintf(&sb, "  xnor g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case MUX2:
			fmt.Fprintf(&sb, "  assign n[%d] = n[%d] ? n[%d] : n[%d];\n", c.Out, c.In[0], c.In[1], c.In[2])
		}
	}
	if len(n.DFFs) > 0 {
		// Flop outputs live in a separate reg vector bridged onto the
		// wire vector, keeping the netlist pure structural Verilog.
		fmt.Fprintf(&sb, "  reg [%d:0] r;\n", len(n.DFFs)-1)
		var regs []string
		for i, d := range n.DFFs {
			fmt.Fprintf(&sb, "  assign n[%d] = r[%d];\n", d.Out, i)
			regs = append(regs, fmt.Sprintf("r[%d] <= n[%d];", i, d.In[0]))
		}
		fmt.Fprintf(&sb, "  always @(posedge clk) begin %s end\n", strings.Join(regs, " "))
	}
	for _, p := range n.Outputs {
		fmt.Fprintf(&sb, "  assign %s[%d] = n[%d];\n", p.Name, p.Bit, p.Net)
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}
