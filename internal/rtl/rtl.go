package rtl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
)

// CellKind enumerates the standard cells of the technology library.
type CellKind int

// Standard cells.
const (
	INV CellKind = iota
	BUF
	NAND2
	NOR2
	AND2
	OR2
	XOR2
	XNOR2
	MUX2 // inputs: sel, a (sel=1), b (sel=0)
	DFF  // input: D; output: Q
	TIE0
	TIE1
	numCellKinds
)

var cellNames = [...]string{
	INV: "INV", BUF: "BUF", NAND2: "NAND2", NOR2: "NOR2", AND2: "AND2",
	OR2: "OR2", XOR2: "XOR2", XNOR2: "XNOR2", MUX2: "MUX2", DFF: "DFF",
	TIE0: "TIE0", TIE1: "TIE1",
}

func (k CellKind) String() string { return cellNames[k] }

// NumInputs returns the input count of a cell kind.
func (k CellKind) NumInputs() int {
	switch k {
	case INV, BUF, DFF:
		return 1
	case MUX2:
		return 3
	case TIE0, TIE1:
		return 0
	default:
		return 2
	}
}

// Net identifies a single-bit signal.
type Net int

// Cell is one standard-cell instance.
type Cell struct {
	Kind CellKind
	Out  Net
	In   []Net
}

// PortBit names one bit of a module port.
type PortBit struct {
	Name string // port name
	Bit  int    // bit index within the port
	Net  Net
}

// Netlist is a mapped gate-level module.
type Netlist struct {
	Name    string
	NumNets int
	Inputs  []PortBit
	Outputs []PortBit
	Cells   []Cell // combinational cells (every kind but DFF)
	DFFs    []Cell
}

// NewNet allocates a fresh net.
func (n *Netlist) NewNet() Net {
	id := Net(n.NumNets)
	n.NumNets++
	return id
}

// AddCell appends a combinational cell (or a DFF to the register bank)
// and returns its output net.
func (n *Netlist) AddCell(kind CellKind, in ...Net) Net {
	if len(in) != kind.NumInputs() {
		panic(fmt.Sprintf("rtl: %v expects %d inputs, got %d", kind, kind.NumInputs(), len(in)))
	}
	out := n.NewNet()
	c := Cell{Kind: kind, Out: out, In: in}
	if kind == DFF {
		n.DFFs = append(n.DFFs, c)
	} else {
		n.Cells = append(n.Cells, c)
	}
	return out
}

// CellCount returns combinational cell and flop counts.
func (n *Netlist) CellCount() (comb, flops int) { return len(n.Cells), len(n.DFFs) }

// LoopError reports a combinational cycle as the path of cells it runs
// through, each rendered as KIND#index(n<out>); the first entry repeats
// at the end to close the cycle.
type LoopError struct {
	Module string
	Path   []string
}

func (e *LoopError) Error() string {
	return fmt.Sprintf("rtl: combinational loop in %s: %s", e.Module, strings.Join(e.Path, " -> "))
}

func (n *Netlist) cellDesc(i int) string {
	c := n.Cells[i]
	return fmt.Sprintf("%v#%d(n%d)", c.Kind, i, c.Out)
}

// levelizeIndices returns the indices of n.Cells in topological order
// (every driver before its loads) using an iterative depth-first
// worklist, so arbitrarily deep netlists cannot overflow the goroutine
// stack the way the former recursive walk could.
func (n *Netlist) levelizeIndices() ([]int, *LoopError) {
	driver := make(map[Net]int, len(n.Cells)) // net -> cell index
	for i, c := range n.Cells {
		driver[c.Out] = i
	}
	order := make([]int, 0, len(n.Cells))
	state := make([]int8, len(n.Cells)) // 0 unvisited, 1 visiting, 2 done
	type frame struct {
		cell int
		next int // next input index to explore
	}
	var stack []frame
	for root := range n.Cells {
		if state[root] != 0 {
			continue
		}
		state[root] = 1
		stack = append(stack[:0], frame{cell: root})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(n.Cells[f.cell].In) {
				in := n.Cells[f.cell].In[f.next]
				f.next++
				j, ok := driver[in]
				if !ok {
					continue // source: input port, DFF output, or floating net
				}
				switch state[j] {
				case 0:
					state[j] = 1
					stack = append(stack, frame{cell: j})
				case 1:
					// j is on the stack: the cycle runs from its frame to
					// the top and back.
					start := 0
					for k := range stack {
						if stack[k].cell == j {
							start = k
							break
						}
					}
					path := make([]string, 0, len(stack)-start+1)
					for _, fr := range stack[start:] {
						path = append(path, n.cellDesc(fr.cell))
					}
					path = append(path, n.cellDesc(j))
					return nil, &LoopError{Module: n.Name, Path: path}
				}
			} else {
				state[f.cell] = 2
				order = append(order, f.cell)
				stack = stack[:len(stack)-1]
			}
		}
	}
	return order, nil
}

// LevelizeChecked returns the combinational cells in topological order:
// a cell appears after every cell driving one of its inputs. DFF
// outputs, tie cells and input ports are sources. A combinational loop
// is reported as a *LoopError naming the cycle path.
func (n *Netlist) LevelizeChecked() ([]Cell, error) {
	idx, lerr := n.levelizeIndices()
	if lerr != nil {
		return nil, lerr
	}
	order := make([]Cell, len(idx))
	for i, j := range idx {
		order[i] = n.Cells[j]
	}
	return order, nil
}

// Levelize is LevelizeChecked for call sites that treat a loop as a
// programming error: it panics with the *LoopError.
func (n *Netlist) Levelize() []Cell {
	order, err := n.LevelizeChecked()
	if err != nil {
		panic(err)
	}
	return order
}

// Port describes one named port of a simulated netlist: Bits[i] is the
// net behind bit i. Ports returned by the Simulator are sorted by name,
// the order of the StepWords word slices and of VCD declarations.
type Port struct {
	Name string
	Bits []Net
}

// PortCoverageError reports a port whose bit vector cannot be simulated:
// a bit with no net, two PortBits claiming the same bit, a net outside
// the netlist, or a port wider than the 64-bit word the simulator packs
// it into.
type PortCoverageError struct {
	Module string
	Dir    string // "input" or "output"
	Port   string
	Bit    int
	Width  int
	Reason string
}

func (e *PortCoverageError) Error() string {
	return fmt.Sprintf("rtl: %s: %s port %s[%d] of width %d: %s",
		e.Module, e.Dir, e.Port, e.Bit, e.Width, e.Reason)
}

// collectPorts groups PortBits into name-sorted Ports, validating full
// bit coverage so a sparse port surfaces as an error at construction
// instead of a negative-index panic mid-Step.
func collectPorts(n *Netlist, ports []PortBit, dir string) ([]Port, error) {
	var names []string
	width := map[string]int{}
	for _, p := range ports {
		if _, ok := width[p.Name]; !ok {
			names = append(names, p.Name)
		}
		if p.Bit+1 > width[p.Name] {
			width[p.Name] = p.Bit + 1
		}
	}
	sort.Strings(names)
	out := make([]Port, 0, len(names))
	for _, name := range names {
		w := width[name]
		perr := func(bit int, reason string) error {
			return &PortCoverageError{Module: n.Name, Dir: dir, Port: name, Bit: bit, Width: w, Reason: reason}
		}
		if w > 64 {
			return nil, perr(w-1, "wider than the 64-bit simulator word")
		}
		bits := make([]Net, w)
		for i := range bits {
			bits[i] = -1
		}
		for _, p := range ports {
			if p.Name != name {
				continue
			}
			if p.Bit < 0 {
				return nil, perr(p.Bit, "negative bit index")
			}
			if bits[p.Bit] != -1 {
				return nil, perr(p.Bit, "bit bound to two nets")
			}
			if p.Net < 0 || int(p.Net) >= n.NumNets {
				return nil, perr(p.Bit, fmt.Sprintf("net n%d outside the netlist", p.Net))
			}
			bits[p.Bit] = p.Net
		}
		for i, net := range bits {
			if net == -1 {
				return nil, perr(i, "bit has no net (sparse port)")
			}
		}
		out = append(out, Port{Name: name, Bits: bits})
	}
	return out, nil
}

// validateCells rejects netlists the evaluators cannot execute safely:
// out-of-range nets, wrong arity, or register cells filed on the wrong
// bank.
func validateCells(n *Netlist) error {
	check := func(c Cell, i int, bank string) error {
		if c.Kind < 0 || c.Kind >= numCellKinds {
			return fmt.Errorf("rtl: %s: %s cell %d has unknown kind %d", n.Name, bank, i, int(c.Kind))
		}
		if len(c.In) != c.Kind.NumInputs() {
			return fmt.Errorf("rtl: %s: %s cell %d (%v) has %d inputs, want %d",
				n.Name, bank, i, c.Kind, len(c.In), c.Kind.NumInputs())
		}
		nets := append([]Net{c.Out}, c.In...)
		for _, net := range nets {
			if net < 0 || int(net) >= n.NumNets {
				return fmt.Errorf("rtl: %s: %s cell %d (%v) references net n%d outside the netlist",
					n.Name, bank, i, c.Kind, net)
			}
		}
		return nil
	}
	for i, c := range n.Cells {
		if c.Kind == DFF {
			return fmt.Errorf("rtl: %s: cell %d is a DFF outside the register bank", n.Name, i)
		}
		if err := check(c, i, "comb"); err != nil {
			return err
		}
	}
	for i, c := range n.DFFs {
		if c.Kind != DFF {
			return fmt.Errorf("rtl: %s: register bank cell %d is a %v, not a DFF", n.Name, i, c.Kind)
		}
		if err := check(c, i, "dff"); err != nil {
			return err
		}
	}
	return nil
}

// Backend selects the evaluation engine behind a Simulator.
type Backend int

const (
	// BackendAuto compiles the netlist when its shape allows it and
	// falls back to the interpreter otherwise — the default.
	BackendAuto Backend = iota
	// BackendInterp forces the reference cell-by-cell interpreter.
	BackendInterp
	// BackendCompiled forces the compiled word-level program; netlists
	// the compiler cannot handle return its error.
	BackendCompiled
)

// Simulator evaluates a netlist cycle by cycle. Two backends share one
// contract: the compiled word-level program (see compile.go) when the
// netlist shape allows it, and the reference interpreter otherwise.
// Outputs, Toggles, Cycles and VCD bytes are bit-identical between them.
type Simulator struct {
	n        *Netlist
	inPorts  []Port // sorted by name
	outPorts []Port

	// Interpreter backend state.
	order []Cell
	vals  []bool
	next  []bool // DFF capture scratch

	// Compiled backend; nil when interpreting.
	prog *program

	// Toggles counts driven-net transitions per cycle, the switching
	// activity consumed by the power model.
	Toggles uint64
	Cycles  uint64

	inBuf, outBuf []uint64 // scratch for the map-based Step

	vcd    *trace.VCD
	vcdIn  []*trace.Signal // parallel to inPorts
	vcdOut []*trace.Signal // parallel to outPorts
}

// NewSimulator levelizes, validates and prepares the netlist, selecting
// the compiled backend automatically when the netlist supports it. It
// returns a *PortCoverageError for sparse or malformed ports and a
// *LoopError for combinational cycles.
func NewSimulator(n *Netlist) (*Simulator, error) {
	return NewSimulatorBackend(n, BackendAuto)
}

// NewSimulatorBackend is NewSimulator with an explicit backend choice,
// the hook the differential tests and benchmarks use.
func NewSimulatorBackend(n *Netlist, b Backend) (*Simulator, error) {
	if err := validateCells(n); err != nil {
		return nil, err
	}
	inPorts, err := collectPorts(n, n.Inputs, "input")
	if err != nil {
		return nil, err
	}
	outPorts, err := collectPorts(n, n.Outputs, "output")
	if err != nil {
		return nil, err
	}
	order, err := n.LevelizeChecked()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		n:        n,
		inPorts:  inPorts,
		outPorts: outPorts,
		order:    order,
		vals:     make([]bool, n.NumNets),
		next:     make([]bool, len(n.DFFs)),
		inBuf:    make([]uint64, len(inPorts)),
		outBuf:   make([]uint64, len(outPorts)),
	}
	if b != BackendInterp {
		prog, cerr := compile(n, order, inPorts, outPorts)
		if cerr != nil && b == BackendCompiled {
			return nil, cerr
		}
		s.prog = prog // nil on fallback
	}
	return s, nil
}

// Backend reports the selected engine: "compiled" or "interp".
func (s *Simulator) Backend() string {
	if s.prog != nil {
		return "compiled"
	}
	return "interp"
}

// InputPorts returns the input ports in StepWords order (sorted by name).
func (s *Simulator) InputPorts() []Port { return s.inPorts }

// OutputPorts returns the output ports in StepWords order (sorted by name).
func (s *Simulator) OutputPorts() []Port { return s.outPorts }

func (s *Simulator) eval(c Cell) bool {
	v := s.vals
	switch c.Kind {
	case INV:
		return !v[c.In[0]]
	case BUF:
		return v[c.In[0]]
	case NAND2:
		return !(v[c.In[0]] && v[c.In[1]])
	case NOR2:
		return !(v[c.In[0]] || v[c.In[1]])
	case AND2:
		return v[c.In[0]] && v[c.In[1]]
	case OR2:
		return v[c.In[0]] || v[c.In[1]]
	case XOR2:
		return v[c.In[0]] != v[c.In[1]]
	case XNOR2:
		return v[c.In[0]] == v[c.In[1]]
	case MUX2:
		if v[c.In[0]] {
			return v[c.In[1]]
		}
		return v[c.In[2]]
	case TIE0:
		return false
	case TIE1:
		return true
	default:
		panic(fmt.Sprintf("rtl: cannot evaluate %v", c.Kind))
	}
}

// AttachVCD declares the netlist's ports on v and samples them after
// every Step. Declaration order is the sorted port order (inputs first,
// then outputs), so VCD bytes are identical run to run. Call before the
// first Step.
func (s *Simulator) AttachVCD(v *trace.VCD) {
	s.vcd = v
	s.vcdIn = s.vcdIn[:0]
	s.vcdOut = s.vcdOut[:0]
	for _, p := range s.inPorts {
		s.vcdIn = append(s.vcdIn, v.Declare(p.Name, len(p.Bits)))
	}
	for _, p := range s.outPorts {
		s.vcdOut = append(s.vcdOut, v.Declare(p.Name+"_o", len(p.Bits)))
	}
}

// StepWords is the allocation-free hot path: one cycle with ports passed
// as word slices in InputPorts/OutputPorts order. out may be nil when
// the caller only wants state advanced (activity counting); otherwise it
// must have len(OutputPorts()) and is filled with the settled outputs.
func (s *Simulator) StepWords(in, out []uint64) {
	if out == nil {
		out = s.outBuf
	}
	if s.prog != nil {
		s.Toggles += s.prog.step(in, out)
	} else {
		s.interpStep(in, out)
	}
	if s.vcd != nil {
		for i := range s.vcdIn {
			s.vcdIn[i].Set(in[i])
		}
		for i := range s.vcdOut {
			s.vcdOut[i].Set(out[i])
		}
		s.vcd.Sample(s.Cycles)
	}
	s.Cycles++
}

// Step applies the input words by port name, settles combinational
// logic, captures the outputs, and clocks the flops — one cycle. Ports
// absent from inputs read as zero.
func (s *Simulator) Step(inputs map[string]uint64) map[string]uint64 {
	for i := range s.inPorts {
		s.inBuf[i] = inputs[s.inPorts[i].Name]
	}
	s.StepWords(s.inBuf, s.outBuf)
	out := make(map[string]uint64, len(s.outPorts))
	for i := range s.outPorts {
		out[s.outPorts[i].Name] = s.outBuf[i]
	}
	return out
}

// interpStep is the reference backend: evaluate the levelized cells one
// by one over a []bool net image.
func (s *Simulator) interpStep(in, out []uint64) {
	for pi := range s.inPorts {
		w := in[pi]
		for i, net := range s.inPorts[pi].Bits {
			s.vals[net] = w>>uint(i)&1 == 1
		}
	}
	for _, c := range s.order {
		nv := s.eval(c)
		if nv != s.vals[c.Out] {
			s.Toggles++
		}
		s.vals[c.Out] = nv
	}
	for pi := range s.outPorts {
		var w uint64
		for i, net := range s.outPorts[pi].Bits {
			if s.vals[net] {
				w |= 1 << uint(i)
			}
		}
		out[pi] = w
	}
	// Rising edge: flops capture D.
	for i, d := range s.n.DFFs {
		s.next[i] = s.vals[d.In[0]]
	}
	for i, d := range s.n.DFFs {
		if s.vals[d.Out] != s.next[i] {
			s.Toggles++
		}
		s.vals[d.Out] = s.next[i]
	}
}

// Verilog renders the netlist as structural Verilog-2001.
func (n *Netlist) Verilog() string {
	var sb strings.Builder
	portNames := map[string]bool{}
	var ports []string
	widths := map[string]int{}
	dir := map[string]string{}
	for _, p := range n.Inputs {
		if !portNames[p.Name] {
			portNames[p.Name] = true
			ports = append(ports, p.Name)
			dir[p.Name] = "input"
		}
		if p.Bit+1 > widths[p.Name] {
			widths[p.Name] = p.Bit + 1
		}
	}
	for _, p := range n.Outputs {
		if !portNames[p.Name] {
			portNames[p.Name] = true
			ports = append(ports, p.Name)
			dir[p.Name] = "output"
		}
		if p.Bit+1 > widths[p.Name] {
			widths[p.Name] = p.Bit + 1
		}
	}
	sort.Strings(ports)
	fmt.Fprintf(&sb, "module %s(clk, %s);\n", n.Name, strings.Join(ports, ", "))
	sb.WriteString("  input clk;\n")
	for _, p := range ports {
		if widths[p] > 1 {
			fmt.Fprintf(&sb, "  %s [%d:0] %s;\n", dir[p], widths[p]-1, p)
		} else {
			fmt.Fprintf(&sb, "  %s %s;\n", dir[p], p)
		}
	}
	fmt.Fprintf(&sb, "  wire [%d:0] n;\n", n.NumNets-1)
	for _, p := range n.Inputs {
		fmt.Fprintf(&sb, "  assign n[%d] = %s[%d];\n", p.Net, p.Name, p.Bit)
	}
	for i, c := range n.Cells {
		switch c.Kind {
		case TIE0:
			fmt.Fprintf(&sb, "  assign n[%d] = 1'b0;\n", c.Out)
		case TIE1:
			fmt.Fprintf(&sb, "  assign n[%d] = 1'b1;\n", c.Out)
		case INV:
			fmt.Fprintf(&sb, "  not g%d(n[%d], n[%d]);\n", i, c.Out, c.In[0])
		case BUF:
			fmt.Fprintf(&sb, "  buf g%d(n[%d], n[%d]);\n", i, c.Out, c.In[0])
		case NAND2:
			fmt.Fprintf(&sb, "  nand g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case NOR2:
			fmt.Fprintf(&sb, "  nor g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case AND2:
			fmt.Fprintf(&sb, "  and g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case OR2:
			fmt.Fprintf(&sb, "  or g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case XOR2:
			fmt.Fprintf(&sb, "  xor g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case XNOR2:
			fmt.Fprintf(&sb, "  xnor g%d(n[%d], n[%d], n[%d]);\n", i, c.Out, c.In[0], c.In[1])
		case MUX2:
			fmt.Fprintf(&sb, "  assign n[%d] = n[%d] ? n[%d] : n[%d];\n", c.Out, c.In[0], c.In[1], c.In[2])
		}
	}
	if len(n.DFFs) > 0 {
		// Flop outputs live in a separate reg vector bridged onto the
		// wire vector, keeping the netlist pure structural Verilog.
		fmt.Fprintf(&sb, "  reg [%d:0] r;\n", len(n.DFFs)-1)
		var regs []string
		for i, d := range n.DFFs {
			fmt.Fprintf(&sb, "  assign n[%d] = r[%d];\n", d.Out, i)
			regs = append(regs, fmt.Sprintf("r[%d] <= n[%d];", i, d.In[0]))
		}
		fmt.Fprintf(&sb, "  always @(posedge clk) begin %s end\n", strings.Join(regs, " "))
	}
	for _, p := range n.Outputs {
		fmt.Fprintf(&sb, "  assign %s[%d] = n[%d];\n", p.Name, p.Bit, p.Net)
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}
