package rtl

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// This file is the compiled backend: a Verilator-style lowering of the
// levelized netlist into straight-line word-level evaluation.
//
// Nets are renumbered into a dense internal layout — input-port bits
// first, then combinational outputs in execution order, then DFF
// outputs, then floating nets — with each region padded to a 64-bit
// boundary. Values live as 0/1 byte lanes for branch-free evaluation;
// after every cycle the driven region is packed 64 nets per []uint64
// word with a SWAR gather, and Toggles is the popcount of the XOR
// against the previous cycle's packed words. Because the layout puts a
// cell's output at combBase+execIndex, the op stream needs no output
// array at all, and cells are regrouped by (logic level, kind) so one
// tight loop per same-kind run replaces the interpreter's per-cell
// switch. DFF capture is batched: gather every D lane, then block-copy
// over the Q region, reproducing the interpreter's read-all-then-write
// semantics for flop-to-flop chains.
//
// The compiler refuses netlist shapes whose aliasing breaks the dense
// layout (a net driven twice, or doubling as an input-port bit);
// NewSimulator then falls back to the interpreter, which remains the
// reference semantics for every netlist.

type opRun struct {
	kind       CellKind
	start, end int // exec-index range; output lane = combBase + index
}

type progPort struct {
	width int
	base  int     // inputs: lane of bit 0 (bits are contiguous)
	pos   []int32 // outputs: lane per bit (arbitrary nets)
}

type program struct {
	vals []uint8 // one 0/1 byte lane per internal net slot

	nIn      int
	combBase int
	nComb    int
	dffBase  int
	nDFF     int

	runs          []opRun
	ina, inb, inc []int32 // input lanes per comb op, indexed by exec index

	dffD   []int32 // D lane per flop; Q lane is dffBase+i
	dffTmp []uint8

	inPorts  []progPort
	outPorts []progPort

	// Packed toggle lanes covering the driven region
	// [combBase, align64(dffBase+nDFF)); swapped every cycle.
	cur, prev []uint64
}

func align64(n int) int { return (n + 63) &^ 63 }

// compile lowers a validated, levelized netlist into a program, or
// explains why its shape prevents the dense-layout lowering.
func compile(n *Netlist, order []Cell, inPorts, outPorts []Port) (*program, error) {
	const unassigned = -1
	loc := make([]int32, n.NumNets) // external net -> internal lane
	for i := range loc {
		loc[i] = unassigned
	}
	p := &program{}

	// Input-port bits: contiguous lanes in sorted-port order.
	lane := 0
	for _, pt := range inPorts {
		p.inPorts = append(p.inPorts, progPort{width: len(pt.Bits), base: lane})
		for _, net := range pt.Bits {
			if loc[net] != unassigned {
				return nil, fmt.Errorf("rtl: compile %s: net n%d bound to two input port bits", n.Name, net)
			}
			loc[net] = int32(lane)
			lane++
		}
	}
	p.nIn = lane
	p.combBase = align64(p.nIn)
	p.nComb = len(order)

	// Logic level per cell (longest path from a source), so same-kind
	// cells can be regrouped into runs without breaking topology: a
	// cell only ever reads nets from strictly lower levels.
	netLvl := make([]int32, n.NumNets)
	lvl := make([]int32, len(order))
	for i, c := range order {
		var l int32
		for _, in := range c.In {
			if netLvl[in] > l {
				l = netLvl[in]
			}
		}
		lvl[i] = l
		netLvl[c.Out] = l + 1
	}
	exec := make([]int, len(order))
	for i := range exec {
		exec[i] = i
	}
	sort.SliceStable(exec, func(a, b int) bool {
		if lvl[exec[a]] != lvl[exec[b]] {
			return lvl[exec[a]] < lvl[exec[b]]
		}
		return order[exec[a]].Kind < order[exec[b]].Kind
	})

	for ei, oi := range exec {
		net := order[oi].Out
		if loc[net] != unassigned {
			return nil, fmt.Errorf("rtl: compile %s: net n%d has two drivers", n.Name, net)
		}
		loc[net] = int32(p.combBase + ei)
	}
	p.dffBase = align64(p.combBase + p.nComb)
	p.nDFF = len(n.DFFs)
	for i, d := range n.DFFs {
		if loc[d.Out] != unassigned {
			return nil, fmt.Errorf("rtl: compile %s: DFF output net n%d has another driver", n.Name, d.Out)
		}
		loc[d.Out] = int32(p.dffBase + i)
	}
	// Floating nets: constant-zero lanes after the driven region.
	lane = align64(p.dffBase + p.nDFF)
	for net := range loc {
		if loc[net] == unassigned {
			loc[net] = int32(lane)
			lane++
		}
	}
	drivenEnd := align64(p.dffBase + p.nDFF)
	// Pad so the SWAR packer's 8-byte loads over the driven region stay
	// in bounds.
	p.vals = make([]uint8, align64(lane)+8)

	// Op stream: input lanes per exec position, fused into same-kind runs.
	p.ina = make([]int32, p.nComb)
	p.inb = make([]int32, p.nComb)
	p.inc = make([]int32, p.nComb)
	for ei, oi := range exec {
		c := order[oi]
		if len(c.In) > 0 {
			p.ina[ei] = loc[c.In[0]]
		}
		if len(c.In) > 1 {
			p.inb[ei] = loc[c.In[1]]
		}
		if len(c.In) > 2 {
			p.inc[ei] = loc[c.In[2]]
		}
		if nr := len(p.runs); nr > 0 && p.runs[nr-1].kind == c.Kind {
			p.runs[nr-1].end = ei + 1
		} else {
			p.runs = append(p.runs, opRun{kind: c.Kind, start: ei, end: ei + 1})
		}
	}

	p.dffD = make([]int32, p.nDFF)
	for i, d := range n.DFFs {
		p.dffD[i] = loc[d.In[0]]
	}
	p.dffTmp = make([]uint8, p.nDFF)

	for _, pt := range outPorts {
		op := progPort{width: len(pt.Bits), pos: make([]int32, len(pt.Bits))}
		for i, net := range pt.Bits {
			op.pos[i] = loc[net]
		}
		p.outPorts = append(p.outPorts, op)
	}

	words := (drivenEnd - p.combBase) / 64
	p.cur = make([]uint64, words)
	p.prev = make([]uint64, words)
	return p, nil
}

// step runs one cycle and returns the number of driven-net toggles.
// Ordering matches the interpreter exactly: settle combinational logic,
// gather outputs, then clock the flops.
func (p *program) step(in, out []uint64) uint64 {
	v := p.vals

	for i := range p.inPorts {
		ip := &p.inPorts[i]
		w := in[i]
		lanes := v[ip.base : ip.base+ip.width]
		for b := range lanes {
			lanes[b] = uint8(w >> uint(b) & 1)
		}
	}

	for _, r := range p.runs {
		ov := v[p.combBase+r.start : p.combBase+r.end]
		ina := p.ina[r.start:r.end]
		switch r.kind {
		case INV:
			for i := range ov {
				ov[i] = v[ina[i]] ^ 1
			}
		case BUF:
			for i := range ov {
				ov[i] = v[ina[i]]
			}
		case NAND2:
			inb := p.inb[r.start:r.end]
			for i := range ov {
				ov[i] = v[ina[i]]&v[inb[i]] ^ 1
			}
		case NOR2:
			inb := p.inb[r.start:r.end]
			for i := range ov {
				ov[i] = v[ina[i]] | v[inb[i]] ^ 1
			}
		case AND2:
			inb := p.inb[r.start:r.end]
			for i := range ov {
				ov[i] = v[ina[i]] & v[inb[i]]
			}
		case OR2:
			inb := p.inb[r.start:r.end]
			for i := range ov {
				ov[i] = v[ina[i]] | v[inb[i]]
			}
		case XOR2:
			inb := p.inb[r.start:r.end]
			for i := range ov {
				ov[i] = v[ina[i]] ^ v[inb[i]]
			}
		case XNOR2:
			inb := p.inb[r.start:r.end]
			for i := range ov {
				ov[i] = v[ina[i]] ^ v[inb[i]] ^ 1
			}
		case MUX2:
			inb, inc := p.inb[r.start:r.end], p.inc[r.start:r.end]
			for i := range ov {
				s := v[ina[i]]
				ov[i] = v[inb[i]]&(0-s) | v[inc[i]]&(s-1)
			}
		case TIE0:
			for i := range ov {
				ov[i] = 0
			}
		case TIE1:
			for i := range ov {
				ov[i] = 1
			}
		}
	}

	for i := range p.outPorts {
		op := &p.outPorts[i]
		var w uint64
		for b, pos := range op.pos {
			w |= uint64(v[pos]) << uint(b)
		}
		out[i] = w
	}

	// Rising edge: gather every D, then block-write the Q region, so a
	// flop feeding another flop still captures the pre-edge value.
	for i, d := range p.dffD {
		p.dffTmp[i] = v[d]
	}
	copy(v[p.dffBase:p.dffBase+p.nDFF], p.dffTmp)

	// Pack the driven region 64 lanes per word and count toggles against
	// the previous cycle. The multiply gathers the LSB of each of 8
	// bytes into bits 56..63 (0x0102040810204080 = Σ 2^(56-7k)).
	cur, prev := p.cur, p.prev
	var t uint64
	base := p.combBase
	for wi := range cur {
		off := base + wi*64
		var word uint64
		for j := 0; j < 64; j += 8 {
			chunk := binary.LittleEndian.Uint64(v[off+j:])
			word |= ((chunk & 0x0101010101010101) * 0x0102040810204080) >> 56 << uint(j)
		}
		cur[wi] = word
		t += uint64(bits.OnesCount64(word ^ prev[wi]))
	}
	p.cur, p.prev = prev, cur
	return t
}
