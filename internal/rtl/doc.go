// Package rtl holds the gate-level netlist representation produced by
// logic synthesis (internal/synth), a levelized cycle-accurate netlist
// simulator (this repository's substitute for the commercial Verilog
// simulator in the paper's Table 3), and a structural Verilog writer.
package rtl
