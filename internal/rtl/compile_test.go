package rtl

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/trace"
)

// genNetlist builds a random DAG netlist: a few multi-bit input ports,
// ties, a soup of combinational cells drawing from every net created so
// far, flops (rewired at the end so D can see any net, including later
// comb outputs and other Qs), floating nets, and output ports sampling
// arbitrary nets. Every shape it produces is compilable; aliasing shapes
// get their own fallback tests.
func genNetlist(r *rand.Rand) *Netlist {
	n := &Netlist{Name: "fuzz"}
	var pool []Net
	nIn := 1 + r.Intn(4)
	for p := 0; p < nIn; p++ {
		w := 1 + r.Intn(12)
		for b := 0; b < w; b++ {
			net := n.NewNet()
			n.Inputs = append(n.Inputs, PortBit{Name: fmt.Sprintf("in%d", p), Bit: b, Net: net})
			pool = append(pool, net)
		}
	}
	nDFF := r.Intn(20)
	for i := 0; i < nDFF; i++ {
		pool = append(pool, n.AddCell(DFF, pool[r.Intn(len(pool))]))
	}
	kinds := []CellKind{INV, BUF, NAND2, NOR2, AND2, OR2, XOR2, XNOR2, MUX2, TIE0, TIE1}
	nCells := 30 + r.Intn(270)
	for i := 0; i < nCells; i++ {
		k := kinds[r.Intn(len(kinds))]
		in := make([]Net, k.NumInputs())
		for j := range in {
			in[j] = pool[r.Intn(len(pool))]
		}
		pool = append(pool, n.AddCell(k, in...))
	}
	// Rewire flop Ds over the full pool so flop-to-flop and
	// comb-to-flop capture ordering is exercised.
	for i := range n.DFFs {
		n.DFFs[i].In[0] = pool[r.Intn(len(pool))]
	}
	// A few floating nets output ports may sample.
	for i := 0; i < 3; i++ {
		pool = append(pool, n.NewNet())
	}
	nOut := 1 + r.Intn(4)
	for p := 0; p < nOut; p++ {
		w := 1 + r.Intn(12)
		for b := 0; b < w; b++ {
			n.Outputs = append(n.Outputs, PortBit{Name: fmt.Sprintf("out%d", p), Bit: b, Net: pool[r.Intn(len(pool))]})
		}
	}
	return n
}

// TestCompiledMatchesInterpreter is the differential gate for the
// compiled backend: on randomized netlists, outputs every cycle,
// cumulative Toggles, and VCD bytes must be identical to the reference
// interpreter.
func TestCompiledMatchesInterpreter(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := genNetlist(r)
		ref := mustSim(t, n, BackendInterp)
		cmp := mustSim(t, n, BackendCompiled)
		if ref.Backend() != "interp" || cmp.Backend() != "compiled" {
			t.Fatalf("seed %d: backends %s/%s", seed, ref.Backend(), cmp.Backend())
		}
		var refVCD, cmpVCD strings.Builder
		ref.AttachVCD(trace.NewVCD(&refVCD))
		cmp.AttachVCD(trace.NewVCD(&cmpVCD))

		inPorts := ref.InputPorts()
		inw := make([]uint64, len(inPorts))
		outw := make([]uint64, len(ref.OutputPorts()))
		for cycle := 0; cycle < 100; cycle++ {
			in := map[string]uint64{}
			for i, p := range inPorts {
				v := r.Uint64()
				in[p.Name] = v
				inw[i] = v
			}
			// Exercise both APIs: the map Step on the interpreter, the
			// word fast path on the compiled program.
			want := ref.Step(in)
			cmp.StepWords(inw, outw)
			for i, p := range cmp.OutputPorts() {
				if outw[i] != want[p.Name] {
					t.Fatalf("seed %d cycle %d: output %s = %#x, interpreter says %#x",
						seed, cycle, p.Name, outw[i], want[p.Name])
				}
			}
			if ref.Toggles != cmp.Toggles {
				t.Fatalf("seed %d cycle %d: toggles %d (compiled) vs %d (interp)",
					seed, cycle, cmp.Toggles, ref.Toggles)
			}
		}
		if ref.Cycles != cmp.Cycles {
			t.Fatalf("seed %d: cycles %d vs %d", seed, cmp.Cycles, ref.Cycles)
		}
		if refVCD.String() != cmpVCD.String() {
			t.Fatalf("seed %d: VCD bytes differ between backends", seed)
		}
	}
}

// TestVCDDeterministic locks in the satellite fix: building and running
// the same netlist twice must produce byte-identical VCDs — declaration
// order no longer depends on map iteration.
func TestVCDDeterministic(t *testing.T) {
	dump := func(backend Backend) string {
		r := rand.New(rand.NewSource(11))
		n := genNetlist(r)
		sim, err := NewSimulatorBackend(n, backend)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		sim.AttachVCD(trace.NewVCD(&sb))
		for cycle := 0; cycle < 50; cycle++ {
			in := map[string]uint64{}
			for _, p := range sim.InputPorts() {
				in[p.Name] = r.Uint64()
			}
			sim.Step(in)
		}
		return sb.String()
	}
	a, b := dump(BackendInterp), dump(BackendInterp)
	if a != b {
		t.Fatal("two interpreter runs produced different VCD bytes")
	}
	if c := dump(BackendCompiled); c != a {
		t.Fatal("compiled VCD bytes differ from interpreter")
	}
}

// TestCompileFallback: netlist shapes the dense layout cannot express
// must degrade to the interpreter under BackendAuto and error under
// BackendCompiled.
func TestCompileFallback(t *testing.T) {
	// Input port bit aliased onto a cell output: the net has two writers.
	n := &Netlist{Name: "alias"}
	a := n.NewNet()
	y := n.AddCell(INV, a)
	n.Inputs = append(n.Inputs,
		PortBit{Name: "a", Bit: 0, Net: a},
		PortBit{Name: "b", Bit: 0, Net: y})
	n.Outputs = append(n.Outputs, PortBit{Name: "y", Bit: 0, Net: y})
	sim, err := NewSimulator(n)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Backend() != "interp" {
		t.Fatalf("backend = %s, want interp fallback", sim.Backend())
	}
	if _, err := NewSimulatorBackend(n, BackendCompiled); err == nil {
		t.Fatal("BackendCompiled accepted an aliased netlist")
	}

	// Two cells driving one net.
	n2 := &Netlist{Name: "multidrive"}
	x := n2.NewNet()
	n2.Inputs = append(n2.Inputs, PortBit{Name: "x", Bit: 0, Net: x})
	shared := n2.NewNet()
	n2.Cells = append(n2.Cells,
		Cell{Kind: INV, Out: shared, In: []Net{x}},
		Cell{Kind: BUF, Out: shared, In: []Net{x}})
	n2.Outputs = append(n2.Outputs, PortBit{Name: "y", Bit: 0, Net: shared})
	sim2, err := NewSimulator(n2)
	if err != nil {
		t.Fatal(err)
	}
	if sim2.Backend() != "interp" {
		t.Fatalf("backend = %s, want interp fallback", sim2.Backend())
	}
}

// TestValidateCells: malformed cell banks are construction errors, not
// mid-Step panics.
func TestValidateCells(t *testing.T) {
	n := &Netlist{Name: "badcell"}
	x := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "x", Bit: 0, Net: x})
	n.Cells = append(n.Cells, Cell{Kind: AND2, Out: n.NewNet(), In: []Net{x, Net(42)}})
	if _, err := NewSimulator(n); err == nil || !strings.Contains(err.Error(), "n42") {
		t.Fatalf("err = %v, want out-of-range net diagnostic", err)
	}

	n2 := &Netlist{Name: "dffbank"}
	y := n2.NewNet()
	n2.Inputs = append(n2.Inputs, PortBit{Name: "y", Bit: 0, Net: y})
	n2.Cells = append(n2.Cells, Cell{Kind: DFF, Out: n2.NewNet(), In: []Net{y}})
	if _, err := NewSimulator(n2); err == nil || !strings.Contains(err.Error(), "DFF") {
		t.Fatalf("err = %v, want misfiled-DFF diagnostic", err)
	}
}

// TestStepWordsNilOut covers the activity-counting mode soc/pe uses.
func TestStepWordsNilOut(t *testing.T) {
	forBothBackends(t, func(t *testing.T, backend Backend) {
		n := &Netlist{Name: "nilout"}
		a := n.NewNet()
		n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: a})
		q := n.AddCell(DFF, n.AddCell(INV, a))
		n.Outputs = append(n.Outputs, PortBit{Name: "q", Bit: 0, Net: q})
		sim := mustSim(t, n, backend)
		sim.StepWords([]uint64{1}, nil)
		sim.StepWords([]uint64{0}, nil)
		if sim.Cycles != 2 || sim.Toggles == 0 {
			t.Fatalf("cycles %d toggles %d", sim.Cycles, sim.Toggles)
		}
	})
}
