package rtl

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/trace"
)

// mustSim builds a simulator on the given backend, failing the test on
// construction errors.
func mustSim(t *testing.T, n *Netlist, b Backend) *Simulator {
	t.Helper()
	s, err := NewSimulatorBackend(n, b)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// forBothBackends runs a subtest against the interpreter and the
// compiled backend: both must satisfy the same contract.
func forBothBackends(t *testing.T, f func(t *testing.T, b Backend)) {
	t.Run("interp", func(t *testing.T) { f(t, BackendInterp) })
	t.Run("compiled", func(t *testing.T) { f(t, BackendCompiled) })
}

func TestAttachVCD(t *testing.T) {
	n := &Netlist{Name: "vcd"}
	a := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: a})
	n.Outputs = append(n.Outputs, PortBit{Name: "y", Bit: 0, Net: n.AddCell(INV, a)})
	sim := mustSim(t, n, BackendAuto)
	var sb strings.Builder
	v := trace.NewVCD(&sb)
	sim.AttachVCD(v)
	sim.Step(map[string]uint64{"a": 0})
	sim.Step(map[string]uint64{"a": 1})
	sim.Step(map[string]uint64{"a": 1})
	out := sb.String()
	for _, want := range []string{"$var wire 1", "#0", "#1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "#2") {
		t.Fatalf("unchanged cycle produced events:\n%s", out)
	}
}

func TestCellEvaluation(t *testing.T) {
	forBothBackends(t, testCellEvaluation)
}

func testCellEvaluation(t *testing.T, backend Backend) {
	n := &Netlist{Name: "cells"}
	a := n.NewNet()
	b := n.NewNet()
	n.Inputs = append(n.Inputs,
		PortBit{Name: "a", Bit: 0, Net: a},
		PortBit{Name: "b", Bit: 0, Net: b})
	outs := map[string]Net{
		"inv":  n.AddCell(INV, a),
		"buf":  n.AddCell(BUF, a),
		"nand": n.AddCell(NAND2, a, b),
		"nor":  n.AddCell(NOR2, a, b),
		"and":  n.AddCell(AND2, a, b),
		"or":   n.AddCell(OR2, a, b),
		"xor":  n.AddCell(XOR2, a, b),
		"xnor": n.AddCell(XNOR2, a, b),
		"mux":  n.AddCell(MUX2, a, b, n.AddCell(TIE1)),
		"tie0": n.AddCell(TIE0),
		"tie1": n.AddCell(TIE1),
	}
	for name, net := range outs {
		n.Outputs = append(n.Outputs, PortBit{Name: name, Bit: 0, Net: net})
	}
	sim := mustSim(t, n, backend)
	for av := uint64(0); av < 2; av++ {
		for bv := uint64(0); bv < 2; bv++ {
			got := sim.Step(map[string]uint64{"a": av, "b": bv})
			want := map[string]uint64{
				"inv":  1 ^ av,
				"buf":  av,
				"nand": 1 ^ (av & bv),
				"nor":  1 ^ (av | bv),
				"and":  av & bv,
				"or":   av | bv,
				"xor":  av ^ bv,
				"xnor": 1 ^ av ^ bv,
				"tie0": 0,
				"tie1": 1,
			}
			if av == 1 {
				want["mux"] = bv
			} else {
				want["mux"] = 1 // TIE1 leg
			}
			for name, w := range want {
				if got[name] != w {
					t.Fatalf("a=%d b=%d %s = %d, want %d", av, bv, name, got[name], w)
				}
			}
		}
	}
}

func TestDFFOneCycleDelay(t *testing.T) {
	forBothBackends(t, testDFFOneCycleDelay)
}

func testDFFOneCycleDelay(t *testing.T, backend Backend) {
	n := &Netlist{Name: "dff"}
	d := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "d", Bit: 0, Net: d})
	q := n.AddCell(DFF, d)
	q2 := n.AddCell(DFF, q)
	n.Outputs = append(n.Outputs,
		PortBit{Name: "q", Bit: 0, Net: q},
		PortBit{Name: "q2", Bit: 0, Net: q2})
	sim := mustSim(t, n, backend)
	seq := []uint64{1, 0, 1, 1, 0}
	var qs, q2s []uint64
	for _, v := range seq {
		out := sim.Step(map[string]uint64{"d": v})
		qs = append(qs, out["q"])
		q2s = append(q2s, out["q2"])
	}
	// q lags d by one cycle, q2 by two.
	for i := 1; i < len(seq); i++ {
		if qs[i] != seq[i-1] {
			t.Fatalf("q[%d] = %d, want %d", i, qs[i], seq[i-1])
		}
	}
	for i := 2; i < len(seq); i++ {
		if q2s[i] != seq[i-2] {
			t.Fatalf("q2[%d] = %d, want %d", i, q2s[i], seq[i-2])
		}
	}
}

func TestLevelizeOrdersDependencies(t *testing.T) {
	n := &Netlist{Name: "order"}
	a := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: a})
	x := n.AddCell(INV, a)
	y := n.AddCell(INV, x)
	z := n.AddCell(AND2, x, y)
	_ = z
	order := n.Levelize()
	pos := map[Net]int{}
	for i, c := range order {
		pos[c.Out] = i
	}
	if !(pos[x] < pos[y] && pos[y] < pos[z]) {
		t.Fatalf("levelize order wrong: %v", pos)
	}
}

func TestLevelizeDetectsLoop(t *testing.T) {
	n := &Netlist{Name: "loop"}
	// Manually create a cycle: cell A's input is cell B's output and
	// vice versa.
	aOut := n.NewNet()
	bOut := n.NewNet()
	n.Cells = append(n.Cells,
		Cell{Kind: INV, Out: aOut, In: []Net{bOut}},
		Cell{Kind: INV, Out: bOut, In: []Net{aOut}})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("combinational loop not detected")
		}
		if _, ok := r.(*LoopError); !ok {
			t.Fatalf("panic value = %v (%T), want *LoopError", r, r)
		}
	}()
	n.Levelize()
}

func TestLoopErrorNamesCyclePath(t *testing.T) {
	// a 3-cell cycle through an AND2: the diagnostic must walk the cycle
	// by cell name and close it by repeating the first entry.
	n := &Netlist{Name: "looppath"}
	x := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "x", Bit: 0, Net: x})
	aOut, bOut, cOut := n.NewNet(), n.NewNet(), n.NewNet()
	n.Cells = append(n.Cells,
		Cell{Kind: AND2, Out: aOut, In: []Net{x, cOut}},
		Cell{Kind: INV, Out: bOut, In: []Net{aOut}},
		Cell{Kind: BUF, Out: cOut, In: []Net{bOut}})
	_, err := n.LevelizeChecked()
	var le *LoopError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LoopError", err)
	}
	if le.Module != "looppath" || len(le.Path) != 4 || le.Path[0] != le.Path[len(le.Path)-1] {
		t.Fatalf("path = %v", le.Path)
	}
	msg := err.Error()
	for _, want := range []string{"AND2#0(n1)", "INV#1(n2)", "BUF#2(n3)", " -> "} {
		if !strings.Contains(msg, want) {
			t.Fatalf("diagnostic %q missing %q", msg, want)
		}
	}
	// NewSimulator surfaces the same error instead of panicking.
	if _, err := NewSimulator(n); !errors.As(err, &le) {
		t.Fatalf("NewSimulator err = %v", err)
	}
}

func TestLevelizeDeepChainIterative(t *testing.T) {
	// A 200k-deep inverter chain would overflow the stack under the old
	// recursive levelizer; the worklist version must handle it.
	n := &Netlist{Name: "deep"}
	cur := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: cur})
	const depth = 200000
	for i := 0; i < depth; i++ {
		cur = n.AddCell(INV, cur)
	}
	n.Outputs = append(n.Outputs, PortBit{Name: "y", Bit: 0, Net: cur})
	order := n.Levelize()
	if len(order) != depth {
		t.Fatalf("order len = %d", len(order))
	}
	sim := mustSim(t, n, BackendAuto)
	out := sim.Step(map[string]uint64{"a": 1})
	if out["y"] != 1 { // even number of inversions
		t.Fatalf("y = %d", out["y"])
	}
}

func TestAddCellArityPanics(t *testing.T) {
	n := &Netlist{Name: "bad"}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong arity")
		}
	}()
	n.AddCell(AND2, n.NewNet())
}

func TestVerilogStructure(t *testing.T) {
	n := &Netlist{Name: "vtest"}
	a := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: a})
	q := n.AddCell(DFF, n.AddCell(INV, a))
	n.Outputs = append(n.Outputs, PortBit{Name: "q", Bit: 0, Net: q})
	v := n.Verilog()
	for _, want := range []string{"module vtest(clk, a, q)", "not g", "reg [0:0] r;", "always @(posedge clk)", "endmodule"} {
		if !strings.Contains(v, want) {
			t.Fatalf("verilog missing %q:\n%s", want, v)
		}
	}
}

func TestVerilogTestbench(t *testing.T) {
	n := &Netlist{Name: "tbt"}
	a := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: a})
	n.Outputs = append(n.Outputs, PortBit{Name: "y", Bit: 0, Net: n.AddCell(INV, a)})
	vectors := []map[string]uint64{{"a": 0}, {"a": 1}}
	expected := []map[string]uint64{{"y": 1}, {"y": 0}}
	tb := VerilogTestbench(n, vectors, expected, 0)
	for _, want := range []string{
		"module tbt_tb;", "tbt dut(.clk(clk), .a(a), .y(y));",
		"a = 1'd0;", "a = 1'd1;",
		"if (y !== 1'd1)", "if (y !== 1'd0)",
		"$display(\"PASS\")", "$finish;",
	} {
		if !strings.Contains(tb, want) {
			t.Fatalf("testbench missing %q:\n%s", want, tb)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched vector lengths")
		}
	}()
	VerilogTestbench(n, vectors, expected[:1], 0)
}

func TestMultiBitPorts(t *testing.T) {
	forBothBackends(t, func(t *testing.T, backend Backend) {
		n := &Netlist{Name: "wide"}
		var bits []Net
		for i := 0; i < 4; i++ {
			b := n.NewNet()
			n.Inputs = append(n.Inputs, PortBit{Name: "x", Bit: i, Net: b})
			bits = append(bits, b)
		}
		for i, b := range bits {
			n.Outputs = append(n.Outputs, PortBit{Name: "y", Bit: i, Net: n.AddCell(INV, b)})
		}
		sim := mustSim(t, n, backend)
		out := sim.Step(map[string]uint64{"x": 0b1010})
		if out["y"] != 0b0101 {
			t.Fatalf("y = %#b", out["y"])
		}
	})
}

func TestSparsePortError(t *testing.T) {
	// A port declaring bits 0 and 2 but not 1 used to pad the gap with
	// net -1 and panic indexing vals[-1] mid-Step; now it is a named
	// construction error.
	n := &Netlist{Name: "sparse"}
	a, c := n.NewNet(), n.NewNet()
	n.Inputs = append(n.Inputs,
		PortBit{Name: "x", Bit: 0, Net: a},
		PortBit{Name: "x", Bit: 2, Net: c})
	n.Outputs = append(n.Outputs, PortBit{Name: "y", Bit: 0, Net: n.AddCell(OR2, a, c)})
	_, err := NewSimulator(n)
	var pce *PortCoverageError
	if !errors.As(err, &pce) {
		t.Fatalf("err = %v, want *PortCoverageError", err)
	}
	if pce.Port != "x" || pce.Bit != 1 || pce.Dir != "input" || pce.Width != 3 {
		t.Fatalf("error fields = %+v", pce)
	}

	// Same hole on an output port.
	n2 := &Netlist{Name: "sparseout"}
	b := n2.NewNet()
	n2.Inputs = append(n2.Inputs, PortBit{Name: "a", Bit: 0, Net: b})
	n2.Outputs = append(n2.Outputs, PortBit{Name: "y", Bit: 1, Net: n2.AddCell(INV, b)})
	_, err = NewSimulator(n2)
	if !errors.As(err, &pce) || pce.Dir != "output" || pce.Bit != 0 {
		t.Fatalf("output-port err = %v", err)
	}
}

func TestPortValidation(t *testing.T) {
	base := func() (*Netlist, Net) {
		n := &Netlist{Name: "pv"}
		a := n.NewNet()
		n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: a})
		n.Outputs = append(n.Outputs, PortBit{Name: "y", Bit: 0, Net: n.AddCell(INV, a)})
		return n, a
	}
	var pce *PortCoverageError

	n, a := base()
	n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: a})
	if _, err := NewSimulator(n); !errors.As(err, &pce) || pce.Reason != "bit bound to two nets" {
		t.Fatalf("duplicate bit err = %v", err)
	}

	n, _ = base()
	n.Outputs = append(n.Outputs, PortBit{Name: "z", Bit: 0, Net: Net(99)})
	if _, err := NewSimulator(n); !errors.As(err, &pce) {
		t.Fatalf("out-of-range net err = %v", err)
	}

	n, _ = base()
	wide := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "w", Bit: 64, Net: wide})
	if _, err := NewSimulator(n); !errors.As(err, &pce) || pce.Port != "w" {
		t.Fatalf("over-wide port err = %v", err)
	}
}
