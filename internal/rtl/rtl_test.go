package rtl

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestAttachVCD(t *testing.T) {
	n := &Netlist{Name: "vcd"}
	a := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: a})
	n.Outputs = append(n.Outputs, PortBit{Name: "y", Bit: 0, Net: n.AddCell(INV, a)})
	sim := NewSimulator(n)
	var sb strings.Builder
	v := trace.NewVCD(&sb)
	sim.AttachVCD(v)
	sim.Step(map[string]uint64{"a": 0})
	sim.Step(map[string]uint64{"a": 1})
	sim.Step(map[string]uint64{"a": 1})
	out := sb.String()
	for _, want := range []string{"$var wire 1", "#0", "#1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "#2") {
		t.Fatalf("unchanged cycle produced events:\n%s", out)
	}
}

func TestCellEvaluation(t *testing.T) {
	n := &Netlist{Name: "cells"}
	a := n.NewNet()
	b := n.NewNet()
	n.Inputs = append(n.Inputs,
		PortBit{Name: "a", Bit: 0, Net: a},
		PortBit{Name: "b", Bit: 0, Net: b})
	outs := map[string]Net{
		"inv":  n.AddCell(INV, a),
		"buf":  n.AddCell(BUF, a),
		"nand": n.AddCell(NAND2, a, b),
		"nor":  n.AddCell(NOR2, a, b),
		"and":  n.AddCell(AND2, a, b),
		"or":   n.AddCell(OR2, a, b),
		"xor":  n.AddCell(XOR2, a, b),
		"xnor": n.AddCell(XNOR2, a, b),
		"mux":  n.AddCell(MUX2, a, b, n.AddCell(TIE1)),
		"tie0": n.AddCell(TIE0),
		"tie1": n.AddCell(TIE1),
	}
	for name, net := range outs {
		n.Outputs = append(n.Outputs, PortBit{Name: name, Bit: 0, Net: net})
	}
	sim := NewSimulator(n)
	for av := uint64(0); av < 2; av++ {
		for bv := uint64(0); bv < 2; bv++ {
			got := sim.Step(map[string]uint64{"a": av, "b": bv})
			want := map[string]uint64{
				"inv":  1 ^ av,
				"buf":  av,
				"nand": 1 ^ (av & bv),
				"nor":  1 ^ (av | bv),
				"and":  av & bv,
				"or":   av | bv,
				"xor":  av ^ bv,
				"xnor": 1 ^ av ^ bv,
				"tie0": 0,
				"tie1": 1,
			}
			if av == 1 {
				want["mux"] = bv
			} else {
				want["mux"] = 1 // TIE1 leg
			}
			for name, w := range want {
				if got[name] != w {
					t.Fatalf("a=%d b=%d %s = %d, want %d", av, bv, name, got[name], w)
				}
			}
		}
	}
}

func TestDFFOneCycleDelay(t *testing.T) {
	n := &Netlist{Name: "dff"}
	d := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "d", Bit: 0, Net: d})
	q := n.AddCell(DFF, d)
	q2 := n.AddCell(DFF, q)
	n.Outputs = append(n.Outputs,
		PortBit{Name: "q", Bit: 0, Net: q},
		PortBit{Name: "q2", Bit: 0, Net: q2})
	sim := NewSimulator(n)
	seq := []uint64{1, 0, 1, 1, 0}
	var qs, q2s []uint64
	for _, v := range seq {
		out := sim.Step(map[string]uint64{"d": v})
		qs = append(qs, out["q"])
		q2s = append(q2s, out["q2"])
	}
	// q lags d by one cycle, q2 by two.
	for i := 1; i < len(seq); i++ {
		if qs[i] != seq[i-1] {
			t.Fatalf("q[%d] = %d, want %d", i, qs[i], seq[i-1])
		}
	}
	for i := 2; i < len(seq); i++ {
		if q2s[i] != seq[i-2] {
			t.Fatalf("q2[%d] = %d, want %d", i, q2s[i], seq[i-2])
		}
	}
}

func TestLevelizeOrdersDependencies(t *testing.T) {
	n := &Netlist{Name: "order"}
	a := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: a})
	x := n.AddCell(INV, a)
	y := n.AddCell(INV, x)
	z := n.AddCell(AND2, x, y)
	_ = z
	order := n.Levelize()
	pos := map[Net]int{}
	for i, c := range order {
		pos[c.Out] = i
	}
	if !(pos[x] < pos[y] && pos[y] < pos[z]) {
		t.Fatalf("levelize order wrong: %v", pos)
	}
}

func TestLevelizeDetectsLoop(t *testing.T) {
	n := &Netlist{Name: "loop"}
	// Manually create a cycle: cell A's input is cell B's output and
	// vice versa.
	aOut := n.NewNet()
	bOut := n.NewNet()
	n.Cells = append(n.Cells,
		Cell{Kind: INV, Out: aOut, In: []Net{bOut}},
		Cell{Kind: INV, Out: bOut, In: []Net{aOut}})
	defer func() {
		if recover() == nil {
			t.Fatal("combinational loop not detected")
		}
	}()
	n.Levelize()
}

func TestAddCellArityPanics(t *testing.T) {
	n := &Netlist{Name: "bad"}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for wrong arity")
		}
	}()
	n.AddCell(AND2, n.NewNet())
}

func TestVerilogStructure(t *testing.T) {
	n := &Netlist{Name: "vtest"}
	a := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: a})
	q := n.AddCell(DFF, n.AddCell(INV, a))
	n.Outputs = append(n.Outputs, PortBit{Name: "q", Bit: 0, Net: q})
	v := n.Verilog()
	for _, want := range []string{"module vtest(clk, a, q)", "not g", "reg [0:0] r;", "always @(posedge clk)", "endmodule"} {
		if !strings.Contains(v, want) {
			t.Fatalf("verilog missing %q:\n%s", want, v)
		}
	}
}

func TestVerilogTestbench(t *testing.T) {
	n := &Netlist{Name: "tbt"}
	a := n.NewNet()
	n.Inputs = append(n.Inputs, PortBit{Name: "a", Bit: 0, Net: a})
	n.Outputs = append(n.Outputs, PortBit{Name: "y", Bit: 0, Net: n.AddCell(INV, a)})
	vectors := []map[string]uint64{{"a": 0}, {"a": 1}}
	expected := []map[string]uint64{{"y": 1}, {"y": 0}}
	tb := VerilogTestbench(n, vectors, expected, 0)
	for _, want := range []string{
		"module tbt_tb;", "tbt dut(.clk(clk), .a(a), .y(y));",
		"a = 1'd0;", "a = 1'd1;",
		"if (y !== 1'd1)", "if (y !== 1'd0)",
		"$display(\"PASS\")", "$finish;",
	} {
		if !strings.Contains(tb, want) {
			t.Fatalf("testbench missing %q:\n%s", want, tb)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched vector lengths")
		}
	}()
	VerilogTestbench(n, vectors, expected[:1], 0)
}

func TestMultiBitPorts(t *testing.T) {
	n := &Netlist{Name: "wide"}
	var bits []Net
	for i := 0; i < 4; i++ {
		b := n.NewNet()
		n.Inputs = append(n.Inputs, PortBit{Name: "x", Bit: i, Net: b})
		bits = append(bits, b)
	}
	for i, b := range bits {
		n.Outputs = append(n.Outputs, PortBit{Name: "y", Bit: i, Net: n.AddCell(INV, b)})
	}
	sim := NewSimulator(n)
	out := sim.Step(map[string]uint64{"x": 0b1010})
	if out["y"] != 0b0101 {
		t.Fatalf("y = %#b", out["y"])
	}
}
