package rtl

import (
	"fmt"
	"sort"
	"strings"
)

// VerilogTestbench emits a self-checking Verilog testbench for the
// netlist: it drives the given input vectors one per cycle and compares
// each output against its expectation `latency` cycles later — the
// cosimulation artifact the flow hands to an external RTL simulator.
// expected[k] holds the outputs for vectors[k]; both slices must be the
// same length.
func VerilogTestbench(n *Netlist, vectors, expected []map[string]uint64, latency int) string {
	if len(vectors) != len(expected) {
		panic("rtl: vectors/expected length mismatch")
	}
	widths := func(ports []PortBit) map[string]int {
		m := map[string]int{}
		for _, p := range ports {
			if p.Bit+1 > m[p.Name] {
				m[p.Name] = p.Bit + 1
			}
		}
		return m
	}
	inW, outW := widths(n.Inputs), widths(n.Outputs)
	names := func(ports []PortBit) []string {
		seen := map[string]bool{}
		var ns []string
		for _, p := range ports {
			if !seen[p.Name] {
				seen[p.Name] = true
				ns = append(ns, p.Name)
			}
		}
		sort.Strings(ns)
		return ns
	}
	ins, outs := names(n.Inputs), names(n.Outputs)

	var sb strings.Builder
	fmt.Fprintf(&sb, "// Self-checking testbench for %s: %d vectors, latency %d.\n", n.Name, len(vectors), latency)
	fmt.Fprintf(&sb, "`timescale 1ps/1ps\nmodule %s_tb;\n  reg clk = 0;\n  always #500 clk = ~clk;\n", n.Name)
	for _, in := range ins {
		fmt.Fprintf(&sb, "  reg [%d:0] %s;\n", inW[in]-1, in)
	}
	for _, out := range outs {
		fmt.Fprintf(&sb, "  wire [%d:0] %s;\n", outW[out]-1, out)
	}
	fmt.Fprintf(&sb, "  integer errors = 0;\n")
	var conns []string
	conns = append(conns, ".clk(clk)")
	for _, in := range ins {
		conns = append(conns, fmt.Sprintf(".%s(%s)", in, in))
	}
	for _, out := range outs {
		conns = append(conns, fmt.Sprintf(".%s(%s)", out, out))
	}
	fmt.Fprintf(&sb, "  %s dut(%s);\n\n", n.Name, strings.Join(conns, ", "))

	// Drive on negedge so the DUT samples stable inputs; check just
	// before the next drive.
	sb.WriteString("  initial begin\n")
	for k := 0; k < len(vectors)+latency; k++ {
		sb.WriteString("    @(negedge clk);\n")
		if k < len(vectors) {
			for _, in := range ins {
				fmt.Fprintf(&sb, "    %s = %d'd%d;\n", in, inW[in], vectors[k][in])
			}
		}
		if k >= latency {
			exp := expected[k-latency]
			sb.WriteString("    @(posedge clk); #1;\n")
			for _, out := range outs {
				fmt.Fprintf(&sb, "    if (%s !== %d'd%d) begin errors = errors + 1; "+
					"$display(\"FAIL vector %d: %s = %%0d, expected %d\", %s); end\n",
					out, outW[out], exp[out], k-latency, out, exp[out], out)
			}
		} else {
			sb.WriteString("    @(posedge clk);\n")
		}
	}
	sb.WriteString("    if (errors == 0) $display(\"PASS\"); else $display(\"%0d ERRORS\", errors);\n")
	sb.WriteString("    $finish;\n  end\nendmodule\n")
	return sb.String()
}
