package riscv

import "fmt"

// Register aliases (ABI names).
const (
	Zero = 0
	RA   = 1
	SP   = 2
	T0   = 5
	T1   = 6
	T2   = 7
	S0   = 8
	S1   = 9
	A0   = 10
	A1   = 11
	A2   = 12
	A3   = 13
	A4   = 14
	A5   = 15
	S2   = 18
	S3   = 19
	S4   = 20
)

// Program assembles RV32I machine code through builder calls with label
// support — the controller firmware of the SoC tests is written with it.
type Program struct {
	Base   uint32
	words  []uint32
	labels map[string]uint32
	fixups []fixup
}

type fixup struct {
	index int
	label string
	kind  byte // 'b' branch, 'j' jal, 'u' lui+addi pair (hi), 'l' (lo)
}

// NewProgram starts a program at the given base address.
func NewProgram(base uint32) *Program {
	return &Program{Base: base, labels: map[string]uint32{}}
}

func (p *Program) emit(w uint32) *Program {
	p.words = append(p.words, w)
	return p
}

func (p *Program) pc() uint32 { return p.Base + uint32(len(p.words))*4 }

// Label defines a label at the current position.
func (p *Program) Label(name string) *Program {
	if _, dup := p.labels[name]; dup {
		panic("riscv: duplicate label " + name)
	}
	p.labels[name] = p.pc()
	return p
}

func rtype(funct7, rs2, rs1, funct3, rd, opcode uint32) uint32 {
	return funct7<<25 | rs2<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func itype(imm int32, rs1, funct3, rd, opcode uint32) uint32 {
	return uint32(imm)<<20 | rs1<<15 | funct3<<12 | rd<<7 | opcode
}

func stype(imm int32, rs2, rs1, funct3 uint32) uint32 {
	u := uint32(imm)
	return (u>>5&0x7f)<<25 | rs2<<20 | rs1<<15 | funct3<<12 | (u&0x1f)<<7 | 0x23
}

func btype(imm int32, rs2, rs1, funct3 uint32) uint32 {
	u := uint32(imm)
	return (u>>12&1)<<31 | (u>>5&0x3f)<<25 | rs2<<20 | rs1<<15 | funct3<<12 |
		(u>>1&0xf)<<8 | (u>>11&1)<<7 | 0x63
}

func jtype(imm int32, rd uint32) uint32 {
	u := uint32(imm)
	return (u>>20&1)<<31 | (u>>1&0x3ff)<<21 | (u>>11&1)<<20 | (u>>12&0xff)<<12 | rd<<7 | 0x6f
}

// ADDI and friends.
func (p *Program) ADDI(rd, rs1 uint32, imm int32) *Program {
	return p.emit(itype(imm, rs1, 0, rd, 0x13))
}
func (p *Program) SLTI(rd, rs1 uint32, imm int32) *Program {
	return p.emit(itype(imm, rs1, 2, rd, 0x13))
}
func (p *Program) SLTIU(rd, rs1 uint32, imm int32) *Program {
	return p.emit(itype(imm, rs1, 3, rd, 0x13))
}
func (p *Program) XORI(rd, rs1 uint32, imm int32) *Program {
	return p.emit(itype(imm, rs1, 4, rd, 0x13))
}
func (p *Program) ORI(rd, rs1 uint32, imm int32) *Program {
	return p.emit(itype(imm, rs1, 6, rd, 0x13))
}
func (p *Program) ANDI(rd, rs1 uint32, imm int32) *Program {
	return p.emit(itype(imm, rs1, 7, rd, 0x13))
}
func (p *Program) SLLI(rd, rs1, shamt uint32) *Program {
	return p.emit(itype(int32(shamt), rs1, 1, rd, 0x13))
}
func (p *Program) SRLI(rd, rs1, shamt uint32) *Program {
	return p.emit(itype(int32(shamt), rs1, 5, rd, 0x13))
}
func (p *Program) SRAI(rd, rs1, shamt uint32) *Program {
	return p.emit(itype(int32(shamt|0x400), rs1, 5, rd, 0x13))
}

// Register-register ALU ops.
func (p *Program) ADD(rd, rs1, rs2 uint32) *Program { return p.emit(rtype(0, rs2, rs1, 0, rd, 0x33)) }
func (p *Program) SUB(rd, rs1, rs2 uint32) *Program {
	return p.emit(rtype(0x20, rs2, rs1, 0, rd, 0x33))
}
func (p *Program) SLL(rd, rs1, rs2 uint32) *Program  { return p.emit(rtype(0, rs2, rs1, 1, rd, 0x33)) }
func (p *Program) SLT(rd, rs1, rs2 uint32) *Program  { return p.emit(rtype(0, rs2, rs1, 2, rd, 0x33)) }
func (p *Program) SLTU(rd, rs1, rs2 uint32) *Program { return p.emit(rtype(0, rs2, rs1, 3, rd, 0x33)) }
func (p *Program) XOR(rd, rs1, rs2 uint32) *Program  { return p.emit(rtype(0, rs2, rs1, 4, rd, 0x33)) }
func (p *Program) SRL(rd, rs1, rs2 uint32) *Program  { return p.emit(rtype(0, rs2, rs1, 5, rd, 0x33)) }
func (p *Program) SRA(rd, rs1, rs2 uint32) *Program {
	return p.emit(rtype(0x20, rs2, rs1, 5, rd, 0x33))
}
func (p *Program) OR(rd, rs1, rs2 uint32) *Program  { return p.emit(rtype(0, rs2, rs1, 6, rd, 0x33)) }
func (p *Program) AND(rd, rs1, rs2 uint32) *Program { return p.emit(rtype(0, rs2, rs1, 7, rd, 0x33)) }

// M-extension multiply/divide.
func (p *Program) MUL(rd, rs1, rs2 uint32) *Program  { return p.emit(rtype(1, rs2, rs1, 0, rd, 0x33)) }
func (p *Program) MULH(rd, rs1, rs2 uint32) *Program { return p.emit(rtype(1, rs2, rs1, 1, rd, 0x33)) }
func (p *Program) MULHSU(rd, rs1, rs2 uint32) *Program {
	return p.emit(rtype(1, rs2, rs1, 2, rd, 0x33))
}
func (p *Program) MULHU(rd, rs1, rs2 uint32) *Program { return p.emit(rtype(1, rs2, rs1, 3, rd, 0x33)) }
func (p *Program) DIV(rd, rs1, rs2 uint32) *Program   { return p.emit(rtype(1, rs2, rs1, 4, rd, 0x33)) }
func (p *Program) DIVU(rd, rs1, rs2 uint32) *Program  { return p.emit(rtype(1, rs2, rs1, 5, rd, 0x33)) }
func (p *Program) REM(rd, rs1, rs2 uint32) *Program   { return p.emit(rtype(1, rs2, rs1, 6, rd, 0x33)) }
func (p *Program) REMU(rd, rs1, rs2 uint32) *Program  { return p.emit(rtype(1, rs2, rs1, 7, rd, 0x33)) }

// Upper-immediate and memory ops.
func (p *Program) LUI(rd uint32, imm uint32) *Program { return p.emit(imm&0xfffff000 | rd<<7 | 0x37) }
func (p *Program) LW(rd, rs1 uint32, off int32) *Program {
	return p.emit(itype(off, rs1, 2, rd, 0x03))
}
func (p *Program) LBU(rd, rs1 uint32, off int32) *Program {
	return p.emit(itype(off, rs1, 4, rd, 0x03))
}
func (p *Program) SW(rs2, rs1 uint32, off int32) *Program { return p.emit(stype(off, rs2, rs1, 2)) }
func (p *Program) SB(rs2, rs1 uint32, off int32) *Program { return p.emit(stype(off, rs2, rs1, 0)) }

// LI loads a 32-bit constant (LUI+ADDI as needed).
func (p *Program) LI(rd uint32, v uint32) *Program {
	lo := int32(v<<20) >> 20 // sign-extended low 12
	hi := v - uint32(lo)
	if hi != 0 {
		p.LUI(rd, hi)
		if lo != 0 {
			p.ADDI(rd, rd, lo)
		}
		return p
	}
	return p.ADDI(rd, Zero, lo)
}

// Branches to labels.
func (p *Program) branch(f3 uint32, rs1, rs2 uint32, label string) *Program {
	p.fixups = append(p.fixups, fixup{index: len(p.words), label: label, kind: 'b'})
	return p.emit(btype(0, rs2, rs1, f3))
}
func (p *Program) BEQ(rs1, rs2 uint32, l string) *Program  { return p.branch(0, rs1, rs2, l) }
func (p *Program) BNE(rs1, rs2 uint32, l string) *Program  { return p.branch(1, rs1, rs2, l) }
func (p *Program) BLT(rs1, rs2 uint32, l string) *Program  { return p.branch(4, rs1, rs2, l) }
func (p *Program) BGE(rs1, rs2 uint32, l string) *Program  { return p.branch(5, rs1, rs2, l) }
func (p *Program) BLTU(rs1, rs2 uint32, l string) *Program { return p.branch(6, rs1, rs2, l) }
func (p *Program) BGEU(rs1, rs2 uint32, l string) *Program { return p.branch(7, rs1, rs2, l) }

// JAL jumps to a label, linking into rd.
func (p *Program) JAL(rd uint32, label string) *Program {
	p.fixups = append(p.fixups, fixup{index: len(p.words), label: label, kind: 'j'})
	return p.emit(jtype(0, rd))
}

// J is an unconditional jump.
func (p *Program) J(label string) *Program { return p.JAL(Zero, label) }

// JALR jumps register-indirect.
func (p *Program) JALR(rd, rs1 uint32, off int32) *Program {
	return p.emit(itype(off, rs1, 0, rd, 0x67))
}

// ECALL halts the model.
func (p *Program) ECALL() *Program { return p.emit(0x73) }

// NOP is addi x0, x0, 0.
func (p *Program) NOP() *Program { return p.ADDI(Zero, Zero, 0) }

// Assemble resolves labels and returns the machine code words.
func (p *Program) Assemble() []uint32 {
	for _, f := range p.fixups {
		target, ok := p.labels[f.label]
		if !ok {
			panic("riscv: undefined label " + f.label)
		}
		pc := p.Base + uint32(f.index)*4
		off := int32(target) - int32(pc)
		w := p.words[f.index]
		switch f.kind {
		case 'b':
			if off < -4096 || off > 4095 {
				panic(fmt.Sprintf("riscv: branch to %s out of range (%d)", f.label, off))
			}
			rs2 := w >> 20 & 0x1f
			rs1 := w >> 15 & 0x1f
			f3 := w >> 12 & 7
			p.words[f.index] = btype(off, rs2, rs1, f3)
		case 'j':
			rd := w >> 7 & 0x1f
			p.words[f.index] = jtype(off, rd)
		}
	}
	out := make([]uint32, len(p.words))
	copy(out, p.words)
	return out
}
