package riscv

import (
	"math/rand"
	"testing"
)

// ram is a simple word-addressable test memory.
type ram struct {
	data []byte
}

func newRAM(size int) *ram { return &ram{data: make([]byte, size)} }

func (r *ram) Load(addr uint32, size int) uint32 {
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(r.data[int(addr)+i]) << (8 * i)
	}
	return v
}

func (r *ram) Store(addr uint32, size int, v uint32) {
	for i := 0; i < size; i++ {
		r.data[int(addr)+i] = byte(v >> (8 * i))
	}
}

// run assembles and executes a program, returning the CPU and memory.
func run(t *testing.T, p *Program, maxInstr uint64) (*CPU, *ram) {
	t.Helper()
	m := newRAM(1 << 16)
	for i, w := range p.Assemble() {
		m.Store(p.Base+uint32(i)*4, 4, w)
	}
	c := &CPU{}
	c.Reset(p.Base)
	if err := c.Run(m, maxInstr); err != nil {
		t.Fatal(err)
	}
	return c, m
}

func TestArithmetic(t *testing.T) {
	p := NewProgram(0)
	p.LI(T0, 100).LI(T1, 42)
	p.ADD(A0, T0, T1) // 142
	p.SUB(A1, T0, T1) // 58
	p.XOR(A2, T0, T1) // 100^42
	p.SLLI(A3, T0, 3) // 800
	p.SRAI(A4, T1, 1) // 21
	p.ECALL()
	c, _ := run(t, p, 100)
	want := map[uint32]uint32{A0: 142, A1: 58, A2: 100 ^ 42, A3: 800, A4: 21}
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("reg %d = %d, want %d", r, c.Regs[r], v)
		}
	}
}

func TestLINegativeAndLarge(t *testing.T) {
	for _, v := range []uint32{0, 1, 0xfffff800, 0xffffffff, 0x12345678, 0x80000000, 2047, 2048, 4096} {
		p := NewProgram(0)
		p.LI(A0, v).ECALL()
		c, _ := run(t, p, 10)
		if c.Regs[A0] != v {
			t.Errorf("LI %#x loaded %#x", v, c.Regs[A0])
		}
	}
}

func TestBranchesAndLoop(t *testing.T) {
	// Sum 1..10 with a loop.
	p := NewProgram(0)
	p.LI(T0, 0)  // sum
	p.LI(T1, 1)  // i
	p.LI(T2, 11) // bound
	p.Label("loop")
	p.ADD(T0, T0, T1)
	p.ADDI(T1, T1, 1)
	p.BLT(T1, T2, "loop")
	p.ECALL()
	c, _ := run(t, p, 1000)
	if c.Regs[T0] != 55 {
		t.Fatalf("sum = %d, want 55", c.Regs[T0])
	}
}

func TestMemoryAndSignExtension(t *testing.T) {
	p := NewProgram(0)
	p.LI(T0, 0x1000)
	p.LI(T1, 0xfffffe80) // -384; low byte 0x80
	p.SW(T1, T0, 0)
	p.LW(A0, T0, 0)
	p.LBU(A1, T0, 0) // 0x80 zero-extended
	p.emitLB(A2, T0, 0)
	p.ECALL()
	c, _ := run(t, p, 100)
	if c.Regs[A0] != 0xfffffe80 {
		t.Errorf("LW = %#x", c.Regs[A0])
	}
	if c.Regs[A1] != 0x80 {
		t.Errorf("LBU = %#x", c.Regs[A1])
	}
	if c.Regs[A2] != 0xffffff80 {
		t.Errorf("LB = %#x", c.Regs[A2])
	}
}

// emitLB is a test helper for the LB encoding (not in the builder API).
func (p *Program) emitLB(rd, rs1 uint32, off int32) *Program {
	return p.emit(itype(off, rs1, 0, rd, 0x03))
}

func TestJALAndFunctionCall(t *testing.T) {
	p := NewProgram(0)
	p.LI(A0, 7)
	p.JAL(RA, "double")
	p.JAL(RA, "double")
	p.ECALL()
	p.Label("double")
	p.ADD(A0, A0, A0)
	p.JALR(Zero, RA, 0)
	c, _ := run(t, p, 100)
	if c.Regs[A0] != 28 {
		t.Fatalf("a0 = %d, want 28", c.Regs[A0])
	}
}

func TestX0AlwaysZero(t *testing.T) {
	p := NewProgram(0)
	p.ADDI(Zero, Zero, 123)
	p.ADD(A0, Zero, Zero)
	p.ECALL()
	c, _ := run(t, p, 10)
	if c.Regs[Zero] != 0 || c.Regs[A0] != 0 {
		t.Fatal("x0 is writable")
	}
}

func TestSortProgram(t *testing.T) {
	const base = 0x2000
	p := NewProgram(0)
	p.LI(S0, base)
	p.LI(S1, 8) // n
	p.Label("outer")
	p.LI(T0, 0) // swapped
	p.LI(T1, 0) // i
	p.ADDI(T2, S1, -1)
	p.Label("inner")
	p.BGE(T1, T2, "innerdone")
	p.SLLI(A2, T1, 2)
	p.ADD(A2, A2, S0)
	p.LW(A3, A2, 0)
	p.LW(A4, A2, 4)
	p.BGE(A4, A3, "noswap")
	p.SW(A4, A2, 0)
	p.SW(A3, A2, 4)
	p.LI(T0, 1)
	p.Label("noswap")
	p.ADDI(T1, T1, 1)
	p.J("inner")
	p.Label("innerdone")
	p.BNE(T0, Zero, "outer")
	p.ECALL()

	m := newRAM(1 << 16)
	for i, w := range p.Assemble() {
		m.Store(uint32(i)*4, 4, w)
	}
	r := rand.New(rand.NewSource(3))
	vals := make([]uint32, 8)
	for i := range vals {
		vals[i] = uint32(r.Intn(1000))
		m.Store(base+uint32(i)*4, 4, vals[i])
	}
	cpu := &CPU{}
	cpu.Reset(0)
	if err := cpu.Run(m, 100000); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 8; i++ {
		a, b := m.Load(base+uint32(i-1)*4, 4), m.Load(base+uint32(i)*4, 4)
		if a > b {
			t.Fatalf("not sorted at %d: %d > %d", i, a, b)
		}
	}
}

// Property: OP and OP-IMM semantics match Go's operators on random values.
func TestALUSemanticsProperty(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for iter := 0; iter < 300; iter++ {
		x, y := uint32(r.Uint64()), uint32(r.Uint64())
		p := NewProgram(0)
		p.LI(T0, x).LI(T1, y)
		p.ADD(10, T0, T1)
		p.SUB(11, T0, T1)
		p.AND(12, T0, T1)
		p.OR(13, T0, T1)
		p.XOR(14, T0, T1)
		p.SLL(15, T0, T1)
		p.SRL(16, T0, T1)
		p.SRA(17, T0, T1)
		p.SLT(18, T0, T1)
		p.SLTU(19, T0, T1)
		p.ECALL()
		c, _ := run(t, p, 100)
		sh := y & 31
		want := []uint32{
			x + y, x - y, x & y, x | y, x ^ y,
			x << sh, x >> sh, uint32(int32(x) >> sh),
			b2u(int32(x) < int32(y)), b2u(x < y),
		}
		for i, w := range want {
			if c.Regs[10+i] != w {
				t.Fatalf("iter %d op %d: got %#x want %#x (x=%#x y=%#x)", iter, i, c.Regs[10+i], w, x, y)
			}
		}
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// Property: RV32M semantics match Go reference arithmetic, including the
// divide-by-zero and signed-overflow special cases.
func TestMExtensionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cases := make([][2]uint32, 0, 320)
	for i := 0; i < 300; i++ {
		cases = append(cases, [2]uint32{uint32(r.Uint64()), uint32(r.Uint64())})
	}
	// Directed specials.
	cases = append(cases,
		[2]uint32{5, 0}, [2]uint32{0x80000000, 0xffffffff},
		[2]uint32{0, 0}, [2]uint32{0xffffffff, 0xffffffff},
		[2]uint32{0x80000000, 0}, [2]uint32{1, 0x80000000})
	for _, c := range cases {
		x, y := c[0], c[1]
		p := NewProgram(0)
		p.LI(T0, x).LI(T1, y)
		p.MUL(10, T0, T1)
		p.MULH(11, T0, T1)
		p.MULHSU(12, T0, T1)
		p.MULHU(13, T0, T1)
		p.DIV(14, T0, T1)
		p.DIVU(15, T0, T1)
		p.REM(16, T0, T1)
		p.REMU(17, T0, T1)
		p.ECALL()
		cpu, _ := run(t, p, 100)

		s1, s2 := int32(x), int32(y)
		div := func() uint32 {
			switch {
			case y == 0:
				return ^uint32(0)
			case s1 == -1<<31 && s2 == -1:
				return x
			default:
				return uint32(s1 / s2)
			}
		}()
		rem := func() uint32 {
			switch {
			case y == 0:
				return x
			case s1 == -1<<31 && s2 == -1:
				return 0
			default:
				return uint32(s1 % s2)
			}
		}()
		divu, remu := ^uint32(0), x
		if y != 0 {
			divu, remu = x/y, x%y
		}
		want := []uint32{
			x * y,
			uint32(uint64(int64(s1)*int64(s2)) >> 32),
			uint32(uint64(int64(s1)*int64(uint64(y))) >> 32),
			uint32(uint64(x) * uint64(y) >> 32),
			div, divu, rem, remu,
		}
		for i, w := range want {
			if cpu.Regs[10+i] != w {
				t.Fatalf("x=%#x y=%#x op %d: got %#x want %#x", x, y, i, cpu.Regs[10+i], w)
			}
		}
	}
}

func TestImmediateOps(t *testing.T) {
	p := NewProgram(0)
	p.LI(T0, 100)
	p.SLTI(10, T0, 200)  // 1
	p.SLTI(11, T0, 50)   // 0
	p.SLTIU(12, T0, 200) // 1
	p.XORI(13, T0, 0xff) // 100^255
	p.ORI(14, T0, 0x0f)
	p.ANDI(15, T0, 0x3c)
	p.SRLI(16, T0, 2)
	p.ECALL()
	c, _ := run(t, p, 50)
	want := []uint32{1, 0, 1, 100 ^ 255, 100 | 0x0f, 100 & 0x3c, 25}
	for i, w := range want {
		if c.Regs[10+i] != w {
			t.Fatalf("op %d: got %d want %d", i, c.Regs[10+i], w)
		}
	}
}

func TestAUIPC(t *testing.T) {
	p := NewProgram(0x1000)
	p.NOP()
	p.emit(0x2<<12 | A0<<7 | 0x17) // auipc a0, 2
	p.ECALL()
	m := newRAM(1 << 16)
	for i, w := range p.Assemble() {
		m.Store(0x1000+uint32(i)*4, 4, w)
	}
	c := &CPU{}
	c.Reset(0x1000)
	if err := c.Run(m, 10); err != nil {
		t.Fatal(err)
	}
	if c.Regs[A0] != 0x1004+0x2000 {
		t.Fatalf("auipc = %#x, want %#x", c.Regs[A0], 0x1004+0x2000)
	}
}

func TestHalfwordAndByteMemory(t *testing.T) {
	p := NewProgram(0)
	p.LI(T0, 0x2000)
	p.LI(T1, 0xdead)
	p.emitSH(T1, T0, 0)
	p.emitLH(A0, T0, 0)  // sign-extends 0xdead
	p.emitLHU(A1, T0, 0) // zero-extends
	p.LI(T2, 0x7f)
	p.SB(T2, T0, 8)
	p.LBU(A2, T0, 8)
	p.ECALL()
	c, _ := run(t, p, 50)
	if c.Regs[A0] != 0xffffdead {
		t.Errorf("LH = %#x", c.Regs[A0])
	}
	if c.Regs[A1] != 0xdead {
		t.Errorf("LHU = %#x", c.Regs[A1])
	}
	if c.Regs[A2] != 0x7f {
		t.Errorf("LBU = %#x", c.Regs[A2])
	}
}

func (p *Program) emitSH(rs2, rs1 uint32, off int32) *Program { return p.emit(stype(off, rs2, rs1, 1)) }
func (p *Program) emitLH(rd, rs1 uint32, off int32) *Program {
	return p.emit(itype(off, rs1, 1, rd, 0x03))
}
func (p *Program) emitLHU(rd, rs1 uint32, off int32) *Program {
	return p.emit(itype(off, rs1, 5, rd, 0x03))
}

func TestFenceIsNop(t *testing.T) {
	p := NewProgram(0)
	p.LI(A0, 9)
	p.emit(0x0000000f) // FENCE
	p.ECALL()
	c, _ := run(t, p, 10)
	if c.Regs[A0] != 9 {
		t.Fatal("fence disturbed state")
	}
	if c.Instret != 3 {
		t.Fatalf("instret = %d, want 3", c.Instret)
	}
}

func TestBranchVariants(t *testing.T) {
	// Exercise BEQ/BGEU/BGE taken and not-taken.
	p := NewProgram(0)
	p.LI(T0, 5).LI(T1, 5)
	p.BEQ(T0, T1, "eq")
	p.LI(A0, 99) // skipped
	p.Label("eq")
	p.LI(T2, 0xffffffff) // -1 signed, max unsigned
	p.BGEU(T2, T0, "geu")
	p.LI(A1, 99)
	p.Label("geu")
	p.BGE(T0, T2, "ge") // 5 >= -1 signed: taken
	p.LI(A2, 99)
	p.Label("ge")
	p.ECALL()
	c, _ := run(t, p, 50)
	if c.Regs[A0] == 99 || c.Regs[A1] == 99 || c.Regs[A2] == 99 {
		t.Fatalf("branch semantics wrong: a0=%d a1=%d a2=%d", c.Regs[A0], c.Regs[A1], c.Regs[A2])
	}
}

func TestIllegalInstruction(t *testing.T) {
	m := newRAM(64)
	m.Store(0, 4, 0xffffffff)
	c := &CPU{}
	c.Reset(0)
	if err := c.Step(m); err == nil {
		t.Fatal("no error for illegal instruction")
	}
}

func TestRunBudget(t *testing.T) {
	p := NewProgram(0)
	p.Label("spin").J("spin")
	m := newRAM(64)
	for i, w := range p.Assemble() {
		m.Store(uint32(i)*4, 4, w)
	}
	c := &CPU{}
	c.Reset(0)
	if err := c.Run(m, 100); err == nil {
		t.Fatal("no error for non-halting program")
	}
}
