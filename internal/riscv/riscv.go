package riscv

import "fmt"

// Bus is the CPU's view of memory and memory-mapped IO.
type Bus interface {
	Load(addr uint32, size int) uint32
	Store(addr uint32, size int, v uint32)
}

// CPU is an RV32I hart.
type CPU struct {
	PC     uint32
	Regs   [32]uint32
	Halted bool

	Instret uint64 // retired instruction count
}

// Reset clears architectural state and sets the program counter.
func (c *CPU) Reset(pc uint32) {
	*c = CPU{PC: pc}
}

// Step fetches, decodes and executes one instruction.
func (c *CPU) Step(bus Bus) error {
	if c.Halted {
		return nil
	}
	inst := bus.Load(c.PC, 4)
	next := c.PC + 4

	opcode := inst & 0x7f
	rd := inst >> 7 & 0x1f
	funct3 := inst >> 12 & 0x7
	rs1 := inst >> 15 & 0x1f
	rs2 := inst >> 20 & 0x1f
	funct7 := inst >> 25

	immI := int32(inst) >> 20
	immS := int32(inst)>>25<<5 | int32(rd)
	immB := (int32(inst)>>31)<<12 | int32(inst>>7&1)<<11 | int32(inst>>25&0x3f)<<5 | int32(inst>>8&0xf)<<1
	immU := int32(inst & 0xfffff000)
	immJ := (int32(inst)>>31)<<20 | int32(inst>>12&0xff)<<12 | int32(inst>>20&1)<<11 | int32(inst>>21&0x3ff)<<1

	r1, r2 := c.Regs[rs1], c.Regs[rs2]
	set := func(v uint32) {
		if rd != 0 {
			c.Regs[rd] = v
		}
	}

	switch opcode {
	case 0x37: // LUI
		set(uint32(immU))
	case 0x17: // AUIPC
		set(c.PC + uint32(immU))
	case 0x6f: // JAL
		set(next)
		next = c.PC + uint32(immJ)
	case 0x67: // JALR
		t := (r1 + uint32(immI)) &^ 1
		set(next)
		next = t
	case 0x63: // branches
		taken := false
		switch funct3 {
		case 0:
			taken = r1 == r2
		case 1:
			taken = r1 != r2
		case 4:
			taken = int32(r1) < int32(r2)
		case 5:
			taken = int32(r1) >= int32(r2)
		case 6:
			taken = r1 < r2
		case 7:
			taken = r1 >= r2
		default:
			return fmt.Errorf("riscv: bad branch funct3 %d at %#x", funct3, c.PC)
		}
		if taken {
			next = c.PC + uint32(immB)
		}
	case 0x03: // loads
		addr := r1 + uint32(immI)
		switch funct3 {
		case 0: // LB
			set(uint32(int32(int8(bus.Load(addr, 1)))))
		case 1: // LH
			set(uint32(int32(int16(bus.Load(addr, 2)))))
		case 2: // LW
			set(bus.Load(addr, 4))
		case 4: // LBU
			set(bus.Load(addr, 1) & 0xff)
		case 5: // LHU
			set(bus.Load(addr, 2) & 0xffff)
		default:
			return fmt.Errorf("riscv: bad load funct3 %d at %#x", funct3, c.PC)
		}
	case 0x23: // stores
		addr := r1 + uint32(immS)
		switch funct3 {
		case 0:
			bus.Store(addr, 1, r2)
		case 1:
			bus.Store(addr, 2, r2)
		case 2:
			bus.Store(addr, 4, r2)
		default:
			return fmt.Errorf("riscv: bad store funct3 %d at %#x", funct3, c.PC)
		}
	case 0x13: // OP-IMM
		imm := uint32(immI)
		shamt := imm & 0x1f
		switch funct3 {
		case 0:
			set(r1 + imm)
		case 1:
			set(r1 << shamt)
		case 2:
			if int32(r1) < immI {
				set(1)
			} else {
				set(0)
			}
		case 3:
			if r1 < imm {
				set(1)
			} else {
				set(0)
			}
		case 4:
			set(r1 ^ imm)
		case 5:
			if funct7&0x20 != 0 {
				set(uint32(int32(r1) >> shamt))
			} else {
				set(r1 >> shamt)
			}
		case 6:
			set(r1 | imm)
		case 7:
			set(r1 & imm)
		}
	case 0x33: // OP
		if funct7 == 0x01 { // M extension
			set(mulDiv(funct3, r1, r2))
			break
		}
		switch funct3<<7 | funct7 {
		case 0<<7 | 0x00:
			set(r1 + r2)
		case 0<<7 | 0x20:
			set(r1 - r2)
		case 1<<7 | 0x00:
			set(r1 << (r2 & 0x1f))
		case 2<<7 | 0x00:
			if int32(r1) < int32(r2) {
				set(1)
			} else {
				set(0)
			}
		case 3<<7 | 0x00:
			if r1 < r2 {
				set(1)
			} else {
				set(0)
			}
		case 4<<7 | 0x00:
			set(r1 ^ r2)
		case 5<<7 | 0x00:
			set(r1 >> (r2 & 0x1f))
		case 5<<7 | 0x20:
			set(uint32(int32(r1) >> (r2 & 0x1f)))
		case 6<<7 | 0x00:
			set(r1 | r2)
		case 7<<7 | 0x00:
			set(r1 & r2)
		default:
			return fmt.Errorf("riscv: bad OP funct %d/%#x at %#x", funct3, funct7, c.PC)
		}
	case 0x0f: // FENCE — no-op in this single-hart model
	case 0x73: // SYSTEM: ECALL/EBREAK halt the controller
		c.Halted = true
	default:
		return fmt.Errorf("riscv: unknown opcode %#x at pc %#x", opcode, c.PC)
	}
	c.PC = next
	c.Instret++
	return nil
}

// mulDiv implements the RV32M multiply/divide semantics, including the
// specified divide-by-zero and signed-overflow results.
func mulDiv(funct3, r1, r2 uint32) uint32 {
	s1, s2 := int32(r1), int32(r2)
	switch funct3 {
	case 0: // MUL
		return r1 * r2
	case 1: // MULH
		return uint32(uint64(int64(s1)*int64(s2)) >> 32)
	case 2: // MULHSU
		return uint32(uint64(int64(s1)*int64(int64(r2))) >> 32)
	case 3: // MULHU
		return uint32(uint64(r1) * uint64(r2) >> 32)
	case 4: // DIV
		switch {
		case r2 == 0:
			return ^uint32(0)
		case s1 == -1<<31 && s2 == -1:
			return r1 // overflow: result is the dividend
		default:
			return uint32(s1 / s2)
		}
	case 5: // DIVU
		if r2 == 0 {
			return ^uint32(0)
		}
		return r1 / r2
	case 6: // REM
		switch {
		case r2 == 0:
			return r1
		case s1 == -1<<31 && s2 == -1:
			return 0
		default:
			return uint32(s1 % s2)
		}
	default: // REMU
		if r2 == 0 {
			return r1
		}
		return r1 % r2
	}
}

// Run steps until halt or the instruction budget is exhausted. It
// returns an error for illegal instructions or budget exhaustion.
func (c *CPU) Run(bus Bus, maxInstrs uint64) error {
	for i := uint64(0); i < maxInstrs; i++ {
		if c.Halted {
			return nil
		}
		if err := c.Step(bus); err != nil {
			return err
		}
	}
	if !c.Halted {
		return fmt.Errorf("riscv: did not halt within %d instructions", maxInstrs)
	}
	return nil
}
