package riscv

import "testing"

// wrapRAM never faults: addresses wrap into a small backing array, so
// arbitrary load/store targets are safe during decoder fuzzing.
type wrapRAM struct {
	data [4096]byte
}

func (r *wrapRAM) Load(addr uint32, size int) uint32 {
	var v uint32
	for i := 0; i < size; i++ {
		v |= uint32(r.data[(int(addr)+i)%len(r.data)]) << (8 * i)
	}
	return v
}

func (r *wrapRAM) Store(addr uint32, size int, v uint32) {
	for i := 0; i < size; i++ {
		r.data[(int(addr)+i)%len(r.data)] = byte(v >> (8 * i))
	}
}

// FuzzStepNeverPanics feeds arbitrary instruction words to the decoder:
// every word must either execute or return an error — never panic, and
// never write x0.
func FuzzStepNeverPanics(f *testing.F) {
	f.Add(uint32(0x00000013)) // nop
	f.Add(uint32(0xffffffff))
	f.Add(uint32(0x00000073)) // ecall
	f.Add(uint32(0x0000006f)) // jal self
	f.Add(uint32(0x02000033)) // mul-group
	f.Add(uint32(0x00002003)) // lw
	f.Add(uint32(0x00002023)) // sw
	f.Fuzz(func(t *testing.T, inst uint32) {
		m := &wrapRAM{}
		// Place the instruction at PC 0 and one at the branch landing
		// zone; everything else is zeros (illegal), which is fine.
		m.Store(0, 4, inst)
		c := &CPU{}
		c.Reset(0)
		for i := 0; i < 4; i++ {
			if err := c.Step(m); err != nil {
				return // decoded as illegal: acceptable
			}
			if c.Regs[0] != 0 {
				t.Fatalf("inst %#08x wrote x0", inst)
			}
			if c.Halted {
				return
			}
			// Keep fetching from wherever the PC went (wrapped RAM).
		}
	})
}
