// Package riscv is an RV32I instruction-set simulator standing in for the
// Chisel-generated Rocket core of the prototype SoC (paper Figure 5).
// The paper uses the RISC-V processor as the global controller that
// configures PEs and global memory and orchestrates data movement; this
// ISA-level model drives the same memory-mapped control paths.
package riscv
