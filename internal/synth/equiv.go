package synth

import (
	"fmt"

	"repro/internal/hls"
	"repro/internal/rtl"
)

// ProveEquivalence exhaustively enumerates every input combination of a
// design (up to maxBits total input bits) and checks the mapped netlist
// against the golden interpreter on all of them. For small blocks this
// is complete formal equivalence — the check the paper notes commercial
// flows lacked for C-to-RTL — and the flow's tests run it on every
// bundled design that fits. It returns the number of vectors proven.
func ProveEquivalence(d *hls.Design, latency int, nl *rtl.Netlist, maxBits int) (int, error) {
	total := 0
	for _, p := range d.Inputs {
		total += p.Width
	}
	if total > maxBits {
		return 0, fmt.Errorf("synth: %s has %d input bits, over the %d-bit exhaustive limit", d.Name, total, maxBits)
	}
	sim, err := rtl.NewSimulator(nl)
	if err != nil {
		return 0, fmt.Errorf("synth: %s: %w", d.Name, err)
	}
	space := uint64(1) << uint(total)

	assign := func(v uint64) map[string]uint64 {
		in := map[string]uint64{}
		for _, p := range d.Inputs {
			in[p.Name] = v & (1<<uint(p.Width) - 1)
			v >>= uint(p.Width)
		}
		return in
	}

	// Stream the whole space through the pipeline on the word-slice
	// fast path, checking each output against the golden result of the
	// vector issued `latency` cycles earlier.
	inPorts := sim.InputPorts()
	outIdx := map[string]int{}
	for i, p := range sim.OutputPorts() {
		outIdx[p.Name] = i
	}
	inw := make([]uint64, len(inPorts))
	outw := make([]uint64, len(sim.OutputPorts()))
	proven := 0
	for k := uint64(0); k < space+uint64(latency); k++ {
		var in map[string]uint64
		if k < space {
			in = assign(k)
		} else {
			in = assign(0) // flush the pipeline
		}
		for i := range inPorts {
			inw[i] = in[inPorts[i].Name]
		}
		sim.StepWords(inw, outw)
		if k < uint64(latency) {
			continue
		}
		want := d.Interpret(assign(k - uint64(latency)))
		for name, w := range want {
			var got uint64
			if gi, ok := outIdx[name]; ok {
				got = outw[gi]
			}
			if got != w {
				return proven, fmt.Errorf("synth: %s NOT equivalent: input %#x output %s = %#x, want %#x",
					d.Name, k-uint64(latency), name, got, w)
			}
		}
		proven++
	}
	return proven, nil
}
