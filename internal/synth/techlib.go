package synth

import "repro/internal/rtl"

// TechLib holds per-cell area (NAND2 equivalents) and pin-to-pin delay
// (picoseconds). The default library is a generic 16nm-class model.
type TechLib struct {
	Name    string
	Area    [12]float64 // indexed by rtl.CellKind
	Delay   [12]int
	ClkQ    int // DFF clock-to-Q, ps
	Setup   int // DFF setup, ps
	WireDly int // lumped per-stage wire allowance, ps
}

// Default16nm is the generic technology library used across the flow.
var Default16nm = TechLib{
	Name: "generic-16nm",
	Area: [12]float64{
		rtl.INV: 0.75, rtl.BUF: 0.75, rtl.NAND2: 1.0, rtl.NOR2: 1.0,
		rtl.AND2: 1.25, rtl.OR2: 1.25, rtl.XOR2: 2.25, rtl.XNOR2: 2.25,
		rtl.MUX2: 2.25, rtl.DFF: 4.5, rtl.TIE0: 0.25, rtl.TIE1: 0.25,
	},
	Delay: [12]int{
		rtl.INV: 10, rtl.BUF: 12, rtl.NAND2: 14, rtl.NOR2: 16,
		rtl.AND2: 18, rtl.OR2: 18, rtl.XOR2: 28, rtl.XNOR2: 28,
		rtl.MUX2: 26, rtl.DFF: 0, rtl.TIE0: 0, rtl.TIE1: 0,
	},
	ClkQ:    55,
	Setup:   40,
	WireDly: 30,
}

// CellArea returns the area of one cell in NAND2 equivalents.
func (t *TechLib) CellArea(k rtl.CellKind) float64 { return t.Area[k] }

// NetlistArea sums the mapped netlist's area in NAND2 equivalents.
func (t *TechLib) NetlistArea(n *rtl.Netlist) float64 {
	var a float64
	for _, c := range n.Cells {
		a += t.Area[c.Kind]
	}
	for range n.DFFs {
		a += t.Area[rtl.DFF]
	}
	return a
}

// GateCount returns the NAND2-equivalent gate count, rounded.
func (t *TechLib) GateCount(n *rtl.Netlist) int {
	return int(t.NetlistArea(n) + 0.5)
}
