package synth

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/hls"
	"repro/internal/rtl"
)

func randVec(r *rand.Rand, d *hls.Design) map[string]uint64 {
	in := map[string]uint64{}
	for _, p := range d.Inputs {
		w := uint(p.Width)
		v := r.Uint64()
		if w < 64 {
			v &= 1<<w - 1
		}
		in[p.Name] = v
	}
	return in
}

// checkEquivalence streams random vectors through the gate-level netlist
// and compares each delayed output against the golden interpreter.
func checkEquivalence(t *testing.T, d *hls.Design, cons hls.Constraints, optimize bool, vectors int, seed int64) *rtl.Netlist {
	t.Helper()
	opt := hls.Optimize(d)
	sched := hls.Pipeline(opt, cons)
	nl := Map(sched)
	if optimize {
		nl = Optimize(nl)
	}
	sim, err := rtl.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	var history []map[string]uint64
	for k := 0; k < vectors+sched.Latency; k++ {
		in := randVec(r, d)
		history = append(history, in)
		got := sim.Step(in)
		if k < sched.Latency {
			continue // pipeline not yet full
		}
		want := d.Interpret(history[k-sched.Latency])
		for name, w := range want {
			if got[name] != w {
				t.Fatalf("%s (opt=%v latency=%d): vector %d output %s = %#x, want %#x",
					d.Name, optimize, sched.Latency, k, name, got[name], w)
			}
		}
	}
	return nl
}

func allDesigns() []*hls.Design {
	return []*hls.Design{
		hls.MACDesign(12),
		hls.FIRDesign(6, 10),
		hls.AdderTreeDesign(7, 16),
		hls.ALUDesign(12),
		hls.CrossbarSrcLoopDesign(4, 8),
		hls.CrossbarDstLoopDesign(4, 8),
		hls.EncoderDesign(8),
		hls.DecoderDesign(8),
		hls.PriorityArbiterDesign(10),
		hls.MaxTreeDesign(6, 14),
		hls.PopcountDesign(17),
	}
}

// The central synthesis property: for every bundled design, the mapped
// netlist is cycle-accurate-equivalent to the golden model, pipelined and
// combinational, optimized and raw.
func TestNetlistEquivalence(t *testing.T) {
	for _, d := range allDesigns() {
		d := d
		t.Run(d.Name, func(t *testing.T) {
			checkEquivalence(t, d, hls.Constraints{ClockPS: 100000, NoPipeline: true}, false, 40, 1)
			checkEquivalence(t, d, hls.Constraints{ClockPS: 100000, NoPipeline: true}, true, 40, 2)
			checkEquivalence(t, d, hls.Constraints{ClockPS: 500}, true, 40, 3)
		})
	}
}

func TestPipelinedMulDeepClock(t *testing.T) {
	// Aggressive clock forces a deep pipeline; equivalence must hold.
	d := hls.MACDesign(16)
	checkEquivalence(t, d, hls.Constraints{ClockPS: 250}, true, 60, 4)
}

func TestOptimizeShrinksNetlist(t *testing.T) {
	d := hls.Optimize(hls.CrossbarSrcLoopDesign(8, 16))
	s := hls.Pipeline(d, hls.DefaultConstraints())
	raw := Map(s)
	opt := Optimize(raw)
	rawC, _ := raw.CellCount()
	optC, _ := opt.CellCount()
	if optC >= rawC {
		t.Fatalf("optimize did not shrink: %d -> %d cells", rawC, optC)
	}
}

func TestSTAMonotoneInWidth(t *testing.T) {
	lib := &Default16nm
	var prev int
	for _, w := range []int{4, 8, 16, 32} {
		d := hls.Optimize(hls.AdderTreeDesign(2, w))
		nl := Optimize(Map(hls.Pipeline(d, hls.Constraints{ClockPS: 100000, NoPipeline: true})))
		tm := STA(nl, lib)
		if tm.CriticalPS <= prev {
			t.Fatalf("width %d critical path %dps not longer than previous %dps", w, tm.CriticalPS, prev)
		}
		prev = tm.CriticalPS
	}
}

func TestPipeliningImprovesFmax(t *testing.T) {
	lib := &Default16nm
	d := hls.Optimize(hls.FIRDesign(8, 16))
	comb := STA(Optimize(Map(hls.Pipeline(d, hls.Constraints{ClockPS: 100000, NoPipeline: true}))), lib)
	d2 := hls.Optimize(hls.FIRDesign(8, 16))
	piped := STA(Optimize(Map(hls.Pipeline(d2, hls.Constraints{ClockPS: 450}))), lib)
	if piped.CriticalPS >= comb.CriticalPS {
		t.Fatalf("pipelined critical %dps >= combinational %dps", piped.CriticalPS, comb.CriticalPS)
	}
}

// The paper's §2.4 case study at gate level: 32-lane 32-bit crossbar,
// src-loop vs dst-loop. The penalty should be in the vicinity of the
// paper's 25%.
func TestCrossbarQoRPenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("32-lane crossbar mapping is slow")
	}
	lib := &Default16nm
	cons := hls.DefaultConstraints()
	src := Report(Optimize(Map(hls.Pipeline(hls.Optimize(hls.CrossbarSrcLoopDesign(32, 32)), cons))), lib)
	dst := Report(Optimize(Map(hls.Pipeline(hls.Optimize(hls.CrossbarDstLoopDesign(32, 32)), cons))), lib)
	ratio := src.Total / dst.Total
	t.Logf("src-loop %d gates, dst-loop %d gates, penalty %.1f%%", src.GateCount, dst.GateCount, (ratio-1)*100)
	if ratio < 1.10 || ratio > 1.60 {
		t.Fatalf("src/dst gate ratio %.2f outside the expected ~1.25 region", ratio)
	}
}

func TestReportBreakdown(t *testing.T) {
	lib := &Default16nm
	d := hls.Optimize(hls.MACDesign(8))
	nl := Optimize(Map(hls.Pipeline(d, hls.Constraints{ClockPS: 400})))
	r := Report(nl, lib)
	if r.Sequential == 0 {
		t.Fatal("pipelined design reports no flop area")
	}
	if r.Comb == 0 || r.Total != r.Comb+r.Sequential {
		t.Fatalf("area breakdown inconsistent: %+v", r)
	}
	if r.GateCount < 100 {
		t.Fatalf("8-bit MAC mapped to only %d gates", r.GateCount)
	}
}

func TestVerilogEmission(t *testing.T) {
	d := hls.Optimize(hls.MACDesign(4))
	nl := Optimize(Map(hls.Pipeline(d, hls.Constraints{ClockPS: 200})))
	v := nl.Verilog()
	for _, want := range []string{"module mac_4", "input clk", "endmodule", "always @(posedge clk)"} {
		if !strings.Contains(v, want) {
			t.Fatalf("verilog missing %q:\n%s", want, v)
		}
	}
}

func TestSimulatorTogglesCounted(t *testing.T) {
	d := hls.Optimize(hls.AdderTreeDesign(4, 8))
	nl := Optimize(Map(hls.Pipeline(d, hls.Constraints{ClockPS: 100000, NoPipeline: true})))
	sim, err := rtl.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for k := 0; k < 20; k++ {
		sim.Step(randVec(r, d))
	}
	if sim.Toggles == 0 {
		t.Fatal("no toggles recorded under random stimulus")
	}
}

func BenchmarkMapCrossbarDst16(b *testing.B) {
	d := hls.Optimize(hls.CrossbarDstLoopDesign(16, 32))
	s := hls.Pipeline(d, hls.DefaultConstraints())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Map(s)
	}
}

func BenchmarkNetlistSimFIR(b *testing.B) {
	d := hls.Optimize(hls.FIRDesign(8, 16))
	nl := Optimize(Map(hls.Pipeline(d, hls.DefaultConstraints())))
	sim, err := rtl.NewSimulator(nl)
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(6))
	in := randVec(r, d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Step(in)
	}
}
