package synth

import (
	"testing"

	"repro/internal/hls"
	"repro/internal/rtl"
)

func compile(t *testing.T, d *hls.Design, clock int) (*hls.Schedule, *rtl.Netlist) {
	t.Helper()
	opt := hls.Optimize(d)
	s := hls.Pipeline(opt, hls.Constraints{ClockPS: clock})
	return s, Optimize(Map(s))
}

// Complete formal equivalence for every bundled design small enough to
// enumerate, combinational and pipelined.
func TestProveEquivalenceExhaustive(t *testing.T) {
	cases := []struct {
		d     *hls.Design
		clock int
	}{
		{hls.MACDesign(4), 100000},
		{hls.MACDesign(4), 250}, // pipelined
		{hls.ALUDesign(4), 100000},
		{hls.AdderTreeDesign(3, 5), 100000},
		{hls.EncoderDesign(8), 100000},
		{hls.DecoderDesign(16), 100000},
		{hls.PriorityArbiterDesign(14), 100000},
		{hls.PopcountDesign(14), 100000},
		{hls.MaxTreeDesign(3, 5), 100000},
		{hls.CrossbarDstLoopDesign(2, 4), 100000},
		{hls.CrossbarSrcLoopDesign(2, 4), 100000},
		{hls.FIRDesign(2, 4), 400}, // pipelined
	}
	for _, c := range cases {
		opt := hls.Optimize(c.d)
		s := hls.Pipeline(opt, hls.Constraints{ClockPS: c.clock})
		nl := Optimize(Map(s))
		proven, err := ProveEquivalence(c.d, s.Latency, nl, 16)
		if err != nil {
			t.Errorf("%s @ %dps: %v", c.d.Name, c.clock, err)
			continue
		}
		total := 0
		for _, p := range c.d.Inputs {
			total += p.Width
		}
		if proven != 1<<uint(total) {
			t.Errorf("%s: proved %d of %d vectors", c.d.Name, proven, 1<<uint(total))
		}
	}
}

// The checker must actually catch bugs: corrupt one cell in a proven
// netlist and confirm non-equivalence is reported.
func TestProveEquivalenceCatchesMutation(t *testing.T) {
	d := hls.MACDesign(4)
	s, nl := compile(t, d, 100000)
	if _, err := ProveEquivalence(d, s.Latency, nl, 16); err != nil {
		t.Fatalf("healthy netlist not equivalent: %v", err)
	}
	caught := 0
	tried := 0
	for i := 0; i < len(nl.Cells) && tried < 12; i++ {
		c := nl.Cells[i]
		var mutated rtl.CellKind
		switch c.Kind {
		case rtl.AND2:
			mutated = rtl.OR2
		case rtl.XOR2:
			mutated = rtl.XNOR2
		case rtl.OR2:
			mutated = rtl.AND2
		default:
			continue
		}
		tried++
		nl.Cells[i].Kind = mutated
		if _, err := ProveEquivalence(d, s.Latency, nl, 16); err != nil {
			caught++
		}
		nl.Cells[i].Kind = c.Kind
	}
	if tried == 0 {
		t.Fatal("no mutable cells found")
	}
	if caught != tried {
		t.Fatalf("mutation testing: caught %d of %d injected faults", caught, tried)
	}
}

func TestProveEquivalenceRefusesLargeSpace(t *testing.T) {
	d := hls.MACDesign(16)
	s, nl := compile(t, d, 100000)
	if _, err := ProveEquivalence(d, s.Latency, nl, 16); err == nil {
		t.Fatal("48-bit input space accepted for exhaustive proof")
	}
}
