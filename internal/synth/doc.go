// Package synth is the logic-synthesis substrate of the flow: it maps a
// scheduled HLS design onto the standard cells of a technology library
// (bit-blasting word-level operations into gates and pipeline registers
// into flops), optimizes the netlist (constant propagation, structural
// deduplication, dead-cell removal), and provides static timing analysis
// and area/gate-count reporting in NAND2 equivalents — the units the
// paper's productivity numbers are quoted in.
package synth
