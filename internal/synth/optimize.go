package synth

import (
	"fmt"

	"repro/internal/rtl"
)

// Optimize runs gate-level optimizations on a mapped netlist: constant
// propagation through cells fed by tie cells, structural deduplication of
// identical cells, and removal of cells that reach no output or flop.
// It returns a new netlist; the input is unchanged.
func Optimize(n *rtl.Netlist) *rtl.Netlist {
	out := &rtl.Netlist{Name: n.Name, NumNets: n.NumNets}

	const (
		unknown int8 = iota
		const0
		const1
	)
	// Two extra slots cover the fresh tie nets Optimize may allocate.
	cv := make([]int8, n.NumNets+2) // constant value per net, if known
	alias := make([]rtl.Net, n.NumNets+2)
	for i := range alias {
		alias[i] = rtl.Net(i)
	}
	resolve := func(net rtl.Net) rtl.Net {
		for alias[net] != net {
			net = alias[net]
		}
		return net
	}

	var tie0, tie1 rtl.Net = -1, -1
	getTie := func(v int8) rtl.Net {
		if v == const0 {
			if tie0 < 0 {
				tie0 = out.AddCell(rtl.TIE0)
				cv[tie0] = const0
			}
			return tie0
		}
		if tie1 < 0 {
			tie1 = out.AddCell(rtl.TIE1)
			cv[tie1] = const1
		}
		return tie1
	}

	dedup := map[string]rtl.Net{}

	for _, c := range n.Levelize() {
		in := make([]rtl.Net, len(c.In))
		iv := make([]int8, len(c.In))
		for i, x := range c.In {
			in[i] = resolve(x)
			iv[i] = cv[in[i]]
		}
		// Constant folding / simplification per cell kind.
		setConst := func(v int8) { cv[c.Out] = v; alias[c.Out] = getTie(v) }
		setAlias := func(src rtl.Net) { alias[c.Out] = src; cv[c.Out] = cv[src] }
		switch c.Kind {
		case rtl.TIE0:
			setConst(const0)
			continue
		case rtl.TIE1:
			setConst(const1)
			continue
		case rtl.BUF:
			setAlias(in[0])
			continue
		case rtl.INV:
			if iv[0] == const0 {
				setConst(const1)
				continue
			}
			if iv[0] == const1 {
				setConst(const0)
				continue
			}
		case rtl.AND2, rtl.NAND2:
			neg := c.Kind == rtl.NAND2
			if iv[0] == const0 || iv[1] == const0 {
				setConst(cbool(neg))
				continue
			}
			if iv[0] == const1 && iv[1] == const1 {
				setConst(cbool(!neg))
				continue
			}
			if !neg && iv[0] == const1 {
				setAlias(in[1])
				continue
			}
			if !neg && iv[1] == const1 {
				setAlias(in[0])
				continue
			}
		case rtl.OR2, rtl.NOR2:
			neg := c.Kind == rtl.NOR2
			if iv[0] == const1 || iv[1] == const1 {
				setConst(cbool(!neg))
				continue
			}
			if iv[0] == const0 && iv[1] == const0 {
				setConst(cbool(neg))
				continue
			}
			if !neg && iv[0] == const0 {
				setAlias(in[1])
				continue
			}
			if !neg && iv[1] == const0 {
				setAlias(in[0])
				continue
			}
		case rtl.XOR2, rtl.XNOR2:
			neg := c.Kind == rtl.XNOR2
			if iv[0] != unknown && iv[1] != unknown {
				same := iv[0] == iv[1]
				setConst(cbool(same == neg))
				continue
			}
			if iv[0] == const0 && !neg {
				setAlias(in[1])
				continue
			}
			if iv[1] == const0 && !neg {
				setAlias(in[0])
				continue
			}
		case rtl.MUX2:
			if iv[0] == const1 {
				setAlias(in[1])
				continue
			}
			if iv[0] == const0 {
				setAlias(in[2])
				continue
			}
			if in[1] == in[2] {
				setAlias(in[1])
				continue
			}
		}
		// Structural dedup.
		key := fmt.Sprintf("%d", c.Kind)
		for _, x := range in {
			key += fmt.Sprintf(":%d", x)
		}
		if prev, ok := dedup[key]; ok {
			alias[c.Out] = prev
			cv[c.Out] = cv[prev]
			continue
		}
		out.Cells = append(out.Cells, rtl.Cell{Kind: c.Kind, Out: c.Out, In: in})
		dedup[key] = c.Out
	}

	// Flops: rewrite D through aliases. A flop fed by a constant still
	// settles to that constant after one cycle; keep it for cycle
	// accuracy (it is also counted by the paper-style gate metrics).
	for _, d := range n.DFFs {
		out.DFFs = append(out.DFFs, rtl.Cell{Kind: rtl.DFF, Out: d.Out, In: []rtl.Net{resolve(d.In[0])}})
	}

	// Ports.
	for _, p := range n.Inputs {
		out.Inputs = append(out.Inputs, p)
	}
	for _, p := range n.Outputs {
		out.Outputs = append(out.Outputs, rtl.PortBit{Name: p.Name, Bit: p.Bit, Net: resolve(p.Net)})
	}
	// An output aliased to a constant needs a tie cell driver; resolve
	// already points it at the tie net created above.

	return deadCellRemoval(out)
}

func cbool(b bool) int8 {
	if b {
		return 2 // const1
	}
	return 1 // const0
}

// deadCellRemoval drops cells whose outputs reach no output port and no
// flop input.
func deadCellRemoval(n *rtl.Netlist) *rtl.Netlist {
	driver := map[rtl.Net]int{}
	for i, c := range n.Cells {
		driver[c.Out] = i
	}
	live := make([]bool, len(n.Cells))
	var mark func(net rtl.Net)
	mark = func(net rtl.Net) {
		i, ok := driver[net]
		if !ok || live[i] {
			return
		}
		live[i] = true
		for _, in := range n.Cells[i].In {
			mark(in)
		}
	}
	for _, p := range n.Outputs {
		mark(p.Net)
	}
	for _, d := range n.DFFs {
		mark(d.In[0])
	}
	out := &rtl.Netlist{Name: n.Name, NumNets: n.NumNets,
		Inputs: n.Inputs, Outputs: n.Outputs, DFFs: n.DFFs}
	for i, c := range n.Cells {
		if live[i] {
			out.Cells = append(out.Cells, c)
		}
	}
	return out
}
