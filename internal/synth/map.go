package synth

import (
	"fmt"

	"repro/internal/hls"
	"repro/internal/rtl"
)

// Map bit-blasts a scheduled design into a gate-level netlist: word
// operations become gate networks, and every value crossing a pipeline
// stage boundary gets a flop per bit per boundary.
func Map(s *hls.Schedule) *rtl.Netlist {
	m := &mapper{
		n:    &rtl.Netlist{Name: s.Design.Name},
		bits: make([][]rtl.Net, len(s.Design.Ops)),
	}
	m.tie0 = m.n.AddCell(rtl.TIE0)
	m.tie1 = m.n.AddCell(rtl.TIE1)

	// regd[i][k] caches op i's value registered to stage k.
	regd := make([]map[int][]rtl.Net, len(s.Design.Ops))

	// argBits fetches op a's bits as seen at consumer stage.
	argBits := func(a *hls.Op, stage int) []rtl.Net {
		if stage == a.Stage {
			return m.bits[a.ID]
		}
		if stage < a.Stage {
			panic(fmt.Sprintf("synth: op consumed before produced (%d@%d by stage %d)", a.ID, a.Stage, stage))
		}
		if regd[a.ID] == nil {
			regd[a.ID] = map[int][]rtl.Net{}
		}
		if got, ok := regd[a.ID][stage]; ok {
			return got
		}
		// Chain registers stage by stage.
		prev := m.bits[a.ID]
		for k := a.Stage + 1; k <= stage; k++ {
			if got, ok := regd[a.ID][k]; ok {
				prev = got
				continue
			}
			cur := make([]rtl.Net, len(prev))
			for i, b := range prev {
				cur[i] = m.n.AddCell(rtl.DFF, b)
			}
			regd[a.ID][k] = cur
			prev = cur
		}
		return prev
	}

	for _, op := range s.Design.Ops {
		args := make([][]rtl.Net, len(op.Args))
		for i, a := range op.Args {
			args[i] = argBits(a, op.Stage)
		}
		m.bits[op.ID] = m.mapOp(op, args)
	}
	return m.n
}

type mapper struct {
	n          *rtl.Netlist
	bits       [][]rtl.Net
	tie0, tie1 rtl.Net
}

func (m *mapper) constBits(v uint64, w int) []rtl.Net {
	out := make([]rtl.Net, w)
	for i := 0; i < w; i++ {
		if v>>uint(i)&1 == 1 {
			out[i] = m.tie1
		} else {
			out[i] = m.tie0
		}
	}
	return out
}

// fullAdder returns (sum, carry) of a+b+cin using 5 cells.
func (m *mapper) fullAdder(a, b, cin rtl.Net) (sum, cout rtl.Net) {
	axb := m.n.AddCell(rtl.XOR2, a, b)
	sum = m.n.AddCell(rtl.XOR2, axb, cin)
	ab := m.n.AddCell(rtl.AND2, a, b)
	c2 := m.n.AddCell(rtl.AND2, axb, cin)
	cout = m.n.AddCell(rtl.OR2, ab, c2)
	return
}

// rippleAdd returns a+b+cin truncated to len(a) bits.
func (m *mapper) rippleAdd(a, b []rtl.Net, cin rtl.Net) []rtl.Net {
	out := make([]rtl.Net, len(a))
	c := cin
	for i := range a {
		out[i], c = m.fullAdder(a[i], b[i], c)
	}
	return out
}

func (m *mapper) mapOp(op *hls.Op, args [][]rtl.Net) []rtl.Net {
	w := op.Width
	switch op.Kind {
	case hls.OpInput:
		out := make([]rtl.Net, w)
		for i := range out {
			out[i] = m.n.NewNet()
			m.n.Inputs = append(m.n.Inputs, rtl.PortBit{Name: op.Name, Bit: i, Net: out[i]})
		}
		return out
	case hls.OpOutput:
		for i, b := range args[0] {
			m.n.Outputs = append(m.n.Outputs, rtl.PortBit{Name: op.Name, Bit: i, Net: b})
		}
		return args[0]
	case hls.OpConst:
		return m.constBits(op.Value, w)
	case hls.OpAdd:
		return m.rippleAdd(args[0], args[1], m.tie0)
	case hls.OpSub:
		nb := make([]rtl.Net, w)
		for i, b := range args[1] {
			nb[i] = m.n.AddCell(rtl.INV, b)
		}
		return m.rippleAdd(args[0], nb, m.tie1)
	case hls.OpMul:
		// Shift-add array multiplier truncated to w bits.
		acc := m.constBits(0, w)
		for i := 0; i < w; i++ {
			pp := make([]rtl.Net, w)
			for j := range pp {
				if j < i {
					pp[j] = m.tie0
				} else {
					pp[j] = m.n.AddCell(rtl.AND2, args[0][i], args[1][j-i])
				}
			}
			acc = m.rippleAdd(acc, pp, m.tie0)
		}
		return acc
	case hls.OpAnd, hls.OpOr, hls.OpXor:
		kind := map[hls.OpKind]rtl.CellKind{hls.OpAnd: rtl.AND2, hls.OpOr: rtl.OR2, hls.OpXor: rtl.XOR2}[op.Kind]
		out := make([]rtl.Net, w)
		for i := range out {
			out[i] = m.n.AddCell(kind, args[0][i], args[1][i])
		}
		return out
	case hls.OpNot:
		out := make([]rtl.Net, w)
		for i := range out {
			out[i] = m.n.AddCell(rtl.INV, args[0][i])
		}
		return out
	case hls.OpShlC:
		out := make([]rtl.Net, w)
		for i := range out {
			if i-op.Amount >= 0 && i-op.Amount < len(args[0]) {
				out[i] = args[0][i-op.Amount]
			} else {
				out[i] = m.tie0
			}
		}
		return out
	case hls.OpShrC:
		out := make([]rtl.Net, w)
		for i := range out {
			if i+op.Amount < len(args[0]) {
				out[i] = args[0][i+op.Amount]
			} else {
				out[i] = m.tie0
			}
		}
		return out
	case hls.OpEq:
		// XNOR per bit, AND tree.
		eqs := make([]rtl.Net, len(args[0]))
		for i := range eqs {
			eqs[i] = m.n.AddCell(rtl.XNOR2, args[0][i], args[1][i])
		}
		return []rtl.Net{m.andTree(eqs)}
	case hls.OpLt:
		// Borrow-ripple comparator: borrow out of a-b.
		borrow := m.tie0
		for i := range args[0] {
			na := m.n.AddCell(rtl.INV, args[0][i])
			naAndB := m.n.AddCell(rtl.AND2, na, args[1][i])
			axb := m.n.AddCell(rtl.XNOR2, args[0][i], args[1][i])
			prop := m.n.AddCell(rtl.AND2, axb, borrow)
			borrow = m.n.AddCell(rtl.OR2, naAndB, prop)
		}
		return []rtl.Net{borrow}
	case hls.OpMux:
		out := make([]rtl.Net, w)
		for i := range out {
			out[i] = m.n.AddCell(rtl.MUX2, args[0][0], args[1][i], args[2][i])
		}
		return out
	case hls.OpSlice:
		return args[0][op.Amount : op.Amount+w]
	case hls.OpZExt:
		out := make([]rtl.Net, w)
		copy(out, args[0])
		for i := len(args[0]); i < w; i++ {
			out[i] = m.tie0
		}
		return out
	case hls.OpConcat:
		out := make([]rtl.Net, 0, w)
		out = append(out, args[0]...)
		out = append(out, args[1]...)
		return out
	default:
		panic(fmt.Sprintf("synth: cannot map %v", op.Kind))
	}
}

// andTree reduces nets with a balanced AND tree.
func (m *mapper) andTree(ns []rtl.Net) rtl.Net {
	for len(ns) > 1 {
		var next []rtl.Net
		for i := 0; i < len(ns); i += 2 {
			if i+1 < len(ns) {
				next = append(next, m.n.AddCell(rtl.AND2, ns[i], ns[i+1]))
			} else {
				next = append(next, ns[i])
			}
		}
		ns = next
	}
	return ns[0]
}
