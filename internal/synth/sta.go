package synth

import "repro/internal/rtl"

// Timing is the result of static timing analysis on a mapped netlist.
type Timing struct {
	CriticalPS int     // longest register-to-register (or port-to-port) path
	FmaxMHz    float64 // 1e6 / CriticalPS
	Levels     int     // logic depth on the critical path, in cells
}

// STA computes the longest combinational path through the netlist using
// the library's pin-to-pin delays, adding flop clock-to-Q at path starts,
// setup at path ends, and a lumped wire allowance per stage.
func STA(n *rtl.Netlist, lib *TechLib) Timing {
	arrive := make([]int, n.NumNets) // arrival time per net
	depth := make([]int, n.NumNets)  // cells traversed
	isFlopQ := make(map[rtl.Net]bool, len(n.DFFs))
	for _, d := range n.DFFs {
		isFlopQ[d.Out] = true
		arrive[d.Out] = lib.ClkQ
	}
	worst, worstDepth := 0, 0
	for _, c := range n.Levelize() {
		start := 0
		dep := 0
		for _, in := range c.In {
			if arrive[in] > start {
				start = arrive[in]
			}
			if depth[in] > dep {
				dep = depth[in]
			}
		}
		arrive[c.Out] = start + lib.Delay[c.Kind]
		depth[c.Out] = dep + 1
	}
	endpoint := func(net rtl.Net, setup int) {
		t := arrive[net] + setup
		if t > worst {
			worst, worstDepth = t, depth[net]
		}
	}
	for _, d := range n.DFFs {
		endpoint(d.In[0], lib.Setup)
	}
	for _, p := range n.Outputs {
		endpoint(p.Net, 0)
	}
	worst += lib.WireDly
	if worst == lib.WireDly {
		worst = lib.WireDly + lib.ClkQ // empty netlist: flop-to-flop minimum
	}
	return Timing{CriticalPS: worst, FmaxMHz: 1e6 / float64(worst), Levels: worstDepth}
}

// AreaReport breaks a netlist's area down by cell kind.
type AreaReport struct {
	Name       string
	ByKind     [12]int
	Comb       float64 // combinational area, NAND2 equivalents
	Sequential float64 // flop area
	Total      float64
	GateCount  int
}

// Report computes the area report for a netlist.
func Report(n *rtl.Netlist, lib *TechLib) AreaReport {
	r := AreaReport{Name: n.Name}
	for _, c := range n.Cells {
		r.ByKind[c.Kind]++
		r.Comb += lib.Area[c.Kind]
	}
	for range n.DFFs {
		r.ByKind[rtl.DFF]++
		r.Sequential += lib.Area[rtl.DFF]
	}
	r.Total = r.Comb + r.Sequential
	r.GateCount = int(r.Total + 0.5)
	return r
}
