package bitvec

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// toBig converts a Vec to a big.Int for reference checks.
func toBig(x Vec) *big.Int {
	z := new(big.Int)
	for i := len(x.words) - 1; i >= 0; i-- {
		z.Lsh(z, 64)
		z.Or(z, new(big.Int).SetUint64(x.words[i]))
	}
	return z
}

func bigMask(width int) *big.Int {
	m := big.NewInt(1)
	m.Lsh(m, uint(width))
	return m.Sub(m, big.NewInt(1))
}

func randVec(r *rand.Rand, width int) Vec {
	x := New(width)
	for i := range x.words {
		x.words[i] = r.Uint64()
	}
	x.mask()
	return x
}

func TestFromUint64Masks(t *testing.T) {
	x := FromUint64(0xff, 4)
	if got := x.Uint64(); got != 0xf {
		t.Fatalf("FromUint64(0xff,4) = %#x, want 0xf", got)
	}
	if x.Width() != 4 {
		t.Fatalf("width = %d, want 4", x.Width())
	}
}

func TestBitSetBit(t *testing.T) {
	x := New(130)
	x = x.SetBit(0, 1).SetBit(64, 1).SetBit(129, 1)
	for _, i := range []int{0, 64, 129} {
		if x.Bit(i) != 1 {
			t.Errorf("bit %d = 0, want 1", i)
		}
	}
	if x.OnesCount() != 3 {
		t.Errorf("OnesCount = %d, want 3", x.OnesCount())
	}
	x = x.SetBit(64, 0)
	if x.Bit(64) != 0 {
		t.Error("SetBit(64,0) did not clear")
	}
}

func TestBitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Bit out of range did not panic")
		}
	}()
	New(8).Bit(8)
}

func TestWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with mismatched widths did not panic")
		}
	}()
	New(8).Add(New(9))
}

// Property: every arithmetic/logic op matches math/big modulo 2^width.
func TestOpsMatchBig(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		width := 1 + r.Intn(200)
		x, y := randVec(r, width), randVec(r, width)
		bx, by, m := toBig(x), toBig(y), bigMask(width)

		check := func(name string, got Vec, want *big.Int) {
			t.Helper()
			want.And(want, m)
			if toBig(got).Cmp(want) != 0 {
				t.Fatalf("width=%d %s: got %v want %v (x=%v y=%v)", width, name, toBig(got), want, bx, by)
			}
			if got.Width() != width {
				t.Fatalf("%s result width %d != %d", name, got.Width(), width)
			}
		}
		check("Add", x.Add(y), new(big.Int).Add(bx, by))
		check("Sub", x.Sub(y), new(big.Int).Sub(new(big.Int).Add(bx, new(big.Int).Lsh(big.NewInt(1), uint(width))), by))
		check("Mul", x.Mul(y), new(big.Int).Mul(bx, by))
		check("And", x.And(y), new(big.Int).And(bx, by))
		check("Or", x.Or(y), new(big.Int).Or(bx, by))
		check("Xor", x.Xor(y), new(big.Int).Xor(bx, by))
		check("Not", x.Not(), new(big.Int).Xor(bx, m))

		n := r.Intn(width + 10)
		check("Shl", x.Shl(n), new(big.Int).Lsh(bx, uint(n)))
		check("Shr", x.Shr(n), new(big.Int).Rsh(bx, uint(n)))

		if x.Eq(y) != (bx.Cmp(by) == 0) {
			t.Fatalf("Eq mismatch")
		}
		if x.Cmp(y) != bx.Cmp(by) {
			t.Fatalf("Cmp mismatch: %d vs %d", x.Cmp(y), bx.Cmp(by))
		}
	}
}

func TestSliceConcatRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 500; iter++ {
		wlo := 1 + r.Intn(100)
		whi := 1 + r.Intn(100)
		lo, hi := randVec(r, wlo), randVec(r, whi)
		cat := lo.Concat(hi)
		if cat.Width() != wlo+whi {
			t.Fatalf("concat width %d", cat.Width())
		}
		if !cat.Slice(0, wlo).Eq(lo) {
			t.Fatalf("low slice mismatch")
		}
		if !cat.Slice(wlo, whi).Eq(hi) {
			t.Fatalf("high slice mismatch")
		}
	}
}

func TestExtend(t *testing.T) {
	x := FromUint64(0x80, 8)
	if got := x.ZeroExtend(16).Uint64(); got != 0x80 {
		t.Errorf("ZeroExtend = %#x", got)
	}
	if got := x.SignExtend(16).Uint64(); got != 0xff80 {
		t.Errorf("SignExtend = %#x", got)
	}
	pos := FromUint64(0x7f, 8)
	if got := pos.SignExtend(16).Uint64(); got != 0x7f {
		t.Errorf("SignExtend positive = %#x", got)
	}
}

func TestBytesRoundTrip(t *testing.T) {
	if err := quick.Check(func(b []byte) bool {
		width := len(b) * 8
		x := FromBytes(b, width)
		out := x.Bytes()
		if len(out) != len(b) {
			return false
		}
		for i := range b {
			if out[i] != b[i] {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestWordsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for iter := 0; iter < 200; iter++ {
		width := 1 + r.Intn(300)
		x := randVec(r, width)
		y := FromWords(x.Words(), width)
		if !x.Eq(y) {
			t.Fatalf("words round trip failed at width %d", width)
		}
	}
}

func TestString(t *testing.T) {
	x := FromUint64(0xabc, 12)
	if got := x.String(); got != "12'habc" {
		t.Errorf("String = %q, want 12'habc", got)
	}
	if got := New(0).String(); got != "0'h0" {
		t.Errorf("zero-width String = %q", got)
	}
}

func TestIsZero(t *testing.T) {
	if !New(100).IsZero() {
		t.Error("fresh vector not zero")
	}
	if FromUint64(1, 100).IsZero() {
		t.Error("nonzero vector reported zero")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := FromUint64(5, 8)
	y := x.Clone().SetBit(1, 1)
	if x.Uint64() != 5 {
		t.Errorf("clone mutated original: %#x", x.Uint64())
	}
	_ = y
}

// quick.Check invariants complementing the big.Int differential tests.

func TestQuickDeMorgan(t *testing.T) {
	if err := quick.Check(func(a, b []byte) bool {
		n := min(len(a), len(b))
		if n == 0 {
			return true
		}
		w := n * 8
		x, y := FromBytes(a[:n], w), FromBytes(b[:n], w)
		lhs := x.And(y).Not()
		rhs := x.Not().Or(y.Not())
		return lhs.Eq(rhs)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickShiftRoundTrip(t *testing.T) {
	if err := quick.Check(func(b []byte, sh uint8) bool {
		if len(b) == 0 {
			return true
		}
		w := len(b) * 8
		n := int(sh) % w
		x := FromBytes(b, w)
		// Left then right shift preserves the low w-n bits.
		got := x.Shl(n).Shr(n)
		want := x.Trunc(w - n).ZeroExtend(w)
		return got.Eq(want)
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickAddSubInverse(t *testing.T) {
	if err := quick.Check(func(a, b []byte) bool {
		n := min(len(a), len(b))
		if n == 0 {
			return true
		}
		w := n * 8
		x, y := FromBytes(a[:n], w), FromBytes(b[:n], w)
		return x.Add(y).Sub(y).Eq(x)
	}, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAdd256(b *testing.B) {
	r := rand.New(rand.NewSource(4))
	x, y := randVec(r, 256), randVec(r, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x = x.Add(y)
	}
}

func BenchmarkMul256(b *testing.B) {
	r := rand.New(rand.NewSource(5))
	x, y := randVec(r, 256), randVec(r, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Mul(y)
	}
}
