package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is an unsigned bit vector of a fixed width.
// The zero value is a zero-width vector.
type Vec struct {
	width int
	words []uint64
}

// New returns a zero vector of the given width in bits.
func New(width int) Vec {
	if width < 0 {
		panic("bitvec: negative width")
	}
	return Vec{width: width, words: make([]uint64, nwords(width))}
}

// FromUint64 returns a vector of the given width holding v truncated to width.
func FromUint64(v uint64, width int) Vec {
	x := New(width)
	if width == 0 {
		return x
	}
	x.words[0] = v
	x.mask()
	return x
}

// FromWords returns a vector of the given width from little-endian 64-bit words.
// Excess high bits are truncated.
func FromWords(words []uint64, width int) Vec {
	x := New(width)
	copy(x.words, words)
	x.mask()
	return x
}

// FromBytes returns a vector from little-endian bytes.
func FromBytes(b []byte, width int) Vec {
	x := New(width)
	for i, v := range b {
		if i/8 >= len(x.words) {
			break
		}
		x.words[i/8] |= uint64(v) << (8 * (i % 8))
	}
	x.mask()
	return x
}

func nwords(width int) int { return (width + wordBits - 1) / wordBits }

// mask clears bits above width in the top word.
func (x *Vec) mask() {
	if x.width == 0 || len(x.words) == 0 {
		return
	}
	rem := x.width % wordBits
	if rem != 0 {
		x.words[len(x.words)-1] &= (1 << rem) - 1
	}
}

// Width returns the width in bits.
func (x Vec) Width() int { return x.width }

// Clone returns an independent copy of x.
func (x Vec) Clone() Vec {
	y := Vec{width: x.width, words: make([]uint64, len(x.words))}
	copy(y.words, x.words)
	return y
}

// Uint64 returns the low 64 bits of x.
func (x Vec) Uint64() uint64 {
	if len(x.words) == 0 {
		return 0
	}
	return x.words[0]
}

// Bit returns bit i (0 = LSB).
func (x Vec) Bit(i int) uint {
	if i < 0 || i >= x.width {
		panic(fmt.Sprintf("bitvec: bit index %d out of range [0,%d)", i, x.width))
	}
	return uint(x.words[i/wordBits]>>(i%wordBits)) & 1
}

// SetBit returns a copy of x with bit i set to b.
func (x Vec) SetBit(i int, b uint) Vec {
	if i < 0 || i >= x.width {
		panic(fmt.Sprintf("bitvec: bit index %d out of range [0,%d)", i, x.width))
	}
	y := x.Clone()
	if b&1 == 1 {
		y.words[i/wordBits] |= 1 << (i % wordBits)
	} else {
		y.words[i/wordBits] &^= 1 << (i % wordBits)
	}
	return y
}

// IsZero reports whether all bits are clear.
func (x Vec) IsZero() bool {
	for _, w := range x.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// OnesCount returns the population count.
func (x Vec) OnesCount() int {
	n := 0
	for _, w := range x.words {
		n += bits.OnesCount64(w)
	}
	return n
}

func (x Vec) checkSame(y Vec, op string) {
	if x.width != y.width {
		panic(fmt.Sprintf("bitvec: %s width mismatch %d vs %d", op, x.width, y.width))
	}
}

// And returns x & y. Widths must match.
func (x Vec) And(y Vec) Vec {
	x.checkSame(y, "And")
	z := x.Clone()
	for i := range z.words {
		z.words[i] &= y.words[i]
	}
	return z
}

// Or returns x | y. Widths must match.
func (x Vec) Or(y Vec) Vec {
	x.checkSame(y, "Or")
	z := x.Clone()
	for i := range z.words {
		z.words[i] |= y.words[i]
	}
	return z
}

// Xor returns x ^ y. Widths must match.
func (x Vec) Xor(y Vec) Vec {
	x.checkSame(y, "Xor")
	z := x.Clone()
	for i := range z.words {
		z.words[i] ^= y.words[i]
	}
	return z
}

// Not returns ^x within width.
func (x Vec) Not() Vec {
	z := x.Clone()
	for i := range z.words {
		z.words[i] = ^z.words[i]
	}
	z.mask()
	return z
}

// Add returns (x + y) mod 2^width. Widths must match.
func (x Vec) Add(y Vec) Vec {
	x.checkSame(y, "Add")
	z := x.Clone()
	var carry uint64
	for i := range z.words {
		s, c1 := bits.Add64(z.words[i], y.words[i], carry)
		z.words[i] = s
		carry = c1
	}
	z.mask()
	return z
}

// Sub returns (x - y) mod 2^width. Widths must match.
func (x Vec) Sub(y Vec) Vec {
	x.checkSame(y, "Sub")
	z := x.Clone()
	var borrow uint64
	for i := range z.words {
		d, b1 := bits.Sub64(z.words[i], y.words[i], borrow)
		z.words[i] = d
		borrow = b1
	}
	z.mask()
	return z
}

// Mul returns (x * y) mod 2^width. Widths must match.
func (x Vec) Mul(y Vec) Vec {
	x.checkSame(y, "Mul")
	z := New(x.width)
	for i, xw := range x.words {
		if xw == 0 {
			continue
		}
		var carry uint64
		for j := 0; i+j < len(z.words); j++ {
			hi, lo := bits.Mul64(xw, y.words[j])
			var c uint64
			z.words[i+j], c = bits.Add64(z.words[i+j], lo, 0)
			carry2 := c
			z.words[i+j], c = bits.Add64(z.words[i+j], carry, 0)
			carry2 += c
			carry = hi + carry2
		}
	}
	z.mask()
	return z
}

// Shl returns x << n within width.
func (x Vec) Shl(n int) Vec {
	if n < 0 {
		panic("bitvec: negative shift")
	}
	z := New(x.width)
	if n >= x.width {
		return z
	}
	wordShift, bitShift := n/wordBits, uint(n%wordBits)
	for i := len(z.words) - 1; i >= wordShift; i-- {
		z.words[i] = x.words[i-wordShift] << bitShift
		if bitShift != 0 && i-wordShift-1 >= 0 {
			z.words[i] |= x.words[i-wordShift-1] >> (wordBits - bitShift)
		}
	}
	z.mask()
	return z
}

// Shr returns x >> n (logical).
func (x Vec) Shr(n int) Vec {
	if n < 0 {
		panic("bitvec: negative shift")
	}
	z := New(x.width)
	if n >= x.width {
		return z
	}
	wordShift, bitShift := n/wordBits, uint(n%wordBits)
	for i := 0; i+wordShift < len(x.words); i++ {
		z.words[i] = x.words[i+wordShift] >> bitShift
		if bitShift != 0 && i+wordShift+1 < len(x.words) {
			z.words[i] |= x.words[i+wordShift+1] << (wordBits - bitShift)
		}
	}
	return z
}

// Eq reports x == y. Widths must match.
func (x Vec) Eq(y Vec) bool {
	x.checkSame(y, "Eq")
	for i := range x.words {
		if x.words[i] != y.words[i] {
			return false
		}
	}
	return true
}

// Cmp compares x and y as unsigned integers: -1, 0, or +1. Widths must match.
func (x Vec) Cmp(y Vec) int {
	x.checkSame(y, "Cmp")
	for i := len(x.words) - 1; i >= 0; i-- {
		switch {
		case x.words[i] < y.words[i]:
			return -1
		case x.words[i] > y.words[i]:
			return 1
		}
	}
	return 0
}

// Slice returns bits [lo, lo+width) of x as a new vector.
func (x Vec) Slice(lo, width int) Vec {
	if lo < 0 || width < 0 || lo+width > x.width {
		panic(fmt.Sprintf("bitvec: slice [%d,%d) out of range [0,%d)", lo, lo+width, x.width))
	}
	return x.Shr(lo).Trunc(width)
}

// Trunc returns the low width bits of x.
func (x Vec) Trunc(width int) Vec {
	if width > x.width {
		panic(fmt.Sprintf("bitvec: trunc to %d wider than %d", width, x.width))
	}
	z := New(width)
	copy(z.words, x.words[:min(len(x.words), len(z.words))])
	z.mask()
	return z
}

// ZeroExtend returns x extended with zeros to the given width.
func (x Vec) ZeroExtend(width int) Vec {
	if width < x.width {
		panic(fmt.Sprintf("bitvec: zero-extend to %d narrower than %d", width, x.width))
	}
	z := New(width)
	copy(z.words, x.words)
	return z
}

// SignExtend returns x sign-extended to the given width.
func (x Vec) SignExtend(width int) Vec {
	z := x.ZeroExtend(width)
	if x.width > 0 && x.Bit(x.width-1) == 1 {
		for i := x.width; i < width; i++ {
			z.words[i/wordBits] |= 1 << (i % wordBits)
		}
	}
	return z
}

// Concat returns {hi, x}: x occupies the low bits, hi the high bits.
func (x Vec) Concat(hi Vec) Vec {
	z := x.ZeroExtend(x.width + hi.width)
	return z.Or(hi.ZeroExtend(z.width).Shl(x.width))
}

// Words returns a copy of the underlying little-endian words.
func (x Vec) Words() []uint64 {
	w := make([]uint64, len(x.words))
	copy(w, x.words)
	return w
}

// Bytes returns the vector as little-endian bytes, ceil(width/8) long.
func (x Vec) Bytes() []byte {
	n := (x.width + 7) / 8
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(x.words[i/8] >> (8 * (i % 8)))
	}
	return b
}

// String renders the vector as width'h<hex>.
func (x Vec) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d'h", x.width)
	digits := (x.width + 3) / 4
	if digits == 0 {
		sb.WriteString("0")
		return sb.String()
	}
	for i := digits - 1; i >= 0; i-- {
		nib := (x.words[i/16] >> (4 * (i % 16))) & 0xf
		fmt.Fprintf(&sb, "%x", nib)
	}
	return sb.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
