// Package bitvec provides arbitrary-width bit vectors used throughout the
// flow wherever bit-accurate hardware values are needed: RTL netlist
// simulation, packetization of latency-insensitive channel messages, and
// the serializer/deserializer components.
//
// A Vec is a value type: operations return new vectors and never alias the
// operands. Widths are explicit; binary operations require equal widths and
// panic otherwise, mirroring the strict width discipline of synthesizable
// hardware datatypes (sc_bv / sc_uint).
//
// In the paper's terms this is the value substrate beneath the bit-level
// work of Table 3's RTL flows: the same vectors carry netlist signal
// states, RTL-cosim channel payloads, and flit bodies.
package bitvec
