package noc

import (
	"repro/internal/bitvec"
	"repro/internal/connections"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Packet is the unit of end-to-end NoC communication.
type Packet struct {
	Src, Dst int
	ID       uint64
	Payload  []uint64
}

// Flit is one cycle of link transfer. A packet becomes a head flit
// followed by one flit per payload word; the final flit carries Tail.
type Flit struct {
	Head, Tail bool
	Src, Dst   int
	VC         int
	PktID      uint64
	Data       uint64
}

// PackBits renders the flit's wire image for RTL-cosim channels.
func (f Flit) PackBits() bitvec.Vec {
	meta := uint64(0)
	if f.Head {
		meta |= 1
	}
	if f.Tail {
		meta |= 2
	}
	meta |= uint64(f.VC&0x3) << 2
	meta |= uint64(f.Dst&0xff) << 4
	meta |= uint64(f.Src&0xff) << 12
	return bitvec.FromUint64(f.Data, 64).Concat(bitvec.FromUint64(meta, 20))
}

// Flits serializes the packet on virtual channel vc.
func (p Packet) Flits(vc int) []Flit {
	flits := make([]Flit, 0, len(p.Payload)+1)
	head := Flit{Head: true, Src: p.Src, Dst: p.Dst, VC: vc, PktID: p.ID}
	if len(p.Payload) == 0 {
		head.Tail = true
		return append(flits, head)
	}
	flits = append(flits, head)
	for i, w := range p.Payload {
		flits = append(flits, Flit{
			Src: p.Src, Dst: p.Dst, VC: vc, PktID: p.ID,
			Data: w, Tail: i == len(p.Payload)-1,
		})
	}
	return flits
}

// RouteFunc maps a destination node to a local output port of a router.
type RouteFunc func(dst int) int

// VCMapFunc optionally rewrites a flit's virtual channel as it leaves on
// an output port — the dateline mechanism that makes rings deadlock-free.
type VCMapFunc func(outPort, vc int) int

// TerminateFlit binds a single flit out/in port pair to idle stub
// channels, used for unconnected edge ports of store-and-forward routers.
func TerminateFlit(clk *sim.Clock, name string, out *connections.Out[Flit], in *connections.In[Flit]) {
	connections.Buffer(clk, name+".o", 1, out, connections.NewIn[Flit](), connections.Terminator())
	connections.Buffer(clk, name+".i", 1, connections.NewOut[Flit](), in, connections.Terminator())
}

// RouterStats counts router activity.
type RouterStats struct {
	FlitsIn   uint64
	FlitsOut  uint64
	PacketsIn uint64
	Stalls    uint64 // output offers rejected by back-pressure
}

// emit surfaces the counters into the unified metrics registry; routers
// register it as their component's snapshot source.
func (s *RouterStats) emit(emit stats.Emit) {
	emit("flits_in", float64(s.FlitsIn))
	emit("flits_out", float64(s.FlitsOut))
	emit("packets_in", float64(s.PacketsIn))
	emit("stalls", float64(s.Stalls))
}
