// Package noc implements the MatchLib network-on-chip modules: the
// store-and-forward router (SFRouter), the wormhole router with virtual
// channels (WHVCRouter), network interfaces that packetize/depacketize
// messages, and mesh/ring topology builders. The prototype SoC's PE array
// uses a WHVC mesh, as in the paper's Figure 5.
//
// On an armed simulation (sim.Simulator.Arm) each WHVC router records
// crossbar back-pressure into the internal/trace recorder: one event
// per cycle an arbitrated flit was refused by a downstream VC buffer,
// tagged with the output port. Per-VC link occupancy comes from the
// channels themselves, which trace independently.
package noc
