package noc

import (
	"fmt"

	"repro/internal/connections"
	"repro/internal/matchlib"
	"repro/internal/sim"
	"repro/internal/trace"
)

// WHVCRouter is the wormhole router with virtual channels from Table 2.
// Every physical port is modelled as one latency-insensitive channel per
// virtual channel — the credit-based per-VC buffering of the hardware
// link — so a VC blocked downstream never blocks its siblings. A head
// flit arbitrates for an output VC and, once granted, owns it until its
// tail flit passes (wormhole switching); output VCs interleave freely on
// a port, which is what makes dateline rings deadlock-free.
type WHVCRouter struct {
	In  [][]*connections.In[Flit]  // [port][vc]
	Out [][]*connections.Out[Flit] // [port][vc]

	Stats RouterStats

	nPorts, nVCs int
	lock         [][]outLock         // [outPort][vcOut]
	arbs         []*matchlib.Arbiter // [outPort] over inPort*nVCs requesters
	route        RouteFunc
	vcMap        VCMapFunc

	name string
	clk  *sim.Clock
	sub  *trace.Subject // armed handshake tracing; nil when disarmed
}

type outLock struct {
	active bool
	inPort int
	vc     int // input VC that owns this output VC
}

// NewWHVCRouter builds a router with nPorts ports and nVCs virtual
// channels per port. route maps destinations to output ports; vcMap may
// be nil (identity). VC buffering depth is set by the channels bound to
// the ports.
func NewWHVCRouter(clk *sim.Clock, name string, nPorts, nVCs int, route RouteFunc, vcMap VCMapFunc) *WHVCRouter {
	if nPorts < 1 || nVCs < 1 || nPorts*nVCs > 64 {
		panic(fmt.Sprintf("noc: router geometry %d ports × %d VCs unsupported", nPorts, nVCs))
	}
	if vcMap == nil {
		vcMap = func(outPort, vc int) int { return vc }
	}
	r := &WHVCRouter{
		In:     make([][]*connections.In[Flit], nPorts),
		Out:    make([][]*connections.Out[Flit], nPorts),
		nPorts: nPorts,
		nVCs:   nVCs,
		lock:   make([][]outLock, nPorts),
		arbs:   make([]*matchlib.Arbiter, nPorts),
		route:  route,
		vcMap:  vcMap,
		name:   name,
		clk:    clk,
		sub:    clk.Sim().Tracer().Subject(name),
	}
	// A router moves flits data-dependently — which output a flit takes is
	// a function of its destination — so the rate analysis must not write
	// balance equations across it. Registering it as a switch actor breaks
	// the SDF region here on purpose.
	clk.Sim().Design().DeclareActor(name, sim.ActorSwitch, clk, sim.Rat{})
	for i := 0; i < nPorts; i++ {
		r.In[i] = make([]*connections.In[Flit], nVCs)
		r.Out[i] = make([]*connections.Out[Flit], nVCs)
		for v := 0; v < nVCs; v++ {
			r.In[i][v] = connections.NewIn[Flit]().Owned(clk, name, fmt.Sprintf("in[%d][%d]", i, v))
			r.Out[i][v] = connections.NewOut[Flit]().Owned(clk, name, fmt.Sprintf("out[%d][%d]", i, v))
		}
		r.lock[i] = make([]outLock, nVCs)
		r.arbs[i] = matchlib.NewArbiter(nPorts * nVCs)
	}
	clk.Spawn(name+".whvc", func(th *sim.Thread) { r.run(th) })
	clk.Sim().Component(name).Source(r.Stats.emit)
	return r
}

// DeclareSplit records the expected fraction of this router's output
// traffic leaving through port (num/den). The ratio is advisory: the
// rate analysis reports it beside the port's channels but never uses it
// to tighten a throughput bound, because measured traffic under a
// hotspot pattern may concentrate entirely on one port.
func (r *WHVCRouter) DeclareSplit(port int, num, den int64) *WHVCRouter {
	if port < 0 || port >= r.nPorts {
		panic(fmt.Sprintf("noc: split port %d out of range [0,%d)", port, r.nPorts))
	}
	r.clk.Sim().Design().DeclareSplit(r.name, fmt.Sprintf("out[%d]", port), sim.NewRat(num, den))
	return r
}

func (r *WHVCRouter) run(th *sim.Thread) {
	inUsed := make([]bool, r.nPorts)
	// With every input VC empty the loop body below is a no-op (req stays
	// zero for every output, so neither the arbiters nor the counters are
	// touched), so the thread parks until a flit is peekable. Peek never
	// charges a wait in any cost model, making this safe even under
	// ModeSignalAccurate.
	anyInput := func() bool {
		for i := 0; i < r.nPorts; i++ {
			for v := 0; v < r.nVCs; v++ {
				if _, ok := r.In[i][v].Peek(); ok {
					return true
				}
			}
		}
		return false
	}
	for {
		// Each output port sends at most one flit per cycle, chosen
		// round-robin among (a) input VCs that own one of its output VCs
		// and have a flit ready and (b) head flits requesting a free
		// output VC. Each input port also supplies at most one flit per
		// cycle (single crossbar input per port).
		for i := range inUsed {
			inUsed[i] = false
		}
		for o := 0; o < r.nPorts; o++ {
			var req uint64
			for i := 0; i < r.nPorts; i++ {
				if inUsed[i] {
					continue
				}
				for v := 0; v < r.nVCs; v++ {
					f, ok := r.In[i][v].Peek()
					if !ok {
						continue
					}
					vOut := r.vcMap(o, v)
					lk := r.lock[o][vOut]
					if f.Head {
						if r.route(f.Dst) == o && !lk.active {
							req |= 1 << uint(i*r.nVCs+v)
						}
					} else if lk.active && lk.inPort == i && lk.vc == v {
						req |= 1 << uint(i*r.nVCs+v)
					}
				}
			}
			if req == 0 {
				continue
			}
			g := r.arbs[o].Pick(req)
			if g < 0 {
				continue
			}
			if r.forward(th, o, g/r.nVCs, g%r.nVCs) {
				inUsed[g/r.nVCs] = true
			}
		}
		th.WaitFor(anyInput)
	}
}

// forward offers the head of In[i][v] to output o; on acceptance it
// retires the flit, acquiring the output VC at the head and releasing it
// at the tail. It reports whether a flit moved.
func (r *WHVCRouter) forward(th *sim.Thread, o, i, v int) bool {
	f, _ := r.In[i][v].Peek()
	vOut := r.vcMap(o, v)
	f.VC = vOut
	if !r.Out[o][vOut].PushNB(th, f) {
		r.Stats.Stalls++
		if r.sub != nil {
			// Router-level back-pressure: the crossbar had a flit for
			// output o but the downstream VC buffer refused it.
			r.sub.EmitOn(r.clk.Lane(), trace.KindFull, uint64(r.clk.Now()), r.clk.Cycle(), uint64(o))
		}
		return false
	}
	if _, ok := r.In[i][v].PopNB(th); !ok {
		panic("noc: peeked flit vanished before pop")
	}
	r.Stats.FlitsIn++
	r.Stats.FlitsOut++
	if f.Head {
		r.Stats.PacketsIn++
	}
	switch {
	case f.Tail:
		r.lock[o][vOut] = outLock{}
	case f.Head:
		r.lock[o][vOut] = outLock{active: true, inPort: i, vc: v}
	}
	return true
}
