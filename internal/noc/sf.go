package noc

import (
	"fmt"

	"repro/internal/connections"
	"repro/internal/matchlib"
	"repro/internal/sim"
)

// SFRouter is the store-and-forward router from Table 2: each input port
// buffers a complete packet before it competes for an output, so per-hop
// latency grows with packet length — the baseline the wormhole router is
// compared against in the NoC ablation benchmarks.
type SFRouter struct {
	In  []*connections.In[Flit]
	Out []*connections.Out[Flit]

	Stats RouterStats

	nPorts     int
	assembling [][]Flit                 // [inPort] partial packet
	ready      []*matchlib.FIFO[[]Flit] // [inPort] complete packets
	sending    []sfSend                 // [outPort]
	arbs       []*matchlib.Arbiter      // [outPort]
	route      RouteFunc
}

type sfSend struct {
	flits []Flit
	idx   int
}

// NewSFRouter builds a store-and-forward router holding up to pktQ
// complete packets per input.
func NewSFRouter(clk *sim.Clock, name string, nPorts, pktQ int, route RouteFunc) *SFRouter {
	if nPorts < 1 || nPorts > 64 {
		panic(fmt.Sprintf("noc: router ports %d unsupported", nPorts))
	}
	r := &SFRouter{
		In:         make([]*connections.In[Flit], nPorts),
		Out:        make([]*connections.Out[Flit], nPorts),
		nPorts:     nPorts,
		assembling: make([][]Flit, nPorts),
		ready:      make([]*matchlib.FIFO[[]Flit], nPorts),
		sending:    make([]sfSend, nPorts),
		arbs:       make([]*matchlib.Arbiter, nPorts),
		route:      route,
	}
	for i := 0; i < nPorts; i++ {
		r.In[i] = connections.NewIn[Flit]().Owned(clk, name, fmt.Sprintf("in[%d]", i))
		r.Out[i] = connections.NewOut[Flit]().Owned(clk, name, fmt.Sprintf("out[%d]", i))
		r.ready[i] = matchlib.NewFIFO[[]Flit](pktQ)
		r.arbs[i] = matchlib.NewArbiter(nPorts)
	}
	clk.Spawn(name+".sf", func(th *sim.Thread) { r.run(th) })
	clk.Sim().Component(name).Source(r.Stats.emit)
	return r
}

func (r *SFRouter) run(th *sim.Thread) {
	// The loop body is a no-op when every input is empty, every assembled
	// packet queue is empty, and no output is mid-packet, so the thread
	// parks on that condition. Parking skips the failing per-input PopNB
	// calls, which is only behavior-preserving when no input charges a
	// per-attempt handshake wait (ModeSignalAccurate).
	park := true
	for i := 0; i < r.nPorts; i++ {
		if r.In[i].Mode() == connections.ModeSignalAccurate {
			park = false
		}
	}
	hasWork := func() bool {
		for i := 0; i < r.nPorts; i++ {
			if r.In[i].Ready() || !r.ready[i].Empty() {
				return true
			}
		}
		for o := 0; o < r.nPorts; o++ {
			if r.sending[o].flits != nil {
				return true
			}
		}
		return false
	}
	for {
		// Assemble complete packets per input.
		for i := 0; i < r.nPorts; i++ {
			if r.ready[i].Full() {
				continue
			}
			if f, ok := r.In[i].PopNB(th); ok {
				r.Stats.FlitsIn++
				if f.Head {
					r.Stats.PacketsIn++
					r.assembling[i] = r.assembling[i][:0]
				}
				r.assembling[i] = append(r.assembling[i], f)
				if f.Tail {
					pkt := make([]Flit, len(r.assembling[i]))
					copy(pkt, r.assembling[i])
					r.ready[i].Push(pkt)
					r.assembling[i] = r.assembling[i][:0]
				}
			}
		}
		// Drive outputs: continue in-flight packets, else arbitrate for a
		// stored packet whose head routes to this output.
		for o := 0; o < r.nPorts; o++ {
			if r.sending[o].flits == nil {
				var req uint64
				for i := 0; i < r.nPorts; i++ {
					if !r.ready[i].Empty() && r.route(r.ready[i].Peek()[0].Dst) == o {
						req |= 1 << uint(i)
					}
				}
				if req == 0 {
					continue
				}
				g := r.arbs[o].Pick(req)
				if g < 0 {
					continue
				}
				r.sending[o] = sfSend{flits: r.ready[g].Pop()}
			}
			s := &r.sending[o]
			if r.Out[o].PushNB(th, s.flits[s.idx]) {
				r.Stats.FlitsOut++
				s.idx++
				if s.idx == len(s.flits) {
					*s = sfSend{}
				}
			} else {
				r.Stats.Stalls++
			}
		}
		if park {
			th.WaitFor(hasWork)
		} else {
			th.Wait()
		}
	}
}
