package noc

import (
	"fmt"

	"repro/internal/connections"
	"repro/internal/sim"
	"repro/internal/stats"
)

// NI is a network interface: it serializes injected packets into flits
// toward its router's local port and reassembles ejected flit streams
// back into packets. Like the router ports, its flit ports are one
// channel per virtual channel; reassembly is keyed by VC, which is sound
// because wormhole locking keeps packets contiguous within a VC.
type NI struct {
	PktIn   *connections.In[Packet] // user → network
	PktOut  *connections.Out[Packet]
	FlitOut []*connections.Out[Flit] // [vc] NI → router local input
	FlitIn  []*connections.In[Flit]  // [vc] router local output → NI

	Injected, Ejected uint64
}

// NewNI builds a network interface for the given node with nVCs virtual
// channels. vcPick chooses the injection VC per packet (nil injects on 0).
func NewNI(clk *sim.Clock, name string, node, nVCs int, vcPick func(Packet) int) *NI {
	if vcPick == nil {
		vcPick = func(Packet) int { return 0 }
	}
	ni := &NI{
		PktIn:   connections.NewIn[Packet]().Owned(clk, name, "pkt_in"),
		PktOut:  connections.NewOut[Packet]().Owned(clk, name, "pkt_out"),
		FlitOut: make([]*connections.Out[Flit], nVCs),
		FlitIn:  make([]*connections.In[Flit], nVCs),
	}
	for v := 0; v < nVCs; v++ {
		ni.FlitOut[v] = connections.NewOut[Flit]().Owned(clk, name, fmt.Sprintf("flit_out[%d]", v))
		ni.FlitIn[v] = connections.NewIn[Flit]().Owned(clk, name, fmt.Sprintf("flit_in[%d]", v))
	}
	// Packet-to-flit conversion is data-dependent (flit count tracks the
	// payload length, the VC tracks vcPick), so the NI terminates any SDF
	// region the way the routers do.
	clk.Sim().Design().DeclareActor(name, sim.ActorSwitch, clk, sim.Rat{})
	clk.Spawn(name+".inject", func(th *sim.Thread) {
		for {
			p := ni.PktIn.Pop(th)
			if p.Src != node {
				panic(fmt.Sprintf("noc: packet src %d injected at node %d", p.Src, node))
			}
			vc := vcPick(p)
			for _, f := range p.Flits(vc) {
				ni.FlitOut[vc].Push(th, f)
				th.Wait()
			}
			ni.Injected++
		}
	})
	clk.Spawn(name+".eject", func(th *sim.Thread) {
		acc := make([][]Flit, nVCs)
		// The per-VC scan below is a no-op when no input VC has a flit, so
		// the thread parks on flit arrival — except when an input charges a
		// per-attempt handshake wait (ModeSignalAccurate), where skipping
		// the failing PopNB calls would change elapsed cycles. Modes are
		// read here, at the first edge, because ports are bound after NewNI.
		park := true
		for v := 0; v < nVCs; v++ {
			if ni.FlitIn[v].Mode() == connections.ModeSignalAccurate {
				park = false
			}
		}
		anyFlit := func() bool {
			for v := 0; v < nVCs; v++ {
				if ni.FlitIn[v].Ready() {
					return true
				}
			}
			return false
		}
		for {
			for v := 0; v < nVCs; v++ {
				f, ok := ni.FlitIn[v].PopNB(th)
				if !ok {
					continue
				}
				acc[v] = append(acc[v], f)
				if f.Tail {
					flits := acc[v]
					acc[v] = nil
					p := Packet{Src: flits[0].Src, Dst: flits[0].Dst, ID: flits[0].PktID}
					for _, b := range flits[1:] {
						p.Payload = append(p.Payload, b.Data)
					}
					if p.Dst != node {
						panic(fmt.Sprintf("noc: packet for %d ejected at node %d", p.Dst, node))
					}
					ni.PktOut.Push(th, p)
					ni.Ejected++
				}
			}
			if park {
				th.WaitFor(anyFlit)
			} else {
				th.Wait()
			}
		}
	})
	clk.Sim().Component(name).Source(func(emit stats.Emit) {
		emit("packets_injected", float64(ni.Injected))
		emit("packets_ejected", float64(ni.Ejected))
	})
	return ni
}

// Mesh port conventions.
const (
	PortLocal = 0
	PortNorth = 1
	PortEast  = 2
	PortSouth = 3
	PortWest  = 4
)

// Mesh is a W×H grid of wormhole routers with XY dimension-order routing
// (deadlock-free without extra VCs). Node n sits at (n%W, n/W).
type Mesh struct {
	W, H    int
	VCs     int
	Routers []*WHVCRouter
	NIs     []*NI

	// User-side endpoints, one per node.
	Inject []*connections.Out[Packet]
	Eject  []*connections.In[Packet]
}

// XYRoute returns the routing function for the router at (x, y).
func XYRoute(w, x, y int) RouteFunc {
	return func(dst int) int {
		dx, dy := dst%w, dst/w
		switch {
		case dx > x:
			return PortEast
		case dx < x:
			return PortWest
		case dy > y:
			return PortSouth
		case dy < y:
			return PortNorth
		default:
			return PortLocal
		}
	}
}

// linkPorts binds every VC channel of an output port to the matching VC
// of an input port with buffering depth per VC.
func linkPorts(clk *sim.Clock, name string, depth int, out []*connections.Out[Flit], in []*connections.In[Flit], opts ...connections.Option) {
	for v := range out {
		connections.Buffer(clk, fmt.Sprintf("%s.vc%d", name, v), depth, out[v], in[v], opts...)
	}
}

// terminatePort binds an edge router port pair to idle stub channels so
// the router can scan it safely; no traffic ever routes there.
func terminatePort(clk *sim.Clock, name string, out []*connections.Out[Flit], in []*connections.In[Flit]) {
	for v := range out {
		connections.Buffer(clk, fmt.Sprintf("%s.o%d", name, v), 1, out[v], connections.NewIn[Flit](), connections.Terminator())
		connections.Buffer(clk, fmt.Sprintf("%s.i%d", name, v), 1, connections.NewOut[Flit](), in[v], connections.Terminator())
	}
}

// BuildMesh constructs the W×H WHVC mesh with the given VC count, per-VC
// buffer depth and link channel options (mode, stalls, latency).
func BuildMesh(clk *sim.Clock, name string, w, h, vcs, depth int, opts ...connections.Option) *Mesh {
	m := &Mesh{W: w, H: h, VCs: vcs}
	n := w * h
	for i := 0; i < n; i++ {
		x, y := i%w, i/w
		r := NewWHVCRouter(clk, fmt.Sprintf("%s.r%d", name, i), 5, vcs, XYRoute(w, x, y), nil)
		m.Routers = append(m.Routers, r)
		ni := NewNI(clk, fmt.Sprintf("%s.ni%d", name, i), i, vcs, func(p Packet) int { return int(p.ID) % vcs })
		m.NIs = append(m.NIs, ni)

		linkPorts(clk, fmt.Sprintf("%s.l%d.in", name, i), depth, ni.FlitOut, r.In[PortLocal], opts...)
		linkPorts(clk, fmt.Sprintf("%s.l%d.out", name, i), depth, r.Out[PortLocal], ni.FlitIn, opts...)

		// The user-side endpoints belong to the mesh's per-node harness
		// interface; declaring them keeps the inject/eject channels fully
		// owned in the design graph.
		ep := fmt.Sprintf("%s.ep%d", name, i)
		inj := connections.NewOut[Packet]().Owned(clk, ep, "inject")
		ej := connections.NewIn[Packet]().Owned(clk, ep, "eject")
		connections.Buffer(clk, fmt.Sprintf("%s.inj%d", name, i), 2, inj, ni.PktIn, opts...)
		connections.Buffer(clk, fmt.Sprintf("%s.ej%d", name, i), 2, ni.PktOut, ej, opts...)
		m.Inject = append(m.Inject, inj)
		m.Eject = append(m.Eject, ej)
	}
	for i := 0; i < n; i++ {
		x, y := i%w, i/w
		if x+1 < w {
			linkPorts(clk, fmt.Sprintf("%s.lnk%d.e", name, i), depth, m.Routers[i].Out[PortEast], m.Routers[i+1].In[PortWest], opts...)
			linkPorts(clk, fmt.Sprintf("%s.lnk%d.w", name, i+1), depth, m.Routers[i+1].Out[PortWest], m.Routers[i].In[PortEast], opts...)
		} else {
			terminatePort(clk, fmt.Sprintf("%s.term%d.e", name, i), m.Routers[i].Out[PortEast], m.Routers[i].In[PortEast])
		}
		if y+1 < h {
			linkPorts(clk, fmt.Sprintf("%s.lnk%d.s", name, i), depth, m.Routers[i].Out[PortSouth], m.Routers[i+w].In[PortNorth], opts...)
			linkPorts(clk, fmt.Sprintf("%s.lnk%d.n", name, i+w), depth, m.Routers[i+w].Out[PortNorth], m.Routers[i].In[PortSouth], opts...)
		} else {
			terminatePort(clk, fmt.Sprintf("%s.term%d.s", name, i), m.Routers[i].Out[PortSouth], m.Routers[i].In[PortSouth])
		}
		if x == 0 {
			terminatePort(clk, fmt.Sprintf("%s.term%d.w", name, i), m.Routers[i].Out[PortWest], m.Routers[i].In[PortWest])
		}
		if y == 0 {
			terminatePort(clk, fmt.Sprintf("%s.term%d.n", name, i), m.Routers[i].Out[PortNorth], m.Routers[i].In[PortNorth])
		}
	}
	return m
}

// Ring is a unidirectional ring of wormhole routers. Packets inject on
// VC 0 and are remapped to VC 1 when they cross the dateline (the wrap
// link out of node N-1), which breaks the channel-dependency cycle.
type Ring struct {
	N       int
	Routers []*WHVCRouter
	NIs     []*NI
	Inject  []*connections.Out[Packet]
	Eject   []*connections.In[Packet]
}

// Ring port conventions: 0 = local, 1 = forward neighbour.
const (
	RingLocal   = 0
	RingForward = 1
)

// BuildRing constructs an n-node dateline ring with 2 VCs.
func BuildRing(clk *sim.Clock, name string, n, depth int, opts ...connections.Option) *Ring {
	rg := &Ring{N: n}
	const vcs = 2
	for i := 0; i < n; i++ {
		i := i
		route := func(dst int) int {
			if dst == i {
				return RingLocal
			}
			return RingForward
		}
		var vcMap VCMapFunc
		if i == n-1 {
			vcMap = func(outPort, vc int) int {
				if outPort == RingForward {
					return 1 // crossing the dateline
				}
				return vc
			}
		}
		r := NewWHVCRouter(clk, fmt.Sprintf("%s.r%d", name, i), 2, vcs, route, vcMap)
		rg.Routers = append(rg.Routers, r)
		ni := NewNI(clk, fmt.Sprintf("%s.ni%d", name, i), i, vcs, nil)
		rg.NIs = append(rg.NIs, ni)
		linkPorts(clk, fmt.Sprintf("%s.l%d.in", name, i), depth, ni.FlitOut, r.In[RingLocal], opts...)
		linkPorts(clk, fmt.Sprintf("%s.l%d.out", name, i), depth, r.Out[RingLocal], ni.FlitIn, opts...)
		ep := fmt.Sprintf("%s.ep%d", name, i)
		inj := connections.NewOut[Packet]().Owned(clk, ep, "inject")
		ej := connections.NewIn[Packet]().Owned(clk, ep, "eject")
		connections.Buffer(clk, fmt.Sprintf("%s.inj%d", name, i), 2, inj, ni.PktIn, opts...)
		connections.Buffer(clk, fmt.Sprintf("%s.ej%d", name, i), 2, ni.PktOut, ej, opts...)
		rg.Inject = append(rg.Inject, inj)
		rg.Eject = append(rg.Eject, ej)
	}
	for i := 0; i < n; i++ {
		linkPorts(clk, fmt.Sprintf("%s.lnk%d", name, i), depth,
			rg.Routers[i].Out[RingForward], rg.Routers[(i+1)%n].In[RingForward], opts...)
	}
	return rg
}
