package noc

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/connections"
	"repro/internal/sim"
)

func TestPacketFlitsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	for iter := 0; iter < 200; iter++ {
		p := Packet{Src: r.Intn(16), Dst: r.Intn(16), ID: r.Uint64()}
		for k := 0; k < r.Intn(6); k++ {
			p.Payload = append(p.Payload, r.Uint64())
		}
		flits := p.Flits(r.Intn(2))
		if !flits[0].Head {
			t.Fatal("first flit not head")
		}
		if !flits[len(flits)-1].Tail {
			t.Fatal("last flit not tail")
		}
		if len(p.Payload) == 0 {
			if len(flits) != 1 {
				t.Fatal("empty packet should be one flit")
			}
			continue
		}
		for i, f := range flits[1 : len(flits)-1] {
			if f.Head || f.Tail {
				t.Fatalf("flit %d has head/tail flags", i+1)
			}
		}
		if len(flits) != len(p.Payload)+1 {
			t.Fatalf("%d flits for %d payload words", len(flits), len(p.Payload))
		}
		for i, w := range p.Payload {
			if flits[i+1].Data != w {
				t.Fatalf("payload word %d corrupted", i)
			}
		}
	}
}

// runMeshTraffic sends packets over a mesh and verifies complete,
// uncorrupted, per-(src,dst)-ordered delivery.
func runMeshTraffic(t *testing.T, w, h, pktsPerNode int, payloadMax int, seed int64, opts ...connections.Option) uint64 {
	t.Helper()
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	m := BuildMesh(clk, "m", w, h, 2, 4, opts...)
	n := w * h

	type key struct{ src, dst int }
	want := map[key][]Packet{}
	r := rand.New(rand.NewSource(seed))
	var nextID uint64
	progs := make([][]Packet, n)
	total := 0
	for src := 0; src < n; src++ {
		for k := 0; k < pktsPerNode; k++ {
			dst := r.Intn(n)
			if dst == src {
				continue
			}
			p := Packet{Src: src, Dst: dst, ID: nextID}
			nextID++
			for j := 0; j <= r.Intn(payloadMax+1); j++ {
				p.Payload = append(p.Payload, r.Uint64())
			}
			progs[src] = append(progs[src], p)
			want[key{src, dst}] = append(want[key{src, dst}], p)
			total++
		}
	}
	for src := 0; src < n; src++ {
		src := src
		clk.Spawn(fmt.Sprintf("gen%d", src), func(th *sim.Thread) {
			for _, p := range progs[src] {
				m.Inject[src].Push(th, p)
				th.Wait()
			}
		})
	}
	received := 0
	got := map[key][]Packet{}
	var doneCycle uint64
	for dst := 0; dst < n; dst++ {
		dst := dst
		clk.Spawn(fmt.Sprintf("sink%d", dst), func(th *sim.Thread) {
			for {
				if p, ok := m.Eject[dst].PopNB(th); ok {
					got[key{p.Src, dst}] = append(got[key{p.Src, dst}], p)
					received++
					if received == total {
						doneCycle = th.Cycle()
						th.Sim().Stop()
					}
				}
				th.Wait()
			}
		})
	}
	s.Run(sim.Time(2_000_000_000))
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("delivered %d/%d packets", received, total)
	}
	for k, ps := range want {
		g := got[k]
		if len(g) != len(ps) {
			t.Fatalf("flow %v: %d/%d packets", k, len(g), len(ps))
		}
		// Packets of a flow may arrive reordered across VCs, so match by
		// ID; payloads must be intact.
		byID := map[uint64]Packet{}
		for _, p := range g {
			byID[p.ID] = p
		}
		for _, p := range ps {
			q, ok := byID[p.ID]
			if !ok {
				t.Fatalf("flow %v: packet %d lost", k, p.ID)
			}
			if len(q.Payload) != len(p.Payload) {
				t.Fatalf("flow %v pkt %d: payload length %d vs %d", k, p.ID, len(q.Payload), len(p.Payload))
			}
			for i := range p.Payload {
				if q.Payload[i] != p.Payload[i] {
					t.Fatalf("flow %v pkt %d word %d corrupted", k, p.ID, i)
				}
			}
		}
	}
	return doneCycle
}

func TestMesh2x2Delivery(t *testing.T) {
	runMeshTraffic(t, 2, 2, 20, 4, 71)
}

func TestMesh4x4Delivery(t *testing.T) {
	runMeshTraffic(t, 4, 4, 10, 3, 72)
}

func TestMeshUnderStallInjection(t *testing.T) {
	// The paper's verification story: random stalls on every link must
	// not break delivery.
	runMeshTraffic(t, 2, 2, 10, 3, 73, connections.WithStall(0.25, 0.25, 5))
}

func TestMeshRTLCosimMode(t *testing.T) {
	fast := runMeshTraffic(t, 2, 2, 10, 3, 74)
	slow := runMeshTraffic(t, 2, 2, 10, 3, 74, connections.WithMode(connections.ModeRTLCosim))
	if slow <= fast {
		t.Fatalf("RTL-cosim finished in %d cycles <= sim-accurate %d; pipeline latency missing", slow, fast)
	}
}

func TestRingDelivery(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	const n = 6
	rg := BuildRing(clk, "r", n, 4)
	const pkts = 12
	total := 0
	for src := 0; src < n; src++ {
		src := src
		clk.Spawn(fmt.Sprintf("gen%d", src), func(th *sim.Thread) {
			for k := 0; k < pkts; k++ {
				dst := (src + 1 + k%(n-1)) % n
				rg.Inject[src].Push(th, Packet{Src: src, Dst: dst, ID: uint64(src*1000 + k), Payload: []uint64{uint64(k)}})
				th.Wait()
			}
		})
		total += pkts
	}
	received := 0
	for dst := 0; dst < n; dst++ {
		dst := dst
		clk.Spawn(fmt.Sprintf("sink%d", dst), func(th *sim.Thread) {
			for {
				if p, ok := rg.Eject[dst].PopNB(th); ok {
					if p.Dst != dst {
						t.Errorf("packet for %d at %d", p.Dst, dst)
					}
					received++
					if received == total {
						th.Sim().Stop()
					}
				}
				th.Wait()
			}
		})
	}
	s.Run(100_000_000)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("ring delivered %d/%d — possible deadlock", received, total)
	}
}

// Wormhole property: within one VC on any link, packets never interleave.
func TestWormholeNoInterleaving(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	r := NewWHVCRouter(clk, "r", 3, 1, func(dst int) int { return 2 }, nil)

	// Two sources racing for output 2 on the same (single) VC.
	srcs := make([]*connections.Out[Flit], 2)
	for i := range srcs {
		srcs[i] = connections.NewOut[Flit]()
		connections.Buffer(clk, fmt.Sprintf("in%d", i), 2, srcs[i], r.In[i][0])
		i := i
		clk.Spawn(fmt.Sprintf("src%d", i), func(th *sim.Thread) {
			for k := 0; k < 10; k++ {
				p := Packet{Src: i, Dst: 9, ID: uint64(i*100 + k), Payload: []uint64{1, 2, 3}}
				for _, f := range p.Flits(0) {
					srcs[i].Push(th, f)
					th.Wait()
				}
			}
		})
	}
	terminatePort(clk, "t2", []*connections.Out[Flit]{connections.NewOut[Flit]()}, r.In[2])

	sink := connections.NewIn[Flit]()
	connections.Buffer(clk, "out", 2, r.Out[2][0], sink)
	terminatePort(clk, "t0o", r.Out[0], []*connections.In[Flit]{connections.NewIn[Flit]()})
	terminatePort(clk, "t1o", r.Out[1], []*connections.In[Flit]{connections.NewIn[Flit]()})

	var current uint64
	inPkt := false
	seen := 0
	clk.Spawn("sink", func(th *sim.Thread) {
		for {
			if f, ok := sink.PopNB(th); ok {
				if f.Head {
					if inPkt {
						t.Errorf("head of pkt %d arrived inside pkt %d", f.PktID, current)
					}
					current, inPkt = f.PktID, true
				} else if !inPkt || f.PktID != current {
					t.Errorf("flit of pkt %d interleaved into pkt %d", f.PktID, current)
				}
				if f.Tail {
					inPkt = false
					seen++
					if seen == 20 {
						th.Sim().Stop()
					}
				}
			}
			th.Wait()
		}
	})
	s.Run(100_000_000)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if seen != 20 {
		t.Fatalf("saw %d/20 packets", seen)
	}
}

// The load-latency curve must have the canonical NoC shape: flat latency
// at low load, rising sharply past saturation, with throughput
// monotonically non-decreasing up to saturation.
func TestLoadLatencyCurveShape(t *testing.T) {
	pts := LoadLatencySweep(4, 4, []float64{0.02, 0.10, 0.30, 0.60}, 3000, 2, 5)
	for i, p := range pts {
		if p.Delivered == 0 {
			t.Fatalf("load %.2f delivered nothing", p.OfferedLoad)
		}
		if i > 0 && p.MeanLatency < pts[i-1].MeanLatency*0.9 {
			t.Errorf("latency dropped with load: %.1f @ %.2f after %.1f @ %.2f",
				p.MeanLatency, p.OfferedLoad, pts[i-1].MeanLatency, pts[i-1].OfferedLoad)
		}
	}
	lo, hi := pts[0], pts[len(pts)-1]
	if hi.MeanLatency < 2*lo.MeanLatency {
		t.Errorf("no congestion signature: %.1f cycles at %.2f load vs %.1f at %.2f",
			hi.MeanLatency, hi.OfferedLoad, lo.MeanLatency, lo.OfferedLoad)
	}
	if hi.Throughput < lo.Throughput {
		t.Errorf("throughput fell below low-load point: %.3f vs %.3f", hi.Throughput, lo.Throughput)
	}
}

func TestModeLatencyComparison(t *testing.T) {
	lat := ModeLatencyComparison(3, 3, 2500, 9)
	tlm := lat[connections.ModeSimAccurate]
	rtl := lat[connections.ModeRTLCosim]
	if tlm <= 0 || rtl <= 0 {
		t.Fatalf("missing measurements: %v", lat)
	}
	if rtl <= tlm {
		t.Fatalf("RTL-cosim latency %.1f not above TLM %.1f (pipeline registers missing)", rtl, tlm)
	}
}

// Ablation: store-and-forward latency grows with packet length faster
// than wormhole cut-through... SF must at minimum deliver correctly.
func TestSFRouterDelivery(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	// 2-router line: src NI -> r0 -> r1 -> sink NI, local ports 0.
	route0 := func(dst int) int {
		if dst == 0 {
			return 0
		}
		return 1
	}
	route1 := func(dst int) int {
		if dst == 1 {
			return 0
		}
		return 1
	}
	r0 := NewSFRouter(clk, "r0", 2, 2, route0)
	r1 := NewSFRouter(clk, "r1", 2, 2, route1)
	connections.Buffer(clk, "link", 2, r0.Out[1], r1.In[1])
	TerminateFlit(clk, "r1term", r1.Out[1], r1.In[0])
	TerminateFlit(clk, "r0term", r0.Out[0], r0.In[1])

	src := connections.NewOut[Flit]()
	connections.Buffer(clk, "src", 2, src, r0.In[0])
	sink := connections.NewIn[Flit]()
	connections.Buffer(clk, "sink", 2, r1.Out[0], sink)

	const pkts = 8
	clk.Spawn("gen", func(th *sim.Thread) {
		for k := 0; k < pkts; k++ {
			p := Packet{Src: 0, Dst: 1, ID: uint64(k), Payload: []uint64{uint64(k), uint64(k * 2)}}
			for _, f := range p.Flits(0) {
				src.Push(th, f)
				th.Wait()
			}
		}
	})
	got := 0
	clk.Spawn("sink", func(th *sim.Thread) {
		for {
			if f, ok := sink.PopNB(th); ok && f.Tail {
				got++
				if got == pkts {
					th.Sim().Stop()
				}
			}
			th.Wait()
		}
	})
	s.Run(10_000_000)
	if got != pkts {
		t.Fatalf("SF delivered %d/%d", got, pkts)
	}
}

// Store-and-forward pays per-hop serialization: compare single-packet
// latency across a 1×4 line of routers for a long packet.
func TestSFSlowerThanWormholeForLongPackets(t *testing.T) {
	latency := func(useSF bool) uint64 {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		const hops = 4
		payload := make([]uint64, 12)
		var ins []*connections.In[Flit]   // forward input of each router
		var outs []*connections.Out[Flit] // forward output of each router
		var locs []*connections.Out[Flit] // local output of each router
		for i := 0; i < hops; i++ {
			i := i
			route := func(dst int) int {
				if dst == i {
					return 0
				}
				return 1
			}
			if useSF {
				r := NewSFRouter(clk, fmt.Sprintf("r%d", i), 2, 2, route)
				ins = append(ins, r.In[1])
				outs = append(outs, r.Out[1])
				locs = append(locs, r.Out[0])
				connections.Buffer(clk, fmt.Sprintf("loc%d", i), 1, connections.NewOut[Flit](), r.In[0])
			} else {
				r := NewWHVCRouter(clk, fmt.Sprintf("r%d", i), 2, 1, route, nil)
				ins = append(ins, r.In[1][0])
				outs = append(outs, r.Out[1][0])
				locs = append(locs, r.Out[0][0])
				connections.Buffer(clk, fmt.Sprintf("loc%d", i), 1, connections.NewOut[Flit](), r.In[0][0])
			}
		}
		for i := 0; i < hops; i++ {
			if i+1 < hops {
				connections.Buffer(clk, fmt.Sprintf("l%d", i), 2, outs[i], ins[i+1])
				connections.Buffer(clk, fmt.Sprintf("dl%d", i), 1, locs[i], connections.NewIn[Flit]())
			}
		}
		connections.Buffer(clk, "lastout", 1, outs[hops-1], connections.NewIn[Flit]())
		sink := connections.NewIn[Flit]()
		connections.Buffer(clk, "sink", 2, locs[hops-1], sink)
		clk.Spawn("sink", func(th *sim.Thread) {
			for {
				if f, ok := sink.PopNB(th); ok && f.Tail {
					th.Sim().Stop()
				}
				th.Wait()
			}
		})
		src := connections.NewOut[Flit]()
		connections.Buffer(clk, "src", 2, src, ins[0])
		clk.Spawn("gen", func(th *sim.Thread) {
			p := Packet{Src: 99, Dst: hops - 1, ID: 1, Payload: payload}
			for _, f := range p.Flits(0) {
				src.Push(th, f)
				th.Wait()
			}
		})
		s.Run(10_000_000)
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		return clk.Cycle()
	}
	sf, wh := latency(true), latency(false)
	if sf <= wh {
		t.Fatalf("SF latency %d <= wormhole %d for a 12-word packet over 4 hops", sf, wh)
	}
}
