package noc

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/connections"
	"repro/internal/exp"
	"repro/internal/sim"
)

// LoadPoint is one offered-load sample of a NoC load-latency sweep.
type LoadPoint struct {
	OfferedLoad float64 // injection probability per node per cycle
	Throughput  float64 // delivered packets per node per cycle
	MeanLatency float64 // cycles, injection to ejection
	Delivered   int
}

// LoadLatencySweep runs uniform-random traffic on a W×H wormhole mesh at
// each offered load for the given number of cycles and measures delivered
// throughput and mean packet latency — the standard NoC characterization
// curve (latency flat at low load, diverging past saturation). It is the
// sequential form of LoadLatencyCampaign and returns identical points.
func LoadLatencySweep(w, h int, loads []float64, cycles uint64, payloadWords int, seed int64) []LoadPoint {
	pts, _ := LoadLatencyCampaign(w, h, loads, cycles, payloadWords, seed, 1)
	return pts
}

// LoadLatencyCampaign measures the sweep with one campaign job per
// offered-load point, sharded over the runner's worker pool. Each
// point's traffic seed is derived from the point's job name and the
// campaign seed, so the curve is bit-identical for any parallelism
// level. Points come back in the order of loads.
func LoadLatencyCampaign(w, h int, loads []float64, cycles uint64, payloadWords int, seed int64, parallel int) ([]LoadPoint, *exp.Summary) {
	jobs := make([]exp.Job, len(loads))
	for i, load := range loads {
		load := load
		jobs[i] = exp.Job{
			Name: fmt.Sprintf("load[%g]", load),
			Run: func(c *exp.Ctx) (any, error) {
				return runLoadPoint(w, h, load, cycles, payloadWords, c.Seed), nil
			},
		}
	}
	s := exp.Run(jobs, exp.Named("noc"), exp.Seed(seed), exp.Parallel(parallel))
	pts := make([]LoadPoint, 0, len(loads))
	for _, r := range s.Results {
		if p, ok := r.Value.(LoadPoint); ok {
			pts = append(pts, p)
		}
	}
	return pts, s
}

func runLoadPoint(w, h int, load float64, cycles uint64, payloadWords int, seed int64) LoadPoint {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	m := BuildMesh(clk, "m", w, h, 2, 4)
	n := w * h

	inject := make([]uint64, 0, 1024)
	_ = inject
	sent := map[uint64]uint64{}
	var delivered int
	var latSum uint64
	var nextID uint64

	for src := 0; src < n; src++ {
		src := src
		r := rand.New(rand.NewSource(seed + int64(src)))
		clk.Spawn(fmt.Sprintf("gen%d", src), func(th *sim.Thread) {
			payload := make([]uint64, payloadWords)
			for th.Cycle() < cycles {
				if r.Float64() < load {
					dst := r.Intn(n)
					if dst == src {
						dst = (dst + 1) % n
					}
					id := uint64(src)<<32 | nextID
					nextID++
					// Non-blocking injection: if the NI is backed up the
					// packet is dropped at the source, which keeps the
					// offered load honest past saturation.
					if m.Inject[src].PushNB(th, Packet{Src: src, Dst: dst, ID: id, Payload: payload}) {
						sent[id] = th.Cycle()
					}
				}
				th.Wait()
			}
		})
	}
	for dst := 0; dst < n; dst++ {
		dst := dst
		clk.Spawn(fmt.Sprintf("sink%d", dst), func(th *sim.Thread) {
			for {
				if p, ok := m.Eject[dst].PopNB(th); ok {
					if t0, ok2 := sent[p.ID]; ok2 {
						latSum += th.Cycle() - t0
						delivered++
					}
				}
				th.Wait()
			}
		})
	}
	// Run the injection window plus a drain tail.
	s.RunCycles(clk, cycles+uint64(4*(w+h))*uint64(payloadWords+2))

	pt := LoadPoint{OfferedLoad: load, Delivered: delivered}
	if delivered > 0 {
		pt.MeanLatency = float64(latSum) / float64(delivered)
		pt.Throughput = float64(delivered) / float64(n) / float64(cycles)
	}
	return pt
}

// PrintLoadLatency renders the sweep.
func PrintLoadLatency(wr io.Writer, w, h int, pts []LoadPoint) {
	fmt.Fprintf(wr, "NoC load-latency sweep, %d×%d wormhole mesh, uniform random traffic\n", w, h)
	fmt.Fprintf(wr, "%-14s %12s %14s %10s\n", "offered load", "throughput", "mean latency", "delivered")
	for _, p := range pts {
		fmt.Fprintf(wr, "%13.2f %12.3f %13.1f %10d\n", p.OfferedLoad, p.Throughput, p.MeanLatency, p.Delivered)
	}
}

// ModeLatencyComparison measures the same light traffic under the three
// Connections cost models — the Figure 3 story told with NoC latency.
func ModeLatencyComparison(w, h int, cycles uint64, seed int64) map[connections.Mode]float64 {
	out := map[connections.Mode]float64{}
	for _, mode := range []connections.Mode{
		connections.ModeSimAccurate, connections.ModeRTLCosim,
	} {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		m := BuildMesh(clk, "m", w, h, 2, 4, connections.WithMode(mode))
		n := w * h
		sent := map[uint64]uint64{}
		var latSum uint64
		var delivered int
		for src := 0; src < n; src++ {
			src := src
			r := rand.New(rand.NewSource(seed + int64(src)))
			clk.Spawn("g", func(th *sim.Thread) {
				var id uint64
				for th.Cycle() < cycles {
					if r.Float64() < 0.02 {
						dst := (src + 1 + r.Intn(n-1)) % n
						pid := uint64(src)<<32 | id
						id++
						if m.Inject[src].PushNB(th, Packet{Src: src, Dst: dst, ID: pid, Payload: []uint64{1}}) {
							sent[pid] = th.Cycle()
						}
					}
					th.Wait()
				}
			})
		}
		for dst := 0; dst < n; dst++ {
			dst := dst
			clk.Spawn("s", func(th *sim.Thread) {
				for {
					if p, ok := m.Eject[dst].PopNB(th); ok {
						if t0, ok2 := sent[p.ID]; ok2 {
							latSum += th.Cycle() - t0
							delivered++
						}
					}
					th.Wait()
				}
			})
		}
		s.RunCycles(clk, cycles+200)
		if delivered > 0 {
			out[mode] = float64(latSum) / float64(delivered)
		}
	}
	return out
}
