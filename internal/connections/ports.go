package connections

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/sim"
	"repro/internal/trace"
)

// In is a consumer-side port terminal. Module code holds an In and calls
// Pop/PopNB regardless of which channel kind it is later bound to — the
// polymorphic-port property of the Connections API (paper Table 1).
type In[T any] struct {
	ch    *core[T]
	owner *sim.PortDecl
}

// Out is a producer-side port terminal.
type Out[T any] struct {
	ch    *core[T]
	owner *sim.PortDecl
}

// NewIn returns an unbound consumer port.
func NewIn[T any]() *In[T] { return &In[T]{} }

// NewOut returns an unbound producer port.
func NewOut[T any]() *Out[T] { return &Out[T]{} }

// Owned declares that the component at path owns this port (named port)
// in clk's domain, registering the endpoint in the simulator's design
// graph for the static lint pass (CDC and connectivity rules). Ownership
// is optional — undeclared ports lint silently — and Owned returns the
// receiver so constructors can chain it onto NewIn.
func (p *In[T]) Owned(clk *sim.Clock, path, port string) *In[T] {
	p.owner = clk.Sim().Design().DeclarePort(path, port, clk, sim.PortConsumer)
	return p
}

// Owned declares producer-side port ownership; see In.Owned.
func (p *Out[T]) Owned(clk *sim.Clock, path, port string) *Out[T] {
	p.owner = clk.Sim().Design().DeclarePort(path, port, clk, sim.PortProducer)
	return p
}

// Rated declares the port's token rate for the static communication-rate
// pass (internal/ratecheck): the owning actor moves num/den tokens
// through this port per firing. It chains after Owned — rating an
// anonymous port is a programming error, since ratecheck can only see
// declared endpoints.
func (p *In[T]) Rated(num, den int64) *In[T] {
	if p.owner == nil {
		panic("connections: Rated on a port without Owned; declare ownership first")
	}
	p.owner.Rate = sim.NewRat(num, den)
	return p
}

// Rated declares producer-side token rate; see In.Rated.
func (p *Out[T]) Rated(num, den int64) *Out[T] {
	if p.owner == nil {
		panic("connections: Rated on a port without Owned; declare ownership first")
	}
	p.owner.Rate = sim.NewRat(num, den)
	return p
}

func (p *In[T]) need() *core[T] {
	if p.ch == nil {
		if p.owner != nil {
			panic("connections: Pop on unbound In port " + p.owner.String())
		}
		panic("connections: Pop on unbound In port")
	}
	return p.ch
}

func (p *Out[T]) need() *core[T] {
	if p.ch == nil {
		if p.owner != nil {
			panic("connections: Push on unbound Out port " + p.owner.String())
		}
		panic("connections: Push on unbound Out port")
	}
	return p.ch
}

// Bound reports whether the port has been bound to a channel.
func (p *In[T]) Bound() bool { return p.ch != nil }

// Bound reports whether the port has been bound to a channel.
func (p *Out[T]) Bound() bool { return p.ch != nil }

// PopNB attempts to take one message without blocking. Under
// ModeSignalAccurate it charges one Wait (the delayed ready operation).
func (p *In[T]) PopNB(th *sim.Thread) (T, bool) {
	c := p.need()
	if c.mode == ModeSignalAccurate {
		th.Wait()
	}
	v, ok := c.tryPop()
	if c.sub != nil {
		c.emitPop(ok)
	}
	return v, ok
}

// Pop blocks until a message is available and returns it. In the
// sim-accurate and RTL-cosim models a blocked consumer parks on the
// channel's readiness predicate, so idle cycles cost no goroutine
// handoff; the signal-accurate model keeps polling because every PopNB
// attempt charges its own handshake Wait.
func (p *In[T]) Pop(th *sim.Thread) T {
	c := p.need()
	if c.mode == ModeSignalAccurate {
		for {
			v, ok := p.PopNB(th)
			if ok {
				return v
			}
		}
	}
	for {
		v, ok := c.tryPop()
		if c.sub != nil {
			c.emitPop(ok)
		}
		if ok {
			return v
		}
		th.WaitFor(c.popReady)
	}
}

// Peek returns the head message without consuming it. It never charges a
// wait and is intended for router/arbiter models.
func (p *In[T]) Peek() (T, bool) { return p.need().peek() }

// Empty reports whether a PopNB this cycle would fail.
func (p *In[T]) Empty() bool {
	c := p.need()
	_, ok := c.peek()
	return !ok
}

// Ready reports whether a PopNB this cycle would succeed, including the
// kind-specific bypass path. Components with their own scan loops use it
// as a parking predicate.
func (p *In[T]) Ready() bool { return p.need().canPop() }

// Mode returns the bound channel's port-operation cost model.
func (p *In[T]) Mode() Mode { return p.need().mode }

// Stats returns the bound channel's counters.
func (p *In[T]) Stats() Stats { return p.need().Stats() }

// PushNB attempts to send one message without blocking. Under
// ModeSignalAccurate it charges one Wait (the delayed valid operation).
func (p *Out[T]) PushNB(th *sim.Thread, v T) bool {
	c := p.need()
	ok := c.tryPush(v)
	if c.sub != nil {
		c.emitPush(ok)
	}
	if c.mode == ModeSignalAccurate {
		th.Wait()
	}
	return ok
}

// Push blocks until the channel accepts the message. Like Pop, a
// blocked producer parks on the channel's capacity predicate except in
// the signal-accurate model.
func (p *Out[T]) Push(th *sim.Thread, v T) {
	c := p.need()
	if c.mode == ModeSignalAccurate {
		for {
			if p.PushNB(th, v) {
				return
			}
		}
	}
	for {
		ok := c.tryPush(v)
		if c.sub != nil {
			c.emitPush(ok)
		}
		if ok {
			return
		}
		th.WaitFor(c.pushReady)
	}
}

// Full reports whether a PushNB this cycle would fail for lack of space.
func (p *Out[T]) Full() bool {
	c := p.need()
	return !c.skidFree() || c.stalledReady
}

// Mode returns the bound channel's port-operation cost model.
func (p *Out[T]) Mode() Mode { return p.need().mode }

// Stats returns the bound channel's counters.
func (p *Out[T]) Stats() Stats { return p.need().Stats() }

// Channel is the handle returned by Bind, exposing identity and counters.
type Channel[T any] struct {
	c *core[T]
}

// Name returns the channel's instance name.
func (ch Channel[T]) Name() string { return ch.c.name }

// Kind returns the channel implementation kind.
func (ch Channel[T]) Kind() Kind { return ch.c.kind }

// Mode returns the channel's port-operation cost model.
func (ch Channel[T]) Mode() Mode { return ch.c.mode }

// Stats returns the channel's traffic counters.
func (ch Channel[T]) Stats() Stats { return ch.c.stats }

// RTLToggles returns accumulated wire toggles (ModeRTLCosim only), the
// switching-activity feed for power analysis.
func (ch Channel[T]) RTLToggles() uint64 { return ch.c.rtlToggles }

// Trace samples the channel's occupancy and handshake state into a VCD
// waveform every cycle — the per-channel slice of the flow's signal
// trace. Call before the simulation starts.
func (ch Channel[T]) Trace(v *trace.VCD, name string) {
	c := ch.c
	occ := v.Declare(name+".occ", 8)
	valid := v.Declare(name+".valid", 1)
	ready := v.Declare(name+".ready", 1)
	c.clk.AtMonitorNamed(c.name+"/trace", func() {
		occ.Set(uint64(len(c.queue)))
		var vb, rb uint64
		if _, ok := c.peek(); ok {
			vb = 1
		}
		if c.skidFree() && !c.stalledReady {
			rb = 1
		}
		valid.Set(vb)
		ready.Set(rb)
		v.Sample(c.clk.Cycle())
	})
}

// Occupancy returns the number of committed messages currently held.
func (ch Channel[T]) Occupancy() int { return len(ch.c.queue) }

// Bind creates a channel of the given kind on clk and attaches the two
// port terminals to it. capacity is the FIFO depth for KindBuffer and is
// ignored (forced to 1) for the other kinds.
func Bind[T any](clk *sim.Clock, name string, kind Kind, capacity int, out *Out[T], in *In[T], opts ...Option) Channel[T] {
	if out.ch != nil {
		if out.owner != nil {
			panic(fmt.Sprintf("connections: Out port %s already bound to channel %s (rebinding as %s)", out.owner, out.ch.name, name))
		}
		panic(fmt.Sprintf("connections: Out port already bound (channel %s)", name))
	}
	if in.ch != nil {
		if in.owner != nil {
			panic(fmt.Sprintf("connections: In port %s already bound to channel %s (rebinding as %s)", in.owner, in.ch.name, name))
		}
		panic(fmt.Sprintf("connections: In port already bound (channel %s)", name))
	}
	if kind != KindBuffer {
		capacity = 1
	}
	var o options
	for _, f := range opts {
		f(&o)
	}
	c := newCore[T](clk, name, kind, capacity, &o)
	out.ch = c
	in.ch = c
	// Record the channel and link its declared endpoints into the design
	// graph — a constructor-time append the static lint pass walks later.
	clk.Sim().Design().AddChannel(sim.ChannelDecl{
		Name:       name,
		Clock:      clk,
		Kind:       kind.String(),
		Capacity:   capacity,
		Latency:    c.latency,
		Terminated: o.terminated,
		Prod:       out.owner,
		Cons:       in.owner,
	})
	if out.owner != nil {
		out.owner.Bound = true
		out.owner.Channel = name
	}
	if in.owner != nil {
		in.owner.Bound = true
		in.owner.Channel = name
	}
	return Channel[T]{c: c}
}

// Combinational binds out/in with a flow-through channel.
func Combinational[T any](clk *sim.Clock, name string, out *Out[T], in *In[T], opts ...Option) Channel[T] {
	return Bind(clk, name, KindCombinational, 1, out, in, opts...)
}

// Bypass binds out/in with a 1-deep channel allowing dequeue-when-empty.
func Bypass[T any](clk *sim.Clock, name string, out *Out[T], in *In[T], opts ...Option) Channel[T] {
	return Bind(clk, name, KindBypass, 1, out, in, opts...)
}

// Pipeline binds out/in with a 1-deep channel allowing enqueue-when-full.
func Pipeline[T any](clk *sim.Clock, name string, out *Out[T], in *In[T], opts ...Option) Channel[T] {
	return Bind(clk, name, KindPipeline, 1, out, in, opts...)
}

// Buffer binds out/in with a FIFO channel of the given depth.
func Buffer[T any](clk *sim.Clock, name string, depth int, out *Out[T], in *In[T], opts ...Option) Channel[T] {
	return Bind(clk, name, KindBuffer, depth, out, in, opts...)
}

// Connect is a convenience that creates a fresh bound port pair.
func Connect[T any](clk *sim.Clock, name string, kind Kind, capacity int, opts ...Option) (*Out[T], *In[T], Channel[T]) {
	out, in := NewOut[T](), NewIn[T]()
	ch := Bind(clk, name, kind, capacity, out, in, opts...)
	return out, in, ch
}

// Packable is implemented by message types that can render themselves as
// hardware bits; ModeRTLCosim channels and Packetizer channels require it.
type Packable interface {
	PackBits() bitvec.Vec
}

// WithPackable enables bit-level signal work in ModeRTLCosim for channels
// whose message type implements Packable. Bind helpers call this
// automatically when T implements Packable, so it is rarely needed.
func WithPackable[T Packable]() Option {
	return func(o *options) {
		o.packer = func(v any) bitvec.Vec { return v.(T).PackBits() }
	}
}
