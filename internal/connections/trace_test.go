package connections

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// runTracedPipeline is the canonical small traced design: a producer
// pushing n values through a depth-2 buffer into a consumer that drains
// every other cycle, so the channel exercises back-pressure, starvation
// and the full occupancy range. It returns the armed recorder.
func runTracedPipeline(t *testing.T, n int) *trace.Recorder {
	t.Helper()
	rec := trace.NewRecorder()
	s := sim.New()
	s.Arm(rec)
	clk := s.AddClock("clk", 1000, 0)
	out, in := NewOut[int](), NewIn[int]()
	Buffer(clk, "tb/pipe", 2, out, in)
	clk.Spawn("producer", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			out.Push(th, i)
			th.Wait()
		}
	})
	got := 0
	clk.Spawn("consumer", func(th *sim.Thread) {
		for got < n {
			if _, ok := in.PopNB(th); ok {
				got++
			}
			th.WaitN(2)
		}
		th.Sim().Stop()
	})
	s.Run(sim.Time(uint64(n)*100_000 + 1_000_000))
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("delivered %d/%d", got, n)
	}
	return rec
}

func TestArmedChannelRecordsHandshakeEvents(t *testing.T) {
	rec := runTracedPipeline(t, 8)
	var pushes, pops, fulls, valids, occs uint64
	for _, e := range rec.Events() {
		switch e.Kind {
		case trace.KindPush:
			pushes++
		case trace.KindPop:
			pops++
		case trace.KindFull:
			fulls++
		case trace.KindValid:
			valids++
		case trace.KindOcc:
			occs++
		}
	}
	if pushes != 8 || pops != 8 {
		t.Fatalf("pushes=%d pops=%d, want 8 each", pushes, pops)
	}
	// The consumer drains at half the producer's rate, so the depth-2
	// buffer must refuse pushes at some point.
	if fulls == 0 {
		t.Fatal("no back-pressure recorded on a congested channel")
	}
	if valids == 0 || occs == 0 {
		t.Fatalf("no level events: valids=%d occs=%d", valids, occs)
	}
	if paths := rec.Paths(); len(paths) != 1 || paths[0] != "tb/pipe" {
		t.Fatalf("Paths = %v", paths)
	}
}

func TestDisarmedSimRecordsNothing(t *testing.T) {
	s := sim.New()
	if s.Tracer() != nil {
		t.Fatal("fresh simulator is armed")
	}
	clk := s.AddClock("clk", 1000, 0)
	out, in := NewOut[int](), NewIn[int]()
	ch := Buffer(clk, "ch", 2, out, in)
	if ch.c.sub != nil {
		t.Fatal("disarmed channel cached a trace subject")
	}
}

// TestTracedRunIsCycleIdenticalToUntraced is the zero-cost claim's
// functional half: arming changes nothing observable — same delivery
// order, same per-channel counters, same cycle counts.
func TestTracedRunIsCycleIdenticalToUntraced(t *testing.T) {
	run := func(armed bool) (Stats, uint64) {
		s := sim.New()
		if armed {
			s.Arm(trace.NewRecorder())
		}
		clk := s.AddClock("clk", 1000, 0)
		out, in := NewOut[int](), NewIn[int]()
		ch := Buffer(clk, "ch", 2, out, in, WithStall(0.2, 0.2, 5))
		n := 50
		clk.Spawn("producer", func(th *sim.Thread) {
			for i := 0; i < n; i++ {
				out.Push(th, i)
			}
		})
		got := 0
		var done uint64
		clk.Spawn("consumer", func(th *sim.Thread) {
			for got < n {
				if _, ok := in.PopNB(th); ok {
					got++
				}
				th.Wait()
			}
			done = th.Cycle()
			th.Sim().Stop()
		})
		s.Run(1_000_000_000)
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		return ch.Stats(), done
	}
	sa, ca := run(false)
	sb, cb := run(true)
	if ca != cb {
		t.Fatalf("cycle count diverged: untraced %d vs traced %d", ca, cb)
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("channel stats diverged:\nuntraced %+v\ntraced   %+v", sa, sb)
	}
}

func TestTracedEventStreamDeterministic(t *testing.T) {
	a := runTracedPipeline(t, 16).Events()
	b := runTracedPipeline(t, 16).Events()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("event streams diverge: %d vs %d events", len(a), len(b))
	}
}

// TestPipelineTraceVCDGolden locks the full render path — recorder →
// analysis-event filtering → scoped VCD — against a checked-in dump.
// Regenerate with: go test ./internal/connections -run Golden -update
func TestPipelineTraceVCDGolden(t *testing.T) {
	rec := runTracedPipeline(t, 8)
	var buf bytes.Buffer
	if _, _, err := rec.WriteVCD(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "pipeline_trace.vcd")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("VCD differs from golden %s (len %d vs %d); rerun with -update if the change is intended",
			golden, buf.Len(), len(want))
	}
}

// benchPortOps measures the per-operation channel hot path on a
// disarmed channel: the bare untraced primitives (the pre-tracing
// baseline) against the exact pattern the ports execute now — primitive
// plus one inline nil-check of the cached trace subject.
func benchPortOps(b *testing.B, traced bool) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := NewOut[int](), NewIn[int]()
	ch := Buffer(clk, "bench", 4, out, in)
	c := ch.c
	b.ResetTimer()
	if traced {
		for i := 0; i < b.N; i++ {
			ok := c.tryPush(i)
			if c.sub != nil {
				c.emitPush(ok)
			}
			_, ok = c.tryPop()
			if c.sub != nil {
				c.emitPop(ok)
			}
			c.commit()
		}
	} else {
		for i := 0; i < b.N; i++ {
			c.tryPush(i)
			c.tryPop()
			c.commit()
		}
	}
}

func BenchmarkDisarmedPortOpsBaseline(b *testing.B) { benchPortOps(b, false) }
func BenchmarkDisarmedPortOpsTraced(b *testing.B)   { benchPortOps(b, true) }

// TestDisarmedOverheadGuard fails when the disarmed traced path costs
// more than the regression budget over the untraced primitives. Perf
// assertions are inherently machine-sensitive, so the guard only runs
// when TRACE_OVERHEAD_GUARD=1 (the Makefile check tier and CI set it);
// plain `go test ./...` skips it.
func TestDisarmedOverheadGuard(t *testing.T) {
	if os.Getenv("TRACE_OVERHEAD_GUARD") != "1" {
		t.Skip("set TRACE_OVERHEAD_GUARD=1 to run the overhead guard")
	}
	limitPct := 2.0
	if v := os.Getenv("TRACE_OVERHEAD_LIMIT_PCT"); v != "" {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil {
			t.Fatalf("TRACE_OVERHEAD_LIMIT_PCT: %v", err)
		}
		limitPct = p
	}
	// Interleaved best-of-R: pairing the two measurements round by round
	// and taking each side's minimum cancels frequency drift and
	// scheduler noise, which on shared machines exceeds the budget.
	const rounds = 6
	nsop := func(r testing.BenchmarkResult) float64 {
		return float64(r.T.Nanoseconds()) / float64(r.N)
	}
	var base, traced float64
	for i := 0; i < rounds; i++ {
		if b := nsop(testing.Benchmark(BenchmarkDisarmedPortOpsBaseline)); base == 0 || b < base {
			base = b
		}
		if tr := nsop(testing.Benchmark(BenchmarkDisarmedPortOpsTraced)); traced == 0 || tr < traced {
			traced = tr
		}
	}
	overhead := (traced - base) / base * 100
	t.Logf("baseline %.2f ns/op, traced-disarmed %.2f ns/op, overhead %.2f%% (budget %.1f%%)",
		base, traced, overhead, limitPct)
	if overhead > limitPct {
		t.Fatalf("disarmed tracing overhead %.2f%% exceeds %.1f%% budget", overhead, limitPct)
	}
}
