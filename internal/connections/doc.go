// Package connections implements the paper's Connections library:
// latency-insensitive (LI) channels with unified In/Out ports that are
// decoupled from the channel kind chosen at integration time (Table 1 and
// Figure 2 of the paper).
//
// Three port-operation cost models are provided, selected per channel:
//
//   - ModeSimAccurate (default): the paper's sim-accurate model. Port
//     operations stage data into endpoint buffers that a kernel-level
//     channel process flushes at commit, so a thread loop touching any
//     number of ports advances one cycle per iteration. Elapsed cycles
//     match RTL throughput.
//   - ModeSignalAccurate: the paper's synthesizable signal-accurate model.
//     Every Push/PushNB/Pop/PopNB performs a delayed handshake operation —
//     drive valid (or ready), wait one cycle, clear, sample the other
//     side — so multiple port operations in one loop body serialize. This
//     is the error source measured in Figure 3.
//   - ModeRTLCosim: keeps the parallel transfer resolution of the
//     sim-accurate model but packs every message to bits, carries it
//     through a pipeline-register delay line, and unpacks on delivery.
//     Elapsed cycles grow slightly (pipeline latency) and wall-clock cost
//     grows substantially — the two properties measured in Figure 6.
//
// Channels can inject random stalls (withholding valid and/or ready) to
// perturb inter-unit timing without changing design or testbench code,
// reproducing the paper's verification aid.
//
// When a simulation is armed for handshake tracing (sim.Simulator.Arm
// before channels are bound), every channel additionally emits
// push/pop/full/empty port outcomes and per-cycle valid/ready/occupancy
// level changes into the internal/trace recorder under its component
// path. Disarmed channels cache a nil trace subject and pay one
// predictable branch per port operation; the armed-only per-cycle
// monitor hook is not even registered when disarmed.
package connections
