package connections

import (
	"testing"

	"repro/internal/sim"
)

// Stall injection must be a pure function of (channel name, seed): two
// runs with the same WithStall configuration produce bit-identical
// channel statistics in every channel model. This is what makes a bug
// found by stall-hunting reproducible from its seed (§2.3), and it also
// pins down that the scheduler's idle-thread parking does not perturb
// the injection RNG stream.
func TestStallInjectionReproducible(t *testing.T) {
	run := func(mode Mode) Stats {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		out, in, ch := Connect[int](clk, "repro_ch", KindBuffer, 3,
			WithMode(mode), WithStall(0.35, 0.35, 99))
		const n = 80
		clk.Spawn("p", func(th *sim.Thread) {
			for i := 0; i < n; i++ {
				out.Push(th, i)
				th.Wait()
			}
		})
		clk.Spawn("c", func(th *sim.Thread) {
			for i := 0; i < n; i++ {
				if got := in.Pop(th); got != i {
					t.Errorf("message %d = %d under %v", i, got, mode)
				}
				th.Wait()
			}
			th.Sim().Stop()
		})
		s.Run(sim.Infinity - 1)
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		return ch.Stats()
	}
	for _, mode := range []Mode{ModeSimAccurate, ModeSignalAccurate, ModeRTLCosim} {
		t.Run(mode.String(), func(t *testing.T) {
			a, b := run(mode), run(mode)
			if a != b {
				t.Fatalf("same seed, different stats:\n  run 1: %+v\n  run 2: %+v", a, b)
			}
			if a.StallCycles == 0 {
				t.Fatal("stall injection never fired — test is vacuous")
			}
		})
	}
}

// Different seeds must produce different stall streams (or the seed is
// being ignored).
func TestStallSeedChangesStream(t *testing.T) {
	run := func(seed int64) Stats {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		out, in, ch := Connect[int](clk, "seed_ch", KindBuffer, 3, WithStall(0.35, 0.35, seed))
		const n = 60
		clk.Spawn("p", func(th *sim.Thread) {
			for i := 0; i < n; i++ {
				out.Push(th, i)
				th.Wait()
			}
		})
		clk.Spawn("c", func(th *sim.Thread) {
			for i := 0; i < n; i++ {
				in.Pop(th)
				th.Wait()
			}
			th.Sim().Stop()
		})
		s.Run(sim.Infinity - 1)
		return ch.Stats()
	}
	if run(1) == run(2) {
		t.Fatal("seeds 1 and 2 produced identical channel stats")
	}
}
