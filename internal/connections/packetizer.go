package connections

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/sim"
)

// Flit is one link-width beat of a packetized message. Packetizer channels
// produce flits and DePacketizer channels consume them; the NoC substrate
// transports them between (Figure 2e of the paper).
type Flit struct {
	Data bitvec.Vec
	Last bool
}

// PackBits renders the flit as {last, data} for RTL-cosim channels.
func (f Flit) PackBits() bitvec.Vec {
	last := bitvec.FromUint64(0, 1)
	if f.Last {
		last = bitvec.FromUint64(1, 1)
	}
	return f.Data.Concat(last)
}

// SplitFlits cuts a message's bits into flits of the given link width. The
// final flit carries the remainder (zero-padded) and Last set.
func SplitFlits(bits bitvec.Vec, flitWidth int) []Flit {
	if flitWidth <= 0 {
		panic("connections: flit width must be positive")
	}
	n := (bits.Width() + flitWidth - 1) / flitWidth
	if n == 0 {
		n = 1
		bits = bitvec.New(flitWidth)
	} else {
		bits = bits.ZeroExtend(n * flitWidth)
	}
	flits := make([]Flit, n)
	for i := 0; i < n; i++ {
		flits[i] = Flit{Data: bits.Slice(i*flitWidth, flitWidth), Last: i == n-1}
	}
	return flits
}

// JoinFlits reassembles flit payloads into a message of msgWidth bits.
func JoinFlits(flits []Flit, msgWidth int) bitvec.Vec {
	acc := bitvec.New(0)
	for _, f := range flits {
		acc = acc.Concat(f.Data)
	}
	if acc.Width() < msgWidth {
		panic(fmt.Sprintf("connections: %d flit bits < message width %d", acc.Width(), msgWidth))
	}
	return acc.Trunc(msgWidth)
}

// Packetizer converts messages to flit streams: the producer keeps an
// ordinary Out[T] while the consumer side sees an In[Flit]. One flit leaves
// per cycle, so a W-bit message over an F-bit link occupies ceil(W/F)
// cycles — the serialization behaviour of the hardware implementation.
func Packetizer[T Packable](clk *sim.Clock, name string, flitWidth, depth int, opts ...Option) (*Out[T], *In[Flit]) {
	msgOut, msgIn := NewOut[T](), NewIn[T]()
	Buffer(clk, name+".msg", depth, msgOut, msgIn, opts...)
	flitOut, flitIn := NewOut[Flit](), NewIn[Flit]()
	Buffer(clk, name+".flit", 2, flitOut, flitIn, opts...)
	clk.Spawn(name+".packetizer", func(th *sim.Thread) {
		for {
			v := msgIn.Pop(th)
			for _, f := range SplitFlits(v.PackBits(), flitWidth) {
				flitOut.Push(th, f)
				th.Wait()
			}
		}
	})
	return msgOut, flitIn
}

// DePacketizer reassembles flit streams back into messages: the producer
// side pushes flits while the consumer keeps an ordinary In[T]. unpack
// recovers the message from msgWidth bits.
func DePacketizer[T any](clk *sim.Clock, name string, msgWidth, depth int, unpack func(bitvec.Vec) T, opts ...Option) (*Out[Flit], *In[T]) {
	flitOut, flitIn := NewOut[Flit](), NewIn[Flit]()
	Buffer(clk, name+".flit", 2, flitOut, flitIn, opts...)
	msgOut, msgIn := NewOut[T](), NewIn[T]()
	Buffer(clk, name+".msg", depth, msgOut, msgIn, opts...)
	clk.Spawn(name+".depacketizer", func(th *sim.Thread) {
		var acc []Flit
		for {
			f := flitIn.Pop(th)
			acc = append(acc, f)
			if f.Last {
				msgOut.Push(th, unpack(JoinFlits(acc, msgWidth)))
				acc = acc[:0]
			}
			th.Wait()
		}
	})
	return flitOut, msgIn
}
