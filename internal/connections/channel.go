package connections

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"repro/internal/bitvec"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Mode selects the port-operation cost model of a channel.
type Mode int

const (
	// ModeSimAccurate is the helper-process buffered model whose elapsed
	// cycles match RTL throughput.
	ModeSimAccurate Mode = iota
	// ModeSignalAccurate charges one Wait per port operation, like the
	// synthesizable SystemC handshake routines run under a sequential
	// simulator.
	ModeSignalAccurate
	// ModeRTLCosim adds pipeline-register latency and bit-level message
	// packing work to every transfer.
	ModeRTLCosim
)

func (m Mode) String() string {
	switch m {
	case ModeSimAccurate:
		return "sim-accurate"
	case ModeSignalAccurate:
		return "signal-accurate"
	case ModeRTLCosim:
		return "rtl-cosim"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Kind is the channel implementation selected at integration time
// (Figure 2 of the paper).
type Kind int

const (
	// KindCombinational connects ports with flow-through coupling in both
	// directions and a single skid entry of storage.
	KindCombinational Kind = iota
	// KindBypass enables dequeue in the cycle an enqueue arrives to an
	// empty channel (valid→consumer combinational path).
	KindBypass
	// KindPipeline enables enqueue into a full channel in the cycle a
	// dequeue frees it (ready←consumer combinational path).
	KindPipeline
	// KindBuffer is a plain FIFO channel of configurable depth.
	KindBuffer
)

func (k Kind) String() string {
	switch k {
	case KindCombinational:
		return "Combinational"
	case KindBypass:
		return "Bypass"
	case KindPipeline:
		return "Pipeline"
	case KindBuffer:
		return "Buffer"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Stats accumulates per-channel traffic counters.
type Stats struct {
	Transfers    uint64 // messages delivered to the consumer side
	PushAttempts uint64
	PushFails    uint64 // attempts rejected (full or ready withheld)
	PopAttempts  uint64
	PopFails     uint64 // attempts rejected (empty or valid withheld)
	StallCycles  uint64 // cycles with an injected stall active
	OccupancySum uint64 // sum over cycles of committed occupancy
	Cycles       uint64 // cycles observed
}

// MeanOccupancy returns the time-average committed occupancy.
func (s Stats) MeanOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.OccupancySum) / float64(s.Cycles)
}

// Option configures a channel at bind time.
type Option func(*options)

type options struct {
	mode       Mode
	latency    int // extra pipeline-register stages (retiming registers)
	stallValid float64
	stallReady float64
	stallSeed  int64
	packer     func(any) bitvec.Vec
	terminated bool
}

// WithMode selects the port-operation cost model.
func WithMode(m Mode) Option { return func(o *options) { o.mode = m } }

// WithLatency inserts n retiming-register stages into the channel, the
// paper's mechanism for easing timing pressure on inter-unit interfaces.
func WithLatency(n int) Option {
	return func(o *options) {
		if n < 0 {
			panic("connections: negative latency")
		}
		o.latency = n
	}
}

// WithStall enables random stall injection: each cycle, valid is withheld
// from the consumer with probability pValid and ready withheld from the
// producer with probability pReady. The seed keeps runs reproducible.
func WithStall(pValid, pReady float64, seed int64) Option {
	return func(o *options) {
		o.stallValid = pValid
		o.stallReady = pReady
		o.stallSeed = seed
	}
}

// Terminator marks the channel as an intentional stub — an edge port
// tied off with no component on the far side. The static lint pass
// exempts terminated channels from the dangling-endpoint rule (CON-2)
// and excludes them from cycle analysis.
func Terminator() Option { return func(o *options) { o.terminated = true } }

// core is the shared channel implementation behind every kind.
type core[T any] struct {
	clk  *sim.Clock
	name string
	kind Kind
	mode Mode
	cap  int

	queue []T // committed contents, front at index 0

	// skid is the producer-side output buffer of the paper's sim-accurate
	// model: a push lands here and the channel's commit process transmits
	// it downstream when capacity allows. It holds at most one message,
	// matching the one-transfer-per-cycle rate of a hardware port.
	skid        []T
	bypassTaken int // skid entries consumed via the bypass path this cycle
	stagedPops  int // committed entries consumed this cycle

	// Pipeline-register delay line for latency > 0 / RTL mode.
	latency     int
	inflightBuf []inflight[T]

	// Signal-accurate per-endpoint handshake results.
	lastPushOK bool

	// Stall injection.
	rng          *rand.Rand
	pStallValid  float64
	pStallReady  float64
	stalledValid bool
	stalledReady bool

	pack func(any) bitvec.Vec

	// Cached parking predicates so blocking port ops don't allocate a
	// bound-method closure per call.
	popReady  func() bool
	pushReady func() bool

	// RTL-cosim per-cycle signal evaluation state: the channel's wire
	// image (head message bits plus handshake bits) is recomputed every
	// cycle and toggles are accumulated, modelling what an RTL simulator
	// does for every net and what an FSDB activity trace records.
	rtlSigs    bitvec.Vec
	rtlToggles uint64

	// Handshake-event tracing. sub is nil unless the simulator was armed
	// (sim.Simulator.Arm) before the channel was bound; every emission
	// site nil-checks it, so the disarmed fast path costs one predictable
	// branch. The tLast* fields are the change detectors of the armed
	// per-cycle monitor hook, which is not even registered when disarmed.
	sub                    *trace.Subject
	tInit                  bool
	tLastValid, tLastReady uint64
	tLastOcc, tLastStall   uint64

	stats Stats
	bound bool
}

func newCore[T any](clk *sim.Clock, name string, kind Kind, capacity int, o *options) *core[T] {
	if clk == nil {
		panic("connections: nil clock for channel " + name)
	}
	if capacity < 1 {
		// The declared depth stays visible in the design graph (Bind
		// records it before this clamp, and lint CON-3 reports it as an
		// error); the runtime keeps one slot so elaboration can finish and
		// the design can be linted instead of dying mid-construction.
		capacity = 1
	}
	c := &core[T]{
		clk:         clk,
		name:        name,
		kind:        kind,
		mode:        o.mode,
		cap:         capacity,
		latency:     o.latency,
		pStallValid: o.stallValid,
		pStallReady: o.stallReady,
		pack:        o.packer,
	}
	if c.mode == ModeRTLCosim && c.latency == 0 {
		c.latency = 1 // HLS-generated RTL always has at least one pipe stage
	}
	if c.pack == nil {
		// Auto-detect Packable message types so RTL-cosim channels do
		// bit-level work without explicit configuration.
		var zero T
		if _, ok := any(zero).(Packable); ok {
			c.pack = func(v any) bitvec.Vec { return v.(Packable).PackBits() }
		}
	}
	if c.pStallValid > 0 || c.pStallReady > 0 {
		h := fnv.New64a()
		h.Write([]byte(name))
		c.rng = rand.New(rand.NewSource(o.stallSeed ^ int64(h.Sum64())))
	}
	c.popReady = c.canPop
	c.pushReady = c.canPush
	c.sub = clk.Sim().Tracer().Subject(name)
	if c.sub != nil {
		// Armed only: the per-cycle valid/ready/occupancy monitor exists
		// solely when a recorder is attached, so a disarmed simulation
		// schedules exactly the hooks it did before tracing existed.
		clk.AtMonitorNamed(name+"/trace", c.traceMonitor)
	}
	if c.mode == ModeRTLCosim {
		clk.AtDriveNamed(name+"/rtl_eval", c.rtlEval)
	}
	clk.AtCommitNamed(name, c.commit)
	// Every channel is a component: its counters surface through the
	// simulator's metrics registry under the channel name as a path.
	clk.Sim().Component(name).Source(c.emitStats)
	return c
}

// emitStats surfaces the channel's counters into the unified metrics
// registry at snapshot time.
func (c *core[T]) emitStats(emit stats.Emit) {
	s := c.stats
	emit("transfers", float64(s.Transfers))
	emit("push_attempts", float64(s.PushAttempts))
	emit("push_fails", float64(s.PushFails))
	emit("pop_attempts", float64(s.PopAttempts))
	emit("pop_fails", float64(s.PopFails))
	emit("stall_cycles", float64(s.StallCycles))
	emit("occupancy_mean", s.MeanOccupancy())
	emit("occupancy", float64(len(c.queue)))
	if c.mode == ModeRTLCosim {
		emit("rtl_toggles", float64(c.rtlToggles))
	}
}

// rtlEval recomputes the channel's wire image once per cycle — the
// signal-level evaluation cost an RTL simulator pays whether or not a
// transfer happens — and accumulates switching activity for the power
// trace.
func (c *core[T]) rtlEval() {
	var msg bitvec.Vec
	if v, ok := c.peek(); ok && c.pack != nil {
		msg = c.pack(v)
	} else {
		msg = bitvec.New(64)
	}
	// Handshake bits: valid, ready.
	hs := bitvec.New(2)
	if _, ok := c.peek(); ok {
		hs = hs.SetBit(0, 1)
	}
	if c.skidFree() && !c.stalledReady {
		hs = hs.SetBit(1, 1)
	}
	img := msg.Concat(hs)
	if img.Width() == c.rtlSigs.Width() {
		c.rtlToggles += uint64(img.Xor(c.rtlSigs).OnesCount())
	} else if c.rtlSigs.Width() > 0 {
		c.rtlToggles += uint64(img.OnesCount())
	}
	c.rtlSigs = img
}

// RTLToggles returns accumulated wire toggles in RTL-cosim mode — the
// switching-activity feed for power analysis.
func (c *core[T]) RTLToggles() uint64 { return c.rtlToggles }

// skidFree reports whether the producer-side skid can accept a push.
func (c *core[T]) skidFree() bool {
	return len(c.skid)-c.bypassTaken < 1
}

// inflight is a message travelling through the channel's pipeline registers.
type inflight[T any] struct {
	v      T
	mature uint64 // cycle at which the entry enters the visible queue
}

// canPush reports whether a tryPush this cycle would succeed; blocked
// producers park on it.
func (c *core[T]) canPush() bool {
	return !c.stalledReady && c.skidFree()
}

// canPop reports whether a tryPop this cycle would succeed, including
// the kind-specific bypass path; blocked consumers park on it.
func (c *core[T]) canPop() bool {
	if c.stalledValid {
		return false
	}
	if len(c.queue)-c.stagedPops > 0 {
		return true
	}
	if c.kind == KindBypass || c.kind == KindCombinational {
		// The bypass path may only fire when no older message is still in
		// flight; otherwise it would overtake and reorder.
		return len(c.inflightBuf) == 0 && len(c.skid)-c.bypassTaken > 0
	}
	return false
}

// tryPush attempts to place v in the producer skid. Success means the
// message is committed to delivery (possibly after back-pressure delay);
// failure means the port saw ready deasserted this cycle.
func (c *core[T]) tryPush(v T) bool {
	c.stats.PushAttempts++
	if !c.canPush() {
		c.stats.PushFails++
		return false
	}
	if c.mode == ModeRTLCosim && c.pack != nil {
		// Bit-level signal work: pack the message as HLS-generated RTL
		// would drive it onto the wires.
		_ = c.pack(v)
	}
	c.skid = append(c.skid, v)
	return true
}

// tryPop attempts to take one message, implementing the kind-specific valid
// generation, including the Bypass/Combinational same-cycle bypass path.
func (c *core[T]) tryPop() (T, bool) {
	var zero T
	c.stats.PopAttempts++
	if !c.canPop() {
		c.stats.PopFails++
		return zero, false
	}
	if len(c.queue)-c.stagedPops > 0 {
		v := c.queue[c.stagedPops]
		c.stagedPops++
		return v, true
	}
	v := c.skid[c.bypassTaken]
	c.bypassTaken++
	return v, true
}

// netCount is the number of messages the channel currently holds across
// committed queue, skid, and delay line, net of this cycle's staged
// consumption — the occupancy figure handshake events carry.
func (c *core[T]) netCount() uint64 {
	return uint64(len(c.queue) + len(c.skid) + len(c.inflightBuf) - c.stagedPops - c.bypassTaken)
}

// emitPush records a port push outcome on an armed channel. Call sites
// write the nil-check inline —
//
//	ok := c.tryPush(v)
//	if c.sub != nil {
//		c.emitPush(ok)
//	}
//
// — so the disarmed path pays exactly one predictable branch and no
// extra call (the pattern the disarmed-overhead guard benchmarks). The
// primitives above stay untraced as the benchmark baseline.
func (c *core[T]) emitPush(ok bool) {
	k := trace.KindFull
	if ok {
		k = trace.KindPush
	}
	c.sub.EmitOn(c.clk.Lane(), k, uint64(c.clk.Now()), c.clk.Cycle(), c.netCount())
}

// emitPop records a port pop outcome on an armed channel; see emitPush
// for the call-site pattern.
func (c *core[T]) emitPop(ok bool) {
	k := trace.KindEmpty
	if ok {
		k = trace.KindPop
	}
	c.sub.EmitOn(c.clk.Lane(), k, uint64(c.clk.Now()), c.clk.Cycle(), c.netCount())
}

// traceMonitor samples the channel's committed handshake state once per
// cycle and emits level-change events (valid, ready, occupancy, injected
// stalls). Registered only when the simulation is armed.
func (c *core[T]) traceMonitor() {
	now, cyc := uint64(c.clk.Now()), c.clk.Cycle()
	lane := c.clk.Lane()
	var valid, ready uint64
	if _, ok := c.peek(); ok {
		valid = 1
	}
	if c.skidFree() && !c.stalledReady {
		ready = 1
	}
	occ := uint64(len(c.queue))
	var stall uint64
	if c.stalledValid {
		stall |= 1
	}
	if c.stalledReady {
		stall |= 2
	}
	if !c.tInit || valid != c.tLastValid {
		c.sub.EmitOn(lane, trace.KindValid, now, cyc, valid)
		c.tLastValid = valid
	}
	if !c.tInit || ready != c.tLastReady {
		c.sub.EmitOn(lane, trace.KindReady, now, cyc, ready)
		c.tLastReady = ready
	}
	if !c.tInit || occ != c.tLastOcc {
		c.sub.EmitOn(lane, trace.KindOcc, now, cyc, occ)
		c.tLastOcc = occ
	}
	if c.rng != nil && (!c.tInit || stall != c.tLastStall) {
		c.sub.EmitOn(lane, trace.KindStall, now, cyc, stall)
		c.tLastStall = stall
	}
	c.tInit = true
}

// peek returns the head without consuming it.
func (c *core[T]) peek() (T, bool) {
	var zero T
	if c.stalledValid {
		return zero, false
	}
	if len(c.queue)-c.stagedPops > 0 {
		return c.queue[c.stagedPops], true
	}
	return zero, false
}

// commit is the channel's kernel process: it latches this cycle's staged
// operations, matures the delay line, and rolls next cycle's stalls.
func (c *core[T]) commit() {
	// Idle fast path: nothing staged, nothing buffered, no stall stream to
	// roll — only the per-cycle counters advance. This is the common case
	// for most channels on most cycles and is bit-identical to the full
	// path below.
	if c.stagedPops == 0 && c.bypassTaken == 0 && c.rng == nil &&
		len(c.skid) == 0 && len(c.inflightBuf) == 0 {
		c.stats.Cycles++
		c.stats.OccupancySum += uint64(len(c.queue))
		return
	}

	c.stats.Transfers += uint64(c.stagedPops + c.bypassTaken)
	c.stats.Cycles++
	c.stats.OccupancySum += uint64(len(c.queue))
	if c.stalledValid || c.stalledReady {
		c.stats.StallCycles++
	}

	// Retire consumed entries.
	if c.stagedPops > 0 {
		c.queue = c.queue[c.stagedPops:]
		c.stagedPops = 0
	}
	if c.bypassTaken > 0 {
		c.skid = c.skid[c.bypassTaken:]
		c.bypassTaken = 0
	}

	// Mature delay-line entries.
	now := c.clk.Cycle()
	n := 0
	for _, e := range c.inflightBuf {
		if e.mature <= now {
			c.queue = append(c.queue, e.v)
		} else {
			c.inflightBuf[n] = e
			n++
		}
	}
	c.inflightBuf = c.inflightBuf[:n]

	// Transmit from the skid when downstream capacity allows — the
	// helper-thread behaviour of the paper's sim-accurate model. Entries
	// still in the delay line count against the committed capacity:
	// retiming registers cannot stall, so a message admitted into them
	// must already have a queue slot reserved. Latency therefore never
	// adds effective buffering.
	for len(c.skid) > 0 && len(c.queue)+len(c.inflightBuf) < c.cap {
		v := c.skid[0]
		c.skid = c.skid[1:]
		if c.latency == 0 {
			c.queue = append(c.queue, v)
		} else {
			c.inflightBuf = append(c.inflightBuf, inflight[T]{v: v, mature: now + uint64(c.latency)})
		}
	}

	if len(c.queue) > c.cap {
		panic(fmt.Sprintf("connections: channel %s overflow: %d > %d", c.name, len(c.queue), c.cap))
	}

	// Roll stall injection for the next cycle.
	if c.rng != nil {
		c.stalledValid = c.rng.Float64() < c.pStallValid
		c.stalledReady = c.rng.Float64() < c.pStallReady
	}
}

// Stats returns a copy of the channel's counters.
func (c *core[T]) Stats() Stats { return c.stats }
