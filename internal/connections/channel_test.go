package connections

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/sim"
	"repro/internal/trace"
)

func bitvecNew(w int) bitvec.Vec { return bitvec.New(w) }

// runProducerConsumer wires a producer pushing 0..n-1 and a consumer
// popping everything, returns received values and elapsed consumer cycles.
func runProducerConsumer(t *testing.T, kind Kind, depth, n int, opts ...Option) ([]int, uint64) {
	t.Helper()
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := NewOut[int](), NewIn[int]()
	Bind(clk, "ch", kind, depth, out, in, opts...)

	clk.Spawn("producer", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			out.Push(th, i)
			th.Wait()
		}
	})
	var got []int
	var doneCycle uint64
	clk.Spawn("consumer", func(th *sim.Thread) {
		for len(got) < n {
			v, ok := in.PopNB(th)
			if ok {
				got = append(got, v)
			}
			th.Wait()
		}
		doneCycle = th.Cycle()
		th.Sim().Stop()
	})
	s.Run(sim.Time(uint64(n)*1000*1000 + 1000000))
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	return got, doneCycle
}

func checkSequence(t *testing.T, got []int, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("received %d messages, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d = %d: loss, duplication or reorder", i, v)
		}
	}
}

func TestAllKindsDeliverInOrder(t *testing.T) {
	for _, kind := range []Kind{KindCombinational, KindBypass, KindPipeline, KindBuffer} {
		t.Run(kind.String(), func(t *testing.T) {
			got, _ := runProducerConsumer(t, kind, 4, 100)
			checkSequence(t, got, 100)
		})
	}
}

func TestAllModesDeliverInOrder(t *testing.T) {
	for _, mode := range []Mode{ModeSimAccurate, ModeSignalAccurate, ModeRTLCosim} {
		t.Run(mode.String(), func(t *testing.T) {
			got, _ := runProducerConsumer(t, KindBuffer, 4, 50, WithMode(mode))
			checkSequence(t, got, 50)
		})
	}
}

// The paper's verification feature: random stall injection must perturb
// timing without breaking functional correctness (loss/dup/reorder).
func TestStallInjectionPreservesCorrectness(t *testing.T) {
	for _, kind := range []Kind{KindCombinational, KindBypass, KindPipeline, KindBuffer} {
		for seed := int64(0); seed < 5; seed++ {
			got, _ := runProducerConsumer(t, kind, 3, 60, WithStall(0.4, 0.4, seed))
			checkSequence(t, got, 60)
		}
	}
}

func TestStallInjectionSlowsTraffic(t *testing.T) {
	_, fast := runProducerConsumer(t, KindBuffer, 4, 200)
	_, slow := runProducerConsumer(t, KindBuffer, 4, 200, WithStall(0.5, 0.5, 7))
	if slow <= fast {
		t.Fatalf("stalled run finished in %d cycles, unstalled in %d — injection had no effect", slow, fast)
	}
}

func TestLatencyOptionDelaysDelivery(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := NewOut[int](), NewIn[int]()
	Bind(clk, "ch", KindBuffer, 4, out, in, WithLatency(5))

	var pushCycle, popCycle uint64
	clk.Spawn("producer", func(th *sim.Thread) {
		out.Push(th, 42)
		pushCycle = th.Cycle()
	})
	clk.Spawn("consumer", func(th *sim.Thread) {
		v := in.Pop(th)
		if v != 42 {
			t.Errorf("got %d", v)
		}
		popCycle = th.Cycle()
		th.Sim().Stop()
	})
	s.Run(100_000)
	if popCycle < pushCycle+5 {
		t.Fatalf("delivered after %d cycles, want >= 5 (push@%d pop@%d)", popCycle-pushCycle, pushCycle, popCycle)
	}
}

// Signal-accurate mode must charge one cycle per port operation; a loop
// with k port ops per iteration serializes — the Figure 3 effect.
func TestSignalAccurateSerializesPortOps(t *testing.T) {
	measure := func(mode Mode, ports int) uint64 {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		outs := make([]*Out[int], ports)
		ins := make([]*In[int], ports)
		for i := range outs {
			outs[i], ins[i] = NewOut[int](), NewIn[int]()
			Bind(clk, "ch", KindBuffer, 8, outs[i], ins[i], WithMode(mode))
		}
		const rounds = 20
		var cycles uint64
		clk.Spawn("worker", func(th *sim.Thread) {
			start := th.Cycle()
			for r := 0; r < rounds; r++ {
				for i := 0; i < ports; i++ {
					outs[i].PushNB(th, r)
				}
				th.Wait()
			}
			cycles = th.Cycle() - start
			th.Sim().Stop()
		})
		s.Run(sim.Infinity - 1)
		return cycles
	}
	simAcc := measure(ModeSimAccurate, 8)
	sigAcc := measure(ModeSignalAccurate, 8)
	if simAcc >= 25 { // ~20 rounds, 1 cycle each
		t.Fatalf("sim-accurate loop took %d cycles, want ~20", simAcc)
	}
	if sigAcc < 8*20 {
		t.Fatalf("signal-accurate loop took %d cycles, want >= %d (serialized)", sigAcc, 8*20)
	}
}

func TestBypassSameCycleDelivery(t *testing.T) {
	// With Bypass, a push staged by an earlier-registered thread must be
	// poppable by a later-registered thread in the same cycle.
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := NewOut[int](), NewIn[int]()
	Bypass(clk, "ch", out, in)
	var pushC, popC uint64
	clk.Spawn("producer", func(th *sim.Thread) {
		out.Push(th, 9)
		pushC = th.Cycle()
	})
	clk.Spawn("consumer", func(th *sim.Thread) {
		v := in.Pop(th)
		if v != 9 {
			t.Errorf("got %d", v)
		}
		popC = th.Cycle()
		th.Sim().Stop()
	})
	s.Run(100_000)
	if popC != pushC {
		t.Fatalf("bypass delivered at cycle %d, pushed at %d — want same cycle", popC, pushC)
	}
}

func TestBufferBackpressure(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := NewOut[int](), NewIn[int]()
	Buffer(clk, "ch", 2, out, in)
	pushed := 0
	clk.Spawn("producer", func(th *sim.Thread) {
		for i := 0; i < 10; i++ {
			if out.PushNB(th, i) {
				pushed++
			}
			th.Wait()
		}
	})
	s.RunCycles(clk, 20)
	// Depth-2 committed storage plus the one-entry producer skid of the
	// sim-accurate model.
	if pushed != 3 {
		t.Fatalf("pushed %d into depth-2 buffer with no consumer, want 3", pushed)
	}
	if !out.Full() {
		t.Fatal("Full() = false on a full channel")
	}
}

// Regression for the latency-capacity bug: a latency-L channel must not
// gain L slots of effective buffering. With no consumer, a latency-2
// Buffer must accept exactly as many pushes as a latency-0 one of the
// same depth, and committed occupancy must never exceed the declared
// capacity.
func TestLatencyDoesNotAddCapacity(t *testing.T) {
	fill := func(latency int) (pushed int, maxOcc int) {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		out, in := NewOut[int](), NewIn[int]()
		ch := Buffer(clk, "ch", 2, out, in, WithLatency(latency))
		clk.Spawn("producer", func(th *sim.Thread) {
			for i := 0; i < 12; i++ {
				if out.PushNB(th, i) {
					pushed++
				}
				th.Wait()
			}
		})
		clk.AtMonitor(func() {
			if occ := ch.Occupancy(); occ > maxOcc {
				maxOcc = occ
			}
		})
		s.RunCycles(clk, 20)
		return pushed, maxOcc
	}
	p0, occ0 := fill(0)
	p2, occ2 := fill(2)
	if p2 != p0 {
		t.Fatalf("latency-2 buffer accepted %d pushes, latency-0 accepted %d — delay line added capacity", p2, p0)
	}
	if occ2 != occ0 || occ2 > 2 {
		t.Fatalf("latency-2 max occupancy %d vs latency-0 %d (cap 2) — delay line added buffering", occ2, occ0)
	}

	// Backpressure holds too: under saturating traffic the latency-2
	// channel must reject at least as many pushes as the latency-0 one
	// (the bug's extra slots made it strictly less backpressured).
	f0, f2 := fillStats(t, 0), fillStats(t, 2)
	if f2.PushFails < f0.PushFails {
		t.Fatalf("latency-2 push fails %d < latency-0 push fails %d — delay line relaxed backpressure", f2.PushFails, f0.PushFails)
	}
}

// fillStats saturates a depth-2 buffer with an always-pushing producer
// and a consumer that pops every other cycle, returning the channel's
// counters after a fixed window.
func fillStats(t *testing.T, latency int) Stats {
	t.Helper()
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := NewOut[int](), NewIn[int]()
	ch := Buffer(clk, "ch", 2, out, in, WithLatency(latency))
	clk.Spawn("producer", func(th *sim.Thread) {
		for i := 0; ; i++ {
			out.PushNB(th, i)
			th.Wait()
		}
	})
	clk.Spawn("consumer", func(th *sim.Thread) {
		for {
			in.PopNB(th)
			th.WaitN(2)
		}
	})
	s.RunCycles(clk, 60)
	return ch.Stats()
}

func TestPipelineEnqueueWhenFull(t *testing.T) {
	// A 1-deep Pipeline channel must sustain one transfer per cycle when
	// producer and consumer both operate every cycle.
	got, cycles := runProducerConsumer(t, KindPipeline, 1, 50)
	checkSequence(t, got, 50)
	if cycles > 60 {
		t.Fatalf("pipeline channel took %d cycles for 50 transfers, want ~50 (full throughput)", cycles)
	}
}

func TestBypassLowerLatencyThanBuffer(t *testing.T) {
	// Bypass delivers in the same cycle (combinational valid path);
	// Buffer delivers one cycle later at the earliest.
	latency := func(kind Kind) uint64 {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		out, in := NewOut[int](), NewIn[int]()
		Bind(clk, "ch", kind, 1, out, in)
		var pushC, popC uint64
		clk.Spawn("p", func(th *sim.Thread) {
			out.Push(th, 1)
			pushC = th.Cycle()
		})
		clk.Spawn("c", func(th *sim.Thread) {
			in.Pop(th)
			popC = th.Cycle()
			th.Sim().Stop()
		})
		s.Run(1_000_000)
		return popC - pushC
	}
	if l := latency(KindBypass); l != 0 {
		t.Errorf("Bypass latency = %d cycles, want 0", l)
	}
	if l := latency(KindBuffer); l < 1 {
		t.Errorf("Buffer latency = %d cycles, want >= 1", l)
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := NewOut[int](), NewIn[int]()
	Buffer(clk, "ch", 4, out, in)
	clk.Spawn("t", func(th *sim.Thread) {
		out.Push(th, 7)
		th.Wait()
		if v, ok := in.Peek(); !ok || v != 7 {
			t.Errorf("Peek = %d,%v", v, ok)
		}
		if v, ok := in.Peek(); !ok || v != 7 {
			t.Errorf("second Peek = %d,%v", v, ok)
		}
		if v, ok := in.PopNB(th); !ok || v != 7 {
			t.Errorf("PopNB after Peek = %d,%v", v, ok)
		}
		th.Sim().Stop()
	})
	s.Run(100_000)
}

func TestUnboundPortPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on unbound port did not panic")
		}
	}()
	NewIn[int]().PopNB(nil)
}

func TestDoubleBindPanics(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := NewOut[int](), NewIn[int]()
	Buffer(clk, "a", 1, out, in)
	defer func() {
		if recover() == nil {
			t.Fatal("double bind did not panic")
		}
	}()
	Buffer(clk, "b", 1, out, NewIn[int]())
}

func TestStats(t *testing.T) {
	got, _ := runProducerConsumer(t, KindBuffer, 4, 30)
	checkSequence(t, got, 30)
	// Stats checked via a fresh run with a handle.
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in, ch := Connect[int](clk, "ch", KindBuffer, 4)
	clk.Spawn("p", func(th *sim.Thread) {
		for i := 0; i < 10; i++ {
			out.Push(th, i)
			th.Wait()
		}
	})
	clk.Spawn("c", func(th *sim.Thread) {
		for i := 0; i < 10; i++ {
			in.Pop(th)
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	if ch.Stats().Transfers != 10 {
		t.Fatalf("Transfers = %d, want 10", ch.Stats().Transfers)
	}
	if ch.Stats().PushAttempts < 10 || ch.Stats().PopAttempts < 10 {
		t.Fatalf("attempt counters too small: %+v", ch.Stats())
	}
}

func TestAccessorsAndHelpers(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in := NewOut[int](), NewIn[int]()
	if out.Bound() || in.Bound() {
		t.Fatal("fresh ports report bound")
	}
	ch := Pipeline(clk, "p", out, in)
	if !out.Bound() || !in.Bound() {
		t.Fatal("bound ports report unbound")
	}
	if ch.Name() != "p" || ch.Kind() != KindPipeline || ch.Mode() != ModeSimAccurate {
		t.Fatalf("handle accessors: %s %v %v", ch.Name(), ch.Kind(), ch.Mode())
	}
	out2, in2 := NewOut[int](), NewIn[int]()
	ch2 := Combinational(clk, "c", out2, in2)
	if ch2.Kind() != KindCombinational {
		t.Fatal("Combinational helper kind")
	}
	clk.Spawn("t", func(th *sim.Thread) {
		if !in.Empty() {
			t.Error("empty channel reports data")
		}
		out.Push(th, 1)
		th.Wait()
		if in.Empty() {
			t.Error("non-empty channel reports empty")
		}
		if in.Stats().Transfers != 0 || out.Stats().PushAttempts == 0 {
			t.Errorf("port stats: %+v", out.Stats())
		}
		if ch.Occupancy() != 1 {
			t.Errorf("occupancy = %d", ch.Occupancy())
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	if ch.Stats().MeanOccupancy() < 0 {
		t.Fatal("mean occupancy negative")
	}
}

func TestRTLTogglesAccumulate(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in, ch := Connect[word](clk, "ch", KindBuffer, 2, WithMode(ModeRTLCosim))
	clk.Spawn("p", func(th *sim.Thread) {
		for i := 0; i < 20; i++ {
			out.Push(th, word{v: uint64(i) * 0x1234567})
			th.Wait()
		}
	})
	clk.Spawn("c", func(th *sim.Thread) {
		for i := 0; i < 20; i++ {
			in.Pop(th)
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	if ch.RTLToggles() == 0 {
		t.Fatal("no RTL wire toggles recorded")
	}
}

func TestWithPackableExplicit(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in, _ := Connect[word](clk, "ch", KindBuffer, 2,
		WithMode(ModeRTLCosim), WithPackable[word]())
	clk.Spawn("t", func(th *sim.Thread) {
		out.Push(th, word{v: 5})
		th.WaitN(2) // RTL mode inserts one pipeline-register stage
		if v, ok := in.PopNB(th); !ok || v.v != 5 {
			t.Errorf("got %v %v", v, ok)
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
}

func TestSplitFlitsZeroWidthMessage(t *testing.T) {
	flits := SplitFlits(bitvecNew(0), 16)
	if len(flits) != 1 || !flits[0].Last {
		t.Fatalf("zero-width message flits: %v", flits)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-positive flit width")
		}
	}()
	SplitFlits(bitvecNew(8), 0)
}

func TestChannelTrace(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out, in, ch := Connect[int](clk, "ch", KindBuffer, 4)
	var sb strings.Builder
	v := trace.NewVCD(&sb)
	ch.Trace(v, "ch")
	clk.Spawn("p", func(th *sim.Thread) {
		for i := 0; i < 5; i++ {
			out.Push(th, i)
			th.WaitN(2)
		}
	})
	clk.Spawn("c", func(th *sim.Thread) {
		for i := 0; i < 5; i++ {
			in.Pop(th)
			th.WaitN(3)
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	outStr := sb.String()
	for _, want := range []string{"ch.occ", "ch.valid", "ch.ready", "$enddefinitions"} {
		if !strings.Contains(outStr, want) {
			t.Fatalf("trace missing %q:\n%s", want, outStr)
		}
	}
	if strings.Count(outStr, "#") < 3 {
		t.Fatalf("trace has too few timesteps:\n%s", outStr)
	}
}

// Property: random interleavings of blocking/non-blocking producers and
// consumers across kinds, modes, depths and stall rates never lose,
// duplicate, or reorder data.
func TestRandomizedTrafficProperty(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	kinds := []Kind{KindCombinational, KindBypass, KindPipeline, KindBuffer}
	modes := []Mode{ModeSimAccurate, ModeSignalAccurate, ModeRTLCosim}
	for iter := 0; iter < 30; iter++ {
		kind := kinds[r.Intn(len(kinds))]
		mode := modes[r.Intn(len(modes))]
		depth := 1 + r.Intn(6)
		n := 20 + r.Intn(60)
		stall := r.Float64() * 0.5
		seed := r.Int63()
		got, _ := runProducerConsumer(t, kind, depth, n,
			WithMode(mode), WithStall(stall, stall, seed), WithLatency(r.Intn(3)))
		if len(got) != n {
			t.Fatalf("iter %d (%v/%v depth=%d stall=%.2f): got %d/%d", iter, kind, mode, depth, stall, len(got), n)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("iter %d: position %d = %d", iter, i, v)
			}
		}
	}
}
