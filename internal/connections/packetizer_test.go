package connections

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/sim"
)

// word is a simple Packable message for tests.
type word struct{ v uint64 }

func (w word) PackBits() bitvec.Vec { return bitvec.FromUint64(w.v, 48) }

func unpackWord(b bitvec.Vec) word { return word{v: b.Uint64()} }

func TestSplitJoinFlitsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		width := 1 + r.Intn(200)
		flitW := 1 + r.Intn(64)
		words := make([]uint64, (width+63)/64)
		for i := range words {
			words[i] = r.Uint64()
		}
		msg := bitvec.FromWords(words, width)
		flits := SplitFlits(msg, flitW)
		for i, f := range flits {
			if f.Data.Width() != flitW {
				t.Fatalf("flit %d width %d, want %d", i, f.Data.Width(), flitW)
			}
			if f.Last != (i == len(flits)-1) {
				t.Fatalf("flit %d Last=%v", i, f.Last)
			}
		}
		back := JoinFlits(flits, width)
		if !back.Eq(msg) {
			t.Fatalf("round trip failed: width=%d flitW=%d", width, flitW)
		}
	}
}

func TestPacketizerDePacketizerPipe(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)

	// producer -> Packetizer -> (flit forwarder) -> DePacketizer -> consumer
	msgOut, flitIn := Packetizer[word](clk, "pkt", 16, 2)
	flitOut, msgIn := DePacketizer(clk, "dep", 48, 2, unpackWord)

	clk.Spawn("link", func(th *sim.Thread) {
		for {
			f := flitIn.Pop(th)
			flitOut.Push(th, f)
			th.Wait()
		}
	})

	const n = 20
	clk.Spawn("producer", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			msgOut.Push(th, word{v: uint64(i)*0x10001 + 5})
			th.Wait()
		}
	})
	var got []word
	clk.Spawn("consumer", func(th *sim.Thread) {
		for len(got) < n {
			got = append(got, msgIn.Pop(th))
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(10_000_000)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("received %d, want %d", len(got), n)
	}
	for i, w := range got {
		if want := uint64(i)*0x10001 + 5; w.v != want {
			t.Fatalf("msg %d = %#x, want %#x", i, w.v, want)
		}
	}
}

func TestPacketizerSerializationRate(t *testing.T) {
	// A 48-bit message over a 16-bit link needs 3 flits, so the flit
	// stream must deliver at most one flit per cycle.
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	msgOut, flitIn := Packetizer[word](clk, "pkt", 16, 2)
	clk.Spawn("producer", func(th *sim.Thread) {
		for i := 0; ; i++ {
			msgOut.Push(th, word{v: uint64(i)})
			th.Wait()
		}
	})
	var flits int
	var start, end uint64
	clk.Spawn("consumer", func(th *sim.Thread) {
		for flits < 30 {
			if _, ok := flitIn.PopNB(th); ok {
				if flits == 0 {
					start = th.Cycle()
				}
				flits++
				end = th.Cycle()
			}
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(10_000_000)
	if got := end - start; got < 29 {
		t.Fatalf("30 flits in %d cycles — faster than 1 flit/cycle", got)
	}
}

func TestJoinFlitsPanicsOnShortData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("JoinFlits with too few bits did not panic")
		}
	}()
	JoinFlits([]Flit{{Data: bitvec.New(8), Last: true}}, 16)
}

func TestFlitPackBits(t *testing.T) {
	f := Flit{Data: bitvec.FromUint64(0xab, 8), Last: true}
	b := f.PackBits()
	if b.Width() != 9 {
		t.Fatalf("width = %d, want 9", b.Width())
	}
	if b.Bit(8) != 1 {
		t.Fatal("last bit not set")
	}
	if b.Trunc(8).Uint64() != 0xab {
		t.Fatal("payload corrupted")
	}
}
