package gals

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// crossDomain pushes n sequenced values from a producer domain to a
// consumer domain through the given FIFO push/pop closures and verifies
// exact in-order delivery. It returns total consumer-cycle latency.
func crossDomain(t *testing.T, s *sim.Simulator, prodClk, consClk *sim.Clock,
	push func(th *sim.Thread, v int), pop func(th *sim.Thread) int, n int) {
	t.Helper()
	prodClk.Spawn("producer", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			push(th, i)
			th.Wait()
		}
	})
	got := 0
	consClk.Spawn("consumer", func(th *sim.Thread) {
		for got < n {
			v := pop(th)
			if v != got {
				t.Errorf("received %d, want %d (loss/dup/reorder)", v, got)
			}
			got++
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(sim.Time(uint64(n) * 1_000_000))
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("delivered %d/%d", got, n)
	}
}

// Property: both FIFO styles deliver exactly and in order across many
// random clock-period/phase pairs, including near-aliased clocks.
func TestCDCFifosNoLossAcrossRandomClocks(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for iter := 0; iter < 40; iter++ {
		pa := sim.Time(700 + r.Intn(800))
		pb := sim.Time(700 + r.Intn(800))
		if iter%5 == 0 {
			pb = pa + sim.Time(r.Intn(3)) // near-aliased, worst case for CDC
		}
		phase := sim.Time(r.Intn(1000))

		s := sim.New()
		a := s.AddClock("a", pa, 0)
		b := s.AddClock("b", pb, phase)
		pf := NewPausibleBisyncFIFO[int](s, "pf", a, b, 4, 40)
		crossDomain(t, s, a, b, pf.Push, pf.Pop, 200)

		s2 := sim.New()
		a2 := s2.AddClock("a", pa, 0)
		b2 := s2.AddClock("b", pb, phase)
		bf := NewBruteForceSyncFIFO[int](s2, "bf", a2, b2, 4)
		crossDomain(t, s2, a2, b2, bf.Push, bf.Pop, 200)
	}
}

func TestPausibleLowerLatencyThanBruteForce(t *testing.T) {
	// Measure single-message crossing latency in consumer time.
	latency := func(pausible bool) sim.Time {
		s := sim.New()
		a := s.AddClock("a", 1000, 0)
		b := s.AddClock("b", 1300, 170)
		var sent, recv sim.Time
		var push func(*sim.Thread, int)
		var popNB func() (int, bool)
		if pausible {
			f := NewPausibleBisyncFIFO[int](s, "pf", a, b, 4, 40)
			push, popNB = f.Push, f.PopNB
		} else {
			f := NewBruteForceSyncFIFO[int](s, "bf", a, b, 4)
			push, popNB = f.Push, f.PopNB
		}
		a.Spawn("p", func(th *sim.Thread) {
			th.WaitN(3)
			sent = s.Now()
			push(th, 42)
		})
		b.Spawn("c", func(th *sim.Thread) {
			for {
				if _, ok := popNB(); ok {
					recv = s.Now()
					th.Sim().Stop()
				}
				th.Wait()
			}
		})
		s.Run(1_000_000)
		return recv - sent
	}
	lp, lb := latency(true), latency(false)
	if lp >= lb {
		t.Fatalf("pausible latency %dps >= brute-force %dps", lp, lb)
	}
}

func TestPausesHappenForAliasedClocks(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 1000, 0)
	b := s.AddClock("b", 1000, 20) // 20ps offset, inside a 40ps window
	f := NewPausibleBisyncFIFO[int](s, "pf", a, b, 4, 40)
	crossDomain(t, s, a, b, f.Push, f.Pop, 100)
	if f.Pauses == 0 {
		t.Fatal("no pauses for 20ps-offset clocks with 40ps window")
	}
}

// Regression for the conflict-window phase bug: the window must be
// computed against the receiving clock's actual next edge, not
// now%period. Clock b is paused before traffic starts, shifting its
// edges off period multiples; the old modulo test then paused at the
// wrong phase (2980 is "inside the window" mod 1000 but 520ps from the
// real edge) and missed true conflicts (3480 is "safe" mod 1000 but
// 20ps from the real edge at 3500).
func TestPauseWindowTracksShiftedEdges(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 1000, 0)
	b := s.AddClock("b", 1000, 0)
	b.Pause(1500) // shift b's edges to 1500, 2500, 3500, ...
	f := NewPausibleBisyncFIFO[int](s, "pf", a, b, 4, 40)

	var bEdges []sim.Time
	b.AtCommit(func() { bEdges = append(bEdges, s.Now()) })

	// Probe clocks fire exactly one edge each inside the run window,
	// modelling a pointer crossing toward b at that instant.
	s.AddClock("probe1", 100_000, 2980).Spawn("far", func(th *sim.Thread) {
		before := f.Pauses
		f.pauseIfConflict(b, th.Clock())
		if f.Pauses != before {
			t.Errorf("paused at t=2980: next b edge is 520ps away, outside the 40ps window")
		}
	})
	s.AddClock("probe2", 100_000, 3480).Spawn("near", func(th *sim.Thread) {
		before := f.Pauses
		f.pauseIfConflict(b, th.Clock())
		if f.Pauses != before+1 {
			t.Errorf("no pause at t=3480: next b edge at 3500 is 20ps away, inside the 40ps window")
		}
	})

	s.Run(4000)
	want := []sim.Time{1500, 2500, 3520}
	if len(bEdges) != len(want) {
		t.Fatalf("b edges at %v, want %v", bEdges, want)
	}
	for i := range want {
		if bEdges[i] != want[i] {
			t.Fatalf("b edge %d at %d, want %d (conflict at 3480 must stretch the 3500 edge to 3520)", i, bEdges[i], want[i])
		}
	}
}

// Crossings stay loss-free when the receiving clock was paused before
// traffic started (its edges permanently shifted off period multiples).
func TestCDCAfterPrePause(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 1000, 0)
	b := s.AddClock("b", 1000, 0)
	b.Pause(1730)
	f := NewPausibleBisyncFIFO[int](s, "pf", a, b, 4, 40)
	crossDomain(t, s, a, b, f.Push, f.Pop, 150)
}

func TestBruteForceTwoCycleLatencyFloor(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 1000, 0)
	b := s.AddClock("b", 1000, 500)
	f := NewBruteForceSyncFIFO[int](s, "bf", a, b, 4)
	var sentCycle, recvCycle uint64
	a.Spawn("p", func(th *sim.Thread) {
		th.WaitN(2)
		f.Push(th, 1)
		sentCycle = b.Cycle()
	})
	b.Spawn("c", func(th *sim.Thread) {
		for {
			if _, ok := f.PopNB(); ok {
				recvCycle = b.Cycle()
				th.Sim().Stop()
			}
			th.Wait()
		}
	})
	s.Run(1_000_000)
	if recvCycle-sentCycle < 2 {
		t.Fatalf("brute-force delivered after %d consumer cycles, want >= 2", recvCycle-sentCycle)
	}
}

func TestAdaptiveClockGainsOverFixed(t *testing.T) {
	e := RunMarginExperiment(900, 0.10, 3_000_000, 7)
	if e.AdaptiveMHz <= e.FixedMHz {
		t.Fatalf("adaptive %.1f MHz <= fixed %.1f MHz", e.AdaptiveMHz, e.FixedMHz)
	}
	if e.GainPct < 2 || e.GainPct > 20 {
		t.Fatalf("gain %.1f%% outside plausible 2-20%% range", e.GainPct)
	}
}

func TestSupplyNoiseBounds(t *testing.T) {
	sn := NewSupplyNoise(0.80, 0.10, 3)
	for ti := sim.Time(0); ti < 1_000_000; ti += 997 {
		v := sn.At(ti)
		if v > 0.80+1e-9 || v < sn.VMin()-1e-9 {
			t.Fatalf("supply %f outside [%f, 0.80]", v, sn.VMin())
		}
	}
}

func TestGALSOverheadUnder3Percent(t *testing.T) {
	// The paper: "we estimate this overhead to be less than 3% for
	// typical partition sizes." The testchip's partitions (one router
	// interface each) are hundreds of K to ~1M+ gates.
	for _, gates := range []int{300_000, 500_000, 1_000_000, 2_000_000} {
		o := GALSOverhead(gates, 2)
		if o.OverheadPct >= 3 {
			t.Errorf("partition %d gates: overhead %.2f%% >= 3%%", gates, o.OverheadPct)
		}
	}
	// Tiny partitions do exceed 3% — the trend the model must show.
	if GALSOverhead(50_000, 4).OverheadPct < 3 {
		t.Error("50K-gate partition should exceed 3% overhead")
	}
}

func TestSyncMTBFModel(t *testing.T) {
	// At 1.1 GHz with data toggling every ~4 cycles: one flop is
	// hopeless, two flops give decades, three give absurd safety.
	one := SyncMTBF(1, 909, 3636)
	two := SyncMTBF(2, 909, 3636)
	three := SyncMTBF(3, 909, 3636)
	if !(one < two && two < three) {
		t.Fatalf("MTBF not monotone: %g %g %g", one, two, three)
	}
	if one > 1 {
		t.Fatalf("single-flop MTBF %g s implausibly safe", one)
	}
	const year = 365.25 * 24 * 3600
	if two < 100*year {
		t.Fatalf("two-flop MTBF %g s — model constants off", two)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero flops")
		}
	}()
	SyncMTBF(0, 909, 3636)
}

func TestPausibleFIFOBackpressure(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 1000, 0)
	s.AddClock("b", 1000, 500)
	f := NewPausibleBisyncFIFO[int](s, "pf", a, s.AddClock("b2", 1000, 700), 2, 40)
	pushed := 0
	a.Spawn("p", func(th *sim.Thread) {
		for i := 0; i < 10; i++ {
			if f.PushNB(i) {
				pushed++
			}
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(1_000_000)
	if pushed != 2 {
		t.Fatalf("pushed %d into depth-2 FIFO with no consumer, want 2", pushed)
	}
}
