package gals

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// PausibleBisyncFIFO is the pausible bisynchronous FIFO of the paper's
// reference [8]: a dual-clock FIFO whose integrated pausible clocking
// stretches the receiving clock whenever a pointer crossing lands inside
// the synchronization conflict window, giving error-free crossings with
// only the pause (typically a fraction of a cycle) as latency cost —
// instead of the fixed two-cycle penalty of a brute-force synchronizer.
//
// Producer-side methods must be called from threads of the producer
// clock, consumer-side methods from threads of the consumer clock.
type PausibleBisyncFIFO[T any] struct {
	prod, cons *sim.Clock
	s          *sim.Simulator

	buf  []entry[T]
	wptr uint64
	rptr uint64

	// Cached parking predicates for blocked Push/Pop.
	notFull  func() bool
	notEmpty func() bool

	// window is the metastability conflict window in picoseconds: a
	// pointer change closer than this to the other domain's next edge
	// pauses that edge.
	window sim.Time

	// Armed handshake tracing; sub is nil when disarmed and every
	// emission site nil-checks it. The tLast* fields change-detect the
	// level signals (valid = not empty, ready = not full).
	sub                    *trace.Subject
	tInit                  bool
	tLastValid, tLastReady uint64

	Pauses    uint64 // receiver-clock pauses caused by this FIFO
	Transfers uint64
}

type entry[T any] struct {
	v T
}

// NewPausibleBisyncFIFO builds a FIFO of the given depth between the two
// clock domains. window is the conflict window in ps (a flop's
// setup+hold aperture, typically tens of ps).
func NewPausibleBisyncFIFO[T any](s *sim.Simulator, name string, prod, cons *sim.Clock, depth int, window sim.Time) *PausibleBisyncFIFO[T] {
	if depth < 1 {
		panic(fmt.Sprintf("gals: FIFO depth %d", depth))
	}
	f := &PausibleBisyncFIFO[T]{
		prod: prod, cons: cons, s: s,
		buf:    make([]entry[T], depth),
		window: window,
	}
	f.notFull = func() bool { return f.wptr-f.rptr < uint64(len(f.buf)) }
	f.notEmpty = func() bool { return f.rptr != f.wptr }
	f.sub = s.Tracer().Subject(name)
	s.Component(name).Source(func(emit stats.Emit) {
		emit("pauses", float64(f.Pauses))
		emit("transfers", float64(f.Transfers))
		emit("occupancy", float64(f.Occupancy()))
	})
	s.Design().AddSync(sim.SyncDecl{Name: name, Style: "pausible", Prod: prod, Cons: cons, Depth: depth})
	return f
}

// pauseIfConflict implements the pausible handshake: a pointer that
// toggles at the current instant may violate the aperture of the flops
// sampling it in domain c; when the phase relationship puts the toggle
// inside that window, the mutex stretches c's next edge just past it.
// The pause is tiny (window ps), so the pessimistic phase test costs
// almost nothing while guaranteeing an error-free crossing.
func (f *PausibleBisyncFIFO[T]) pauseIfConflict(c, from *sim.Clock) {
	// The edge that samples this pointer toggle is the clock's actual
	// next scheduled edge — including phase offset and any shift from
	// earlier pauses. A now-modulo-period phase test is only right for a
	// never-paused, zero-phase clock: once the receiver has been
	// stretched, its edges no longer land on period multiples, so the
	// modulo test pauses at the wrong phase or misses conflicts.
	//
	// The toggle happens on from's current edge, so from.Now is the
	// crossing instant (identical to Simulator.Now sequentially, and the
	// only defined time in a partitioned run). CrossingPause carries the
	// instant so the kernel can reproduce its due-list-freeze semantics
	// across shards.
	now := from.Now()
	if c.CrossingPause(from, now, now+f.window) {
		f.Pauses++
		if f.sub != nil {
			f.sub.EmitOn(from.Lane(), trace.KindStall, uint64(now), c.Cycle(), 1)
		}
	}
}

// record emits a handshake event plus any valid/ready level changes,
// stamped with clock c's cycle count (producer clock for push-side
// events, consumer clock for pop-side events).
func (f *PausibleBisyncFIFO[T]) record(k trace.Kind, c *sim.Clock) {
	now, cyc := uint64(c.Now()), c.Cycle()
	lane := c.Lane()
	occ := uint64(f.Occupancy())
	f.sub.EmitOn(lane, k, now, cyc, occ)
	var valid, ready uint64
	if f.rptr != f.wptr {
		valid = 1
	}
	if f.wptr-f.rptr < uint64(len(f.buf)) {
		ready = 1
	}
	if !f.tInit || valid != f.tLastValid {
		f.sub.EmitOn(lane, trace.KindValid, now, cyc, valid)
		f.tLastValid = valid
	}
	if !f.tInit || ready != f.tLastReady {
		f.sub.EmitOn(lane, trace.KindReady, now, cyc, ready)
		f.tLastReady = ready
	}
	if k == trace.KindPush || k == trace.KindPop {
		f.sub.EmitOn(lane, trace.KindOcc, now, cyc, occ)
	}
	f.tInit = true
}

// PushNB offers v from the producer domain. It returns false when full.
func (f *PausibleBisyncFIFO[T]) PushNB(v T) bool {
	if f.wptr-f.rptr >= uint64(len(f.buf)) {
		if f.sub != nil {
			f.record(trace.KindFull, f.prod)
		}
		return false
	}
	f.buf[f.wptr%uint64(len(f.buf))] = entry[T]{v: v}
	f.wptr++
	if f.sub != nil {
		f.record(trace.KindPush, f.prod)
	}
	// The write pointer crosses toward the consumer clock now.
	f.pauseIfConflict(f.cons, f.prod)
	return true
}

// Push blocks (in producer-domain cycles) until accepted. A blocked
// producer parks on the FIFO's capacity predicate: a failed PushNB has
// no side effects, so parking is cycle-identical to polling.
func (f *PausibleBisyncFIFO[T]) Push(th *sim.Thread, v T) {
	for !f.PushNB(v) {
		th.WaitFor(f.notFull)
	}
}

// PopNB takes a value in the consumer domain. It returns false when empty.
func (f *PausibleBisyncFIFO[T]) PopNB() (T, bool) {
	var zero T
	if f.rptr == f.wptr {
		if f.sub != nil {
			f.record(trace.KindEmpty, f.cons)
		}
		return zero, false
	}
	v := f.buf[f.rptr%uint64(len(f.buf))].v
	f.rptr++
	f.Transfers++
	if f.sub != nil {
		f.record(trace.KindPop, f.cons)
	}
	// The read pointer crosses toward the producer clock now.
	f.pauseIfConflict(f.prod, f.cons)
	return v, true
}

// Pop blocks (in consumer-domain cycles) until a value arrives, parking
// on the FIFO's occupancy predicate while empty.
func (f *PausibleBisyncFIFO[T]) Pop(th *sim.Thread) T {
	for {
		if v, ok := f.PopNB(); ok {
			return v
		}
		th.WaitFor(f.notEmpty)
	}
}

// Occupancy returns the number of buffered entries.
func (f *PausibleBisyncFIFO[T]) Occupancy() int { return int(f.wptr - f.rptr) }

// BruteForceSyncFIFO is the baseline dual-clock FIFO: gray-coded pointers
// cross through two-flop synchronizers, so each domain observes the other
// side's pointer two of its own clock edges late. Crossing latency is
// therefore ≥ 2 receiver cycles, but no clock is ever paused.
type BruteForceSyncFIFO[T any] struct {
	prod, cons *sim.Clock

	buf  []entry[T]
	wptr uint64
	rptr uint64

	// Two-stage synchronizer pipelines for each direction.
	wptrSyncToCons [2]uint64
	rptrSyncToProd [2]uint64

	Transfers uint64

	notFull  func() bool
	notEmpty func() bool
}

// NewBruteForceSyncFIFO builds the baseline FIFO, registers the
// synchronizer flops on both clocks, and — like its pausible sibling —
// registers the FIFO as a named component (stats source) and as a
// synchronizer edge in the design graph, so lint and -stats can see it.
func NewBruteForceSyncFIFO[T any](s *sim.Simulator, name string, prod, cons *sim.Clock, depth int) *BruteForceSyncFIFO[T] {
	if depth < 1 {
		panic(fmt.Sprintf("gals: FIFO depth %d", depth))
	}
	f := &BruteForceSyncFIFO[T]{
		prod: prod, cons: cons,
		buf: make([]entry[T], depth),
	}
	f.notFull = func() bool { return f.wptr-f.rptrSyncToProd[1] < uint64(len(f.buf)) }
	f.notEmpty = func() bool { return f.rptr != f.wptrSyncToCons[1] }
	cons.AtCommitNamed(name, func() {
		f.wptrSyncToCons[1] = f.wptrSyncToCons[0]
		f.wptrSyncToCons[0] = f.wptr
	})
	prod.AtCommitNamed(name, func() {
		f.rptrSyncToProd[1] = f.rptrSyncToProd[0]
		f.rptrSyncToProd[0] = f.rptr
	})
	s.Component(name).Source(func(emit stats.Emit) {
		emit("transfers", float64(f.Transfers))
		emit("occupancy", float64(f.Occupancy()))
	})
	s.Design().AddSync(sim.SyncDecl{Name: name, Style: "brute-force", Prod: prod, Cons: cons, Depth: depth})
	return f
}

// NewBruteForceSyncFIFOAnon builds the baseline FIFO without an explicit
// name, deriving the simulator from the producer clock and a stable name
// from the clock pair and synchronizer count.
//
// Deprecated: use NewBruteForceSyncFIFO, which takes the simulator and a
// component name like the pausible sibling.
func NewBruteForceSyncFIFOAnon[T any](prod, cons *sim.Clock, depth int) *BruteForceSyncFIFO[T] {
	s := prod.Sim()
	name := fmt.Sprintf("bfsync[%s-%s][%d]", prod.Name(), cons.Name(), s.Design().SyncCount())
	return NewBruteForceSyncFIFO[T](s, name, prod, cons, depth)
}

// Occupancy returns the number of buffered entries as the producer
// domain sees them (the true pointer difference, ignoring synchronizer
// staleness).
func (f *BruteForceSyncFIFO[T]) Occupancy() int { return int(f.wptr - f.rptr) }

// PushNB offers v from the producer domain, observing the synchronized
// (stale) read pointer for the full check.
func (f *BruteForceSyncFIFO[T]) PushNB(v T) bool {
	if f.wptr-f.rptrSyncToProd[1] >= uint64(len(f.buf)) {
		return false
	}
	f.buf[f.wptr%uint64(len(f.buf))] = entry[T]{v: v}
	f.wptr++
	return true
}

// Push blocks until accepted, parking on the synchronized full check.
func (f *BruteForceSyncFIFO[T]) Push(th *sim.Thread, v T) {
	for !f.PushNB(v) {
		th.WaitFor(f.notFull)
	}
}

// PopNB takes a value, observing the synchronized (stale) write pointer.
func (f *BruteForceSyncFIFO[T]) PopNB() (T, bool) {
	var zero T
	if f.rptr == f.wptrSyncToCons[1] {
		return zero, false
	}
	v := f.buf[f.rptr%uint64(len(f.buf))].v
	f.rptr++
	f.Transfers++
	return v, true
}

// Pop blocks until a value arrives, parking on the synchronized empty
// check.
func (f *BruteForceSyncFIFO[T]) Pop(th *sim.Thread) T {
	for {
		if v, ok := f.PopNB(); ok {
			return v
		}
		th.WaitFor(f.notEmpty)
	}
}
