// Package gals implements the paper's fine-grained globally-asynchronous
// locally-synchronous clocking (§3.1): per-partition local clock
// generators with supply-noise-adaptive frequency, pausible bisynchronous
// FIFOs for low-latency error-free clock-domain crossings (Keller et al.,
// ASYNC'15), a brute-force two-flop synchronizer FIFO as the baseline,
// and the area-overhead model behind the paper's <3% claim.
//
// On an armed simulation (sim.Simulator.Arm) each pausible FIFO also
// records its crossings into the internal/trace recorder: push/pop
// outcomes with valid/ready/occupancy levels stamped in the clock
// domain that performed the operation, and one stall event per
// receiver-clock pause.
package gals
