package gals

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/exp"
	"repro/internal/sim"
)

// ClockGen models a partition's local clock generator: a ring oscillator
// whose period tracks the local supply voltage. In adaptive mode the
// period is retuned every edge from the instantaneous supply (the
// behaviour of the adaptive generators in the paper's reference [7]);
// in fixed mode the period is locked to the worst-case supply so that
// logic always meets timing — the margin the adaptive scheme removes.
type ClockGen struct {
	Clock *sim.Clock

	nominalPS float64
	vdd       float64 // nominal supply
	alpha     float64 // delay-voltage sensitivity exponent
	adaptive  bool
	guardband float64 // fractional margin added on top of tracking

	noise  *SupplyNoise
	Pauses uint64
}

// SupplyNoise is a deterministic pseudo-random supply waveform: a sum of
// sinusoidal droop components plus bounded white noise, reproducible per
// seed.
type SupplyNoise struct {
	VNom  float64
	Droop float64 // worst-case fractional droop (e.g. 0.10)
	rng   *rand.Rand
	f1    float64
	f2    float64
}

// NewSupplyNoise builds a waveform with the given worst-case droop.
func NewSupplyNoise(vnom, droop float64, seed int64) *SupplyNoise {
	r := rand.New(rand.NewSource(seed))
	return &SupplyNoise{
		VNom: vnom, Droop: droop, rng: r,
		f1: 1.0 / (80_000 + 40_000*r.Float64()),   // ~10 MHz resonance, 1/ps
		f2: 1.0 / (600_000 + 300_000*r.Float64()), // board-level component
	}
}

// At returns the supply voltage at time t.
func (sn *SupplyNoise) At(t sim.Time) float64 {
	ft := float64(t)
	s := 0.55*math.Sin(2*math.Pi*sn.f1*ft) + 0.35*math.Sin(2*math.Pi*sn.f2*ft)
	s += 0.10 * (2*sn.rng.Float64() - 1)
	// s in ~[-1, 1]; map to [VNom*(1-Droop), VNom].
	frac := (1 - s) / 2 // [0,1]
	return sn.VNom * (1 - sn.Droop*frac)
}

// VMin returns the worst-case supply.
func (sn *SupplyNoise) VMin() float64 { return sn.VNom * (1 - sn.Droop) }

// LogicDelayAt scales a nominal path delay for supply v: delay grows as
// (vnom/v)^alpha, the alpha-power model.
func LogicDelayAt(nominalPS, vnom, v, alpha float64) float64 {
	return nominalPS * math.Pow(vnom/v, alpha)
}

// NewClockGen attaches a local generator to the simulator. nominalPS is
// the critical-path delay at nominal supply; the generated period always
// covers the instantaneous critical path. Fixed generators run at the
// worst-case-safe period; adaptive generators retune every edge.
func NewClockGen(s *sim.Simulator, name string, nominalPS float64, noise *SupplyNoise, adaptive bool, guardband float64, phase sim.Time) *ClockGen {
	g := &ClockGen{
		nominalPS: nominalPS,
		vdd:       noise.VNom,
		alpha:     1.3,
		adaptive:  adaptive,
		guardband: guardband,
		noise:     noise,
	}
	g.Clock = s.AddClock(name, sim.Time(g.safePeriod(noise.VMin())), phase)
	if adaptive {
		clk := g.Clock
		clk.AtCommit(func() {
			// clk.Now, not s.Now: commit hooks run inside the clock's own
			// edge, where clock-local time is the defined (and, in a
			// partitioned run, the only shard-safe) time source.
			v := noise.At(clk.Now())
			g.Clock.SetPeriod(sim.Time(g.safePeriod(v)))
		})
	}
	return g
}

// safePeriod returns the period covering the critical path at supply v,
// plus guardband.
func (g *ClockGen) safePeriod(v float64) float64 {
	p := LogicDelayAt(g.nominalPS, g.vdd, v, g.alpha) * (1 + g.guardband)
	if p < 1 {
		p = 1
	}
	return p
}

// MarginExperiment quantifies the margin recovered by adaptive clocking:
// it runs both generator styles against the same supply waveform for the
// given duration and reports mean achieved frequency.
type MarginExperiment struct {
	FixedMHz    float64
	AdaptiveMHz float64
	GainPct     float64 // adaptive frequency gain over fixed
}

// RunMarginExperiment measures fixed vs adaptive throughput.
func RunMarginExperiment(nominalPS float64, droop float64, duration sim.Time, seed int64) MarginExperiment {
	count := func(adaptive bool) float64 {
		s := sim.New()
		noise := NewSupplyNoise(0.80, droop, seed)
		g := NewClockGen(s, "clk", nominalPS, noise, adaptive, 0.03, 0)
		s.Run(duration)
		return float64(g.Clock.Cycle()) / (float64(duration) / 1e6) // MHz
	}
	e := MarginExperiment{FixedMHz: count(false), AdaptiveMHz: count(true)}
	e.GainPct = (e.AdaptiveMHz/e.FixedMHz - 1) * 100
	return e
}

// MarginPoint is one droop setting of a margin sweep.
type MarginPoint struct {
	Droop float64
	MarginExperiment
}

// MarginSweep measures the adaptive-vs-fixed margin recovery across
// worst-case droop settings, one campaign job per droop sharded over the
// runner's worker pool. Both generator styles within a point share the
// point's derived noise seed, keeping the gain comparison seed-matched.
// Points come back in droop order, bit-identical for any parallelism.
func MarginSweep(nominalPS float64, droops []float64, duration sim.Time, seed int64, parallel int) ([]MarginPoint, *exp.Summary) {
	jobs := make([]exp.Job, len(droops))
	for i, droop := range droops {
		droop := droop
		jobs[i] = exp.Job{
			Name: fmt.Sprintf("margin/droop[%g]", droop),
			Run: func(c *exp.Ctx) (any, error) {
				return MarginPoint{
					Droop:            droop,
					MarginExperiment: RunMarginExperiment(nominalPS, droop, duration, c.Seed),
				}, nil
			},
		}
	}
	s := exp.Run(jobs, exp.Named("gals"), exp.Seed(seed), exp.Parallel(parallel))
	pts := make([]MarginPoint, 0, len(droops))
	for _, r := range s.Results {
		if p, ok := r.Value.(MarginPoint); ok {
			pts = append(pts, p)
		}
	}
	return pts, s
}

// SyncMTBF estimates the mean time between synchronization failures of
// an n-flop brute-force synchronizer using the classic metastability
// model MTBF = e^(tr/τ) / (T0 · fclk · fdata), where the resolution time
// tr is the slack the chain grants beyond one cycle. Pausible clocking
// sidesteps this entirely — the receiver clock stretches until the
// mutex resolves — which is why the paper's interfaces are "error-free"
// rather than merely improbable-to-fail.
func SyncMTBF(nFlops int, clockPS, dataPS float64) (seconds float64) {
	const (
		tauPS = 10.0 // regeneration time constant, 16nm-class flop
		t0PS  = 20.0 // metastability aperture
	)
	if nFlops < 1 {
		panic("gals: synchronizer needs at least one flop")
	}
	// Resolution time: each extra flop grants one more cycle of slack.
	tr := float64(nFlops-1) * clockPS
	fclk := 1e12 / clockPS // Hz
	fdata := 1e12 / dataPS
	return math.Exp(tr/tauPS) / (t0PS * 1e-12 * fclk * fdata)
}

// Overhead is the paper's <3% GALS area cost model for one partition.
type Overhead struct {
	PartitionGates int
	Interfaces     int
	ClockGenGates  int
	FIFOGates      int
	OverheadPct    float64
}

// Per-instance gate costs (NAND2 equivalents), from the mapped sizes of
// the components: a local clock generator (ring oscillator, tuning DACs,
// control) and one pausible bisynchronous FIFO interface.
const (
	ClockGenGates     = 3200
	PausibleFIFOGates = 1400
)

// GALSOverhead computes the area overhead of converting a partition of
// the given size with n asynchronous interfaces to fine-grained GALS.
func GALSOverhead(partitionGates, interfaces int) Overhead {
	o := Overhead{
		PartitionGates: partitionGates,
		Interfaces:     interfaces,
		ClockGenGates:  ClockGenGates,
		FIFOGates:      interfaces * PausibleFIFOGates,
	}
	o.OverheadPct = 100 * float64(o.ClockGenGates+o.FIFOGates) / float64(partitionGates)
	return o
}

func (o Overhead) String() string {
	return fmt.Sprintf("partition %d gates, %d interfaces: +%d gates (%.2f%%)",
		o.PartitionGates, o.Interfaces, o.ClockGenGates+o.FIFOGates, o.OverheadPct)
}
