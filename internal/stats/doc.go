// Package stats is the unified metrics layer shared by every simulated
// component. Counters and gauges are keyed by a hierarchical component
// path (e.g. "soc/pe[3]/inject") plus a metric name, so one registry
// holds channel traffic counters, NoC link counters, SoC activity
// counters, power estimates, and verification coverage under a single
// naming scheme (DESIGN.md §3).
//
// Path naming scheme: paths are "/"-separated segments from the design
// root; replicated elements use a bracketed index segment ("pe[3]",
// "r[12]"); metric names are lower_snake_case. A component that keeps
// its own compact counter struct for the hot path can expose it through
// a Source callback instead of registry-allocated counters — the
// registry polls sources only when a snapshot is taken, so steady-state
// simulation cost is zero.
package stats
