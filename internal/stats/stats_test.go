package stats

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func TestCounterGaugeIdentity(t *testing.T) {
	r := New()
	c := r.Counter("a/b", "hits")
	c.Inc()
	c.Add(2)
	if r.Counter("a/b", "hits") != c {
		t.Fatal("Counter did not return the cached pointer")
	}
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	g := r.Gauge("a/b", "occ")
	g.Set(1.5)
	g.Add(0.5)
	if r.Gauge("a/b", "occ") != g || g.Value() != 2 {
		t.Fatalf("gauge = %v", g.Value())
	}
	// Same name, different kind maps: counters and gauges don't collide.
	if float64(r.Counter("a/b", "occ").Value()) == g.Value() {
		t.Fatal("counter and gauge namespaces collided")
	}
}

func TestSnapshotSortedAndPollsSources(t *testing.T) {
	r := New()
	r.Counter("b", "x").Inc()
	r.Gauge("a", "y").Set(2)
	n := 0.0
	r.Source("c", func(emit Emit) { emit("dyn", n) })
	r.TreeSource(func(emit EmitAt) { emit("a", "z", 9) })

	n = 5
	ms := r.Snapshot()
	want := []Metric{{"a", "y", 2}, {"a", "z", 9}, {"b", "x", 1}, {"c", "dyn", 5}}
	if len(ms) != len(want) {
		t.Fatalf("snapshot = %v, want %v", ms, want)
	}
	for i := range want {
		if ms[i] != want[i] {
			t.Fatalf("snapshot[%d] = %v, want %v (sorted path-then-name)", i, ms[i], want[i])
		}
	}
	// Sources are polled per snapshot, not at registration.
	n = 7
	ms = r.Snapshot()
	if ms[3].Value != 7 {
		t.Fatalf("source not re-polled: %v", ms[3])
	}
}

func TestTotalPrefixSemantics(t *testing.T) {
	r := New()
	r.Counter("soc/noc/r[0]", "flits").Add(3)
	r.Counter("soc/noc/r[1]", "flits").Add(4)
	r.Counter("soc/nocx", "flits").Add(100) // sibling, must not match "soc/noc"
	r.Counter("soc/noc", "flits").Add(1)    // exact path matches
	r.Counter("soc/noc/r[0]", "other").Add(50)

	if got := r.Total("soc/noc", "flits"); got != 8 {
		t.Fatalf("Total(soc/noc, flits) = %v, want 8", got)
	}
	if got := r.Total("", "flits"); got != 108 {
		t.Fatalf("Total(\"\", flits) = %v, want 108", got)
	}
	if got := r.Total("soc/noc/r[2]", "flits"); got != 0 {
		t.Fatalf("Total of absent path = %v, want 0", got)
	}
}

func TestDumpTreeShape(t *testing.T) {
	r := New()
	r.Counter("soc/pe[0]", "kernels").Add(2)
	r.Gauge("soc/pe[0]", "occ").Set(1.25)
	r.Counter("soc/pe[1]", "kernels").Add(3)
	var buf bytes.Buffer
	r.Dump(&buf)
	want := "soc\n" +
		"  pe[0]\n" +
		"    kernels = 2\n" +
		"    occ = 1.2500\n" +
		"  pe[1]\n" +
		"    kernels = 3\n"
	if buf.String() != want {
		t.Fatalf("dump:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// Replicated components must dump in natural index order: pe[2] before
// pe[10], not the lexical pe[1], pe[10], pe[11], pe[2] ordering.
func TestSnapshotNaturalIndexOrder(t *testing.T) {
	r := New()
	const numPEs = 12
	// Register in a scrambled order so the sort does the work.
	for _, i := range []int{7, 0, 10, 3, 11, 1, 8, 5, 2, 9, 6, 4} {
		r.Counter(fmt.Sprintf("soc/pe[%d]", i), "kernels").Add(uint64(i))
	}
	ms := r.Snapshot()
	if len(ms) != numPEs {
		t.Fatalf("snapshot has %d metrics, want %d", len(ms), numPEs)
	}
	for i, m := range ms {
		want := fmt.Sprintf("soc/pe[%d]", i)
		if m.Path != want {
			t.Fatalf("snapshot[%d].Path = %q, want %q (natural index order)", i, m.Path, want)
		}
	}
	// The tree dump lists replicas in the same natural order.
	var buf bytes.Buffer
	r.Dump(&buf)
	prev := -1
	for _, line := range strings.Split(buf.String(), "\n") {
		var idx int
		if n, _ := fmt.Sscanf(strings.TrimSpace(line), "pe[%d]", &idx); n == 1 {
			if idx != prev+1 {
				t.Fatalf("tree lists pe[%d] after pe[%d]:\n%s", idx, prev, buf.String())
			}
			prev = idx
		}
	}
	if prev != numPEs-1 {
		t.Fatalf("tree listed %d PE nodes, want %d", prev+1, numPEs)
	}
}

func TestNaturalCmpProperties(t *testing.T) {
	ordered := []string{"", "a", "a/b", "pe[0]", "pe[2]", "pe[10]", "r2", "r10", "z"}
	for i, a := range ordered {
		for j, b := range ordered {
			got := naturalCmp(a, b)
			switch {
			case i < j && got >= 0:
				t.Errorf("naturalCmp(%q, %q) = %d, want < 0", a, b, got)
			case i == j && got != 0:
				t.Errorf("naturalCmp(%q, %q) = %d, want 0", a, b, got)
			case i > j && got <= 0:
				t.Errorf("naturalCmp(%q, %q) = %d, want > 0", a, b, got)
			}
		}
	}
	// Zero-padding keeps the order total and deterministic.
	if naturalCmp("pe[01]", "pe[1]") >= 0 || naturalCmp("pe[1]", "pe[01]") <= 0 {
		t.Error("zero-padding tiebreak not antisymmetric")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("soc/noc/r[3]", "flits_out").Add(17)
	r.Gauge("soc/power", "total_mw").Set(42.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"metrics"`) {
		t.Fatalf("dump missing metrics key: %s", buf.String())
	}
	ms, err := ParseJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	orig := r.Snapshot()
	if len(ms) != len(orig) {
		t.Fatalf("roundtrip lost metrics: %v vs %v", ms, orig)
	}
	for i := range orig {
		if ms[i] != orig[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, ms[i], orig[i])
		}
	}
	if Total(ms, "soc", "flits_out") != 17 {
		t.Fatal("Total over parsed metrics broken")
	}
	if _, err := ParseJSON([]byte("{nope")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

// TestWriteMetricsJSONGoldenBytes pins the canonical dump encoding down
// to the byte: key order, indentation, float spelling. The service
// layer's content-addressed result cache serves stored bytes verbatim
// and asserts recomputed results match them, so this format must never
// drift nondeterministically.
func TestWriteMetricsJSONGoldenBytes(t *testing.T) {
	ms := []Metric{
		{Path: "serve/cache", Name: "hits", Value: 3},
		{Path: "soc/pe[2]", Name: "util", Value: 0.25},
		{Path: "", Name: "uptime", Value: 1e21},
	}
	const golden = "{\n \"metrics\": [\n" +
		"  {\"path\":\"serve/cache\",\"name\":\"hits\",\"value\":3},\n" +
		"  {\"path\":\"soc/pe[2]\",\"name\":\"util\",\"value\":0.25},\n" +
		"  {\"path\":\"\",\"name\":\"uptime\",\"value\":1e+21}\n" +
		" ]\n}\n"
	var buf bytes.Buffer
	if err := WriteMetricsJSON(&buf, ms); err != nil {
		t.Fatal(err)
	}
	if buf.String() != golden {
		t.Fatalf("canonical dump drifted:\ngot:\n%s\nwant:\n%s", buf.String(), golden)
	}
	// The canonical form must still be plain JSON for ParseJSON consumers.
	parsed, err := ParseJSON(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(ms) {
		t.Fatalf("roundtrip lost metrics: %v", parsed)
	}
	for i := range ms {
		if parsed[i] != ms[i] {
			t.Fatalf("roundtrip[%d] = %v, want %v", i, parsed[i], ms[i])
		}
	}
}

// TestWriteMetricsJSONDeterministicAcrossInputOrder feeds the same
// multiset of metrics in two different orders — including a (path, name)
// collision — and requires byte-identical dumps after SortMetrics.
func TestWriteMetricsJSONDeterministicAcrossInputOrder(t *testing.T) {
	a := []Metric{
		{Path: "q", Name: "depth", Value: 2},
		{Path: "q", Name: "depth", Value: 1}, // same key, different source
		{Path: "p", Name: "x", Value: 7},
	}
	b := []Metric{a[2], a[0], a[1]}
	render := func(ms []Metric) string {
		SortMetrics(ms)
		var buf bytes.Buffer
		if err := WriteMetricsJSON(&buf, ms); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if ra, rb := render(a), render(b); ra != rb {
		t.Fatalf("dump depends on input order:\n%s\nvs\n%s", ra, rb)
	}
}

func TestFormatJSONFloat(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"}, {17, "17"}, {-3, "-3"}, {42.5, "42.5"},
		{0.1, "0.1"}, {1e21, "1e+21"},
	}
	for _, c := range cases {
		if got := FormatJSONFloat(c.v); got != c.want {
			t.Errorf("FormatJSONFloat(%v) = %q, want %q", c.v, got, c.want)
		}
	}
	for _, bad := range []float64{nan(), inf()} {
		if got := FormatJSONFloat(bad); got != "0" {
			t.Errorf("FormatJSONFloat(non-finite) = %q, want 0", got)
		}
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }
