package stats

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Counter is a monotonically increasing metric. It is a bare word with
// no synchronization: the simulation kernel serializes all component
// execution, so counters are only ever touched from one goroutine at a
// time.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge is a last-value-wins metric (occupancies, power figures).
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(x float64) { g.v = x }

// Add adjusts the gauge value by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// Metric is one (path, name, value) sample in a snapshot.
type Metric struct {
	Path  string  `json:"path"`
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Emit is the callback handed to Source functions at snapshot time.
type Emit func(name string, value float64)

// EmitAt is the callback handed to TreeSource functions at snapshot
// time; unlike Emit it may target any component path.
type EmitAt func(path, name string, value float64)

type metricKey struct{ path, name string }

// Registry is the per-simulation metric store. All methods are intended
// for single-goroutine use from simulation code (the kernel serializes
// component execution).
type Registry struct {
	counters map[metricKey]*Counter
	gauges   map[metricKey]*Gauge
	sources  []source
}

type source struct {
	path string       // fixed path; "" for tree sources
	fn   func(Emit)   // fixed-path source
	tree func(EmitAt) // free-path source
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{
		counters: make(map[metricKey]*Counter),
		gauges:   make(map[metricKey]*Gauge),
	}
}

// Counter returns the counter registered at (path, name), creating it
// on first use. The same pointer is returned for repeated calls, so
// components can cache it for the hot path.
func (r *Registry) Counter(path, name string) *Counter {
	k := metricKey{path, name}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge registered at (path, name), creating it on
// first use.
func (r *Registry) Gauge(path, name string) *Gauge {
	k := metricKey{path, name}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Source registers a callback that contributes metrics under path each
// time a snapshot is taken. Components that keep compact internal
// counter structs use this to surface them without per-event registry
// traffic.
func (r *Registry) Source(path string, fn func(Emit)) {
	r.sources = append(r.sources, source{path: path, fn: fn})
}

// TreeSource registers a callback that may contribute metrics at any
// path; the kernel uses this for components enumerated only at snapshot
// time (clock domains, process tables).
func (r *Registry) TreeSource(fn func(EmitAt)) {
	r.sources = append(r.sources, source{tree: fn})
}

// Snapshot polls every source and collects all counters and gauges into
// a deterministic, path-then-name sorted metric list.
func (r *Registry) Snapshot() []Metric {
	var ms []Metric
	for k, c := range r.counters {
		ms = append(ms, Metric{Path: k.path, Name: k.name, Value: float64(c.n)})
	}
	for k, g := range r.gauges {
		ms = append(ms, Metric{Path: k.path, Name: k.name, Value: g.v})
	}
	for _, s := range r.sources {
		if s.tree != nil {
			s.tree(func(path, name string, value float64) {
				ms = append(ms, Metric{Path: path, Name: name, Value: value})
			})
			continue
		}
		path := s.path
		s.fn(func(name string, value float64) {
			ms = append(ms, Metric{Path: path, Name: name, Value: value})
		})
	}
	SortMetrics(ms)
	return ms
}

// SortMetrics orders a metric list path-then-name, with numeric runs in
// paths compared by value so replicated components ("pe[2]" before
// "pe[10]") list in natural index order in tree and JSON dumps. Ties on
// (path, name) — a counter and a source emitting the same key, say —
// break on value, so the order is total and the rendered bytes never
// depend on map iteration or registration order.
func SortMetrics(ms []Metric) {
	sort.SliceStable(ms, func(i, j int) bool {
		if c := naturalCmp(ms[i].Path, ms[j].Path); c != 0 {
			return c < 0
		}
		if c := naturalCmp(ms[i].Name, ms[j].Name); c != 0 {
			return c < 0
		}
		return ms[i].Value < ms[j].Value
	})
}

// PathLess reports whether path a orders before path b under the
// registry's natural ordering (digit runs compared numerically).
func PathLess(a, b string) bool { return naturalCmp(a, b) < 0 }

// naturalCmp compares two strings byte-wise except that maximal runs of
// ASCII digits are compared as integers. Numerically equal runs with
// different zero padding fall back to a deterministic tiebreak (more
// padding first) so the order stays total.
func naturalCmp(a, b string) int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ca, cb := a[i], b[j]
		if isDigit(ca) && isDigit(cb) {
			si, sj := i, j
			for i < len(a) && isDigit(a[i]) {
				i++
			}
			for j < len(b) && isDigit(b[j]) {
				j++
			}
			ra, rb := a[si:i], b[sj:j]
			na, nb := strings.TrimLeft(ra, "0"), strings.TrimLeft(rb, "0")
			if len(na) != len(nb) {
				if len(na) < len(nb) {
					return -1
				}
				return 1
			}
			if na != nb {
				if na < nb {
					return -1
				}
				return 1
			}
			if len(ra) != len(rb) {
				if len(ra) > len(rb) {
					return -1
				}
				return 1
			}
			continue
		}
		if ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
		i++
		j++
	}
	switch {
	case len(a)-i < len(b)-j:
		return -1
	case len(a)-i > len(b)-j:
		return 1
	}
	return 0
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Total sums metric name over every path that equals prefix or starts
// with prefix+"/". An empty prefix sums over all paths.
func (r *Registry) Total(prefix, name string) float64 {
	return Total(r.Snapshot(), prefix, name)
}

// Total sums metric name in ms over every path matching prefix (equal,
// or below it in the hierarchy). An empty prefix matches all paths.
func Total(ms []Metric, prefix, name string) float64 {
	var sum float64
	for _, m := range ms {
		if m.Name != name {
			continue
		}
		if prefix == "" || m.Path == prefix || strings.HasPrefix(m.Path, prefix+"/") {
			sum += m.Value
		}
	}
	return sum
}

// Dump writes the snapshot as an indented component tree: one line per
// path segment, metrics nested under their component. Zero-valued
// metrics are included so the tree shape is stable across runs.
func (r *Registry) Dump(w io.Writer) {
	WriteTree(w, r.Snapshot())
}

// WriteTree renders a metric list (as produced by Snapshot or
// ParseJSON) as the indented component tree used by `socsim -stats`.
func WriteTree(w io.Writer, ms []Metric) {
	var prev []string
	for _, m := range ms {
		segs := strings.Split(m.Path, "/")
		if m.Path == "" {
			segs = nil
		}
		// Print the path segments that differ from the previous metric's
		// path, so each component appears once as a tree node.
		common := 0
		for common < len(segs) && common < len(prev) && segs[common] == prev[common] {
			common++
		}
		for i := common; i < len(segs); i++ {
			fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", i), segs[i])
		}
		prev = segs
		fmt.Fprintf(w, "%s%s = %s\n", strings.Repeat("  ", len(segs)), m.Name, formatValue(m.Value))
	}
}

func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

// jsonDump is the machine-readable dump format consumed by cmd/benchfig.
type jsonDump struct {
	Metrics []Metric `json:"metrics"`
}

// WriteJSON writes the snapshot as the machine-readable dump format
// ({"metrics":[{path,name,value},...]}) consumed by cmd/benchfig.
func (r *Registry) WriteJSON(w io.Writer) error {
	return WriteMetricsJSON(w, r.Snapshot())
}

// WriteMetricsJSON writes an already-collected metric list in the same
// dump format; campaign summaries (internal/exp) use it to publish
// without a live registry.
//
// The encoder is hand-rolled rather than delegated to encoding/json so
// the bytes are canonical: object keys always in (path, name, value)
// order, one metric per line, floats in their shortest round-trip form.
// The service layer's content-addressed result cache depends on two
// renders of the same metric list being byte-identical.
func WriteMetricsJSON(w io.Writer, ms []Metric) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\n \"metrics\": [")
	for i, m := range ms {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n  {\"path\":")
		bw.Write(quoteJSON(m.Path))
		bw.WriteString(",\"name\":")
		bw.Write(quoteJSON(m.Name))
		bw.WriteString(",\"value\":")
		bw.WriteString(FormatJSONFloat(m.Value))
		bw.WriteByte('}')
	}
	bw.WriteString("\n ]\n}\n")
	return bw.Flush()
}

// quoteJSON renders s as a JSON string literal. encoding/json's string
// escaping is deterministic, so delegating here keeps the canonical
// encoder honest on the one field class that can hold arbitrary bytes.
func quoteJSON(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return []byte(`""`)
	}
	return b
}

// FormatJSONFloat renders a metric value deterministically: integral
// values as plain integers (the common counter case), everything else in
// strconv's shortest round-trip form. NaN and infinities have no JSON
// spelling and degrade to 0.
func FormatJSONFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "0"
	}
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseJSON decodes a dump written by WriteJSON back into a metric list.
func ParseJSON(data []byte) ([]Metric, error) {
	var d jsonDump
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("stats: bad dump: %w", err)
	}
	return d.Metrics, nil
}
