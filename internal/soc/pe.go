package soc

import (
	"fmt"
	"sync"

	"repro/internal/connections"
	"repro/internal/hls"
	"repro/internal/matchlib"
	"repro/internal/matchlib/float"
	"repro/internal/noc"
	"repro/internal/rtl"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/synth"
)

// PE is one processing element of the spatial array: a scratchpad memory,
// a vector datapath built from the MatchLib Vector and Float components,
// a control unit executing configured kernels, and the router interface.
// It is a MemNode whose exec hook runs the kernel engine.
type PE struct {
	*MemNode
	lanes   int
	mode    connections.Mode
	gateSim *rtl.Simulator // shadow gate-level datapath (RTL cosim)
}

// rtlPipeFill is the extra datapath pipeline-fill latency charged per
// kernel in RTL-cosim mode (HLS-generated RTL has real pipe stages the
// loosely-timed model does not).
const rtlPipeFill = 4

// shadowNetlist is the gate-level MAC datapath lane shared by all PEs in
// shadow-cosimulation mode: a 32-bit multiply-accumulate compiled through
// the HLS flow and mapped to standard cells.
var (
	shadowOnce sync.Once
	shadowNl   *rtl.Netlist
)

func shadowNetlist() *rtl.Netlist {
	shadowOnce.Do(func() {
		d := hls.Optimize(hls.MACDesign(32))
		shadowNl = synth.Optimize(synth.Map(hls.Pipeline(d, hls.DefaultConstraints())))
	})
	return shadowNl
}

// newPE builds a PE node with the given scratchpad size in words and
// vector width.
func newPE(clk *sim.Clock, name string, id, scratchWords, lanes int, mode connections.Mode, shadow bool,
	inject *connections.Out[noc.Packet], eject *connections.In[noc.Packet]) *PE {
	pe := &PE{lanes: lanes, mode: mode}
	pe.MemNode = newMemNode(clk, name, id, scratchWords, lanes, inject, eject)
	pe.MemNode.exec = pe.runKernel
	if shadow && mode == connections.ModeRTLCosim {
		// RTL cosimulation evaluates the PE's datapath netlists every
		// clock edge, whether or not useful work flows through them.
		// Two of the vector unit's MAC lanes are cosimulated at gate
		// level (a 4× sampling of the 8-lane datapath, documented in
		// EXPERIMENTS.md); each lane is an independent netlist instance
		// stepped on the word-slice fast path (compiled backend), since
		// this per-edge hook is the SoC's gate-level hot loop.
		lane0, err := rtl.NewSimulator(shadowNetlist())
		if err != nil {
			panic("soc: shadow MAC netlist rejected: " + err.Error())
		}
		lane1, err := rtl.NewSimulator(shadowNetlist())
		if err != nil {
			panic("soc: shadow MAC netlist rejected: " + err.Error())
		}
		ia := portIndex(lane0.InputPorts(), "a")
		ib := portIndex(lane0.InputPorts(), "b")
		iacc := portIndex(lane0.InputPorts(), "acc")
		var tick uint64
		in0 := make([]uint64, len(lane0.InputPorts()))
		in1 := make([]uint64, len(lane1.InputPorts()))
		clk.AtDriveNamed(name+"/shadow_mac", func() {
			tick++
			in0[ia] = tick * 0x9e3779b9
			in0[ib] = tick ^ uint64(id)<<16
			in0[iacc] = tick << 7
			lane0.StepWords(in0, nil)
			in1[ia] = tick * 0x85ebca6b
			in1[ib] = tick<<3 ^ uint64(id)
			in1[iacc] = tick * 31
			lane1.StepWords(in1, nil)
		})
		pe.gateSim = lane0
	}
	clk.Sim().Component(name).Source(func(emit stats.Emit) {
		emit("gate_toggles", float64(pe.GateToggles()))
	})
	return pe
}

// portIndex finds a named port in a simulator's sorted port order.
func portIndex(ports []rtl.Port, name string) int {
	for i := range ports {
		if ports[i].Name == name {
			return i
		}
	}
	panic("soc: shadow netlist missing port " + name)
}

// GateToggles returns the shadow netlist's switching activity (shadow
// cosimulation mode only) — input to the power model.
func (pe *PE) GateToggles() uint64 {
	if pe.gateSim == nil {
		return 0
	}
	return pe.gateSim.Toggles
}

// word/int32 conversions: scratchpad words hold int32 lane values.
func w2i(w uint64) int32 { return int32(uint32(w)) }
func i2w(v int32) uint64 { return uint64(uint32(v)) }

func (pe *PE) loadVec(addr, n int) matchlib.Vector[int32] {
	v := matchlib.NewVector[int32](n)
	for i := range v {
		v[i] = w2i(pe.Mem.Read(addr + i))
	}
	return v
}

func (pe *PE) storeVec(addr int, v matchlib.Vector[int32]) {
	for i, x := range v {
		pe.Mem.Write(addr+i, i2w(x))
	}
}

// vcycles charges the vector-unit time for processing n elements.
func (pe *PE) vcycles(th *sim.Thread, n int) {
	th.WaitN((n + pe.lanes - 1) / pe.lanes)
}

// runKernel decodes and executes one kernel configuration. Two cycles of
// control decode are charged, plus pipeline fill in RTL-cosim mode.
func (pe *PE) runKernel(th *sim.Thread, d decoded) {
	th.WaitN(2)
	if pe.mode == connections.ModeRTLCosim {
		th.WaitN(rtlPipeFill)
	}
	switch d.op {
	case KVecAdd:
		pe.storeVec(d.c, pe.loadVec(d.a, d.n).Add(pe.loadVec(d.b, d.n)))
		pe.vcycles(th, d.n)
	case KVecMul:
		pe.storeVec(d.c, pe.loadVec(d.a, d.n).Mul(pe.loadVec(d.b, d.n)))
		pe.vcycles(th, d.n)
	case KMac:
		acc := pe.loadVec(d.c, d.n)
		pe.storeVec(d.c, pe.loadVec(d.a, d.n).Mac(pe.loadVec(d.b, d.n), acc))
		pe.vcycles(th, d.n)
	case KDot:
		pe.Mem.Write(d.c, i2w(pe.loadVec(d.a, d.n).Dot(pe.loadVec(d.b, d.n))))
		pe.vcycles(th, d.n)
	case KReduce:
		pe.Mem.Write(d.c, i2w(pe.loadVec(d.a, d.n).Reduce()))
		pe.vcycles(th, d.n)
	case KMaxPool:
		// C[i] = max over window i of size m.
		for i := 0; i < d.n; i++ {
			pe.Mem.Write(d.c+i, i2w(pe.loadVec(d.a+i*d.m, d.m).Max()))
		}
		pe.vcycles(th, d.n*d.m)
	case KDist2:
		// C[j] = squared distance from point A (m dims) to centroid j.
		point := pe.loadVec(d.a, d.m)
		for j := 0; j < d.n; j++ {
			diff := point.Sub(pe.loadVec(d.b+j*d.m, d.m))
			pe.Mem.Write(d.c+j, i2w(diff.Dot(diff)))
		}
		pe.vcycles(th, d.n*d.m)
	case KArgMin:
		pe.Mem.Write(d.c, i2w(int32(pe.loadVec(d.a, d.n).ArgMin())))
		pe.vcycles(th, d.n)
	case KConv1D:
		// C[i] = Σ_t A[i+t] · B[t] for i in [0, n), taps m.
		taps := pe.loadVec(d.b, d.m)
		for i := 0; i < d.n; i++ {
			pe.Mem.Write(d.c+i, i2w(pe.loadVec(d.a+i, d.m).Dot(taps)))
		}
		pe.vcycles(th, d.n*d.m)
	case KDotF16:
		// IEEE binary16 dot product through the MatchLib Float functions.
		f := float.Binary16
		acc := uint64(0)
		for i := 0; i < d.n; i++ {
			a := pe.Mem.Read(d.a+i) & 0xffff
			b := pe.Mem.Read(d.b+i) & 0xffff
			acc = f.MulAdd(a, b, acc)
		}
		pe.Mem.Write(d.c, acc)
		pe.vcycles(th, d.n)
	default:
		panic(fmt.Sprintf("soc: PE %d: unknown kernel op %d", pe.ID, d.op))
	}
}
