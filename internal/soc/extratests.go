package soc

import (
	"fmt"

	"repro/internal/matchlib/float"
)

// ExtraTests returns workloads beyond the paper's six Figure 6 tests:
// a fully-connected (matrix-vector) layer and a distributed IEEE
// binary16 dot product that drives the MatchLib Float functions through
// the whole chip. They run under every mode and clocking style like the
// core six but are kept separate so the Figure 6 experiment matches the
// paper's test count.
func ExtraTests() []TestCase {
	return []TestCase{
		{Name: "matvec", Build: buildMatVec},
		{Name: "f16dot", Build: buildF16Dot},
	}
}

// matvec: y = W·x with a 32×64 weight matrix; each PE owns two rows and
// produces two dot products.
func buildMatVec(cfg Config) (*SoC, func(*SoC) error) {
	const (
		rows, cols = 32, 64
		rowsPerPE  = rows / NumPEs
		xAt        = 0x8000 // GML address of the input vector
	)
	w := randWords(1011, rows*cols, 1<<12)
	x := randWords(1012, cols, 1<<12)

	fw := NewFirmware()
	for i := 0; i < NumPEs; i++ {
		fw.Send(NodeGML, ReadMsg(i*rowsPerPE*cols, rowsPerPE*cols, i, 0, NodeRV)) // rows -> @0
		fw.Send(NodeGML, ReadMsg(xAt, cols, i, 256, NodeRV))                      // x -> @256
	}
	fw.WaitDone(2 * NumPEs)
	for i := 0; i < NumPEs; i++ {
		for r := 0; r < rowsPerPE; r++ {
			fw.Send(i, ExecMsg(KDot, r*cols, 256, 384+r, cols, 0, NodeRV, 0))
		}
	}
	fw.WaitDone(2*NumPEs + NumPEs*rowsPerPE)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ReadMsg(384, rowsPerPE, NodeGMR, i*rowsPerPE, NodeRV))
	}
	fw.WaitDone(3*NumPEs + NumPEs*rowsPerPE)
	fw.Exit(0)

	s := New(cfg, fw.Assemble())
	for i, v := range w {
		s.GML.Mem.Write(i, v)
	}
	for i, v := range x {
		s.GML.Mem.Write(xAt+i, v)
	}
	verify := func(s *SoC) error {
		for r := 0; r < rows; r++ {
			var want int32
			for c := 0; c < cols; c++ {
				want += int32(uint32(w[r*cols+c])) * int32(uint32(x[c]))
			}
			if got := int32(uint32(s.GMR.Mem.Read(r))); got != want {
				return fmt.Errorf("matvec: y[%d] = %d, want %d", r, got, want)
			}
		}
		return nil
	}
	return s, verify
}

// f16dot: each PE computes a binary16 dot product over its chunk with
// the KDotF16 kernel; per-PE partials are verified bit-exactly against
// the soft-float reference (summation order is per-chunk sequential).
func buildF16Dot(cfg Config) (*SoC, func(*SoC) error) {
	const perPE = 16
	f := float.Binary16
	// Small finite values: exponents around 1.0 keep sums finite.
	mk := func(seed int64) []uint64 {
		raw := randWords(seed, NumPEs*perPE, 1<<10)
		out := make([]uint64, len(raw))
		for i, r := range raw {
			out[i] = (r & 0x03ff) | 0x3400 // [0.25, 0.5) mantissa spread
		}
		return out
	}
	a := mk(1013)
	b := mk(1014)

	fw := NewFirmware()
	for i := 0; i < NumPEs; i++ {
		fw.Send(NodeGML, ReadMsg(i*perPE, perPE, i, 0, NodeRV))
		fw.Send(NodeGML, ReadMsg(4096+i*perPE, perPE, i, 64, NodeRV))
	}
	fw.WaitDone(2 * NumPEs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ExecMsg(KDotF16, 0, 64, 128, perPE, 0, NodeRV, 0))
	}
	fw.WaitDone(3 * NumPEs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ReadMsg(128, 1, NodeGMR, i, NodeRV))
	}
	fw.WaitDone(4 * NumPEs)
	fw.Exit(0)

	s := New(cfg, fw.Assemble())
	for i := range a {
		s.GML.Mem.Write(i, a[i])
		s.GML.Mem.Write(4096+i, b[i])
	}
	verify := func(s *SoC) error {
		for i := 0; i < NumPEs; i++ {
			acc := uint64(0)
			for k := 0; k < perPE; k++ {
				acc = f.MulAdd(a[i*perPE+k], b[i*perPE+k], acc)
			}
			if got := s.GMR.Mem.Read(i); got != acc {
				return fmt.Errorf("f16dot: PE %d partial %#x, want %#x (%g vs %g)",
					i, got, acc, f.ToFloat64(got), f.ToFloat64(acc))
			}
		}
		return nil
	}
	return s, verify
}
