package soc

import (
	"fmt"
	"io"

	"repro/internal/power"
)

// PowerBreakdown is the SoC's architectural power estimate, assembled
// from the activity counters the simulation collects — the Power
// Analysis stage of the paper's Figure 1, fed by simulation activity
// instead of an FSDB trace.
type PowerBreakdown struct {
	Cycles  uint64
	FreqMHz float64

	PEsMW   float64 // PE datapath + control dynamic power
	NoCMW   float64 // router/link energy per flit-hop
	SRAMMW  float64 // scratchpads + global memory accesses
	RVMW    float64 // controller core
	LeakMW  float64 // leakage across all partitions
	TotalMW float64
}

// Energy model constants for the 16nm-class node, per event.
const (
	pjPerFlitHop = 1.1  // router traversal + link
	pjPerLaneOp  = 0.35 // one vector-lane ALU operation
	pjPerRVInstr = 6.0  // controller CPI=1 instruction energy
	socGateCount = 16*280_000 + 2*350_000 + 600_000 + 150_000
)

// PowerEstimate converts the chip's activity counters into average power
// over the elapsed cycles at the given clock frequency.
func (s *SoC) PowerEstimate(cycles uint64, freqMHz float64) PowerBreakdown {
	pb := PowerBreakdown{Cycles: cycles, FreqMHz: freqMHz}
	if cycles == 0 {
		return pb
	}
	m := power.Default16nm
	perCycleToMW := freqMHz * 1e6 / 1e9 // pJ/cycle → mW

	// Vector-lane operations: every kernel word processed is one lane op;
	// WritesIn/ReadsOut approximate the operand traffic.
	var laneOps, flitHops, sramReads, sramWrites float64
	for _, pe := range s.PEs {
		laneOps += float64(pe.Stats.WritesIn + pe.Stats.ReadsOut)
		r, w := pe.Mem.Accesses()
		sramReads += float64(r)
		sramWrites += float64(w)
	}
	for _, rt := range s.Routers {
		flitHops += float64(rt.Stats.FlitsOut)
	}
	for _, gm := range []*MemNode{s.GML, s.GMR, s.IO} {
		r, w := gm.Mem.Accesses()
		sramReads += float64(r)
		sramWrites += float64(w)
	}

	pb.PEsMW = laneOps * pjPerLaneOp / float64(cycles) * perCycleToMW
	pb.NoCMW = flitHops * pjPerFlitHop / float64(cycles) * perCycleToMW
	pb.SRAMMW = (sramReads*m.SRAMReadPJ + sramWrites*m.SRAMWritePJ) / float64(cycles) * perCycleToMW
	pb.RVMW = float64(s.RV.CPU.Instret) * pjPerRVInstr / float64(cycles) * perCycleToMW
	pb.LeakMW = float64(socGateCount) * m.LeakNWPerGate / 1e6
	pb.TotalMW = pb.PEsMW + pb.NoCMW + pb.SRAMMW + pb.RVMW + pb.LeakMW
	pb.publish(s)
	return pb
}

// publish mirrors the breakdown into the metrics registry under
// soc/power, so the estimate appears in the unified stats dump alongside
// the activity counters it was derived from.
func (pb PowerBreakdown) publish(s *SoC) {
	reg := s.Sim.Metrics()
	reg.Gauge("soc/power", "pes_mw").Set(pb.PEsMW)
	reg.Gauge("soc/power", "noc_mw").Set(pb.NoCMW)
	reg.Gauge("soc/power", "sram_mw").Set(pb.SRAMMW)
	reg.Gauge("soc/power", "rv_mw").Set(pb.RVMW)
	reg.Gauge("soc/power", "leak_mw").Set(pb.LeakMW)
	reg.Gauge("soc/power", "total_mw").Set(pb.TotalMW)
	reg.Gauge("soc/power", "freq_mhz").Set(pb.FreqMHz)
}

// Print renders the breakdown.
func (pb PowerBreakdown) Print(w io.Writer) {
	fmt.Fprintf(w, "power @ %.0f MHz over %d cycles:\n", pb.FreqMHz, pb.Cycles)
	fmt.Fprintf(w, "  PE datapaths %8.2f mW\n", pb.PEsMW)
	fmt.Fprintf(w, "  NoC          %8.2f mW\n", pb.NoCMW)
	fmt.Fprintf(w, "  SRAM         %8.2f mW\n", pb.SRAMMW)
	fmt.Fprintf(w, "  RISC-V       %8.2f mW\n", pb.RVMW)
	fmt.Fprintf(w, "  leakage      %8.2f mW\n", pb.LeakMW)
	fmt.Fprintf(w, "  total        %8.2f mW\n", pb.TotalMW)
}
