package soc

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// TestTracedSoCRunWritesScopedVCD runs the memcpy system test with
// tracing armed and checks the dumped waveform end to end: parseable
// header, module scopes nested by partition (soc → pe[i]/noc/gml/…),
// balanced scoping, and per-channel valid/ready/occ signals.
func TestTracedSoCRunWritesScopedVCD(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trace = true
	s, verify := buildMemcpy(cfg)
	if s.Tracer() == nil {
		t.Fatal("Config.Trace did not arm the simulator")
	}
	if _, err := s.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	if err := verify(s); err != nil {
		t.Fatal(err)
	}
	if s.Tracer().Len() == 0 {
		t.Fatal("armed SoC run recorded no events")
	}
	if s.Tracer().Dropped() != 0 {
		t.Fatalf("recorder dropped %d events", s.Tracer().Dropped())
	}

	var buf bytes.Buffer
	samples, changes, err := s.Tracer().WriteVCD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if samples == 0 || changes == 0 {
		t.Fatalf("empty dump: %d samples, %d changes", samples, changes)
	}

	// Structural parse: scope stack must never underflow and must end
	// balanced; every $var lands inside at least one scope.
	depth, maxDepth, vars := 0, 0, 0
	sawSoC, sawPE := false, false
	sc := bufio.NewScanner(&buf)
	inHeader := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "$scope module "):
			depth++
			if depth > maxDepth {
				maxDepth = depth
			}
			name := strings.Fields(line)[2]
			if name == "soc" {
				sawSoC = true
			}
			if strings.HasPrefix(name, "pe[") {
				sawPE = true
			}
		case strings.HasPrefix(line, "$upscope"):
			depth--
			if depth < 0 {
				t.Fatal("$upscope underflow")
			}
		case strings.HasPrefix(line, "$var "):
			vars++
			if depth == 0 {
				t.Fatalf("var outside any scope: %s", line)
			}
		case strings.HasPrefix(line, "$enddefinitions"):
			if depth != 0 {
				t.Fatalf("unbalanced scopes at end of header: depth %d", depth)
			}
			inHeader = false
		}
	}
	if inHeader {
		t.Fatal("no $enddefinitions")
	}
	if !sawSoC || !sawPE {
		t.Fatalf("partition scopes missing: soc=%v pe=%v", sawSoC, sawPE)
	}
	if maxDepth < 3 {
		t.Fatalf("scope nesting too shallow: %d", maxDepth)
	}
	if vars < 100 {
		t.Fatalf("only %d vars for a full SoC", vars)
	}
}

// TestTracedSoCRunMatchesUntraced is the system-level zero-cost check:
// arming the whole chip's tracing must not move a single cycle.
func TestTracedSoCRunMatchesUntraced(t *testing.T) {
	base := runCase(t, Tests()[0], DefaultConfig())
	cfg := DefaultConfig()
	cfg.Trace = true
	traced := runCase(t, Tests()[0], cfg)
	if base != traced {
		t.Fatalf("cycle count diverged: untraced %d vs traced %d", base, traced)
	}
}

// TestTracedSoCAnalyzeCleanRun checks the analysis pass on a healthy
// chip: channels report activity and a passing run has no deadlock
// suspects.
func TestTracedSoCAnalyzeCleanRun(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Trace = true
	s, verify := buildMemcpy(cfg)
	if _, err := s.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	if err := verify(s); err != nil {
		t.Fatal(err)
	}
	rep := s.Tracer().Analyze(1000)
	if len(rep.Channels) < 100 {
		t.Fatalf("only %d channels analyzed", len(rep.Channels))
	}
	if len(rep.Suspects) != 0 {
		t.Fatalf("clean run flagged suspects: %v", rep.Suspects)
	}
	var active int
	for _, c := range rep.Channels {
		if c.Pushes > 0 {
			active++
		}
	}
	if active == 0 {
		t.Fatal("no channel recorded any transfer")
	}
}
