package soc

import (
	"fmt"

	"repro/internal/connections"
	"repro/internal/noc"
)

// LintFixtures returns deliberately broken SoC builds for exercising the
// design-rule checker. Each fixture is a full SoC with one extra hazard
// wired in, so the checker must find the defect amid a realistic design
// graph rather than a toy one. They are selectable by exact name from
// socsim but excluded from "all": they are meant to be linted, never run
// (they carry no firmware).
func LintFixtures() []TestCase {
	return []TestCase{
		{Name: "badcdc", Build: buildBadCDC},
		{Name: "badloop", Build: buildBadLoop},
		{Name: "badport", Build: buildBadPort},
	}
}

// buildBadCDC wires an ordinary single-clock buffer between two different
// GALS partitions — the unsynchronized clock-domain crossing CDC-1 exists
// to catch. The legitimate path between those partitions goes through a
// pausible bisynchronous FIFO; this one skips it.
func buildBadCDC(cfg Config) (*SoC, func(*SoC) error) {
	cfg.GALS = true
	s := New(cfg, nil)
	prod := connections.NewOut[noc.Flit]().Owned(s.Clks[0], "fixture/prod", "out")
	cons := connections.NewIn[noc.Flit]().Owned(s.Clks[1], "fixture/cons", "in")
	connections.Buffer(s.Clks[0], "fixture/xclk", 2, prod, cons)
	return s, neverRun
}

// buildBadLoop closes a cycle of zero-latency combinational channels
// between two components — the classic LI-channel deadlock DLK-1 flags:
// each endpoint's ready depends combinationally on the other's.
func buildBadLoop(cfg Config) (*SoC, func(*SoC) error) {
	s := New(cfg, nil)
	clk := s.Clks[0]
	aOut := connections.NewOut[noc.Flit]().Owned(clk, "fixture/a", "out")
	aIn := connections.NewIn[noc.Flit]().Owned(clk, "fixture/a", "in")
	bOut := connections.NewOut[noc.Flit]().Owned(clk, "fixture/b", "out")
	bIn := connections.NewIn[noc.Flit]().Owned(clk, "fixture/b", "in")
	connections.Combinational(clk, "fixture/ab", aOut, bIn)
	connections.Combinational(clk, "fixture/ba", bOut, aIn)
	return s, neverRun
}

// buildBadPort declares ports that violate the connectivity rules: one
// owned input that is never bound to any channel (CON-1), and one owned
// output whose channel dangles into an anonymous, unterminated consumer
// (CON-2).
func buildBadPort(cfg Config) (*SoC, func(*SoC) error) {
	s := New(cfg, nil)
	clk := s.Clks[0]
	connections.NewIn[noc.Flit]().Owned(clk, "fixture/widow", "in")
	dangler := connections.NewOut[noc.Flit]().Owned(clk, "fixture/dangler", "out")
	connections.Buffer(clk, "fixture/dangling", 2, dangler, connections.NewIn[noc.Flit]())
	return s, neverRun
}

func neverRun(*SoC) error {
	return fmt.Errorf("soc: lint fixtures are not runnable designs")
}
