package soc

import (
	"fmt"

	"repro/internal/axi"
	"repro/internal/connections"
	"repro/internal/matchlib"
	"repro/internal/noc"
	"repro/internal/riscv"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Memory-mapped IO addresses of the RISC-V global controller.
const (
	MMIOBase    = 0x8000_0000
	RegNocLo    = MMIOBase + 0x00 // staged payload word, low half
	RegNocHi    = MMIOBase + 0x04 // staged payload word, high half
	RegNocApp   = MMIOBase + 0x08 // append {hi,lo} to the payload
	RegNocSend  = MMIOBase + 0x0c // write dst: inject staged payload
	RegDoneCnt  = MMIOBase + 0x10 // cumulative MsgDone count
	RegDonePop  = MMIOBase + 0x14 // pop one done code (+1), 0 if empty
	RegCycles   = MMIOBase + 0x18 // current cycle count (low 32 bits)
	RegTestExit = 0x9000_0000     // write: record code, halt, stop sim

	// AXIWindow maps global memory into the controller's address space
	// through the AXI bus of Figure 5: word w of global memory (GML
	// first, then GMR) appears at AXIWindow + 4*w. Accesses issue real
	// single-beat AXI transactions and stall the hart until the bus
	// responds.
	AXIWindow = 0xa000_0000
)

// RVNode is the RISC-V control-processor partition: an RV32I hart with
// local RAM and a memory-mapped network interface through which firmware
// configures PEs and global memory and orchestrates DMA — the paper's
// "global controller" role.
type RVNode struct {
	ID  int
	CPU *riscv.CPU
	RAM []uint32 // word-addressed local memory

	inject *connections.Out[noc.Packet]
	eject  *connections.In[noc.Packet]

	doneCount uint32
	doneQ     *matchlib.FIFO[int]

	Exited   bool
	ExitCode uint32

	th         *sim.Thread // CPU thread, for blocking MMIO side effects
	clk        *sim.Clock
	txLo, txHi uint32
	txPayload  []uint64
	nextPktID  uint64

	// AXI master into global memory (nil when the bus is absent).
	AXI      *axi.Master
	axiWords int // words mapped behind AXIWindow
	axiTxns  uint64
}

// newRVNode builds the controller with firmware already in RAM.
func newRVNode(clk *sim.Clock, name string, id, ramWords int, program []uint32,
	inject *connections.Out[noc.Packet], eject *connections.In[noc.Packet]) *RVNode {
	r := &RVNode{
		ID:     id,
		CPU:    &riscv.CPU{},
		RAM:    make([]uint32, ramWords),
		inject: inject,
		eject:  eject,
		doneQ:  matchlib.NewFIFO[int](256),
		clk:    clk,
	}
	copy(r.RAM, program)
	r.CPU.Reset(0)

	// Network handler: incoming writes land in RAM (low 32 bits of each
	// word), done messages increment the mailbox counter.
	clk.Spawn(name+"/nochandler", func(th *sim.Thread) {
		for {
			pkt := r.eject.Pop(th)
			d := decode(pkt)
			switch d.kind {
			case MsgWrite:
				for i, w := range d.data {
					if d.addr+i < len(r.RAM) {
						r.RAM[d.addr+i] = uint32(w)
					}
				}
				if d.notify == r.ID {
					// Data landed in our own RAM; count it directly.
					r.doneCount++
				} else if d.notify != NoNotify {
					r.nextPktID++
					r.inject.Push(th, noc.Packet{Src: r.ID, Dst: d.notify, ID: uint64(r.ID)<<32 | r.nextPktID, Payload: DoneMsg(0)})
				}
			case MsgDone:
				r.doneCount++
				if !r.doneQ.Full() {
					r.doneQ.Push(d.code)
				}
			default:
				panic(fmt.Sprintf("soc: RV node got message kind %d", d.kind))
			}
			th.Wait()
		}
	})

	// The hart: one instruction per cycle.
	clk.Spawn(name+"/hart", func(th *sim.Thread) {
		r.th = th
		for !r.CPU.Halted {
			if err := r.CPU.Step(r); err != nil {
				panic(err)
			}
			th.Wait()
		}
	})
	clk.Sim().Component(name).Source(func(emit stats.Emit) {
		emit("instret", float64(r.CPU.Instret))
		emit("done_count", float64(r.doneCount))
		emit("axi_txns", float64(r.axiTxns))
		emit("exit_code", float64(r.ExitCode))
	})
	return r
}

// Load implements riscv.Bus.
func (r *RVNode) Load(addr uint32, size int) uint32 {
	switch addr {
	case RegDoneCnt:
		return r.doneCount
	case RegDonePop:
		if r.doneQ.Empty() {
			return 0
		}
		return uint32(r.doneQ.Pop()) + 1
	case RegCycles:
		return uint32(r.clk.Cycle())
	}
	if r.AXI != nil && addr >= AXIWindow && addr < AXIWindow+uint32(r.axiWords)*4 {
		w := int(addr-AXIWindow) / 4
		data, ok := r.AXI.ReadBurst(r.th, NodeRV, w, 1)
		if !ok {
			panic(fmt.Sprintf("soc: AXI read error at word %d", w))
		}
		r.axiTxns++
		return uint32(data[0])
	}
	if addr >= MMIOBase {
		panic(fmt.Sprintf("soc: RV load from unmapped MMIO %#x", addr))
	}
	w := r.ramWord(addr)
	sh := (addr & 3) * 8
	switch size {
	case 1:
		return w >> sh & 0xff
	case 2:
		return w >> sh & 0xffff
	default:
		return w
	}
}

// Store implements riscv.Bus.
func (r *RVNode) Store(addr uint32, size int, v uint32) {
	switch addr {
	case RegNocLo:
		r.txLo = v
		return
	case RegNocHi:
		r.txHi = v
		return
	case RegNocApp:
		r.txPayload = append(r.txPayload, uint64(r.txHi)<<32|uint64(r.txLo))
		r.txLo, r.txHi = 0, 0
		return
	case RegNocSend:
		r.nextPktID++
		payload := make([]uint64, len(r.txPayload))
		copy(payload, r.txPayload)
		r.txPayload = r.txPayload[:0]
		// The store stalls the hart until the NI accepts the packet.
		r.inject.Push(r.th, noc.Packet{Src: r.ID, Dst: int(v), ID: uint64(r.ID)<<32 | r.nextPktID, Payload: payload})
		return
	case RegTestExit:
		r.Exited = true
		r.ExitCode = v
		r.CPU.Halted = true
		r.th.Sim().Stop()
		return
	}
	if r.AXI != nil && addr >= AXIWindow && addr < AXIWindow+uint32(r.axiWords)*4 {
		w := int(addr-AXIWindow) / 4
		if !r.AXI.WriteBurst(r.th, NodeRV, w, []uint64{uint64(v)}) {
			panic(fmt.Sprintf("soc: AXI write error at word %d", w))
		}
		r.axiTxns++
		return
	}
	if addr >= MMIOBase {
		panic(fmt.Sprintf("soc: RV store to unmapped MMIO %#x", addr))
	}
	i := addr >> 2
	if int(i) >= len(r.RAM) {
		panic(fmt.Sprintf("soc: RV store out of RAM at %#x", addr))
	}
	sh := (addr & 3) * 8
	switch size {
	case 1:
		r.RAM[i] = r.RAM[i]&^(0xff<<sh) | (v&0xff)<<sh
	case 2:
		r.RAM[i] = r.RAM[i]&^(0xffff<<sh) | (v&0xffff)<<sh
	default:
		r.RAM[i] = v
	}
}

// axiPort creates the controller's AXI master bundle and maps the given
// number of global-memory words behind AXIWindow.
func (r *RVNode) axiPort(words int) *axi.Master {
	r.AXI = axi.NewMaster()
	r.axiWords = words
	return r.AXI
}

// AXITransactions returns the number of AXI bus transactions issued.
func (r *RVNode) AXITransactions() uint64 { return r.axiTxns }

func (r *RVNode) ramWord(addr uint32) uint32 {
	i := addr >> 2
	if int(i) >= len(r.RAM) {
		panic(fmt.Sprintf("soc: RV load out of RAM at %#x", addr))
	}
	return r.RAM[i]
}
