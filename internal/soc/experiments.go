package soc

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"repro/internal/connections"
)

// Fig6Row is one point of the paper's Figure 6: one SoC-level test run
// under the sim-accurate SystemC-style model and under RTL cosimulation.
type Fig6Row struct {
	Test        string
	TLMCycles   uint64
	RTLCycles   uint64
	TLMWall     time.Duration
	RTLWall     time.Duration
	Speedup     float64 // RTL wall / TLM wall
	CycleErrPct float64 // (RTL-TLM)/RTL elapsed-cycle difference

	// Machine-readable metrics snapshots (stats JSON dumps of the whole
	// component tree), for downstream consumers like cmd/benchfig.
	TLMStats []byte
	RTLStats []byte
}

// RunFig6 executes every SoC test in both modes and measures elapsed
// cycles and wall-clock time.
func RunFig6(maxCycles uint64) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, tc := range Tests() {
		row := Fig6Row{Test: tc.Name}

		run := func(mode connections.Mode) (uint64, time.Duration, []byte, error) {
			cfg := DefaultConfig()
			cfg.Mode = mode
			cfg.ShadowNetlists = true // full RTL-cosim cost in RTL mode
			s, verify := tc.Build(cfg)
			start := time.Now()
			cycles, err := s.Run(maxCycles)
			wall := time.Since(start)
			if err != nil {
				return 0, 0, nil, fmt.Errorf("%s/%v: %w", tc.Name, mode, err)
			}
			if err := verify(s); err != nil {
				return 0, 0, nil, err
			}
			var dump bytes.Buffer
			if err := s.Sim.Metrics().WriteJSON(&dump); err != nil {
				return 0, 0, nil, err
			}
			return cycles, wall, dump.Bytes(), nil
		}
		var err error
		if row.TLMCycles, row.TLMWall, row.TLMStats, err = run(connections.ModeSimAccurate); err != nil {
			return nil, err
		}
		if row.RTLCycles, row.RTLWall, row.RTLStats, err = run(connections.ModeRTLCosim); err != nil {
			return nil, err
		}
		row.Speedup = float64(row.RTLWall) / float64(row.TLMWall)
		row.CycleErrPct = 100 * (float64(row.RTLCycles) - float64(row.TLMCycles)) / float64(row.RTLCycles)
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintFig6 renders the rows as the paper's figure data.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintf(w, "Figure 6: SoC-level tests, sim-accurate SystemC model vs RTL cosim\n")
	fmt.Fprintf(w, "%-10s %12s %12s %10s %12s %12s %9s\n",
		"test", "TLM cycles", "RTL cycles", "err %", "TLM wall", "RTL wall", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12d %12d %9.2f%% %12s %12s %8.1fx\n",
			r.Test, r.TLMCycles, r.RTLCycles, r.CycleErrPct, r.TLMWall.Round(time.Microsecond), r.RTLWall.Round(time.Microsecond), r.Speedup)
	}
}
