package soc

import (
	"fmt"
	"io"
	"time"

	"repro/internal/connections"
	"repro/internal/exp"
)

// Fig6Row is one point of the paper's Figure 6: one SoC-level test run
// under the sim-accurate SystemC-style model and under RTL cosimulation.
type Fig6Row struct {
	Test        string
	TLMCycles   uint64
	RTLCycles   uint64
	TLMWall     time.Duration
	RTLWall     time.Duration
	Speedup     float64 // RTL wall / TLM wall
	CycleErrPct float64 // (RTL-TLM)/RTL elapsed-cycle difference

	// Machine-readable metrics snapshots (stats JSON dumps of the whole
	// component tree), for downstream consumers like cmd/benchfig.
	TLMStats []byte
	RTLStats []byte
}

// fig6Run is one (test, mode) measurement inside the campaign.
type fig6Run struct {
	Cycles uint64
	Wall   time.Duration
}

// RunFig6 executes every SoC test in both modes and measures elapsed
// cycles and wall-clock time. It is the sequential form of
// RunFig6Campaign and returns identical rows.
func RunFig6(maxCycles uint64) ([]Fig6Row, error) {
	rows, s := RunFig6Campaign(maxCycles, 1)
	return rows, s.Err()
}

// RunFig6Campaign runs the figure with one campaign job per (test, mode)
// pair — "<test>/tlm" and "<test>/rtl" — sharded over the runner's
// worker pool. Each job publishes its full component-tree metrics
// snapshot into the campaign summary. Rows come back in Tests() order;
// a failed run leaves zeros in its half of the row and is reported
// through the summary. Extra campaign options (exp.OnProgress,
// exp.WithContext, ...) are appended after the fixed ones; the job
// service uses them to stream per-run progress and to cancel the figure
// on graceful drain.
func RunFig6Campaign(maxCycles uint64, parallel int, extra ...exp.Option) ([]Fig6Row, *exp.Summary) {
	type modeCase struct {
		suffix string
		mode   connections.Mode
	}
	modes := []modeCase{
		{"tlm", connections.ModeSimAccurate},
		{"rtl", connections.ModeRTLCosim},
	}

	var jobs []exp.Job
	for _, tc := range Tests() {
		tc := tc
		for _, mc := range modes {
			mc := mc
			jobs = append(jobs, exp.Job{
				Name: tc.Name + "/" + mc.suffix,
				Run: func(c *exp.Ctx) (any, error) {
					cfg := DefaultConfig()
					cfg.Mode = mc.mode
					cfg.ShadowNetlists = true // full RTL-cosim cost in RTL mode
					cfg.StallSeed = c.Seed
					cfg.Partitions = c.Partitions
					s, verify := tc.Build(cfg)
					start := time.Now()
					cycles, err := s.Run(maxCycles)
					wall := time.Since(start)
					if err != nil {
						return nil, fmt.Errorf("%s/%v: %w", tc.Name, mc.mode, err)
					}
					if err := verify(s); err != nil {
						return nil, err
					}
					if err := c.Publish(s.Sim.Metrics()); err != nil {
						return nil, err
					}
					return fig6Run{Cycles: cycles, Wall: wall}, nil
				},
			})
		}
	}

	opts := append([]exp.Option{exp.Named("fig6"), exp.Parallel(parallel)}, extra...)
	s := exp.Run(jobs, opts...)
	var rows []Fig6Row
	for _, tc := range Tests() {
		row := Fig6Row{Test: tc.Name}
		if r, ok := s.Result(tc.Name + "/tlm"); ok && !r.Failed() {
			run := r.Value.(fig6Run)
			row.TLMCycles, row.TLMWall, row.TLMStats = run.Cycles, run.Wall, r.Stats
		}
		if r, ok := s.Result(tc.Name + "/rtl"); ok && !r.Failed() {
			run := r.Value.(fig6Run)
			row.RTLCycles, row.RTLWall, row.RTLStats = run.Cycles, run.Wall, r.Stats
		}
		if row.TLMWall > 0 && row.RTLCycles > 0 {
			row.Speedup = float64(row.RTLWall) / float64(row.TLMWall)
			row.CycleErrPct = 100 * (float64(row.RTLCycles) - float64(row.TLMCycles)) / float64(row.RTLCycles)
		}
		rows = append(rows, row)
	}
	return rows, s
}

// PrintFig6 renders the rows as the paper's figure data.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	fmt.Fprintf(w, "Figure 6: SoC-level tests, sim-accurate SystemC model vs RTL cosim\n")
	fmt.Fprintf(w, "%-10s %12s %12s %10s %12s %12s %9s\n",
		"test", "TLM cycles", "RTL cycles", "err %", "TLM wall", "RTL wall", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12d %12d %9.2f%% %12s %12s %8.1fx\n",
			r.Test, r.TLMCycles, r.RTLCycles, r.CycleErrPct, r.TLMWall.Round(time.Microsecond), r.RTLWall.Round(time.Microsecond), r.Speedup)
	}
}
