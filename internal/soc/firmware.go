package soc

import (
	"fmt"

	"repro/internal/riscv"
)

// Firmware composes controller programs for the SoC tests. The emitted
// code is genuine RV32I executed instruction-by-instruction by the
// controller model; orchestration sequences are generated unrolled by
// the host, the way production firmware for such testchips is.
type Firmware struct {
	P      *riscv.Program
	labels int
}

// NewFirmware starts a program at address 0 with the MMIO base parked in
// a saved register.
func NewFirmware() *Firmware {
	f := &Firmware{P: riscv.NewProgram(0)}
	f.P.LUI(riscv.S4, MMIOBase)
	return f
}

func (f *Firmware) fresh(prefix string) string {
	f.labels++
	return fmt.Sprintf("%s_%d", prefix, f.labels)
}

// Send emits code injecting a packet with the given constant payload.
func (f *Firmware) Send(dst int, payload []uint64) {
	for _, w := range payload {
		f.P.LI(riscv.T0, uint32(w))
		f.P.SW(riscv.T0, riscv.S4, 0x00) // NOC_LO
		f.P.LI(riscv.T0, uint32(w>>32))
		f.P.SW(riscv.T0, riscv.S4, 0x04)   // NOC_HI
		f.P.SW(riscv.Zero, riscv.S4, 0x08) // NOC_APPEND
	}
	f.P.LI(riscv.T0, uint32(dst))
	f.P.SW(riscv.T0, riscv.S4, 0x0c) // NOC_SEND
}

// WaitDone spins until the cumulative done counter reaches target.
func (f *Firmware) WaitDone(target int) {
	l := f.fresh("wait")
	f.P.LI(riscv.T2, uint32(target))
	f.P.Label(l)
	f.P.LW(riscv.T0, riscv.S4, 0x10) // DONE_COUNT
	f.P.BLTU(riscv.T0, riscv.T2, l)
}

// Exit ends the test with the given code.
func (f *Firmware) Exit(code uint32) {
	f.P.LI(riscv.T0, code)
	f.P.LUI(riscv.T1, RegTestExit)
	f.P.SW(riscv.T0, riscv.T1, 0)
}

// SumMailbox emits a real accumulation loop over n 32-bit words starting
// at RAM word index mailbox, leaving the sum at RAM word index out.
func (f *Firmware) SumMailbox(mailbox, n, out int) {
	loop := f.fresh("sum")
	f.P.LI(riscv.S0, uint32(mailbox*4)) // byte pointer
	f.P.LI(riscv.S1, uint32((mailbox+n)*4))
	f.P.LI(riscv.S2, 0) // accumulator
	f.P.Label(loop)
	f.P.LW(riscv.T0, riscv.S0, 0)
	f.P.ADD(riscv.S2, riscv.S2, riscv.T0)
	f.P.ADDI(riscv.S0, riscv.S0, 4)
	f.P.BLTU(riscv.S0, riscv.S1, loop)
	f.P.LI(riscv.T1, uint32(out*4))
	f.P.SW(riscv.S2, riscv.T1, 0)
}

// Assemble finalizes the firmware image.
func (f *Firmware) Assemble() []uint32 { return f.P.Assemble() }
