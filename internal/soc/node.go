package soc

import (
	"fmt"

	"repro/internal/connections"
	"repro/internal/matchlib"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/stats"
)

// MaxPayloadWords is the DMA packetization limit: larger transfers are
// split into multiple NoC packets by the sending node.
const MaxPayloadWords = 16

// MemNode is a memory-bearing NoC endpoint: the global-memory partitions
// are plain MemNodes, and the PE embeds one and adds the kernel engine.
// It speaks the Write/Read/Exec/Done protocol on its NI ports.
type MemNode struct {
	ID    int
	Mem   *matchlib.MemArray[uint64]
	banks int

	inject *connections.Out[noc.Packet]
	eject  *connections.In[noc.Packet]

	// Done mailbox, drained by the owner (the RISC-V node embeds its own).
	doneQ *matchlib.FIFO[int]

	exec func(th *sim.Thread, d decoded) // nil for plain memory nodes

	nextPktID uint64
	Stats     NodeStats
}

// NodeStats counts node activity.
type NodeStats struct {
	WritesIn   uint64 // words written by incoming packets
	ReadsOut   uint64 // words DMAed out
	Kernels    uint64
	PacketsIn  uint64
	PacketsOut uint64
}

// newMemNode builds the node engine on clk. inject/eject are the user
// side of the node's NI packet ports.
func newMemNode(clk *sim.Clock, name string, id, words, banks int,
	inject *connections.Out[noc.Packet], eject *connections.In[noc.Packet]) *MemNode {
	n := &MemNode{
		ID:     id,
		Mem:    matchlib.NewMemArray[uint64](words, banks),
		banks:  banks,
		inject: inject,
		eject:  eject,
		doneQ:  matchlib.NewFIFO[int](64),
	}
	clk.Spawn(name+"/handler", func(th *sim.Thread) { n.run(th) })
	clk.Sim().Component(name).Source(func(emit stats.Emit) {
		emit("writes_in", float64(n.Stats.WritesIn))
		emit("reads_out", float64(n.Stats.ReadsOut))
		emit("kernels", float64(n.Stats.Kernels))
		emit("packets_in", float64(n.Stats.PacketsIn))
		emit("packets_out", float64(n.Stats.PacketsOut))
		r, w := n.Mem.Accesses()
		emit("mem_reads", float64(r))
		emit("mem_writes", float64(w))
	})
	return n
}

// send injects one packet, blocking until the NI accepts it.
func (n *MemNode) send(th *sim.Thread, dst int, payload []uint64) {
	n.nextPktID++
	n.inject.Push(th, noc.Packet{Src: n.ID, Dst: dst, ID: uint64(n.ID)<<32 | n.nextPktID, Payload: payload})
	n.Stats.PacketsOut++
}

// bankCycles models banked-memory throughput: banks words move per cycle.
func (n *MemNode) bankCycles(th *sim.Thread, words int) {
	th.WaitN((words + n.banks - 1) / n.banks)
}

func (n *MemNode) run(th *sim.Thread) {
	for {
		pkt := n.eject.Pop(th)
		n.Stats.PacketsIn++
		d := decode(pkt)
		switch d.kind {
		case MsgWrite:
			for i, w := range d.data {
				n.Mem.Write(d.addr+i, w)
			}
			n.Stats.WritesIn += uint64(len(d.data))
			n.bankCycles(th, len(d.data))
			if d.notify != NoNotify {
				n.send(th, d.notify, DoneMsg(0))
			}
		case MsgRead:
			n.dma(th, d)
		case MsgExec:
			if n.exec == nil {
				panic(fmt.Sprintf("soc: node %d cannot execute kernels", n.ID))
			}
			n.Stats.Kernels++
			n.exec(th, d)
			if d.notify != NoNotify {
				n.send(th, d.notify, DoneMsg(d.code))
			}
		case MsgDone:
			if !n.doneQ.Full() {
				n.doneQ.Push(d.code)
			}
		}
		th.Wait()
	}
}

// dma streams memory [addr, addr+n) to the requester in MaxPayloadWords
// chunks; the final chunk carries the requester's notify target so the
// receiver reports landing.
func (n *MemNode) dma(th *sim.Thread, d decoded) {
	for off := 0; off < d.n; off += MaxPayloadWords {
		chunk := d.n - off
		if chunk > MaxPayloadWords {
			chunk = MaxPayloadWords
		}
		data := make([]uint64, chunk)
		for i := range data {
			data[i] = n.Mem.Read(d.addr + off + i)
		}
		n.bankCycles(th, chunk)
		notify := NoNotify
		if off+chunk >= d.n {
			notify = d.notify
		}
		n.send(th, d.replyTo, WriteMsg(d.replyAddr+off, data, notify))
	}
	n.Stats.ReadsOut += uint64(d.n)
}
