package soc

import (
	"repro/internal/connections"
	"repro/internal/noc"
	"repro/internal/sim"
)

// RateFixtures returns deliberately mis-rated SoC builds for exercising
// the static communication-rate analysis, the rate siblings of
// LintFixtures: full SoCs with one extra rate hazard wired in, selectable
// by exact name from socsim but excluded from "all", meant to be checked,
// never run.
func RateFixtures() []TestCase {
	return []TestCase{
		{Name: "badrate", Build: buildBadRate},
		{Name: "badbuf", Build: buildBadBuf},
	}
}

// buildBadRate wires two rate hazards. First, an SDF cycle whose balance
// equations are inconsistent (RATE-1): actor a pushes two tokens per
// firing to b, but the return channel claims one-for-one, so no periodic
// schedule exists. Second, a flooded channel (RATE-2): a full-rate
// producer feeds a consumer declared to fire only every other cycle.
func buildBadRate(cfg Config) (*SoC, func(*SoC) error) {
	s := New(cfg, nil)
	clk := s.Clks[0]
	d := clk.Sim().Design()

	d.DeclareActor("fixture/a", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("fixture/b", sim.ActorSDF, clk, sim.Rat{})
	aOut := connections.NewOut[noc.Flit]().Owned(clk, "fixture/a", "out").Rated(2, 1)
	aIn := connections.NewIn[noc.Flit]().Owned(clk, "fixture/a", "in").Rated(1, 1)
	bOut := connections.NewOut[noc.Flit]().Owned(clk, "fixture/b", "out").Rated(1, 1)
	bIn := connections.NewIn[noc.Flit]().Owned(clk, "fixture/b", "in").Rated(1, 1)
	connections.Buffer(clk, "fixture/ab", 2, aOut, bIn)
	connections.Buffer(clk, "fixture/ba", 2, bOut, aIn)

	d.DeclareActor("fixture/fast", sim.ActorSDF, clk, sim.NewRat(1, 1))
	d.DeclareActor("fixture/slow", sim.ActorSDF, clk, sim.NewRat(1, 2))
	fOut := connections.NewOut[noc.Flit]().Owned(clk, "fixture/fast", "out").Rated(1, 1)
	sIn := connections.NewIn[noc.Flit]().Owned(clk, "fixture/slow", "in").Rated(1, 1)
	connections.Buffer(clk, "fixture/fs", 2, fOut, sIn)
	return s, neverRun
}

// buildBadBuf wires two buffer-sizing hazards: a producer that bursts
// eight tokens per firing into a two-slot FIFO (RATE-3, the buffer can
// never absorb one firing), and a one-for-one channel behind a 64-slot
// FIFO (RATE-4, capacity far beyond the minimal depth of 1).
func buildBadBuf(cfg Config) (*SoC, func(*SoC) error) {
	s := New(cfg, nil)
	clk := s.Clks[0]
	burst := connections.NewOut[noc.Flit]().Owned(clk, "fixture/burst", "out").Rated(8, 1)
	sink := connections.NewIn[noc.Flit]().Owned(clk, "fixture/sink", "in")
	connections.Buffer(clk, "fixture/narrow", 2, burst, sink)

	wOut := connections.NewOut[noc.Flit]().Owned(clk, "fixture/wsrc", "out").Rated(1, 1)
	wIn := connections.NewIn[noc.Flit]().Owned(clk, "fixture/wdst", "in").Rated(1, 1)
	connections.Buffer(clk, "fixture/wide", 64, wOut, wIn)
	return s, neverRun
}
