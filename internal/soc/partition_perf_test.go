package soc

import (
	"os"
	"runtime"
	"testing"
	"time"
)

// TestPartitionPerfGate is the CI throughput gate for the partition
// engine: four shards must not be slower than the sequential kernel on
// the GALS memcpy system test — the workload the mesh cut was designed
// for. It is opt-in (PARTITION_PERF_GATE=1) because wall-clock
// comparisons have no place in the default `go test` tier, and it skips
// on hosts without enough cores to run four shards in parallel.
func TestPartitionPerfGate(t *testing.T) {
	if os.Getenv("PARTITION_PERF_GATE") == "" {
		t.Skip("set PARTITION_PERF_GATE=1 to run the throughput gate")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful gate, have %d", runtime.NumCPU())
	}

	run := func(partitions int) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			cfg := DefaultConfig()
			cfg.GALS = true
			cfg.Partitions = partitions
			s, verify := Tests()[0].Build(cfg)
			start := time.Now()
			if _, err := s.Run(5_000_000); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			if err := verify(s); err != nil {
				t.Fatal(err)
			}
		}
		return best
	}

	seq := run(0)
	par := run(4)
	t.Logf("memcpy GALS: sequential %v, 4 shards %v (%.2fx)",
		seq, par, float64(seq)/float64(par))
	if par > seq {
		t.Errorf("partition engine regression: 4 shards took %v, sequential %v", par, seq)
	}
}
