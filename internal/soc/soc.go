package soc

import (
	"fmt"

	"repro/internal/axi"
	"repro/internal/connections"
	"repro/internal/gals"
	"repro/internal/noc"
	"repro/internal/psim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Node identifiers on the 4×5 mesh: PEs fill rows 0-3, the bottom row
// holds the two global-memory halves, the RISC-V controller, and I/O.
const (
	NumPEs   = 16
	NodeGML  = 16
	NodeGMR  = 17
	NodeRV   = 18
	NodeIO   = 19
	NumNodes = 20

	MeshW = 4
	MeshH = 5
)

// Config parameterizes a SoC build.
type Config struct {
	Mode         connections.Mode
	GALS         bool // one local clock generator per partition
	VecLanes     int  // PE vector width
	ScratchWords int  // PE scratchpad size
	GMWords      int  // words per global-memory half
	RAMWords     int  // RISC-V local RAM words
	LinkDepth    int  // per-VC link buffering
	VCs          int
	StallP       float64 // verification stall injection probability
	StallSeed    int64
	ClockPS      sim.Time // nominal partition clock period

	// Partitions selects the execution engine: 0 runs the legacy
	// sequential kernel (byte-compatible with every pre-partition
	// artifact); N >= 1 runs the partition-parallel engine with N shards
	// and epoch-quantized stop checks. All N >= 1 produce identical
	// results to each other — including N=1 — because edge execution is
	// bit-identical to sequential and the firmware-exit check moves to
	// deterministic window boundaries; only the boundary quantization
	// (a few extra idle cycles after exit) distinguishes N >= 1 from 0.
	Partitions int

	// Trace arms channel-level handshake tracing for the whole chip:
	// every LI channel, router, and pausible CDC FIFO records push/pop
	// and valid/ready/occupancy events into a per-simulator recorder
	// (see SoC.Tracer). Off by default — the disarmed path is a single
	// nil check per port operation.
	Trace bool

	// ShadowNetlists attaches a gate-level model of each PE's MAC
	// datapath lane, evaluated through the rtl simulator every cycle in
	// ModeRTLCosim — the cost that makes RTL cosimulation wall-clock
	// realistic (Figure 6's speedup axis). Off by default to keep
	// functional tests fast.
	ShadowNetlists bool
}

// DefaultConfig returns the testchip-like configuration.
func DefaultConfig() Config {
	return Config{
		Mode:         connections.ModeSimAccurate,
		VecLanes:     8,
		ScratchWords: 4096,
		GMWords:      1 << 16,
		RAMWords:     1 << 14,
		LinkDepth:    4,
		VCs:          2,
		ClockPS:      909, // 1.1 GHz signoff
	}
}

// SoC is a built prototype chip.
type SoC struct {
	Sim *sim.Simulator
	Cfg Config

	Clks  []*sim.Clock // one per node in GALS mode, else a single entry
	RVClk *sim.Clock

	PEs []*PE
	GML *MemNode
	GMR *MemNode
	IO  *MemNode
	RV  *RVNode

	Routers []*noc.WHVCRouter
	Pauses  func() uint64 // total pausible-FIFO pauses (GALS mode)

	// pktChans are the per-node packet inject/eject channels, kept for
	// waveform tracing.
	pktChans []tracedChan
}

type tracedChan struct {
	name string
	ch   connections.Channel[noc.Packet]
}

// Tracer returns the armed handshake-event recorder, or nil when the
// SoC was built with Config.Trace false. After Run, feed it to
// Recorder.WriteVCD for waveforms or Recorder.Analyze for the
// backpressure/deadlock report.
func (s *SoC) Tracer() *trace.Recorder { return s.Sim.Tracer() }

// TraceChannels streams every node's packet inject/eject channel state
// (occupancy, valid, ready) into a VCD waveform — the SoC-level slice of
// the flow's signal trace. Call before Run.
func (s *SoC) TraceChannels(v *trace.VCD) {
	for _, tc := range s.pktChans {
		tc.ch.Trace(v, tc.name)
	}
}

// New builds the SoC and loads the firmware into the controller.
func New(cfg Config, firmware []uint32) *SoC {
	s := &SoC{Sim: sim.New(), Cfg: cfg}
	if cfg.Trace {
		// Components capture their trace subject at construction, so the
		// recorder must be armed before anything below is built.
		s.Sim.Arm(trace.NewRecorder())
	}
	var pauses []*gals.PausibleBisyncFIFO[noc.Flit]

	// Clocks: fine-grained GALS gives every partition its own generator
	// with a slightly different free-running period and phase, exactly
	// the asynchrony the pausible interfaces must absorb.
	clockOf := make([]*sim.Clock, NumNodes)
	if cfg.GALS {
		for i := 0; i < NumNodes; i++ {
			period := cfg.ClockPS + sim.Time(i%7) // independent generators drift
			phase := sim.Time((i * 131) % int(cfg.ClockPS))
			c := s.Sim.AddClock(fmt.Sprintf("clk%d", i), period, phase)
			clockOf[i] = c
			s.Clks = append(s.Clks, c)
		}
	} else {
		c := s.Sim.AddClock("clk", cfg.ClockPS, 0)
		s.Clks = []*sim.Clock{c}
		for i := range clockOf {
			clockOf[i] = c
		}
	}
	s.RVClk = clockOf[NodeRV]

	// Partition boundaries for the design-rule checker: each node is one
	// clock partition, so lint can report which partitions a CDC hazard
	// straddles.
	for i := 0; i < NumNodes; i++ {
		s.Sim.Design().MarkPartition("soc/"+nodeName(i), clockOf[i])
	}

	var opts []connections.Option
	opts = append(opts, connections.WithMode(cfg.Mode))
	if cfg.StallP > 0 {
		opts = append(opts, connections.WithStall(cfg.StallP, cfg.StallP, cfg.StallSeed))
	}

	// Routers and NIs, one per node, on the node's clock. Components use
	// the repo-wide hierarchical path scheme (soc/noc/r[3]).
	nis := make([]*noc.NI, NumNodes)
	for i := 0; i < NumNodes; i++ {
		clk := clockOf[i]
		x, y := i%MeshW, i/MeshW
		r := noc.NewWHVCRouter(clk, fmt.Sprintf("soc/noc/r[%d]", i), 5, cfg.VCs, noc.XYRoute(MeshW, x, y), nil)
		s.Routers = append(s.Routers, r)
		// VC selection pins each (src,dst) flow to one VC so that DMA
		// chunk streams stay ordered end to end; different flows still
		// spread across VCs.
		ni := noc.NewNI(clk, fmt.Sprintf("soc/noc/ni[%d]", i), i, cfg.VCs, func(p noc.Packet) int { return (p.Src + p.Dst) % cfg.VCs })
		nis[i] = ni
		linkSame(clk, fmt.Sprintf("soc/noc/l[%d]/in", i), cfg.LinkDepth, ni.FlitOut, r.In[noc.PortLocal], opts)
		linkSame(clk, fmt.Sprintf("soc/noc/l[%d]/out", i), cfg.LinkDepth, r.Out[noc.PortLocal], ni.FlitIn, opts)
	}

	// Inter-router links: same-clock buffers or pausible CDC pairs.
	link := func(i, pi, j, pj int) {
		name := fmt.Sprintf("soc/noc/lnk[%d.%d-%d.%d]", i, pi, j, pj)
		if clockOf[i] == clockOf[j] {
			linkSame(clockOf[i], name, cfg.LinkDepth, s.Routers[i].Out[pi], s.Routers[j].In[pj], opts)
			return
		}
		for v := 0; v < cfg.VCs; v++ {
			f := cdcLink(s.Sim, fmt.Sprintf("%s/vc[%d]", name, v), clockOf[i], clockOf[j],
				s.Routers[i].Out[pi][v], s.Routers[j].In[pj][v], cfg.LinkDepth, opts)
			pauses = append(pauses, f)
		}
	}
	for i := 0; i < NumNodes; i++ {
		x, y := i%MeshW, i/MeshW
		if x+1 < MeshW {
			link(i, noc.PortEast, i+1, noc.PortWest)
			link(i+1, noc.PortWest, i, noc.PortEast)
		} else {
			terminate(clockOf[i], fmt.Sprintf("soc/noc/term[%d]/e", i), s.Routers[i].Out[noc.PortEast], s.Routers[i].In[noc.PortEast])
		}
		if y+1 < MeshH {
			link(i, noc.PortSouth, i+MeshW, noc.PortNorth)
			link(i+MeshW, noc.PortNorth, i, noc.PortSouth)
		} else {
			terminate(clockOf[i], fmt.Sprintf("soc/noc/term[%d]/s", i), s.Routers[i].Out[noc.PortSouth], s.Routers[i].In[noc.PortSouth])
		}
		if x == 0 {
			terminate(clockOf[i], fmt.Sprintf("soc/noc/term[%d]/w", i), s.Routers[i].Out[noc.PortWest], s.Routers[i].In[noc.PortWest])
		}
		if y == 0 {
			terminate(clockOf[i], fmt.Sprintf("soc/noc/term[%d]/n", i), s.Routers[i].Out[noc.PortNorth], s.Routers[i].In[noc.PortNorth])
		}
	}

	// Node engines behind the NIs, registered under soc/<node>.
	endpoints := func(i int) (*connections.Out[noc.Packet], *connections.In[noc.Packet]) {
		clk := clockOf[i]
		base := "soc/" + nodeName(i)
		inj := connections.NewOut[noc.Packet]().Owned(clk, base, "inject")
		ej := connections.NewIn[noc.Packet]().Owned(clk, base, "eject")
		// Nodes issue and absorb traffic on program-driven schedules, so
		// like the routers they bound any SDF region at their ports.
		clk.Sim().Design().DeclareActor(base, sim.ActorSwitch, clk, sim.Rat{})
		c1 := connections.Buffer(clk, base+"/inject", 2, inj, nis[i].PktIn, opts...)
		c2 := connections.Buffer(clk, base+"/eject", 2, nis[i].PktOut, ej, opts...)
		s.pktChans = append(s.pktChans,
			tracedChan{base + "/inject", c1},
			tracedChan{base + "/eject", c2})
		return inj, ej
	}
	for i := 0; i < NumPEs; i++ {
		inj, ej := endpoints(i)
		s.PEs = append(s.PEs, newPE(clockOf[i], fmt.Sprintf("soc/pe[%d]", i), i, cfg.ScratchWords, cfg.VecLanes, cfg.Mode, cfg.ShadowNetlists, inj, ej))
	}
	{
		inj, ej := endpoints(NodeGML)
		s.GML = newMemNode(clockOf[NodeGML], "soc/gml", NodeGML, cfg.GMWords, 8, inj, ej)
	}
	{
		inj, ej := endpoints(NodeGMR)
		s.GMR = newMemNode(clockOf[NodeGMR], "soc/gmr", NodeGMR, cfg.GMWords, 8, inj, ej)
	}
	{
		inj, ej := endpoints(NodeIO)
		s.IO = newMemNode(clockOf[NodeIO], "soc/io", NodeIO, cfg.GMWords/4, 4, inj, ej)
	}
	{
		inj, ej := endpoints(NodeRV)
		s.RV = newRVNode(clockOf[NodeRV], "soc/rv", NodeRV, cfg.RAMWords, firmware, inj, ej)
	}

	// The Figure 5 AXI bus: the controller reaches both global-memory
	// halves through an interconnect, a second (control-plane) port
	// into the same arrays the NoC data plane serves. The bus lives in
	// the RISC-V partition's clock domain.
	{
		clk := clockOf[NodeRV]
		ic := axi.NewInterconnect(clk, "soc/axi/bus", 1, []axi.Region{
			{Base: 0, Size: cfg.GMWords, Slave: 0},
			{Base: cfg.GMWords, Size: cfg.GMWords, Slave: 1},
		})
		axi.Connect(clk, "soc/axi/m0", 2, s.RV.axiPort(2*cfg.GMWords), ic.MasterPorts[0], opts...)
		sl := axi.NewMemSlaveBacked(clk, "soc/axi/gml", s.GML.Mem)
		sr := axi.NewMemSlaveBacked(clk, "soc/axi/gmr", s.GMR.Mem)
		axi.Connect(clk, "soc/axi/s0", 2, ic.SlavePorts[0], sl.Port, opts...)
		axi.Connect(clk, "soc/axi/s1", 2, ic.SlavePorts[1], sr.Port, opts...)

		// The control-plane port makes the RISC-V clock touch the memory
		// arrays owned by the GML/GMR partitions without a synchronizer in
		// between — a direct coupling the partition planner must know
		// about so those shards serialize against the controller's shard.
		// (AddCoupling is a no-op in single-clock builds.)
		s.Sim.Design().AddCoupling(clk, clockOf[NodeGML], "axi: rv control port into gml mem")
		s.Sim.Design().AddCoupling(clk, clockOf[NodeGMR], "axi: rv control port into gmr mem")
	}

	s.Pauses = func() uint64 {
		var t uint64
		for _, f := range pauses {
			t += f.Pauses
		}
		return t
	}
	return s
}

// epochCycles sizes the partition engine's stop-check window: shards run
// free for this many nominal clock periods between firmware-exit checks.
// Larger windows amortize the window barrier; the only cost is up to one
// window of idle cycles simulated past the firmware's exit store.
const epochCycles = 64

// Run executes until the firmware writes RegTestExit or maxCycles of the
// controller clock elapse. It returns elapsed controller cycles.
//
// With Config.Partitions == 0 this is the classic sequential step loop;
// with Partitions >= 1 the clocks are sharded onto worker goroutines and
// the exit condition is checked at fixed epoch boundaries, so the result
// is identical for every shard count (see Config.Partitions).
func (s *SoC) Run(maxCycles uint64) (uint64, error) {
	start := s.RVClk.Cycle()
	if s.Cfg.Partitions > 0 {
		eng, err := psim.Attach(s.Sim, s.Cfg.Partitions)
		if err != nil {
			return 0, err
		}
		psim.RunWindows(s.Sim, eng, s.Cfg.ClockPS*epochCycles, func() bool {
			return s.RV.Exited || s.RVClk.Cycle()-start >= maxCycles
		})
		eng.Close()
	} else {
		for !s.RV.Exited && s.RVClk.Cycle()-start < maxCycles {
			if !s.Sim.Step() {
				break
			}
		}
	}
	if err := s.Sim.Err(); err != nil {
		return s.RVClk.Cycle() - start, err
	}
	if !s.RV.Exited {
		return s.RVClk.Cycle() - start, fmt.Errorf("soc: firmware did not exit within %d cycles", maxCycles)
	}
	return s.RVClk.Cycle() - start, nil
}

// nodeName returns the node's component path segment under "soc".
func nodeName(i int) string {
	switch i {
	case NodeGML:
		return "gml"
	case NodeGMR:
		return "gmr"
	case NodeRV:
		return "rv"
	case NodeIO:
		return "io"
	default:
		return fmt.Sprintf("pe[%d]", i)
	}
}

// linkSame binds per-VC ports on one clock.
func linkSame(clk *sim.Clock, name string, depth int, out []*connections.Out[noc.Flit], in []*connections.In[noc.Flit], opts []connections.Option) {
	for v := range out {
		connections.Buffer(clk, fmt.Sprintf("%s/vc[%d]", name, v), depth, out[v], in[v], opts...)
	}
}

// terminate stubs an unused edge port.
func terminate(clk *sim.Clock, name string, out []*connections.Out[noc.Flit], in []*connections.In[noc.Flit]) {
	for v := range out {
		connections.Buffer(clk, fmt.Sprintf("%s/o[%d]", name, v), 1, out[v], connections.NewIn[noc.Flit](), connections.Terminator())
		connections.Buffer(clk, fmt.Sprintf("%s/i[%d]", name, v), 1, connections.NewOut[noc.Flit](), in[v], connections.Terminator())
	}
}

// cdcLink carries one VC of a link across clock domains through a
// pausible bisynchronous FIFO, with a forwarding process on each side —
// the paper's asynchronous router-to-router interface.
func cdcLink(s *sim.Simulator, name string, clkA, clkB *sim.Clock,
	out *connections.Out[noc.Flit], in *connections.In[noc.Flit], depth int, opts []connections.Option) *gals.PausibleBisyncFIFO[noc.Flit] {
	aIn := connections.NewIn[noc.Flit]().Owned(clkA, name, "tx")
	connections.Buffer(clkA, name+"/a", 2, out, aIn, opts...)
	fifo := gals.NewPausibleBisyncFIFO[noc.Flit](s, name, clkA, clkB, depth, 40)
	clkA.Spawn(name+"/tx", func(th *sim.Thread) {
		for {
			f := aIn.Pop(th)
			fifo.Push(th, f)
			th.Wait()
		}
	})
	bOut := connections.NewOut[noc.Flit]().Owned(clkB, name, "rx")
	connections.Buffer(clkB, name+"/b", 2, bOut, in, opts...)
	clkB.Spawn(name+"/rx", func(th *sim.Thread) {
		for {
			f := fifo.Pop(th)
			bOut.Push(th, f)
			th.Wait()
		}
	})
	return fifo
}
