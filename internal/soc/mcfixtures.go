package soc

import (
	"errors"

	"repro/internal/connections"
	"repro/internal/gals"
	"repro/internal/noc"
	"repro/internal/sim"
)

// MCFixtures returns deliberately broken SoC builds for exercising the
// bounded model checker, the dynamic siblings of LintFixtures and
// RateFixtures: full SoCs with one reachable channel-protocol bug wired
// in, selectable by exact name from socsim but excluded from "all",
// meant to be checked, never run.
func MCFixtures() []TestCase {
	return []TestCase{
		{Name: "mcdeadlock", Build: buildMCDeadlock},
		{Name: "mcbufeqv", Build: buildMCBufEqv},
	}
}

// MCExamples returns small clean designs the model checker must prove
// deadlock-free and equivalent within its default bound: the rated
// serializer/deserializer chain and a GALS clock-domain crossing. They
// are minimal closed models (every endpoint declared), not full SoCs —
// exhaustive state search is exactly the regime BMC is for.
func MCExamples() []TestCase {
	return []TestCase{
		{Name: "mcserdes", Build: buildMCSerdes},
		{Name: "mcgals", Build: buildMCGals},
	}
}

// buildMCDeadlock wires a token ring with no initial tokens into the
// full SoC: two single-slot buffered channels a -> b -> a where each
// actor needs an input token before producing. lint's static pass can
// only warn (DLK-2: the cycle has buffering, so zero-slack is a maybe),
// but the model checker proves the ring is wedged in its very first
// state: a circular wait with no tokens to break it.
func buildMCDeadlock(cfg Config) (*SoC, func(*SoC) error) {
	s := New(cfg, nil)
	clk := s.Clks[0]
	d := clk.Sim().Design()

	d.DeclareActor("fixture/a", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("fixture/b", sim.ActorSDF, clk, sim.Rat{})
	aOut := connections.NewOut[noc.Flit]().Owned(clk, "fixture/a", "out").Rated(1, 1)
	aIn := connections.NewIn[noc.Flit]().Owned(clk, "fixture/a", "in").Rated(1, 1)
	bOut := connections.NewOut[noc.Flit]().Owned(clk, "fixture/b", "out").Rated(1, 1)
	bIn := connections.NewIn[noc.Flit]().Owned(clk, "fixture/b", "in").Rated(1, 1)
	connections.Buffer(clk, "fixture/ab", 1, aOut, bIn)
	connections.Buffer(clk, "fixture/ba", 1, bOut, aIn)
	return s, neverRun
}

// buildMCBufEqv wires an undersized-buffer equivalence violation into
// the full SoC: a packer that accumulates four tokens and bursts all
// four into a two-slot channel. Under sim-accurate (unbounded-buffer)
// semantics the packer fires as soon as its input holds four tokens;
// under signal-accurate back-pressure it can never fire — the burst
// exceeds the channel's total storage — so the two executions diverge
// on the token stream once the accumulator fills (depth 4).
func buildMCBufEqv(cfg Config) (*SoC, func(*SoC) error) {
	s := New(cfg, nil)
	clk := s.Clks[0]
	d := clk.Sim().Design()

	d.DeclareActor("fixture/src", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("fixture/pack", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("fixture/sink", sim.ActorSDF, clk, sim.Rat{})
	srcOut := connections.NewOut[noc.Flit]().Owned(clk, "fixture/src", "out").Rated(1, 1)
	packIn := connections.NewIn[noc.Flit]().Owned(clk, "fixture/pack", "in").Rated(4, 1)
	packOut := connections.NewOut[noc.Flit]().Owned(clk, "fixture/pack", "out").Rated(4, 1)
	sinkIn := connections.NewIn[noc.Flit]().Owned(clk, "fixture/sink", "in").Rated(1, 1)
	connections.Buffer(clk, "fixture/acc", 4, srcOut, packIn)
	connections.Buffer(clk, "fixture/qburst", 2, packOut, sinkIn)
	return s, neverRun
}

// buildMCSerdes is the rated serializer chain from the verif rate
// bridge, reduced to its declared skeleton: source -> 1:3 serializer ->
// 3:1 deserializer -> sink over buffered channels sized at ratecheck's
// RATE-3 minima. Every endpoint is declared, so the model is closed and
// the checker can exhaust its reachable states.
func buildMCSerdes(cfg Config) (*SoC, func(*SoC) error) {
	s := &SoC{Sim: sim.New(), Cfg: cfg}
	clk := s.Sim.AddClock("clk", cfg.ClockPS, 0)
	s.Clks = []*sim.Clock{clk}
	d := s.Sim.Design()

	d.DeclareActor("tb/src", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("tb/ser", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("tb/des", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("tb/sink", sim.ActorSDF, clk, sim.Rat{})
	srcOut := connections.NewOut[noc.Flit]().Owned(clk, "tb/src", "out").Rated(1, 1)
	serIn := connections.NewIn[noc.Flit]().Owned(clk, "tb/ser", "in").Rated(1, 1)
	serOut := connections.NewOut[noc.Flit]().Owned(clk, "tb/ser", "out").Rated(3, 1)
	desIn := connections.NewIn[noc.Flit]().Owned(clk, "tb/des", "in").Rated(3, 1)
	desOut := connections.NewOut[noc.Flit]().Owned(clk, "tb/des", "out").Rated(1, 1)
	sinkIn := connections.NewIn[noc.Flit]().Owned(clk, "tb/sink", "in").Rated(1, 1)
	connections.Buffer(clk, "tb/q_head", 2, srcOut, serIn)
	connections.Buffer(clk, "tb/q_link", 3, serOut, desIn)
	connections.Buffer(clk, "tb/q_tail", 2, desOut, sinkIn)
	return s, neverRunnableExample
}

// buildMCGals is a minimal GALS clock-domain crossing: two drifting
// clocks joined by one pausible bisync FIFO, the structure every
// partition boundary of the GALS SoC uses. The surrounding domains are
// the crossing's environment, so the model is the FIFO itself —
// occupancy plus two synchronizer stages — and the checker proves the
// crossing can neither deadlock nor drop the token-stream equivalence.
func buildMCGals(cfg Config) (*SoC, func(*SoC) error) {
	s := &SoC{Sim: sim.New(), Cfg: cfg}
	tx := s.Sim.AddClock("tx", cfg.ClockPS, 0)
	rx := s.Sim.AddClock("rx", cfg.ClockPS+7, 13)
	s.Clks = []*sim.Clock{tx, rx}
	gals.NewPausibleBisyncFIFO[noc.Flit](s.Sim, "tb/cross", tx, rx, 4, 40)
	return s, neverRunnableExample
}

// neverRunnableExample marks the minimal mc example designs: they carry
// no firmware or traffic generators and exist to be checked, not run.
func neverRunnableExample(*SoC) error {
	return errors.New("mc example designs are static models; model-check them with -mc, they cannot run")
}
