package soc

import (
	"bytes"
	"testing"
)

// runPartitioned builds the memcpy system test on the GALS testchip
// configuration, runs it with the given shard count, and returns the
// full metrics snapshot — the same bytes socsim -statsjson writes.
func runPartitioned(t *testing.T, partitions int, trace bool) ([]byte, *SoC) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.GALS = true
	cfg.Partitions = partitions
	cfg.Trace = trace
	s, verify := buildMemcpy(cfg)
	if _, err := s.Run(maxCycles); err != nil {
		t.Fatalf("partitions=%d: %v", partitions, err)
	}
	if err := verify(s); err != nil {
		t.Fatalf("partitions=%d: %v", partitions, err)
	}
	var buf bytes.Buffer
	if err := s.Sim.Metrics().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), s
}

// TestPartitionedSoCStatsByteIdentical is the acceptance criterion at
// chip level: the full 20-clock GALS SoC produces a byte-identical
// metrics snapshot for every shard count, pauses included.
func TestPartitionedSoCStatsByteIdentical(t *testing.T) {
	want, ref := runPartitioned(t, 1, false)
	if ref.Pauses() == 0 {
		t.Fatal("GALS run recorded no pauses; the CDC FIFOs are not being exercised")
	}
	for _, n := range []int{2, 4, 8} {
		got, s := runPartitioned(t, n, false)
		if !bytes.Equal(got, want) {
			t.Errorf("partitions=%d stats diverged from partitions=1 (%d vs %d bytes)", n, len(got), len(want))
		}
		if s.Pauses() != ref.Pauses() {
			t.Errorf("partitions=%d pauses = %d, want %d", n, s.Pauses(), ref.Pauses())
		}
	}
}

// TestPartitionedSoCTraceDeterministic runs the armed variant: the
// merged per-shard trace lanes must reproduce the single-shard event
// stream exactly, event for event.
func TestPartitionedSoCTraceDeterministic(t *testing.T) {
	_, ref := runPartitioned(t, 1, true)
	want := ref.Tracer().Events()
	if len(want) == 0 {
		t.Fatal("armed run recorded no events")
	}
	_, s := runPartitioned(t, 4, true)
	got := s.Tracer().Events()
	if len(got) != len(want) {
		t.Fatalf("event count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}
