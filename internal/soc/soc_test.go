package soc

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/connections"
	"repro/internal/riscv"
	"repro/internal/trace"
)

const maxCycles = 5_000_000

func runCase(t *testing.T, tc TestCase, cfg Config) uint64 {
	t.Helper()
	// SOC_TRACE=1 runs the whole suite with channel tracing armed — the
	// CI variant proving an armed chip still passes every system test.
	if os.Getenv("SOC_TRACE") == "1" {
		cfg.Trace = true
	}
	s, verify := tc.Build(cfg)
	cycles, err := s.Run(maxCycles)
	if err != nil {
		t.Fatalf("%s: %v", tc.Name, err)
	}
	if s.RV.ExitCode != 0 {
		t.Fatalf("%s: firmware exit code %d", tc.Name, s.RV.ExitCode)
	}
	if err := verify(s); err != nil {
		t.Fatal(err)
	}
	return cycles
}

func TestAllSoCTestsSimAccurate(t *testing.T) {
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			cycles := runCase(t, tc, DefaultConfig())
			if cycles == 0 {
				t.Fatal("zero elapsed cycles")
			}
			t.Logf("%s: %d cycles", tc.Name, cycles)
		})
	}
}

func TestSoCRTLCosimFunctional(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Mode = connections.ModeRTLCosim
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			runCase(t, tc, cfg)
		})
	}
}

// The signal-accurate model at SoC scope: every port operation in every
// router, NI and node handler serializes, so the chip still computes the
// right answer but burns far more simulated cycles — the Figure 3 effect
// at system scale.
func TestSoCSignalAccurateMode(t *testing.T) {
	tlm := runCase(t, Tests()[0], DefaultConfig())
	cfg := DefaultConfig()
	cfg.Mode = connections.ModeSignalAccurate
	sig := runCase(t, Tests()[0], cfg)
	if sig < 3*tlm {
		t.Fatalf("signal-accurate %d cycles vs TLM %d — expected heavy serialization", sig, tlm)
	}
}

// Fine-grained GALS: every partition on its own drifting clock, pausible
// FIFOs on all crossings — results must be identical to single-clock.
func TestSoCGALSFunctional(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GALS = true
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			s, verify := tc.Build(cfg)
			if _, err := s.Run(maxCycles); err != nil {
				t.Fatal(err)
			}
			if err := verify(s); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSoCGALSPausesOccur(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GALS = true
	s, verify := buildMemcpy(cfg)
	if _, err := s.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	if err := verify(s); err != nil {
		t.Fatal(err)
	}
	if s.Pauses() == 0 {
		t.Fatal("no pausible-clock pauses across 20 drifting domains")
	}
}

// The paper's stall-injection verification feature at SoC scope: random
// valid/ready withholding on every channel must not change results.
func TestSoCStallInjectionFunctional(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StallP = 0.10
	cfg.StallSeed = 42
	for _, tc := range []TestCase{Tests()[0], Tests()[1], Tests()[2]} {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			runCase(t, tc, cfg)
		})
	}
}

func TestStallInjectionSlowsSoC(t *testing.T) {
	base := runCase(t, Tests()[1], DefaultConfig())
	cfg := DefaultConfig()
	cfg.StallP = 0.15
	cfg.StallSeed = 9
	stalled := runCase(t, Tests()[1], cfg)
	if stalled <= base {
		t.Fatalf("stalled run %d cycles <= clean run %d", stalled, base)
	}
}

// The Figure 6 cycle-accuracy claim: RTL-cosim mode adds pipeline
// latencies, so elapsed cycles grow — but only by a few percent.
func TestFig6CycleErrorSmall(t *testing.T) {
	for _, tc := range Tests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			tlm := runCase(t, tc, DefaultConfig())
			cfg := DefaultConfig()
			cfg.Mode = connections.ModeRTLCosim
			rtl := runCase(t, tc, cfg)
			err := 100 * (float64(rtl) - float64(tlm)) / float64(rtl)
			t.Logf("%s: TLM %d cycles, RTL %d cycles, error %.2f%%", tc.Name, tlm, rtl, err)
			if err < 0 {
				t.Fatalf("RTL mode faster than TLM (%d vs %d)", rtl, tlm)
			}
			if err > 12 {
				t.Fatalf("cycle error %.1f%% implausibly large", err)
			}
		})
	}
}

// TestFig6Bands runs the full Figure 6 experiment (with gate-level
// shadow cosimulation) and checks that both measured axes land in the
// paper's regime: a few percent elapsed-cycle error and an order of
// magnitude or more wall-time advantage for the performance model.
func TestFig6Bands(t *testing.T) {
	if testing.Short() {
		t.Skip("full RTL-cosim measurement is slow")
	}
	rows, err := RunFig6(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CycleErrPct < 0.5 || r.CycleErrPct > 6 {
			t.Errorf("%s: cycle error %.2f%% outside the paper's few-percent band", r.Test, r.CycleErrPct)
		}
	}
	// The speedup axis is wall-clock: the TLM halves finish in tens of
	// milliseconds, so one scheduling stall on a loaded host collapses
	// a ratio that measures 14-23x when quiet. Re-measure once before
	// calling a low ratio a regression.
	for attempt := 0; ; attempt++ {
		low := ""
		for _, r := range rows {
			if r.Speedup < 8 {
				low = r.Test + ": speedup " + strconv.FormatFloat(r.Speedup, 'f', 1, 64) + "x"
			}
		}
		if low == "" {
			break
		}
		if attempt == 1 {
			t.Errorf("%s — RTL cosim should be at least ~an order of magnitude slower", low)
			break
		}
		t.Logf("%s below band, re-measuring once (transient load?)", low)
		if rows, err = RunFig6(maxCycles); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := runCase(t, Tests()[2], DefaultConfig())
	b := runCase(t, Tests()[2], DefaultConfig())
	if a != b {
		t.Fatalf("two identical runs took %d and %d cycles", a, b)
	}
}

// TestIONodeDMAPath drives data in through the I/O partition, the way
// the testchip's FPGA host does: the host preloads the IO node's buffer,
// firmware DMAs it IO → GML → a PE → GMR over the NoC.
func TestIONodeDMAPath(t *testing.T) {
	const n = 48
	cfg := DefaultConfig()
	fw := NewFirmware()
	fw.Send(NodeIO, ReadMsg(0, n, NodeGML, 0, NodeRV)) // off-chip -> GML
	fw.WaitDone(1)
	fw.Send(NodeGML, ReadMsg(0, n, 5, 0, NodeRV)) // GML -> PE5 scratch
	fw.WaitDone(2)
	fw.Send(5, ReadMsg(0, n, NodeGMR, 100, NodeRV)) // PE5 -> GMR
	fw.WaitDone(3)
	fw.Exit(0)

	s := New(cfg, fw.Assemble())
	for i := 0; i < n; i++ {
		s.IO.Mem.Write(i, uint64(i)*7+3)
	}
	if _, err := s.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := uint64(i)*7 + 3
		if got := s.GMR.Mem.Read(100 + i); got != want {
			t.Fatalf("GMR[%d] = %d, want %d", 100+i, got, want)
		}
	}
	if s.IO.Stats.ReadsOut != n {
		t.Fatalf("IO node streamed %d words, want %d", s.IO.Stats.ReadsOut, n)
	}
}

// TestAXIBusControlPlane exercises the Figure 5 AXI bus: firmware writes
// a MUL-computed pattern into GML through the AXI window, triggers a NoC
// DMA copying it to GMR, then reads GMR back through AXI and compares —
// both global-memory ports and the M extension in one program.
func TestAXIBusControlPlane(t *testing.T) {
	const n = 16
	cfg := DefaultConfig()

	fw := NewFirmware()
	p := fw.P
	// for i in [0,n): GML[i] = i * 2654435761 (via MUL)
	p.LUI(riscv.S0, AXIWindow)
	p.LI(riscv.S1, 0) // i
	p.LI(riscv.S2, n)
	p.LI(riscv.S3, 2654435761) // knuth constant
	p.Label("wr")
	p.MUL(riscv.T0, riscv.S1, riscv.S3)
	p.SLLI(riscv.T1, riscv.S1, 2)
	p.ADD(riscv.T1, riscv.T1, riscv.S0)
	p.SW(riscv.T0, riscv.T1, 0)
	p.ADDI(riscv.S1, riscv.S1, 1)
	p.BLT(riscv.S1, riscv.S2, "wr")
	// DMA GML[0..n) -> GMR[0..n) over the NoC data plane.
	fw.Send(NodeGML, ReadMsg(0, n, NodeGMR, 0, NodeRV))
	fw.WaitDone(1)
	// Read back GMR[0..n) through AXI (second half of the window) and
	// verify in firmware.
	gmrBase := uint32(cfg.GMWords * 4)
	p.LI(riscv.S1, 0)
	p.Label("rd")
	p.SLLI(riscv.T1, riscv.S1, 2)
	p.ADD(riscv.T1, riscv.T1, riscv.S0)
	p.LI(riscv.T2, gmrBase)
	p.ADD(riscv.T1, riscv.T1, riscv.T2)
	p.LW(riscv.T0, riscv.T1, 0)
	p.MUL(riscv.T2, riscv.S1, riscv.S3)
	p.BNE(riscv.T0, riscv.T2, "fail")
	p.ADDI(riscv.S1, riscv.S1, 1)
	p.BLT(riscv.S1, riscv.S2, "rd")
	fw.Exit(0)
	p.Label("fail")
	fw.Exit(1)

	s := New(cfg, fw.Assemble())
	if _, err := s.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	if s.RV.ExitCode != 0 {
		t.Fatalf("firmware verification failed (exit %d)", s.RV.ExitCode)
	}
	if s.RV.AXITransactions() < 2*n {
		t.Fatalf("only %d AXI transactions recorded", s.RV.AXITransactions())
	}
	// Host-side cross-check of both memories.
	for i := 0; i < n; i++ {
		want := uint64(uint32(i) * 2654435761)
		if got := s.GML.Mem.Read(i); got != want {
			t.Fatalf("GML[%d] = %d, want %d", i, got, want)
		}
		if got := s.GMR.Mem.Read(i); got != want {
			t.Fatalf("GMR[%d] = %d, want %d", i, got, want)
		}
	}
}

func TestExtraWorkloads(t *testing.T) {
	for _, tc := range ExtraTests() {
		tc := tc
		t.Run(tc.Name, func(t *testing.T) {
			runCase(t, tc, DefaultConfig())
		})
		t.Run(tc.Name+"_gals", func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.GALS = true
			s, verify := tc.Build(cfg)
			if _, err := s.Run(maxCycles); err != nil {
				t.Fatal(err)
			}
			if err := verify(s); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestTraceChannels(t *testing.T) {
	s, verify := buildMemcpy(DefaultConfig())
	var sb strings.Builder
	s.TraceChannels(trace.NewVCD(&sb))
	if _, err := s.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	if err := verify(s); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"soc/pe[0]/inject.occ", "soc/io/eject.valid", "$enddefinitions"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SoC trace missing %q", want)
		}
	}
	if strings.Count(out, "#") < 100 {
		t.Fatal("SoC trace suspiciously short")
	}
}

func TestPowerEstimate(t *testing.T) {
	s, verify := buildConv1D(DefaultConfig())
	cycles, err := s.Run(maxCycles)
	if err != nil {
		t.Fatal(err)
	}
	if err := verify(s); err != nil {
		t.Fatal(err)
	}
	pb := s.PowerEstimate(cycles, 1100)
	if pb.TotalMW <= 0 || pb.PEsMW <= 0 || pb.NoCMW <= 0 || pb.SRAMMW <= 0 || pb.RVMW <= 0 {
		t.Fatalf("degenerate power breakdown: %+v", pb)
	}
	if pb.TotalMW < pb.LeakMW {
		t.Fatal("total below leakage")
	}
	// An idle chip burns only leakage.
	idle := s.PowerEstimate(0, 1100)
	if idle.TotalMW != 0 {
		t.Fatalf("zero-cycle estimate should be zero, got %+v", idle)
	}
}

func TestKernelDotF16(t *testing.T) {
	// Exercise the binary16 kernel path directly through one PE.
	cfg := DefaultConfig()
	fw := NewFirmware()
	fw.Send(0, ExecMsg(KDotF16, 0, 8, 16, 4, 0, NodeRV, 3))
	fw.WaitDone(1)
	fw.Exit(0)
	s := New(cfg, fw.Assemble())
	// a = [1.0, 2.0, 0.5, 4.0], b = [2.0, 3.0, 4.0, 0.25] in binary16.
	av := []uint64{0x3c00, 0x4000, 0x3800, 0x4400}
	bv := []uint64{0x4000, 0x4200, 0x4400, 0x3400}
	for i := range av {
		s.PEs[0].Mem.Write(i, av[i])
		s.PEs[0].Mem.Write(8+i, bv[i])
	}
	if _, err := s.Run(maxCycles); err != nil {
		t.Fatal(err)
	}
	// 1*2 + 2*3 + 0.5*4 + 4*0.25 = 11.0 -> binary16 0x4980
	if got := s.PEs[0].Mem.Read(16); got != 0x4980 {
		t.Fatalf("f16 dot = %#x, want 0x4980", got)
	}
}
