package soc

import (
	"fmt"
	"math/rand"
)

// TestCase is one SoC-level test: it builds the chip with preloaded data
// and firmware, and verifies architectural state after the firmware
// exits. These six tests are the workload set behind the paper's
// Figure 6 comparison.
type TestCase struct {
	Name  string
	Build func(cfg Config) (*SoC, func(*SoC) error)
}

const (
	peTile   = 32     // words per PE tile in the streaming tests
	mailbox  = 0x2000 // RV RAM word index of the DMA mailbox
	resultAt = 0x2fff // RV RAM word index of the scalar result
)

// Tests returns the six SoC-level tests.
func Tests() []TestCase {
	return []TestCase{
		{Name: "memcpy", Build: buildMemcpy},
		{Name: "vecadd", Build: buildVecAdd},
		{Name: "dot", Build: buildDot},
		{Name: "conv1d", Build: buildConv1D},
		{Name: "kmeans", Build: buildKMeans},
		{Name: "maxpool", Build: buildMaxPool},
	}
}

func randWords(seed int64, n int, mod int64) []uint64 {
	r := rand.New(rand.NewSource(seed))
	w := make([]uint64, n)
	for i := range w {
		w[i] = uint64(uint32(r.Int63n(mod)))
	}
	return w
}

// memcpy: GML → 16 PE scratchpads → GMR, orchestrated entirely by DMA.
func buildMemcpy(cfg Config) (*SoC, func(*SoC) error) {
	n := NumPEs * peTile
	data := randWords(1001, n, 1<<31)

	fw := NewFirmware()
	for i := 0; i < NumPEs; i++ {
		fw.Send(NodeGML, ReadMsg(i*peTile, peTile, i, 0, NodeRV))
	}
	fw.WaitDone(NumPEs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ReadMsg(0, peTile, NodeGMR, i*peTile, NodeRV))
	}
	fw.WaitDone(2 * NumPEs)
	fw.Exit(0)

	s := New(cfg, fw.Assemble())
	for i, w := range data {
		s.GML.Mem.Write(i, w)
	}
	verify := func(s *SoC) error {
		for i, w := range data {
			if got := s.GMR.Mem.Read(i); got != w {
				return fmt.Errorf("memcpy: GMR[%d] = %d, want %d", i, got, w)
			}
		}
		return nil
	}
	return s, verify
}

// vecadd: C = A + B tiled across the 16 PEs.
func buildVecAdd(cfg Config) (*SoC, func(*SoC) error) {
	n := NumPEs * peTile
	a := randWords(1002, n, 1<<20)
	b := randWords(1003, n, 1<<20)

	fw := NewFirmware()
	for i := 0; i < NumPEs; i++ {
		fw.Send(NodeGML, ReadMsg(i*peTile, peTile, i, 0, NodeRV))        // A tile -> scratch@0
		fw.Send(NodeGML, ReadMsg(n+i*peTile, peTile, i, peTile, NodeRV)) // B tile -> scratch@32
	}
	fw.WaitDone(2 * NumPEs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ExecMsg(KVecAdd, 0, peTile, 2*peTile, peTile, 0, NodeRV, 0))
	}
	fw.WaitDone(3 * NumPEs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ReadMsg(2*peTile, peTile, NodeGMR, i*peTile, NodeRV))
	}
	fw.WaitDone(4 * NumPEs)
	fw.Exit(0)

	s := New(cfg, fw.Assemble())
	for i := 0; i < n; i++ {
		s.GML.Mem.Write(i, a[i])
		s.GML.Mem.Write(n+i, b[i])
	}
	verify := func(s *SoC) error {
		for i := 0; i < n; i++ {
			want := uint64(uint32(int32(uint32(a[i])) + int32(uint32(b[i]))))
			if got := s.GMR.Mem.Read(i); got != want {
				return fmt.Errorf("vecadd: GMR[%d] = %d, want %d", i, got, want)
			}
		}
		return nil
	}
	return s, verify
}

// dot: distributed dot product; PEs compute partials, the controller
// gathers them into its mailbox and accumulates with a real RV32I loop.
func buildDot(cfg Config) (*SoC, func(*SoC) error) {
	n := NumPEs * peTile
	a := randWords(1004, n, 1<<15)
	b := randWords(1005, n, 1<<15)

	fw := NewFirmware()
	for i := 0; i < NumPEs; i++ {
		fw.Send(NodeGML, ReadMsg(i*peTile, peTile, i, 0, NodeRV))
		fw.Send(NodeGML, ReadMsg(n+i*peTile, peTile, i, peTile, NodeRV))
	}
	fw.WaitDone(2 * NumPEs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ExecMsg(KDot, 0, peTile, 2*peTile, peTile, 0, NodeRV, 0))
	}
	fw.WaitDone(3 * NumPEs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ReadMsg(2*peTile, 1, NodeRV, mailbox+i, NodeRV))
	}
	fw.WaitDone(4 * NumPEs)
	fw.SumMailbox(mailbox, NumPEs, resultAt)
	fw.Exit(0)

	s := New(cfg, fw.Assemble())
	for i := 0; i < n; i++ {
		s.GML.Mem.Write(i, a[i])
		s.GML.Mem.Write(n+i, b[i])
	}
	verify := func(s *SoC) error {
		var want int32
		for i := 0; i < n; i++ {
			want += int32(uint32(a[i])) * int32(uint32(b[i]))
		}
		if got := int32(s.RV.RAM[resultAt]); got != want {
			return fmt.Errorf("dot: result %d, want %d", got, want)
		}
		return nil
	}
	return s, verify
}

// conv1d: an 8-tap FIR over a 512-sample signal, one output tile per PE,
// with halo overlap in the input tiles.
func buildConv1D(cfg Config) (*SoC, func(*SoC) error) {
	const taps = 8
	n := NumPEs * peTile
	signal := randWords(1006, n+taps-1, 1<<12)
	coef := randWords(1007, taps, 1<<10)
	const coefAt = 0x4000 // GML address of the coefficients

	fw := NewFirmware()
	for i := 0; i < NumPEs; i++ {
		fw.Send(NodeGML, ReadMsg(i*peTile, peTile+taps-1, i, 0, NodeRV)) // tile + halo
		fw.Send(NodeGML, ReadMsg(coefAt, taps, i, 64, NodeRV))
	}
	fw.WaitDone(2 * NumPEs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ExecMsg(KConv1D, 0, 64, 128, peTile, taps, NodeRV, 0))
	}
	fw.WaitDone(3 * NumPEs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ReadMsg(128, peTile, NodeGMR, i*peTile, NodeRV))
	}
	fw.WaitDone(4 * NumPEs)
	fw.Exit(0)

	s := New(cfg, fw.Assemble())
	for i, w := range signal {
		s.GML.Mem.Write(i, w)
	}
	for i, w := range coef {
		s.GML.Mem.Write(coefAt+i, w)
	}
	verify := func(s *SoC) error {
		for i := 0; i < n; i++ {
			var want int32
			for t := 0; t < taps; t++ {
				want += int32(uint32(signal[i+t])) * int32(uint32(coef[t]))
			}
			if got := int32(uint32(s.GMR.Mem.Read(i))); got != want {
				return fmt.Errorf("conv1d: GMR[%d] = %d, want %d", i, got, want)
			}
		}
		return nil
	}
	return s, verify
}

// kmeans: the assignment step — each PE computes squared distances from
// its points to the shared centroids and arg-mins the label.
func buildKMeans(cfg Config) (*SoC, func(*SoC) error) {
	const (
		dims       = 8
		k          = 4
		perPE      = 2
		centroidAt = 0x4000
	)
	nPts := NumPEs * perPE
	pts := randWords(1008, nPts*dims, 1000)
	cents := randWords(1009, k*dims, 1000)

	fw := NewFirmware()
	for i := 0; i < NumPEs; i++ {
		fw.Send(NodeGML, ReadMsg(i*perPE*dims, perPE*dims, i, 0, NodeRV)) // points -> @0
		fw.Send(NodeGML, ReadMsg(centroidAt, k*dims, i, 64, NodeRV))      // centroids -> @64
	}
	fw.WaitDone(2 * NumPEs)
	execs := 0
	for i := 0; i < NumPEs; i++ {
		for p := 0; p < perPE; p++ {
			fw.Send(i, ExecMsg(KDist2, p*dims, 64, 128, k, dims, NodeRV, 0))
			fw.Send(i, ExecMsg(KArgMin, 128, 0, 160+p, k, 0, NodeRV, 0))
			execs += 2
		}
	}
	fw.WaitDone(2*NumPEs + execs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ReadMsg(160, perPE, NodeGMR, i*perPE, NodeRV))
	}
	fw.WaitDone(3*NumPEs + execs)
	fw.Exit(0)

	s := New(cfg, fw.Assemble())
	for i, w := range pts {
		s.GML.Mem.Write(i, w)
	}
	for i, w := range cents {
		s.GML.Mem.Write(centroidAt+i, w)
	}
	verify := func(s *SoC) error {
		for p := 0; p < nPts; p++ {
			best, bestD := 0, int64(1)<<62
			for j := 0; j < k; j++ {
				var d int64
				for t := 0; t < dims; t++ {
					diff := int64(int32(uint32(pts[p*dims+t]))) - int64(int32(uint32(cents[j*dims+t])))
					d += diff * diff
				}
				if d < bestD {
					best, bestD = j, d
				}
			}
			if got := int(int32(uint32(s.GMR.Mem.Read(p)))); got != best {
				return fmt.Errorf("kmeans: point %d assigned %d, want %d", p, got, best)
			}
		}
		return nil
	}
	return s, verify
}

// maxpool: window-4 max pooling over a 2048-sample signal.
func buildMaxPool(cfg Config) (*SoC, func(*SoC) error) {
	const win = 4
	inTile := peTile * win // 128 input words per PE
	n := NumPEs * inTile
	data := randWords(1010, n, 1<<30)

	fw := NewFirmware()
	for i := 0; i < NumPEs; i++ {
		fw.Send(NodeGML, ReadMsg(i*inTile, inTile, i, 0, NodeRV))
	}
	fw.WaitDone(NumPEs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ExecMsg(KMaxPool, 0, 0, 256, peTile, win, NodeRV, 0))
	}
	fw.WaitDone(2 * NumPEs)
	for i := 0; i < NumPEs; i++ {
		fw.Send(i, ReadMsg(256, peTile, NodeGMR, i*peTile, NodeRV))
	}
	fw.WaitDone(3 * NumPEs)
	fw.Exit(0)

	s := New(cfg, fw.Assemble())
	for i, w := range data {
		s.GML.Mem.Write(i, w)
	}
	verify := func(s *SoC) error {
		for o := 0; o < NumPEs*peTile; o++ {
			want := int32(uint32(data[o*win]))
			for t := 1; t < win; t++ {
				if v := int32(uint32(data[o*win+t])); v > want {
					want = v
				}
			}
			if got := int32(uint32(s.GMR.Mem.Read(o))); got != want {
				return fmt.Errorf("maxpool: GMR[%d] = %d, want %d", o, got, want)
			}
		}
		return nil
	}
	return s, verify
}
