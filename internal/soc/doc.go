// Package soc models the paper's prototype SoC (Figure 5): a 4×4 array
// of processing elements — each with a scratchpad, a vector datapath, a
// control unit and a router interface — connected by a wormhole
// virtual-channel NoC to two banked global-memory partitions, an RV32I
// control processor, and an I/O partition. The whole design is assembled
// from MatchLib components over Connections channels and can run
// single-clock or with fine-grained GALS clocking (one local clock
// generator per partition, pausible bisynchronous FIFOs on every
// partition crossing).
//
// Config.Trace arms chip-wide channel tracing (internal/trace) before
// construction, so every LI channel, router, and pausible CDC FIFO
// records handshake events under its component path; SoC.Tracer exposes
// the recorder for waveform dumps and backpressure/deadlock analysis
// after a run.
package soc
