package soc

import (
	"fmt"

	"repro/internal/noc"
)

// MsgKind enumerates the SoC's NoC message protocol.
type MsgKind uint64

// Message kinds.
const (
	// MsgWrite carries data words into the destination node's memory.
	MsgWrite MsgKind = iota + 1
	// MsgRead asks the destination to DMA a memory range back to a
	// requester as MsgWrite packets.
	MsgRead
	// MsgExec configures and launches a PE kernel.
	MsgExec
	// MsgDone notifies a node that a kernel or DMA finished.
	MsgDone
)

// KernelOp enumerates PE vector kernels.
type KernelOp uint64

// PE kernel opcodes.
const (
	KVecAdd  KernelOp = iota + 1 // C[i] = A[i] + B[i]
	KVecMul                      // C[i] = A[i] * B[i]
	KMac                         // C[i] += A[i] * B[i]
	KDot                         // C[0] = Σ A[i]*B[i]
	KReduce                      // C[0] = Σ A[i]
	KMaxPool                     // C[i] = max(A[i*M .. i*M+M))
	KDist2                       // C[j] = Σ_d (A[d]-B[j*M+d])², j in 0..N
	KArgMin                      // C[0] = index of min A[0..N)
	KConv1D                      // C[i] = Σ_t A[i+t]*B[t], taps M, outputs N
	KDotF16                      // C[0] = Σ A[i]*B[i] in IEEE binary16
)

// WriteMsg builds a MsgWrite packet payload: header {kind, addr, notify}
// then data. When notify is not NoNotify, the RECEIVER sends a MsgDone to
// that node after the words have landed — completion means delivery, not
// transmission, which is what makes DMA barriers race-free.
func WriteMsg(addr int, data []uint64, notify int) []uint64 {
	p := make([]uint64, 0, len(data)+1)
	p = append(p, uint64(MsgWrite)|uint64(addr)<<8|uint64(notify)<<40)
	return append(p, data...)
}

// ReadMsg builds a MsgRead payload: the destination streams words
// [addr, addr+n) to replyTo's memory at replyAddr; the final chunk
// carries the notify field so the RECEIVING node reports completion
// (node 255 = no notification).
func ReadMsg(addr, n, replyTo, replyAddr, notify int) []uint64 {
	return []uint64{
		uint64(MsgRead) | uint64(addr)<<8,
		uint64(n) | uint64(replyTo)<<24 | uint64(replyAddr)<<32 | uint64(notify)<<56,
	}
}

// ExecMsg builds a MsgExec payload launching kernel op with operand
// addresses a, b, destination c, length n, parameter m, notifying node
// notify with MsgDone code when complete.
func ExecMsg(op KernelOp, a, b, c, n, m, notify, code int) []uint64 {
	return []uint64{
		uint64(MsgExec) | uint64(op)<<8,
		uint64(a) | uint64(b)<<16 | uint64(c)<<32,
		uint64(n) | uint64(m)<<24 | uint64(notify)<<48 | uint64(code)<<56,
	}
}

// DoneMsg builds a MsgDone payload.
func DoneMsg(code int) []uint64 {
	return []uint64{uint64(MsgDone) | uint64(code)<<8}
}

// decoded is a parsed message.
type decoded struct {
	kind MsgKind
	addr int
	data []uint64

	// MsgRead fields.
	n         int
	replyTo   int
	replyAddr int
	notify    int

	// MsgExec fields.
	op      KernelOp
	a, b, c int
	m       int
	code    int
}

func decode(p noc.Packet) decoded {
	if len(p.Payload) == 0 {
		panic("soc: empty packet payload")
	}
	h := p.Payload[0]
	d := decoded{kind: MsgKind(h & 0xff)}
	switch d.kind {
	case MsgWrite:
		d.addr = int(h >> 8 & 0xffffffff)
		d.notify = int(h >> 40 & 0xff)
		d.data = p.Payload[1:]
	case MsgRead:
		d.addr = int(h >> 8)
		w := p.Payload[1]
		d.n = int(w & 0xffffff)
		d.replyTo = int(w >> 24 & 0xff)
		d.replyAddr = int(w >> 32 & 0xffffff)
		d.notify = int(w >> 56 & 0xff)
	case MsgExec:
		d.op = KernelOp(h >> 8 & 0xff)
		w1, w2 := p.Payload[1], p.Payload[2]
		d.a = int(w1 & 0xffff)
		d.b = int(w1 >> 16 & 0xffff)
		d.c = int(w1 >> 32 & 0xffff)
		d.n = int(w2 & 0xffffff)
		d.m = int(w2 >> 24 & 0xffffff)
		d.notify = int(w2 >> 48 & 0xff)
		d.code = int(w2 >> 56 & 0xff)
	case MsgDone:
		d.code = int(h >> 8 & 0xff)
	default:
		panic(fmt.Sprintf("soc: unknown message kind %d", d.kind))
	}
	return d
}

// NoNotify marks a DMA or kernel with no completion notification.
const NoNotify = 255
