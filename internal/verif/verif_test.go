package verif

import "testing"

func TestCoverage(t *testing.T) {
	c := NewCoverage()
	c.Hit("x")
	c.Hit("x")
	c.Hit("y")
	if c.Count("x") != 2 || c.Count("y") != 1 || c.Count("z") != 0 {
		t.Fatal("counts wrong")
	}
	if c.Distinct() != 2 {
		t.Fatalf("distinct = %d", c.Distinct())
	}
	holes := c.Holes([]string{"x", "y", "z", "w"})
	if len(holes) != 2 || holes[0] != "w" || holes[1] != "z" {
		t.Fatalf("holes = %v", holes)
	}
}

func TestScoreboardDetectsLoss(t *testing.T) {
	s := NewScoreboard()
	s.Expect("f", 1)
	s.Expect("f", 2)
	s.Observe("f", 1)
	if errs := s.Drain(); len(errs) != 1 {
		t.Fatalf("drain = %v", errs)
	}
}

func TestScoreboardDetectsReorder(t *testing.T) {
	s := NewScoreboard()
	s.Expect("f", 1)
	s.Expect("f", 2)
	s.Observe("f", 2)
	if !s.Failed() {
		t.Fatal("reorder not flagged")
	}
}

func TestScoreboardDetectsDuplicate(t *testing.T) {
	s := NewScoreboard()
	s.Expect("f", 1)
	s.Observe("f", 1)
	s.Observe("f", 1)
	if !s.Failed() {
		t.Fatal("duplicate not flagged")
	}
}

func TestScoreboardCleanPass(t *testing.T) {
	s := NewScoreboard()
	for i := uint64(0); i < 10; i++ {
		s.Expect("f", i)
	}
	for i := uint64(0); i < 10; i++ {
		s.Observe("f", i)
	}
	if errs := s.Drain(); len(errs) != 0 {
		t.Fatalf("clean run reported %v", errs)
	}
}

// The paper's verification claim: the seeded corner-case bug survives
// nominal-timing simulation but is exposed by stall injection, which also
// covers strictly more timing-interaction states.
func TestStallInjectionFindsSeededBug(t *testing.T) {
	clean := RunStallHunt(0, 1, 150)
	if len(clean.Errors) != 0 {
		t.Fatalf("nominal timing already exposes the bug: %v", clean.Errors)
	}
	if clean.CornerCovered {
		t.Fatal("nominal timing reached the corner state; experiment mistuned")
	}
	found := false
	best := clean
	for seed := int64(1); seed <= 8; seed++ {
		r := RunStallHunt(0.30, seed, 150)
		if r.TimingStates > best.TimingStates {
			best = r
		}
		if r.CornerCovered && len(r.Errors) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("stall injection failed to expose the seeded bug in 8 seeds")
	}
	if best.TimingStates <= clean.TimingStates {
		t.Fatalf("stall injection covered %d states, nominal %d — no coverage gain",
			best.TimingStates, clean.TimingStates)
	}
}

func TestStallHuntDeliversEverythingWhenBugAvoided(t *testing.T) {
	r := RunStallHunt(0, 2, 100)
	if r.Delivered != 200 {
		t.Fatalf("delivered %d/200 under nominal timing", r.Delivered)
	}
}
