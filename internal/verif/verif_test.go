package verif

import (
	"fmt"
	"testing"
)

func TestCoverage(t *testing.T) {
	c := NewCoverage()
	c.Hit("x")
	c.Hit("x")
	c.Hit("y")
	if c.Count("x") != 2 || c.Count("y") != 1 || c.Count("z") != 0 {
		t.Fatal("counts wrong")
	}
	if c.Distinct() != 2 {
		t.Fatalf("distinct = %d", c.Distinct())
	}
	holes := c.Holes([]string{"x", "y", "z", "w"})
	if len(holes) != 2 || holes[0] != "w" || holes[1] != "z" {
		t.Fatalf("holes = %v", holes)
	}
}

func TestScoreboardDetectsLoss(t *testing.T) {
	s := NewScoreboard()
	s.Expect("f", 1)
	s.Expect("f", 2)
	s.Observe("f", 1)
	if errs := s.Drain(); len(errs) != 1 {
		t.Fatalf("drain = %v", errs)
	}
}

func TestScoreboardDetectsReorder(t *testing.T) {
	s := NewScoreboard()
	s.Expect("f", 1)
	s.Expect("f", 2)
	s.Observe("f", 2)
	if !s.Failed() {
		t.Fatal("reorder not flagged")
	}
}

func TestScoreboardDetectsDuplicate(t *testing.T) {
	s := NewScoreboard()
	s.Expect("f", 1)
	s.Observe("f", 1)
	s.Observe("f", 1)
	if !s.Failed() {
		t.Fatal("duplicate not flagged")
	}
}

func TestScoreboardCleanPass(t *testing.T) {
	s := NewScoreboard()
	for i := uint64(0); i < 10; i++ {
		s.Expect("f", i)
	}
	for i := uint64(0); i < 10; i++ {
		s.Observe("f", i)
	}
	if errs := s.Drain(); len(errs) != 0 {
		t.Fatalf("clean run reported %v", errs)
	}
}

// The paper's verification claim: the seeded corner-case bug survives
// nominal-timing simulation but is exposed by stall injection, which also
// covers strictly more timing-interaction states.
func TestStallInjectionFindsSeededBug(t *testing.T) {
	clean := RunStallHunt(0, 1, 150)
	if len(clean.Errors) != 0 {
		t.Fatalf("nominal timing already exposes the bug: %v", clean.Errors)
	}
	if clean.CornerCovered {
		t.Fatal("nominal timing reached the corner state; experiment mistuned")
	}
	found := false
	best := clean
	for seed := int64(1); seed <= 8; seed++ {
		r := RunStallHunt(0.30, seed, 150)
		if r.TimingStates > best.TimingStates {
			best = r
		}
		if r.CornerCovered && len(r.Errors) > 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("stall injection failed to expose the seeded bug in 8 seeds")
	}
	if best.TimingStates <= clean.TimingStates {
		t.Fatalf("stall injection covered %d states, nominal %d — no coverage gain",
			best.TimingStates, clean.TimingStates)
	}
}

func TestStallHuntDeliversEverythingWhenBugAvoided(t *testing.T) {
	r := RunStallHunt(0, 2, 100)
	if r.Delivered != 200 {
		t.Fatalf("delivered %d/200 under nominal timing", r.Delivered)
	}
}

// The interned key table must cover every reachable timing state with
// the historical fmt format, so coverage dumps stay comparable.
func TestTimingStateKeysMatchSprintfFormat(t *testing.T) {
	keys := timingStateKeys(4)
	seen := map[string]bool{}
	for _, aok := range []bool{false, true} {
		for _, bok := range []bool{false, true} {
			for occ := 0; occ <= 4; occ++ {
				want := fmt.Sprintf("a%v_b%v_q%d", aok, bok, occ)
				if got := keys[stateIndex(aok, bok, occ)]; got != want {
					t.Fatalf("key(%v,%v,%d) = %q, want %q", aok, bok, occ, got, want)
				}
				seen[want] = true
			}
		}
	}
	if len(seen) != len(keys) {
		t.Fatalf("%d distinct keys for %d slots — index collision", len(seen), len(keys))
	}
}

// BenchmarkStallHunt locks in the allocation drop from interning the
// per-cycle timing-state coverage keys (run with -benchmem).
func BenchmarkStallHunt(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := RunStallHunt(0.30, int64(i+1), 60)
		if r.Delivered == 0 {
			b.Fatal("stall-hunt run delivered nothing")
		}
	}
}
