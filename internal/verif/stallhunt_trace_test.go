package verif

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// TestTracedStallHuntMatchesUntraced: arming the recorder must not
// change a single observable of the run — tracing is pure observation.
func TestTracedStallHuntMatchesUntraced(t *testing.T) {
	plain := RunStallHunt(0.30, 11, 120)
	traced, rec := RunStallHuntTraced(0.30, 11, 120)
	if !reflect.DeepEqual(plain, traced) {
		t.Fatalf("results diverged:\nuntraced %+v\ntraced   %+v", plain, traced)
	}
	if rec.Len() == 0 {
		t.Fatal("traced run recorded no events")
	}
	for _, p := range rec.Paths() {
		if p == "a" || p == "b" || p == "m" {
			continue
		}
		t.Fatalf("unexpected traced subject %q", p)
	}
}

// TestTracedStallHuntEventStreamDeterministic: the same seed must give
// a bit-identical event stream run to run — the property that keeps
// traced artifacts reproducible from a campaign's failure report.
func TestTracedStallHuntEventStreamDeterministic(t *testing.T) {
	_, a := RunStallHuntTraced(0.30, 3, 100)
	_, b := RunStallHuntTraced(0.30, 3, 100)
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatalf("event streams diverge: %d vs %d events", a.Len(), b.Len())
	}
	var va, vb bytes.Buffer
	if _, _, err := a.WriteVCD(&va); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.WriteVCD(&vb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(va.Bytes(), vb.Bytes()) {
		t.Fatal("VCD dumps differ for identical seeds")
	}
}

// TestCampaignDiagnosisDeterministicAcrossParallelism: the failing
// campaign's auto-attached diagnosis (which re-runs the first failing
// seed traced) must be identical whether the campaign ran on one worker
// or eight.
func TestCampaignDiagnosisDeterministicAcrossParallelism(t *testing.T) {
	seq, _ := RunStallHuntCampaign(0.30, 120, 6, 7, 1)
	par, _ := RunStallHuntCampaign(0.30, 120, 6, 7, 8)
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("campaign aggregate diverges across parallelism:\nseq %+v\npar %+v", seq, par)
	}
	if seq.BugSeeds == 0 {
		t.Skip("no seed exposed the bug at this configuration")
	}
	if seq.FirstBugIndex < 0 || len(seq.Diagnosis) == 0 {
		t.Fatalf("failing campaign carries no diagnosis: index %d, %d lines",
			seq.FirstBugIndex, len(seq.Diagnosis))
	}
	// The diagnosis covers the testbench's three channels.
	text := strings.Join(seq.Diagnosis, "\n")
	for _, ch := range []string{"a:", "b:", "m:"} {
		if !strings.Contains(text, ch) {
			t.Fatalf("diagnosis lacks channel %q:\n%s", ch, text)
		}
	}
}

// TestPassingCampaignHasNoDiagnosis: nominal timing exposes nothing, so
// the campaign must not pay for (or attach) a traced re-run.
func TestPassingCampaignHasNoDiagnosis(t *testing.T) {
	agg, _ := RunStallHuntCampaign(0, 120, 3, 7, 2)
	if agg.BugSeeds != 0 {
		t.Fatalf("nominal timing exposed the bug: %+v", agg)
	}
	if agg.FirstBugIndex != -1 || agg.Diagnosis != nil {
		t.Fatalf("passing campaign carries failure artifacts: index %d, diagnosis %v",
			agg.FirstBugIndex, agg.Diagnosis)
	}
}
