package verif

import (
	"fmt"

	"repro/internal/connections"
	"repro/internal/exp"
	"repro/internal/matchlib"
	"repro/internal/sim"
	"repro/internal/trace"
)

// This file is the paper's stall-injection demonstration (§2.3): a merge
// unit carries a seeded corner-case bug — when both inputs deliver in the
// same cycle while its queue has exactly one free slot, it drops the
// second item. Under nominal timing the testbench's producers alternate,
// so the corner never occurs and directed simulation passes; with random
// stalls injected into the channels (no design or testbench changes),
// deliveries collide and the bug is caught by the scoreboard.

// StallHuntResult summarizes one run of the experiment.
type StallHuntResult struct {
	Errors        []string // scoreboard findings (non-empty = bug exposed)
	TimingStates  int      // distinct (validA, validB, occupancy) states covered
	CornerCovered bool     // the buggy corner state was reached
	Delivered     int
}

// timingStateKeys precomputes the coverage key for every reachable
// (validA, validB, occupancy) timing state, indexed by stateIndex. The
// key strings match the historical fmt.Sprintf("a%v_b%v_q%d", ...)
// format so coverage dumps stay comparable across versions.
func timingStateKeys(qcap int) []string {
	keys := make([]string, 4*(qcap+1))
	for _, aok := range []bool{false, true} {
		for _, bok := range []bool{false, true} {
			for occ := 0; occ <= qcap; occ++ {
				keys[stateIndex(aok, bok, occ)] = fmt.Sprintf("a%v_b%v_q%d", aok, bok, occ)
			}
		}
	}
	return keys
}

// stateIndex maps a (validA, validB, occupancy) state to its key slot.
func stateIndex(aok, bok bool, occ int) int {
	i := occ << 2
	if aok {
		i |= 1
	}
	if bok {
		i |= 2
	}
	return i
}

// StallHuntCampaign aggregates a multi-seed stall hunt: the paper's
// point is that any single stall seed may or may not reach the corner,
// but a cheap campaign of seeds finds the bug with high probability.
type StallHuntCampaign struct {
	Results         []StallHuntResult // per stall seed, in seed-index order
	BugSeeds        int               // seeds whose scoreboard caught the bug
	CornerSeeds     int               // seeds that reached the buggy corner state
	MaxTimingStates int               // best timing-state coverage of any seed
	TotalDelivered  int

	// FirstBugIndex is the lowest seed index whose scoreboard caught the
	// bug (-1 when every seed passed), and FirstBugSeed its derived stall
	// seed — enough to re-run that exact failure standalone.
	FirstBugIndex int
	FirstBugSeed  int64
	// Diagnosis is the channel-level trace analysis of the first failing
	// seed, re-run with tracing armed: one line per channel plus a
	// suspect roll-up (Report.Summary). Empty when no seed failed.
	Diagnosis []string
}

// RunStallHuntCampaign runs the stall-injection testbench under nSeeds
// independently derived stall seeds, one campaign job per seed
// ("seed[i]") sharded over the runner's worker pool. Each job's stall
// seed comes from the campaign seed-derivation rule, so the aggregate
// is bit-identical for any parallelism level. Extra campaign options
// (exp.OnProgress, exp.WithContext, ...) are appended after the fixed
// ones; the job service uses them to stream per-seed progress and to
// cancel a hunt on graceful drain.
func RunStallHuntCampaign(pStall float64, messages, nSeeds int, campaignSeed int64, parallel int, extra ...exp.Option) (StallHuntCampaign, *exp.Summary) {
	jobs := make([]exp.Job, nSeeds)
	for i := range jobs {
		jobs[i] = exp.Job{
			Name: fmt.Sprintf("seed[%d]", i),
			Run: func(c *exp.Ctx) (any, error) {
				return RunStallHunt(pStall, c.Seed, messages), nil
			},
		}
	}
	opts := append([]exp.Option{exp.Named("stallhunt"), exp.Seed(campaignSeed), exp.Parallel(parallel)}, extra...)
	s := exp.Run(jobs, opts...)
	agg := StallHuntCampaign{FirstBugIndex: -1}
	for i, r := range s.Results {
		res, ok := r.Value.(StallHuntResult)
		if !ok {
			continue
		}
		agg.Results = append(agg.Results, res)
		if len(res.Errors) > 0 {
			agg.BugSeeds++
			if agg.FirstBugIndex < 0 {
				agg.FirstBugIndex = i
			}
		}
		if res.CornerCovered {
			agg.CornerSeeds++
		}
		if res.TimingStates > agg.MaxTimingStates {
			agg.MaxTimingStates = res.TimingStates
		}
		agg.TotalDelivered += res.Delivered
	}
	// Auto-diagnose a failing campaign: re-run the first failing seed with
	// the tracer armed and attach the channel-level analysis. The re-run
	// happens here, sequentially, on the job's derived seed — so the
	// diagnosis text is bit-identical for any worker count, and passing
	// campaigns pay nothing.
	if agg.FirstBugIndex >= 0 {
		agg.FirstBugSeed = exp.DeriveSeed(campaignSeed, fmt.Sprintf("seed[%d]", agg.FirstBugIndex))
		_, rec := RunStallHuntTraced(pStall, agg.FirstBugSeed, messages)
		agg.Diagnosis = rec.Analyze(DiagnosisHorizon).Summary()
	}
	return agg, s
}

// DiagnosisHorizon is the deadlock bound (in DUT-clock cycles) used by
// the campaign auto-diagnosis: a channel still holding messages with no
// successful pop in this many trailing cycles is flagged as a suspect.
// The stall-hunt checker gives up after 3000 idle cycles, so a channel
// quiet for 1000 cycles at the end of the run is genuinely wedged, not
// merely slow.
const DiagnosisHorizon = 1000

// RunStallHunt runs the seeded-bug testbench. pStall = 0 reproduces
// nominal timing; pStall > 0 enables the paper's stall injection.
func RunStallHunt(pStall float64, seed int64, messages int) StallHuntResult {
	return runStallHunt(pStall, seed, messages, nil, nil)
}

// RunStallHuntInspect runs the testbench and, after the simulation
// stops, hands the still-live simulator to inspect — the hook the
// static/dynamic cross-validation uses to compare measured channel
// counters against ratecheck's bounds without re-plumbing the
// testbench. The hook sees final state only; it cannot perturb timing.
func RunStallHuntInspect(pStall float64, seed int64, messages int, inspect func(*sim.Simulator)) StallHuntResult {
	return runStallHunt(pStall, seed, messages, nil, inspect)
}

// RunStallHuntTraced runs the same testbench with channel-level tracing
// armed, returning the recorder alongside the result. Feed the recorder
// to Recorder.WriteVCD for a waveform of the failure or to
// Recorder.Analyze for the backpressure/deadlock report. Tracing is pure
// observation, so the result is cycle-identical to RunStallHunt with the
// same arguments.
func RunStallHuntTraced(pStall float64, seed int64, messages int) (StallHuntResult, *trace.Recorder) {
	rec := trace.NewRecorder()
	return runStallHunt(pStall, seed, messages, rec, nil), rec
}

func runStallHunt(pStall float64, seed int64, messages int, rec *trace.Recorder, inspect func(*sim.Simulator)) StallHuntResult {
	s := sim.New()
	if rec != nil {
		s.Arm(rec)
	}
	clk := s.AddClock("clk", 1000, 0)
	cov := NewCoverage()
	cov.Attach(s.Metrics(), "verif/coverage")
	sb := NewScoreboard()

	var opts []connections.Option
	if pStall > 0 {
		opts = append(opts, connections.WithStall(pStall, pStall, seed))
	}

	aOut, aIn := connections.NewOut[int](), connections.NewIn[int]()
	bOut, bIn := connections.NewOut[int](), connections.NewIn[int]()
	mOut, mIn := connections.NewOut[int](), connections.NewIn[int]()
	connections.Buffer(clk, "a", 2, aOut, aIn, opts...)
	connections.Buffer(clk, "b", 2, bOut, bIn, opts...)
	connections.Buffer(clk, "m", 2, mOut, mIn, opts...)

	// Alternating producers: under nominal timing A and B never deliver
	// in the same cycle.
	clk.Spawn("prodA", func(th *sim.Thread) {
		for i := 0; i < messages; i++ {
			aOut.Push(th, i)
			sb.Expect("a", uint64(i))
			th.WaitN(2)
		}
	})
	clk.Spawn("prodB", func(th *sim.Thread) {
		th.Wait() // offset by one cycle
		for i := 0; i < messages; i++ {
			bOut.Push(th, 1_000_000+i)
			sb.Expect("b", uint64(1_000_000+i))
			th.WaitN(2)
		}
	})

	// The DUT: merge with the seeded queue-full corner bug. Under
	// nominal timing the queue hovers near empty and the inputs never
	// collide; only stalled output plus bunched inputs reach the corner.
	const qcap = 4
	q := matchlib.NewFIFO[int](qcap)
	// The (validA, validB, occupancy) timing-state keys are hit every
	// cycle on the DUT's hottest loop; interning the small fixed key set
	// up front keeps the per-cycle cost to two bools and an index instead
	// of a fmt.Sprintf allocation.
	stateKeys := timingStateKeys(qcap)
	clk.Spawn("merge", func(th *sim.Thread) {
		for {
			av, aok := aIn.Peek()
			bv, bok := bIn.Peek()
			cov.Hit(stateKeys[stateIndex(aok, bok, q.Len())])
			if aok && bok && q.Len() == qcap-1 {
				cov.Hit("corner")
			}
			if q.Len() < qcap {
				if aok && bok {
					// BUG: one occupancy check for two enqueues — the
					// second item is dropped when only one slot is free.
					aIn.PopNB(th)
					bIn.PopNB(th)
					q.Push(av)
					if q.Len() < qcap {
						q.Push(bv)
					} // else bv silently lost
				} else if aok {
					aIn.PopNB(th)
					q.Push(av)
				} else if bok {
					bIn.PopNB(th)
					q.Push(bv)
				}
			}
			if !q.Empty() && mOut.PushNB(th, q.Peek()) {
				q.Pop()
			}
			th.Wait()
		}
	})

	delivered := 0
	clk.Spawn("checker", func(th *sim.Thread) {
		idle := 0
		for {
			if v, ok := mIn.PopNB(th); ok {
				idle = 0
				delivered++
				if v >= 1_000_000 {
					sb.Observe("b", uint64(v))
				} else {
					sb.Observe("a", uint64(v))
				}
			} else if idle++; idle > 3000 {
				th.Sim().Stop()
			}
			th.Wait()
		}
	})

	// The testbench is lint-gated like any other design: an elaboration
	// hazard (a future refactor leaving a port unbound, say) surfaces as
	// one structured error instead of a 3000-cycle idle timeout.
	if err := LintThenRun(s, func() error {
		s.Run(sim.Time(uint64(messages)*1_000_000 + 100_000_000))
		return nil
	}); err != nil {
		return StallHuntResult{Errors: []string{err.Error()}}
	}
	if inspect != nil {
		inspect(s)
	}
	return StallHuntResult{
		Errors:        sb.Drain(),
		TimingStates:  cov.Distinct(),
		CornerCovered: cov.Count("corner") > 0,
		Delivered:     delivered,
	}
}
