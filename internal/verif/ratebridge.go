package verif

import (
	"fmt"

	"repro/internal/ratecheck"
	"repro/internal/sim"
)

// This file is the static/dynamic cross-validation bridge: ratecheck
// promises that every bound it reports is an upper bound on what the
// simulation can do, and this bridge holds it to that. After a run,
// CrossCheckRates reads the measured channel and synchronizer counters
// out of the metrics registry and asserts none exceeds its static
// bound. A violation is classified at the source:
//
//   - "design": the measurement beats the hardware port limit itself
//     (more than one token per cycle through an LI channel, occupancy
//     above capacity) — the channel accounting is broken, a real bug in
//     the simulated design or kernel.
//   - "analysis": the measurement is physically plausible but beats a
//     declared-rate bound — ratecheck tightened a bound it had no right
//     to, a bug in the static analysis or in the declarations.
//
// The comparison allows the transient slack a steady-state bound cannot
// see: a channel can deliver its initial buffer fill plus one in-flight
// token beyond rate x cycles, so the assertion is
//
//	transfers <= bound * cycles + capacity + 1
//
// in exact integer arithmetic (cross-multiplied; no float rounding can
// fake a pass or a failure).

// RateViolation is one measured counter exceeding a static bound.
type RateViolation struct {
	Object string // channel or synchronizer name
	Kind   string // "design" or "analysis" (see classification above)
	Detail string
}

func (v RateViolation) String() string {
	return fmt.Sprintf("%s [%s bug] %s", v.Object, v.Kind, v.Detail)
}

// CrossCheckRates compares the simulator's post-run measurements against
// the static result, returning every violation and the number of checks
// performed (so a test can assert the bridge actually saw the design it
// thinks it did). Call it only after the simulation has stopped.
func CrossCheckRates(s *sim.Simulator, r *ratecheck.Result) ([]RateViolation, int) {
	obs := map[[2]string]float64{}
	for _, m := range s.Metrics().Snapshot() {
		obs[[2]string{m.Path, m.Name}] = m.Value
	}
	var vs []RateViolation
	checked := 0

	for _, c := range s.Design().Channels() {
		tf, ok := obs[[2]string{c.Name, "transfers"}]
		if !ok {
			continue // not a counter-bearing channel (never constructed)
		}
		checked++
		transfers := uint64(tf)
		cycles := c.Clock.Cycle()
		cap := uint64(c.Capacity)
		if cap < 1 {
			cap = 1
		}
		slack := cap + 1

		// Hardware port limit first: one token per cycle, full stop.
		if transfers > cycles+slack {
			vs = append(vs, RateViolation{
				Object: c.Name, Kind: "design",
				Detail: fmt.Sprintf("%d transfers in %d cycles beats the one-token-per-cycle port limit (+%d slack)",
					transfers, cycles, slack),
			})
			continue
		}
		// Declared-rate bound: transfers*den <= num*cycles + slack*den.
		b := r.ChannelBound(c.Name)
		if transfers*uint64(b.Den) > uint64(b.Num)*cycles+slack*uint64(b.Den) {
			vs = append(vs, RateViolation{
				Object: c.Name, Kind: "analysis",
				Detail: fmt.Sprintf("%d transfers in %d cycles beats the declared bound %s tok/cycle (+%d slack)",
					transfers, cycles, b, slack),
			})
		}
		// Occupancy can never exceed capacity in either accounting.
		for _, key := range []string{"occupancy", "occupancy_mean"} {
			if occ, ok := obs[[2]string{c.Name, key}]; ok && occ > float64(cap) {
				vs = append(vs, RateViolation{
					Object: c.Name, Kind: "design",
					Detail: fmt.Sprintf("%s %g exceeds capacity %d", key, occ, cap),
				})
			}
		}
	}

	// Synchronizers: one token per slow-side cycle. The slow side is the
	// one that turned fewer cycles in the same wall-clock run.
	for _, sy := range s.Design().Syncs() {
		tf, ok := obs[[2]string{sy.Name, "transfers"}]
		if !ok {
			continue
		}
		checked++
		transfers := uint64(tf)
		slow, fast := sy.Prod.Cycle(), sy.Cons.Cycle()
		if fast < slow {
			slow, fast = fast, slow
		}
		slack := uint64(sy.Depth) + 1
		if transfers > fast+slack {
			// Beats the port limit of even the fast side: accounting bug.
			vs = append(vs, RateViolation{
				Object: sy.Name, Kind: "design",
				Detail: fmt.Sprintf("%d transfers in %d fast-side cycles beats the per-edge port limit (+%d slack)",
					transfers, fast, slack),
			})
		} else if transfers > slow+slack {
			vs = append(vs, RateViolation{
				Object: sy.Name, Kind: "analysis",
				Detail: fmt.Sprintf("%d transfers in %d slow-side cycles beats the one-token-per-slow-cycle crossing bound (+%d slack)",
					transfers, slow, slack),
			})
		}
		if occ, ok := obs[[2]string{sy.Name, "occupancy"}]; ok && occ > float64(sy.Depth) {
			vs = append(vs, RateViolation{
				Object: sy.Name, Kind: "design",
				Detail: fmt.Sprintf("occupancy %g exceeds depth %d", occ, sy.Depth),
			})
		}
	}
	return vs, checked
}
