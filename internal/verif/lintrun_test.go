package verif

import (
	"strings"
	"testing"

	"repro/internal/connections"
	"repro/internal/sim"
)

func TestLintThenRunGatesOnErrors(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 10, 0)
	connections.NewIn[int]().Owned(clk, "tb/widow", "in") // never bound: CON-1

	ran := false
	err := LintThenRun(s, func() error { ran = true; return nil })
	if err == nil || !strings.Contains(err.Error(), "CON-1") {
		t.Fatalf("err = %v, want CON-1", err)
	}
	if ran {
		t.Fatal("run executed despite lint error")
	}
}

func TestLintThenRunPassesCleanDesign(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 10, 0)
	out := connections.NewOut[int]().Owned(clk, "tb/p", "o")
	in := connections.NewIn[int]().Owned(clk, "tb/c", "i")
	connections.Buffer(clk, "tb/ch", 2, out, in)

	ran := false
	if err := LintThenRun(s, func() error { ran = true; return nil }); err != nil {
		t.Fatalf("err = %v", err)
	}
	if !ran {
		t.Fatal("run not executed on clean design")
	}
}
