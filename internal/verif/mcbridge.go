package verif

import (
	"errors"
	"fmt"
	"hash/fnv"

	"repro/internal/mc"
	"repro/internal/sim"
)

// ModelCheckThenRun is the model-checking analogue of LintThenRun: it
// bounded-model-checks the elaborated design's latency-insensitive
// channel graph and uses the verdict to steer the dynamic stall-hunt.
//
//   - Both properties proved on a closed model (every endpoint declared,
//     no environment abstraction): the design cannot deadlock or diverge
//     under any stall schedule the hunt could inject, so the campaign is
//     skipped entirely — a proof subsumes the search it would seed.
//   - Violations found: each counterexample is folded into a
//     deterministic repro seed and the hunt runs over those seeds, so the
//     dynamic campaign starts exactly where the checker already knows the
//     protocol breaks; the checker's error is still returned.
//   - Anything weaker (bounded, inconclusive, or an open model with env
//     endpoints): the proof does not cover the design, so the hunt runs
//     with its caller-chosen seeds (nil).
//
// The returned Result lets callers render the report or replay
// counterexamples regardless of which path was taken.
func ModelCheckThenRun(s *sim.Simulator, opt mc.Options, hunt func(seeds []int64) error) (*mc.Result, error) {
	r := mc.Check(s, opt)
	if r.Err() == nil && r.Proved() && r.Edges > 0 && r.EnvEndpoints == 0 {
		return r, nil
	}
	var seeds []int64
	for _, cx := range r.Counterexamples {
		seeds = append(seeds, CounterexampleSeed(cx))
	}
	return r, errors.Join(r.Err(), hunt(seeds))
}

// CounterexampleSeed folds a counterexample's firing schedule into a
// deterministic stall-injection seed: the same violation always yields
// the same seed, so a checker-found bug becomes a stable regression
// entry in a hunt campaign's seed list. The fold is FNV-1a over the
// schedule's structural content (property, depth, per-cycle fired
// actors), masked to keep the seed positive.
func CounterexampleSeed(cx *mc.Counterexample) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s@%d", cx.Property, cx.Depth)
	for _, st := range cx.Steps {
		for _, f := range st.Fired {
			h.Write([]byte(f))
			h.Write([]byte{0})
		}
		h.Write([]byte{1})
	}
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
