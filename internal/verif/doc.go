// Package verif provides the verification aids of the paper's flow: test
// coverage counters (the substitute for the C++ coverage tool in
// Table 3), scoreboards for loss/duplication/reorder checking, and the
// stall-injection experiment demonstrating that randomly perturbing
// channel timing uncovers corner cases that nominal-timing simulation
// misses (§2.3, §4 Verification).
//
// The stall hunt integrates with channel-level tracing
// (internal/trace): RunStallHuntTraced returns the armed recorder for
// waveform dumps, and a failing RunStallHuntCampaign re-runs its first
// failing seed traced and attaches the per-channel
// backpressure/deadlock diagnosis to the aggregate.
package verif
