package verif

import (
	"repro/internal/lint"
	"repro/internal/sim"
)

// LintThenRun is the lint-gated execution hook: it runs the static
// design-rule checker over the fully elaborated simulator and only calls
// run when no error-severity diagnostic was found. A design that fails
// lint never simulates a cycle — the hang or corruption the rules
// predict is reported as a structured error instead of chased through a
// wedged run. Warnings do not gate; they are the statically undecidable
// hazards (zero-slack rings with VC structure) that a traced run settles.
func LintThenRun(s *sim.Simulator, run func() error) error {
	if err := lint.Check(s).Err(); err != nil {
		return err
	}
	return run()
}
