package verif

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Coverage counts named events — branch arms, FSM states, timing
// interactions. It is the architectural analogue of code-coverage
// instrumentation.
type Coverage struct {
	counts map[string]uint64
}

// NewCoverage returns an empty coverage map.
func NewCoverage() *Coverage { return &Coverage{counts: map[string]uint64{}} }

// Hit records one occurrence of the named event.
func (c *Coverage) Hit(name string) { c.counts[name]++ }

// Count returns the hit count of an event.
func (c *Coverage) Count(name string) uint64 { return c.counts[name] }

// Distinct returns the number of distinct events observed.
func (c *Coverage) Distinct() int { return len(c.counts) }

// Attach surfaces the coverage map through the unified metrics registry
// at the given component path: every event appears as a metric named
// after it, polled at snapshot time. Hit stays a plain map increment, so
// attaching costs nothing during simulation.
func (c *Coverage) Attach(reg *stats.Registry, path string) {
	reg.Source(path, func(emit stats.Emit) {
		for name, n := range c.counts {
			emit(name, float64(n))
		}
	})
}

// Holes returns the events in `universe` that were never hit — the
// coverage holes a verification team would chase.
func (c *Coverage) Holes(universe []string) []string {
	var holes []string
	for _, u := range universe {
		if c.counts[u] == 0 {
			holes = append(holes, u)
		}
	}
	sort.Strings(holes)
	return holes
}

// Scoreboard checks an in-order stream against expectations keyed by
// flow. It reports loss (missing items at drain), duplication, and
// reorder.
type Scoreboard struct {
	expect map[string][]uint64
	errs   []string
}

// NewScoreboard returns an empty scoreboard.
func NewScoreboard() *Scoreboard { return &Scoreboard{expect: map[string][]uint64{}} }

// Expect queues the next expected value for a flow.
func (s *Scoreboard) Expect(flow string, v uint64) {
	s.expect[flow] = append(s.expect[flow], v)
}

// Observe checks an arriving value against the flow's queue head.
func (s *Scoreboard) Observe(flow string, v uint64) {
	q := s.expect[flow]
	if len(q) == 0 {
		s.errs = append(s.errs, fmt.Sprintf("flow %s: unexpected (duplicate?) value %d", flow, v))
		return
	}
	if q[0] != v {
		s.errs = append(s.errs, fmt.Sprintf("flow %s: got %d, want %d (loss or reorder)", flow, v, q[0]))
	}
	s.expect[flow] = q[1:]
}

// Drain reports items still expected — losses — plus any earlier errors.
func (s *Scoreboard) Drain() []string {
	errs := append([]string(nil), s.errs...)
	for flow, q := range s.expect {
		if len(q) > 0 {
			errs = append(errs, fmt.Sprintf("flow %s: %d items never arrived", flow, len(q)))
		}
	}
	sort.Strings(errs)
	return errs
}

// Failed reports whether any check failed so far.
func (s *Scoreboard) Failed() bool { return len(s.errs) > 0 }
