package verif_test

// Differential validation of the static rate analysis: run real
// dynamic workloads — the stall-hunter, a NoC mesh under traffic, a
// GALS crossing, a matchlib serdes chain — and assert the measured
// counters never exceed ratecheck's bounds, then break the analysis on
// purpose and assert the bridge notices.

import (
	"fmt"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/connections"
	"repro/internal/gals"
	"repro/internal/matchlib"
	"repro/internal/noc"
	"repro/internal/ratecheck"
	"repro/internal/sim"
	"repro/internal/verif"
)

func noViolations(t *testing.T, vs []verif.RateViolation) {
	t.Helper()
	for _, v := range vs {
		t.Errorf("bound violated: %s", v)
	}
}

func TestCrossCheckStallHunt(t *testing.T) {
	for _, pStall := range []float64{0, 0.3} {
		t.Run(fmt.Sprintf("p%.1f", pStall), func(t *testing.T) {
			checkedAny := false
			res := verif.RunStallHuntInspect(pStall, 7, 200, func(s *sim.Simulator) {
				r := ratecheck.Check(s)
				if r.Errors() != 0 {
					t.Fatalf("stallhunt testbench fails ratecheck: %v", r.Err())
				}
				vs, checked := verif.CrossCheckRates(s, r)
				noViolations(t, vs)
				if checked < 3 { // channels a, b, m at minimum
					t.Fatalf("checked only %d objects", checked)
				}
				checkedAny = true
			})
			if !checkedAny {
				t.Fatal("inspect hook never ran")
			}
			if res.Delivered == 0 {
				t.Fatal("no traffic delivered; the cross-check proved nothing")
			}
		})
	}
}

func TestCrossCheckMesh(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	const w, h = 3, 3
	n := w * h
	m := noc.BuildMesh(clk, "m", w, h, 2, 4)

	total := 0
	for src := 0; src < n; src++ {
		src := src
		var prog []noc.Packet
		for k := 0; k < 5; k++ {
			dst := (src + 1 + k) % n
			if dst == src {
				continue
			}
			prog = append(prog, noc.Packet{
				Src: src, Dst: dst, ID: uint64(src*100 + k),
				Payload: []uint64{uint64(k), uint64(src)},
			})
			total++
		}
		clk.Spawn(fmt.Sprintf("gen%d", src), func(th *sim.Thread) {
			for _, p := range prog {
				m.Inject[src].Push(th, p)
				th.Wait()
			}
		})
	}
	received := 0
	for dst := 0; dst < n; dst++ {
		dst := dst
		clk.Spawn(fmt.Sprintf("sink%d", dst), func(th *sim.Thread) {
			for {
				if _, ok := m.Eject[dst].PopNB(th); ok {
					if received++; received == total {
						th.Sim().Stop()
					}
				}
				th.Wait()
			}
		})
	}
	s.Run(2_000_000_000)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if received != total {
		t.Fatalf("received %d/%d packets", received, total)
	}

	r := ratecheck.Check(s)
	if len(r.Diags) != 0 {
		t.Fatalf("mesh fails ratecheck: %+v", r.Diags)
	}
	vs, checked := verif.CrossCheckRates(s, r)
	noViolations(t, vs)
	// Every VC link, local link, and endpoint channel carries counters.
	if checked < 50 {
		t.Fatalf("checked only %d channels of a 3x3 mesh", checked)
	}
}

func TestCrossCheckGALSCrossing(t *testing.T) {
	s := sim.New()
	tx := s.AddClock("tx", 1000, 0)
	rx := s.AddClock("rx", 1007, 13)
	f := gals.NewPausibleBisyncFIFO[int](s, "pf", tx, rx, 4, 40)

	const n = 500
	tx.Spawn("producer", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			f.Push(th, i)
			th.Wait()
		}
	})
	rx.Spawn("consumer", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			if f.Pop(th) != i {
				panic("loss across domains")
			}
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}

	r := ratecheck.Check(s)
	if len(r.Crossings) != 1 || r.EndToEnd == nil {
		t.Fatalf("crossings = %+v", r.Crossings)
	}
	vs, checked := verif.CrossCheckRates(s, r)
	noViolations(t, vs)
	if checked < 1 {
		t.Fatal("the synchronizer was not checked")
	}
}

type bridgeMsg struct{ v uint64 }

func (m bridgeMsg) PackBits() bitvec.Vec { return bitvec.FromUint64(m.v, 40) }

// TestCrossCheckSerdes is the sharpest differential test: the serdes
// chain declares real service rates (1 firing per 3 cycles), so the
// measured message throughput is compared against a bound tighter than
// the hardware limit — a wrong balance solver or a wrong bound
// derivation fails here, not just an accounting bug.
func TestCrossCheckSerdes(t *testing.T) {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	ser := matchlib.NewSerializer[bridgeMsg](clk, "ser", 16).DeclareRates(clk, "ser", 3)
	des := matchlib.NewDeserializer(clk, "des", 40, func(b bitvec.Vec) bridgeMsg {
		return bridgeMsg{v: b.Uint64()}
	}).DeclareRates(clk, "des", 3)

	srcOut := connections.NewOut[bridgeMsg]()
	connections.Buffer(clk, "src", 2, srcOut, ser.In)
	connections.Buffer(clk, "link", 3, ser.Out, des.In)
	sinkIn := connections.NewIn[bridgeMsg]()
	connections.Buffer(clk, "sink", 2, des.Out, sinkIn)

	const n = 200
	clk.Spawn("src", func(th *sim.Thread) {
		for i := 0; i < n; i++ {
			srcOut.Push(th, bridgeMsg{v: uint64(i)})
			th.Wait()
		}
	})
	got := 0
	clk.Spawn("sink", func(th *sim.Thread) {
		for got < n {
			if v := sinkIn.Pop(th); v.v != uint64(got) {
				panic("reorder through serdes")
			}
			got++
			th.Wait()
		}
		th.Sim().Stop()
	})
	s.Run(sim.Infinity - 1)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("delivered %d/%d", got, n)
	}

	r := ratecheck.Check(s)
	if len(r.Diags) != 0 {
		t.Fatalf("serdes chain fails ratecheck: %+v", r.Diags)
	}
	// The declared bound must be tight: 1/3 tok/cycle on the message
	// channels, not the default 1.
	if b := r.ChannelBound("sink"); b.Num != 1 || b.Den != 3 {
		t.Fatalf("sink bound = %s, want 1/3", b)
	}
	vs, checked := verif.CrossCheckRates(s, r)
	noViolations(t, vs)
	if checked != 3 { // src, link, sink
		t.Fatalf("checked %d channels, want 3", checked)
	}
	// And the dynamic run must actually approach it, or the comparison
	// is vacuous: n messages need at least 3n cycles.
	if cycles := clk.Cycle(); cycles < 3*n {
		t.Fatalf("run finished in %d cycles, faster than the declared bound allows", cycles)
	}
}

// TestCrossCheckCatchesBrokenAnalysis is the negative control: feed the
// bridge a result claiming an absurdly tight bound and assert it reports
// an analysis bug — proving the bridge compares for real.
func TestCrossCheckCatchesBrokenAnalysis(t *testing.T) {
	verif.RunStallHuntInspect(0, 1, 200, func(s *sim.Simulator) {
		broken := &ratecheck.Result{Channels: []ratecheck.ChannelReport{{
			Name: "m", Clock: "clk", Capacity: 2, MinDepth: 1,
			Bound: sim.NewRat(1, 1000),
		}}}
		vs, _ := verif.CrossCheckRates(s, broken)
		found := false
		for _, v := range vs {
			if v.Object == "m" && v.Kind == "analysis" {
				found = true
			}
		}
		if !found {
			t.Fatalf("bridge accepted an impossible 1/1000 bound: %+v", vs)
		}
	})
}
