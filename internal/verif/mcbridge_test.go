package verif_test

// The model-checking gate: a proof on a closed model skips the dynamic
// stall-hunt outright, a violation seeds it deterministically, and
// anything the checker cannot close falls through to a normal hunt.

import (
	"testing"

	"repro/internal/connections"
	"repro/internal/mc"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/soc"
	"repro/internal/verif"
)

type flit = noc.Flit

// buildClosedChain declares a 1:1 pipeline src -> mid -> sink with every
// endpoint declared: a closed model the checker proves outright.
func buildClosedChain() *sim.Simulator {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	d := s.Design()
	d.DeclareActor("tb/src", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("tb/mid", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("tb/sink", sim.ActorSDF, clk, sim.Rat{})
	srcOut := connections.NewOut[flit]().Owned(clk, "tb/src", "out").Rated(1, 1)
	midIn := connections.NewIn[flit]().Owned(clk, "tb/mid", "in").Rated(1, 1)
	midOut := connections.NewOut[flit]().Owned(clk, "tb/mid", "out").Rated(1, 1)
	sinkIn := connections.NewIn[flit]().Owned(clk, "tb/sink", "in").Rated(1, 1)
	connections.Buffer(clk, "tb/q1", 2, srcOut, midIn)
	connections.Buffer(clk, "tb/q2", 2, midOut, sinkIn)
	return s
}

// buildTokenRing declares the zero-token ring from the mcdeadlock
// fixture, minus the surrounding SoC: wedged from the initial state.
func buildTokenRing() *sim.Simulator {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	d := s.Design()
	d.DeclareActor("tb/a", sim.ActorSDF, clk, sim.Rat{})
	d.DeclareActor("tb/b", sim.ActorSDF, clk, sim.Rat{})
	aOut := connections.NewOut[flit]().Owned(clk, "tb/a", "out").Rated(1, 1)
	aIn := connections.NewIn[flit]().Owned(clk, "tb/a", "in").Rated(1, 1)
	bOut := connections.NewOut[flit]().Owned(clk, "tb/b", "out").Rated(1, 1)
	bIn := connections.NewIn[flit]().Owned(clk, "tb/b", "in").Rated(1, 1)
	connections.Buffer(clk, "tb/ab", 1, aOut, bIn)
	connections.Buffer(clk, "tb/ba", 1, bOut, aIn)
	return s
}

// buildOpenModel wires one anonymous channel: the checker must abstract
// both endpoints into environment actors, so nothing it proves covers
// the real design and the hunt must still run.
func buildOpenModel() *sim.Simulator {
	s := sim.New()
	clk := s.AddClock("clk", 1000, 0)
	out := connections.NewOut[flit]()
	in := connections.NewIn[flit]()
	connections.Buffer(clk, "tb/anon", 2, out, in)
	return s
}

func TestProvedClosedModelSkipsHunt(t *testing.T) {
	hunted := false
	r, err := verif.ModelCheckThenRun(buildClosedChain(), mc.Options{}, func([]int64) error {
		hunted = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Proved() {
		t.Fatalf("closed chain not proved: deadlock=%s equivalence=%s", r.Deadlock.Verdict, r.Equivalence.Verdict)
	}
	if hunted {
		t.Fatal("hunt ran despite a full proof on a closed model")
	}
}

func TestViolationSeedsHuntDeterministically(t *testing.T) {
	run := func() (seeds []int64, err error) {
		_, err = verif.ModelCheckThenRun(buildTokenRing(), mc.Options{}, func(s []int64) error {
			seeds = s
			return nil
		})
		return seeds, err
	}
	s1, err1 := run()
	if err1 == nil {
		t.Fatal("wedged ring produced no error")
	}
	if len(s1) == 0 {
		t.Fatal("no repro seeds derived from the counterexample")
	}
	s2, _ := run()
	if len(s1) != len(s2) {
		t.Fatalf("seed count unstable: %d vs %d", len(s1), len(s2))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("seed %d unstable: %d vs %d", i, s1[i], s2[i])
		}
		if s1[i] <= 0 {
			t.Fatalf("seed %d not positive: %d", i, s1[i])
		}
	}
}

func TestOpenModelAlwaysHunts(t *testing.T) {
	hunted := false
	var got []int64
	r, err := verif.ModelCheckThenRun(buildOpenModel(), mc.Options{}, func(s []int64) error {
		hunted = true
		got = s
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.EnvEndpoints == 0 {
		t.Fatal("anonymous channel did not produce env endpoints")
	}
	if !hunted {
		t.Fatal("open model skipped the hunt")
	}
	if got != nil {
		t.Fatalf("open model without violations passed seeds %v", got)
	}
}

// The gate composes with the shipped fixtures: the seeded SoC-level
// deadlock both errors and seeds the hunt.
func TestFixtureDeadlockSeedsHunt(t *testing.T) {
	for _, tc := range soc.MCFixtures() {
		if tc.Name != "mcdeadlock" {
			continue
		}
		s, _ := tc.Build(soc.DefaultConfig())
		var seeds []int64
		_, err := verif.ModelCheckThenRun(s.Sim, mc.Options{}, func(sd []int64) error {
			seeds = sd
			return nil
		})
		if err == nil || len(seeds) == 0 {
			t.Fatalf("fixture did not gate: err=%v seeds=%v", err, seeds)
		}
		return
	}
	t.Fatal("mcdeadlock fixture missing")
}
