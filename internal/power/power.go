package power

import (
	"fmt"

	"repro/internal/rtl"
	"repro/internal/synth"
)

// Model holds the electrical parameters of the power estimate.
type Model struct {
	VDD           float64 // volts
	ToggleFJ      float64 // switching energy per gate-output toggle, fJ (at VDDRef)
	VDDRef        float64 // voltage the ToggleFJ figure is quoted at
	LeakNWPerGate float64 // leakage per NAND2-equivalent, nW
	SRAMReadPJ    float64 // energy per SRAM word read, pJ
	SRAMWritePJ   float64 // energy per SRAM word write, pJ
}

// Default16nm is the generic power model matching synth.Default16nm.
var Default16nm = Model{
	VDD:           0.80,
	ToggleFJ:      0.45,
	VDDRef:        0.80,
	LeakNWPerGate: 4.0,
	SRAMReadPJ:    4.5,
	SRAMWritePJ:   5.5,
}

// Report is a power estimate for a block.
type Report struct {
	Name      string
	DynamicMW float64
	LeakageMW float64
	SRAMMW    float64
	TotalMW   float64

	Toggles uint64
	Cycles  uint64
}

// scale adjusts switching energy for the operating voltage (CV² scaling).
func (m Model) scale() float64 {
	r := m.VDD / m.VDDRef
	return r * r
}

// FromSimulation estimates power for a netlist exercised by a simulator
// run at freqMHz: dynamic power from observed toggles, leakage from the
// mapped area.
func (m Model) FromSimulation(name string, sim *rtl.Simulator, nl *rtl.Netlist, lib *synth.TechLib, freqMHz float64) Report {
	r := Report{Name: name, Toggles: sim.Toggles, Cycles: sim.Cycles}
	if sim.Cycles > 0 {
		togglesPerCycle := float64(sim.Toggles) / float64(sim.Cycles)
		// mW = toggles/cycle × fJ/toggle × cycles/s ÷ 1e12
		r.DynamicMW = togglesPerCycle * m.ToggleFJ * m.scale() * freqMHz * 1e6 / 1e12
	}
	r.LeakageMW = lib.NetlistArea(nl) * m.LeakNWPerGate / 1e6
	r.TotalMW = r.DynamicMW + r.LeakageMW
	return r
}

// SRAMPower converts access counts over elapsed cycles into average power
// at freqMHz.
func (m Model) SRAMPower(reads, writes, cycles uint64, freqMHz float64) float64 {
	if cycles == 0 {
		return 0
	}
	pjPerCycle := (float64(reads)*m.SRAMReadPJ + float64(writes)*m.SRAMWritePJ) / float64(cycles)
	return pjPerCycle * freqMHz * 1e6 / 1e9 // mW
}

// FromActivity estimates power from aggregate counts when no netlist
// simulation is available (architectural power estimate): assumes a
// fraction of gates toggles each cycle.
func (m Model) FromActivity(name string, gateCount int, activity float64, freqMHz float64, sramReads, sramWrites, cycles uint64) Report {
	r := Report{Name: name, Cycles: cycles}
	r.DynamicMW = float64(gateCount) * activity * m.ToggleFJ * m.scale() * freqMHz * 1e6 / 1e12
	r.LeakageMW = float64(gateCount) * m.LeakNWPerGate / 1e6
	r.SRAMMW = m.SRAMPower(sramReads, sramWrites, cycles, freqMHz)
	r.TotalMW = r.DynamicMW + r.LeakageMW + r.SRAMMW
	return r
}

func (r Report) String() string {
	return fmt.Sprintf("%s: %.3f mW dynamic + %.3f mW leakage + %.3f mW SRAM = %.3f mW",
		r.Name, r.DynamicMW, r.LeakageMW, r.SRAMMW, r.TotalMW)
}
