// Package power is the power-analysis substrate of the flow (the Power
// Analysis stage of the paper's Figure 1): an activity-based model that
// converts netlist switching activity, SRAM access counts, and gate
// counts into dynamic and leakage power estimates for a 16nm-class node.
package power
