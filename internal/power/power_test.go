package power

import (
	"math/rand"
	"testing"

	"repro/internal/hls"
	"repro/internal/rtl"
	"repro/internal/synth"
)

func TestFromSimulation(t *testing.T) {
	d := hls.Optimize(hls.AdderTreeDesign(8, 16))
	nl := synth.Optimize(synth.Map(hls.Pipeline(d, hls.DefaultConstraints())))
	sim, err := rtl.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(1))
	for k := 0; k < 100; k++ {
		in := map[string]uint64{}
		for _, p := range d.Inputs {
			in[p.Name] = r.Uint64() & 0xffff
		}
		sim.Step(in)
	}
	rep := Default16nm.FromSimulation("addtree", sim, nl, &synth.Default16nm, 1100)
	if rep.DynamicMW <= 0 || rep.LeakageMW <= 0 {
		t.Fatalf("non-positive power: %+v", rep)
	}
	if rep.TotalMW != rep.DynamicMW+rep.LeakageMW {
		t.Fatal("total mismatch")
	}

	// Idle stimulus must burn less dynamic power than random stimulus.
	idleSim, err := rtl.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 100; k++ {
		idleSim.Step(map[string]uint64{})
	}
	idle := Default16nm.FromSimulation("idle", idleSim, nl, &synth.Default16nm, 1100)
	if idle.DynamicMW >= rep.DynamicMW {
		t.Fatalf("idle dynamic %.4f >= active %.4f", idle.DynamicMW, rep.DynamicMW)
	}
}

func TestVoltageScaling(t *testing.T) {
	low := Default16nm
	low.VDD = 0.6
	d := hls.Optimize(hls.MACDesign(8))
	nl := synth.Optimize(synth.Map(hls.Pipeline(d, hls.DefaultConstraints())))
	sim, err := rtl.NewSimulator(nl)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(2))
	for k := 0; k < 50; k++ {
		sim.Step(map[string]uint64{"a": r.Uint64(), "b": r.Uint64(), "acc": r.Uint64()})
	}
	hi := Default16nm.FromSimulation("hi", sim, nl, &synth.Default16nm, 1100)
	lo := low.FromSimulation("lo", sim, nl, &synth.Default16nm, 1100)
	want := hi.DynamicMW * (0.6 * 0.6) / (0.8 * 0.8)
	if diff := lo.DynamicMW - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("voltage scaling wrong: %.6f vs %.6f", lo.DynamicMW, want)
	}
}

func TestSRAMPower(t *testing.T) {
	p := Default16nm.SRAMPower(1000, 500, 1000, 1000)
	// (1000*4.5 + 500*5.5)/1000 pJ/cycle = 7.25 pJ/cycle at 1 GHz = 7.25 mW
	if p < 7.2 || p > 7.3 {
		t.Fatalf("SRAM power = %f, want ~7.25", p)
	}
	if Default16nm.SRAMPower(1, 1, 0, 1000) != 0 {
		t.Fatal("zero cycles should give zero power")
	}
}

func TestFromActivity(t *testing.T) {
	rep := Default16nm.FromActivity("blk", 100000, 0.1, 1100, 100, 100, 1000)
	if rep.TotalMW <= 0 || rep.SRAMMW <= 0 {
		t.Fatalf("bad report %+v", rep)
	}
}
