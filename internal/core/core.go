package core

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/hls"
	"repro/internal/physical"
	"repro/internal/power"
	"repro/internal/rtl"
	"repro/internal/stats"
	"repro/internal/synth"
)

// Flow bundles the tool and technology configuration of one compilation
// run, playing the role of the HLS and synthesis scripts in Figure 1.
type Flow struct {
	Lib   *synth.TechLib
	Power power.Model
	Tech  *physical.Tech
	Cons  hls.Constraints
}

// DefaultFlow targets the generic 16nm library at the testchip's 1.1 GHz.
func DefaultFlow() *Flow {
	return &Flow{
		Lib:   &synth.Default16nm,
		Power: power.Default16nm,
		Tech:  &physical.Default16nm,
		Cons:  hls.DefaultConstraints(),
	}
}

// Report is the result of pushing one design through the flow.
type Report struct {
	Design  string
	Ops     int // dataflow operations after optimization
	Stages  int // pipeline stages
	Clock   int // requested period, ps
	Timing  synth.Timing
	Area    synth.AreaReport
	Power   power.Report
	Steps   int // HLS scheduler work items
	Wall    time.Duration
	Netlist *rtl.Netlist

	VectorsChecked int // equivalence vectors verified against the golden model
}

// Run compiles a design end to end: optimize → schedule → map → optimize
// netlist → STA → equivalence-check against the golden interpreter over
// random vectors (collecting switching activity) → power estimate.
func (f *Flow) Run(d *hls.Design, vectors int, seed int64) (Report, error) {
	start := time.Now()
	opt := hls.Optimize(d)
	sched := hls.Pipeline(opt, f.Cons)
	nl := synth.Optimize(synth.Map(sched))
	rep := Report{
		Design:  d.Name,
		Ops:     opt.OpCount(),
		Stages:  sched.Latency + 1,
		Clock:   f.Cons.ClockPS,
		Timing:  synth.STA(nl, f.Lib),
		Area:    synth.Report(nl, f.Lib),
		Steps:   sched.Steps,
		Netlist: nl,
	}

	// RTL cosimulation doubles as verification and activity capture. It
	// runs on the simulator's word-slice fast path (compiled backend
	// when the netlist allows it), keeping the per-vector loop free of
	// per-cycle map allocations.
	sim, err := rtl.NewSimulator(nl)
	if err != nil {
		return rep, fmt.Errorf("core: %s: %w", d.Name, err)
	}
	inPorts := sim.InputPorts()
	outIdx := map[string]int{}
	for i, p := range sim.OutputPorts() {
		outIdx[p.Name] = i
	}
	inw := make([]uint64, len(inPorts))
	outw := make([]uint64, len(sim.OutputPorts()))
	r := rand.New(rand.NewSource(seed))
	var history []map[string]uint64
	for k := 0; k < vectors+sched.Latency; k++ {
		in := map[string]uint64{}
		for _, p := range opt.Inputs {
			in[p.Name] = r.Uint64() & widthMask(p.Width)
		}
		history = append(history, in)
		for i := range inPorts {
			inw[i] = in[inPorts[i].Name]
		}
		sim.StepWords(inw, outw)
		if k < sched.Latency {
			continue
		}
		want := d.Interpret(history[k-sched.Latency])
		for name, w := range want {
			var got uint64
			if gi, ok := outIdx[name]; ok {
				got = outw[gi]
			}
			if got != w {
				return rep, fmt.Errorf("core: %s: netlist/golden mismatch on vector %d output %s: %#x vs %#x",
					d.Name, k, name, got, w)
			}
		}
		rep.VectorsChecked++
	}
	rep.Power = f.Power.FromSimulation(d.Name, sim, nl, f.Lib, rep.Timing.FmaxMHz)
	rep.Wall = time.Since(start)
	return rep, nil
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w) - 1
}

// Publish mirrors the compilation report into a metrics registry under
// flow/<design>, using the same path/name idiom as the simulation-side
// counters so flow QoR and runtime activity share one reporting surface.
func (r Report) Publish(reg *stats.Registry) {
	path := "flow/" + r.Design
	reg.Gauge(path, "ops").Set(float64(r.Ops))
	reg.Gauge(path, "stages").Set(float64(r.Stages))
	reg.Gauge(path, "clock_ps").Set(float64(r.Clock))
	reg.Gauge(path, "gates").Set(float64(r.Area.GateCount))
	reg.Gauge(path, "fmax_mhz").Set(r.Timing.FmaxMHz)
	reg.Gauge(path, "power_mw").Set(r.Power.TotalMW)
	reg.Gauge(path, "vectors_checked").Set(float64(r.VectorsChecked))
}

func (r Report) String() string {
	return fmt.Sprintf("%s: %d ops → %d stages, %d gates, %.0f MHz, %.3f mW (%d vectors verified, %s)",
		r.Design, r.Ops, r.Stages, r.Area.GateCount, r.Timing.FmaxMHz, r.Power.TotalMW, r.VectorsChecked, r.Wall.Round(time.Millisecond))
}

// TestchipPartitions returns the five unique physical partitions of the
// prototype SoC (§4: 15 replicated PEs, two global-memory halves, the
// RISC-V, and I/O).
func TestchipPartitions() []physical.Partition {
	return []physical.Partition{
		{Name: "pe", Gates: 280_000, SRAMKb: 128, Replicas: 15, AsyncIfc: 2},
		{Name: "gmem_l", Gates: 350_000, SRAMKb: 1024, Replicas: 1, AsyncIfc: 2},
		{Name: "gmem_r", Gates: 350_000, SRAMKb: 1024, Replicas: 1, AsyncIfc: 2},
		{Name: "riscv", Gates: 600_000, SRAMKb: 256, Replicas: 1, AsyncIfc: 2},
		{Name: "io", Gates: 150_000, SRAMKb: 16, Replicas: 1, AsyncIfc: 3},
	}
}

// PrintBackendReport renders the §3/§4 back-end comparison: floorplan,
// synchronous vs GALS clocking, and flat vs hierarchical turnaround.
func PrintBackendReport(w io.Writer, f *Flow) {
	parts := TestchipPartitions()
	fp := physical.Plan(parts, f.Tech)
	fmt.Fprintf(w, "Floorplan: die %.2f x %.2f mm, %d placed partitions, %.0f%% utilization\n",
		fp.DieW/1000, fp.DieH/1000, len(fp.Rects), 100*fp.UsedArea/(fp.DieW*fp.DieH))

	syn := physical.SynchronousClockPlan(parts, fp, f.Tech)
	gls := physical.GALSClockPlan(parts, fp, f.Tech)
	fmt.Fprintf(w, "Clocking:\n  %v\n  %v\n", syn, gls)
	fmt.Fprintf(w, "  GALS area overhead: %.2f%% (paper: <3%%)\n", gls.OverheadPct(parts))

	tr := physical.DefaultRuntime.Turnaround(parts)
	fmt.Fprintf(w, "Turnaround: flat %.1f h; hierarchical serial %.1f h; hierarchical parallel %.1f h across %d unique partitions (paper: 12 h)\n",
		tr.FlatHours, tr.HierSerialHours, tr.HierParallelHours, tr.UniquePartitions)

	ref := physical.Refine(parts, TestchipConnectivity(), f.Tech, 2000, 1)
	fmt.Fprintf(w, "Floorplan annealing: cost %.3e -> %.3e (%.1f%% better, %d/%d moves accepted)\n",
		ref.InitialCost, ref.FinalCost, 100*(ref.InitialCost-ref.FinalCost)/ref.InitialCost,
		ref.Accepted, ref.Moves)
}

// TestchipConnectivity is the SoC's inter-partition traffic profile used
// as the floorplanner's wirelength objective.
func TestchipConnectivity() []physical.Connectivity {
	return []physical.Connectivity{
		{A: "pe", B: "gmem_l", Weight: 4},
		{A: "pe", B: "gmem_r", Weight: 4},
		{A: "pe", B: "riscv", Weight: 1},
		{A: "riscv", B: "io", Weight: 2},
		{A: "gmem_l", B: "io", Weight: 1},
	}
}
