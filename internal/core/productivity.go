package core

import (
	"fmt"
	"io"

	"repro/internal/hls"
)

// ProductivityRow estimates design productivity for one unit in gates
// (NAND2 equivalents) per engineer-day — the paper's §4 metric, reported
// there as 2K-20K gates per engineer-day on unique unit-level designs.
//
// Design effort cannot be measured inside a simulation, so the effort
// model is documented and fixed: an engineer produces and verifies
// DescLines lines of high-level (MatchLib/Connections-style) design
// description per day, with LinesPerDay = 40 — a deliberately
// conservative figure that includes verification, per the paper's
// description of tracked design-and-verification effort.
type ProductivityRow struct {
	Unit        string
	Gates       int
	DescLines   int // lines of high-level description (measured proxy)
	EffortDays  float64
	GatesPerDay float64
}

// LinesPerDay is the effort model's constant.
const LinesPerDay = 40.0

// descLines approximates the high-level design-plus-verification
// description size of a unit: the builder statements needed to express
// it (loops counted rolled-up) plus its unit testbench — the paper
// tracked combined design and verification effort.
var descLines = map[string]int{
	"mac":      10,
	"fir":      20,
	"addtree":  10,
	"alu":      18,
	"maxtree":  14,
	"xbar_dst": 36,
	"pe_ctrl":  300,
	"router":   140,
	"scratch":  90,
	"gmem":     180,
}

// ProductivityTable estimates gates/engineer-day for a mix of small
// datapath units (compiled through the flow for exact gate counts) and
// the SoC's larger units (gate counts from the partition inventory).
func ProductivityTable(f *Flow) ([]ProductivityRow, error) {
	row := func(unit string, gates, lines int) ProductivityRow {
		days := float64(lines) / LinesPerDay
		return ProductivityRow{Unit: unit, Gates: gates, DescLines: lines,
			EffortDays: days, GatesPerDay: float64(gates) / days}
	}
	var rows []ProductivityRow
	small := []struct {
		key string
		d   *hls.Design
	}{
		{"mac", hls.MACDesign(32)},
		{"fir", hls.FIRDesign(8, 16)},
		{"addtree", hls.AdderTreeDesign(16, 32)},
		{"alu", hls.ALUDesign(32)},
		{"maxtree", hls.MaxTreeDesign(8, 32)},
		{"xbar_dst", hls.CrossbarDstLoopDesign(16, 32)},
	}
	for _, s := range small {
		rep, err := f.Run(s.d, 4, 7)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row(s.d.Name, rep.Area.GateCount, descLines[s.key]))
	}
	// SoC units: gate counts from the partition inventory, description
	// sizes measured from the corresponding Go models in internal/soc.
	rows = append(rows,
		row("pe_control+dpath", 280_000/2, descLines["pe_ctrl"]),
		row("whvc_router", 24_000, descLines["router"]),
		row("arb_scratchpad", 38_000, descLines["scratch"]),
		row("global_memory", 350_000/4, descLines["gmem"]),
	)
	return rows, nil
}

// PrintProductivity renders the §4 productivity estimate.
func PrintProductivity(w io.Writer, rows []ProductivityRow) {
	fmt.Fprintf(w, "Unit-level productivity estimate (effort model: %.0f verified description lines/day; paper: 2K-20K gates/day)\n", LinesPerDay)
	fmt.Fprintf(w, "%-18s %10s %8s %8s %12s\n", "unit", "gates", "lines", "days", "gates/day")
	lo, hi := rows[0].GatesPerDay, rows[0].GatesPerDay
	for _, r := range rows {
		fmt.Fprintf(w, "%-18s %10d %8d %8.1f %12.0f\n", r.Unit, r.Gates, r.DescLines, r.EffortDays, r.GatesPerDay)
		if r.GatesPerDay < lo {
			lo = r.GatesPerDay
		}
		if r.GatesPerDay > hi {
			hi = r.GatesPerDay
		}
	}
	fmt.Fprintf(w, "range: %.1fK - %.1fK gates/engineer-day\n", lo/1000, hi/1000)
}
