// Package core assembles the end-to-end modular VLSI flow of the paper's
// Figure 1: design capture (internal/hls builder), HLS compilation
// (optimization, scheduling, pipelining), logic synthesis to a mapped
// gate-level netlist (internal/synth), RTL cosimulation against the
// golden model (internal/rtl), power analysis (internal/power), and the
// back-end partition/floorplan/clocking/turnaround models
// (internal/physical). It also hosts the paper-reproduction experiment
// drivers for the QoR, back-end and productivity results.
package core
