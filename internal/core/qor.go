package core

import (
	"fmt"
	"io"

	"repro/internal/hls"
	"repro/internal/synth"
)

// QoRRow compares the flow's mapped gate count against a hand-optimized
// RTL reference for one design — the experiment behind the paper's §2.2
// claim that HLS with appropriate codings lands within ±10% of
// hand-written RTL, and that naive codings do not.
type QoRRow struct {
	Design    string
	HLSGates  int
	HandGates int
	DeltaPct  float64 // (HLS - hand) / hand
	Tuned     bool    // MatchLib-style coding (expected within ±10%)
}

// Hand-optimized reference gate counts in NAND2 equivalents. These are
// textbook structural-RTL figures for the same generic library: ripple
// FA = 8.3/bit, subtractor 9.1/bit, truncated array multiplier 4.3/bit²,
// 2:1 mux 2.25/bit, magnitude comparator 6.8/bit.
func handAdd(w int) float64 { return 8.3 * float64(w) }
func handSub(w int) float64 { return 9.1 * float64(w) }
func handMul(w int) float64 { return 4.3 * float64(w) * float64(w) }
func handMux(w int) float64 { return 2.25 * float64(w) }
func handCmp(w int) float64 { return 6.8 * float64(w) }

// QoRTable runs the datapath-module comparison. Tuned rows use the
// efficient codings MatchLib encapsulates; the naive rows (src-loop
// crossbar, bit-by-bit popcount) show what happens without them.
func QoRTable(f *Flow) ([]QoRRow, error) {
	type entry struct {
		d     *hls.Design
		hand  float64
		tuned bool
	}
	entries := []entry{
		{hls.MACDesign(32), handMul(32) + handAdd(32), true},
		{hls.FIRDesign(8, 16), 8*handMul(16) + 7*handAdd(16), true},
		{hls.AdderTreeDesign(16, 32), 15 * handAdd(32), true},
		{hls.ALUDesign(32), handAdd(32) + handSub(32) + 3*1.25*32 + 0.75*32 + 7*handMux(32), true},
		{hls.MaxTreeDesign(8, 32), 7 * (handCmp(32) + handMux(32)), true},
		{hls.CrossbarDstLoopDesign(16, 32), 16 * 15 * handMux(32), true},
		// Naive codings, measured against the SAME hand references:
		{hls.CrossbarSrcLoopDesign(16, 32), 16 * 15 * handMux(32), false},
		{hls.PopcountDesign(32), handAdd(32) /* FA compressor tree */, false},
	}
	var rows []QoRRow
	for _, e := range entries {
		rep, err := f.Run(e.d, 8, 77)
		if err != nil {
			return nil, err
		}
		row := QoRRow{
			Design:    e.d.Name,
			HLSGates:  rep.Area.GateCount,
			HandGates: int(e.hand + 0.5),
			Tuned:     e.tuned,
		}
		row.DeltaPct = 100 * (float64(row.HLSGates) - e.hand) / e.hand
		rows = append(rows, row)
	}
	return rows, nil
}

// PrintQoRTable renders the §2.2 table.
func PrintQoRTable(w io.Writer, rows []QoRRow) {
	fmt.Fprintln(w, "HLS vs hand-optimized RTL, mapped NAND2-equivalent gates (paper §2.2: ±10% with MatchLib codings)")
	fmt.Fprintf(w, "%-18s %10s %10s %8s  %s\n", "design", "HLS", "hand", "delta", "coding")
	for _, r := range rows {
		style := "MatchLib-tuned"
		if !r.Tuned {
			style = "naive"
		}
		fmt.Fprintf(w, "%-18s %10d %10d %+7.1f%%  %s\n", r.Design, r.HLSGates, r.HandGates, r.DeltaPct, style)
	}
}

// XbarSweepRow is one point of the §2.4 crossbar case study: src-loop vs
// dst-loop area and scheduling effort as the lane count grows.
type XbarSweepRow struct {
	Lanes        int
	SrcGates     int
	DstGates     int
	PenaltyPct   float64
	SrcSchedWork int
	DstSchedWork int
}

// XbarSweep measures the crossbar codings across sizes with the given
// data width.
func XbarSweep(f *Flow, lanes []int, width int) ([]XbarSweepRow, error) {
	var rows []XbarSweepRow
	for _, n := range lanes {
		srcD := hls.Optimize(hls.CrossbarSrcLoopDesign(n, width))
		dstD := hls.Optimize(hls.CrossbarDstLoopDesign(n, width))
		srcS := hls.Pipeline(srcD, f.Cons)
		dstS := hls.Pipeline(dstD, f.Cons)
		srcA := synth.Report(synth.Optimize(synth.Map(srcS)), f.Lib)
		dstA := synth.Report(synth.Optimize(synth.Map(dstS)), f.Lib)
		rows = append(rows, XbarSweepRow{
			Lanes:        n,
			SrcGates:     srcA.GateCount,
			DstGates:     dstA.GateCount,
			PenaltyPct:   100 * (srcA.Total - dstA.Total) / dstA.Total,
			SrcSchedWork: srcS.Steps,
			DstSchedWork: dstS.Steps,
		})
	}
	return rows, nil
}

// PrintXbarSweep renders the §2.4 case-study sweep.
func PrintXbarSweep(w io.Writer, rows []XbarSweepRow) {
	fmt.Fprintln(w, "Crossbar case study (§2.4): src-loop vs dst-loop coding through HLS + synthesis")
	fmt.Fprintf(w, "%-6s %12s %12s %9s %12s %12s\n", "lanes", "src gates", "dst gates", "penalty", "src sched", "dst sched")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6d %12d %12d %8.1f%% %12d %12d\n",
			r.Lanes, r.SrcGates, r.DstGates, r.PenaltyPct, r.SrcSchedWork, r.DstSchedWork)
	}
}
