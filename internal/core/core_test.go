package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/hls"
)

func TestFlowRunVerifiesEquivalence(t *testing.T) {
	f := DefaultFlow()
	rep, err := f.Run(hls.MACDesign(16), 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VectorsChecked != 25 {
		t.Fatalf("checked %d vectors, want 25", rep.VectorsChecked)
	}
	if rep.Area.GateCount == 0 || rep.Timing.FmaxMHz <= 0 || rep.Power.TotalMW <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	if !strings.Contains(rep.String(), "mac_16") {
		t.Fatalf("report string: %s", rep)
	}
}

// The §2.2 experiment: MatchLib-tuned codings land within ±10% of hand
// RTL; the naive codings exceed it — both halves of the paper's claim.
func TestQoRTableBands(t *testing.T) {
	rows, err := QoRTable(DefaultFlow())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 8 {
		t.Fatalf("only %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Tuned {
			if r.DeltaPct > 10 || r.DeltaPct < -10 {
				t.Errorf("%s: tuned coding delta %+.1f%% outside ±10%%", r.Design, r.DeltaPct)
			}
		} else {
			if r.DeltaPct <= 10 {
				t.Errorf("%s: naive coding delta %+.1f%% — expected to exceed +10%%", r.Design, r.DeltaPct)
			}
		}
	}
}

// The §2.4 sweep: the src-loop penalty holds across sizes and its
// scheduling effort grows faster.
func TestXbarSweepShape(t *testing.T) {
	rows, err := XbarSweep(DefaultFlow(), []int{4, 8, 16, 32}, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if r.PenaltyPct < 5 {
			t.Errorf("lanes=%d: penalty %.1f%% too small", r.Lanes, r.PenaltyPct)
		}
		if r.SrcSchedWork <= r.DstSchedWork {
			t.Errorf("lanes=%d: src scheduling work %d <= dst %d", r.Lanes, r.SrcSchedWork, r.DstSchedWork)
		}
		if i > 0 {
			prev := rows[i-1]
			srcGrowth := float64(r.SrcSchedWork) / float64(prev.SrcSchedWork)
			dstGrowth := float64(r.DstSchedWork) / float64(prev.DstSchedWork)
			if srcGrowth <= dstGrowth {
				t.Errorf("lanes=%d: src scheduling growth %.2f <= dst %.2f — scalability gap missing",
					r.Lanes, srcGrowth, dstGrowth)
			}
		}
	}
	// The paper's headline configuration: 32-lane 32-bit, ~25% penalty.
	last := rows[len(rows)-1]
	if last.Lanes != 32 || last.PenaltyPct < 10 || last.PenaltyPct > 45 {
		t.Errorf("32-lane penalty %.1f%% far from the paper's ~25%%", last.PenaltyPct)
	}
}

func TestProductivityRange(t *testing.T) {
	rows, err := ProductivityTable(DefaultFlow())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := rows[0].GatesPerDay, rows[0].GatesPerDay
	for _, r := range rows {
		if r.GatesPerDay <= 0 {
			t.Fatalf("%s: non-positive productivity", r.Unit)
		}
		if r.GatesPerDay < lo {
			lo = r.GatesPerDay
		}
		if r.GatesPerDay > hi {
			hi = r.GatesPerDay
		}
	}
	// The paper's reported range is 2K-20K gates/engineer-day; the model
	// must land in that band.
	if lo < 2_000 || hi > 21_000 {
		t.Fatalf("productivity range %.0f-%.0f outside the paper's 2K-20K", lo, hi)
	}
	var buf bytes.Buffer
	PrintProductivity(&buf, rows)
	if !strings.Contains(buf.String(), "gates/engineer-day") {
		t.Fatal("printout missing summary")
	}
}

func TestBackendReportPrints(t *testing.T) {
	var buf bytes.Buffer
	PrintBackendReport(&buf, DefaultFlow())
	out := buf.String()
	for _, want := range []string{"Floorplan", "GALS area overhead", "Turnaround", "5 unique partitions"} {
		if !strings.Contains(out, want) {
			t.Fatalf("backend report missing %q:\n%s", want, out)
		}
	}
}

func TestFlowRejectsNothing(t *testing.T) {
	// A design whose netlist disagrees with the golden model can only be
	// produced by a flow bug; make sure equivalence checking is active by
	// verifying the counted vectors.
	rep, err := DefaultFlow().Run(hls.PopcountDesign(16), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.VectorsChecked != 10 {
		t.Fatalf("equivalence checking inactive: %d vectors", rep.VectorsChecked)
	}
}
