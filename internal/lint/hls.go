package lint

import (
	"fmt"

	"repro/internal/hls"
)

// CheckHLS lints a captured dataflow design before it enters the HLS
// flow — the front-end sibling of Check. The IR's SSA construction makes
// cycles impossible, so the rules here are the remaining front-end
// hazards:
//
//	HLS-1  the design fails structural validation (error)
//	HLS-2  an operation's result is never used and never output (warning)
//	HLS-3  two input or output ports share a name (error)
func CheckHLS(d *hls.Design) *Result {
	r := &Result{}
	if err := d.Validate(); err != nil {
		r.add(Diag{
			Rule: "HLS-1", Severity: SevError, Path: d.Name,
			Message: err.Error(),
		})
		// A design that fails validation may index out of its own op
		// list; stop before the structural passes trip over it.
		sortDiags(r.Diags)
		return r
	}
	used := make([]bool, len(d.Ops))
	for _, op := range d.Ops {
		for _, a := range op.Args {
			used[a.ID] = true
		}
	}
	for _, op := range d.Ops {
		if op.Kind == hls.OpOutput || used[op.ID] {
			continue
		}
		r.add(Diag{
			Rule: "HLS-2", Severity: SevWarning, Path: d.Name,
			Message: fmt.Sprintf("op %d (%v) computes a value no operation or output consumes", op.ID, op.Kind),
			Hint:    "dead logic still costs area and schedule slots; delete it or wire it to an output",
		})
	}
	for _, ports := range [][]*hls.Op{d.Inputs, d.Outputs} {
		seen := make(map[string]int)
		for _, p := range ports {
			if prev, ok := seen[p.Name]; ok {
				r.add(Diag{
					Rule: "HLS-3", Severity: SevError, Path: d.Name,
					Message: fmt.Sprintf("%v ports %d and %d both named %q", p.Kind, prev, p.ID, p.Name),
				})
				continue
			}
			seen[p.Name] = p.ID
		}
	}
	sortDiags(r.Diags)
	return r
}
