package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// The deadlock passes view the design as a component graph: one node per
// owning component path, one directed edge per channel whose endpoints
// both declared ownership (anonymous endpoints give the checker no
// connectivity to reason about). An edge's slack is the number of
// in-flight tokens the channel can absorb before the producer blocks on
// the consumer:
//
//	slack = (capacity − 1) + retiming latency
//
// A cycle whose total slack is zero can wedge with every component
// waiting on its downstream neighbour. Since per-edge slack is never
// negative (capacity is clamped to ≥ 1), a zero-slack cycle is exactly a
// cycle of zero-slack edges — so one strongly-connected-components pass
// over the slack-0 subgraph finds every such cycle, and an SCC made
// entirely of combinational/bypass edges is the stronger hazard: a
// zero-latency loop where each endpoint's handshake depends
// combinationally on the other's (DLK-1). Anything else cyclic in the
// subgraph is a buffered zero-slack cycle (DLK-2), reported as a warning
// because component-granularity analysis cannot see VC/dateline
// structure that makes some such rings live.

type dlkEdge struct {
	from, to string
	ch       *sim.ChannelDecl
}

func combKind(kind string) bool { return kind == "Combinational" || kind == "Bypass" }

func edgeSlack(c *sim.ChannelDecl) int {
	cap := c.Capacity
	if cap < 1 {
		cap = 1
	}
	return cap - 1 + c.Latency
}

// checkDeadlock runs DLK-1 and DLK-2.
func checkDeadlock(d *sim.Design, r *Result) {
	var edges []dlkEdge
	for _, c := range d.Channels() {
		if c.Prod == nil || c.Cons == nil || c.Terminated {
			continue
		}
		if edgeSlack(c) > 0 {
			continue
		}
		edges = append(edges, dlkEdge{from: c.Prod.Path, to: c.Cons.Path, ch: c})
	}
	for _, scc := range cyclicSCCs(edges) {
		inSCC := make(map[string]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		var chans []string
		allComb := true
		for _, e := range edges {
			if inSCC[e.from] && inSCC[e.to] {
				chans = append(chans, e.ch.Name)
				if !combKind(e.ch.Kind) {
					allComb = false
				}
			}
		}
		sort.Slice(chans, func(i, j int) bool { return stats.PathLess(chans[i], chans[j]) })
		if allComb {
			r.add(Diag{
				Rule: "DLK-1", Severity: SevError, Path: scc[0],
				Message: fmt.Sprintf("zero-latency combinational loop through %s (channels %s)",
					strings.Join(scc, " -> "), strings.Join(chans, ", ")),
				Hint:     "break the loop with a Pipeline or Buffer channel",
				Channels: chans,
			})
		} else {
			r.add(Diag{
				Rule: "DLK-2", Severity: SevWarning, Path: scc[0],
				Message: fmt.Sprintf("zero-slack channel cycle through %s (channels %s): every buffer on the cycle is a single-entry FIFO, so the ring can wedge when full",
					strings.Join(scc, " -> "), strings.Join(chans, ", ")),
				Hint:     "deepen one buffer on the cycle, or confirm liveness with a traced run (trace.Analyze)",
				Channels: chans,
			})
		}
	}
}

// cyclicSCCs runs Tarjan's strongly-connected-components algorithm over
// the edge list and returns only the cyclic components — size ≥ 2, or a
// single node with a self-edge — each with its members in natural path
// order, and the components themselves ordered by their first member.
func cyclicSCCs(edges []dlkEdge) [][]string {
	adj := make(map[string][]string)
	selfLoop := make(map[string]bool)
	var nodes []string
	addNode := func(n string) {
		if _, ok := adj[n]; !ok {
			adj[n] = nil
			nodes = append(nodes, n)
		}
	}
	for _, e := range edges {
		addNode(e.from)
		addNode(e.to)
		adj[e.from] = append(adj[e.from], e.to)
		if e.from == e.to {
			selfLoop[e.from] = true
		}
	}
	// Deterministic traversal: nodes and adjacency in natural path order.
	sort.Slice(nodes, func(i, j int) bool { return stats.PathLess(nodes[i], nodes[j]) })
	for _, n := range nodes {
		next := adj[n]
		sort.Slice(next, func(i, j int) bool { return stats.PathLess(next[i], next[j]) })
	}

	index := make(map[string]int, len(nodes))
	low := make(map[string]int, len(nodes))
	onStack := make(map[string]bool, len(nodes))
	var stack []string
	var sccs [][]string
	next := 1

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if index[w] == 0 {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			if len(scc) > 1 || selfLoop[scc[0]] {
				sort.Slice(scc, func(i, j int) bool { return stats.PathLess(scc[i], scc[j]) })
				sccs = append(sccs, scc)
			}
		}
	}
	for _, n := range nodes {
		if index[n] == 0 {
			strongconnect(n)
		}
	}
	sort.Slice(sccs, func(i, j int) bool { return stats.PathLess(sccs[i][0], sccs[j][0]) })
	return sccs
}

// CrossReference joins the static result against a dynamic trace report:
// a DLK-2 warning whose cycle contains a channel the backpressure
// diagnoser already marked as a deadlock suspect stops being a maybe —
// the ring demonstrably wedged — so the diagnostic is promoted to an
// error. It returns the number of promotions.
func CrossReference(r *Result, rep *trace.Report) int {
	if rep == nil || len(rep.Suspects) == 0 {
		return 0
	}
	suspect := make(map[string]bool, len(rep.Suspects))
	for _, s := range rep.Suspects {
		suspect[s] = true
	}
	n := 0
	for i := range r.Diags {
		d := &r.Diags[i]
		if d.Rule != "DLK-2" || d.Severity == SevError {
			continue
		}
		for _, ch := range d.Channels {
			if suspect[ch] {
				d.Severity = SevError
				d.Message += fmt.Sprintf("; the dynamic trace marks %s as a deadlock suspect", ch)
				n++
				break
			}
		}
	}
	if n > 0 {
		sortDiags(r.Diags)
	}
	return n
}
