// Package lint is the static design-rule checker: it elaborates the
// channel/clock graph a build recorded in the simulator's design side
// table (sim.Design) and reports CDC, deadlock, and connectivity hazards
// before any cycle is simulated. The paper's flow front-loads exactly
// this class of check — an unsynchronized clock-domain crossing or a
// zero-slack channel cycle is cheap to name at elaboration time and
// expensive to chase as a hung simulation.
//
// Rules:
//
//	CDC-1  channel endpoints on different clocks without a synchronizer (error)
//	CDC-2  synchronizer joining a clock domain to itself (warning)
//	DLK-1  cycle of zero-latency combinational/bypass channels (error)
//	DLK-2  zero-slack buffered channel cycle (warning; error when a
//	       dynamic trace report lists a member channel as a suspect)
//	CON-1  port declared with ownership but never bound (error)
//	CON-2  bound channel with exactly one owned endpoint, not terminated (warning)
//	CON-3  channel declared with capacity < 1 (error)
//	CON-4  two design objects claiming the same name (error)
//
// Ownership declarations (connections.In/Out.Owned) are opt-in, and every
// rule fires only on declared structure — raw testbench ports lint
// silently — so the checker never needs a whitelist to stay quiet on
// legitimate harness wiring.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Severity grades a diagnostic. Errors fail a lint-gated build; warnings
// are advisory (statically undecidable hazards like dateline rings).
type Severity int

// Severities, ordered so that the more severe compares greater.
const (
	SevWarning Severity = iota
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// Diag is one structured diagnostic.
type Diag struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Path     string   `json:"path"` // component/channel path the diagnostic anchors to
	Message  string   `json:"message"`
	Hint     string   `json:"hint,omitempty"`
	Channels []string `json:"channels,omitempty"` // channels implicated (DLK cycles)
}

// Result is the outcome of one lint pass.
type Result struct {
	Diags []Diag

	// What the elaborated design graph contained.
	Ports      int
	Channels   int
	Syncs      int
	Partitions int
}

func (r *Result) add(d Diag) { r.Diags = append(r.Diags, d) }

// Errors counts error-severity diagnostics.
func (r *Result) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == SevError {
			n++
		}
	}
	return n
}

// Warnings counts warning-severity diagnostics.
func (r *Result) Warnings() int { return len(r.Diags) - r.Errors() }

// Summary renders the one-line pass/fail overview.
func (r *Result) Summary() string {
	return fmt.Sprintf("lint: %d channels, %d ports, %d synchronizers, %d partitions: %d errors, %d warnings",
		r.Channels, r.Ports, r.Syncs, r.Partitions, r.Errors(), r.Warnings())
}

// Err returns nil when the result has no error-severity diagnostics, and
// otherwise an error naming the first one — the fail-fast hook for
// lint-gated runs.
func (r *Result) Err() error {
	for _, d := range r.Diags {
		if d.Severity == SevError {
			more := ""
			if n := r.Errors(); n > 1 {
				more = fmt.Sprintf(" (and %d more)", n-1)
			}
			return fmt.Errorf("lint: %s %s: %s%s", d.Rule, d.Path, d.Message, more)
		}
	}
	return nil
}

// Check elaborates the simulator's design graph and runs every rule
// pass. It never starts the simulation; a design that is built and
// linted but not run pays nothing beyond the construction-time appends.
func Check(s *sim.Simulator) *Result {
	d := s.Design()
	r := &Result{
		Ports:      len(d.Ports()),
		Channels:   len(d.Channels()),
		Syncs:      len(d.Syncs()),
		Partitions: len(d.Partitions()),
	}
	checkConnectivity(d, r)
	checkCDC(d, r)
	checkDeadlock(d, r)
	sortDiags(r.Diags)
	return r
}

// sortDiags orders diagnostics severity-first (errors before warnings),
// then by path in the registry's natural order, then rule — fully
// deterministic for golden tests.
func sortDiags(ds []Diag) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Severity != ds[j].Severity {
			return ds[i].Severity > ds[j].Severity
		}
		if ds[i].Path != ds[j].Path {
			return stats.PathLess(ds[i].Path, ds[j].Path)
		}
		if ds[i].Rule != ds[j].Rule {
			return ds[i].Rule < ds[j].Rule
		}
		return ds[i].Message < ds[j].Message
	})
}

// checkConnectivity runs CON-1 through CON-4.
func checkConnectivity(d *sim.Design, r *Result) {
	for _, p := range d.Ports() {
		if !p.Bound {
			r.add(Diag{
				Rule: "CON-1", Severity: SevError, Path: p.String(),
				Message: fmt.Sprintf("%s port declared by %s is never bound to a channel", p.Dir, p.Path),
				Hint:    "bind it with connections.Buffer/Pipeline/Bypass/Combinational, or drop the Owned declaration",
			})
		}
	}
	for _, c := range d.Channels() {
		if c.Capacity < 1 {
			r.add(Diag{
				Rule: "CON-3", Severity: SevError, Path: c.Name,
				Message: fmt.Sprintf("channel declared with capacity %d; the runtime clamps it to 1", c.Capacity),
			})
		}
		if c.Terminated {
			continue
		}
		switch {
		case c.Prod != nil && c.Cons == nil:
			r.add(Diag{
				Rule: "CON-2", Severity: SevWarning, Path: c.Name,
				Message: fmt.Sprintf("producer %s drives a channel whose consumer end is anonymous", c.Prod),
				Hint:    "pass connections.Terminator() if the stub is intentional, or declare the consumer with Owned",
			})
		case c.Cons != nil && c.Prod == nil:
			r.add(Diag{
				Rule: "CON-2", Severity: SevWarning, Path: c.Name,
				Message: fmt.Sprintf("consumer %s reads a channel whose producer end is anonymous", c.Cons),
				Hint:    "pass connections.Terminator() if the stub is intentional, or declare the producer with Owned",
			})
		}
	}
	for _, col := range d.Collisions() {
		r.add(Diag{
			Rule: "CON-4", Severity: SevError, Path: col.Name,
			Message: fmt.Sprintf("name claimed twice: first as %s, again as %s; the component registry merges equal paths silently", col.First, col.Second),
		})
	}
}

// checkCDC runs CDC-1 and CDC-2. A channel commits on exactly one clock,
// so any channel whose declared endpoints live on other clocks is an
// unsynchronized crossing: data would be sampled by a domain that shares
// no timing relationship with the writer. The only legal crossings are
// the registered synchronizer edges (gals FIFOs).
func checkCDC(d *sim.Design, r *Result) {
	for _, c := range d.Channels() {
		clocks := []*sim.Clock{c.Clock}
		seen := map[*sim.Clock]bool{c.Clock: true}
		for _, p := range []*sim.PortDecl{c.Prod, c.Cons} {
			if p != nil && !seen[p.Clock] {
				seen[p.Clock] = true
				clocks = append(clocks, p.Clock)
			}
		}
		if len(clocks) < 2 {
			continue
		}
		var ends []string
		if c.Prod != nil {
			ends = append(ends, fmt.Sprintf("producer %s on clock %s", c.Prod, c.Prod.Clock.Name()))
		}
		if c.Cons != nil {
			ends = append(ends, fmt.Sprintf("consumer %s on clock %s", c.Cons, c.Cons.Clock.Name()))
		}
		ends = append(ends, fmt.Sprintf("channel committed on clock %s", c.Clock.Name()))
		msg := "unsynchronized clock-domain crossing: " + strings.Join(ends, ", ")
		if pp, cp := partitionOf(d, c.Prod), partitionOf(d, c.Cons); pp != "" && cp != "" && pp != cp {
			msg += fmt.Sprintf(" (partitions %s and %s)", pp, cp)
		}
		r.add(Diag{
			Rule: "CDC-1", Severity: SevError, Path: c.Name,
			Message: msg,
			Hint:    "cross domains through gals.NewPausibleBisyncFIFO or gals.NewBruteForceSyncFIFO",
		})
	}
	for _, s := range d.Syncs() {
		if s.Prod == s.Cons {
			r.add(Diag{
				Rule: "CDC-2", Severity: SevWarning, Path: s.Name,
				Message: fmt.Sprintf("%s synchronizer joins clock %s to itself", s.Style, s.Prod.Name()),
				Hint:    "a same-domain FIFO costs crossing latency for nothing; use a connections.Buffer channel",
			})
		}
	}
}

// partitionOf returns the clock-region label covering a declared
// endpoint: the longest marked partition path that is the endpoint's
// component path or a hierarchical ancestor of it.
func partitionOf(d *sim.Design, p *sim.PortDecl) string {
	if p == nil {
		return ""
	}
	best := ""
	for _, part := range d.Partitions() {
		if part.Path == p.Path || strings.HasPrefix(p.Path, part.Path+"/") {
			if len(part.Path) > len(best) {
				best = part.Path
			}
		}
	}
	return best
}
