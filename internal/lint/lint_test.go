package lint_test

import (
	"strings"
	"testing"

	"repro/internal/connections"
	"repro/internal/gals"
	"repro/internal/hls"
	"repro/internal/lint"
	"repro/internal/sim"
	"repro/internal/trace"
)

// one returns the single diagnostic with the given rule, failing the
// test when the count differs.
func one(t *testing.T, r *lint.Result, rule string) lint.Diag {
	t.Helper()
	var got []lint.Diag
	for _, d := range r.Diags {
		if d.Rule == rule {
			got = append(got, d)
		}
	}
	if len(got) != 1 {
		t.Fatalf("want exactly one %s diagnostic, got %d (all: %+v)", rule, len(got), r.Diags)
	}
	return got[0]
}

func TestCDC1UnsynchronizedCrossing(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 10, 0)
	b := s.AddClock("b", 13, 0)
	out := connections.NewOut[int]().Owned(a, "x", "o")
	in := connections.NewIn[int]().Owned(b, "y", "i")
	connections.Buffer(a, "ch", 2, out, in)

	r := lint.Check(s)
	d := one(t, r, "CDC-1")
	if d.Severity != lint.SevError {
		t.Fatalf("CDC-1 severity = %v, want error", d.Severity)
	}
	// The acceptance bar: the diagnostic names both endpoint paths.
	for _, want := range []string{"x.o", "y.i", "clock a", "clock b"} {
		if !strings.Contains(d.Message, want) {
			t.Errorf("CDC-1 message %q missing %q", d.Message, want)
		}
	}
	if r.Errors() != 1 {
		t.Fatalf("Errors() = %d, want 1", r.Errors())
	}
	if err := r.Err(); err == nil || !strings.Contains(err.Error(), "CDC-1") {
		t.Fatalf("Err() = %v, want CDC-1 error", err)
	}
}

func TestCDC1NamesPartitions(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 10, 0)
	b := s.AddClock("b", 13, 0)
	s.Design().MarkPartition("left", a)
	s.Design().MarkPartition("right", b)
	out := connections.NewOut[int]().Owned(a, "left/x", "o")
	in := connections.NewIn[int]().Owned(b, "right/y", "i")
	connections.Buffer(a, "ch", 2, out, in)

	d := one(t, lint.Check(s), "CDC-1")
	if !strings.Contains(d.Message, "partitions left and right") {
		t.Fatalf("CDC-1 message %q does not name the partitions", d.Message)
	}
}

func TestCDCSilentOnSynchronizedCrossing(t *testing.T) {
	// The legal crossing pattern: same-clock channels on each side, the
	// registered synchronizer in between (soc.cdcLink's shape).
	s := sim.New()
	a := s.AddClock("a", 10, 0)
	b := s.AddClock("b", 13, 0)
	aOut := connections.NewOut[int]().Owned(a, "tx", "o")
	aIn := connections.NewIn[int]().Owned(a, "link", "tx")
	connections.Buffer(a, "link/a", 2, aOut, aIn)
	gals.NewPausibleBisyncFIFO[int](s, "link", a, b, 4, 40)
	bOut := connections.NewOut[int]().Owned(b, "link", "rx")
	bIn := connections.NewIn[int]().Owned(b, "rx", "i")
	connections.Buffer(b, "link/b", 2, bOut, bIn)

	r := lint.Check(s)
	if len(r.Diags) != 0 {
		t.Fatalf("synchronized crossing produced diagnostics: %+v", r.Diags)
	}
	if r.Syncs != 1 {
		t.Fatalf("Syncs = %d, want 1", r.Syncs)
	}
}

func TestCDC2SameDomainSynchronizer(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 10, 0)
	gals.NewBruteForceSyncFIFO[int](s, "pointless", a, a, 4)

	d := one(t, lint.Check(s), "CDC-2")
	if d.Severity != lint.SevWarning {
		t.Fatalf("CDC-2 severity = %v, want warning", d.Severity)
	}
	if !strings.Contains(d.Message, "brute-force") || !strings.Contains(d.Message, "itself") {
		t.Fatalf("CDC-2 message %q", d.Message)
	}
}

func TestCON1UnboundPort(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 10, 0)
	connections.NewIn[int]().Owned(a, "comp", "lonely")

	d := one(t, lint.Check(s), "CON-1")
	if d.Severity != lint.SevError || d.Path != "comp.lonely" {
		t.Fatalf("CON-1 = %+v", d)
	}
}

func TestCON2DanglingAndTerminated(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 10, 0)
	// Owned producer into an anonymous consumer: dangling.
	p1 := connections.NewOut[int]().Owned(a, "comp", "dangling")
	connections.Buffer(a, "d", 1, p1, connections.NewIn[int]())
	// Same shape, declared intentional: silent.
	p2 := connections.NewOut[int]().Owned(a, "comp", "stubbed")
	connections.Buffer(a, "s", 1, p2, connections.NewIn[int](), connections.Terminator())
	// Anonymous on both ends: the checker has nothing to say.
	connections.Buffer(a, "anon", 1, connections.NewOut[int](), connections.NewIn[int]())

	r := lint.Check(s)
	d := one(t, r, "CON-2")
	if d.Severity != lint.SevWarning || d.Path != "d" {
		t.Fatalf("CON-2 = %+v", d)
	}
	if len(r.Diags) != 1 {
		t.Fatalf("diagnostics = %+v, want only the dangling warning", r.Diags)
	}
}

func TestCON3ZeroCapacity(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 10, 0)
	connections.Buffer(a, "z", 0, connections.NewOut[int](), connections.NewIn[int]())

	d := one(t, lint.Check(s), "CON-3")
	if d.Severity != lint.SevError || !strings.Contains(d.Message, "capacity 0") {
		t.Fatalf("CON-3 = %+v", d)
	}
}

func TestCON4NameCollision(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 10, 0)
	connections.Buffer(a, "dup", 2, connections.NewOut[int](), connections.NewIn[int]())
	connections.Buffer(a, "dup", 2, connections.NewOut[int](), connections.NewIn[int]())

	d := one(t, lint.Check(s), "CON-4")
	if d.Severity != lint.SevError || d.Path != "dup" {
		t.Fatalf("CON-4 = %+v", d)
	}
}

func TestDLK1CombinationalLoop(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 10, 0)
	xOut := connections.NewOut[int]().Owned(a, "x", "o")
	xIn := connections.NewIn[int]().Owned(a, "x", "i")
	yOut := connections.NewOut[int]().Owned(a, "y", "o")
	yIn := connections.NewIn[int]().Owned(a, "y", "i")
	connections.Combinational(a, "xy", xOut, yIn)
	connections.Combinational(a, "yx", yOut, xIn)

	d := one(t, lint.Check(s), "DLK-1")
	if d.Severity != lint.SevError {
		t.Fatalf("DLK-1 severity = %v", d.Severity)
	}
	if len(d.Channels) != 2 || d.Channels[0] != "xy" || d.Channels[1] != "yx" {
		t.Fatalf("DLK-1 channels = %v", d.Channels)
	}
}

func TestDLK1BrokenByBuffer(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 10, 0)
	xOut := connections.NewOut[int]().Owned(a, "x", "o")
	xIn := connections.NewIn[int]().Owned(a, "x", "i")
	yOut := connections.NewOut[int]().Owned(a, "y", "o")
	yIn := connections.NewIn[int]().Owned(a, "y", "i")
	connections.Combinational(a, "xy", xOut, yIn)
	connections.Buffer(a, "yx", 2, yOut, xIn)

	if r := lint.Check(s); len(r.Diags) != 0 {
		t.Fatalf("buffered back-edge still diagnosed: %+v", r.Diags)
	}
}

// ring builds an n-component ring of Buffer channels of the given
// capacities (len(caps) == n), returning the channel names.
func ring(s *sim.Simulator, caps []int) []string {
	a := s.AddClock("clk", 10, 0)
	n := len(caps)
	outs := make([]*connections.Out[int], n)
	ins := make([]*connections.In[int], n)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		outs[i] = connections.NewOut[int]().Owned(a, nodeName(i), "o")
		ins[i] = connections.NewIn[int]().Owned(a, nodeName(i), "i")
	}
	for i := 0; i < n; i++ {
		names[i] = "ring" + string(rune('a'+i))
		connections.Buffer(a, names[i], caps[i], outs[i], ins[(i+1)%len(caps)])
	}
	return names
}

func nodeName(i int) string { return "n" + string(rune('a'+i)) }

func TestDLK2ZeroSlackCycle(t *testing.T) {
	s := sim.New()
	chans := ring(s, []int{1, 1, 1})

	r := lint.Check(s)
	d := one(t, r, "DLK-2")
	if d.Severity != lint.SevWarning {
		t.Fatalf("DLK-2 severity = %v, want warning", d.Severity)
	}
	if len(d.Channels) != len(chans) {
		t.Fatalf("DLK-2 channels = %v, want all of %v", d.Channels, chans)
	}
}

func TestDLK2SilentWithSlack(t *testing.T) {
	// One depth-2 buffer on the cycle gives it slack; the ring can
	// always absorb a token, so nothing fires.
	s := sim.New()
	ring(s, []int{1, 2, 1})
	if r := lint.Check(s); len(r.Diags) != 0 {
		t.Fatalf("slack cycle diagnosed: %+v", r.Diags)
	}
}

func TestDLK2LatencyCountsAsSlack(t *testing.T) {
	s := sim.New()
	a := s.AddClock("clk", 10, 0)
	xOut := connections.NewOut[int]().Owned(a, "x", "o")
	xIn := connections.NewIn[int]().Owned(a, "x", "i")
	yOut := connections.NewOut[int]().Owned(a, "y", "o")
	yIn := connections.NewIn[int]().Owned(a, "y", "i")
	connections.Buffer(a, "xy", 1, xOut, yIn, connections.WithLatency(1))
	connections.Buffer(a, "yx", 1, yOut, xIn)
	if r := lint.Check(s); len(r.Diags) != 0 {
		t.Fatalf("retimed cycle diagnosed: %+v", r.Diags)
	}
}

func TestCrossReferencePromotesSuspectCycle(t *testing.T) {
	s := sim.New()
	chans := ring(s, []int{1, 1})
	r := lint.Check(s)
	if r.Errors() != 0 || r.Warnings() != 1 {
		t.Fatalf("before cross-reference: %d errors, %d warnings", r.Errors(), r.Warnings())
	}
	// A report that suspects an unrelated channel changes nothing.
	if n := lint.CrossReference(r, &trace.Report{Suspects: []string{"elsewhere"}}); n != 0 {
		t.Fatalf("unrelated suspect promoted %d diagnostics", n)
	}
	// A report that suspects a cycle member promotes the warning.
	if n := lint.CrossReference(r, &trace.Report{Suspects: []string{chans[0]}}); n != 1 {
		t.Fatalf("CrossReference = %d, want 1", n)
	}
	d := one(t, r, "DLK-2")
	if d.Severity != lint.SevError || !strings.Contains(d.Message, "deadlock suspect") {
		t.Fatalf("promoted diagnostic = %+v", d)
	}
}

func TestWriteTreeGolden(t *testing.T) {
	s := sim.New()
	a := s.AddClock("clk", 10, 0)
	connections.NewIn[int]().Owned(a, "soc/widow", "in")
	p := connections.NewOut[int]().Owned(a, "soc/dangler", "out")
	connections.Buffer(a, "soc/dangling", 2, p, connections.NewIn[int]())

	var b strings.Builder
	lint.Check(s).WriteTree(&b)
	want := `soc
  widow.in
    CON-1 error = In port declared by soc/widow is never bound to a channel
      hint: bind it with connections.Buffer/Pipeline/Bypass/Combinational, or drop the Owned declaration
  dangling
    CON-2 warning = producer soc/dangler.out drives a channel whose consumer end is anonymous
      hint: pass connections.Terminator() if the stub is intentional, or declare the consumer with Owned
lint: 1 channels, 2 ports, 0 synchronizers, 0 partitions: 1 errors, 1 warnings
`
	if b.String() != want {
		t.Fatalf("tree output:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	s := sim.New()
	a := s.AddClock("a", 10, 0)
	b := s.AddClock("b", 13, 0)
	out := connections.NewOut[int]().Owned(a, "x", "o")
	in := connections.NewIn[int]().Owned(b, "y", "i")
	connections.Buffer(a, "ch", 2, out, in)

	var sb strings.Builder
	if err := lint.Check(s).WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"rule": "CDC-1"`, `"severity": "error"`, `"errors": 1`} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("JSON dump missing %s:\n%s", want, sb.String())
		}
	}
}

func TestCheckHLSCleanDesign(t *testing.T) {
	r := lint.CheckHLS(hls.MACDesign(16))
	if len(r.Diags) != 0 {
		t.Fatalf("mac16 diagnosed: %+v", r.Diags)
	}
}

func TestCheckHLSDeadOp(t *testing.T) {
	in := &hls.Op{ID: 0, Kind: hls.OpInput, Width: 8, Name: "a"}
	dead := &hls.Op{ID: 1, Kind: hls.OpConst, Width: 8, Value: 3}
	out := &hls.Op{ID: 2, Kind: hls.OpOutput, Width: 8, Name: "y", Args: []*hls.Op{in}}
	d := &hls.Design{Name: "deadop", Ops: []*hls.Op{in, dead, out}, Inputs: []*hls.Op{in}, Outputs: []*hls.Op{out}}

	dg := one(t, lint.CheckHLS(d), "HLS-2")
	if dg.Severity != lint.SevWarning || !strings.Contains(dg.Message, "op 1") {
		t.Fatalf("HLS-2 = %+v", dg)
	}
}

func TestCheckHLSDuplicatePort(t *testing.T) {
	a := &hls.Op{ID: 0, Kind: hls.OpInput, Width: 8, Name: "a"}
	a2 := &hls.Op{ID: 1, Kind: hls.OpInput, Width: 8, Name: "a"}
	sum := &hls.Op{ID: 2, Kind: hls.OpAdd, Width: 8, Args: []*hls.Op{a, a2}}
	out := &hls.Op{ID: 3, Kind: hls.OpOutput, Width: 8, Name: "y", Args: []*hls.Op{sum}}
	d := &hls.Design{Name: "dup", Ops: []*hls.Op{a, a2, sum, out}, Inputs: []*hls.Op{a, a2}, Outputs: []*hls.Op{out}}

	dg := one(t, lint.CheckHLS(d), "HLS-3")
	if dg.Severity != lint.SevError || !strings.Contains(dg.Message, `"a"`) {
		t.Fatalf("HLS-3 = %+v", dg)
	}
}

func TestCheckHLSInvalidDesign(t *testing.T) {
	bad := &hls.Op{ID: 7, Kind: hls.OpInput, Width: 8, Name: "a"} // wrong ID
	d := &hls.Design{Name: "invalid", Ops: []*hls.Op{bad}, Inputs: []*hls.Op{bad}}

	r := lint.CheckHLS(d)
	dg := one(t, r, "HLS-1")
	if dg.Severity != lint.SevError || r.Errors() != 1 {
		t.Fatalf("HLS-1 = %+v", dg)
	}
}
