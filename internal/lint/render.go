package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// WriteTree renders the diagnostics in the same indented component-tree
// format `socsim -stats` uses: each diagnostic's path is split into
// hierarchy segments, segments shared with the previous line are elided,
// and the diagnostic itself appears as a leaf "RULE severity = message"
// line with its hint nested underneath.
func (r *Result) WriteTree(w io.Writer) {
	var prev []string
	for _, d := range r.Diags {
		segs := strings.Split(d.Path, "/")
		if d.Path == "" {
			segs = nil
		}
		common := 0
		for common < len(segs) && common < len(prev) && segs[common] == prev[common] {
			common++
		}
		for i := common; i < len(segs); i++ {
			fmt.Fprintf(w, "%s%s\n", strings.Repeat("  ", i), segs[i])
		}
		prev = segs
		indent := strings.Repeat("  ", len(segs))
		fmt.Fprintf(w, "%s%s %s = %s\n", indent, d.Rule, d.Severity, d.Message)
		if d.Hint != "" {
			fmt.Fprintf(w, "%s  hint: %s\n", indent, d.Hint)
		}
	}
	fmt.Fprintln(w, r.Summary())
}

// jsonDump is the machine-readable diagnostic dump, shaped like the
// stats dump ({"metrics":[...]}) for tool symmetry.
type jsonDump struct {
	Diagnostics []Diag `json:"diagnostics"`
	Errors      int    `json:"errors"`
	Warnings    int    `json:"warnings"`
}

// WriteJSON writes the result's diagnostics as
// {"diagnostics":[...],"errors":N,"warnings":N}.
func (r *Result) WriteJSON(w io.Writer) error {
	return WriteDiagsJSON(w, r.Diags)
}

// WriteDiagsJSON writes an already-collected diagnostic list in the dump
// format; socsim uses it to publish one dump spanning several linted
// designs.
func WriteDiagsJSON(w io.Writer, diags []Diag) error {
	d := jsonDump{Diagnostics: diags}
	if d.Diagnostics == nil {
		d.Diagnostics = []Diag{}
	}
	for _, dg := range diags {
		if dg.Severity == SevError {
			d.Errors++
		} else {
			d.Warnings++
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}
