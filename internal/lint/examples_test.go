package lint_test

// Shipped-design cleanliness: every design the repo ships — the SoC
// workloads under both clocking styles, the NoC topology builders the
// examples instantiate, and the deliberately broken fixtures' clean
// siblings — must elaborate and lint with zero diagnostics. The broken
// fixtures themselves are pinned to their exact expected findings.

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/noc"
	"repro/internal/sim"
	"repro/internal/soc"
)

func TestShippedSoCDesignsLintClean(t *testing.T) {
	for _, galsOn := range []bool{false, true} {
		for _, tc := range append(soc.Tests(), soc.ExtraTests()...) {
			cfg := soc.DefaultConfig()
			cfg.GALS = galsOn
			s, _ := tc.Build(cfg)
			r := lint.Check(s.Sim)
			if r.Errors() != 0 || r.Warnings() != 0 {
				var b strings.Builder
				r.WriteTree(&b)
				t.Errorf("%s (gals=%v):\n%s", tc.Name, galsOn, b.String())
			}
			if galsOn && r.Syncs == 0 {
				t.Errorf("%s: GALS build registered no synchronizers", tc.Name)
			}
		}
	}
}

func TestNocTopologiesLintClean(t *testing.T) {
	// The builders behind examples/nocdemo and the NoC experiments.
	t.Run("mesh", func(t *testing.T) {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		noc.BuildMesh(clk, "m", 3, 3, 2, 4)
		if r := lint.Check(s); len(r.Diags) != 0 {
			var b strings.Builder
			r.WriteTree(&b)
			t.Fatalf("mesh:\n%s", b.String())
		}
	})
	t.Run("ring", func(t *testing.T) {
		s := sim.New()
		clk := s.AddClock("clk", 1000, 0)
		noc.BuildRing(clk, "r", 4, 4)
		if r := lint.Check(s); len(r.Diags) != 0 {
			var b strings.Builder
			r.WriteTree(&b)
			t.Fatalf("ring:\n%s", b.String())
		}
	})
}

func TestLintFixtures(t *testing.T) {
	cfg := soc.DefaultConfig()
	fixtures := soc.LintFixtures()
	if len(fixtures) != 3 {
		t.Fatalf("LintFixtures = %d cases, want 3", len(fixtures))
	}
	byName := map[string]soc.TestCase{}
	for _, tc := range fixtures {
		byName[tc.Name] = tc
	}

	t.Run("badcdc", func(t *testing.T) {
		s, _ := byName["badcdc"].Build(cfg)
		r := lint.Check(s.Sim)
		if r.Errors() != 1 || r.Warnings() != 0 {
			t.Fatalf("badcdc: %d errors, %d warnings", r.Errors(), r.Warnings())
		}
		d := r.Diags[0]
		if d.Rule != "CDC-1" || d.Path != "fixture/xclk" {
			t.Fatalf("badcdc diag = %+v", d)
		}
		// Both endpoint paths must be named.
		for _, want := range []string{"fixture/prod.out", "fixture/cons.in"} {
			if !strings.Contains(d.Message, want) {
				t.Errorf("badcdc message %q missing %q", d.Message, want)
			}
		}
	})
	t.Run("badloop", func(t *testing.T) {
		s, _ := byName["badloop"].Build(cfg)
		r := lint.Check(s.Sim)
		if r.Errors() != 1 || r.Warnings() != 0 {
			t.Fatalf("badloop: %d errors, %d warnings", r.Errors(), r.Warnings())
		}
		d := r.Diags[0]
		if d.Rule != "DLK-1" || len(d.Channels) != 2 {
			t.Fatalf("badloop diag = %+v", d)
		}
	})
	t.Run("badport", func(t *testing.T) {
		s, _ := byName["badport"].Build(cfg)
		r := lint.Check(s.Sim)
		if r.Errors() != 1 || r.Warnings() != 1 {
			t.Fatalf("badport: %d errors, %d warnings", r.Errors(), r.Warnings())
		}
		if r.Diags[0].Rule != "CON-1" || r.Diags[1].Rule != "CON-2" {
			t.Fatalf("badport diags = %+v", r.Diags)
		}
	})
}

// TestLintAddsNothingWhenUnused pins the zero-overhead contract: a
// build that never lints allocates the design side table (cheap,
// constructor-time appends) but Check itself is the only reader — the
// design graph records exactly what was built regardless.
func TestDesignGraphCounts(t *testing.T) {
	cfg := soc.DefaultConfig()
	s, _ := soc.Tests()[0].Build(cfg)
	d := s.Sim.Design()
	if len(d.Channels()) == 0 || len(d.Ports()) == 0 || len(d.Partitions()) != soc.NumNodes {
		t.Fatalf("design graph: %d channels, %d ports, %d partitions",
			len(d.Channels()), len(d.Ports()), len(d.Partitions()))
	}
	cfg.GALS = true
	s2, _ := soc.Tests()[0].Build(cfg)
	if len(s2.Sim.Design().Syncs()) == 0 {
		t.Fatal("GALS design graph has no synchronizer edges")
	}
}
