package fleet

import (
	"context"
	"errors"
	"net"
	"sync"
	"time" //detvet:ok reconnect backoff and heartbeat cadence are wall-clock by design

	"repro/internal/fleet/wire"
	"repro/internal/serve"
)

// WorkerConfig wires one socd process into a fleet.
type WorkerConfig struct {
	Name      string                           // unique worker name (required)
	Gateway   string                           // gateway worker-port address to dial (required)
	Heartbeat time.Duration                    // load-report cadence (default 1s)
	Redial    time.Duration                    // reconnect backoff after a lost gateway (default 1s)
	Logf      func(format string, args ...any) // optional logger
}

// Worker is the fleet side of a socd daemon: it dials the gateway,
// registers, reports load via heartbeats, and bridges Submit frames
// onto the daemon's own admission queue (serve.Server.Submit). Job
// events stream back as Progress frames and the canonical result body
// as a Result frame; an admission shed becomes a Shed frame so the
// gateway reroutes instead of failing the job.
type Worker struct {
	srv *serve.Server
	cfg WorkerConfig
}

// NewWorker binds a fleet worker to a daemon's server. Run starts it.
func NewWorker(srv *serve.Server, cfg WorkerConfig) (*Worker, error) {
	if cfg.Name == "" {
		return nil, errors.New("fleet: worker needs a name")
	}
	if cfg.Gateway == "" {
		return nil, errors.New("fleet: worker needs a gateway address")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.Redial <= 0 {
		cfg.Redial = time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Worker{srv: srv, cfg: cfg}, nil
}

// Run dials the gateway and serves one session after another — a lost
// connection is retried every Redial until ctx is canceled. Jobs
// already running on the local server keep running across reconnects;
// their results simply have no session to report to, which is fine:
// the gateway has already failed them over, and the local cache keeps
// the recomputation free.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := w.session(ctx); err != nil && ctx.Err() == nil {
			w.cfg.Logf("fleet: gateway session: %v (redial in %v)", err, w.cfg.Redial)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(w.cfg.Redial):
		}
	}
}

// workerSession is one live connection to the gateway.
type workerSession struct {
	w    *Worker
	conn net.Conn

	smu  sync.Mutex // serializes frame writes
	sbuf wire.Writer
}

func (ws *workerSession) send(m wire.Msg) error {
	ws.smu.Lock()
	defer ws.smu.Unlock()
	return wire.WriteMsg(ws.conn, &ws.sbuf, m)
}

func (w *Worker) session(ctx context.Context) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", w.cfg.Gateway)
	if err != nil {
		return err
	}
	ws := &workerSession{w: w, conn: conn}
	defer conn.Close()

	// Register and wait for the ack before accepting work.
	_, _, capacity, workers := w.srv.Load()
	if err := ws.send(&wire.Register{
		Name: w.cfg.Name, Capacity: uint32(capacity), Workers: uint32(workers),
	}); err != nil {
		return err
	}
	msg, scratch, err := wire.ReadMsg(conn, nil)
	if err != nil {
		return err
	}
	ack, ok := msg.(*wire.Ack)
	if !ok {
		return errors.New("fleet: gateway did not ack registration")
	}
	w.cfg.Logf("fleet: registered with %s as %s", ack.Gateway, w.cfg.Name)

	// The session dies with ctx: closing the conn unblocks the read loop.
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ws.heartbeats(sctx)
	}()
	defer wg.Wait()
	go func() {
		<-sctx.Done()
		conn.Close()
	}()

	for {
		var m wire.Msg
		m, scratch, err = wire.ReadMsg(conn, scratch)
		if err != nil {
			return err
		}
		switch m := m.(type) {
		case *wire.Submit:
			ws.accept(sctx, m)
		default:
			w.cfg.Logf("fleet: unexpected frame from gateway: %v", m.Type())
		}
	}
}

// heartbeats reports admission load until the session ends. The first
// beat goes out immediately so the gateway has load truth before the
// first dispatch.
func (ws *workerSession) heartbeats(ctx context.Context) {
	t := time.NewTicker(ws.w.cfg.Heartbeat)
	defer t.Stop()
	for {
		depth, inFlight, capacity, _ := ws.w.srv.Load()
		if err := ws.send(&wire.Heartbeat{
			Depth: uint32(depth), InFlight: uint32(inFlight), Capacity: uint32(capacity),
		}); err != nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// accept bridges one Submit frame onto the local admission queue. The
// spec arrives in canonical form, so normalization is a no-op and the
// local content hash matches the gateway's routing key — the LRU cache
// the gateway is sharding for is keyed identically.
func (ws *workerSession) accept(ctx context.Context, m *wire.Submit) {
	spec, err := serve.ParseSpec(m.Spec)
	if err != nil {
		// A malformed spec is deterministic: report failure, don't shed.
		ws.send(&wire.Result{Job: m.Job, Status: wire.StatusFailed, Error: err.Error()})
		return
	}
	sub, err := ws.w.srv.Submit(spec)
	if err != nil {
		var qf *serve.QueueFullError
		if errors.As(err, &qf) {
			depth, _, _, _ := ws.w.srv.Load()
			ws.send(&wire.Shed{
				Job: m.Job, RetryAfter: uint32(qf.RetryAfter), Depth: uint32(depth),
			})
			return
		}
		if errors.Is(err, serve.ErrDraining) {
			// Draining reads as a cancel: viable elsewhere, not here.
			ws.send(&wire.Result{Job: m.Job, Status: wire.StatusCanceled, Error: err.Error()})
			return
		}
		ws.send(&wire.Result{Job: m.Job, Status: wire.StatusFailed, Error: err.Error()})
		return
	}
	go ws.forward(ctx, m.Job, sub)
}

// forward streams one job's event log back as Progress frames and, on
// the terminal event, a Result frame carrying the canonical body. A
// send failure just stops the forwarder: the session is dying and the
// gateway will fail the job over.
func (ws *workerSession) forward(ctx context.Context, job string, sub *serve.Submission) {
	replay, live, cancel := sub.Watch()
	defer cancel()
	emit := func(e serve.Event) bool {
		if e.Terminal() {
			return false
		}
		err := ws.send(&wire.Progress{
			Job: job, Seq: uint32(e.Seq), Event: e.Event,
			Done: uint32(e.Done), Total: uint32(e.Total),
			Label: e.Label, Cached: e.Cached,
		})
		return err == nil
	}
	for _, e := range replay {
		if !emit(e) {
			break
		}
	}
	if live != nil {
	tail:
		for {
			select {
			case e, ok := <-live:
				if !ok {
					break tail
				}
				if !emit(e) {
					break tail
				}
			case <-ctx.Done():
				return
			}
		}
	}
	// The log closed (or went terminal): report the authoritative state.
	select {
	case <-sub.Done():
	case <-ctx.Done():
		return
	}
	status, body, errMsg, cached := sub.Snapshot()
	res := &wire.Result{Job: job, Cached: cached, Error: errMsg, Body: body}
	switch status {
	case "done":
		res.Status = wire.StatusDone
	case "canceled":
		res.Status = wire.StatusCanceled
	default:
		res.Status = wire.StatusFailed
	}
	ws.send(res)
}
