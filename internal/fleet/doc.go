// Package fleet scales the simulation service from one daemon to many:
// a gateway (cmd/socgw) fronts N registered socd workers, sharding
// content-addressed job specs across them and failing jobs over when a
// worker dies mid-run.
//
// # Topology
//
// Workers dial the gateway — one long-lived TCP connection each,
// carrying the compact binary frames defined in the wire subpackage
// (register/ack, heartbeats, submit/progress/result/shed). The
// client-facing surface stays HTTP + NDJSON with exactly the daemon's
// routes and shapes, so socctl points at a gateway or a lone socd
// interchangeably.
//
// # Routing
//
// Placement is rendezvous (highest-random-weight) hashing over the
// spec's content hash: every worker gets an independent weight for the
// key, and the descending weight order is the ownership preference
// list. Membership churn moves only the keys owned by the worker that
// joined or died, so repeat submissions of the same spec keep landing
// on the worker whose LRU already holds the result — the cache
// affinity the single-daemon design earns from content addressing is
// preserved across the fleet.
//
// Saturated workers (heartbeat queue depth at capacity) and workers
// that shed a specific job are skipped in preference order; a client
// sees 429 only when every live worker is saturated at once.
//
// # Failover
//
// Liveness is a read deadline: any frame (heartbeats at minimum)
// within the DeadAfter window keeps a worker alive; silence or a
// connection error kills it, and every non-terminal job it owned is
// redispatched down the job's preference list. Content addressing
// makes the retry idempotent — the same canonical spec bytes hash to
// the same result on any worker, so a duplicate result from a slow
// "dead" worker is byte-identical to the one already recorded and is
// simply counted and dropped. Deterministic failures (bad spec, failed
// run) are never retried; only worker loss, sheds, and cancellations
// are.
package fleet
