package fleet

import (
	"testing"
)

// testKeys yields a deterministic spread of 64-bit keys (Weyl sequence
// on the golden ratio) standing in for spec content hashes.
func testKeys(n int) []uint64 {
	keys := make([]uint64, n)
	var x uint64
	for i := range keys {
		x += 0x9e3779b97f4a7c15
		keys[i] = x
	}
	return keys
}

func TestRankOwnersIsPermutation(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4"}
	for _, key := range testKeys(64) {
		ranked := RankOwners(key, workers)
		if len(ranked) != len(workers) {
			t.Fatalf("key %#x: got %d entries, want %d", key, len(ranked), len(workers))
		}
		seen := map[string]bool{}
		for _, name := range ranked {
			if seen[name] {
				t.Fatalf("key %#x: duplicate %q in ranking %v", key, name, ranked)
			}
			seen[name] = true
		}
		for _, name := range workers {
			if !seen[name] {
				t.Fatalf("key %#x: %q missing from ranking %v", key, name, ranked)
			}
		}
	}
}

func TestRankOwnersDoesNotMutateInput(t *testing.T) {
	workers := []string{"w3", "w1", "w2"}
	RankOwners(42, workers)
	if workers[0] != "w3" || workers[1] != "w1" || workers[2] != "w2" {
		t.Fatalf("input slice mutated: %v", workers)
	}
}

func TestRankOwnersOrderIndependent(t *testing.T) {
	a := []string{"w1", "w2", "w3", "w4"}
	b := []string{"w4", "w2", "w1", "w3"}
	for _, key := range testKeys(64) {
		ra, rb := RankOwners(key, a), RankOwners(key, b)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("key %#x: ranking depends on input order: %v vs %v", key, ra, rb)
			}
		}
	}
}

func TestOwnerMatchesTopRank(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4", "w5"}
	for _, key := range testKeys(128) {
		if got, want := Owner(key, workers), RankOwners(key, workers)[0]; got != want {
			t.Fatalf("key %#x: Owner=%q, RankOwners[0]=%q", key, got, want)
		}
	}
	if Owner(1, nil) != "" {
		t.Fatal("Owner on empty fleet should be \"\"")
	}
}

// TestMinimalRemapOnDeath is the property the fleet's cache affinity
// rests on: removing one worker moves only the keys it owned.
func TestMinimalRemapOnDeath(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4", "w5"}
	keys := testKeys(4096)
	dead := "w3"
	survivors := make([]string, 0, len(workers)-1)
	for _, w := range workers {
		if w != dead {
			survivors = append(survivors, w)
		}
	}
	moved := 0
	for _, key := range keys {
		before := Owner(key, workers)
		after := Owner(key, survivors)
		if before != dead && before != after {
			t.Fatalf("key %#x moved %q -> %q though %q died", key, before, after, dead)
		}
		if before == dead {
			moved++
		}
	}
	// Sanity: the dead worker owned a nontrivial share, so the test
	// actually exercised remapping.
	if moved < len(keys)/10 {
		t.Fatalf("dead worker owned only %d/%d keys; test is vacuous", moved, len(keys))
	}
}

// TestMinimalRemapOnJoin: a joining worker only steals keys for itself.
func TestMinimalRemapOnJoin(t *testing.T) {
	before := []string{"w1", "w2", "w3"}
	after := []string{"w1", "w2", "w3", "w4"}
	stolen := 0
	for _, key := range testKeys(4096) {
		ob, oa := Owner(key, before), Owner(key, after)
		if ob != oa {
			if oa != "w4" {
				t.Fatalf("key %#x moved %q -> %q though only w4 joined", key, ob, oa)
			}
			stolen++
		}
	}
	if stolen == 0 {
		t.Fatal("joining worker stole no keys; test is vacuous")
	}
}

// TestOwnershipSpread: rendezvous hashing should not starve any worker.
// The bound is loose (half the fair share) — this guards against a
// broken weight function, not against statistical wobble.
func TestOwnershipSpread(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4"}
	keys := testKeys(4096)
	counts := map[string]int{}
	for _, key := range keys {
		counts[Owner(key, workers)]++
	}
	fair := len(keys) / len(workers)
	for _, w := range workers {
		if counts[w] < fair/2 {
			t.Fatalf("worker %q owns %d of %d keys (fair share %d): weight function is skewed",
				w, counts[w], len(keys), fair)
		}
	}
}
