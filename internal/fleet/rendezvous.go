package fleet

import (
	"encoding/binary"
	"hash/fnv"
	"io"
	"sort"
)

// Rendezvous (highest-random-weight) hashing decides which worker owns
// a job's content hash. Every (key, worker) pair gets an independent
// pseudo-random weight; the ranking sorts workers by weight. The
// property that matters for the fleet: when a worker joins or dies,
// only the keys whose top-ranked worker changed move — every other
// key's ranking among the surviving workers is untouched. Content
// hashes therefore stick to "their" worker across membership churn,
// which is what keeps the per-worker LRU result caches hot (a key's
// repeats keep landing where its result is already cached).

// weight scores one (key, worker) pair: FNV-1a over the worker name
// followed by the big-endian key bytes. The name goes first so the
// per-worker streams differ from the first byte.
func weight(key uint64, worker string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, worker)
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], key)
	h.Write(b[:])
	return h.Sum64()
}

// RankOwners orders workers by descending rendezvous preference for
// key: index 0 is the owner, index 1 the first failover target, and so
// on. The input is not mutated. Ties (astronomically unlikely with a
// 64-bit weight) break by name so the ranking is total and identical
// on every gateway.
func RankOwners(key uint64, workers []string) []string {
	ranked := append([]string(nil), workers...)
	sort.Slice(ranked, func(i, j int) bool {
		wi, wj := weight(key, ranked[i]), weight(key, ranked[j])
		if wi != wj {
			return wi > wj
		}
		return ranked[i] < ranked[j]
	})
	return ranked
}

// Owner returns the top-ranked worker for key, or "" when the fleet is
// empty.
func Owner(key uint64, workers []string) string {
	if len(workers) == 0 {
		return ""
	}
	best := workers[0]
	bestW := weight(key, best)
	for _, w := range workers[1:] {
		if wt := weight(key, w); wt > bestW || (wt == bestW && w < best) {
			best, bestW = w, wt
		}
	}
	return best
}
