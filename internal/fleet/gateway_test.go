package fleet

// Wire-level gateway tests: a scripted fake worker speaks the binary
// protocol directly, so shed races, heartbeat silence, and duplicate
// results can be staged deterministically — timings no real worker
// would reproduce on demand.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet/wire"
)

type fakeWorker struct {
	t       *testing.T
	conn    net.Conn
	sbuf    wire.Writer
	scratch []byte
}

// dialFake connects, registers, and consumes the ack.
func dialFake(t *testing.T, addr, name string, capacity uint32) *fakeWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	fw := &fakeWorker{t: t, conn: conn}
	t.Cleanup(func() { conn.Close() })
	fw.send(&wire.Register{Name: name, Capacity: capacity, Workers: capacity})
	if _, ok := fw.read().(*wire.Ack); !ok {
		t.Fatal("no ack after register")
	}
	return fw
}

func (f *fakeWorker) send(m wire.Msg) {
	f.t.Helper()
	if err := wire.WriteMsg(f.conn, &f.sbuf, m); err != nil {
		f.t.Fatalf("fake worker send: %v", err)
	}
}

func (f *fakeWorker) read() wire.Msg {
	f.t.Helper()
	f.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	m, scratch, err := wire.ReadMsg(f.conn, f.scratch)
	if err != nil {
		f.t.Fatalf("fake worker read: %v", err)
	}
	f.scratch = scratch
	return m
}

func (f *fakeWorker) expectSubmit() *wire.Submit {
	f.t.Helper()
	m, ok := f.read().(*wire.Submit)
	if !ok {
		f.t.Fatalf("expected submit frame, got %v", m)
	}
	return m
}

// TestShedReroute: a worker that sheds an admitted job triggers a
// reroute to the next candidate, never a client-visible 429.
func TestShedReroute(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{})
	fw1 := dialFake(t, ln.Addr().String(), "shed-w1", 8)
	fw2 := dialFake(t, ln.Addr().String(), "shed-w2", 8)
	waitRegistered(t, ts.URL, 2)

	type reply struct {
		code int
		body []byte
	}
	done := make(chan reply, 1)
	go func() {
		code, body, _ := submitWait(t, ts.URL, `{"kind":"fleettest","messages":9}`)
		done <- reply{code, body}
	}()

	// Whichever worker rendezvous picked sheds; the other must receive
	// the reroute and completes it.
	first, second, firstSub := readSubmitFromEither(t, fw1, fw2)
	first.send(&wire.Shed{Job: firstSub.Job, RetryAfter: 3, Depth: 0})
	reroute := second.expectSubmit()
	if reroute.Job != firstSub.Job || reroute.Hash != firstSub.Hash {
		t.Fatalf("reroute changed identity: %+v vs %+v", reroute, firstSub)
	}
	second.send(&wire.Result{Job: reroute.Job, Status: wire.StatusDone, Body: []byte(`{"ok":true}`)})

	r := <-done
	if r.code != http.StatusOK {
		t.Fatalf("shed surfaced to the client: status %d: %s", r.code, r.body)
	}
	if got := metric(t, ts.URL, "fleet/failover", "routed_around"); got != 1 {
		t.Errorf("routed_around = %v, want 1", got)
	}
	if got := metric(t, ts.URL, "fleet/failover", "sheds_seen"); got != 1 {
		t.Errorf("sheds_seen = %v, want 1", got)
	}
}

// readSubmitFromEither returns the fake worker rendezvous chose (and
// the submit frame it received) plus the one it passed over. It polls
// the two connections in turn with short deadlines instead of spawning
// readers, so no goroutine is left racing later reads on these conns;
// frames are written in one syscall over loopback, so a deadline never
// splits one.
func readSubmitFromEither(t *testing.T, a, b *fakeWorker) (first, second *fakeWorker, sub *wire.Submit) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, pair := range [2][2]*fakeWorker{{a, b}, {b, a}} {
			fw := pair[0]
			fw.conn.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
			m, scratch, err := wire.ReadMsg(fw.conn, fw.scratch)
			if err != nil {
				continue // timeout: try the other conn
			}
			fw.scratch = scratch
			if sub, ok := m.(*wire.Submit); ok {
				return pair[0], pair[1], sub
			}
		}
	}
	t.Fatal("no worker received the submit")
	return nil, nil, nil
}

// TestHeartbeatTimeoutReap: a silent worker is declared dead after
// DeadAfter and its job fails over to the next worker to register.
func TestHeartbeatTimeoutReap(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{DeadAfter: 300 * time.Millisecond})
	fw1 := dialFake(t, ln.Addr().String(), "reap-w1", 8)
	waitRegistered(t, ts.URL, 1)

	done := make(chan int, 1)
	go func() {
		code, _, _ := submitWait(t, ts.URL, `{"kind":"fleettest","messages":11}`)
		done <- code
	}()
	sub := fw1.expectSubmit()
	// fw1 now goes silent: no heartbeats, no result. The read deadline
	// must reap it and park the job (the fleet is empty).
	waitFor(t, "silent worker reaped", func() bool {
		return len(getWorkers(t, ts.URL).Workers) == 0
	})

	// A replacement registers and must inherit the parked job.
	fw2 := dialFake(t, ln.Addr().String(), "reap-w2", 8)
	re := fw2.expectSubmit()
	if re.Job != sub.Job {
		t.Fatalf("replacement got job %q, want parked %q", re.Job, sub.Job)
	}
	fw2.send(&wire.Result{Job: re.Job, Status: wire.StatusDone, Body: []byte(`{"ok":1}`)})
	if code := <-done; code != http.StatusOK {
		t.Fatalf("job lost across reap: status %d", code)
	}
	if got := metric(t, ts.URL, "fleet/failover", "worker_deaths"); got != 1 {
		t.Errorf("worker_deaths = %v, want 1", got)
	}
	if got := metric(t, ts.URL, "fleet/failover", "parked_total"); got == 0 {
		t.Error("job was parked but parked_total == 0")
	}
}

// TestDuplicateResultIgnored: a second result for a finished job is
// counted and dropped, not re-applied.
func TestDuplicateResultIgnored(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{})
	fw := dialFake(t, ln.Addr().String(), "dup-w1", 8)
	waitRegistered(t, ts.URL, 1)

	done := make(chan []byte, 1)
	go func() {
		_, body, _ := submitWait(t, ts.URL, `{"kind":"fleettest","messages":13}`)
		done <- body
	}()
	sub := fw.expectSubmit()
	fw.send(&wire.Result{Job: sub.Job, Status: wire.StatusDone, Body: []byte(`{"v":1}`)})
	first := <-done
	fw.send(&wire.Result{Job: sub.Job, Status: wire.StatusDone, Body: []byte(`{"v":2}`)})
	fw.send(&wire.Heartbeat{}) // fence: ensure the duplicate was processed

	waitFor(t, "duplicate counted", func() bool {
		return metric(t, ts.URL, "fleet/failover", "duplicate_results") == 1
	})
	resp, err := http.Get(ts.URL + "/jobs/" + sub.Job + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		V int `json:"v"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.V != 1 {
		t.Fatalf("duplicate result overwrote the original: v=%d", v.V)
	}
	_ = first
}

// TestDeterministicFailureNotRetried: a StatusFailed result is final —
// no redispatch, client sees 500.
func TestDeterministicFailureNotRetried(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{})
	fw1 := dialFake(t, ln.Addr().String(), "fail-w1", 8)
	fw2 := dialFake(t, ln.Addr().String(), "fail-w2", 8)
	waitRegistered(t, ts.URL, 2)

	done := make(chan int, 1)
	go func() {
		code, _, _ := submitWait(t, ts.URL, `{"kind":"fleettest","messages":17}`)
		done <- code
	}()
	first, second, sub := readSubmitFromEither(t, fw1, fw2)
	first.send(&wire.Result{Job: sub.Job, Status: wire.StatusFailed, Error: "synthetic failure"})
	if code := <-done; code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 for deterministic failure", code)
	}
	// The healthy second worker must NOT receive a retry.
	second.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if m, _, err := wire.ReadMsg(second.conn, nil); err == nil {
		t.Fatalf("failed job was retried: second worker got %v", m)
	}
	if got := metric(t, ts.URL, "fleet/failover", "resubmitted"); got != 0 {
		t.Errorf("resubmitted = %v, want 0", got)
	}
}

// TestGatewayCacheServesSaturatedRepeat: a repeat of a completed spec
// whose owning worker is saturated is answered byte-identically from
// the gateway's own result cache — no submit frame reaches the worker,
// no 429 reaches the client, and the hit is counted in fleet stats.
func TestGatewayCacheServesSaturatedRepeat(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{})
	fw := dialFake(t, ln.Addr().String(), "cache-w1", 1)
	waitRegistered(t, ts.URL, 1)
	spec := `{"kind":"fleettest","messages":23}`

	done := make(chan []byte, 1)
	go func() {
		_, body, _ := submitWait(t, ts.URL, spec)
		done <- body
	}()
	sub := fw.expectSubmit()
	fw.send(&wire.Result{Job: sub.Job, Status: wire.StatusDone, Body: []byte(`{"r":42}`)})
	first := <-done

	// The worker reports itself saturated; the optimistic dispatch bump
	// is already at capacity, but the heartbeat makes it explicit.
	fw.send(&wire.Heartbeat{Depth: 1, InFlight: 1, Capacity: 1})
	waitFor(t, "saturation heartbeat applied", func() bool {
		ws := getWorkers(t, ts.URL).Workers
		return len(ws) == 1 && ws[0].Depth >= 1
	})

	code, second, hdr := submitWait(t, ts.URL, spec)
	if code != http.StatusOK {
		t.Fatalf("repeat against saturated fleet: status %d: %s", code, second)
	}
	if string(first) != string(second) {
		t.Fatalf("gateway cache not byte-identical:\n%s\nvs\n%s", first, second)
	}
	if hc := hdr.Get("X-Cache"); hc != "hit" {
		t.Fatalf("repeat X-Cache = %q, want hit", hc)
	}
	// The saturated worker must never have seen a second submit frame.
	fw.conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
	if m, _, err := wire.ReadMsg(fw.conn, nil); err == nil {
		t.Fatalf("saturated worker received %v for a cached repeat", m)
	}
	if got := metric(t, ts.URL, "fleet/jobs", "gateway_cache_hits"); got != 1 {
		t.Errorf("gateway_cache_hits = %v, want 1", got)
	}
	if got := metric(t, ts.URL, "fleet/jobs", "completed"); got != 2 {
		t.Errorf("completed = %v, want 2 (cached repeat still completes a job)", got)
	}
}

// TestDrainingRefusesSubmissions: after BeginDrain, submissions get
// 503 while registered workers stay connected.
func TestDrainingRefusesSubmissions(t *testing.T) {
	gw, ts, ln := testGateway(t, GatewayConfig{})
	dialFake(t, ln.Addr().String(), "drain-w1", 8)
	waitRegistered(t, ts.URL, 1)
	gw.BeginDrain()
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"fleettest"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 while draining", resp.StatusCode)
	}
}

// TestReregistrationReplacesWorker: a worker reconnecting under its
// old name (crash + fast restart) replaces the stale session and its
// orphans fail over.
func TestReregistrationReplacesWorker(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{})
	fw1 := dialFake(t, ln.Addr().String(), "re-w1", 8)
	waitRegistered(t, ts.URL, 1)

	done := make(chan int, 1)
	go func() {
		code, _, _ := submitWait(t, ts.URL, `{"kind":"fleettest","messages":19}`)
		done <- code
	}()
	sub := fw1.expectSubmit()

	// Same name, new connection: the restarted daemon. It must get the
	// stale session's job back.
	fw1b := dialFake(t, ln.Addr().String(), "re-w1", 8)
	re := fw1b.expectSubmit()
	if re.Job != sub.Job {
		t.Fatalf("restart got job %q, want orphan %q", re.Job, sub.Job)
	}
	fw1b.send(&wire.Result{Job: re.Job, Status: wire.StatusDone, Body: []byte(`{"ok":2}`)})
	if code := <-done; code != http.StatusOK {
		t.Fatalf("job lost across re-registration: status %d", code)
	}
	ws := getWorkers(t, ts.URL).Workers
	if len(ws) != 1 || ws[0].Name != "re-w1" {
		t.Fatalf("fleet roster wrong after re-registration: %+v", ws)
	}
	_ = fmt.Sprintf // keep fmt imported if assertions change
}
