package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time" //detvet:ok fleet liveness is wall-clock by design (heartbeat deadlines)

	"repro/internal/fleet/wire"
	"repro/internal/serve"
	"repro/internal/stats"
)

// GatewayConfig sizes the gateway. Zero values take the defaults noted
// on each field.
type GatewayConfig struct {
	Name         string                           // fleet name sent in registration acks (default "socgw")
	DeadAfter    time.Duration                    // silence window before a worker is declared dead (default 5s)
	RetryEvery   time.Duration                    // parked-job redispatch tick (default 250ms)
	MaxRetries   int                              // failovers per job before it fails (default 5)
	CacheEntries int                              // gateway-side result cache entries (default 128)
	Logf         func(format string, args ...any) // optional logger
}

// Gateway fronts a fleet of socd workers: it owns the client-facing
// HTTP/NDJSON surface (the same API shape internal/serve exposes, so
// socctl works unchanged), shards submitted jobs across workers by
// rendezvous hash over the spec's content address, and carries the
// worker-facing side of the binary wire protocol — registration,
// heartbeats, submit/progress/result frames, failover on worker loss.
type Gateway struct {
	cfg GatewayConfig
	reg *stats.Registry
	mux *http.ServeMux

	mu       sync.Mutex
	workers  map[string]*remoteWorker
	jobs     map[string]*gwJob
	order    []string // job ids in submission order
	pending  []*gwJob // admitted jobs awaiting a dispatch slot
	seq      int
	draining bool

	wg       sync.WaitGroup // conn handlers + redispatch ticker
	stopTick chan struct{}

	// Gateway-side result cache: completed bodies keyed by the spec's
	// content address, FIFO-bounded. Results are deterministic functions
	// of the canonical spec, so a stored body is byte-identical to
	// whatever a worker would recompute — the gateway can answer a
	// repeat itself when the job's preferred owner has no room, instead
	// of queueing the round-trip or shedding a 429.
	cacheMu    sync.Mutex
	cacheBody  map[uint64][]byte
	cacheOrder []uint64

	// Counters read lock-free by stats sources and handlers.
	submitted, completed, failed, canceled atomic.Int64
	registered, deaths, resubmitted        atomic.Int64
	routedAround, shedsSeen, parked        atomic.Int64
	duplicateResults, workerCacheHits      atomic.Int64
	gatewayCacheHits                       atomic.Int64
	framesIn, framesOut                    atomic.Int64
	bytesIn, bytesOut                      atomic.Int64
}

// remoteWorker is one registered worker connection. Load fields mirror
// the latest heartbeat (optimistically bumped on dispatch so a burst
// between heartbeats cannot dogpile one worker); assigned tracks the
// jobs whose results this connection owes.
type remoteWorker struct {
	name string
	conn net.Conn

	smu  sync.Mutex // serializes frame writes
	sbuf wire.Writer

	// Guarded by Gateway.mu.
	depth, inFlight, capacity int
	assigned                  map[string]*gwJob
	gone                      bool
}

// gwJob is one proxied job. All mutable fields are guarded by
// Gateway.mu; body bytes are written once at completion.
type gwJob struct {
	id        string
	kind      string
	hash      uint64
	specBytes []byte // canonical form, what Submit frames carry
	log       *serve.EventLog
	done      chan struct{}

	status  string // queued | running | done | failed | canceled
	owner   string // worker currently responsible, "" while parked
	retries int
	shedBy  map[string]bool // workers that refused this job
	body    []byte
	errMsg  string
	cached  bool // worker served the body from its LRU
}

func (j *gwJob) terminal() bool {
	return j.status == "done" || j.status == "failed" || j.status == "canceled"
}

// NewGateway builds a gateway and starts its redispatch ticker. Serve
// workers with ServeWorkers, mount Handler on an http.Server, retire
// with Shutdown.
func NewGateway(cfg GatewayConfig) *Gateway {
	if cfg.Name == "" {
		cfg.Name = "socgw"
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 5 * time.Second
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 250 * time.Millisecond
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 5
	}
	if cfg.CacheEntries <= 0 {
		cfg.CacheEntries = 128
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	g := &Gateway{
		cfg:      cfg,
		reg:      stats.New(),
		mux:      http.NewServeMux(),
		workers:   make(map[string]*remoteWorker),
		jobs:      make(map[string]*gwJob),
		cacheBody: make(map[uint64][]byte),
		stopTick:  make(chan struct{}),
	}
	g.registerStats()
	g.routes()
	g.wg.Add(1)
	go g.redispatchTicker()
	return g
}

// Metrics returns the gateway's registry so hosts can render or extend
// the fleet/* namespace.
func (g *Gateway) Metrics() *stats.Registry { return g.reg }

func (g *Gateway) registerStats() {
	g.reg.Source("fleet/workers", func(emit stats.Emit) {
		g.mu.Lock()
		live := len(g.workers)
		g.mu.Unlock()
		emit("deaths", float64(g.deaths.Load()))
		emit("live", float64(live))
		emit("registered_total", float64(g.registered.Load()))
	})
	g.reg.Source("fleet/jobs", func(emit stats.Emit) {
		g.mu.Lock()
		inFlight := 0
		for _, j := range g.jobs { //detvet:ok order-free count
			if !j.terminal() {
				inFlight++
			}
		}
		pending := len(g.pending)
		g.mu.Unlock()
		emit("canceled", float64(g.canceled.Load()))
		emit("completed", float64(g.completed.Load()))
		emit("failed", float64(g.failed.Load()))
		emit("gateway_cache_hits", float64(g.gatewayCacheHits.Load()))
		emit("in_flight", float64(inFlight))
		emit("parked", float64(pending))
		emit("submitted", float64(g.submitted.Load()))
		emit("worker_cache_hits", float64(g.workerCacheHits.Load()))
	})
	g.reg.Source("fleet/failover", func(emit stats.Emit) {
		emit("duplicate_results", float64(g.duplicateResults.Load()))
		emit("parked_total", float64(g.parked.Load()))
		emit("resubmitted", float64(g.resubmitted.Load()))
		emit("routed_around", float64(g.routedAround.Load()))
		emit("sheds_seen", float64(g.shedsSeen.Load()))
		emit("worker_deaths", float64(g.deaths.Load()))
	})
	g.reg.Source("fleet/wire", func(emit stats.Emit) {
		emit("bytes_in", float64(g.bytesIn.Load()))
		emit("bytes_out", float64(g.bytesOut.Load()))
		emit("frames_in", float64(g.framesIn.Load()))
		emit("frames_out", float64(g.framesOut.Load()))
	})
}

// ---- worker wire side ----

// ServeWorkers accepts worker connections on ln until the listener
// closes. Each connection must open with a Register frame; after the
// ack the gateway reads heartbeat/progress/result/shed frames until
// the connection dies or falls silent past DeadAfter.
func (g *Gateway) ServeWorkers(ln net.Listener) error {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		g.wg.Add(1)
		go g.handleConn(conn)
	}
}

// send writes one frame to the worker, serialized per connection.
func (g *Gateway) send(rw *remoteWorker, m wire.Msg) error {
	rw.smu.Lock()
	defer rw.smu.Unlock()
	if err := wire.WriteMsg(rw.conn, &rw.sbuf, m); err != nil {
		return err
	}
	g.framesOut.Add(1)
	g.bytesOut.Add(int64(rw.sbuf.Len()))
	return nil
}

func (g *Gateway) handleConn(conn net.Conn) {
	defer g.wg.Done()
	// Registration handshake, bounded by the liveness window.
	conn.SetReadDeadline(time.Now().Add(g.cfg.DeadAfter))
	msg, scratch, err := wire.ReadMsg(conn, nil)
	if err != nil {
		g.cfg.Logf("fleet: worker handshake: %v", err)
		conn.Close()
		return
	}
	reg, ok := msg.(*wire.Register)
	if !ok || reg.Name == "" {
		g.cfg.Logf("fleet: worker handshake: expected register, got %v", msg.Type())
		conn.Close()
		return
	}
	rw := &remoteWorker{
		name:     reg.Name,
		conn:     conn,
		capacity: int(reg.Capacity),
		assigned: make(map[string]*gwJob),
	}
	g.mu.Lock()
	old := g.workers[reg.Name]
	if old != nil {
		// A re-registration under a live name is the restart case: the
		// old connection is dead weight. Mark it gone so its read loop
		// unwinds without tearing down the replacement, and unmap it so
		// the failover below lands on the new connection, not the corpse.
		old.gone = true
		delete(g.workers, reg.Name)
	}
	g.mu.Unlock()
	if old != nil {
		old.conn.Close()
	}
	// Ack before the worker becomes dispatchable: the first frame a
	// worker reads must be the ack, and a parked-job redispatch could
	// otherwise slip a submit in ahead of it.
	if err := g.send(rw, &wire.Ack{Gateway: g.cfg.Name}); err != nil {
		g.cfg.Logf("fleet: worker %s handshake ack: %v", reg.Name, err)
		conn.Close()
		if old != nil {
			g.failoverJobs(old, "replaced by failed re-registration")
		}
		return
	}
	g.mu.Lock()
	g.workers[reg.Name] = rw
	g.mu.Unlock()
	g.registered.Add(1)
	g.cfg.Logf("fleet: worker %s registered (capacity %d, pool %d)",
		reg.Name, reg.Capacity, reg.Workers)
	if old != nil {
		g.failoverJobs(old, "replaced by re-registration")
	}
	g.dispatchPending()

	for {
		conn.SetReadDeadline(time.Now().Add(g.cfg.DeadAfter))
		var m wire.Msg
		m, scratch, err = wire.ReadMsg(conn, scratch)
		if err != nil {
			g.dropWorker(rw, err)
			return
		}
		g.framesIn.Add(1)
		switch m := m.(type) {
		case *wire.Heartbeat:
			g.mu.Lock()
			rw.depth = int(m.Depth)
			rw.inFlight = int(m.InFlight)
			rw.capacity = int(m.Capacity)
			g.mu.Unlock()
			g.dispatchPending()
		case *wire.Progress:
			g.handleProgress(rw, m)
		case *wire.Result:
			g.handleResult(rw, m)
		case *wire.Shed:
			g.handleShed(rw, m)
		default:
			g.cfg.Logf("fleet: worker %s sent unexpected %v", rw.name, m.Type())
		}
	}
}

// dropWorker removes a dead connection and fails its jobs over. A
// worker replaced by re-registration was already marked gone and its
// jobs already reassigned; the stale read loop lands here and exits
// quietly.
func (g *Gateway) dropWorker(rw *remoteWorker, cause error) {
	g.mu.Lock()
	if rw.gone {
		g.mu.Unlock()
		return
	}
	rw.gone = true
	if g.workers[rw.name] == rw {
		delete(g.workers, rw.name)
	}
	g.mu.Unlock()
	rw.conn.Close()
	g.deaths.Add(1)
	g.cfg.Logf("fleet: worker %s lost: %v", rw.name, cause)
	g.failoverJobs(rw, "worker lost")
}

// failoverJobs redispatches everything a dead worker still owed.
// Idempotency is the content address: the job's canonical spec bytes
// hash identically on the next worker, so a re-run either recomputes
// the same bytes or hits that worker's cache — either way the result
// is the one the client would have gotten.
func (g *Gateway) failoverJobs(rw *remoteWorker, why string) {
	g.mu.Lock()
	var orphans []*gwJob
	for _, j := range rw.assigned { //detvet:ok sorted by id below
		if !j.terminal() {
			j.owner = ""
			orphans = append(orphans, j)
		}
	}
	rw.assigned = make(map[string]*gwJob)
	g.mu.Unlock()
	// Deterministic retry order for logs and tests.
	sort.Slice(orphans, func(i, k int) bool { return orphans[i].id < orphans[k].id })
	for _, j := range orphans {
		g.resubmitted.Add(1)
		g.cfg.Logf("fleet: %s: resubmitting %s (%s)", why, j.id, j.kind)
		g.redispatch(j)
	}
}

func (g *Gateway) handleProgress(rw *remoteWorker, m *wire.Progress) {
	g.mu.Lock()
	j := g.jobs[m.Job]
	if j == nil || j.terminal() || j.owner != rw.name {
		g.mu.Unlock()
		return
	}
	if m.Event == "start" {
		j.status = "running"
	}
	g.mu.Unlock()
	j.log.Publish(serve.Event{
		Event: m.Event, Done: int(m.Done), Total: int(m.Total),
		Label: m.Label, Cached: m.Cached,
	})
}

func (g *Gateway) handleResult(rw *remoteWorker, m *wire.Result) {
	g.mu.Lock()
	j := g.jobs[m.Job]
	if j == nil {
		g.mu.Unlock()
		return
	}
	delete(rw.assigned, j.id)
	if j.terminal() {
		// A slow worker finishing a job the gateway already failed over.
		// Results are content-addressed, so the duplicate is byte-
		// identical to what we already have; count it and move on.
		g.mu.Unlock()
		g.duplicateResults.Add(1)
		return
	}
	switch m.Status {
	case wire.StatusDone:
		j.status = "done"
		j.body = m.Body
		j.cached = m.Cached
		g.completed.Add(1)
		if m.Cached {
			g.workerCacheHits.Add(1)
		}
		g.cachePut(j.hash, m.Body)
	case wire.StatusCanceled:
		// The worker canceled (drain, timeout-free cancellation) rather
		// than computed an answer; the work itself is still viable on
		// another worker.
		j.owner = ""
		g.mu.Unlock()
		g.cfg.Logf("fleet: %s canceled on %s: resubmitting", j.id, rw.name)
		g.resubmitted.Add(1)
		g.redispatch(j)
		return
	default:
		// Deterministic job failure: retrying elsewhere would fail the
		// same way, so surface it.
		j.status = "failed"
		j.errMsg = m.Error
		g.failed.Add(1)
	}
	status, errMsg := j.status, j.errMsg
	g.mu.Unlock()
	ev := serve.Event{Event: status, Cached: m.Cached}
	if errMsg != "" {
		ev.Error = errMsg
	}
	j.log.Publish(ev)
	close(j.done)
	g.cfg.Logf("fleet: %s %s %s on %s [%s]",
		j.id, j.kind, status, rw.name, serve.HashString(j.hash))
}

func (g *Gateway) handleShed(rw *remoteWorker, m *wire.Shed) {
	g.shedsSeen.Add(1)
	g.mu.Lock()
	j := g.jobs[m.Job]
	if j == nil || j.terminal() {
		g.mu.Unlock()
		return
	}
	delete(rw.assigned, j.id)
	j.owner = ""
	j.shedBy[rw.name] = true
	rw.depth = int(m.Depth) // the shed carries fresher load truth than the last heartbeat
	g.mu.Unlock()
	g.routedAround.Add(1)
	g.cfg.Logf("fleet: %s shed by %s: rerouting", j.id, rw.name)
	g.redispatch(j)
}

// ---- gateway result cache ----

// cachePut stores a completed body under its spec hash, evicting the
// oldest entry once the bound is reached. Re-storing an existing hash
// is a no-op: results are content-addressed, so the bytes are already
// identical and the original's eviction age stands.
func (g *Gateway) cachePut(hash uint64, body []byte) {
	g.cacheMu.Lock()
	defer g.cacheMu.Unlock()
	if _, ok := g.cacheBody[hash]; ok {
		return
	}
	for len(g.cacheOrder) >= g.cfg.CacheEntries {
		delete(g.cacheBody, g.cacheOrder[0])
		g.cacheOrder = g.cacheOrder[1:]
	}
	g.cacheBody[hash] = body
	g.cacheOrder = append(g.cacheOrder, hash)
}

func (g *Gateway) cacheGet(hash uint64) ([]byte, bool) {
	g.cacheMu.Lock()
	defer g.cacheMu.Unlock()
	body, ok := g.cacheBody[hash]
	return body, ok
}

// preferredUnavailable reports whether the rendezvous-preferred owner
// for j cannot take it right now: no workers at all, the owner is
// saturated, or it already shed this job. That is the moment a cached
// repeat is worth answering from the gateway — when the owner is free,
// forwarding is as fast and keeps the worker's own LRU warm.
func (g *Gateway) preferredUnavailable(j *gwJob) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.workers) == 0 {
		return true
	}
	names := make([]string, 0, len(g.workers))
	for name := range g.workers { //detvet:ok RankOwners sorts by weight below
		names = append(names, name)
	}
	pref := g.workers[RankOwners(j.hash, names)[0]]
	return (pref.capacity > 0 && pref.depth >= pref.capacity) || j.shedBy[pref.name]
}

// ---- dispatch ----

var (
	errNoWorkers = errors.New("fleet: no workers registered")
	errSaturated = errors.New("fleet: all workers saturated")
)

// pickWorker chooses the dispatch target for a job under g.mu:
// rendezvous ranking over live workers, skipping saturated ones
// (heartbeat depth at capacity) and ones that already shed this job.
// Returns errSaturated when workers exist but none can take the job.
func (g *Gateway) pickWorker(j *gwJob) (*remoteWorker, error) {
	if len(g.workers) == 0 {
		return nil, errNoWorkers
	}
	names := make([]string, 0, len(g.workers))
	for name := range g.workers { //detvet:ok RankOwners sorts by weight below
		names = append(names, name)
	}
	for _, name := range RankOwners(j.hash, names) {
		rw := g.workers[name]
		if rw.depth >= rw.capacity && rw.capacity > 0 {
			continue // saturated: route around instead of forwarding its 429
		}
		if j.shedBy[name] {
			continue
		}
		return rw, nil
	}
	return nil, errSaturated
}

// dispatch assigns and sends a job. On errSaturated the caller decides:
// the admission path turns it into 429, the failover path parks the job
// for the redispatch ticker.
func (g *Gateway) dispatch(j *gwJob) error {
	g.mu.Lock()
	rw, err := g.pickWorker(j)
	if err != nil {
		g.mu.Unlock()
		return err
	}
	j.owner = rw.name
	j.status = "queued"
	rw.assigned[j.id] = j
	// Optimistic bump so a burst between heartbeats spreads instead of
	// dogpiling the first worker; the next heartbeat restores truth.
	rw.depth++
	g.mu.Unlock()
	if err := g.send(rw, &wire.Submit{Job: j.id, Hash: j.hash, Spec: j.specBytes}); err != nil {
		// The connection died mid-send; dropWorker reassigns everything
		// it owed, including this job.
		g.dropWorker(rw, err)
		return nil
	}
	return nil
}

// redispatch is dispatch for jobs that already ran somewhere: it
// enforces the retry budget and parks when the fleet is full or empty.
func (g *Gateway) redispatch(j *gwJob) {
	g.mu.Lock()
	if j.terminal() {
		g.mu.Unlock()
		return
	}
	j.retries++
	if j.retries > g.cfg.MaxRetries {
		j.status = "failed"
		j.errMsg = fmt.Sprintf("fleet: gave up after %d dispatch attempts", j.retries)
		g.mu.Unlock()
		g.failed.Add(1)
		j.log.Publish(serve.Event{Event: "failed", Error: j.errMsg})
		close(j.done)
		return
	}
	g.mu.Unlock()
	if err := g.dispatch(j); err != nil {
		g.mu.Lock()
		j.owner = ""
		j.status = "queued"
		g.pending = append(g.pending, j)
		g.mu.Unlock()
		g.parked.Add(1)
		g.cfg.Logf("fleet: %s parked (%v)", j.id, err)
	}
}

// dispatchPending retries parked jobs; called when capacity may have
// appeared (heartbeat, registration) and from the ticker.
func (g *Gateway) dispatchPending() {
	g.mu.Lock()
	parked := g.pending
	g.pending = nil
	g.mu.Unlock()
	for i, j := range parked {
		if j.terminal() {
			continue
		}
		if err := g.dispatch(j); err != nil {
			// Still no room: park this and the rest back, preserving order.
			g.mu.Lock()
			for _, rest := range parked[i:] {
				if !rest.terminal() {
					g.pending = append(g.pending, rest)
				}
			}
			g.mu.Unlock()
			return
		}
	}
}

func (g *Gateway) redispatchTicker() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.RetryEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			g.dispatchPending()
		case <-g.stopTick:
			return
		}
	}
}

// ---- client HTTP side ----

// Handler returns the client-facing HTTP surface: the same routes,
// shapes, and NDJSON streaming contract as internal/serve's daemon, so
// socctl needs no gateway mode.
func (g *Gateway) Handler() http.Handler { return g.mux }

func (g *Gateway) routes() {
	g.mux.HandleFunc("POST /jobs", g.handleSubmit)
	g.mux.HandleFunc("GET /jobs", g.handleList)
	g.mux.HandleFunc("GET /jobs/{id}", g.handleStatus)
	g.mux.HandleFunc("GET /jobs/{id}/result", g.handleJobResult)
	g.mux.HandleFunc("GET /jobs/{id}/stream", g.handleStream)
	g.mux.HandleFunc("GET /workers", g.handleWorkers)
	g.mux.HandleFunc("GET /metrics", g.handleMetrics)
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
}

type submitResponse struct {
	ID     string `json:"id"`
	Hash   string `json:"hash"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
}

type statusResponse struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`
	Hash   string `json:"hash"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	Worker string `json:"worker,omitempty"`
	Error  string `json:"error,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (g *Gateway) handleSubmit(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "reading spec: %v", err)
		return
	}
	spec, err := serve.ParseSpec(data)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	wait := r.URL.Query().Get("wait") == "1"
	g.submitted.Add(1)

	g.mu.Lock()
	if g.draining {
		g.mu.Unlock()
		w.Header().Set("Retry-After", "30")
		writeErr(w, http.StatusServiceUnavailable, "draining: not admitting jobs")
		return
	}
	g.seq++
	j := &gwJob{
		id:        fmt.Sprintf("job-%d", g.seq),
		kind:      spec.Kind,
		hash:      spec.Hash(),
		specBytes: spec.Canonical(),
		log:       serve.NewEventLog(),
		done:      make(chan struct{}),
		status:    "queued",
		shedBy:    make(map[string]bool),
	}
	g.jobs[j.id] = j
	g.order = append(g.order, j.id)
	g.mu.Unlock()

	// A repeat of a completed spec whose preferred owner has no room is
	// answered from the gateway's own result cache: byte-identical to a
	// worker round-trip (results are deterministic in the canonical
	// spec), with no queueing behind the saturated owner and no 429.
	if body, ok := g.cacheGet(j.hash); ok && g.preferredUnavailable(j) {
		g.mu.Lock()
		j.status = "done"
		j.body = body
		j.cached = true
		g.mu.Unlock()
		g.completed.Add(1)
		g.gatewayCacheHits.Add(1)
		j.log.Publish(serve.Event{Event: "queued", Label: j.kind})
		j.log.Publish(serve.Event{Event: "done", Cached: true})
		close(j.done)
		g.cfg.Logf("fleet: %s %s served from gateway cache [%s]",
			j.id, j.kind, serve.HashString(j.hash))
		if wait {
			g.writeResult(w, j)
			return
		}
		writeJSON(w, http.StatusAccepted, submitResponse{
			ID: j.id, Hash: serve.HashString(j.hash), Status: "done", Cached: true,
		})
		return
	}

	if err := g.dispatch(j); err != nil {
		// Aggregated shed: the job is refused only when NO worker can
		// take it, with a Retry-After computed from fleet-wide load —
		// a single hot worker never surfaces as a client-visible 429.
		g.mu.Lock()
		delete(g.jobs, j.id)
		if n := len(g.order); n > 0 && g.order[n-1] == j.id {
			g.order = g.order[:n-1]
		}
		totalLoad, workers := 0, 0
		for _, rw := range g.workers { //detvet:ok load sum, order-free
			totalLoad += rw.depth + rw.inFlight
			workers++
		}
		g.mu.Unlock()
		if errors.Is(err, errNoWorkers) {
			w.Header().Set("Retry-After", "5")
			writeErr(w, http.StatusServiceUnavailable, "no workers registered")
			return
		}
		retry := 1 + 2*totalLoad/workers
		if retry > 60 {
			retry = 60
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		writeErr(w, http.StatusTooManyRequests,
			"fleet saturated (%d workers all at capacity): retry after %ds", workers, retry)
		return
	}
	j.log.Publish(serve.Event{Event: "queued", Label: j.kind})

	if wait {
		select {
		case <-j.done:
			g.writeResult(w, j)
		case <-r.Context().Done():
			writeErr(w, http.StatusRequestTimeout, "client canceled while waiting for %s", j.id)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{
		ID: j.id, Hash: serve.HashString(j.hash), Status: "queued", Cached: false,
	})
}

func (g *Gateway) lookup(id string) (*gwJob, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	j, ok := g.jobs[id]
	return j, ok
}

func (g *Gateway) statusOf(j *gwJob) statusResponse {
	g.mu.Lock()
	defer g.mu.Unlock()
	return statusResponse{
		ID: j.id, Kind: j.kind, Hash: serve.HashString(j.hash),
		Status: j.status, Cached: j.cached, Worker: j.owner, Error: j.errMsg,
	}
}

func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	ids := append([]string(nil), g.order...)
	g.mu.Unlock()
	out := make([]statusResponse, 0, len(ids))
	for _, id := range ids {
		if j, ok := g.lookup(id); ok {
			out = append(out, g.statusOf(j))
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (g *Gateway) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, g.statusOf(j))
}

// writeResult serves a finished job's body verbatim — the bytes the
// worker computed are the bytes on the wire, end to end, which is what
// makes gateway results byte-identical to single-daemon results.
func (g *Gateway) writeResult(w http.ResponseWriter, j *gwJob) {
	g.mu.Lock()
	status, body, errMsg, cached, owner := j.status, j.body, j.errMsg, j.cached, j.owner
	g.mu.Unlock()
	switch status {
	case "done":
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Job-Id", j.id)
		if cached {
			w.Header().Set("X-Cache", "hit")
		} else {
			w.Header().Set("X-Cache", "miss")
		}
		if owner != "" {
			w.Header().Set("X-Worker", owner)
		}
		w.Write(body)
	case "failed":
		writeErr(w, http.StatusInternalServerError, "%s", errMsg)
	case "canceled":
		writeErr(w, http.StatusConflict, "%s", errMsg)
	default:
		writeJSON(w, http.StatusAccepted, g.statusOf(j))
	}
}

func (g *Gateway) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	g.writeResult(w, j)
}

// handleStream tails a job's event log as chunked NDJSON, exactly like
// the single-daemon endpoint: full replay, then live events until the
// terminal one. Failover is visible as a second queued/start sequence
// mid-stream — the seam the fleet smoke test greps for.
func (g *Gateway) handleStream(w http.ResponseWriter, r *http.Request) {
	j, ok := g.lookup(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	flusher, canFlush := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	replay, live, cancel := j.log.Subscribe()
	defer cancel()
	for _, e := range replay {
		enc.Encode(e)
	}
	if canFlush {
		flusher.Flush()
	}
	if live == nil {
		return
	}
	for {
		select {
		case e, ok := <-live:
			if !ok {
				return
			}
			enc.Encode(e)
			if canFlush {
				flusher.Flush()
			}
			if e.Terminal() {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

// workerRow is the GET /workers reply row.
type workerRow struct {
	Name     string `json:"name"`
	Depth    int    `json:"depth"`
	InFlight int    `json:"in_flight"`
	Capacity int    `json:"capacity"`
	Assigned int    `json:"assigned"`
}

func (g *Gateway) handleWorkers(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	rows := make([]workerRow, 0, len(g.workers))
	for name, rw := range g.workers { //detvet:ok sorted below
		rows = append(rows, workerRow{
			Name: name, Depth: rw.depth, InFlight: rw.inFlight,
			Capacity: rw.capacity, Assigned: len(rw.assigned),
		})
	}
	g.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"workers": rows})
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	g.reg.WriteJSON(w)
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	draining := g.draining
	workers := len(g.workers)
	inFlight := 0
	for _, j := range g.jobs { //detvet:ok order-free count
		if !j.terminal() {
			inFlight++
		}
	}
	g.mu.Unlock()
	status := "ok"
	code := http.StatusOK
	switch {
	case draining:
		status = "draining"
		code = http.StatusServiceUnavailable
	case workers == 0:
		status = "no-workers"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"workers":   workers,
		"in_flight": inFlight,
	})
}

// BeginDrain stops admission; subsequent submissions get 503.
// Idempotent.
func (g *Gateway) BeginDrain() {
	g.mu.Lock()
	g.draining = true
	g.mu.Unlock()
}

// Shutdown drains the gateway: stop admitting, wait for in-flight jobs
// to reach terminal states (workers keep computing) until ctx expires,
// then drop every worker connection and stop the ticker. Callers close
// their listeners first so no new connections race the teardown.
func (g *Gateway) Shutdown(ctx context.Context) error {
	g.BeginDrain()
	var err error
wait:
	for {
		g.mu.Lock()
		busy := 0
		for _, j := range g.jobs { //detvet:ok order-free count
			if !j.terminal() {
				busy++
			}
		}
		g.mu.Unlock()
		if busy == 0 {
			break
		}
		select {
		case <-ctx.Done():
			err = ctx.Err()
			break wait
		case <-time.After(20 * time.Millisecond):
		}
	}
	g.mu.Lock()
	conns := make([]*remoteWorker, 0, len(g.workers))
	for _, rw := range g.workers { //detvet:ok teardown, order-free
		rw.gone = true
		conns = append(conns, rw)
	}
	g.workers = make(map[string]*remoteWorker)
	g.mu.Unlock()
	for _, rw := range conns {
		rw.conn.Close()
	}
	close(g.stopTick)
	g.wg.Wait()
	return err
}
