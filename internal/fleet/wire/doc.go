// Package wire is the fleet's binary hot-path codec: length-prefixed,
// versioned frames carrying the gateway↔worker control messages —
// register, ack, heartbeat, submit, progress, result, shed — over one
// long-lived TCP connection per worker. The client-facing surface stays
// HTTP/NDJSON (socctl works unchanged against the gateway); this
// package only replaces the internal leg, where a fleet doing millions
// of small progress and heartbeat exchanges cares about per-message
// cost.
//
// # Encoding
//
// Fields are big-endian, packed in declaration order with no padding or
// tags. Variable-length fields (strings, byte blobs) carry a u32 length
// prefix. The primitives are deliberately udpx-style append/consume
// helpers over reusable buffers:
//
//   - Writer appends into a reusable []byte (WriteUint64, WriteBytes,
//     WriteString, ...); Reset keeps capacity, so a steady-state
//     connection stops allocating.
//   - Reader consumes positionally with a sticky error: decoders read
//     every field unconditionally and check Err once, so a truncated
//     frame cannot desynchronize later reads into garbage values.
//
// Every frame is:
//
//	magic   u16  0xF1EE — rejects cross-protocol accidents fast
//	version u8   protocol generation (currently 1)
//	type    u8   message type (append-only registry)
//	length  u32  payload byte count, bounded by MaxFrame
//	payload      message fields as above
//
// # Compatibility rules
//
// Three rules keep mixed-version fleets upgradeable:
//
//  1. Type values and field layouts of shipped messages are frozen.
//     Evolution appends new message types or new trailing fields, never
//     reorders or renumbers.
//  2. An unknown message type inside a known version is skipped, not
//     fatal — the length prefix keeps the stream in sync, so an old
//     gateway survives a newer worker's extra telemetry frames.
//  3. A version bump is a hard break: ReadMsg rejects mismatched
//     versions and the connection is torn down at registration, so an
//     incompatible pair fails loudly at join time, never mid-job.
//
// Golden-bytes tests in wire_test.go pin the exact encoding of every
// message type; a diff there is a wire-format change and must come with
// a version bump or an appended type.
package wire
