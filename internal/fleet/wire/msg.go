package wire

import (
	"fmt"
	"io"
)

// Type tags a frame's payload. Values are part of the wire contract:
// never renumber a shipped type, only append.
type Type uint8

const (
	TypeRegister  Type = 1 // worker → gateway: join the fleet
	TypeAck       Type = 2 // gateway → worker: registration accepted
	TypeHeartbeat Type = 3 // worker → gateway: liveness + queue load
	TypeSubmit    Type = 4 // gateway → worker: run this job
	TypeProgress  Type = 5 // worker → gateway: non-terminal job event
	TypeResult    Type = 6 // worker → gateway: terminal status + body
	TypeShed      Type = 7 // worker → gateway: could not admit the job
)

func (t Type) String() string {
	switch t {
	case TypeRegister:
		return "register"
	case TypeAck:
		return "ack"
	case TypeHeartbeat:
		return "heartbeat"
	case TypeSubmit:
		return "submit"
	case TypeProgress:
		return "progress"
	case TypeResult:
		return "result"
	case TypeShed:
		return "shed"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Msg is one decoded wire message. Encode appends the payload fields
// (not the frame header) to w; decode consumes them from r. Decoded
// messages own their memory: byte fields are copied out of the frame
// buffer so the buffer can be reused for the next frame.
type Msg interface {
	Type() Type
	encode(w *Writer)
	decode(r *Reader)
}

// Register announces a worker to the gateway. Name is the worker's
// stable identity: a re-registration under a live name replaces the old
// connection (the restart case). Capacity and Workers describe the
// worker's admission queue and pool so the gateway can route by load
// before the first heartbeat arrives.
type Register struct {
	Name     string
	Capacity uint32 // admission queue depth
	Workers  uint32 // worker pool width
}

func (*Register) Type() Type { return TypeRegister }
func (m *Register) encode(w *Writer) {
	w.WriteString(m.Name)
	w.WriteUint32(m.Capacity)
	w.WriteUint32(m.Workers)
}
func (m *Register) decode(r *Reader) {
	m.Name = r.ReadString()
	m.Capacity = r.ReadUint32()
	m.Workers = r.ReadUint32()
}

// Ack completes registration. Gateway names the fleet so worker logs
// can say who they joined.
type Ack struct {
	Gateway string
}

func (*Ack) Type() Type         { return TypeAck }
func (m *Ack) encode(w *Writer) { w.WriteString(m.Gateway) }
func (m *Ack) decode(r *Reader) { m.Gateway = r.ReadString() }

// Heartbeat is the worker's periodic liveness and load report. Depth
// and InFlight mirror the worker's serve/queue stats; the gateway
// treats Depth >= Capacity as "saturated" and routes around the worker
// instead of forwarding its inevitable shed.
type Heartbeat struct {
	Depth    uint32
	InFlight uint32
	Capacity uint32
}

func (*Heartbeat) Type() Type { return TypeHeartbeat }
func (m *Heartbeat) encode(w *Writer) {
	w.WriteUint32(m.Depth)
	w.WriteUint32(m.InFlight)
	w.WriteUint32(m.Capacity)
}
func (m *Heartbeat) decode(r *Reader) {
	m.Depth = r.ReadUint32()
	m.InFlight = r.ReadUint32()
	m.Capacity = r.ReadUint32()
}

// Submit dispatches one job. Job is the gateway's job id (the handle
// every later frame carries); Hash is the spec's content address;
// Spec is the canonical spec byte string — already normalized, so the
// worker re-derives the identical hash and cache key.
type Submit struct {
	Job  string
	Hash uint64
	Spec []byte
}

func (*Submit) Type() Type { return TypeSubmit }
func (m *Submit) encode(w *Writer) {
	w.WriteString(m.Job)
	w.WriteUint64(m.Hash)
	w.WriteBytes(m.Spec)
}
func (m *Submit) decode(r *Reader) {
	m.Job = r.ReadString()
	m.Hash = r.ReadUint64()
	m.Spec = append([]byte(nil), r.ReadBytes()...)
}

// Progress relays one non-terminal event from the worker's job log.
// Seq is the worker-local sequence number (the gateway re-sequences
// into its own log; Seq is kept for debugging failover seams).
type Progress struct {
	Job    string
	Seq    uint32
	Event  string
	Done   uint32
	Total  uint32
	Label  string
	Cached bool
}

func (*Progress) Type() Type { return TypeProgress }
func (m *Progress) encode(w *Writer) {
	w.WriteString(m.Job)
	w.WriteUint32(m.Seq)
	w.WriteString(m.Event)
	w.WriteUint32(m.Done)
	w.WriteUint32(m.Total)
	w.WriteString(m.Label)
	w.WriteBool(m.Cached)
}
func (m *Progress) decode(r *Reader) {
	m.Job = r.ReadString()
	m.Seq = r.ReadUint32()
	m.Event = r.ReadString()
	m.Done = r.ReadUint32()
	m.Total = r.ReadUint32()
	m.Label = r.ReadString()
	m.Cached = r.ReadBool()
}

// Result statuses. Part of the wire contract like Type values.
const (
	StatusDone     uint8 = 1
	StatusFailed   uint8 = 2
	StatusCanceled uint8 = 3
)

// Result terminates a job: status, the error message for failed /
// canceled outcomes, and the canonical result body for done. Cached
// reports whether the worker's LRU served the body without recomputing.
type Result struct {
	Job    string
	Status uint8
	Cached bool
	Error  string
	Body   []byte
}

func (*Result) Type() Type { return TypeResult }
func (m *Result) encode(w *Writer) {
	w.WriteString(m.Job)
	w.WriteUint8(m.Status)
	w.WriteBool(m.Cached)
	w.WriteString(m.Error)
	w.WriteBytes(m.Body)
}
func (m *Result) decode(r *Reader) {
	m.Job = r.ReadString()
	m.Status = r.ReadUint8()
	m.Cached = r.ReadBool()
	m.Error = r.ReadString()
	m.Body = append([]byte(nil), r.ReadBytes()...)
}

// Shed reports that the worker's admission queue refused the job — the
// race where a submit crossed a filling queue before the heartbeat
// could report saturation. The gateway reroutes instead of failing.
type Shed struct {
	Job        string
	RetryAfter uint32 // worker's own backoff estimate, seconds
	Depth      uint32
}

func (*Shed) Type() Type { return TypeShed }
func (m *Shed) encode(w *Writer) {
	w.WriteString(m.Job)
	w.WriteUint32(m.RetryAfter)
	w.WriteUint32(m.Depth)
}
func (m *Shed) decode(r *Reader) {
	m.Job = r.ReadString()
	m.RetryAfter = r.ReadUint32()
	m.Depth = r.ReadUint32()
}

// newMsg allocates the struct for a frame type; nil means the type is
// unknown to this version (the caller skips the frame — types are
// append-only, so skipping is forward-compatible).
func newMsg(t Type) Msg {
	switch t {
	case TypeRegister:
		return &Register{}
	case TypeAck:
		return &Ack{}
	case TypeHeartbeat:
		return &Heartbeat{}
	case TypeSubmit:
		return &Submit{}
	case TypeProgress:
		return &Progress{}
	case TypeResult:
		return &Result{}
	case TypeShed:
		return &Shed{}
	}
	return nil
}

// Append encodes m as one complete frame — header plus payload — onto
// the writer. The writer is not reset first, so callers can batch
// frames into one syscall.
func Append(w *Writer, m Msg) error {
	start := w.Len()
	w.WriteUint16(Magic)
	w.WriteUint8(Version)
	w.WriteUint8(uint8(m.Type()))
	w.WriteUint32(0) // length backpatched below
	payloadStart := w.Len()
	m.encode(w)
	n := w.Len() - payloadStart
	if n > MaxFrame {
		w.B = w.B[:start]
		return headerError(ErrFrameSize, uint64(n))
	}
	w.B[start+4] = byte(n >> 24)
	w.B[start+5] = byte(n >> 16)
	w.B[start+6] = byte(n >> 8)
	w.B[start+7] = byte(n)
	return nil
}

// WriteMsg encodes m into w's buffer and writes it to out in one Write
// call. The writer is reset first; its buffer is reused across calls.
func WriteMsg(out io.Writer, w *Writer, m Msg) error {
	w.Reset()
	if err := Append(w, m); err != nil {
		return err
	}
	_, err := out.Write(w.B)
	return err
}

// ReadMsg reads exactly one frame from in, reusing scratch for the
// payload, and decodes it. An unknown-but-well-framed message type is
// skipped and the next frame read (forward compatibility); a bad magic,
// unsupported version, oversized frame, or truncated payload is a
// terminal error. The returned scratch slice must be passed back in on
// the next call to keep the buffer reuse going.
func ReadMsg(in io.Reader, scratch []byte) (Msg, []byte, error) {
	var hdr [HeaderLen]byte
	for {
		if _, err := io.ReadFull(in, hdr[:]); err != nil {
			return nil, scratch, err
		}
		h := NewReader(hdr[:])
		magic := h.ReadUint16()
		version := h.ReadUint8()
		typ := Type(h.ReadUint8())
		length := h.ReadUint32()
		if magic != Magic {
			return nil, scratch, headerError(ErrBadMagic, uint64(magic))
		}
		if version != Version {
			return nil, scratch, headerError(ErrBadVersion, uint64(version))
		}
		if length > MaxFrame {
			return nil, scratch, headerError(ErrFrameSize, uint64(length))
		}
		if int(length) > cap(scratch) {
			scratch = make([]byte, length)
		}
		payload := scratch[:length]
		if _, err := io.ReadFull(in, payload); err != nil {
			return nil, scratch, err
		}
		m := newMsg(typ)
		if m == nil {
			continue // unknown type: skip, stay in sync
		}
		r := NewReader(payload)
		m.decode(r)
		if err := r.Err(); err != nil {
			return nil, scratch, fmt.Errorf("wire: decoding %v: %w", typ, err)
		}
		return m, scratch, nil
	}
}
