package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Codec limits. MaxFrame bounds a frame's payload so a corrupt or
// hostile length prefix can never balloon an allocation; result bodies
// are canonical JSON of campaign summaries and stay far below it.
const (
	// Magic opens every frame. Two bytes chosen to be invalid UTF-8 and
	// an invalid HTTP method start, so a client that accidentally speaks
	// HTTP at the worker port fails the handshake immediately.
	Magic uint16 = 0xF1EE

	// Version is the protocol generation this package encodes. A frame
	// carries its version; see Compat in doc.go for the rules.
	Version uint8 = 1

	// MaxFrame is the maximum payload length WriteFrame accepts and
	// ReadFrame honors.
	MaxFrame = 16 << 20

	// HeaderLen is the fixed frame-header size:
	// magic u16 | version u8 | type u8 | length u32.
	HeaderLen = 8
)

// Errors surfaced by the consume path. All are terminal for the
// connection that produced them: framing is byte-positional, so one
// bad offset poisons everything after it.
var (
	ErrShortBuffer = errors.New("wire: read past end of buffer")
	ErrBadMagic    = errors.New("wire: bad frame magic")
	ErrBadVersion  = errors.New("wire: unsupported protocol version")
	ErrFrameSize   = errors.New("wire: frame exceeds MaxFrame")
)

// Writer appends big-endian fields to a reusable byte slice. The zero
// value is ready; Reset keeps the backing array so a long-lived
// connection allocates only while its largest frame is still growing.
type Writer struct {
	B []byte
}

// Reset empties the writer, keeping capacity.
func (w *Writer) Reset() { w.B = w.B[:0] }

// Len returns the number of bytes written since the last Reset.
func (w *Writer) Len() int { return len(w.B) }

func (w *Writer) WriteUint8(v uint8)   { w.B = append(w.B, v) }
func (w *Writer) WriteUint16(v uint16) { w.B = binary.BigEndian.AppendUint16(w.B, v) }
func (w *Writer) WriteUint32(v uint32) { w.B = binary.BigEndian.AppendUint32(w.B, v) }
func (w *Writer) WriteUint64(v uint64) { w.B = binary.BigEndian.AppendUint64(w.B, v) }

// WriteBool encodes a bool as one byte, 0 or 1.
func (w *Writer) WriteBool(v bool) {
	if v {
		w.WriteUint8(1)
	} else {
		w.WriteUint8(0)
	}
}

// WriteBytes appends a u32 length prefix followed by p verbatim.
func (w *Writer) WriteBytes(p []byte) {
	w.WriteUint32(uint32(len(p)))
	w.B = append(w.B, p...)
}

// WriteString appends s with the same framing as WriteBytes.
func (w *Writer) WriteString(s string) {
	w.WriteUint32(uint32(len(s)))
	w.B = append(w.B, s...)
}

// Reader consumes big-endian fields from a byte slice. Errors are
// sticky: after the first short read every subsequent Read returns a
// zero value, so decoders read all fields unconditionally and check
// Err once at the end.
type Reader struct {
	B   []byte
	off int
	err error
}

// NewReader returns a reader positioned at the start of b.
func NewReader(b []byte) *Reader { return &Reader{B: b} }

// Err returns the first consume error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unconsumed bytes.
func (r *Reader) Remaining() int { return len(r.B) - r.off }

// take claims n bytes, or trips the sticky error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.B)-r.off < n {
		r.err = ErrShortBuffer
		return nil
	}
	p := r.B[r.off : r.off+n]
	r.off += n
	return p
}

func (r *Reader) ReadUint8() uint8 {
	p := r.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (r *Reader) ReadUint16() uint16 {
	p := r.take(2)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint16(p)
}

func (r *Reader) ReadUint32() uint32 {
	p := r.take(4)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint32(p)
}

func (r *Reader) ReadUint64() uint64 {
	p := r.take(8)
	if p == nil {
		return 0
	}
	return binary.BigEndian.Uint64(p)
}

func (r *Reader) ReadBool() bool { return r.ReadUint8() != 0 }

// ReadBytes consumes a u32 length prefix and returns the following
// bytes as a subslice of the reader's buffer — no copy. Callers that
// retain the value past the buffer's reuse must copy; the message
// decoders in msg.go do.
func (r *Reader) ReadBytes() []byte {
	n := r.ReadUint32()
	if r.err != nil {
		return nil
	}
	return r.take(int(n))
}

// ReadString consumes a u32 length prefix and returns the following
// bytes as a string (which copies, so strings are always safe to keep).
func (r *Reader) ReadString() string { return string(r.ReadBytes()) }

// headerError renders a reject reason with the offending value, for
// connection-teardown logs.
func headerError(err error, v uint64) error { return fmt.Errorf("%w (%#x)", err, v) }
