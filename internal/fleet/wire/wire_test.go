package wire

import (
	"bytes"
	"encoding/hex"
	"io"
	"reflect"
	"testing"
)

// golden pins the byte-exact encoding of every message type. A failure
// here is a wire-format change: bump Version or append, never edit.
func TestGoldenFrames(t *testing.T) {
	cases := []struct {
		name string
		msg  Msg
		hex  string
	}{
		{
			name: "register",
			msg:  &Register{Name: "w1", Capacity: 16, Workers: 2},
			hex: "f1ee" + "01" + "01" + "0000000e" + // header, len 14
				"00000002" + "7731" + // "w1"
				"00000010" + // capacity 16
				"00000002", // workers 2
		},
		{
			name: "ack",
			msg:  &Ack{Gateway: "gw"},
			hex:  "f1ee" + "01" + "02" + "00000006" + "00000002" + "6777",
		},
		{
			name: "heartbeat",
			msg:  &Heartbeat{Depth: 3, InFlight: 2, Capacity: 16},
			hex: "f1ee" + "01" + "03" + "0000000c" +
				"00000003" + "00000002" + "00000010",
		},
		{
			name: "submit",
			msg:  &Submit{Job: "job-7", Hash: 0x0123456789abcdef, Spec: []byte(`{"kind":"sim"}`)},
			hex: "f1ee" + "01" + "04" + "00000023" +
				"00000005" + hex.EncodeToString([]byte("job-7")) +
				"0123456789abcdef" +
				"0000000e" + hex.EncodeToString([]byte(`{"kind":"sim"}`)),
		},
		{
			name: "progress",
			msg: &Progress{Job: "job-7", Seq: 4, Event: "progress",
				Done: 3, Total: 8, Label: "seed[3]", Cached: false},
			hex: "f1ee" + "01" + "05" + "0000002d" +
				"00000005" + hex.EncodeToString([]byte("job-7")) +
				"00000004" +
				"00000008" + hex.EncodeToString([]byte("progress")) +
				"00000003" + "00000008" +
				"00000007" + hex.EncodeToString([]byte("seed[3]")) +
				"00",
		},
		{
			name: "result",
			msg: &Result{Job: "job-7", Status: StatusDone, Cached: true,
				Error: "", Body: []byte("{\"ok\":true}\n")},
			hex: "f1ee" + "01" + "06" + "0000001f" +
				"00000005" + hex.EncodeToString([]byte("job-7")) +
				"01" + "01" +
				"00000000" +
				"0000000c" + hex.EncodeToString([]byte("{\"ok\":true}\n")),
		},
		{
			name: "shed",
			msg:  &Shed{Job: "job-9", RetryAfter: 7, Depth: 16},
			hex: "f1ee" + "01" + "07" + "00000011" +
				"00000005" + hex.EncodeToString([]byte("job-9")) +
				"00000007" + "00000010",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var w Writer
			if err := Append(&w, tc.msg); err != nil {
				t.Fatal(err)
			}
			want, err := hex.DecodeString(tc.hex)
			if err != nil {
				t.Fatalf("bad golden hex: %v", err)
			}
			if !bytes.Equal(w.B, want) {
				t.Errorf("encoding drifted:\n got %x\nwant %x", w.B, want)
			}
			// Round trip through the stream reader.
			got, _, err := ReadMsg(bytes.NewReader(w.B), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(normalize(got), normalize(tc.msg)) {
				t.Errorf("round trip: got %+v want %+v", got, tc.msg)
			}
		})
	}
}

// normalize maps nil and empty byte slices together: the decoder always
// materializes a non-nil slice for a present length-0 field.
func normalize(m Msg) Msg {
	switch m := m.(type) {
	case *Submit:
		c := *m
		if len(c.Spec) == 0 {
			c.Spec = nil
		}
		return &c
	case *Result:
		c := *m
		if len(c.Body) == 0 {
			c.Body = nil
		}
		return &c
	}
	return m
}

// TestStreamOfFrames drives several frames through one reader with a
// shared scratch buffer, as a connection does.
func TestStreamOfFrames(t *testing.T) {
	msgs := []Msg{
		&Register{Name: "worker-a", Capacity: 8, Workers: 4},
		&Heartbeat{Depth: 1, InFlight: 4, Capacity: 8},
		&Submit{Job: "job-1", Hash: 42, Spec: []byte("{}")},
		&Progress{Job: "job-1", Seq: 0, Event: "queued"},
		&Result{Job: "job-1", Status: StatusFailed, Error: "boom"},
		&Shed{Job: "job-2", RetryAfter: 3, Depth: 8},
	}
	var w Writer
	for _, m := range msgs {
		if err := Append(&w, m); err != nil {
			t.Fatal(err)
		}
	}
	r := bytes.NewReader(w.B)
	var scratch []byte
	for i, want := range msgs {
		var got Msg
		var err error
		got, scratch, err = ReadMsg(r, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(got), normalize(want)) {
			t.Errorf("frame %d: got %+v want %+v", i, got, want)
		}
	}
	if _, _, err := ReadMsg(r, scratch); err != io.EOF {
		t.Errorf("after last frame: got %v want EOF", err)
	}
}

// TestUnknownTypeSkipped checks forward compatibility: a well-framed
// unknown type is skipped and the following frame decodes.
func TestUnknownTypeSkipped(t *testing.T) {
	var w Writer
	w.WriteUint16(Magic)
	w.WriteUint8(Version)
	w.WriteUint8(200) // future message type
	w.WriteUint32(3)
	w.B = append(w.B, 0xde, 0xad, 0x01)
	if err := Append(&w, &Heartbeat{Depth: 5, InFlight: 1, Capacity: 9}); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadMsg(bytes.NewReader(w.B), nil)
	if err != nil {
		t.Fatal(err)
	}
	hb, ok := got.(*Heartbeat)
	if !ok || hb.Depth != 5 || hb.InFlight != 1 || hb.Capacity != 9 {
		t.Errorf("got %+v, want the heartbeat after the unknown frame", got)
	}
}

func TestHeaderRejections(t *testing.T) {
	frame := func(mut func(b []byte)) []byte {
		var w Writer
		if err := Append(&w, &Ack{Gateway: "g"}); err != nil {
			t.Fatal(err)
		}
		b := append([]byte(nil), w.B...)
		mut(b)
		return b
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"bad magic", frame(func(b []byte) { b[0] = 'G' }), ErrBadMagic},
		{"bad version", frame(func(b []byte) { b[2] = 99 }), ErrBadVersion},
		{"oversized", frame(func(b []byte) {
			b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0xff
		}), ErrFrameSize},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadMsg(bytes.NewReader(tc.b), nil)
			if err == nil || !errorsIs(err, tc.want) {
				t.Errorf("got %v, want %v", err, tc.want)
			}
		})
	}
	t.Run("truncated payload", func(t *testing.T) {
		b := frame(func([]byte) {})
		_, _, err := ReadMsg(bytes.NewReader(b[:len(b)-2]), nil)
		if err == nil {
			t.Error("truncated payload decoded")
		}
	})
}

// errorsIs avoids importing errors just for Is in this file.
func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestReaderStickyError: after a short read, every later read returns
// zero values and the original error.
func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x01})
	if got := r.ReadUint32(); got != 0 {
		t.Errorf("short ReadUint32 = %d, want 0", got)
	}
	if got := r.ReadUint64(); got != 0 {
		t.Errorf("read after error = %d, want 0", got)
	}
	if r.ReadString() != "" {
		t.Error("string after error not empty")
	}
	if r.Err() != ErrShortBuffer {
		t.Errorf("Err = %v, want ErrShortBuffer", r.Err())
	}
}

// TestWriterReuse: Reset keeps capacity; the steady state allocates
// nothing.
func TestWriterReuse(t *testing.T) {
	var w Writer
	if err := Append(&w, &Heartbeat{Depth: 1, InFlight: 2, Capacity: 3}); err != nil {
		t.Fatal(err)
	}
	capBefore := cap(w.B)
	for i := 0; i < 100; i++ {
		w.Reset()
		if err := Append(&w, &Heartbeat{Depth: 1, InFlight: 2, Capacity: 3}); err != nil {
			t.Fatal(err)
		}
	}
	if cap(w.B) != capBefore {
		t.Errorf("writer reallocated: cap %d -> %d", capBefore, cap(w.B))
	}
}
