package fleet

// End-to-end fleet tests: a real Gateway fronting real serve.Server
// workers connected over loopback TCP, driven through the client HTTP
// surface exactly as socctl would. Job timing is controlled with the
// same gate idiom internal/serve's tests use: a synthetic job kind
// that parks until its seed's gate channel opens.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/serve"
)

var (
	gateMu sync.Mutex
	gates  = map[int64]chan struct{}{}
	// seedCounter hands out fresh gate seeds so repeated runs (-count>1)
	// never reuse a gate an earlier iteration already closed.
	seedCounter atomic.Int64
)

func nextSeed() int64 { return seedCounter.Add(1) }

func gate(seed int64) chan struct{} {
	gateMu.Lock()
	defer gateMu.Unlock()
	ch, ok := gates[seed]
	if !ok {
		ch = make(chan struct{})
		gates[seed] = ch
	}
	return ch
}

func openGate(seed int64) {
	ch := gate(seed)
	select {
	case <-ch:
	default:
		close(ch)
	}
}

func TestMain(m *testing.M) {
	// "fleettest" parks until its gate opens (seed 0 = ungated), then
	// returns a body derived only from the spec — the determinism the
	// byte-identity assertions lean on.
	serve.RegisterTestKind("fleettest", func(c *exp.Ctx, spec serve.Spec, p serve.Progress) ([]byte, error) {
		if spec.Seed != 0 {
			select {
			case <-gate(spec.Seed):
			case <-c.Context().Done():
				return nil, c.Context().Err()
			}
		}
		return []byte(fmt.Sprintf("{\"kind\":\"fleettest\",\"seed\":%d,\"messages\":%d}\n",
			spec.Seed, spec.Messages)), nil
	})
	os.Exit(m.Run())
}

// testGateway runs a gateway with fast failover timings plus its two
// listeners; cleanup tears everything down.
func testGateway(t *testing.T, cfg GatewayConfig) (*Gateway, *httptest.Server, net.Listener) {
	t.Helper()
	if cfg.DeadAfter == 0 {
		cfg.DeadAfter = 2 * time.Second
	}
	if cfg.RetryEvery == 0 {
		cfg.RetryEvery = 25 * time.Millisecond
	}
	gw := NewGateway(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go gw.ServeWorkers(ln)
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() {
		ts.Close()
		ln.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		gw.Shutdown(ctx)
	})
	return gw, ts, ln
}

// testWorker starts a daemon-side server joined to the gateway as a
// fleet worker. The returned cancel kills the worker's fleet session
// (the serve server keeps running, like a socd whose network died).
func testWorker(t *testing.T, name, gwAddr string, cfg serve.Config) (*serve.Server, context.CancelFunc) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 64
	}
	if cfg.JobTimeout == 0 {
		cfg.JobTimeout = -1
	}
	srv := serve.New(cfg)
	wk, err := NewWorker(srv, WorkerConfig{
		Name:      name,
		Gateway:   gwAddr,
		Heartbeat: 50 * time.Millisecond,
		Redial:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go wk.Run(ctx)
	t.Cleanup(func() {
		cancel()
		sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer scancel()
		srv.Shutdown(sctx)
	})
	return srv, cancel
}

type workersReply struct {
	Workers []struct {
		Name     string `json:"name"`
		Depth    int    `json:"depth"`
		Assigned int    `json:"assigned"`
	} `json:"workers"`
}

func getWorkers(t *testing.T, base string) workersReply {
	t.Helper()
	resp, err := http.Get(base + "/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out workersReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func waitRegistered(t *testing.T, base string, n int) {
	t.Helper()
	waitFor(t, fmt.Sprintf("%d workers registered", n), func() bool {
		return len(getWorkers(t, base).Workers) == n
	})
}

func submitWait(t *testing.T, base, spec string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(base+"/jobs?wait=1", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

func metric(t *testing.T, base, path, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Metrics []struct {
			Path  string  `json:"path"`
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	for _, m := range dump.Metrics {
		if m.Path == path && m.Name == name {
			return m.Value
		}
	}
	return 0
}

// TestFleetByteIdenticalToSingleDaemon: the gateway path must return
// exactly the bytes a lone daemon returns for the same specs.
func TestFleetByteIdenticalToSingleDaemon(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{})
	testWorker(t, "w1", ln.Addr().String(), serve.Config{})
	testWorker(t, "w2", ln.Addr().String(), serve.Config{})
	waitRegistered(t, ts.URL, 2)

	specs := []string{
		`{"kind":"fleettest","messages":1}`,
		`{"kind":"fleettest","messages":2}`,
		`{"kind":"fleettest","messages":3}`,
		`{"kind":"fleettest","messages":4}`,
	}
	fleetBodies := make([][]byte, len(specs))
	for i, spec := range specs {
		code, body, _ := submitWait(t, ts.URL, spec)
		if code != http.StatusOK {
			t.Fatalf("spec %d: status %d: %s", i, code, body)
		}
		fleetBodies[i] = body
	}

	// Reference: the same specs through a plain serve.Server.
	ref := serve.New(serve.Config{Workers: 2, QueueDepth: 16, CacheSize: 64, JobTimeout: -1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		ref.Shutdown(ctx)
	}()
	for i, raw := range specs {
		spec, err := serve.ParseSpec([]byte(raw))
		if err != nil {
			t.Fatal(err)
		}
		sub, err := ref.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		<-sub.Done()
		_, body, errMsg, _ := sub.Snapshot()
		if errMsg != "" {
			t.Fatalf("reference run failed: %s", errMsg)
		}
		if !bytes.Equal(fleetBodies[i], body) {
			t.Errorf("spec %d: fleet body %q != single-daemon body %q", i, fleetBodies[i], body)
		}
	}
}

// TestFailoverDeterminism is the fleet's central promise: kill a worker
// after it has accepted jobs, and the completed result set is still
// byte-identical to a single-daemon run — zero jobs lost.
func TestFailoverDeterminism(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{})
	_, cancel1 := testWorker(t, "w1", ln.Addr().String(), serve.Config{Workers: 4})
	testWorker(t, "w2", ln.Addr().String(), serve.Config{Workers: 4})
	waitRegistered(t, ts.URL, 2)

	const n = 8
	seeds := make([]int64, n)
	specs := make([]string, n)
	for i := range seeds {
		seeds[i] = nextSeed()
		specs[i] = fmt.Sprintf(`{"kind":"fleettest","seed":%d,"messages":%d}`, seeds[i], i)
	}

	type outcome struct {
		code int
		body []byte
	}
	results := make([]outcome, n)
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec string) {
			defer wg.Done()
			code, body, _ := submitWait(t, ts.URL, spec)
			results[i] = outcome{code, body}
		}(i, spec)
	}

	// Wait until every job is dispatched and parked on a gate somewhere.
	waitFor(t, "all jobs assigned", func() bool {
		total := 0
		for _, w := range getWorkers(t, ts.URL).Workers {
			total += w.Assigned
		}
		return total == n
	})

	// Kill w1's fleet session. The gateway sees the connection die and
	// must reassign w1's jobs to w2 — while they are still gated.
	cancel1()
	waitFor(t, "w1 reaped", func() bool {
		ws := getWorkers(t, ts.URL).Workers
		return len(ws) == 1 && ws[0].Name == "w2"
	})
	waitFor(t, "orphans reassigned to w2", func() bool {
		ws := getWorkers(t, ts.URL).Workers
		return len(ws) == 1 && ws[0].Assigned == n
	})

	for _, s := range seeds {
		openGate(s)
	}
	wg.Wait()

	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("job %d lost in failover: status %d: %s", i, r.code, r.body)
		}
	}
	if got := metric(t, ts.URL, "fleet/failover", "resubmitted"); got == 0 {
		t.Error("failover happened but fleet/failover resubmitted == 0")
	}
	if got := metric(t, ts.URL, "fleet/failover", "worker_deaths"); got == 0 {
		t.Error("worker died but fleet/failover worker_deaths == 0")
	}

	// Byte identity: same specs through a lone daemon (gates already
	// open, so the reference runs straight through).
	ref := serve.New(serve.Config{Workers: 4, QueueDepth: 16, CacheSize: 64, JobTimeout: -1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		ref.Shutdown(ctx)
	}()
	for i, raw := range specs {
		spec, err := serve.ParseSpec([]byte(raw))
		if err != nil {
			t.Fatal(err)
		}
		sub, err := ref.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		<-sub.Done()
		_, body, _, _ := sub.Snapshot()
		if !bytes.Equal(results[i].body, body) {
			t.Errorf("job %d: failover body %q != single-daemon body %q", i, results[i].body, body)
		}
	}
}

// TestWorkerCacheAffinity: resubmitting a spec must hit the worker LRU
// that already holds the result (rendezvous routes repeats to the same
// worker) and surface as X-Cache: hit end to end.
func TestWorkerCacheAffinity(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{})
	testWorker(t, "w1", ln.Addr().String(), serve.Config{})
	testWorker(t, "w2", ln.Addr().String(), serve.Config{})
	waitRegistered(t, ts.URL, 2)

	spec := `{"kind":"fleettest","messages":7}`
	code, first, h1 := submitWait(t, ts.URL, spec)
	if code != http.StatusOK {
		t.Fatalf("first run: status %d: %s", code, first)
	}
	if h1.Get("X-Cache") != "miss" {
		t.Fatalf("first run should miss, got X-Cache=%q", h1.Get("X-Cache"))
	}
	code, second, h2 := submitWait(t, ts.URL, spec)
	if code != http.StatusOK {
		t.Fatalf("second run: status %d: %s", code, second)
	}
	if h2.Get("X-Cache") != "hit" {
		t.Errorf("repeat spec should hit the worker cache, got X-Cache=%q", h2.Get("X-Cache"))
	}
	if w1, w2 := h1.Get("X-Worker"), h2.Get("X-Worker"); w1 != w2 {
		t.Errorf("repeat spec routed to %q then %q; rendezvous should pin it", w1, w2)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached body differs: %q vs %q", first, second)
	}
	if got := metric(t, ts.URL, "fleet/jobs", "worker_cache_hits"); got == 0 {
		t.Error("fleet/jobs worker_cache_hits == 0 after a cache hit")
	}
}

// TestSaturationRouteAround: a worker whose queue is full must be
// skipped in rendezvous order — clients never see its 429 while
// another worker has room.
func TestSaturationRouteAround(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{})
	srv1, _ := testWorker(t, "w1", ln.Addr().String(), serve.Config{Workers: 1, QueueDepth: 1})
	testWorker(t, "w2", ln.Addr().String(), serve.Config{Workers: 2, QueueDepth: 16})
	waitRegistered(t, ts.URL, 2)

	// Saturate w1 outside the gateway: one gated job running, one queued
	// — its heartbeat now reports depth == capacity.
	hold1, hold2 := nextSeed(), nextSeed()
	for _, s := range []int64{hold1, hold2} {
		spec, err := serve.ParseSpec([]byte(fmt.Sprintf(`{"kind":"fleettest","seed":%d}`, s)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv1.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	defer openGate(hold1)
	defer openGate(hold2)
	waitFor(t, "w1 saturated in gateway view", func() bool {
		for _, w := range getWorkers(t, ts.URL).Workers {
			if w.Name == "w1" && w.Depth >= 1 {
				return true
			}
		}
		return false
	})

	// Every submission must land on w2, whatever its rendezvous owner.
	for i := 0; i < 6; i++ {
		code, body, h := submitWait(t, ts.URL,
			fmt.Sprintf(`{"kind":"fleettest","messages":%d}`, 100+i))
		if code != http.StatusOK {
			t.Fatalf("job %d: fleet had capacity on w2 but returned %d: %s", i, code, body)
		}
		if got := h.Get("X-Worker"); got != "w2" {
			t.Errorf("job %d: routed to %q, want w2 (w1 is saturated)", i, got)
		}
	}
}

// TestAllSaturated429: only when every worker is saturated does the
// client see backpressure, with an aggregate Retry-After.
func TestAllSaturated429(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{})
	srv1, _ := testWorker(t, "w1", ln.Addr().String(), serve.Config{Workers: 1, QueueDepth: 1})
	waitRegistered(t, ts.URL, 1)

	hold1, hold2 := nextSeed(), nextSeed()
	for _, s := range []int64{hold1, hold2} {
		spec, err := serve.ParseSpec([]byte(fmt.Sprintf(`{"kind":"fleettest","seed":%d}`, s)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := srv1.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	defer openGate(hold1)
	defer openGate(hold2)
	waitFor(t, "w1 saturated in gateway view", func() bool {
		ws := getWorkers(t, ts.URL).Workers
		return len(ws) == 1 && ws[0].Depth >= 1
	})

	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"fleettest","messages":55}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

// TestNoWorkers503: an empty fleet refuses admission outright.
func TestNoWorkers503(t *testing.T) {
	_, ts, _ := testGateway(t, GatewayConfig{})
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(`{"kind":"fleettest"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestStreamAcrossFailover: a watcher attached before a failover sees
// one continuous NDJSON log ending in exactly one terminal event.
func TestStreamAcrossFailover(t *testing.T) {
	_, ts, ln := testGateway(t, GatewayConfig{})
	_, cancel1 := testWorker(t, "w1", ln.Addr().String(), serve.Config{})
	waitRegistered(t, ts.URL, 1)

	seed := nextSeed()
	resp, err := http.Post(ts.URL+"/jobs", "application/json",
		strings.NewReader(fmt.Sprintf(`{"kind":"fleettest","seed":%d}`, seed)))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	waitFor(t, "job assigned to w1", func() bool {
		ws := getWorkers(t, ts.URL).Workers
		return len(ws) == 1 && ws[0].Assigned == 1
	})

	stream, err := http.Get(ts.URL + "/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	// Kill w1; bring up w2 to take the orphan; then release the job.
	cancel1()
	testWorker(t, "w2", ln.Addr().String(), serve.Config{})
	waitFor(t, "w2 owns the orphan", func() bool {
		ws := getWorkers(t, ts.URL).Workers
		return len(ws) == 1 && ws[0].Name == "w2" && ws[0].Assigned == 1
	})
	openGate(seed)

	dec := json.NewDecoder(stream.Body)
	terminals := 0
	for {
		var e serve.Event
		if err := dec.Decode(&e); err != nil {
			break
		}
		if e.Terminal() {
			terminals++
			if e.Event != "done" {
				t.Fatalf("job ended %q, want done", e.Event)
			}
		}
	}
	if terminals != 1 {
		t.Fatalf("stream carried %d terminal events, want exactly 1", terminals)
	}
}
