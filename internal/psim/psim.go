// Package psim plans and drives partition-parallel simulation: it cuts a
// design's GALS clock graph into shards along its declared synchronizer
// boundaries and runs the sim package's partition engine over them in
// deterministic time windows.
//
// The division of labor: internal/sim owns the mechanism (the shard
// workers and the conservative key protocol that reproduces sequential
// edge order bit-exactly — see internal/sim/partition.go); psim owns the
// policy — which clocks share a shard, which declared interactions make
// two shards neighbors, and where the window barriers fall that make
// dynamic stop conditions deterministic for every shard count.
package psim

import (
	"fmt"

	"repro/internal/sim"
)

// Plan is one partition cut: clock groups (one per shard) plus the
// cross-group interactions the engine must synchronize on.
type Plan struct {
	Groups  [][]*sim.Clock
	Couples [][2]*sim.Clock
}

// PlanShards cuts the simulator's clocks into at most n shards. Clocks
// are chunked contiguously in creation order — builders lay clocks out
// spatially (the SoC mesh is row-major), so contiguous chunks become
// spatial bands whose only neighbors are the adjacent bands, which is
// what keeps non-adjacent shards free-running in parallel. Every
// declared synchronizer (pausible or brute-force) and every declared
// direct coupling between clocks in different groups becomes a neighbor
// edge; correctness does not depend on the chunking, only throughput
// does.
func PlanShards(s *sim.Simulator, n int) (*Plan, error) {
	clocks := s.Clocks()
	if len(clocks) == 0 {
		return nil, fmt.Errorf("psim: no clocks to partition")
	}
	if n < 1 {
		n = 1
	}
	if n > len(clocks) {
		n = len(clocks)
	}
	p := &Plan{}
	per := (len(clocks) + n - 1) / n
	for lo := 0; lo < len(clocks); lo += per {
		hi := lo + per
		if hi > len(clocks) {
			hi = len(clocks)
		}
		p.Groups = append(p.Groups, clocks[lo:hi:hi])
	}
	d := s.Design()
	for _, sy := range d.Syncs() {
		p.Couples = append(p.Couples, [2]*sim.Clock{sy.Prod, sy.Cons})
	}
	for _, cp := range d.Couplings() {
		p.Couples = append(p.Couples, [2]*sim.Clock{cp.A, cp.B})
	}
	return p, nil
}

// Attach plans an n-way cut and wires the partition engine to the
// simulator. The caller must Close the engine before resuming
// sequential stepping (Close also merges the per-shard trace lanes).
func Attach(s *sim.Simulator, n int) (*sim.Engine, error) {
	p, err := PlanShards(s, n)
	if err != nil {
		return nil, err
	}
	return sim.NewEngine(s, p.Groups, p.Couples)
}

// RunWindows drives the engine in fixed epoch windows until stop returns
// true or the simulator stops (panic or Stop call). Within a window
// every shard runs free under the key protocol — bit-identical to
// sequential by construction; between windows all shards are quiescent
// at the same time boundary, which is the only place a dynamic stop
// condition (firmware exit, cycle budget) can be evaluated without its
// outcome depending on the shard count. The window grid is anchored at
// the simulator's current time, so any two runs with the same epoch see
// identical boundaries regardless of how many shards execute them.
func RunWindows(s *sim.Simulator, e *sim.Engine, epoch sim.Time, stop func() bool) {
	if epoch == 0 {
		epoch = 1
	}
	for t := s.Now() + epoch; ; t += epoch {
		e.Run(t)
		if s.Stopped() || (stop != nil && stop()) {
			return
		}
	}
}
