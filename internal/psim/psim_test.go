package psim_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/gals"
	"repro/internal/psim"
	"repro/internal/sim"
	"repro/internal/trace"
)

// galsRig is a chain of clock domains joined by real pausible bisync
// FIFOs — the exact component the partition planner cuts along — with
// phase-shifted and pre-paused receivers, the clock arrangement of the
// PR 2 pause-window regression. Producer 0 pushes a counting stream;
// each middle stage forwards; the tail checks ordering.
type galsRig struct {
	s      *sim.Simulator
	clocks []*sim.Clock
	fifos  []*gals.PausibleBisyncFIFO[int]
	recv   []int
	sent   int
}

func buildGALSRig(stages int, armed bool) *galsRig {
	s := sim.New()
	if armed {
		s.Arm(trace.NewRecorder())
	}
	r := &galsRig{s: s}
	for i := 0; i <= stages; i++ {
		// Deliberately awkward phases: co-prime-ish periods plus offsets
		// that land pointer crossings inside the 40ps conflict window.
		c := s.AddClock(fmt.Sprintf("dom%02d", i), sim.Time(1000+i*3), sim.Time((i*977)%997))
		r.clocks = append(r.clocks, c)
	}
	// Pre-pause half the receivers so their edges sit off period
	// multiples before any traffic flows (the PR 2 bug class).
	for i := 1; i <= stages; i += 2 {
		r.clocks[i].Pause(sim.Time(1500 + i*211))
	}
	for i := 0; i < stages; i++ {
		f := gals.NewPausibleBisyncFIFO[int](s, fmt.Sprintf("cdc[%d]", i), r.clocks[i], r.clocks[i+1], 4, 40)
		r.fifos = append(r.fifos, f)
	}
	r.clocks[0].Spawn("src", func(th *sim.Thread) {
		for v := 0; ; v++ {
			r.fifos[0].Push(th, v)
			r.sent++
			if v%7 == 3 {
				th.WaitN(2)
			}
		}
	})
	for i := 1; i < stages; i++ {
		i := i
		r.clocks[i].Spawn("fwd", func(th *sim.Thread) {
			for {
				v := r.fifos[i-1].Pop(th)
				r.fifos[i].Push(th, v)
			}
		})
	}
	r.clocks[stages].Spawn("sink", func(th *sim.Thread) {
		for {
			r.recv = append(r.recv, r.fifos[stages-1].Pop(th))
		}
	})
	return r
}

type rigState struct {
	now        sim.Time
	totalEdges uint64
	cycles     []uint64
	pauses     []uint64
	transfers  []uint64
	sent       int
	recv       []int
}

func (r *galsRig) state() rigState {
	st := rigState{now: r.s.Now(), totalEdges: r.s.TotalEdges(), sent: r.sent, recv: r.recv}
	for _, c := range r.clocks {
		st.cycles = append(st.cycles, c.Cycle())
	}
	for _, f := range r.fifos {
		st.pauses = append(st.pauses, f.Pauses)
		st.transfers = append(st.transfers, f.Transfers)
	}
	return st
}

// TestGALSChainBitIdentical: partitioned execution of a pausible-FIFO
// chain with paused, phase-shifted receiver clocks matches the
// sequential kernel exactly — data stream, pause counts, cycle counts,
// and the armed recorder's full event stream.
func TestGALSChainBitIdentical(t *testing.T) {
	const stages, horizon = 4, 300_000
	ref := buildGALSRig(stages, true)
	ref.s.Run(horizon)
	want := ref.state()
	wantEvents := ref.s.Tracer().Events()
	if len(want.recv) == 0 {
		t.Fatal("no traffic crossed the chain")
	}
	var totalPauses uint64
	for _, p := range want.pauses {
		totalPauses += p
	}
	if totalPauses == 0 {
		t.Fatal("no pauses: the rig is not exercising the conflict window")
	}

	for _, n := range []int{1, 2, 5} {
		t.Run(fmt.Sprintf("partitions=%d", n), func(t *testing.T) {
			r := buildGALSRig(stages, true)
			e, err := psim.Attach(r.s, n)
			if err != nil {
				t.Fatal(err)
			}
			e.Run(horizon)
			e.Close()
			if got := r.state(); !reflect.DeepEqual(got, want) {
				t.Errorf("state diverged:\ngot  %+v\nwant %+v", got, want)
			}
			got := r.s.Tracer().Events()
			if len(got) != len(wantEvents) {
				t.Fatalf("event count %d, want %d", len(got), len(wantEvents))
			}
			for i := range got {
				if got[i] != wantEvents[i] {
					t.Fatalf("event %d = %+v, want %+v", i, got[i], wantEvents[i])
				}
			}
		})
	}
}

// TestRunWindowsDeterministicStop: with a dynamic stop condition
// evaluated at window boundaries, every shard count halts at the same
// instant with the same state.
func TestRunWindowsDeterministicStop(t *testing.T) {
	const stages = 3
	run := func(n int) rigState {
		r := buildGALSRig(stages, false)
		e, err := psim.Attach(r.s, n)
		if err != nil {
			t.Fatal(err)
		}
		psim.RunWindows(r.s, e, 64*1000, func() bool { return len(r.recv) >= 40 })
		e.Close()
		return r.state()
	}
	want := run(1)
	if len(want.recv) < 40 {
		t.Fatalf("stop condition never reached: %d received", len(want.recv))
	}
	for _, n := range []int{2, 4} {
		if got := run(n); !reflect.DeepEqual(got, want) {
			t.Errorf("partitions=%d diverged:\ngot  %+v\nwant %+v", n, got, want)
		}
	}
}

// TestPlanShards pins the planner contract: full cover, contiguous
// chunks, clamping, and sync/coupling propagation.
func TestPlanShards(t *testing.T) {
	r := buildGALSRig(4, false)
	p, err := psim.PlanShards(r.s, 3)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for _, g := range p.Groups {
		n += len(g)
	}
	if n != len(r.clocks) {
		t.Errorf("groups cover %d clocks, want %d", n, len(r.clocks))
	}
	if len(p.Couples) != len(r.fifos) {
		t.Errorf("%d couples, want %d (one per FIFO)", len(p.Couples), len(r.fifos))
	}
	if p2, _ := psim.PlanShards(r.s, 100); len(p2.Groups) != len(r.clocks) {
		t.Errorf("over-asked plan has %d groups, want clamp to %d", len(p2.Groups), len(r.clocks))
	}
}
