package trace

import "sort"

// Lane is a per-shard event stream for partition-parallel simulation.
// Each shard of a partitioned run appends to its own lane with no
// synchronization; the kernel brackets every clock edge it executes with
// BeginEdge, which stamps the segment with the edge's global scheduling
// key — (time << 8) | clock-order — the exact total order the sequential
// kernel fires edges in. MergeLanes then interleaves the segments by key,
// reconstructing the event stream a sequential run of the same design
// would have recorded, byte for byte.
type Lane struct {
	r      *Recorder
	events []Event
	marks  []laneMark
}

// laneMark opens one edge segment: events[start:] up to the next mark
// belong to the edge with the given global scheduling key. Keys within a
// lane are strictly increasing, because a shard executes its edges in
// global order restricted to its own clocks.
type laneMark struct {
	start int
	key   uint64
}

// NewLane returns a fresh lane feeding this recorder. Lanes created from
// a nil recorder are nil, mirroring Subject.
func (r *Recorder) NewLane() *Lane {
	if r == nil {
		return nil
	}
	return &Lane{r: r}
}

// BeginEdge opens a new segment for the edge at the given time whose
// clock has the given name-order index. Called by the simulation kernel
// once per executed edge, before any hook of that edge can emit.
func (l *Lane) BeginEdge(time uint64, ord uint32) {
	l.marks = append(l.marks, laneMark{start: len(l.events), key: laneKey(time, ord)})
}

// laneKey mirrors the kernel's edge-ordering key: (time, clock order)
// packed into one comparable word. Ord must fit in 8 bits, which the
// kernel's partition planner enforces (≤ 256 clocks).
func laneKey(time uint64, ord uint32) uint64 {
	return time<<8 | uint64(ord)&0xff
}

// EmitOn appends one event to lane l, or to the recorder's default
// stream when l is nil — the form every emission site uses so the same
// component code serves sequential and partitioned runs:
//
//	if c.sub != nil {
//		c.sub.EmitOn(c.clk.Lane(), trace.KindPush, now, cycle, occ)
//	}
//
// Lanes are capped at the recorder's limit; MergeLanes accounts lane
// overflow into the recorder's dropped count, so the merged stream and
// drop total match a sequential run's exactly. (A merged prefix of
// length ≤ limit can draw at most limit events from any one lane, so a
// per-lane cap at the global limit never drops an event the sequential
// run would have kept.)
func (s *Subject) EmitOn(l *Lane, k Kind, time, cycle, value uint64) {
	if l == nil {
		s.Emit(k, time, cycle, value)
		return
	}
	if limit := s.r.limit; limit > 0 && len(l.events) >= limit {
		return // counted by MergeLanes
	}
	l.events = append(l.events, Event{Subject: s.id, Kind: k, Time: time, Cycle: cycle, Value: value})
}

// MergeLanes appends the lanes' edge segments to the recorder's event
// stream in global scheduling-key order and retires the lanes. Segment
// keys are unique across lanes (one edge belongs to one clock, one clock
// to one shard), so the interleaving is total and deterministic: the
// result is the event order of the equivalent sequential run. Events
// beyond the recorder's limit are dropped and counted, again matching
// the sequential run's accounting.
func (r *Recorder) MergeLanes(lanes []*Lane) {
	type seg struct {
		lane       *Lane
		key        uint64
		start, end int
	}
	var segs []seg
	var total int
	for _, l := range lanes {
		if l == nil {
			continue
		}
		total += len(l.events)
		for i, m := range l.marks {
			end := len(l.events)
			if i+1 < len(l.marks) {
				end = l.marks[i+1].start
			}
			if m.start == end {
				continue
			}
			segs = append(segs, seg{lane: l, key: m.key, start: m.start, end: end})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].key < segs[j].key })
	kept := 0
	for _, sg := range segs {
		for _, e := range sg.lane.events[sg.start:sg.end] {
			if r.limit > 0 && len(r.events) >= r.limit {
				break
			}
			r.events = append(r.events, e)
			kept++
		}
	}
	r.dropped += uint64(total - kept)
	for _, l := range lanes {
		if l != nil {
			l.events, l.marks = nil, nil
		}
	}
}
