package trace

import (
	"fmt"

	"repro/internal/stats"
)

// HistBuckets caps the per-channel occupancy histogram: dwell time at
// occupancy >= HistBuckets-1 lands in the last bucket.
const HistBuckets = 16

// ChannelReport summarizes one subject's recorded handshake activity.
type ChannelReport struct {
	Path string

	Pushes      uint64 // accepted producer transfers
	Pops        uint64 // accepted consumer transfers
	Fulls       uint64 // rejected push attempts (back-pressure)
	Empties     uint64 // rejected pop attempts (starvation)
	StallEvents uint64 // injected-stall activations / clock pauses

	MaxOcc   uint64
	FinalOcc uint64 // committed occupancy at end of recording

	// Utilization is delivered transfers per observed cycle of the
	// subject's clock (1.0 = a transfer every cycle), over the span from
	// the subject's first event to the end of the recording.
	Utilization float64
	// Backpressure is the fraction of push attempts the channel refused.
	Backpressure float64
	// OccHist is dwell time (in subject-clock cycles) at each committed
	// occupancy level; index HistBuckets-1 aggregates everything above.
	OccHist []float64

	// Suspect flags a never-draining channel: it still holds messages at
	// the end of the recording and no pop succeeded within the last
	// horizon cycles — the cycle-bounded deadlock/livelock signature.
	Suspect bool
	// Reason is the human-readable suspect justification ("" otherwise).
	Reason string
}

// Report is the result of Recorder.Analyze over one recording.
type Report struct {
	Channels []ChannelReport // natural path order
	Suspects []string        // paths of suspect channels, natural order
	EndTime  uint64          // last recorded event time (ps)
	Events   int
	Dropped  uint64
}

// subjectAcc accumulates one subject's statistics during the replay.
type subjectAcc struct {
	seen                bool
	firstTime, lastTime uint64
	firstCycle, lastCyc uint64
	pushes, pops        uint64
	fulls, empties      uint64
	stalls              uint64
	maxOcc, occ         uint64
	occSince            uint64 // time the current occupancy level was entered
	dwellPS             [HistBuckets]uint64
	popEver             bool
	lastPopTime         uint64
}

// Analyze replays the recorded events into per-channel reports and flags
// never-draining channels. horizon is the deadlock bound in cycles of
// each subject's own clock: a channel that still holds messages and saw
// no successful pop within the last horizon cycles is a suspect. The
// pass is pure observation — it can run any number of times on the same
// recording and is deterministic for a deterministic event stream.
func (r *Recorder) Analyze(horizon uint64) *Report {
	accs := make([]subjectAcc, len(r.subjects))
	var endTime uint64
	for _, e := range r.events {
		a := &accs[e.Subject]
		if !a.seen {
			a.seen = true
			a.firstTime, a.firstCycle = e.Time, e.Cycle
			a.occSince = e.Time
		}
		a.lastTime, a.lastCyc = e.Time, e.Cycle
		if e.Time > endTime {
			endTime = e.Time
		}
		switch e.Kind {
		case KindPush:
			a.pushes++
		case KindPop:
			a.pops++
			a.popEver = true
			a.lastPopTime = e.Time
		case KindFull:
			a.fulls++
		case KindEmpty:
			a.empties++
		case KindStall:
			// Channels change-detect the stall level, so each activation is
			// one nonzero event; pausible FIFOs emit one event per clock
			// pause. Either way a nonzero event is one stall occurrence.
			if e.Value != 0 {
				a.stalls++
			}
		case KindOcc:
			a.dwellPS[histBucket(a.occ)] += e.Time - a.occSince
			a.occSince = e.Time
			a.occ = e.Value
			if e.Value > a.maxOcc {
				a.maxOcc = e.Value
			}
		}
	}

	// Fallback period for subjects whose recording spans <2 cycles: the
	// mean observed period across all subjects, then 1000 ps.
	var sumPS, sumCyc uint64
	for i := range accs {
		a := &accs[i]
		if a.seen && a.lastCyc > a.firstCycle {
			sumPS += a.lastTime - a.firstTime
			sumCyc += a.lastCyc - a.firstCycle
		}
	}
	fallback := uint64(1000)
	if sumCyc > 0 {
		fallback = sumPS / sumCyc
		if fallback == 0 {
			fallback = 1
		}
	}

	rep := &Report{EndTime: endTime, Events: len(r.events), Dropped: r.dropped}
	for _, id := range r.sortedSubjects() {
		a := &accs[id]
		if !a.seen {
			continue
		}
		period := fallback
		if a.lastCyc > a.firstCycle {
			period = (a.lastTime - a.firstTime) / (a.lastCyc - a.firstCycle)
			if period == 0 {
				period = 1
			}
		}
		// Close the final occupancy dwell out to the end of the recording.
		a.dwellPS[histBucket(a.occ)] += endTime - a.occSince

		cr := ChannelReport{
			Path:        r.subjects[id].path,
			Pushes:      a.pushes,
			Pops:        a.pops,
			Fulls:       a.fulls,
			Empties:     a.empties,
			StallEvents: a.stalls,
			MaxOcc:      a.maxOcc,
			FinalOcc:    a.occ,
		}
		spanCycles := (endTime - a.firstTime) / period
		if spanCycles == 0 {
			spanCycles = 1
		}
		cr.Utilization = float64(a.pops) / float64(spanCycles)
		if att := a.pushes + a.fulls; att > 0 {
			cr.Backpressure = float64(a.fulls) / float64(att)
		}
		cr.OccHist = make([]float64, HistBuckets)
		for b, ps := range a.dwellPS {
			cr.OccHist[b] = float64(ps) / float64(period)
		}
		if a.occ > 0 {
			horizonPS := horizon * period
			switch {
			case !a.popEver:
				cr.Suspect = true
				cr.Reason = fmt.Sprintf("holds %d message(s), no pop ever succeeded", a.occ)
			case endTime-a.lastPopTime > horizonPS:
				cr.Suspect = true
				cr.Reason = fmt.Sprintf("holds %d message(s), last pop %d cycles before end (bound %d)",
					a.occ, (endTime-a.lastPopTime)/period, horizon)
			}
		}
		if cr.Suspect {
			rep.Suspects = append(rep.Suspects, cr.Path)
		}
		rep.Channels = append(rep.Channels, cr)
	}
	return rep
}

func histBucket(occ uint64) int {
	if occ >= HistBuckets {
		return HistBuckets - 1
	}
	return int(occ)
}

// Summary renders the report as deterministic human-readable lines, one
// per channel, suspects tagged — the diagnosis text attached to failing
// stall-hunt campaigns.
func (rep *Report) Summary() []string {
	out := make([]string, 0, len(rep.Channels)+1)
	for _, c := range rep.Channels {
		line := fmt.Sprintf("%s: util=%.3f backpressure=%.3f push=%d pop=%d full=%d empty=%d max_occ=%d",
			c.Path, c.Utilization, c.Backpressure, c.Pushes, c.Pops, c.Fulls, c.Empties, c.MaxOcc)
		if c.Suspect {
			line += " ← SUSPECT: " + c.Reason
		}
		out = append(out, line)
	}
	if len(rep.Suspects) > 0 {
		out = append(out, fmt.Sprintf("%d never-draining channel(s): deadlock/livelock suspects", len(rep.Suspects)))
	}
	return out
}

// Metrics renders the report in the stats registry format, rooted at
// prefix (conventionally "trace"): per-channel utilization, backpressure
// and occupancy-histogram metrics under "<prefix>/<channel path>", and
// recording-level counters under prefix itself.
func (rep *Report) Metrics(prefix string) []stats.Metric {
	if prefix == "" {
		prefix = "trace"
	}
	ms := []stats.Metric{
		{Path: prefix, Name: "channels", Value: float64(len(rep.Channels))},
		{Path: prefix, Name: "suspects", Value: float64(len(rep.Suspects))},
		{Path: prefix, Name: "events", Value: float64(rep.Events)},
		{Path: prefix, Name: "dropped", Value: float64(rep.Dropped)},
	}
	for _, c := range rep.Channels {
		p := prefix + "/" + c.Path
		suspect := 0.0
		if c.Suspect {
			suspect = 1
		}
		ms = append(ms,
			stats.Metric{Path: p, Name: "utilization", Value: c.Utilization},
			stats.Metric{Path: p, Name: "backpressure", Value: c.Backpressure},
			stats.Metric{Path: p, Name: "pushes", Value: float64(c.Pushes)},
			stats.Metric{Path: p, Name: "pops", Value: float64(c.Pops)},
			stats.Metric{Path: p, Name: "fulls", Value: float64(c.Fulls)},
			stats.Metric{Path: p, Name: "empties", Value: float64(c.Empties)},
			stats.Metric{Path: p, Name: "stall_events", Value: float64(c.StallEvents)},
			stats.Metric{Path: p, Name: "max_occ", Value: float64(c.MaxOcc)},
			stats.Metric{Path: p, Name: "final_occ", Value: float64(c.FinalOcc)},
			stats.Metric{Path: p, Name: "suspect", Value: suspect},
		)
		for b, cyc := range c.OccHist {
			if cyc != 0 {
				ms = append(ms, stats.Metric{Path: p, Name: fmt.Sprintf("occ_cycles[%d]", b), Value: cyc})
			}
		}
	}
	stats.SortMetrics(ms)
	return ms
}

// Publish registers the report's metrics as a snapshot source on reg, so
// trace-derived figures land in the same tree and JSON dumps as every
// simulated component's counters.
func (rep *Report) Publish(reg *stats.Registry, prefix string) {
	ms := rep.Metrics(prefix)
	reg.TreeSource(func(emit stats.EmitAt) {
		for _, m := range ms {
			emit(m.Path, m.Name, m.Value)
		}
	})
}
