package trace

import (
	"sort"
	"strings"
)

// Kind classifies one latency-insensitive handshake observation.
type Kind uint8

const (
	// KindPush is a successful producer-side transfer into the channel.
	// Value carries the in-channel message count after the push.
	KindPush Kind = iota
	// KindPop is a successful consumer-side transfer out of the channel.
	// Value carries the in-channel message count after the pop.
	KindPop
	// KindFull is a rejected push attempt: the channel had no capacity or
	// ready was withheld (back-pressure seen by the producer).
	KindFull
	// KindEmpty is a rejected pop attempt: nothing deliverable or valid
	// was withheld (starvation seen by the consumer).
	KindEmpty
	// KindStall is an injected-stall or clock-pause level change. For
	// channels Value packs the stall bits (bit 0: valid withheld, bit 1:
	// ready withheld); for pausible CDC FIFOs Value is 1 per pause.
	KindStall
	// KindValid is a committed valid-level change (Value 0 or 1).
	KindValid
	// KindReady is a committed ready-level change (Value 0 or 1).
	KindReady
	// KindOcc is a committed-occupancy change (Value = occupancy).
	KindOcc
)

func (k Kind) String() string {
	switch k {
	case KindPush:
		return "push"
	case KindPop:
		return "pop"
	case KindFull:
		return "full"
	case KindEmpty:
		return "empty"
	case KindStall:
		return "stall"
	case KindValid:
		return "valid"
	case KindReady:
		return "ready"
	case KindOcc:
		return "occ"
	default:
		return "kind?"
	}
}

// Event is one recorded handshake observation. Subject indexes the
// recorder's interned path table (Recorder.Paths).
type Event struct {
	Subject int
	Kind    Kind
	Time    uint64 // simulated picoseconds at emission
	Cycle   uint64 // the subject clock's cycle count at emission
	Value   uint64
}

// Subject is an interned event emitter: one channel, router, or CDC FIFO,
// identified by its hierarchical component path (the internal/stats path
// scheme, e.g. "soc/pe[3]/inject"). Components cache the *Subject pointer
// at construction; when the simulation is not armed the pointer is nil
// and the emission site reduces to one predictable branch.
type Subject struct {
	r    *Recorder
	id   int
	path string
}

// Path returns the subject's component path.
func (s *Subject) Path() string { return s.path }

// Emit appends one event. The caller must nil-check the subject first:
//
//	if c.sub != nil {
//		c.sub.Emit(trace.KindPush, now, cycle, occ)
//	}
//
// which keeps the disarmed fast path free of any recorder work.
func (s *Subject) Emit(k Kind, time, cycle, value uint64) {
	r := s.r
	if r.limit > 0 && len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{Subject: s.id, Kind: k, Time: time, Cycle: cycle, Value: value})
}

// DefaultEventLimit bounds a recorder's memory: beyond it events are
// counted as dropped instead of stored (a full SoC test run stays well
// under it; raise with SetLimit for very long armed runs).
const DefaultEventLimit = 1 << 22

// Recorder collects handshake events from every armed component of one
// simulation. It has no synchronization: the simulation kernel serializes
// all component execution, and parallel experiment campaigns give every
// job its own simulator and recorder, so event streams are bit-identical
// for any worker count.
type Recorder struct {
	subjects []*Subject
	byPath   map[string]int
	events   []Event
	limit    int
	dropped  uint64
}

// NewRecorder returns an empty recorder with the default event limit.
func NewRecorder() *Recorder {
	return &Recorder{byPath: make(map[string]int), limit: DefaultEventLimit}
}

// SetLimit replaces the event cap; n <= 0 removes it.
func (r *Recorder) SetLimit(n int) { r.limit = n }

// Subject interns path and returns its emitter handle. Calling it on a
// nil recorder returns nil, so construction-time caching can be written
// unconditionally as sub := sim.Tracer().Subject(path).
func (r *Recorder) Subject(path string) *Subject {
	if r == nil {
		return nil
	}
	if id, ok := r.byPath[path]; ok {
		return r.subjects[id]
	}
	s := &Subject{r: r, id: len(r.subjects), path: path}
	r.subjects = append(r.subjects, s)
	r.byPath[path] = s.id
	return s
}

// Events returns the recorded stream in emission (simulation) order. The
// returned slice aliases the recorder's storage.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns the number of events discarded at the limit.
func (r *Recorder) Dropped() uint64 { return r.dropped }

// Paths returns the interned subject paths indexed by Event.Subject.
func (r *Recorder) Paths() []string {
	out := make([]string, len(r.subjects))
	for i, s := range r.subjects {
		out[i] = s.path
	}
	return out
}

// sortedSubjects returns subject indices in natural path order, the
// order every rendered artifact (VCD header, report, metrics) uses.
func (r *Recorder) sortedSubjects() []int {
	idx := make([]int, len(r.subjects))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return pathLess(r.subjects[idx[a]].path, r.subjects[idx[b]].path)
	})
	return idx
}

// pathLess orders component paths with numeric runs compared by value
// ("pe[2]" before "pe[10]"), matching the stats registry's natural order
// without importing it (stats.PathLess is the same relation).
func pathLess(a, b string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ca, cb := a[i], b[j]
		if isDigit(ca) && isDigit(cb) {
			si, sj := i, j
			for i < len(a) && isDigit(a[i]) {
				i++
			}
			for j < len(b) && isDigit(b[j]) {
				j++
			}
			ra, rb := a[si:i], b[sj:j]
			na, nb := strings.TrimLeft(ra, "0"), strings.TrimLeft(rb, "0")
			if len(na) != len(nb) {
				return len(na) < len(nb)
			}
			if na != nb {
				return na < nb
			}
			if len(ra) != len(rb) {
				return len(ra) > len(rb)
			}
			continue
		}
		if ca != cb {
			return ca < cb
		}
		i++
		j++
	}
	return len(a)-i < len(b)-j
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
