package trace

import (
	"strings"
	"testing"
)

// emitSquareWave records a plausible little handshake history for one
// subject: valid toggling, occupancy ramping 0→2→0.
func emitSquareWave(s *Subject) {
	for i := uint64(0); i < 4; i++ {
		tm := (i + 1) * 1000
		s.Emit(KindValid, tm, i, i%2)
		s.Emit(KindOcc, tm, i, i%3)
	}
	s.Emit(KindReady, 5000, 4, 1)
}

func TestWriteVCDScopesNestByComponentPath(t *testing.T) {
	r := NewRecorder()
	emitSquareWave(r.Subject("soc/pe[2]/inject"))
	emitSquareWave(r.Subject("soc/pe[10]/inject"))
	emitSquareWave(r.Subject("soc/noc/l[0]/in/vc[1]"))

	var sb strings.Builder
	if _, _, err := r.WriteVCD(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if got, want := strings.Count(out, "$scope module"), strings.Count(out, "$upscope"); got != want {
		t.Fatalf("unbalanced scopes: %d $scope vs %d $upscope", got, want)
	}
	// The component-path hierarchy must appear as nested module scopes,
	// with numeric siblings in natural order (pe[2] before pe[10]).
	for _, w := range []string{
		"$scope module soc $end",
		"$scope module pe[2] $end",
		"$scope module pe[10] $end",
		"$scope module noc $end",
		"$scope module vc[1] $end",
	} {
		if !strings.Contains(out, w) {
			t.Fatalf("missing %q in header:\n%s", w, out)
		}
	}
	if strings.Index(out, "pe[2]") > strings.Index(out, "pe[10]") {
		t.Fatal("pe[10] declared before pe[2]: not natural order")
	}
	// Leaf signals live inside their channel's scope, never flattened
	// with path separators in the name.
	if strings.Contains(out, "soc/pe") {
		t.Fatal("flattened path leaked into the dump")
	}
	for _, w := range []string{"valid", "ready", "occ"} {
		if !strings.Contains(out, " "+w+" ") {
			t.Fatalf("missing %s var", w)
		}
	}
}

func TestWriteVCDSkipsAnalysisOnlySubjects(t *testing.T) {
	r := NewRecorder()
	emitSquareWave(r.Subject("tb/ch"))
	// A router-style subject that only recorded back-pressure counters
	// has no level signals and must not clutter the waveform.
	r.Subject("tb/router").Emit(KindFull, 2000, 2, 1)

	var sb strings.Builder
	if _, _, err := r.WriteVCD(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "router") {
		t.Fatalf("analysis-only subject rendered:\n%s", out)
	}
	if !strings.Contains(out, "$scope module ch $end") {
		t.Fatalf("traced channel missing:\n%s", out)
	}
}

func TestWriteVCDStallSignalOnlyWhenRecorded(t *testing.T) {
	r := NewRecorder()
	emitSquareWave(r.Subject("tb/plain"))
	s := r.Subject("tb/stally")
	emitSquareWave(s)
	s.Emit(KindStall, 3000, 3, 2)

	var sb strings.Builder
	if _, _, err := r.WriteVCD(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if got := strings.Count(out, " stall "); got != 1 {
		t.Fatalf("stall declared %d times, want 1:\n%s", got, out)
	}
}

func TestWriteVCDOccWidthFitsMaxValue(t *testing.T) {
	r := NewRecorder()
	s := r.Subject("tb/deep")
	s.Emit(KindOcc, 1000, 1, 9) // needs 4 bits
	var sb strings.Builder
	if _, _, err := r.WriteVCD(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "$var wire 4 ") {
		t.Fatalf("occ bus not sized to max value:\n%s", sb.String())
	}
}

func TestWriteVCDDeterministic(t *testing.T) {
	build := func() string {
		r := NewRecorder()
		emitSquareWave(r.Subject("tb/a"))
		emitSquareWave(r.Subject("tb/b[3]"))
		var sb strings.Builder
		if _, _, err := r.WriteVCD(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if build() != build() {
		t.Fatal("VCD not byte-identical across identical recordings")
	}
}
