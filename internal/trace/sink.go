package trace

import (
	"io"
	"strings"
)

// vcdSigs is the per-subject signal bundle the sink renders.
type vcdSigs struct {
	valid, ready, occ, stall *Signal
}

// WriteVCD renders the recorded event stream as per-channel
// valid/ready/occupancy (and injected-stall) waveforms. Each subject's
// component path becomes a nested $scope module hierarchy, so a
// partition's channels group together in GTKWave instead of flattening
// into one namespace. Signals initialize to zero at time zero and events
// replay at their recorded picosecond timestamps.
//
// It returns the dump's sample and value-change counts alongside the
// first write error, if any.
func (r *Recorder) WriteVCD(w io.Writer) (samples, changes uint64, err error) {
	v := NewVCD(w)
	sigs := make([]vcdSigs, len(r.subjects))
	occW := r.occWidths()
	hasStall := make([]bool, len(r.subjects))
	renderable := make([]bool, len(r.subjects))
	for _, e := range r.events {
		switch e.Kind {
		case KindStall:
			hasStall[e.Subject] = true
			renderable[e.Subject] = true
		case KindValid, KindReady, KindOcc:
			renderable[e.Subject] = true
		}
	}
	// Declare in natural path order so the header (and therefore the
	// viewer's tree) lists replicated components by index. Subjects that
	// recorded only analysis events (e.g. router back-pressure counters)
	// carry no level signals and are skipped.
	for _, id := range r.sortedSubjects() {
		if !renderable[id] {
			continue
		}
		scope := strings.Split(r.subjects[id].path, "/")
		sigs[id] = vcdSigs{
			valid: v.DeclareScoped(scope, "valid", 1),
			ready: v.DeclareScoped(scope, "ready", 1),
			occ:   v.DeclareScoped(scope, "occ", occW[id]),
		}
		if hasStall[id] {
			sigs[id].stall = v.DeclareScoped(scope, "stall", 2)
		}
	}
	for id, s := range sigs {
		if !renderable[id] {
			continue
		}
		s.valid.Set(0)
		s.ready.Set(0)
		s.occ.Set(0)
		if s.stall != nil {
			s.stall.Set(0)
		}
	}
	v.Sample(0)

	events := r.events
	for i := 0; i < len(events); {
		t := events[i].Time
		for i < len(events) && events[i].Time == t {
			e := events[i]
			if !renderable[e.Subject] {
				i++
				continue
			}
			s := sigs[e.Subject]
			switch e.Kind {
			case KindValid:
				s.valid.Set(e.Value)
			case KindReady:
				s.ready.Set(e.Value)
			case KindOcc:
				s.occ.Set(e.Value)
			case KindStall:
				if s.stall != nil {
					s.stall.Set(e.Value)
				}
			}
			i++
		}
		v.Sample(t)
	}
	samples, changes = v.Counts()
	return samples, changes, v.Err()
}

// occWidths sizes each subject's occupancy bus to its observed maximum.
func (r *Recorder) occWidths() []int {
	max := make([]uint64, len(r.subjects))
	for _, e := range r.events {
		switch e.Kind {
		case KindOcc, KindPush, KindPop:
			if e.Value > max[e.Subject] {
				max[e.Subject] = e.Value
			}
		}
	}
	w := make([]int, len(r.subjects))
	for i, m := range max {
		w[i] = 1
		for m > 1 {
			m >>= 1
			w[i]++
		}
		if w[i] > 64 {
			w[i] = 64
		}
	}
	return w
}
