package trace

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestSubjectInterning(t *testing.T) {
	r := NewRecorder()
	a := r.Subject("soc/pe[0]/inject")
	b := r.Subject("soc/pe[0]/inject")
	if a != b {
		t.Fatal("same path interned to distinct subjects")
	}
	c := r.Subject("soc/pe[1]/inject")
	if c == a || c.id == a.id {
		t.Fatal("distinct paths share a subject")
	}
	if a.Path() != "soc/pe[0]/inject" {
		t.Fatalf("Path = %q", a.Path())
	}
	want := []string{"soc/pe[0]/inject", "soc/pe[1]/inject"}
	if got := r.Paths(); len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Paths = %v", got)
	}
}

func TestNilRecorderSubjectIsNil(t *testing.T) {
	var r *Recorder
	if s := r.Subject("x"); s != nil {
		t.Fatal("nil recorder returned a subject")
	}
}

func TestEventLimitDrops(t *testing.T) {
	r := NewRecorder()
	r.SetLimit(2)
	s := r.Subject("ch")
	for i := 0; i < 5; i++ {
		s.Emit(KindPush, uint64(i), uint64(i), 1)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", r.Dropped())
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindPush: "push", KindPop: "pop", KindFull: "full", KindEmpty: "empty",
		KindStall: "stall", KindValid: "valid", KindReady: "ready", KindOcc: "occ",
		Kind(200): "kind?",
	} {
		if got := k.String(); got != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

// pathLess must implement the same relation as the stats registry's
// natural order, since trace artifacts and metric dumps list the same
// component paths side by side.
func TestPathLessMatchesStatsOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	segs := []string{"pe[0]", "pe[2]", "pe[10]", "noc", "r[1]", "vc[0]", "a", "z9", "z10"}
	paths := make([]string, 300)
	for i := range paths {
		n := 1 + rng.Intn(3)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = segs[rng.Intn(len(segs))]
		}
		paths[i] = strings.Join(parts, "/")
	}
	a := append([]string(nil), paths...)
	b := append([]string(nil), paths...)
	sort.SliceStable(a, func(i, j int) bool { return pathLess(a[i], a[j]) })
	sort.SliceStable(b, func(i, j int) bool { return stats.PathLess(b[i], b[j]) })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order diverges at %d: trace %q vs stats %q", i, a[i], b[i])
		}
	}
	if !pathLess("pe[2]", "pe[10]") || pathLess("pe[10]", "pe[2]") {
		t.Fatal("numeric runs not compared by value")
	}
}

func TestAnalyzeFlagsNeverDrainingChannel(t *testing.T) {
	r := NewRecorder()
	good := r.Subject("tb/good")
	stuck := r.Subject("tb/stuck")
	// Both channels see pushes over 100 cycles at 1000 ps; only "good"
	// ever pops, and it pops right at the end.
	for i := uint64(0); i < 100; i++ {
		tm := i * 1000
		good.Emit(KindPush, tm, i, 1)
		good.Emit(KindPop, tm, i, 0)
		if i < 3 {
			stuck.Emit(KindPush, tm, i, i+1)
			stuck.Emit(KindOcc, tm, i, i+1)
		}
	}
	rep := r.Analyze(10)
	if len(rep.Channels) != 2 {
		t.Fatalf("channels = %d", len(rep.Channels))
	}
	byPath := map[string]ChannelReport{}
	for _, c := range rep.Channels {
		byPath[c.Path] = c
	}
	if byPath["tb/good"].Suspect {
		t.Fatalf("good channel flagged: %s", byPath["tb/good"].Reason)
	}
	s := byPath["tb/stuck"]
	if !s.Suspect {
		t.Fatal("stuck channel not flagged")
	}
	if s.FinalOcc != 3 || s.Pushes != 3 || s.Pops != 0 {
		t.Fatalf("stuck report: %+v", s)
	}
	if len(rep.Suspects) != 1 || rep.Suspects[0] != "tb/stuck" {
		t.Fatalf("Suspects = %v", rep.Suspects)
	}
	found := false
	for _, line := range rep.Summary() {
		if strings.Contains(line, "tb/stuck") && strings.Contains(line, "SUSPECT") {
			found = true
		}
	}
	if !found {
		t.Fatalf("summary lacks suspect line:\n%s", strings.Join(rep.Summary(), "\n"))
	}
}

func TestAnalyzeRecentPopWithinHorizonNotSuspect(t *testing.T) {
	r := NewRecorder()
	s := r.Subject("tb/slow")
	// Holds a message at the end, but a pop succeeded 5 cycles before the
	// end — inside a 10-cycle horizon, outside a 2-cycle one.
	for i := uint64(0); i < 100; i++ {
		s.Emit(KindPush, i*1000, i, 1)
		if i == 95 {
			s.Emit(KindPop, i*1000, i, 0)
		}
		s.Emit(KindOcc, i*1000, i, 1)
	}
	if rep := r.Analyze(10); rep.Channels[0].Suspect {
		t.Fatalf("flagged inside horizon: %s", rep.Channels[0].Reason)
	}
	if rep := r.Analyze(2); !rep.Channels[0].Suspect {
		t.Fatal("not flagged outside horizon")
	}
}

func TestAnalyzeRates(t *testing.T) {
	r := NewRecorder()
	s := r.Subject("tb/ch")
	// 50 cycles at 1000 ps: a push every cycle, every other push refused,
	// a pop every cycle.
	for i := uint64(0); i < 50; i++ {
		tm := i * 1000
		if i%2 == 0 {
			s.Emit(KindPush, tm, i, 1)
		} else {
			s.Emit(KindFull, tm, i, 1)
		}
		s.Emit(KindPop, tm, i, 0)
	}
	c := r.Analyze(1000).Channels[0]
	if c.Backpressure < 0.49 || c.Backpressure > 0.52 {
		t.Fatalf("Backpressure = %v", c.Backpressure)
	}
	if c.Utilization < 0.9 || c.Utilization > 1.1 {
		t.Fatalf("Utilization = %v", c.Utilization)
	}
}

func TestReportMetricsAndPublish(t *testing.T) {
	r := NewRecorder()
	s := r.Subject("tb/ch")
	s.Emit(KindPush, 0, 0, 1)
	s.Emit(KindPop, 1000, 1, 0)
	rep := r.Analyze(100)

	ms := rep.Metrics("")
	find := func(path, name string) (float64, bool) {
		for _, m := range ms {
			if m.Path == path && m.Name == name {
				return m.Value, true
			}
		}
		return 0, false
	}
	if v, ok := find("trace", "channels"); !ok || v != 1 {
		t.Fatalf("trace/channels = %v, %v", v, ok)
	}
	if v, ok := find("trace/tb/ch", "pushes"); !ok || v != 1 {
		t.Fatalf("pushes metric = %v, %v", v, ok)
	}

	reg := stats.New()
	rep.Publish(reg, "trace")
	got := false
	for _, m := range reg.Snapshot() {
		if m.Path == "trace/tb/ch" && m.Name == "pushes" && m.Value == 1 {
			got = true
		}
	}
	if !got {
		t.Fatalf("registry snapshot lacks trace metrics: %+v", reg.Snapshot())
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := NewRecorder()
		for i := 0; i < 4; i++ {
			s := r.Subject(fmt.Sprintf("tb/ch[%d]", i))
			for j := uint64(0); j < 20; j++ {
				s.Emit(KindPush, j*1000, j, j%3)
				s.Emit(KindPop, j*1000+10, j, 0)
			}
		}
		return r
	}
	a := build().Analyze(50).Summary()
	b := build().Analyze(50).Summary()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatal("analysis not deterministic")
	}
}
