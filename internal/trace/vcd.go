package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// VCD accumulates signal declarations and change events.
type VCD struct {
	w          io.Writer
	signals    []*Signal
	headerDone bool
	curTime    uint64
	timeOpen   bool
	err        error
	samples    uint64
	changes    uint64
}

// Signal is one traced wire or bus.
type Signal struct {
	name  string
	scope []string // enclosing module path under top; nil = top itself
	width int
	id    string
	cur   uint64
	valid bool // has been set at least once
	dirty bool
}

// NewVCD starts a dump with a 1ps timescale.
func NewVCD(w io.Writer) *VCD { return &VCD{w: w} }

// Declare registers a signal directly under the top scope, before the
// first Sample. Declaring after the header is written panics.
func (v *VCD) Declare(name string, width int) *Signal {
	return v.DeclareScoped(nil, name, width)
}

// DeclareScoped registers a signal nested inside a module hierarchy:
// each element of scope becomes one $scope module level under top, so
// signals from the same component path group together in waveform
// viewers instead of flattening into one namespace. Scope elements must
// not contain "/". Declaring after the header is written panics.
func (v *VCD) DeclareScoped(scope []string, name string, width int) *Signal {
	if v.headerDone {
		panic("trace: Declare after first Sample")
	}
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("trace: signal %s width %d", name, width))
	}
	for _, seg := range scope {
		if seg == "" || strings.Contains(seg, "/") {
			panic(fmt.Sprintf("trace: bad scope segment %q for signal %s", seg, name))
		}
	}
	s := &Signal{name: name, scope: append([]string(nil), scope...), width: width, id: idCode(len(v.signals))}
	v.signals = append(v.signals, s)
	return s
}

// Set updates a signal's value; the change is emitted at the next Sample.
func (s *Signal) Set(val uint64) {
	if s.width < 64 {
		val &= 1<<uint(s.width) - 1
	}
	if !s.valid || val != s.cur {
		s.cur = val
		s.dirty = true
		s.valid = true
	}
}

// Sample emits all pending changes at time t (monotonically increasing).
func (v *VCD) Sample(t uint64) {
	if v.err != nil {
		return
	}
	if !v.headerDone {
		v.writeHeader()
	}
	v.samples++
	for _, s := range v.signals {
		if !s.dirty {
			continue
		}
		v.changes++
		if !v.timeOpen || t != v.curTime {
			v.printf("#%d\n", t)
			v.curTime, v.timeOpen = t, true
		}
		if s.width == 1 {
			v.printf("%d%s\n", s.cur&1, s.id)
		} else {
			v.printf("b%s %s\n", bin(s.cur, s.width), s.id)
		}
		s.dirty = false
	}
}

// Err returns the first write error, if any.
func (v *VCD) Err() error { return v.err }

// Counts returns the number of Sample calls and value changes emitted so
// far — the dump's activity summary, reported by the CLI tools.
func (v *VCD) Counts() (samples, changes uint64) { return v.samples, v.changes }

// scopeNode is one module level of the header's $scope tree.
type scopeNode struct {
	children map[string]*scopeNode
	order    []string
	sigs     []*Signal
}

func newScopeNode() *scopeNode { return &scopeNode{children: map[string]*scopeNode{}} }

func (n *scopeNode) child(name string) *scopeNode {
	if c, ok := n.children[name]; ok {
		return c
	}
	c := newScopeNode()
	n.children[name] = c
	n.order = append(n.order, name)
	return c
}

func (v *VCD) writeHeader() {
	root := newScopeNode()
	for _, s := range v.signals {
		n := root
		for _, seg := range s.scope {
			n = n.child(seg)
		}
		n.sigs = append(n.sigs, s)
	}
	v.printf("$timescale 1ps $end\n$scope module top $end\n")
	v.writeScope(root)
	v.printf("$upscope $end\n$enddefinitions $end\n")
	v.headerDone = true
}

// writeScope emits a scope level: its signals sorted by name, then each
// child module (natural path order) as a nested $scope block.
func (v *VCD) writeScope(n *scopeNode) {
	sigs := append([]*Signal(nil), n.sigs...)
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].name < sigs[j].name })
	for _, s := range sigs {
		if s.width == 1 {
			v.printf("$var wire 1 %s %s $end\n", s.id, s.name)
		} else {
			v.printf("$var wire %d %s %s [%d:0] $end\n", s.width, s.id, s.name, s.width-1)
		}
	}
	kids := append([]string(nil), n.order...)
	sort.Slice(kids, func(i, j int) bool { return pathLess(kids[i], kids[j]) })
	for _, name := range kids {
		v.printf("$scope module %s $end\n", name)
		v.writeScope(n.children[name])
		v.printf("$upscope $end\n")
	}
}

func (v *VCD) printf(format string, args ...any) {
	if v.err != nil {
		return
	}
	_, v.err = fmt.Fprintf(v.w, format, args...)
}

// idCode maps a signal index to a VCD identifier (printable, compact).
func idCode(i int) string {
	const base = 94 // '!' .. '~'
	var sb strings.Builder
	for {
		sb.WriteByte(byte('!' + i%base))
		i /= base
		if i == 0 {
			return sb.String()
		}
		i--
	}
}

func bin(v uint64, w int) string {
	b := make([]byte, w)
	for i := 0; i < w; i++ {
		if v>>uint(w-1-i)&1 == 1 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
