// Package trace writes Value Change Dump (VCD) waveforms — this
// repository's stand-in for the FSDB signal traces the paper's flow
// feeds into power analysis (Figure 1). Any clocked model can register
// signals and sample them per cycle; the rtl netlist simulator and the
// flowrun command attach it to mapped designs.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// VCD accumulates signal declarations and change events.
type VCD struct {
	w          io.Writer
	signals    []*Signal
	headerDone bool
	curTime    uint64
	timeOpen   bool
	err        error
	samples    uint64
	changes    uint64
}

// Signal is one traced wire or bus.
type Signal struct {
	name  string
	width int
	id    string
	cur   uint64
	valid bool // has been set at least once
	dirty bool
}

// NewVCD starts a dump with a 1ps timescale.
func NewVCD(w io.Writer) *VCD { return &VCD{w: w} }

// Declare registers a signal before the first Sample. Declaring after
// the header is written panics.
func (v *VCD) Declare(name string, width int) *Signal {
	if v.headerDone {
		panic("trace: Declare after first Sample")
	}
	if width < 1 || width > 64 {
		panic(fmt.Sprintf("trace: signal %s width %d", name, width))
	}
	s := &Signal{name: name, width: width, id: idCode(len(v.signals))}
	v.signals = append(v.signals, s)
	return s
}

// Set updates a signal's value; the change is emitted at the next Sample.
func (s *Signal) Set(val uint64) {
	if s.width < 64 {
		val &= 1<<uint(s.width) - 1
	}
	if !s.valid || val != s.cur {
		s.cur = val
		s.dirty = true
		s.valid = true
	}
}

// Sample emits all pending changes at time t (monotonically increasing).
func (v *VCD) Sample(t uint64) {
	if v.err != nil {
		return
	}
	if !v.headerDone {
		v.writeHeader()
	}
	v.samples++
	for _, s := range v.signals {
		if !s.dirty {
			continue
		}
		v.changes++
		if !v.timeOpen || t != v.curTime {
			v.printf("#%d\n", t)
			v.curTime, v.timeOpen = t, true
		}
		if s.width == 1 {
			v.printf("%d%s\n", s.cur&1, s.id)
		} else {
			v.printf("b%s %s\n", bin(s.cur, s.width), s.id)
		}
		s.dirty = false
	}
}

// Err returns the first write error, if any.
func (v *VCD) Err() error { return v.err }

// Counts returns the number of Sample calls and value changes emitted so
// far — the dump's activity summary, reported by the CLI tools.
func (v *VCD) Counts() (samples, changes uint64) { return v.samples, v.changes }

func (v *VCD) writeHeader() {
	v.printf("$timescale 1ps $end\n$scope module top $end\n")
	sigs := append([]*Signal(nil), v.signals...)
	sort.Slice(sigs, func(i, j int) bool { return sigs[i].name < sigs[j].name })
	for _, s := range sigs {
		if s.width == 1 {
			v.printf("$var wire 1 %s %s $end\n", s.id, s.name)
		} else {
			v.printf("$var wire %d %s %s [%d:0] $end\n", s.width, s.id, s.name, s.width-1)
		}
	}
	v.printf("$upscope $end\n$enddefinitions $end\n")
	v.headerDone = true
}

func (v *VCD) printf(format string, args ...any) {
	if v.err != nil {
		return
	}
	_, v.err = fmt.Fprintf(v.w, format, args...)
}

// idCode maps a signal index to a VCD identifier (printable, compact).
func idCode(i int) string {
	const base = 94 // '!' .. '~'
	var sb strings.Builder
	for {
		sb.WriteByte(byte('!' + i%base))
		i /= base
		if i == 0 {
			return sb.String()
		}
		i--
	}
}

func bin(v uint64, w int) string {
	b := make([]byte, w)
	for i := 0; i < w; i++ {
		if v>>uint(w-1-i)&1 == 1 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}
