package trace

import (
	"strings"
	"testing"
)

func TestVCDBasicDump(t *testing.T) {
	var sb strings.Builder
	v := NewVCD(&sb)
	a := v.Declare("a", 1)
	d := v.Declare("data", 8)
	a.Set(1)
	d.Set(0xa5)
	v.Sample(0)
	a.Set(0)
	v.Sample(3)
	d.Set(0xa5) // unchanged: no event
	v.Sample(4)
	if err := v.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	want := []string{
		"$timescale 1ps $end",
		"$var wire 1 ! a $end",
		"$var wire 8 \" data [7:0] $end",
		"$enddefinitions $end",
		"#0\n", "1!", "b10100101 \"",
		"#3\n", "0!",
	}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Fatalf("missing %q in:\n%s", w, out)
		}
	}
	if strings.Contains(out, "#4") {
		t.Fatalf("emitted empty timestep:\n%s", out)
	}
}

func TestVCDNoRedundantEvents(t *testing.T) {
	var sb strings.Builder
	v := NewVCD(&sb)
	s := v.Declare("x", 4)
	for i := 0; i < 10; i++ {
		s.Set(7)
		v.Sample(uint64(i))
	}
	out := sb.String()
	if got := strings.Count(out, "b0111"); got != 1 {
		t.Fatalf("value emitted %d times, want 1:\n%s", got, out)
	}
}

func TestVCDDeclareAfterSamplePanics(t *testing.T) {
	var sb strings.Builder
	v := NewVCD(&sb)
	v.Declare("a", 1).Set(1)
	v.Sample(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	v.Declare("b", 1)
}

func TestIDCodesUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		id := idCode(i)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, i)
		}
		seen[id] = true
		for _, c := range []byte(id) {
			if c < '!' || c > '~' {
				t.Fatalf("unprintable id byte %d", c)
			}
		}
	}
}

func TestBinRendering(t *testing.T) {
	if got := bin(0b101, 5); got != "00101" {
		t.Fatalf("bin = %q", got)
	}
}
