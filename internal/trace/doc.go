// Package trace is the channel-level observability layer of the flow:
// handshake-event recording for every latency-insensitive channel,
// waveform rendering, and a backpressure/deadlock analysis pass. It is
// this repository's stand-in for the FSDB signal traces the paper's
// flow feeds into debug and power analysis (Figure 1), specialized to
// the LI-channel abstraction the whole design communicates through
// (§2.1, Table 1).
//
// The layer has three parts:
//
//   - Recorder/Subject: the event API. A simulation armed with a
//     Recorder (sim.Simulator.Arm, before design construction) hands
//     every channel, router, and CDC FIFO a *Subject interned by its
//     hierarchical component path — the same path scheme that keys the
//     internal/stats registry ("soc/pe[3]/inject"). Components emit
//     push/pop/full/empty port outcomes and valid/ready/occupancy/stall
//     level changes. Disarmed simulations carry a nil subject, so the
//     cost is one predictable branch per port operation (enforced by
//     the connections disarmed-overhead guard benchmark).
//   - Recorder.WriteVCD: the waveform sink. The recorded stream renders
//     as per-channel valid/ready/occ (and stall) signals through the
//     VCD writer in this package, with component paths becoming nested
//     $scope module hierarchies so partitions group in GTKWave.
//   - Recorder.Analyze: the diagnosis pass. Events replay into
//     per-channel utilization and backpressure figures, occupancy-dwell
//     histograms, and a cycle-bounded never-draining-channel rule that
//     flags deadlock/livelock suspects; reports publish into the stats
//     registry and auto-attach to failing stall-hunt campaigns
//     (internal/verif).
//
// Recording is pure observation and per-simulator (no globals), so
// traced runs are cycle-identical to untraced runs and event streams
// are bit-identical under any parallelism of the internal/exp campaign
// runner.
//
// The lower-level VCD writer remains directly usable: any clocked model
// can declare signals (optionally under a module scope via
// DeclareScoped) and sample them per cycle, which is how the rtl
// netlist simulator attaches to mapped designs.
package trace
