package physical

import (
	"fmt"
	"math"
	"sort"
)

// Tech holds the physical technology parameters (16nm-class defaults).
type Tech struct {
	GateAreaUM2  float64 // silicon area per NAND2 equivalent, placed
	Utilization  float64 // placement utilization target
	SRAMUM2PerKb float64 // macro area per Kbit
	MetalPitchUM float64 // routing pitch for wirelength estimates
	ClkBufFanout int     // clock buffer fanout per tree level
	SkewPSPerMM  float64 // skew accumulation per mm of tree span (with OCV)
	JitterPS     float64 // source jitter
	LocalSkewPS  float64 // skew inside one partition-local tree
}

// Default16nm is the generic 16nm physical model.
var Default16nm = Tech{
	GateAreaUM2:  0.20,
	Utilization:  0.70,
	SRAMUM2PerKb: 45,
	MetalPitchUM: 0.064,
	ClkBufFanout: 24,
	SkewPSPerMM:  22,
	JitterPS:     12,
	LocalSkewPS:  8,
}

// Partition is one physical-design unit: a netlist placed and routed
// independently and instantiated Replicas times at the top level.
type Partition struct {
	Name     string
	Gates    int // NAND2 equivalents, one replica
	SRAMKb   int
	Replicas int
	AsyncIfc int // GALS interfaces per replica
}

// TotalGates returns gates across all replicas.
func (p Partition) TotalGates() int { return p.Gates * p.Replicas }

// AreaUM2 returns the placed area of one replica.
func (p Partition) AreaUM2(t *Tech) float64 {
	return float64(p.Gates)*t.GateAreaUM2/t.Utilization + float64(p.SRAMKb)*t.SRAMUM2PerKb
}

// Rect is a placed rectangle in micrometres.
type Rect struct {
	Name       string
	X, Y, W, H float64
}

// Floorplan is the result of placing every partition replica on the die.
type Floorplan struct {
	DieW, DieH float64
	Rects      []Rect
	UsedArea   float64
}

// Floorplan packs all partition replicas onto a near-square die using a
// shelf algorithm. Every replica of a partition reuses the same physical
// implementation — the physical-reuse benefit of hierarchical design.
func Plan(parts []Partition, t *Tech) *Floorplan {
	type inst struct {
		name string
		w, h float64
	}
	var insts []inst
	total := 0.0
	for _, p := range parts {
		a := p.AreaUM2(t)
		// Near-square blocks with a mild aspect preference.
		w := math.Sqrt(a * 1.15)
		h := a / w
		for r := 0; r < p.Replicas; r++ {
			insts = append(insts, inst{name: fmt.Sprintf("%s_%d", p.Name, r), w: w, h: h})
		}
		total += a * float64(p.Replicas)
	}
	sort.Slice(insts, func(i, j int) bool {
		if insts[i].h != insts[j].h {
			return insts[i].h > insts[j].h
		}
		return insts[i].name < insts[j].name
	})
	dieW := math.Sqrt(total) * 1.12 // whitespace for top-level routing
	fp := &Floorplan{DieW: dieW, UsedArea: total}
	x, y, shelfH := 0.0, 0.0, 0.0
	for _, in := range insts {
		if x+in.w > dieW && x > 0 {
			y += shelfH
			x, shelfH = 0, 0
		}
		fp.Rects = append(fp.Rects, Rect{Name: in.name, X: x, Y: y, W: in.w, H: in.h})
		x += in.w
		if in.h > shelfH {
			shelfH = in.h
		}
	}
	fp.DieH = y + shelfH
	return fp
}

// Overlaps reports any pair of overlapping rectangles (should be none).
func (f *Floorplan) Overlaps() []string {
	var bad []string
	for i := 0; i < len(f.Rects); i++ {
		for j := i + 1; j < len(f.Rects); j++ {
			a, b := f.Rects[i], f.Rects[j]
			if a.X < b.X+b.W && b.X < a.X+a.W && a.Y < b.Y+b.H && b.Y < a.Y+a.H {
				bad = append(bad, a.Name+"/"+b.Name)
			}
		}
	}
	return bad
}

// SpanMM returns the die diagonal in millimetres, the span a global
// clock tree must cover.
func (f *Floorplan) SpanMM() float64 {
	return math.Hypot(f.DieW, f.DieH) / 1000
}

// WirelengthMM estimates total routed wirelength for a block of the
// given gate count via a Rent's-rule power law.
func WirelengthMM(gates int, t *Tech) float64 {
	if gates == 0 {
		return 0
	}
	// wl per gate ≈ k · gates^(p-0.5) in gate pitches; k=0.9, p=0.65.
	pitch := math.Sqrt(t.GateAreaUM2 / t.Utilization)
	perGate := 0.9 * math.Pow(float64(gates), 0.15) * pitch
	return float64(gates) * perGate / 1000
}
