package physical

import (
	"math"
	"math/rand"
)

// Connectivity weights the traffic between two partitions; the annealer
// minimizes weighted center-to-center wirelength subject to the shelf
// packer's no-overlap guarantee.
type Connectivity struct {
	A, B   string  // partition names (replicas expand pairwise)
	Weight float64 // relative traffic (e.g. flits/cycle)
}

// RefineResult reports an annealing run.
type RefineResult struct {
	Plan        *Floorplan
	InitialCost float64
	FinalCost   float64
	Accepted    int
	Moves       int
}

// Refine runs simulated annealing over the placement order and block
// aspect ratios, re-packing with the shelf algorithm after every move so
// the no-overlap invariant holds by construction. Cost is die area plus
// weighted wirelength between connected partitions.
func Refine(parts []Partition, conns []Connectivity, t *Tech, iterations int, seed int64) RefineResult {
	rng := rand.New(rand.NewSource(seed))

	// State: a permutation of instance order and an aspect ratio per
	// unique partition.
	type inst struct {
		part int // index into parts
		rep  int
	}
	var order []inst
	for pi, p := range parts {
		for r := 0; r < p.Replicas; r++ {
			order = append(order, inst{part: pi, rep: r})
		}
	}
	aspect := make([]float64, len(parts))
	for i := range aspect {
		aspect[i] = 1.15
	}

	pack := func() *Floorplan {
		// Shelf-pack in the current order with the current aspects.
		total := 0.0
		fp := &Floorplan{}
		var areas []float64
		for _, p := range parts {
			areas = append(areas, p.AreaUM2(t))
			total += p.AreaUM2(t) * float64(p.Replicas)
		}
		dieW := math.Sqrt(total) * 1.12
		fp.DieW, fp.UsedArea = dieW, total
		x, y, shelfH := 0.0, 0.0, 0.0
		for _, in := range order {
			a := areas[in.part]
			w := math.Sqrt(a * aspect[in.part])
			h := a / w
			if x+w > dieW && x > 0 {
				y += shelfH
				x, shelfH = 0, 0
			}
			fp.Rects = append(fp.Rects, Rect{
				Name: parts[in.part].Name, X: x, Y: y, W: w, H: h,
			})
			x += w
			if h > shelfH {
				shelfH = h
			}
		}
		fp.DieH = y + shelfH
		return fp
	}

	cost := func(fp *Floorplan) float64 {
		// Centers per partition name (replicas contribute all pairs).
		centers := map[string][][2]float64{}
		for _, r := range fp.Rects {
			centers[r.Name] = append(centers[r.Name], [2]float64{r.X + r.W/2, r.Y + r.H/2})
		}
		wl := 0.0
		for _, c := range conns {
			for _, ca := range centers[c.A] {
				for _, cb := range centers[c.B] {
					wl += c.Weight * (math.Abs(ca[0]-cb[0]) + math.Abs(ca[1]-cb[1]))
				}
			}
		}
		return fp.DieW*fp.DieH + 0.5*wl
	}

	cur := pack()
	curCost := cost(cur)
	res := RefineResult{InitialCost: curCost}
	best, bestCost := cur, curCost

	temp := curCost * 0.05
	for it := 0; it < iterations; it++ {
		res.Moves++
		// Propose: swap two instances, or perturb an aspect ratio.
		var undo func()
		if rng.Intn(3) < 2 && len(order) > 1 {
			i, j := rng.Intn(len(order)), rng.Intn(len(order))
			order[i], order[j] = order[j], order[i]
			undo = func() { order[i], order[j] = order[j], order[i] }
		} else {
			p := rng.Intn(len(parts))
			old := aspect[p]
			aspect[p] = clamp(old*(0.8+0.4*rng.Float64()), 0.4, 2.5)
			undo = func() { aspect[p] = old }
		}
		cand := pack()
		cc := cost(cand)
		if cc <= curCost || rng.Float64() < math.Exp((curCost-cc)/temp) {
			cur, curCost = cand, cc
			res.Accepted++
			if cc < bestCost {
				best, bestCost = cand, cc
			}
		} else {
			undo()
		}
		temp *= 0.999
	}
	res.Plan = best
	res.FinalCost = bestCost
	return res
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
