package physical

import (
	"fmt"
	"math"

	"repro/internal/gals"
)

// ClockPlan compares the two top-level clocking styles of §3.1: a
// balanced global tree distributed to every partition (synchronous
// baseline) versus per-partition local generators with pausible
// bisynchronous FIFO interfaces (fine-grained GALS).
type ClockPlan struct {
	Style string

	Buffers        int     // clock buffers in the global (or local) trees
	SkewPS         float64 // worst sink-to-sink skew relevant to timing
	TimingMarginPS float64 // period margin charged to inter-partition paths
	ExtraGates     int     // clocking area: buffers + generators + CDC FIFOs
	TopLevelPaths  int     // synchronous top-level timing paths to close
}

// SynchronousClockPlan models a single global clock source balanced to
// every partition replica.
func SynchronousClockPlan(parts []Partition, fp *Floorplan, t *Tech) ClockPlan {
	sinks := 0
	crossPaths := 0
	for _, p := range parts {
		sinks += flopEstimate(p.Gates) * p.Replicas
		crossPaths += 64 * p.AsyncIfc * p.Replicas // bus-width paths per interface
	}
	levels := int(math.Ceil(math.Log(float64(sinks)) / math.Log(float64(t.ClkBufFanout))))
	buffers := 0
	n := sinks
	for l := 0; l < levels; l++ {
		n = (n + t.ClkBufFanout - 1) / t.ClkBufFanout
		buffers += n
	}
	skew := t.SkewPSPerMM*fp.SpanMM() + t.JitterPS
	return ClockPlan{
		Style:          "synchronous",
		Buffers:        buffers,
		SkewPS:         skew,
		TimingMarginPS: skew,        // inter-partition paths see full global skew
		ExtraGates:     buffers * 2, // a clock buffer ≈ 2 NAND2 equivalents
		TopLevelPaths:  crossPaths,
	}
}

// GALSClockPlan models fine-grained GALS: local generators per replica,
// local trees only, and asynchronous top-level interfaces.
func GALSClockPlan(parts []Partition, fp *Floorplan, t *Tech) ClockPlan {
	buffers := 0
	extra := 0
	for _, p := range parts {
		sinks := flopEstimate(p.Gates)
		levels := int(math.Ceil(math.Log(float64(sinks)) / math.Log(float64(t.ClkBufFanout))))
		b := 0
		n := sinks
		for l := 0; l < levels; l++ {
			n = (n + t.ClkBufFanout - 1) / t.ClkBufFanout
			b += n
		}
		buffers += b * p.Replicas
		o := gals.GALSOverhead(p.Gates, p.AsyncIfc)
		extra += (o.ClockGenGates + o.FIFOGates) * p.Replicas
	}
	return ClockPlan{
		Style:          "fine-grained GALS",
		Buffers:        buffers,
		SkewPS:         t.LocalSkewPS,
		TimingMarginPS: 0, // correct-by-construction async interfaces
		// Partition-internal trees exist under either style, so the GALS
		// cost is the generators plus the pausible CDC FIFOs — the <3%
		// figure of §3.1.
		ExtraGates:    extra,
		TopLevelPaths: 0,
	}
}

// flopEstimate approximates flop count as a fraction of gates.
func flopEstimate(gates int) int {
	f := gates / 8
	if f < 1 {
		f = 1
	}
	return f
}

// OverheadPct returns the clocking area as a percentage of total gates.
func (c ClockPlan) OverheadPct(parts []Partition) float64 {
	total := 0
	for _, p := range parts {
		total += p.TotalGates()
	}
	return 100 * float64(c.ExtraGates) / float64(total)
}

func (c ClockPlan) String() string {
	return fmt.Sprintf("%s: %d buffers, %.0fps skew, %.0fps top margin, %d top-level paths, +%d gates",
		c.Style, c.Buffers, c.SkewPS, c.TimingMarginPS, c.TopLevelPaths, c.ExtraGates)
}

// RuntimeModel estimates back-end tool runtime. Hierarchical P&R runs
// partitions in parallel and reuses each unique partition across its
// replicas; a flat run sees the whole gate count at once with
// super-linear scaling.
type RuntimeModel struct {
	SetupHours    float64 // per-run fixed cost (floorplan, constraints)
	HoursPerMGate float64 // P&R throughput at the 1M-gate scale
	ScalingExp    float64 // super-linear exponent for flat runs
}

// DefaultRuntime reflects overnight-class tool runtimes.
var DefaultRuntime = RuntimeModel{SetupHours: 1.0, HoursPerMGate: 5.0, ScalingExp: 1.35}

// partitionHours is the runtime for one block of the given size.
func (m RuntimeModel) partitionHours(gates int) float64 {
	mg := float64(gates) / 1e6
	return m.SetupHours + m.HoursPerMGate*math.Pow(mg, m.ScalingExp)
}

// TurnaroundReport compares flat vs hierarchical back-end runtimes.
type TurnaroundReport struct {
	FlatHours         float64
	HierSerialHours   float64 // unique partitions, one machine
	HierParallelHours float64 // unique partitions in parallel + assembly
	UniquePartitions  int
}

// Turnaround computes the report for a chip.
func (m RuntimeModel) Turnaround(parts []Partition) TurnaroundReport {
	r := TurnaroundReport{UniquePartitions: len(parts)}
	total := 0
	longest := 0.0
	for _, p := range parts {
		total += p.TotalGates()
		h := m.partitionHours(p.Gates) // replicas reuse the same layout
		r.HierSerialHours += h
		if h > longest {
			longest = h
		}
	}
	r.FlatHours = m.partitionHours(total)
	assembly := m.SetupHours + 0.5 // top-level stitch: abutment + async ifaces
	r.HierParallelHours = longest + assembly
	return r
}
