// Package physical is the back-end substrate of the flow (§3 of the
// paper): hierarchical partitioning, a shelf floorplanner with
// no-overlap/containment invariants, Rent's-rule wirelength estimation,
// clock distribution models for fully-synchronous versus fine-grained
// GALS chips, and the flow-runtime model behind the paper's 12-hour
// RTL-to-layout turnaround claim.
package physical
