package physical

import (
	"math/rand"
	"testing"
)

// testchip is the paper's five unique partitions: 15 replicated PEs, two
// global-memory halves, the RISC-V, and I/O (§4, "Back-end Design").
func testchip() []Partition {
	return []Partition{
		{Name: "pe", Gates: 280_000, SRAMKb: 128, Replicas: 15, AsyncIfc: 2},
		{Name: "gmem_l", Gates: 350_000, SRAMKb: 1024, Replicas: 1, AsyncIfc: 2},
		{Name: "gmem_r", Gates: 350_000, SRAMKb: 1024, Replicas: 1, AsyncIfc: 2},
		{Name: "riscv", Gates: 600_000, SRAMKb: 256, Replicas: 1, AsyncIfc: 2},
		{Name: "io", Gates: 150_000, SRAMKb: 16, Replicas: 1, AsyncIfc: 3},
	}
}

func TestFloorplanInvariants(t *testing.T) {
	fp := Plan(testchip(), &Default16nm)
	if bad := fp.Overlaps(); len(bad) != 0 {
		t.Fatalf("overlapping rects: %v", bad)
	}
	if len(fp.Rects) != 19 {
		t.Fatalf("%d rects, want 19 (15 PEs + 4)", len(fp.Rects))
	}
	for _, r := range fp.Rects {
		if r.X < -1e-9 || r.Y < -1e-9 || r.X+r.W > fp.DieW+1e-6 || r.Y+r.H > fp.DieH+1e-6 {
			t.Fatalf("rect %s escapes die", r.Name)
		}
	}
	if fp.DieW*fp.DieH < fp.UsedArea {
		t.Fatal("die smaller than contents")
	}
}

// Property: random partition mixes always floorplan without overlap and
// with bounded whitespace.
func TestFloorplanRandomProperty(t *testing.T) {
	r := rand.New(rand.NewSource(111))
	for iter := 0; iter < 100; iter++ {
		var parts []Partition
		n := 1 + r.Intn(8)
		for i := 0; i < n; i++ {
			parts = append(parts, Partition{
				Name:     string(rune('a' + i)),
				Gates:    10_000 + r.Intn(2_000_000),
				SRAMKb:   r.Intn(512),
				Replicas: 1 + r.Intn(16),
			})
		}
		fp := Plan(parts, &Default16nm)
		if bad := fp.Overlaps(); len(bad) != 0 {
			t.Fatalf("iter %d: overlaps %v", iter, bad)
		}
		util := fp.UsedArea / (fp.DieW * fp.DieH)
		if util < 0.30 {
			t.Fatalf("iter %d: utilization %.2f implausibly low", iter, util)
		}
	}
}

func TestWirelengthMonotone(t *testing.T) {
	prev := 0.0
	for _, g := range []int{1_000, 10_000, 100_000, 1_000_000} {
		wl := WirelengthMM(g, &Default16nm)
		if wl <= prev {
			t.Fatalf("wirelength not monotone at %d gates", g)
		}
		prev = wl
	}
}

func TestClockPlansSyncVsGALS(t *testing.T) {
	parts := testchip()
	fp := Plan(parts, &Default16nm)
	syn := SynchronousClockPlan(parts, fp, &Default16nm)
	gls := GALSClockPlan(parts, fp, &Default16nm)

	if gls.TimingMarginPS != 0 {
		t.Errorf("GALS inter-partition margin %.0f, want 0 (correct-by-construction)", gls.TimingMarginPS)
	}
	if syn.TimingMarginPS <= 0 {
		t.Error("synchronous plan must charge skew margin")
	}
	if gls.TopLevelPaths != 0 {
		t.Errorf("GALS has %d top-level synchronous paths, want 0", gls.TopLevelPaths)
	}
	if syn.TopLevelPaths == 0 {
		t.Error("synchronous plan must have top-level paths to close")
	}
	if gls.SkewPS >= syn.SkewPS {
		t.Errorf("GALS local skew %.0f >= global skew %.0f", gls.SkewPS, syn.SkewPS)
	}
	// The paper's area claim: the GALS clocking overhead stays small.
	if pct := gls.OverheadPct(parts); pct >= 3 {
		t.Errorf("GALS clocking overhead %.2f%% >= 3%%", pct)
	}
}

func TestTurnaroundTwelveHourClass(t *testing.T) {
	r := DefaultRuntime.Turnaround(testchip())
	if r.HierParallelHours >= r.FlatHours {
		t.Fatalf("hierarchical parallel %.1fh >= flat %.1fh", r.HierParallelHours, r.FlatHours)
	}
	if r.HierParallelHours >= r.HierSerialHours {
		t.Fatalf("parallel %.1fh >= serial %.1fh", r.HierParallelHours, r.HierSerialHours)
	}
	// The paper reports a 12-hour RTL-to-layout turnaround with these
	// partition sizes; the model should land in that regime (≤ a day).
	if r.HierParallelHours > 24 {
		t.Fatalf("hierarchical turnaround %.1fh, expected overnight-class", r.HierParallelHours)
	}
	if r.FlatHours < 24 {
		t.Fatalf("flat runtime %.1fh implausibly fast for an 87M-transistor SoC", r.FlatHours)
	}
}

func TestReplicasReuseLayout(t *testing.T) {
	one := DefaultRuntime.Turnaround([]Partition{{Name: "pe", Gates: 280_000, Replicas: 1}})
	many := DefaultRuntime.Turnaround([]Partition{{Name: "pe", Gates: 280_000, Replicas: 15}})
	if many.HierSerialHours != one.HierSerialHours {
		t.Fatalf("replicas changed hierarchical runtime: %.2f vs %.2f", many.HierSerialHours, one.HierSerialHours)
	}
	if many.FlatHours <= one.FlatHours {
		t.Fatal("flat runtime must grow with replicas")
	}
}
