package physical

import (
	"math"
	"testing"
)

func testConnectivity() []Connectivity {
	// The SoC's traffic: PEs talk to both memories and the controller.
	return []Connectivity{
		{A: "pe", B: "gmem_l", Weight: 4},
		{A: "pe", B: "gmem_r", Weight: 4},
		{A: "pe", B: "riscv", Weight: 1},
		{A: "riscv", B: "io", Weight: 2},
		{A: "gmem_l", B: "io", Weight: 1},
	}
}

func TestRefineImprovesCost(t *testing.T) {
	r := Refine(testchip(), testConnectivity(), &Default16nm, 1500, 3)
	if r.FinalCost > r.InitialCost {
		t.Fatalf("annealing worsened cost: %.0f -> %.0f", r.InitialCost, r.FinalCost)
	}
	if r.Accepted == 0 || r.Moves != 1500 {
		t.Fatalf("move accounting wrong: %+v", r)
	}
}

func TestRefinePreservesInvariants(t *testing.T) {
	r := Refine(testchip(), testConnectivity(), &Default16nm, 800, 5)
	fp := r.Plan
	if bad := fp.Overlaps(); len(bad) != 0 {
		t.Fatalf("refined plan overlaps: %v", bad)
	}
	if len(fp.Rects) != 19 {
		t.Fatalf("refined plan lost instances: %d rects", len(fp.Rects))
	}
	for _, rc := range fp.Rects {
		if rc.X < -1e-9 || rc.Y < -1e-9 || rc.X+rc.W > fp.DieW+1e-6 || rc.Y+rc.H > fp.DieH+1e-6 {
			t.Fatalf("rect %s escapes refined die", rc.Name)
		}
	}
	// Area is conserved: packing cannot shrink silicon.
	var sum float64
	for _, rc := range fp.Rects {
		sum += rc.W * rc.H
	}
	if math.Abs(sum-fp.UsedArea)/fp.UsedArea > 1e-6 {
		t.Fatalf("placed area %.0f != used area %.0f", sum, fp.UsedArea)
	}
}

func TestRefineDeterministicPerSeed(t *testing.T) {
	a := Refine(testchip(), testConnectivity(), &Default16nm, 500, 7)
	b := Refine(testchip(), testConnectivity(), &Default16nm, 500, 7)
	if a.FinalCost != b.FinalCost || a.Accepted != b.Accepted {
		t.Fatalf("same seed, different results: %.2f/%d vs %.2f/%d",
			a.FinalCost, a.Accepted, b.FinalCost, b.Accepted)
	}
}

func TestRefineMoreIterationsNoWorse(t *testing.T) {
	short := Refine(testchip(), testConnectivity(), &Default16nm, 100, 9)
	long := Refine(testchip(), testConnectivity(), &Default16nm, 3000, 9)
	if long.FinalCost > short.FinalCost*1.001 {
		t.Fatalf("3000 iterations (%.0f) worse than 100 (%.0f)", long.FinalCost, short.FinalCost)
	}
}
