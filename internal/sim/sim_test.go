package sim

import (
	"testing"
)

func TestSingleClockCycles(t *testing.T) {
	s := New()
	clk := s.AddClock("clk", 1000, 0)
	var ticks int
	clk.AtCommit(func() { ticks++ })
	s.RunCycles(clk, 10)
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
	if clk.Cycle() != 10 {
		t.Fatalf("cycle = %d, want 10", clk.Cycle())
	}
	// Time of the 10th edge is 9 periods after the first (phase 0).
	if s.Now() != 9000 {
		t.Fatalf("now = %d, want 9000", s.Now())
	}
}

func TestPhaseOrdering(t *testing.T) {
	s := New()
	clk := s.AddClock("clk", 1000, 0)
	var order []string
	clk.Spawn("th", func(th *Thread) {
		for {
			order = append(order, "thread")
			th.Wait()
		}
	})
	clk.AtDrive(func() { order = append(order, "drive") })
	resolved := false
	clk.AtResolve(func() bool {
		order = append(order, "resolve")
		if !resolved {
			resolved = true
			return true // force a second pass
		}
		return false
	})
	clk.AtCommit(func() { order = append(order, "commit") })
	clk.AtMonitor(func() { order = append(order, "monitor") })
	s.RunCycles(clk, 1)
	want := []string{"thread", "drive", "resolve", "resolve", "commit", "monitor"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestThreadWaitCounting(t *testing.T) {
	s := New()
	clk := s.AddClock("clk", 500, 0)
	var sawCycles []uint64
	clk.Spawn("counter", func(th *Thread) {
		for i := 0; i < 5; i++ {
			sawCycles = append(sawCycles, th.Cycle())
			th.Wait()
		}
	})
	s.RunCycles(clk, 8)
	if len(sawCycles) != 5 {
		t.Fatalf("thread ran %d iterations, want 5", len(sawCycles))
	}
	for i, c := range sawCycles {
		if c != uint64(i+1) {
			t.Fatalf("iteration %d saw cycle %d, want %d", i, c, i+1)
		}
	}
}

func TestMultiClockRatio(t *testing.T) {
	s := New()
	fast := s.AddClock("fast", 1000, 0)
	slow := s.AddClock("slow", 3000, 0)
	var fastN, slowN int
	fast.AtCommit(func() { fastN++ })
	slow.AtCommit(func() { slowN++ })
	s.Run(9001) // edges at 0..9000
	if fastN != 10 {
		t.Errorf("fast edges = %d, want 10", fastN)
	}
	if slowN != 4 {
		t.Errorf("slow edges = %d, want 4", slowN)
	}
}

func TestClockPhase(t *testing.T) {
	s := New()
	c := s.AddClock("c", 1000, 250)
	var firstEdge Time
	c.AtCommit(func() {
		if firstEdge == 0 {
			firstEdge = s.Now()
		}
	})
	s.RunCycles(c, 1)
	if firstEdge != 250 {
		t.Fatalf("first edge at %d, want 250", firstEdge)
	}
}

func TestPausePostponesEdge(t *testing.T) {
	s := New()
	c := s.AddClock("c", 1000, 0)
	var edges []Time
	c.AtCommit(func() { edges = append(edges, s.Now()) })
	s.RunCycles(c, 1) // edge at 0
	c.Pause(2500)     // next edge would be 1000; pushed to 2500
	s.RunCycles(c, 2)
	if len(edges) != 3 || edges[1] != 2500 || edges[2] != 3500 {
		t.Fatalf("edges = %v, want [0 2500 3500]", edges)
	}
}

func TestSetPeriod(t *testing.T) {
	s := New()
	c := s.AddClock("c", 1000, 0)
	var edges []Time
	c.AtCommit(func() {
		edges = append(edges, s.Now())
		if len(edges) == 2 {
			c.SetPeriod(400)
		}
	})
	s.RunCycles(c, 4)
	// edges: 0, 1000 (then period=400), 1400, 1800
	want := []Time{0, 1000, 1400, 1800}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("edges = %v, want %v", edges, want)
		}
	}
}

func TestStopFromThread(t *testing.T) {
	s := New()
	c := s.AddClock("c", 1000, 0)
	c.Spawn("stopper", func(th *Thread) {
		th.WaitN(3)
		th.Sim().Stop()
		th.Wait()
	})
	s.Run(Infinity - 1)
	if !s.Stopped() {
		t.Fatal("not stopped")
	}
	if c.Cycle() != 4 {
		t.Fatalf("stopped at cycle %d, want 4", c.Cycle())
	}
}

func TestThreadPanicBecomesError(t *testing.T) {
	s := New()
	c := s.AddClock("c", 1000, 0)
	c.Spawn("bad", func(th *Thread) {
		th.Wait()
		panic("boom")
	})
	s.RunCycles(c, 5)
	if s.Err() == nil {
		t.Fatal("expected error from panicking thread")
	}
}

func TestThreadRetires(t *testing.T) {
	s := New()
	c := s.AddClock("c", 1000, 0)
	ran := 0
	c.Spawn("short", func(th *Thread) {
		ran++
	})
	s.RunCycles(c, 5)
	if ran != 1 {
		t.Fatalf("retired thread body ran %d times", ran)
	}
}

func TestCombinationalLoopPanics(t *testing.T) {
	s := New()
	c := s.AddClock("c", 1000, 0)
	c.AtResolve(func() bool { return true }) // never converges
	defer func() {
		if recover() == nil {
			t.Fatal("combinational loop did not panic")
		}
	}()
	s.RunCycles(c, 1)
}

func TestCoincidentEdgesDeterministicOrder(t *testing.T) {
	s := New()
	// Registration order b, a — but firing order must be name order a, b.
	b := s.AddClock("b", 1000, 0)
	a := s.AddClock("a", 1000, 0)
	var order []string
	a.AtCommit(func() { order = append(order, "a") })
	b.AtCommit(func() { order = append(order, "b") })
	s.RunCycles(a, 1)
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
}

func TestTotalEdges(t *testing.T) {
	s := New()
	a := s.AddClock("a", 1000, 0)
	s.AddClock("b", 2000, 0)
	s.RunCycles(a, 4) // a: 0,1k,2k,3k ; b: 0,2k
	if s.TotalEdges() != 6 {
		t.Fatalf("TotalEdges = %d, want 6", s.TotalEdges())
	}
}

func TestAccessors(t *testing.T) {
	s := New()
	c := s.AddClock("main", 1250, 0)
	if c.Name() != "main" || c.Period() != 1250 {
		t.Fatalf("accessors: %s %d", c.Name(), c.Period())
	}
	var thName string
	var thClk *Clock
	c.Spawn("worker", func(th *Thread) {
		thName = th.Name()
		thClk = th.Clock()
	})
	s.RunCycles(c, 1)
	if thName != "worker" || thClk != c {
		t.Fatalf("thread accessors: %q %v", thName, thClk)
	}
}

func TestSetPeriodRejectsZero(t *testing.T) {
	s := New()
	c := s.AddClock("c", 1000, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero period")
		}
	}()
	c.SetPeriod(0)
}

func TestDrainRetiresThreads(t *testing.T) {
	s := New()
	c := s.AddClock("c", 1000, 0)
	done := false
	c.Spawn("short", func(th *Thread) {
		th.WaitN(3)
		done = true
	})
	s.RunCycles(c, 1) // thread started but unfinished
	s.Drain(100)
	if !done {
		t.Fatal("drain did not let the thread finish")
	}
	// Draining an already-quiet simulation returns immediately.
	s.Drain(100)
}

func BenchmarkThreadSync(b *testing.B) {
	s := New()
	c := s.AddClock("c", 1000, 0)
	for i := 0; i < 8; i++ {
		c.Spawn("t", func(th *Thread) {
			for {
				th.Wait()
			}
		})
	}
	b.ResetTimer()
	s.RunCycles(c, uint64(b.N))
}
