package sim

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/trace"
)

// This file implements the partition-parallel execution engine: the
// simulator's clocks are grouped into shards, each driven by its own
// worker goroutine with a private due-edge scan, and synchronized by a
// conservative, null-message-free key protocol that reproduces the
// sequential kernel's exact edge order.
//
// # The protocol
//
// Every edge has a key packKey(t, ord) = (time << 8) | clock-order — the
// total order the sequential kernel fires edges in (time, then clock
// name). Each shard continuously publishes, in one atomic word, the key
// of its earliest pending edge (MaxUint64 when idle). A shard may
// execute that edge iff every *coupled* neighbor shard's published key
// is strictly greater than its own:
//
//   - no neighbor can still execute an earlier edge (its key is its
//     earliest), so every cross-shard effect that precedes ours — FIFO
//     state, clock pauses, shared-memory writes — has already been
//     applied, exactly as in the sequential order;
//   - keys are unique (one clock per ord), so "strictly greater" is
//     never a tie, and the globally minimal key in any coupled
//     component can always fire: no deadlock, no null messages, no
//     lookahead parameter to get wrong.
//
// Directly coupled shards therefore interleave in global order and never
// execute simultaneously; parallelism comes from shards that are not
// neighbors, which is what cutting a GALS design along its bisync FIFO
// boundaries maximizes. Correctness never depends on where the cut is —
// only speed does — provided every cross-shard interaction is declared,
// which is what Design.AddSync and Design.AddCoupling record.
//
// Pause arbitration (the one slow path) and the due-list-freeze immunity
// rule live in Clock.CrossingPause; trace determinism lives in
// trace.Lane. Everything else is the loop below.

// Shard is one worker's slice of the design: a set of clocks that only
// interact with other shards through declared couplings.
type Shard struct {
	engine *Engine
	id     int
	clocks []*Clock

	// key is the packed key of the shard's earliest pending edge, the
	// word the whole protocol trades on. It only moves forward, and it
	// advances past an edge's key only after that edge fully completes,
	// so a neighbor reading key > k knows every effect of every edge
	// with key ≤ k is visible.
	key atomic.Uint64

	neighbors []*Shard
	lastTime  Time // latest executed edge instant, for Simulator.now
	ran       bool // whether any edge executed (lastTime 0 is a real time)
}

// Clocks returns the shard's clocks in scheduling (name) order.
func (sh *Shard) Clocks() []*Clock { return append([]*Clock(nil), sh.clocks...) }

// Engine drives partition-parallel windows over one simulator. Create it
// with NewEngine, call Run for each time window (stop conditions are
// evaluated between windows, deterministically), then Close to merge
// trace lanes and detach. A one-shard engine runs the identical protocol
// with no neighbors — the degenerate case tests lean on.
type Engine struct {
	sim    *Simulator
	shards []*Shard
	closed bool
}

// NewEngine partitions the simulator's clocks into len(groups) shards
// and wires the partition protocol. groups must cover every clock of the
// simulator exactly once; couples lists the clock pairs that interact
// across shard boundaries (bisync FIFOs, brute-force synchronizers,
// shared memories — everything Design.Syncs and Design.Couplings
// record). An undeclared cross-shard interaction is undefined behavior;
// over-declaring merely serializes two shards.
//
// The engine supports at most 256 clocks (the ord field of the packed
// key); larger designs must merge clocks into coarser groups at build
// time, which the psim planner does.
func NewEngine(s *Simulator, groups [][]*Clock, couples [][2]*Clock) (*Engine, error) {
	if s.engine != nil {
		return nil, fmt.Errorf("sim: partition engine already attached")
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("sim: no partition groups")
	}
	if len(s.clocks) > 256 {
		return nil, fmt.Errorf("sim: %d clocks exceed the 256-clock partition limit", len(s.clocks))
	}
	// Assign each clock its rank in the name-sorted clock list: the
	// sequential kernel's coincident-edge tie-break, packed into keys.
	byName := append([]*Clock(nil), s.clocks...)
	sort.Slice(byName, func(i, j int) bool { return byName[i].name < byName[j].name })
	for i, c := range byName {
		c.ord = i
	}

	e := &Engine{sim: s}
	seen := make(map[*Clock]int)
	for gi, g := range groups {
		sh := &Shard{engine: e, id: gi}
		for _, c := range g {
			if c.sim != s {
				return nil, fmt.Errorf("sim: clock %q belongs to another simulator", c.name)
			}
			if prev, dup := seen[c]; dup {
				return nil, fmt.Errorf("sim: clock %q in partition groups %d and %d", c.name, prev, gi)
			}
			seen[c] = gi
			sh.clocks = append(sh.clocks, c)
		}
		sort.Slice(sh.clocks, func(i, j int) bool { return sh.clocks[i].ord < sh.clocks[j].ord })
		e.shards = append(e.shards, sh)
	}
	if len(seen) != len(s.clocks) {
		for _, c := range s.clocks {
			if _, ok := seen[c]; !ok {
				return nil, fmt.Errorf("sim: clock %q not covered by any partition group", c.name)
			}
		}
	}

	// Neighbor sets and per-clock pause arbiters from the coupling list.
	type pair struct{ a, b int }
	nb := make(map[pair]bool)
	for _, cp := range couples {
		a, aok := seen[cp[0]]
		b, bok := seen[cp[1]]
		if !aok || !bok {
			return nil, fmt.Errorf("sim: coupling references a foreign clock")
		}
		if a == b {
			continue
		}
		if !nb[pair{a, b}] {
			nb[pair{a, b}] = true
			nb[pair{b, a}] = true
			e.shards[a].neighbors = append(e.shards[a].neighbors, e.shards[b])
			e.shards[b].neighbors = append(e.shards[b].neighbors, e.shards[a])
		}
		// Either end's shard may pause the other end's clock; arbiters
		// collect, per clock, every shard that can race such a pause.
		addArbiter(cp[0], e.shards[b])
		addArbiter(cp[1], e.shards[a])
	}
	for _, sh := range e.shards {
		sort.Slice(sh.neighbors, func(i, j int) bool { return sh.neighbors[i].id < sh.neighbors[j].id })
	}

	// Wire shard and (when armed) trace-lane pointers; publish initial
	// keys so no worker sees a stale zero.
	tr := s.tracer
	for _, sh := range e.shards {
		var lane = tr.NewLane()
		for _, c := range sh.clocks {
			c.shard = sh
			c.lane = lane
		}
		sh.key.Store(sh.nextDueKey())
	}
	s.engine = e
	return e, nil
}

func addArbiter(c *Clock, sh *Shard) {
	for _, have := range c.arbiters {
		if have == sh {
			return
		}
	}
	c.arbiters = append(c.arbiters, sh)
}

// Shards returns the engine's shards in group order.
func (e *Engine) Shards() []*Shard { return append([]*Shard(nil), e.shards...) }

// nextDueKey scans the shard's clocks for the earliest pending edge and
// returns its packed key (MaxUint64 when the shard is idle). dueEdge
// honours pause immunity, the partitioned form of the sequential
// kernel's frozen due list.
func (sh *Shard) nextDueKey() uint64 {
	best := uint64(1<<64 - 1)
	for _, c := range sh.clocks {
		if k := packKey(c.dueEdge(), c.ord); k < best {
			best = k
		}
	}
	return best
}

// dueClockAt returns the owned clock whose pending edge has key k.
func (sh *Shard) dueClockAt(k uint64) *Clock {
	for _, c := range sh.clocks {
		if packKey(c.dueEdge(), c.ord) == k {
			return c
		}
	}
	return nil
}

// Run executes every edge strictly before maxTime, in parallel across
// shards, and advances Simulator.Now to the last executed instant —
// exactly what the sequential Run(maxTime) computes. A thread panic
// aborts the window early; a cooperative Stop does not — the window
// always completes, because shards run ahead of each other and an
// immediate stop would truncate each shard at a key that depends on the
// shard count. Callers check Stopped between windows (psim.RunWindows
// does), which keeps the stopping point identical for every partitioning.
func (e *Engine) Run(maxTime Time) {
	limit := packKey(maxTime, 0)
	var wg sync.WaitGroup
	for _, sh := range e.shards {
		wg.Add(1)
		go func(sh *Shard) {
			defer wg.Done()
			sh.run(limit)
		}(sh)
	}
	wg.Wait()
	for _, sh := range e.shards {
		if sh.ran && sh.lastTime > e.sim.now {
			e.sim.now = sh.lastTime
		}
	}
}

// run is one shard's worker loop for one window.
func (sh *Shard) run(limit uint64) {
	s := sh.engine.sim
	for !s.aborted.Load() {
		k := sh.nextDueKey()
		sh.key.Store(k)
		if k >= limit {
			return
		}
		// Conservative gate: every coupled neighbor must be past k.
		for _, nb := range sh.neighbors {
			for nb.key.Load() <= k {
				if s.aborted.Load() {
					return
				}
				runtime.Gosched()
			}
		}
		c := sh.dueClockAt(k)
		if c == nil {
			// A neighbor paused our clock between the scan and the
			// gate; rescan. (Pauses only push edges later, so the
			// republished key still only moves forward.)
			continue
		}
		t := Time(k >> 8)
		c.runEdgeAt(t)
		sh.lastTime, sh.ran = t, true
	}
}

// arbitratePause blocks until every shard that could issue an
// earlier-ordered pause on clock c has advanced past the requesting
// edge's key. Called from Clock.CrossingPause on its slow path — a
// conflict window is open — so that the pause decision and its
// observable side effects (pause counters, stall events) are made in
// exactly the sequential order. The wait cannot deadlock: of two shards
// arbitrating on the same clock, the one with the smaller key sees the
// other's larger key and proceeds.
func (e *Engine) arbitratePause(c *Clock, from *Clock, now Time) {
	k := packKey(now, from.ord)
	for _, ar := range c.arbiters {
		if ar == from.shard {
			continue
		}
		for ar.key.Load() <= k {
			if e.sim.aborted.Load() {
				return
			}
			runtime.Gosched()
		}
	}
}

// Close detaches the engine: it merges the shards' trace lanes into the
// recorder's deterministic stream and unwires the per-clock partition
// state so the simulator can resume sequential stepping. The engine
// cannot be reused after Close.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	s := e.sim
	if s.tracer != nil {
		lanes := make([]*trace.Lane, 0, len(e.shards))
		seenLane := map[*trace.Lane]bool{}
		for _, sh := range e.shards {
			for _, c := range sh.clocks {
				if c.lane != nil && !seenLane[c.lane] {
					seenLane[c.lane] = true
					lanes = append(lanes, c.lane)
				}
			}
		}
		s.tracer.MergeLanes(lanes)
	}
	for _, sh := range e.shards {
		for _, c := range sh.clocks {
			c.shard, c.lane, c.arbiters = nil, nil, nil
		}
	}
	s.engine = nil
}
