package sim

// The design graph is a constructor-time side table describing the
// elaborated structure of a simulation: which channels exist, which
// component owns each channel endpoint and on which clock, which
// clock-domain synchronizers join which domains, and how the hierarchy
// is partitioned into clock regions. Constructors append to it in O(1)
// as the design is built — nothing here runs per cycle — and the static
// lint pass (internal/lint) walks it before simulation starts. A design
// that never lints pays only the appends.

// PortDir distinguishes the two ends of a latency-insensitive channel.
type PortDir int

// Port directions.
const (
	PortProducer PortDir = iota // an Out terminal: the component pushes
	PortConsumer                // an In terminal: the component pops
)

func (d PortDir) String() string {
	if d == PortProducer {
		return "Out"
	}
	return "In"
}

// PortDecl is a declared channel endpoint: the component at Path owns a
// port named Port in Clock's domain. Declaring ownership is optional —
// lint rules fire only on inconsistent declarations, never on missing
// ones — so raw testbench ports stay silent.
type PortDecl struct {
	Path  string // owning component path
	Port  string // port name within the component
	Clock *Clock
	Dir   PortDir

	Bound   bool   // set by connections.Bind when a channel attaches
	Channel string // name of the channel the port is bound to

	// Rate is the endpoint's declared token rate per actor firing for the
	// static communication-rate pass (internal/ratecheck). The zero value
	// means undeclared, which ratecheck treats as one token per firing.
	Rate Rat
}

// String renders the endpoint as "path.port".
func (p *PortDecl) String() string { return p.Path + "." + p.Port }

// ChannelDecl records one bound channel: its clock, kind, declared
// capacity (before any runtime clamping, so lint can see an illegal
// depth), retiming latency, and — when the endpoints declared ownership
// — the producer and consumer port declarations.
type ChannelDecl struct {
	Name       string
	Clock      *Clock
	Kind       string
	Capacity   int // declared FIFO depth; runtime clamps to >= 1
	Latency    int
	Terminated bool // intentional stub; exempt from dangling-endpoint lint
	Prod       *PortDecl
	Cons       *PortDecl
}

// Rat is an exact nonnegative rational, the number type of every rate
// declaration and every ratecheck bound. Rates are rationals, never
// floats, so diagnostics and throughput bounds render byte-identically
// on every host (cmd/detvet enforces the no-float rule on the analysis
// package). The zero value means "undeclared".
type Rat struct {
	Num int64 `json:"num"`
	Den int64 `json:"den"`
}

// NewRat returns num/den reduced to lowest terms. Both arguments must be
// positive; rate declarations have no meaningful zero or negative form.
func NewRat(num, den int64) Rat {
	if num <= 0 || den <= 0 {
		panic("sim: rate must be a positive rational")
	}
	g := gcd64(num, den)
	return Rat{Num: num / g, Den: den / g}
}

// IsZero reports whether the rational is the undeclared zero value.
func (r Rat) IsZero() bool { return r.Num == 0 && r.Den == 0 }

// String renders "num/den", or "num" when the denominator is 1.
func (r Rat) String() string {
	if r.IsZero() {
		return "?"
	}
	if r.Den == 1 {
		return itoa64(r.Num)
	}
	return itoa64(r.Num) + "/" + itoa64(r.Den)
}

// itoa64 is strconv.FormatInt(n, 10) without the import, keeping this
// file's dependency set empty.
func itoa64(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// ActorClass tells the rate analysis how a component moves tokens.
type ActorClass int

// Actor classes.
const (
	// ActorSDF is a synchronous-dataflow actor: each firing consumes and
	// produces a fixed token count on every declared port, so the actor
	// participates in the balance equations.
	ActorSDF ActorClass = iota
	// ActorSwitch moves tokens data-dependently (routers, arbiters, NIs):
	// per-port rates are not fixed per firing, so the balance equations
	// skip it and only the hardware port limit bounds its channels.
	ActorSwitch
)

func (c ActorClass) String() string {
	if c == ActorSwitch {
		return "switch"
	}
	return "sdf"
}

// ActorDecl registers a component path as a rate-analysis actor.
type ActorDecl struct {
	Path  string
	Class ActorClass
	Clock *Clock

	// Service is the actor's maximum firing rate in firings per cycle of
	// its clock. Zero means unconstrained: the actor can fire every cycle
	// its ports allow, and ratecheck derives no supply/demand diagnostic
	// from it.
	Service Rat
}

// SplitDecl is an advisory traffic-share declaration for one output port
// of a switch actor (a NoC router's per-port split ratio). Ratecheck
// reports the share alongside the port's channel but never uses it to
// tighten a throughput bound — measured traffic under a hotspot pattern
// may concentrate entirely on one port.
type SplitDecl struct {
	Path  string // actor path
	Port  string // output port name
	Ratio Rat    // expected fraction of the actor's output traffic
}

// SyncDecl records one clock-domain synchronizer (a GALS FIFO): the only
// legal way for data to cross between Prod's and Cons's domains.
type SyncDecl struct {
	Name  string
	Style string // "pausible" or "brute-force"
	Prod  *Clock
	Cons  *Clock
	Depth int
}

// Coupling records a cross-domain interaction that is not a declared
// synchronizer: two clocks whose components read or write shared state
// directly (a bus master addressing another region's memory, a
// brute-force CDC probe, a testbench peeking across domains). The
// partition planner treats couplings exactly like syncs when it decides
// which shards must synchronize, so an undeclared one is the only way to
// break the partition-parallel engine — declare them.
type Coupling struct {
	A, B *Clock
	Why  string // human-readable provenance, e.g. "axi: rv reads gml.mem"
}

// Partition labels a component subtree as one clock region; the SoC
// builder marks each node partition so CDC diagnostics can name the
// regions a bad crossing joins.
type Partition struct {
	Path  string
	Clock *Clock
}

// Collision records two design objects claiming the same name. Because
// the component registry merges equal paths silently, a duplicate name
// means merged stats and trace channels — lint reports it as CON-4.
type Collision struct {
	Name   string
	First  string // what kind of object claimed the name first
	Second string // what kind of object claimed it again
}

// Design is the per-simulator design graph. All methods are
// construction-time only and single-goroutine, like the rest of the
// elaboration API.
type Design struct {
	ports      []*PortDecl
	channels   []*ChannelDecl
	syncs      []*SyncDecl
	couplings  []Coupling
	partitions []Partition
	actors     []*ActorDecl
	splits     []SplitDecl
	names      map[string]string
	collisions []Collision
}

// Design returns the simulator's design graph, creating it on first use.
func (s *Simulator) Design() *Design {
	if s.design == nil {
		s.design = &Design{names: make(map[string]string)}
	}
	return s.design
}

// claim registers a design-object name, recording a collision when the
// name was already taken by another object.
func (d *Design) claim(name, what string) {
	if prev, ok := d.names[name]; ok {
		d.collisions = append(d.collisions, Collision{Name: name, First: prev, Second: what})
		return
	}
	d.names[name] = what
}

// DeclarePort records channel-endpoint ownership: the component at path
// owns a port named port in clk's domain. connections.In/Out call it via
// their Owned methods.
func (d *Design) DeclarePort(path, port string, clk *Clock, dir PortDir) *PortDecl {
	p := &PortDecl{Path: path, Port: port, Clock: clk, Dir: dir}
	d.claim(p.String(), dir.String()+" port")
	d.ports = append(d.ports, p)
	return p
}

// AddChannel records one bound channel. connections.Bind calls it.
func (d *Design) AddChannel(c ChannelDecl) *ChannelDecl {
	cc := c
	d.claim(cc.Name, "channel")
	d.channels = append(d.channels, &cc)
	return &cc
}

// AddSync records one clock-domain synchronizer. The GALS FIFO
// constructors call it.
func (d *Design) AddSync(s SyncDecl) *SyncDecl {
	ss := s
	d.claim(ss.Name, "synchronizer")
	d.syncs = append(d.syncs, &ss)
	return &ss
}

// AddCoupling records a direct cross-domain interaction between clocks
// a and b (see Coupling). Same-clock and nil entries are ignored so
// callers can declare unconditionally.
func (d *Design) AddCoupling(a, b *Clock, why string) {
	if a == nil || b == nil || a == b {
		return
	}
	d.couplings = append(d.couplings, Coupling{A: a, B: b, Why: why})
}

// Couplings returns the declared direct couplings in declaration order.
func (d *Design) Couplings() []Coupling { return d.couplings }

// MarkPartition labels the component subtree at path as one clock
// region.
func (d *Design) MarkPartition(path string, clk *Clock) {
	d.partitions = append(d.partitions, Partition{Path: path, Clock: clk})
}

// DeclareActor registers the component at path as a rate-analysis actor
// of the given class on clk. service is the maximum firing rate in
// firings per cycle (the zero Rat leaves it unconstrained). Declaring
// the same path twice records a name collision, like any other design
// object.
func (d *Design) DeclareActor(path string, class ActorClass, clk *Clock, service Rat) *ActorDecl {
	a := &ActorDecl{Path: path, Class: class, Clock: clk, Service: service}
	d.claim(path, class.String()+" actor")
	d.actors = append(d.actors, a)
	return a
}

// DeclareSplit records an advisory traffic-share ratio for one output
// port of a switch actor; see SplitDecl.
func (d *Design) DeclareSplit(path, port string, ratio Rat) {
	d.splits = append(d.splits, SplitDecl{Path: path, Port: port, Ratio: ratio})
}

// Actors returns the declared rate-analysis actors in declaration order.
func (d *Design) Actors() []*ActorDecl { return d.actors }

// Splits returns the advisory split ratios in declaration order.
func (d *Design) Splits() []SplitDecl { return d.splits }

// Ports returns the declared endpoints in declaration order.
func (d *Design) Ports() []*PortDecl { return d.ports }

// Channels returns the bound channels in bind order.
func (d *Design) Channels() []*ChannelDecl { return d.channels }

// Syncs returns the registered synchronizers in registration order.
func (d *Design) Syncs() []*SyncDecl { return d.syncs }

// SyncCount returns the number of registered synchronizers; the
// deprecated anonymous FIFO constructor uses it to derive stable names.
func (d *Design) SyncCount() int { return len(d.syncs) }

// Partitions returns the labelled clock regions in marking order.
func (d *Design) Partitions() []Partition { return d.partitions }

// Collisions returns every duplicate-name event seen so far.
func (d *Design) Collisions() []Collision { return d.collisions }
