// Package sim is a multi-clock-domain, cycle-based hardware simulation
// kernel. It is this repository's substitute for the SystemC kernel used by
// the paper's OOHLS flow (DESIGN.md §2).
//
// The kernel advances time in picoseconds from clock edge to clock edge.
// Every clock edge runs five phases, in order:
//
//  1. Threads  — coroutine processes bound to the clock resume and run
//     until they call Thread.Wait (one simulated cycle of work).
//  2. Drive    — registered drive hooks compute output signals from the
//     state committed in previous cycles.
//  3. Resolve  — registered resolvers iterate to a fixpoint, modelling
//     combinational paths between components (ready/valid coupling,
//     arbitration) within the cycle.
//  4. Commit   — registered commit hooks latch state, completing the
//     register-transfer semantics of the cycle.
//  5. Monitor  — observation-only hooks (statistics, traces).
//
// Threads are Go goroutines synchronized so that exactly one runs at a
// time, in deterministic registration order; simulations are therefore
// reproducible. A thread performing several latency-insensitive port
// operations in one loop iteration pays one Wait per operation in the
// signal-accurate channel model and one Wait total in the sim-accurate
// model — the distinction at the heart of the paper's Figure 3.
//
// A thread that would otherwise poll an idle latency-insensitive endpoint
// can park on a predicate (Thread.WaitFor) or a countdown (Thread.WaitN):
// the kernel evaluates the condition at the thread's scheduling slot each
// edge and skips the two-channel goroutine handoff entirely until it
// holds. Parking is an execution optimization only — a parked thread
// observes exactly the cycle it would have observed by polling.
//
// Every simulated component can register into a hierarchical component
// tree (Simulator.Component) whose paths ("soc/pe[3]/inject") key the
// unified metrics registry (internal/stats) shared by channels, routers,
// memories, power, and coverage.
//
// Clocks may be paused or retuned while the simulation runs, which is what
// the fine-grained GALS substrate (internal/gals) uses to model pausible
// and adaptive clocking.
//
// A simulator can be armed with a handshake-event recorder
// (Simulator.Arm, internal/trace) before the design is built; armed
// components then emit channel-level trace events from the same
// deterministic schedule, so traced runs are cycle-identical to
// untraced runs.
package sim
