package sim

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// pdes is a synthetic GALS design shaped like the real SoC's hard cases:
// a path of clocks with co-prime-ish periods and scattered phases, where
// every clock reads its left neighbor's state (a direct cross-domain
// coupling), pauses its right neighbor whenever the neighbor's next edge
// falls inside a conflict window (the pausible-FIFO handshake, including
// same-instant pauses — the PR 2 due-list-freeze bug class), runs a
// coroutine thread, and emits one trace event per commit.
type pdes struct {
	s       *Simulator
	clocks  []*Clock
	count   []uint64 // own-commit counter per clock
	sum     []uint64 // checksum of left neighbor's counter (cross-shard read)
	pauses  []uint64 // pauses issued on the right neighbor
	tcount  []uint64 // thread wakeups per clock
	couples [][2]*Clock
}

func buildPDES(n int, armed bool, window Time) *pdes {
	s := New()
	d := &pdes{
		s:      s,
		count:  make([]uint64, n),
		sum:    make([]uint64, n),
		pauses: make([]uint64, n),
		tcount: make([]uint64, n),
	}
	if armed {
		s.Arm(trace.NewRecorder())
	}
	subs := make([]*trace.Subject, n)
	for i := 0; i < n; i++ {
		period := Time(90 + 7*(i%5))
		phase := Time((i * 37) % 90)
		c := s.AddClock(fmt.Sprintf("c%02d", i), period, phase)
		d.clocks = append(d.clocks, c)
		subs[i] = s.Tracer().Subject(fmt.Sprintf("n[%d]", i))
	}
	for i := 0; i < n; i++ {
		i, c := i, d.clocks[i]
		c.AtCommit(func() {
			d.count[i]++
			if i > 0 {
				d.sum[i] += d.count[i-1]
			}
			if i+1 < n {
				nb := d.clocks[i+1]
				if nb.CrossingPause(c, c.Now(), c.Now()+window) {
					d.pauses[i]++
				}
			}
			if subs[i] != nil {
				subs[i].EmitOn(c.Lane(), trace.KindOcc, uint64(c.Now()), c.Cycle(), d.count[i])
			}
		})
		c.Spawn(fmt.Sprintf("t%d", i), func(th *Thread) {
			for {
				th.Wait()
				d.tcount[i]++
				if d.tcount[i]%5 == 0 {
					th.WaitN(3)
				}
			}
		})
	}
	for i := 0; i+1 < n; i++ {
		d.couples = append(d.couples, [2]*Clock{d.clocks[i], d.clocks[i+1]})
	}
	return d
}

// chunk splits the clocks into k contiguous groups.
func (d *pdes) chunk(k int) [][]*Clock {
	n := len(d.clocks)
	per := (n + k - 1) / k
	var groups [][]*Clock
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		groups = append(groups, d.clocks[lo:hi:hi])
	}
	return groups
}

type pdesState struct {
	now        Time
	totalEdges uint64
	cycles     []uint64
	count      []uint64
	sum        []uint64
	pauses     []uint64
	tcount     []uint64
}

func (d *pdes) state() pdesState {
	st := pdesState{
		now:        d.s.Now(),
		totalEdges: d.s.TotalEdges(),
		count:      d.count,
		sum:        d.sum,
		pauses:     d.pauses,
		tcount:     d.tcount,
	}
	for _, c := range d.clocks {
		st.cycles = append(st.cycles, c.Cycle())
	}
	return st
}

// TestPartitionedBitIdentical is the tentpole invariant at engine level:
// for every shard count, a partitioned Run(maxTime) leaves exactly the
// state — and exactly the trace event stream — of the sequential kernel.
func TestPartitionedBitIdentical(t *testing.T) {
	const n, window, horizon = 6, 13, 50_000
	ref := buildPDES(n, true, window)
	ref.s.Run(horizon)
	want := ref.state()
	wantEvents := ref.s.Tracer().Events()
	if want.totalEdges == 0 || sumOf(want.pauses) == 0 {
		t.Fatalf("reference run exercised nothing: %+v", want)
	}

	for _, shards := range []int{1, 2, 3, 6} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			d := buildPDES(n, true, window)
			e, err := NewEngine(d.s, d.chunk(shards), d.couples)
			if err != nil {
				t.Fatal(err)
			}
			e.Run(horizon)
			e.Close()
			if got := d.state(); !reflect.DeepEqual(got, want) {
				t.Errorf("state diverged from sequential:\ngot  %+v\nwant %+v", got, want)
			}
			got := d.s.Tracer().Events()
			if !reflect.DeepEqual(got, wantEvents) {
				t.Errorf("trace diverged: %d events vs %d", len(got), len(wantEvents))
				for i := range got {
					if i < len(wantEvents) && got[i] != wantEvents[i] {
						t.Fatalf("first divergence at event %d: got %+v want %+v", i, got[i], wantEvents[i])
					}
				}
			}
			if !reflect.DeepEqual(d.s.Tracer().Paths(), ref.s.Tracer().Paths()) {
				t.Errorf("subject paths diverged")
			}
		})
	}
}

// TestPartitionedWindowsResumable checks that successive engine windows
// compose: running [0,h/4), [h/4, h/2), ... equals one sequential run to
// h — the property the epoch-quantized stop protocol is built on.
func TestPartitionedWindowsResumable(t *testing.T) {
	const n, window, horizon = 5, 21, 40_000
	ref := buildPDES(n, false, window)
	ref.s.Run(horizon)
	want := ref.state()

	d := buildPDES(n, false, window)
	e, err := NewEngine(d.s, d.chunk(2), d.couples)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []Time{horizon / 4, horizon / 2, 3 * horizon / 4, horizon} {
		e.Run(h)
	}
	e.Close()
	if got := d.state(); !reflect.DeepEqual(got, want) {
		t.Errorf("windowed run diverged:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestPartitionedPanicDeterministic: a thread panic inside a shard stops
// every worker and surfaces the same error the sequential kernel reports.
func TestPartitionedPanicDeterministic(t *testing.T) {
	buildT := func() *pdes {
		d := buildPDES(4, false, 13)
		d.clocks[2].Spawn("fault", func(th *Thread) {
			th.WaitN(7)
			panic("injected fault")
		})
		return d
	}
	seq := buildT()
	seq.s.Run(20_000)
	wantErr := seq.s.Err()
	if wantErr == nil {
		t.Fatal("sequential run did not surface the injected panic")
	}

	par := buildT()
	e, err := NewEngine(par.s, par.chunk(2), par.couples)
	if err != nil {
		t.Fatal(err)
	}
	e.Run(20_000)
	e.Close()
	if got := par.s.Err(); got == nil || got.Error() != wantErr.Error() {
		t.Errorf("partitioned error = %v, want %v", got, wantErr)
	}
}

// TestNewEngineValidation covers the planner-facing error surface.
func TestNewEngineValidation(t *testing.T) {
	d := buildPDES(3, false, 13)
	if _, err := NewEngine(d.s, [][]*Clock{{d.clocks[0], d.clocks[1]}}, nil); err == nil {
		t.Error("missing clock not rejected")
	}
	if _, err := NewEngine(d.s, [][]*Clock{{d.clocks[0], d.clocks[1]}, {d.clocks[1], d.clocks[2]}}, nil); err == nil {
		t.Error("duplicate clock not rejected")
	}
	other := New()
	oc := other.AddClock("x", 10, 0)
	if _, err := NewEngine(d.s, [][]*Clock{{d.clocks[0], d.clocks[1], d.clocks[2], oc}}, nil); err == nil {
		t.Error("foreign clock not rejected")
	}
	e, err := NewEngine(d.s, d.chunk(1), d.couples)
	if err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if _, err := NewEngine(d.s, d.chunk(1), d.couples); err == nil {
		t.Error("double attach not rejected")
	}
	e.Close()
}

// TestPackKey pins the key order: time-major, clock-order tie-break, and
// saturation at the top of the range so Infinity stays the maximum.
func TestPackKey(t *testing.T) {
	if packKey(5, 3) >= packKey(6, 0) {
		t.Error("time must dominate ord")
	}
	if packKey(5, 1) >= packKey(5, 2) {
		t.Error("ord must tie-break equal times")
	}
	if packKey(Infinity, 0) != 1<<64-1 {
		t.Error("Infinity must saturate")
	}
}

func sumOf(v []uint64) uint64 {
	var t uint64
	for _, x := range v {
		t += x
	}
	return t
}
