package sim

import (
	"testing"

	"repro/internal/stats"
)

func TestComponentPaths(t *testing.T) {
	s := New()
	c := s.Component("soc/pe[3]/inject")
	if c.Path() != "soc/pe[3]/inject" || c.Name() != "inject" {
		t.Fatalf("path %q name %q", c.Path(), c.Name())
	}
	if c.Parent().Path() != "soc/pe[3]" {
		t.Fatalf("parent path %q", c.Parent().Path())
	}
	// Get-or-create: the same path yields the same node.
	if s.Component("soc/pe[3]/inject") != c {
		t.Fatal("second Component call returned a different node")
	}
	if got, ok := s.Lookup("soc/pe[3]"); !ok || got != c.Parent() {
		t.Fatal("Lookup missed an existing component")
	}
	if _, ok := s.Lookup("soc/pe[9]"); ok {
		t.Fatal("Lookup created a component")
	}
	if s.Component("") != s.Root() {
		t.Fatal("empty path is not the root")
	}
}

func TestComponentChildrenOrderAndWalk(t *testing.T) {
	s := New()
	s.Component("top/b")
	s.Component("top/a")
	s.Component("top/b/x")
	var walked []string
	s.Component("top").Walk(func(c *Component) { walked = append(walked, c.Path()) })
	want := []string{"top", "top/b", "top/b/x", "top/a"}
	if len(walked) != len(want) {
		t.Fatalf("walk = %v, want %v", walked, want)
	}
	for i := range want {
		if walked[i] != want[i] {
			t.Fatalf("walk = %v, want %v (creation order)", walked, want)
		}
	}
	kids := s.Component("top").Children()
	if len(kids) != 2 || kids[0].Name() != "b" || kids[1].Name() != "a" {
		t.Fatalf("children = %v", kids)
	}
}

func TestComponentBadNamePanics(t *testing.T) {
	s := New()
	for _, bad := range []string{"", "a/b"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Child(%q) did not panic", bad)
				}
			}()
			s.Root().Child(bad)
		}()
	}
}

func TestComponentMetrics(t *testing.T) {
	s := New()
	c := s.Component("dut/fifo")
	c.Counter("transfers").Add(3)
	c.Gauge("depth").Set(4)
	c.Source(func(emit stats.Emit) {
		emit("dynamic", 7)
	})
	ms := s.Metrics().Snapshot()
	want := map[string]float64{"transfers": 3, "depth": 4, "dynamic": 7}
	found := 0
	for _, m := range ms {
		if m.Path == "dut/fifo" {
			if v, ok := want[m.Name]; !ok || v != m.Value {
				t.Fatalf("unexpected metric %+v", m)
			}
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("found %d dut/fifo metrics, want %d (snapshot %v)", found, len(want), ms)
	}
}

func TestKernelMetricsSource(t *testing.T) {
	s := New()
	clk := s.AddClock("main", 1000, 0)
	clk.Spawn("t", func(th *Thread) {
		for {
			th.Wait()
		}
	})
	reg := s.Metrics() // registered before running; polls at snapshot time
	s.RunCycles(clk, 5)
	get := func(path, name string) float64 {
		for _, m := range reg.Snapshot() {
			if m.Path == path && m.Name == name {
				return m.Value
			}
		}
		t.Fatalf("metric %s.%s missing", path, name)
		return 0
	}
	if v := get("sim", "total_edges"); v != 5 {
		t.Fatalf("total_edges = %v, want 5", v)
	}
	if v := get("sim/clk[main]", "cycles"); v != 5 {
		t.Fatalf("clk cycles = %v, want 5", v)
	}
	if v := get("sim/clk[main]", "processes"); v != 1 {
		t.Fatalf("processes = %v, want 1", v)
	}
}

func TestProcessesIntrospection(t *testing.T) {
	s := New()
	clk := s.AddClock("clk", 1000, 0)
	clk.Spawn("dut/worker", func(th *Thread) {})
	clk.AtDriveNamed("dut/drv", func() {})
	clk.AtResolveNamed("dut/res", func() bool { return false })
	clk.AtCommitNamed("dut/latch", func() {})
	clk.AtMonitorNamed("dut/mon", func() {})
	clk.AtCommit(func() {}) // anonymous

	ps := s.Processes()
	byPhase := map[string][]string{}
	for _, p := range ps {
		if p.Clock != "clk" {
			t.Fatalf("process %+v has wrong clock", p)
		}
		byPhase[p.Phase] = append(byPhase[p.Phase], p.Name)
	}
	checks := []struct {
		phase, name string
	}{
		{"thread", "dut/worker"},
		{"drive", "dut/drv"},
		{"resolve", "dut/res"},
		{"commit", "dut/latch"},
		{"monitor", "dut/mon"},
	}
	for _, c := range checks {
		found := false
		for _, n := range byPhase[c.phase] {
			found = found || n == c.name
		}
		if !found {
			t.Fatalf("phase %s missing process %q: %v", c.phase, c.name, byPhase)
		}
	}
	if len(byPhase["commit"]) != 2 {
		t.Fatalf("commit hooks = %v, want named + anonymous", byPhase["commit"])
	}
}
