package sim

import "testing"

// Parking is an execution optimization only: a thread using WaitFor must
// observe exactly the cycle the equivalent polling loop observes.
func TestWaitForMatchesPollingLoop(t *testing.T) {
	run := func(park bool) []uint64 {
		s := New()
		clk := s.AddClock("clk", 1000, 0)
		flag := false
		clk.AtCommit(func() {
			// Raise the flag on cycles 4 and 9, clear it the cycle after.
			flag = clk.Cycle() == 4 || clk.Cycle() == 9
		})
		var seen []uint64
		clk.Spawn("waiter", func(th *Thread) {
			for i := 0; i < 2; i++ {
				if park {
					th.WaitFor(func() bool { return flag })
				} else {
					for {
						th.Wait()
						if flag {
							break
						}
					}
				}
				seen = append(seen, th.Cycle())
			}
		})
		s.RunCycles(clk, 20)
		return seen
	}
	parked, polled := run(true), run(false)
	if len(parked) != 2 || len(polled) != 2 {
		t.Fatalf("parked %v polled %v, want two wakeups each", parked, polled)
	}
	for i := range parked {
		if parked[i] != polled[i] {
			t.Fatalf("wakeup %d: parked at cycle %d, polling at cycle %d", i, parked[i], polled[i])
		}
	}
}

// WaitFor, like Wait, suspends for at least one edge even when the
// predicate already holds.
func TestWaitForAlwaysSuspendsOneEdge(t *testing.T) {
	s := New()
	clk := s.AddClock("clk", 1000, 0)
	var before, after uint64
	clk.Spawn("t", func(th *Thread) {
		before = th.Cycle()
		th.WaitFor(func() bool { return true })
		after = th.Cycle()
	})
	s.RunCycles(clk, 5)
	if after != before+1 {
		t.Fatalf("WaitFor(true) resumed at cycle %d after %d, want +1", after, before)
	}
}

func TestWaitNMatchesRepeatedWait(t *testing.T) {
	run := func(park bool) uint64 {
		s := New()
		clk := s.AddClock("clk", 1000, 0)
		var woke uint64
		clk.Spawn("t", func(th *Thread) {
			if park {
				th.WaitN(7)
			} else {
				for i := 0; i < 7; i++ {
					th.Wait()
				}
			}
			woke = th.Cycle()
		})
		s.RunCycles(clk, 12)
		return woke
	}
	if a, b := run(true), run(false); a != b {
		t.Fatalf("WaitN woke at cycle %d, 7×Wait at %d", a, b)
	}
}

func TestWaitNZeroReturnsImmediately(t *testing.T) {
	s := New()
	clk := s.AddClock("clk", 1000, 0)
	var woke uint64
	clk.Spawn("t", func(th *Thread) {
		th.WaitN(0)
		woke = th.Cycle()
	})
	s.RunCycles(clk, 3)
	if woke != 1 {
		t.Fatalf("WaitN(0) woke at cycle %d, want 1 (no suspension)", woke)
	}
}

func TestWaitForNilPanics(t *testing.T) {
	s := New()
	clk := s.AddClock("clk", 1000, 0)
	clk.Spawn("bad", func(th *Thread) {
		th.WaitFor(nil)
	})
	s.RunCycles(clk, 2)
	if s.Err() == nil {
		t.Fatal("WaitFor(nil) did not surface an error")
	}
}

// A parked thread keeps its scheduling slot: threads registered after it
// still run in registration order on the edge it wakes.
func TestParkedThreadKeepsRegistrationOrder(t *testing.T) {
	s := New()
	clk := s.AddClock("clk", 1000, 0)
	ready := false
	clk.AtCommit(func() { ready = clk.Cycle() == 3 })
	var order []string
	clk.Spawn("first", func(th *Thread) {
		th.WaitFor(func() bool { return ready })
		order = append(order, "first")
	})
	clk.Spawn("second", func(th *Thread) {
		for len(order) == 0 || order[len(order)-1] != "first" {
			th.Wait()
		}
		order = append(order, "second")
	})
	s.RunCycles(clk, 8)
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v, want [first second]", order)
	}
}

// Regression: Drain used to clear the stopped flag unconditionally, so a
// simulation the user had stopped reported Stopped() == false after a
// drain. The stop reason must survive.
func TestDrainPreservesStop(t *testing.T) {
	s := New()
	clk := s.AddClock("clk", 1000, 0)
	clk.Spawn("stopper", func(th *Thread) {
		th.WaitN(2)
		th.Sim().Stop()
		th.WaitN(3) // still alive when Drain starts
	})
	s.Run(Infinity - 1)
	if !s.Stopped() {
		t.Fatal("precondition: simulator not stopped")
	}
	s.Drain(100)
	if !s.Stopped() {
		t.Fatal("Drain cleared the user's stop request")
	}
	// A never-stopped simulator stays unstopped through a drain.
	s2 := New()
	clk2 := s2.AddClock("clk", 1000, 0)
	clk2.Spawn("short", func(th *Thread) { th.WaitN(2) })
	s2.RunCycles(clk2, 1)
	s2.Drain(100)
	if s2.Stopped() {
		t.Fatal("Drain stopped a simulator that was never stopped")
	}
}

// Coincident edges across clock domains fire in name order regardless of
// registration order, including for thread phases and when one domain's
// threads are parked.
func TestCoincidentEdgesWithParkedThreads(t *testing.T) {
	run := func() []string {
		s := New()
		z := s.AddClock("z", 2000, 0)
		a := s.AddClock("a", 1000, 0)
		var order []string
		ready := false
		a.AtCommit(func() { ready = a.Cycle() >= 3 })
		z.Spawn("zt", func(th *Thread) {
			for {
				order = append(order, "z")
				th.Wait()
			}
		})
		a.Spawn("at", func(th *Thread) {
			th.WaitFor(func() bool { return ready })
			order = append(order, "a-woke")
			for {
				th.Wait()
			}
		})
		s.Run(6001)
		return order
	}
	first := run()
	woke := false
	for _, e := range first {
		woke = woke || e == "a-woke"
	}
	if !woke {
		t.Fatalf("parked thread never woke: %v", first)
	}
	for i := 0; i < 3; i++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("run %d: order %v, first run %v", i, got, first)
		}
		for j := range got {
			if got[j] != first[j] {
				t.Fatalf("run %d: order %v, first run %v", i, got, first)
			}
		}
	}
}
