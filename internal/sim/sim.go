// Package sim is a multi-clock-domain, cycle-based hardware simulation
// kernel. It is this repository's substitute for the SystemC kernel used by
// the paper's OOHLS flow (DESIGN.md §2).
//
// The kernel advances time in picoseconds from clock edge to clock edge.
// Every clock edge runs five phases, in order:
//
//  1. Threads  — coroutine processes bound to the clock resume and run
//     until they call Thread.Wait (one simulated cycle of work).
//  2. Drive    — registered drive hooks compute output signals from the
//     state committed in previous cycles.
//  3. Resolve  — registered resolvers iterate to a fixpoint, modelling
//     combinational paths between components (ready/valid coupling,
//     arbitration) within the cycle.
//  4. Commit   — registered commit hooks latch state, completing the
//     register-transfer semantics of the cycle.
//  5. Monitor  — observation-only hooks (statistics, traces).
//
// Threads are Go goroutines synchronized so that exactly one runs at a
// time, in deterministic registration order; simulations are therefore
// reproducible. A thread performing several latency-insensitive port
// operations in one loop iteration pays one Wait per operation in the
// signal-accurate channel model and one Wait total in the sim-accurate
// model — the distinction at the heart of the paper's Figure 3.
//
// Clocks may be paused or retuned while the simulation runs, which is what
// the fine-grained GALS substrate (internal/gals) uses to model pausible
// and adaptive clocking.
package sim

import (
	"fmt"
	"math"
	"sort"
)

// Time is simulated time in picoseconds.
type Time uint64

// Infinity is a time later than any event.
const Infinity Time = math.MaxUint64

// Simulator owns clocks, threads, and simulated time.
type Simulator struct {
	clocks  []*Clock
	now     Time
	stopped bool
	err     error

	totalEdges uint64
}

// New returns an empty simulator at time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// TotalEdges returns the number of clock edges processed so far, a proxy
// for total simulation work across all domains.
func (s *Simulator) TotalEdges() uint64 { return s.totalEdges }

// Stop requests that the simulation stop after the current edge completes.
// It is safe to call from threads and hooks.
func (s *Simulator) Stop() { s.stopped = true }

// Stopped reports whether Stop has been called.
func (s *Simulator) Stopped() bool { return s.stopped }

// Err returns the first error raised by a thread panic, if any.
func (s *Simulator) Err() error { return s.err }

// Clock is a clock domain. Processes and threads attach to exactly one
// clock and observe its rising edges.
type Clock struct {
	sim    *Simulator
	name   string
	period Time
	next   Time // time of next rising edge
	cycle  uint64

	pausedUntil Time // if > next, edges are postponed (pausible clocking)

	threads  []*thread
	drives   []func()
	resolves []func() bool
	commits  []func()
	monitors []func()
}

// AddClock creates a clock with the given period in picoseconds whose first
// rising edge occurs at phase ps after time zero.
func (s *Simulator) AddClock(name string, period, phase Time) *Clock {
	if period == 0 {
		panic("sim: zero clock period")
	}
	c := &Clock{sim: s, name: name, period: period, next: phase}
	s.clocks = append(s.clocks, c)
	return c
}

// Name returns the clock's name.
func (c *Clock) Name() string { return c.name }

// Period returns the current period in picoseconds.
func (c *Clock) Period() Time { return c.period }

// SetPeriod retunes the clock; the change takes effect from the next edge.
// Adaptive clock generators use this to track supply noise.
func (c *Clock) SetPeriod(p Time) {
	if p == 0 {
		panic("sim: zero clock period")
	}
	c.period = p
}

// Cycle returns the number of rising edges seen so far.
func (c *Clock) Cycle() uint64 { return c.cycle }

// Pause postpones the clock's next rising edge until at least t. Pausible
// bisynchronous FIFOs use this to stretch a receiver clock while a
// synchronization conflict window is open.
func (c *Clock) Pause(until Time) {
	if until > c.pausedUntil {
		c.pausedUntil = until
	}
}

// nextEdge returns the effective time of the next rising edge.
func (c *Clock) nextEdge() Time {
	if c.pausedUntil > c.next {
		return c.pausedUntil
	}
	return c.next
}

// AtDrive registers f to run in the drive phase of every edge.
func (c *Clock) AtDrive(f func()) { c.drives = append(c.drives, f) }

// AtResolve registers f in the combinational resolve phase. f must return
// true if it changed any visible signal; the kernel iterates all resolvers
// until a full pass makes no changes.
func (c *Clock) AtResolve(f func() bool) { c.resolves = append(c.resolves, f) }

// AtCommit registers f to run in the commit (state-latch) phase.
func (c *Clock) AtCommit(f func()) { c.commits = append(c.commits, f) }

// AtMonitor registers an observation-only hook that runs after commit.
func (c *Clock) AtMonitor(f func()) { c.monitors = append(c.monitors, f) }

// Thread is the handle a coroutine process uses to synchronize with its
// clock. All methods must be called only from the goroutine running the
// thread body.
type Thread struct {
	t *thread
}

type thread struct {
	name     string
	clock    *Clock
	resume   chan struct{}
	yield    chan struct{}
	finished bool
	started  bool
	body     func(*Thread)
}

// Spawn registers a coroutine process on clock c. The body starts running
// at the first rising edge and is resumed once per edge after each Wait.
// When the body returns the thread retires.
func (c *Clock) Spawn(name string, body func(*Thread)) {
	th := &thread{
		name:   name,
		clock:  c,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
		body:   body,
	}
	c.threads = append(c.threads, th)
}

// Wait suspends the thread until the next rising edge of its clock.
func (t *Thread) Wait() {
	t.t.yield <- struct{}{}
	<-t.t.resume
}

// WaitN suspends the thread for n rising edges.
func (t *Thread) WaitN(n int) {
	for i := 0; i < n; i++ {
		t.Wait()
	}
}

// Clock returns the clock the thread is bound to.
func (t *Thread) Clock() *Clock { return t.t.clock }

// Cycle returns the current cycle count of the thread's clock.
func (t *Thread) Cycle() uint64 { return t.t.clock.cycle }

// Sim returns the owning simulator.
func (t *Thread) Sim() *Simulator { return t.t.clock.sim }

// Name returns the thread name.
func (t *Thread) Name() string { return t.t.name }

func (th *thread) start() {
	th.started = true
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if th.clock.sim.err == nil {
					th.clock.sim.err = fmt.Errorf("sim: thread %q panicked: %v", th.name, r)
				}
				th.clock.sim.stopped = true
			}
			th.finished = true
			th.yield <- struct{}{}
		}()
		<-th.resume
		th.body(&Thread{t: th})
	}()
}

// runEdge executes one full rising edge of c.
func (c *Clock) runEdge() {
	c.cycle++
	c.sim.totalEdges++

	// Phase 1: threads, in registration order.
	for _, th := range c.threads {
		if th.finished {
			continue
		}
		if !th.started {
			th.start()
		}
		th.resume <- struct{}{}
		<-th.yield
	}

	// Phase 2: drive.
	for _, f := range c.drives {
		f()
	}

	// Phase 3: combinational resolve to fixpoint.
	if len(c.resolves) > 0 {
		limit := len(c.resolves)*len(c.resolves) + 16
		for iter := 0; ; iter++ {
			changed := false
			for _, f := range c.resolves {
				if f() {
					changed = true
				}
			}
			if !changed {
				break
			}
			if iter > limit {
				panic(fmt.Sprintf("sim: combinational loop on clock %q did not converge", c.name))
			}
		}
	}

	// Phase 4: commit.
	for _, f := range c.commits {
		f()
	}

	// Phase 5: monitors.
	for _, f := range c.monitors {
		f()
	}

	c.next = c.sim.now + c.period
	if c.pausedUntil <= c.sim.now {
		c.pausedUntil = 0
	}
}

// Step advances to the next clock edge (or coincident group of edges) and
// processes it. It returns false when there are no clocks or the simulator
// has stopped.
func (s *Simulator) Step() bool {
	if s.stopped || len(s.clocks) == 0 {
		return false
	}
	t := Infinity
	for _, c := range s.clocks {
		if e := c.nextEdge(); e < t {
			t = e
		}
	}
	if t == Infinity {
		return false
	}
	s.now = t
	// Fire all clocks whose edge is due, in stable name order for
	// reproducibility independent of registration order.
	due := make([]*Clock, 0, len(s.clocks))
	for _, c := range s.clocks {
		if c.nextEdge() == t {
			due = append(due, c)
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].name < due[j].name })
	for _, c := range due {
		if s.stopped {
			break
		}
		c.runEdge()
	}
	return !s.stopped
}

// Run advances the simulation until maxTime (exclusive) or Stop.
func (s *Simulator) Run(maxTime Time) {
	for !s.stopped {
		t := Infinity
		for _, c := range s.clocks {
			if e := c.nextEdge(); e < t {
				t = e
			}
		}
		if t >= maxTime {
			return
		}
		if !s.Step() {
			return
		}
	}
}

// RunCycles runs until clock c has advanced n more rising edges, or Stop.
func (s *Simulator) RunCycles(c *Clock, n uint64) {
	target := c.cycle + n
	for c.cycle < target && s.Step() {
	}
}

// Drain retires all threads by resuming them until they finish, bounded by
// limit edges. It is used by tests to shut a simulation down cleanly; a
// thread that never returns is simply abandoned when the test ends.
func (s *Simulator) Drain(limit uint64) {
	for i := uint64(0); i < limit; i++ {
		alive := false
		for _, c := range s.clocks {
			for _, th := range c.threads {
				if th.started && !th.finished {
					alive = true
				}
			}
		}
		if !alive {
			return
		}
		s.stopped = false
		if !s.Step() {
			return
		}
	}
}
